# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ecdsa_firmware_auth "/root/repo/build/examples/ecdsa_firmware_auth")
set_tests_properties(example_ecdsa_firmware_auth PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sensor_node "/root/repo/build/examples/sensor_node")
set_tests_properties(example_sensor_node PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_avr_sim_demo "/root/repo/build/examples/avr_sim_demo")
set_tests_properties(example_avr_sim_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
