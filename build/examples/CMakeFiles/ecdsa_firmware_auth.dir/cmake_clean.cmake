file(REMOVE_RECURSE
  "CMakeFiles/ecdsa_firmware_auth.dir/ecdsa_firmware_auth.cpp.o"
  "CMakeFiles/ecdsa_firmware_auth.dir/ecdsa_firmware_auth.cpp.o.d"
  "ecdsa_firmware_auth"
  "ecdsa_firmware_auth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecdsa_firmware_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
