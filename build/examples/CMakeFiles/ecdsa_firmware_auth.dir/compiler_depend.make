# Empty compiler generated dependencies file for ecdsa_firmware_auth.
# This may be replaced when dependencies are built.
