# Empty compiler generated dependencies file for avr_sim_demo.
# This may be replaced when dependencies are built.
