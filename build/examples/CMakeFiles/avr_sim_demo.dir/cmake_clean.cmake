file(REMOVE_RECURSE
  "CMakeFiles/avr_sim_demo.dir/avr_sim_demo.cpp.o"
  "CMakeFiles/avr_sim_demo.dir/avr_sim_demo.cpp.o.d"
  "avr_sim_demo"
  "avr_sim_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avr_sim_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
