file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_pointmult.dir/bench_table2_pointmult.cc.o"
  "CMakeFiles/bench_table2_pointmult.dir/bench_table2_pointmult.cc.o.d"
  "bench_table2_pointmult"
  "bench_table2_pointmult.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_pointmult.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
