# Empty dependencies file for bench_table2_pointmult.
# This may be replaced when dependencies are built.
