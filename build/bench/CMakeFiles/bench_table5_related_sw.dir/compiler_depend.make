# Empty compiler generated dependencies file for bench_table5_related_sw.
# This may be replaced when dependencies are built.
