# Empty dependencies file for bench_table4_related_hw.
# This may be replaced when dependencies are built.
