file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_host.dir/bench_micro_host.cc.o"
  "CMakeFiles/bench_micro_host.dir/bench_micro_host.cc.o.d"
  "bench_micro_host"
  "bench_micro_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
