# Empty dependencies file for bench_fig1_mac.
# This may be replaced when dependencies are built.
