file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_mac.dir/bench_fig1_mac.cc.o"
  "CMakeFiles/bench_fig1_mac.dir/bench_fig1_mac.cc.o.d"
  "bench_fig1_mac"
  "bench_fig1_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
