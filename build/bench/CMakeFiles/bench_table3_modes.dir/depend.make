# Empty dependencies file for bench_table3_modes.
# This may be replaced when dependencies are built.
