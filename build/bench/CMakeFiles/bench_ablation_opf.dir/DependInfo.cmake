
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_opf.cc" "bench/CMakeFiles/bench_ablation_opf.dir/bench_ablation_opf.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_opf.dir/bench_ablation_opf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/jaavr_model.dir/DependInfo.cmake"
  "/root/repo/build/src/avrgen/CMakeFiles/jaavr_avrgen.dir/DependInfo.cmake"
  "/root/repo/build/src/avr/CMakeFiles/jaavr_avr.dir/DependInfo.cmake"
  "/root/repo/build/src/avrasm/CMakeFiles/jaavr_avrasm.dir/DependInfo.cmake"
  "/root/repo/build/src/curves/CMakeFiles/jaavr_curves.dir/DependInfo.cmake"
  "/root/repo/build/src/field/CMakeFiles/jaavr_field.dir/DependInfo.cmake"
  "/root/repo/build/src/scalar/CMakeFiles/jaavr_scalar.dir/DependInfo.cmake"
  "/root/repo/build/src/nt/CMakeFiles/jaavr_nt.dir/DependInfo.cmake"
  "/root/repo/build/src/bigint/CMakeFiles/jaavr_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jaavr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
