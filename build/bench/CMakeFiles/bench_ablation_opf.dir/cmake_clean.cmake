file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_opf.dir/bench_ablation_opf.cc.o"
  "CMakeFiles/bench_ablation_opf.dir/bench_ablation_opf.cc.o.d"
  "bench_ablation_opf"
  "bench_ablation_opf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_opf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
