# Empty compiler generated dependencies file for bench_ablation_opf.
# This may be replaced when dependencies are built.
