file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_rsa.dir/bench_ext_rsa.cc.o"
  "CMakeFiles/bench_ext_rsa.dir/bench_ext_rsa.cc.o.d"
  "bench_ext_rsa"
  "bench_ext_rsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_rsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
