# Empty compiler generated dependencies file for bench_ext_rsa.
# This may be replaced when dependencies are built.
