file(REMOVE_RECURSE
  "libjaavr_support.a"
)
