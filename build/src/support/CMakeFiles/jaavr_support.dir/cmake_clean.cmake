file(REMOVE_RECURSE
  "CMakeFiles/jaavr_support.dir/hex.cc.o"
  "CMakeFiles/jaavr_support.dir/hex.cc.o.d"
  "CMakeFiles/jaavr_support.dir/logging.cc.o"
  "CMakeFiles/jaavr_support.dir/logging.cc.o.d"
  "CMakeFiles/jaavr_support.dir/sha256.cc.o"
  "CMakeFiles/jaavr_support.dir/sha256.cc.o.d"
  "libjaavr_support.a"
  "libjaavr_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaavr_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
