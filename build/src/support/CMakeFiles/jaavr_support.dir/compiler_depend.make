# Empty compiler generated dependencies file for jaavr_support.
# This may be replaced when dependencies are built.
