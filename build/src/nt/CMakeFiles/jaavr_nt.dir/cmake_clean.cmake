file(REMOVE_RECURSE
  "CMakeFiles/jaavr_nt.dir/cornacchia.cc.o"
  "CMakeFiles/jaavr_nt.dir/cornacchia.cc.o.d"
  "CMakeFiles/jaavr_nt.dir/intsqrt.cc.o"
  "CMakeFiles/jaavr_nt.dir/intsqrt.cc.o.d"
  "CMakeFiles/jaavr_nt.dir/mont_inverse.cc.o"
  "CMakeFiles/jaavr_nt.dir/mont_inverse.cc.o.d"
  "CMakeFiles/jaavr_nt.dir/opf_prime.cc.o"
  "CMakeFiles/jaavr_nt.dir/opf_prime.cc.o.d"
  "CMakeFiles/jaavr_nt.dir/primality.cc.o"
  "CMakeFiles/jaavr_nt.dir/primality.cc.o.d"
  "CMakeFiles/jaavr_nt.dir/sqrt_mod.cc.o"
  "CMakeFiles/jaavr_nt.dir/sqrt_mod.cc.o.d"
  "libjaavr_nt.a"
  "libjaavr_nt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaavr_nt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
