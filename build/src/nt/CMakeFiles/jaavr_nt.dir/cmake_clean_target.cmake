file(REMOVE_RECURSE
  "libjaavr_nt.a"
)
