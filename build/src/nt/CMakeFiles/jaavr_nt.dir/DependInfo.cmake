
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nt/cornacchia.cc" "src/nt/CMakeFiles/jaavr_nt.dir/cornacchia.cc.o" "gcc" "src/nt/CMakeFiles/jaavr_nt.dir/cornacchia.cc.o.d"
  "/root/repo/src/nt/intsqrt.cc" "src/nt/CMakeFiles/jaavr_nt.dir/intsqrt.cc.o" "gcc" "src/nt/CMakeFiles/jaavr_nt.dir/intsqrt.cc.o.d"
  "/root/repo/src/nt/mont_inverse.cc" "src/nt/CMakeFiles/jaavr_nt.dir/mont_inverse.cc.o" "gcc" "src/nt/CMakeFiles/jaavr_nt.dir/mont_inverse.cc.o.d"
  "/root/repo/src/nt/opf_prime.cc" "src/nt/CMakeFiles/jaavr_nt.dir/opf_prime.cc.o" "gcc" "src/nt/CMakeFiles/jaavr_nt.dir/opf_prime.cc.o.d"
  "/root/repo/src/nt/primality.cc" "src/nt/CMakeFiles/jaavr_nt.dir/primality.cc.o" "gcc" "src/nt/CMakeFiles/jaavr_nt.dir/primality.cc.o.d"
  "/root/repo/src/nt/sqrt_mod.cc" "src/nt/CMakeFiles/jaavr_nt.dir/sqrt_mod.cc.o" "gcc" "src/nt/CMakeFiles/jaavr_nt.dir/sqrt_mod.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bigint/CMakeFiles/jaavr_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jaavr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
