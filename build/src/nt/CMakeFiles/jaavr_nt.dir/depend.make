# Empty dependencies file for jaavr_nt.
# This may be replaced when dependencies are built.
