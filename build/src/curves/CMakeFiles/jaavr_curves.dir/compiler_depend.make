# Empty compiler generated dependencies file for jaavr_curves.
# This may be replaced when dependencies are built.
