file(REMOVE_RECURSE
  "libjaavr_curves.a"
)
