file(REMOVE_RECURSE
  "CMakeFiles/jaavr_curves.dir/ecdsa.cc.o"
  "CMakeFiles/jaavr_curves.dir/ecdsa.cc.o.d"
  "CMakeFiles/jaavr_curves.dir/edwards.cc.o"
  "CMakeFiles/jaavr_curves.dir/edwards.cc.o.d"
  "CMakeFiles/jaavr_curves.dir/glv.cc.o"
  "CMakeFiles/jaavr_curves.dir/glv.cc.o.d"
  "CMakeFiles/jaavr_curves.dir/montgomery.cc.o"
  "CMakeFiles/jaavr_curves.dir/montgomery.cc.o.d"
  "CMakeFiles/jaavr_curves.dir/standard_curves.cc.o"
  "CMakeFiles/jaavr_curves.dir/standard_curves.cc.o.d"
  "CMakeFiles/jaavr_curves.dir/weierstrass.cc.o"
  "CMakeFiles/jaavr_curves.dir/weierstrass.cc.o.d"
  "libjaavr_curves.a"
  "libjaavr_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaavr_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
