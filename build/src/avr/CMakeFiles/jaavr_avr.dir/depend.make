# Empty dependencies file for jaavr_avr.
# This may be replaced when dependencies are built.
