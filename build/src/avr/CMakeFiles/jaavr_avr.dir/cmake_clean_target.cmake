file(REMOVE_RECURSE
  "libjaavr_avr.a"
)
