
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/avr/isa.cc" "src/avr/CMakeFiles/jaavr_avr.dir/isa.cc.o" "gcc" "src/avr/CMakeFiles/jaavr_avr.dir/isa.cc.o.d"
  "/root/repo/src/avr/machine.cc" "src/avr/CMakeFiles/jaavr_avr.dir/machine.cc.o" "gcc" "src/avr/CMakeFiles/jaavr_avr.dir/machine.cc.o.d"
  "/root/repo/src/avr/timing.cc" "src/avr/CMakeFiles/jaavr_avr.dir/timing.cc.o" "gcc" "src/avr/CMakeFiles/jaavr_avr.dir/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/jaavr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
