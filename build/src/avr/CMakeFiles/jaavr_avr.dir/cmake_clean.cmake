file(REMOVE_RECURSE
  "CMakeFiles/jaavr_avr.dir/isa.cc.o"
  "CMakeFiles/jaavr_avr.dir/isa.cc.o.d"
  "CMakeFiles/jaavr_avr.dir/machine.cc.o"
  "CMakeFiles/jaavr_avr.dir/machine.cc.o.d"
  "CMakeFiles/jaavr_avr.dir/timing.cc.o"
  "CMakeFiles/jaavr_avr.dir/timing.cc.o.d"
  "libjaavr_avr.a"
  "libjaavr_avr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaavr_avr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
