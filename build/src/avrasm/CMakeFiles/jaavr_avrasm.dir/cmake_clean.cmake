file(REMOVE_RECURSE
  "CMakeFiles/jaavr_avrasm.dir/assembler.cc.o"
  "CMakeFiles/jaavr_avrasm.dir/assembler.cc.o.d"
  "libjaavr_avrasm.a"
  "libjaavr_avrasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaavr_avrasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
