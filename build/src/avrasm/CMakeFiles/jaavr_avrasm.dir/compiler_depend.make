# Empty compiler generated dependencies file for jaavr_avrasm.
# This may be replaced when dependencies are built.
