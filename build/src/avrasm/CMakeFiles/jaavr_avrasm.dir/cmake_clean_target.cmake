file(REMOVE_RECURSE
  "libjaavr_avrasm.a"
)
