file(REMOVE_RECURSE
  "CMakeFiles/jaavr_avrgen.dir/opf_harness.cc.o"
  "CMakeFiles/jaavr_avrgen.dir/opf_harness.cc.o.d"
  "CMakeFiles/jaavr_avrgen.dir/opf_routines.cc.o"
  "CMakeFiles/jaavr_avrgen.dir/opf_routines.cc.o.d"
  "CMakeFiles/jaavr_avrgen.dir/secp160_harness.cc.o"
  "CMakeFiles/jaavr_avrgen.dir/secp160_harness.cc.o.d"
  "CMakeFiles/jaavr_avrgen.dir/secp160_routines.cc.o"
  "CMakeFiles/jaavr_avrgen.dir/secp160_routines.cc.o.d"
  "libjaavr_avrgen.a"
  "libjaavr_avrgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaavr_avrgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
