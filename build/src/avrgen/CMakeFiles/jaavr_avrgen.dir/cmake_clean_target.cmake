file(REMOVE_RECURSE
  "libjaavr_avrgen.a"
)
