# Empty compiler generated dependencies file for jaavr_avrgen.
# This may be replaced when dependencies are built.
