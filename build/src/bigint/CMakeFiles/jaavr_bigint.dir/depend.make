# Empty dependencies file for jaavr_bigint.
# This may be replaced when dependencies are built.
