file(REMOVE_RECURSE
  "CMakeFiles/jaavr_bigint.dir/big_int.cc.o"
  "CMakeFiles/jaavr_bigint.dir/big_int.cc.o.d"
  "CMakeFiles/jaavr_bigint.dir/big_uint.cc.o"
  "CMakeFiles/jaavr_bigint.dir/big_uint.cc.o.d"
  "libjaavr_bigint.a"
  "libjaavr_bigint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaavr_bigint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
