
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bigint/big_int.cc" "src/bigint/CMakeFiles/jaavr_bigint.dir/big_int.cc.o" "gcc" "src/bigint/CMakeFiles/jaavr_bigint.dir/big_int.cc.o.d"
  "/root/repo/src/bigint/big_uint.cc" "src/bigint/CMakeFiles/jaavr_bigint.dir/big_uint.cc.o" "gcc" "src/bigint/CMakeFiles/jaavr_bigint.dir/big_uint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/jaavr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
