file(REMOVE_RECURSE
  "libjaavr_bigint.a"
)
