file(REMOVE_RECURSE
  "libjaavr_model.a"
)
