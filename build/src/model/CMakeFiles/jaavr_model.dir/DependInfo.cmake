
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/area_power.cc" "src/model/CMakeFiles/jaavr_model.dir/area_power.cc.o" "gcc" "src/model/CMakeFiles/jaavr_model.dir/area_power.cc.o.d"
  "/root/repo/src/model/experiments.cc" "src/model/CMakeFiles/jaavr_model.dir/experiments.cc.o" "gcc" "src/model/CMakeFiles/jaavr_model.dir/experiments.cc.o.d"
  "/root/repo/src/model/field_costs.cc" "src/model/CMakeFiles/jaavr_model.dir/field_costs.cc.o" "gcc" "src/model/CMakeFiles/jaavr_model.dir/field_costs.cc.o.d"
  "/root/repo/src/model/inverse_model.cc" "src/model/CMakeFiles/jaavr_model.dir/inverse_model.cc.o" "gcc" "src/model/CMakeFiles/jaavr_model.dir/inverse_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/avrgen/CMakeFiles/jaavr_avrgen.dir/DependInfo.cmake"
  "/root/repo/build/src/curves/CMakeFiles/jaavr_curves.dir/DependInfo.cmake"
  "/root/repo/build/src/avr/CMakeFiles/jaavr_avr.dir/DependInfo.cmake"
  "/root/repo/build/src/avrasm/CMakeFiles/jaavr_avrasm.dir/DependInfo.cmake"
  "/root/repo/build/src/field/CMakeFiles/jaavr_field.dir/DependInfo.cmake"
  "/root/repo/build/src/scalar/CMakeFiles/jaavr_scalar.dir/DependInfo.cmake"
  "/root/repo/build/src/nt/CMakeFiles/jaavr_nt.dir/DependInfo.cmake"
  "/root/repo/build/src/bigint/CMakeFiles/jaavr_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jaavr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
