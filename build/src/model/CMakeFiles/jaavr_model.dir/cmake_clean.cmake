file(REMOVE_RECURSE
  "CMakeFiles/jaavr_model.dir/area_power.cc.o"
  "CMakeFiles/jaavr_model.dir/area_power.cc.o.d"
  "CMakeFiles/jaavr_model.dir/experiments.cc.o"
  "CMakeFiles/jaavr_model.dir/experiments.cc.o.d"
  "CMakeFiles/jaavr_model.dir/field_costs.cc.o"
  "CMakeFiles/jaavr_model.dir/field_costs.cc.o.d"
  "CMakeFiles/jaavr_model.dir/inverse_model.cc.o"
  "CMakeFiles/jaavr_model.dir/inverse_model.cc.o.d"
  "libjaavr_model.a"
  "libjaavr_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaavr_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
