# Empty compiler generated dependencies file for jaavr_model.
# This may be replaced when dependencies are built.
