file(REMOVE_RECURSE
  "CMakeFiles/jaavr_field.dir/montgomery_domain.cc.o"
  "CMakeFiles/jaavr_field.dir/montgomery_domain.cc.o.d"
  "CMakeFiles/jaavr_field.dir/opf_field.cc.o"
  "CMakeFiles/jaavr_field.dir/opf_field.cc.o.d"
  "CMakeFiles/jaavr_field.dir/prime_field.cc.o"
  "CMakeFiles/jaavr_field.dir/prime_field.cc.o.d"
  "CMakeFiles/jaavr_field.dir/secp160.cc.o"
  "CMakeFiles/jaavr_field.dir/secp160.cc.o.d"
  "libjaavr_field.a"
  "libjaavr_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaavr_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
