# Empty compiler generated dependencies file for jaavr_field.
# This may be replaced when dependencies are built.
