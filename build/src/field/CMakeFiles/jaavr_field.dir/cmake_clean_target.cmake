file(REMOVE_RECURSE
  "libjaavr_field.a"
)
