
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/field/montgomery_domain.cc" "src/field/CMakeFiles/jaavr_field.dir/montgomery_domain.cc.o" "gcc" "src/field/CMakeFiles/jaavr_field.dir/montgomery_domain.cc.o.d"
  "/root/repo/src/field/opf_field.cc" "src/field/CMakeFiles/jaavr_field.dir/opf_field.cc.o" "gcc" "src/field/CMakeFiles/jaavr_field.dir/opf_field.cc.o.d"
  "/root/repo/src/field/prime_field.cc" "src/field/CMakeFiles/jaavr_field.dir/prime_field.cc.o" "gcc" "src/field/CMakeFiles/jaavr_field.dir/prime_field.cc.o.d"
  "/root/repo/src/field/secp160.cc" "src/field/CMakeFiles/jaavr_field.dir/secp160.cc.o" "gcc" "src/field/CMakeFiles/jaavr_field.dir/secp160.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bigint/CMakeFiles/jaavr_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/nt/CMakeFiles/jaavr_nt.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jaavr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
