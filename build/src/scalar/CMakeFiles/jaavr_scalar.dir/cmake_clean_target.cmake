file(REMOVE_RECURSE
  "libjaavr_scalar.a"
)
