file(REMOVE_RECURSE
  "CMakeFiles/jaavr_scalar.dir/glv_decompose.cc.o"
  "CMakeFiles/jaavr_scalar.dir/glv_decompose.cc.o.d"
  "CMakeFiles/jaavr_scalar.dir/recode.cc.o"
  "CMakeFiles/jaavr_scalar.dir/recode.cc.o.d"
  "libjaavr_scalar.a"
  "libjaavr_scalar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaavr_scalar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
