# Empty dependencies file for jaavr_scalar.
# This may be replaced when dependencies are built.
