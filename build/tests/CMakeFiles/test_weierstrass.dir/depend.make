# Empty dependencies file for test_weierstrass.
# This may be replaced when dependencies are built.
