file(REMOVE_RECURSE
  "CMakeFiles/test_weierstrass.dir/test_weierstrass.cc.o"
  "CMakeFiles/test_weierstrass.dir/test_weierstrass.cc.o.d"
  "test_weierstrass"
  "test_weierstrass.pdb"
  "test_weierstrass[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weierstrass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
