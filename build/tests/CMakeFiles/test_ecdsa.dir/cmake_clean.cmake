file(REMOVE_RECURSE
  "CMakeFiles/test_ecdsa.dir/test_ecdsa.cc.o"
  "CMakeFiles/test_ecdsa.dir/test_ecdsa.cc.o.d"
  "test_ecdsa"
  "test_ecdsa.pdb"
  "test_ecdsa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecdsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
