# Empty dependencies file for test_ecdsa.
# This may be replaced when dependencies are built.
