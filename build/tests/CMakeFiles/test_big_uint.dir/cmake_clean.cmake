file(REMOVE_RECURSE
  "CMakeFiles/test_big_uint.dir/test_big_uint.cc.o"
  "CMakeFiles/test_big_uint.dir/test_big_uint.cc.o.d"
  "test_big_uint"
  "test_big_uint.pdb"
  "test_big_uint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_big_uint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
