file(REMOVE_RECURSE
  "CMakeFiles/test_machine_alu_exhaustive.dir/test_machine_alu_exhaustive.cc.o"
  "CMakeFiles/test_machine_alu_exhaustive.dir/test_machine_alu_exhaustive.cc.o.d"
  "test_machine_alu_exhaustive"
  "test_machine_alu_exhaustive.pdb"
  "test_machine_alu_exhaustive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_alu_exhaustive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
