# Empty compiler generated dependencies file for test_machine_alu_exhaustive.
# This may be replaced when dependencies are built.
