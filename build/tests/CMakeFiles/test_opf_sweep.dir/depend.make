# Empty dependencies file for test_opf_sweep.
# This may be replaced when dependencies are built.
