file(REMOVE_RECURSE
  "CMakeFiles/test_opf_sweep.dir/test_opf_sweep.cc.o"
  "CMakeFiles/test_opf_sweep.dir/test_opf_sweep.cc.o.d"
  "test_opf_sweep"
  "test_opf_sweep.pdb"
  "test_opf_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opf_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
