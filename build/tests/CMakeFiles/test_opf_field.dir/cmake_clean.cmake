file(REMOVE_RECURSE
  "CMakeFiles/test_opf_field.dir/test_opf_field.cc.o"
  "CMakeFiles/test_opf_field.dir/test_opf_field.cc.o.d"
  "test_opf_field"
  "test_opf_field.pdb"
  "test_opf_field[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opf_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
