# Empty dependencies file for test_opf_field.
# This may be replaced when dependencies are built.
