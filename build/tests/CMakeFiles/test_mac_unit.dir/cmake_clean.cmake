file(REMOVE_RECURSE
  "CMakeFiles/test_mac_unit.dir/test_mac_unit.cc.o"
  "CMakeFiles/test_mac_unit.dir/test_mac_unit.cc.o.d"
  "test_mac_unit"
  "test_mac_unit.pdb"
  "test_mac_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mac_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
