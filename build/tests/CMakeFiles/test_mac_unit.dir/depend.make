# Empty dependencies file for test_mac_unit.
# This may be replaced when dependencies are built.
