file(REMOVE_RECURSE
  "CMakeFiles/test_machine_programs.dir/test_machine_programs.cc.o"
  "CMakeFiles/test_machine_programs.dir/test_machine_programs.cc.o.d"
  "test_machine_programs"
  "test_machine_programs.pdb"
  "test_machine_programs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
