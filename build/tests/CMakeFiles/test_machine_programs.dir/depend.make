# Empty dependencies file for test_machine_programs.
# This may be replaced when dependencies are built.
