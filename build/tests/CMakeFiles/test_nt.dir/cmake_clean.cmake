file(REMOVE_RECURSE
  "CMakeFiles/test_nt.dir/test_nt.cc.o"
  "CMakeFiles/test_nt.dir/test_nt.cc.o.d"
  "test_nt"
  "test_nt.pdb"
  "test_nt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
