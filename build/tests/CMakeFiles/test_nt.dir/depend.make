# Empty dependencies file for test_nt.
# This may be replaced when dependencies are built.
