file(REMOVE_RECURSE
  "CMakeFiles/test_montgomery_edwards.dir/test_montgomery_edwards.cc.o"
  "CMakeFiles/test_montgomery_edwards.dir/test_montgomery_edwards.cc.o.d"
  "test_montgomery_edwards"
  "test_montgomery_edwards.pdb"
  "test_montgomery_edwards[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_montgomery_edwards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
