# Empty dependencies file for test_montgomery_edwards.
# This may be replaced when dependencies are built.
