file(REMOVE_RECURSE
  "CMakeFiles/test_montgomery_domain.dir/test_montgomery_domain.cc.o"
  "CMakeFiles/test_montgomery_domain.dir/test_montgomery_domain.cc.o.d"
  "test_montgomery_domain"
  "test_montgomery_domain.pdb"
  "test_montgomery_domain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_montgomery_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
