# Empty dependencies file for test_big_int.
# This may be replaced when dependencies are built.
