file(REMOVE_RECURSE
  "CMakeFiles/test_big_int.dir/test_big_int.cc.o"
  "CMakeFiles/test_big_int.dir/test_big_int.cc.o.d"
  "test_big_int"
  "test_big_int.pdb"
  "test_big_int[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_big_int.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
