file(REMOVE_RECURSE
  "CMakeFiles/test_secp160_asm.dir/test_secp160_asm.cc.o"
  "CMakeFiles/test_secp160_asm.dir/test_secp160_asm.cc.o.d"
  "test_secp160_asm"
  "test_secp160_asm.pdb"
  "test_secp160_asm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_secp160_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
