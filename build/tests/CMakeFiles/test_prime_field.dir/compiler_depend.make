# Empty compiler generated dependencies file for test_prime_field.
# This may be replaced when dependencies are built.
