# Empty compiler generated dependencies file for test_recode.
# This may be replaced when dependencies are built.
