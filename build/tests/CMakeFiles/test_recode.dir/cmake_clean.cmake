file(REMOVE_RECURSE
  "CMakeFiles/test_recode.dir/test_recode.cc.o"
  "CMakeFiles/test_recode.dir/test_recode.cc.o.d"
  "test_recode"
  "test_recode.pdb"
  "test_recode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
