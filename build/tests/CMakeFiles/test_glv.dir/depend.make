# Empty dependencies file for test_glv.
# This may be replaced when dependencies are built.
