file(REMOVE_RECURSE
  "CMakeFiles/test_glv.dir/test_glv.cc.o"
  "CMakeFiles/test_glv.dir/test_glv.cc.o.d"
  "test_glv"
  "test_glv.pdb"
  "test_glv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_glv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
