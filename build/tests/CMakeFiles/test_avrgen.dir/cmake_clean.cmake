file(REMOVE_RECURSE
  "CMakeFiles/test_avrgen.dir/test_avrgen.cc.o"
  "CMakeFiles/test_avrgen.dir/test_avrgen.cc.o.d"
  "test_avrgen"
  "test_avrgen.pdb"
  "test_avrgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_avrgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
