# Empty compiler generated dependencies file for test_avrgen.
# This may be replaced when dependencies are built.
