# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_big_uint[1]_include.cmake")
include("/root/repo/build/tests/test_big_int[1]_include.cmake")
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_nt[1]_include.cmake")
include("/root/repo/build/tests/test_prime_field[1]_include.cmake")
include("/root/repo/build/tests/test_opf_field[1]_include.cmake")
include("/root/repo/build/tests/test_recode[1]_include.cmake")
include("/root/repo/build/tests/test_weierstrass[1]_include.cmake")
include("/root/repo/build/tests/test_montgomery_edwards[1]_include.cmake")
include("/root/repo/build/tests/test_glv[1]_include.cmake")
include("/root/repo/build/tests/test_assembler[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_mac_unit[1]_include.cmake")
include("/root/repo/build/tests/test_avrgen[1]_include.cmake")
include("/root/repo/build/tests/test_sha256[1]_include.cmake")
include("/root/repo/build/tests/test_ecdsa[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_montgomery_domain[1]_include.cmake")
include("/root/repo/build/tests/test_opf_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_machine_programs[1]_include.cmake")
include("/root/repo/build/tests/test_secp160_asm[1]_include.cmake")
include("/root/repo/build/tests/test_machine_alu_exhaustive[1]_include.cmake")
