/**
 * @file
 * Unit and property tests for PrimeField and the secp160 fast-reduction
 * fields.
 */

#include <gtest/gtest.h>

#include "field/prime_field.hh"
#include "field/secp160.hh"
#include "nt/opf_prime.hh"
#include "nt/primality.hh"

using namespace jaavr;

namespace
{

/** Field-axiom property pack run against any PrimeField instance. */
void
checkFieldAxioms(const PrimeField &f, uint64_t seed)
{
    Rng rng(seed);
    for (int i = 0; i < 50; i++) {
        BigUInt a = f.random(rng), b = f.random(rng), c = f.random(rng);
        // Commutativity / associativity / distributivity.
        EXPECT_EQ(f.add(a, b), f.add(b, a));
        EXPECT_EQ(f.mul(a, b), f.mul(b, a));
        EXPECT_EQ(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
        EXPECT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
        EXPECT_EQ(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
        // Inverses.
        EXPECT_TRUE(f.add(a, f.neg(a)).isZero());
        EXPECT_EQ(f.sub(a, b), f.add(a, f.neg(b)));
        if (!a.isZero()) {
            EXPECT_TRUE(f.mul(a, f.inv(a)).isOne());
        }
        // Squaring matches multiplication.
        EXPECT_EQ(f.sqr(a), f.mul(a, a));
        // All results in canonical range.
        EXPECT_LT(f.mul(a, b), f.modulus());
        EXPECT_LT(f.add(a, b), f.modulus());
        EXPECT_LT(f.sub(a, b), f.modulus());
    }
}

} // anonymous namespace

TEST(PrimeField, AxiomsOverPaperOpfPrime)
{
    PrimeField f(paperOpfPrime().p);
    checkFieldAxioms(f, 21);
}

TEST(PrimeField, AxiomsOverSmallPrime)
{
    PrimeField f(BigUInt(10007));
    checkFieldAxioms(f, 22);
}

TEST(PrimeField, MulSmallMatchesMul)
{
    PrimeField f(paperOpfPrime().p);
    Rng rng(23);
    for (int i = 0; i < 30; i++) {
        BigUInt a = f.random(rng);
        uint32_t c = rng.next32() & 0xffff;
        EXPECT_EQ(f.mulSmall(a, c), f.mul(a, f.fromUint(c)));
    }
}

TEST(PrimeField, ExpAndFermat)
{
    PrimeField f(BigUInt(10007));
    Rng rng(24);
    for (int i = 0; i < 20; i++) {
        BigUInt a = f.random(rng);
        if (a.isZero())
            continue;
        EXPECT_TRUE(f.exp(a, f.modulus() - BigUInt(1)).isOne());
        // Inverse via Fermat equals inverse via Euclid.
        EXPECT_EQ(f.exp(a, f.modulus() - BigUInt(2)), f.inv(a));
    }
}

TEST(PrimeField, SqrtRoundTrip)
{
    PrimeField f(paperOpfPrime().p);
    Rng rng(25);
    for (int i = 0; i < 10; i++) {
        BigUInt a = f.random(rng);
        BigUInt sq = f.sqr(a);
        EXPECT_TRUE(f.isSquare(sq));
        auto r = f.sqrt(sq, rng);
        ASSERT_TRUE(r.has_value());
        EXPECT_EQ(f.sqr(*r), sq);
    }
}

TEST(PrimeField, NegZeroIsZero)
{
    PrimeField f(BigUInt(10007));
    EXPECT_TRUE(f.neg(BigUInt(0)).isZero());
}

TEST(PrimeField, CounterTracksOps)
{
    PrimeField f(BigUInt(10007));
    FieldOpCounts counts;
    f.attachCounter(&counts);
    Rng rng(26);
    BigUInt a = f.random(rng), b = f.random(rng);
    f.mul(a, b);
    f.mul(a, b);
    f.sqr(a);
    f.add(a, b);
    f.sub(a, b);
    f.neg(a);
    f.mulSmall(a, 7);
    if (!a.isZero())
        f.inv(a);
    f.attachCounter(nullptr);
    f.mul(a, b);  // not counted
    EXPECT_EQ(counts.mul, 2u);
    EXPECT_EQ(counts.sqr, 1u);
    EXPECT_EQ(counts.add, 1u);
    EXPECT_EQ(counts.sub, 2u);  // sub + neg
    EXPECT_EQ(counts.mulSmall, 1u);
    EXPECT_EQ(counts.inv, a.isZero() ? 0u : 1u);
}

TEST(PrimeField, CountsAddUp)
{
    FieldOpCounts a, b;
    a.mul = 3;
    a.inv = 1;
    b.mul = 2;
    b.sqr = 7;
    FieldOpCounts s = a + b;
    EXPECT_EQ(s.mul, 5u);
    EXPECT_EQ(s.sqr, 7u);
    EXPECT_EQ(s.inv, 1u);
    s.reset();
    EXPECT_EQ(s.mul, 0u);
}

TEST(Secp160r1, PrimeShape)
{
    BigUInt p = Secp160r1Field::primeValue();
    EXPECT_EQ(p.toHex(), "ffffffffffffffffffffffffffffffff7fffffff");
    Rng rng(27);
    EXPECT_TRUE(isProbablePrime(p, rng));
}

TEST(Secp160r1, FastReductionMatchesGeneric)
{
    Secp160r1Field fast;
    PrimeField slow(Secp160r1Field::primeValue());
    Rng rng(28);
    for (int i = 0; i < 200; i++) {
        BigUInt a = fast.random(rng), b = fast.random(rng);
        EXPECT_EQ(fast.mul(a, b), slow.mul(a, b));
        EXPECT_EQ(fast.sqr(a), slow.sqr(a));
    }
}

TEST(Secp160r1, Axioms)
{
    Secp160r1Field f;
    checkFieldAxioms(f, 29);
}

TEST(Secp160k1, PrimeShapeAndReduction)
{
    BigUInt p = Secp160k1Field::primeValue();
    EXPECT_EQ(p.toHex(), "fffffffffffffffffffffffffffffffeffffac73");
    Rng rng(30);
    EXPECT_TRUE(isProbablePrime(p, rng));

    Secp160k1Field fast;
    PrimeField slow(p);
    for (int i = 0; i < 100; i++) {
        BigUInt a = fast.random(rng), b = fast.random(rng);
        EXPECT_EQ(fast.mul(a, b), slow.mul(a, b));
    }
}

TEST(Secp160k1, Axioms)
{
    Secp160k1Field f;
    checkFieldAxioms(f, 31);
}

TEST(PseudoMersenne, EdgeValues)
{
    BigUInt p = Secp160r1Field::primeValue();
    BigUInt c = BigUInt::powerOfTwo(31) + BigUInt(1);
    // t = p^2 - 1 is the largest product of canonical operands... and
    // boundary values reduce correctly.
    for (const BigUInt &t : {BigUInt(0), p - BigUInt(1), p, p + BigUInt(1),
                             (p - BigUInt(1)) * (p - BigUInt(1))}) {
        EXPECT_EQ(pseudoMersenneReduce(t, p, 160, c), t % p);
    }
}
