/**
 * @file
 * Validation of the generated OPF assembly routines against the host
 * golden model (OpfField), across all three processor modes, plus the
 * cycle-count properties the paper reports in Table I and
 * Section III-B/IV-A.
 */

#include <gtest/gtest.h>

#include "avrgen/opf_harness.hh"
#include "bigint/big_int.hh"
#include "nt/mont_inverse.hh"
#include "nt/opf_prime.hh"
#include "support/random.hh"

using namespace jaavr;

namespace
{

class AvrGenTest : public ::testing::TestWithParam<CpuMode>
{
  protected:
    AvrGenTest()
        : prime(paperOpfPrime()), gold(prime),
          lib(prime, GetParam()), rng(0x1234 + int(GetParam()))
    {}

    OpfField::Words
    randomWords()
    {
        return gold.fromBig(BigUInt::randomBits(rng, gold.bits()));
    }

    OpfPrime prime;
    OpfField gold;
    OpfAvrLibrary lib;
    Rng rng;
};

} // anonymous namespace

TEST_P(AvrGenTest, AddMatchesGoldenModel)
{
    for (int i = 0; i < 100; i++) {
        auto a = randomWords(), b = randomWords();
        OpfRun r = lib.add(a, b);
        EXPECT_EQ(r.result, gold.add(a, b))
            << "a=" << gold.toBig(a).toHex()
            << " b=" << gold.toBig(b).toHex();
    }
}

TEST_P(AvrGenTest, SubMatchesGoldenModel)
{
    for (int i = 0; i < 100; i++) {
        auto a = randomWords(), b = randomWords();
        OpfRun r = lib.sub(a, b);
        EXPECT_EQ(r.result, gold.sub(a, b))
            << "a=" << gold.toBig(a).toHex()
            << " b=" << gold.toBig(b).toHex();
    }
}

TEST_P(AvrGenTest, MulMatchesGoldenModel)
{
    for (int i = 0; i < 60; i++) {
        auto a = randomWords(), b = randomWords();
        OpfRun r = lib.mul(a, b);
        EXPECT_EQ(r.result, gold.montMul(a, b))
            << "a=" << gold.toBig(a).toHex()
            << " b=" << gold.toBig(b).toHex();
    }
}

TEST_P(AvrGenTest, EdgeOperands)
{
    std::vector<OpfField::Words> edges = {
        OpfField::Words(gold.words(), 0),           // zero
        gold.fromBig(BigUInt(1)),                   // one
        gold.fromBig(gold.modulus() - BigUInt(1)),  // p - 1
        gold.fromBig(gold.modulus()),               // p (incomplete)
        OpfField::Words(gold.words(), 0xffffffff),  // 2^160 - 1
    };
    for (const auto &a : edges) {
        for (const auto &b : edges) {
            EXPECT_EQ(lib.add(a, b).result, gold.add(a, b));
            EXPECT_EQ(lib.sub(a, b).result, gold.sub(a, b));
            EXPECT_EQ(lib.mul(a, b).result, gold.montMul(a, b));
        }
    }
}

TEST_P(AvrGenTest, BorrowRippleCornerCase)
{
    // The 2^-32 corner: sum with zero LSW and carry set exercises the
    // out-of-line ripple path (paper, Section III-A).
    auto a = gold.fromBig(BigUInt::powerOfTwo(159) + BigUInt::powerOfTwo(32));
    auto b = gold.fromBig(BigUInt::powerOfTwo(159));
    EXPECT_EQ(lib.add(a, b).result, gold.add(a, b));
}

TEST_P(AvrGenTest, InverseMatchesHostReference)
{
    // The assembly routine mirrors nt/mont_inverse bit for bit.
    for (int i = 0; i < 15; i++) {
        BigUInt a = BigUInt(1) +
                    BigUInt::random(rng, prime.p - BigUInt(1));
        OpfRun r = lib.inv(gold.fromBig(a));
        BigUInt expect = montInverse(a, prime.p, gold.bits());
        EXPECT_EQ(gold.toBig(r.result), expect) << a.toHex();
    }
}

TEST_P(AvrGenTest, InverseIsMontgomeryDomainInverse)
{
    // a^-1 * 2^160 is exactly what the Montgomery-domain field code
    // needs: montMul(inv(aR), aR * R) = ... check the defining
    // property inv(a) * a = 2^160 (mod p).
    for (int i = 0; i < 10; i++) {
        BigUInt a = BigUInt(1) +
                    BigUInt::random(rng, prime.p - BigUInt(1));
        OpfRun r = lib.inv(gold.fromBig(a));
        BigUInt prod = gold.toBig(r.result).mulMod(a, prime.p);
        EXPECT_EQ(prod, BigUInt::powerOfTwo(160) % prime.p);
    }
}

TEST_P(AvrGenTest, InverseEdgeOperands)
{
    // a = 1: inverse is 2^160 mod p; a = p - 1 = -1: inverse is
    // p - (2^160 mod p).
    BigUInt r_mod_p = BigUInt::powerOfTwo(160) % prime.p;
    OpfRun one = lib.inv(gold.fromBig(BigUInt(1)));
    EXPECT_EQ(gold.toBig(one.result), r_mod_p);
    OpfRun minus1 = lib.inv(gold.fromBig(prime.p - BigUInt(1)));
    EXPECT_EQ(gold.toBig(minus1.result), prime.p - r_mod_p);
}

TEST_P(AvrGenTest, AddCycleCountIsOperandIndependent)
{
    // The branch-less fold gives constant time except for the 2^-32
    // ripple; random operands must all take identical cycles.
    uint64_t first = 0;
    for (int i = 0; i < 20; i++) {
        OpfRun r = lib.add(randomWords(), randomWords());
        if (i == 0)
            first = r.cycles;
        else
            EXPECT_EQ(r.cycles, first);
    }
}

TEST_P(AvrGenTest, MulCycleCountIsOperandIndependent)
{
    uint64_t first = 0;
    for (int i = 0; i < 10; i++) {
        OpfRun r = lib.mul(randomWords(), randomWords());
        if (i == 0)
            first = r.cycles;
        else
            EXPECT_EQ(r.cycles, first);
    }
}

INSTANTIATE_TEST_SUITE_P(AllModes, AvrGenTest,
                         ::testing::Values(CpuMode::CA, CpuMode::FAST,
                                           CpuMode::ISE),
                         [](const ::testing::TestParamInfo<CpuMode> &info) {
                             return cpuModeName(info.param);
                         });

TEST(AvrGenCycles, TableOneShape)
{
    // Table I shape: FAST speeds up add by ~1.65x and mul by ~1.3x;
    // the MAC unit brings mul down by another ~4.6x while leaving
    // add/sub unchanged.
    OpfPrime prime = paperOpfPrime();
    OpfField gold(prime);
    Rng rng(55);
    auto a = gold.fromBig(BigUInt::randomBits(rng, 160));
    auto b = gold.fromBig(BigUInt::randomBits(rng, 160));

    OpfAvrLibrary ca(prime, CpuMode::CA);
    OpfAvrLibrary fast(prime, CpuMode::FAST);
    OpfAvrLibrary ise(prime, CpuMode::ISE);

    uint64_t add_ca = ca.add(a, b).cycles;
    uint64_t add_fast = fast.add(a, b).cycles;
    uint64_t add_ise = ise.add(a, b).cycles;
    uint64_t mul_ca = ca.mul(a, b).cycles;
    uint64_t mul_fast = fast.mul(a, b).cycles;
    uint64_t mul_ise = ise.mul(a, b).cycles;

    // Additions: FAST = ISE (the MAC does not help them).
    EXPECT_EQ(add_fast, add_ise);
    double add_speedup = double(add_ca) / double(add_fast);
    EXPECT_GT(add_speedup, 1.4);
    EXPECT_LT(add_speedup, 2.0);

    // Multiplication: CA in the thousands, ISE in the hundreds.
    EXPECT_GT(mul_ca, 2500u);
    EXPECT_LT(mul_ca, 4200u);
    EXPECT_GT(mul_fast, 1800u);
    EXPECT_LT(mul_fast, 3200u);
    EXPECT_GT(mul_ise, 400u);
    EXPECT_LT(mul_ise, 800u);

    double mul_fast_speedup = double(mul_ca) / double(mul_fast);
    EXPECT_GT(mul_fast_speedup, 1.15);
    EXPECT_LT(mul_fast_speedup, 1.6);
    double mul_ise_speedup = double(mul_fast) / double(mul_ise);
    EXPECT_GT(mul_ise_speedup, 3.0);
    EXPECT_LT(mul_ise_speedup, 7.0);
}

TEST(AvrGenCycles, IseInstructionMix)
{
    // Section IV-A: the ISE multiplication's 100 MAC-triggering loads
    // and 40 SWAPs (25 multiply blocks, 5 reduction words).
    OpfPrime prime = paperOpfPrime();
    OpfField gold(prime);
    Rng rng(56);
    OpfAvrLibrary ise(prime, CpuMode::ISE);
    auto a = gold.fromBig(BigUInt::randomBits(rng, 160));
    auto b = gold.fromBig(BigUInt::randomBits(rng, 160));
    ise.machine().resetStats();
    ise.mul(a, b);
    const ExecStats &st = ise.machine().stats();
    EXPECT_EQ(st.count(Op::SWAP), 40u);
    EXPECT_EQ(ise.machine().mac().totalMacs(), 25u * 8u + 5u * 8u);
}

TEST(AvrGenCycles, GlvPrimeRoutinesAlsoValidate)
{
    // The generators are parameterized by the prime; check another u.
    OpfPrime prime = makeOpf(65286, 144);  // u = 0 mod 3 example shape
    OpfField gold(prime);
    OpfAvrLibrary lib(prime, CpuMode::CA);
    Rng rng(57);
    for (int i = 0; i < 20; i++) {
        auto a = gold.fromBig(BigUInt::randomBits(rng, 160));
        auto b = gold.fromBig(BigUInt::randomBits(rng, 160));
        EXPECT_EQ(lib.add(a, b).result, gold.add(a, b));
        EXPECT_EQ(lib.mul(a, b).result, gold.montMul(a, b));
    }
    // The inversion generator is parameterized by the prime too.
    BigUInt x = BigUInt(1) + BigUInt::random(rng, prime.p - BigUInt(1));
    EXPECT_EQ(gold.toBig(lib.inv(gold.fromBig(x)).result),
              montInverse(x, prime.p, gold.bits()));
}

TEST(AvrGenCycles, RomBytesReported)
{
    OpfAvrLibrary lib(paperOpfPrime(), CpuMode::CA);
    EXPECT_GT(lib.romBytes(), 1000u);
    EXPECT_LT(lib.romBytes(), 32768u);
}
