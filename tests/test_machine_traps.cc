/**
 * @file
 * Trap semantics of the Machine: every anomaly that used to
 * panic()-abort must now raise a recoverable Trap through
 * run()/call(), with identical behavior on the step() reference path
 * and all runFast instantiations, and without retiring the faulting
 * instruction. Covers each memory-protection boundary (SRAM data
 * limit, stack guard, erased flash), the exhaustive illegal-opcode
 * space, stack overflow from a recursive program, and fast-vs-
 * reference trap equality on random wild-access programs.
 */

#include <gtest/gtest.h>

#include "avr/machine.hh"
#include "avrasm/assembler.hh"
#include "support/random.hh"

using namespace jaavr;

namespace
{

/** Run the same program on both paths; expect the same trap. */
Trap
trapOnBothPaths(const std::string &src, CpuMode mode = CpuMode::CA,
                uint64_t budget = Machine::defaultCycleBudget)
{
    Program prog = assemble(src, "t");
    Trap traps[2];
    uint64_t cycles[2];
    for (int reference = 0; reference < 2; reference++) {
        Machine m(mode);
        m.forceReference = reference != 0;
        m.loadProgram(prog.words, 0);
        RunResult r = m.call(0, budget);
        traps[reference] = r.trap;
        cycles[reference] = r.cycles;
        EXPECT_EQ(r.trap, m.trap());
    }
    EXPECT_EQ(traps[0], traps[1]) << "fast: " << traps[0].describe()
                                  << " vs ref: " << traps[1].describe();
    EXPECT_EQ(cycles[0], cycles[1]);
    return traps[0];
}

} // namespace

// --- SRAM data-limit boundary ---------------------------------------

TEST(MachineTraps, LoadAtDataLimitIsFine)
{
    // 0x10ff is the last byte of the ATmega128's internal SRAM.
    Trap t = trapOnBothPaths(R"(
        ldi r26, 0xff
        ldi r27, 0x10
        ld r16, X
        ret
    )");
    EXPECT_EQ(t.kind, TrapKind::None);
}

TEST(MachineTraps, LoadPastDataLimitTraps)
{
    Trap t = trapOnBothPaths(R"(
        ldi r26, 0x00
        ldi r27, 0x11
        ld r16, X
        ret
    )");
    EXPECT_EQ(t.kind, TrapKind::SramOutOfBounds);
    EXPECT_EQ(t.addr, 0x1100u);
    EXPECT_EQ(t.pc, 2u);  // the LD, after two LDIs
}

TEST(MachineTraps, StorePastDataLimitTraps)
{
    Trap t = trapOnBothPaths(R"(
        ldi r28, 0xfd
        ldi r29, 0x10
        ldi r16, 0xaa
        std Y+3, r16
        ret
    )");
    EXPECT_EQ(t.kind, TrapKind::SramOutOfBounds);
    EXPECT_EQ(t.addr, 0x1100u);
}

TEST(MachineTraps, StsLdsPastDataLimitTrap)
{
    Trap st = trapOnBothPaths("ldi r16, 1\nsts 0x2000, r16\nret");
    EXPECT_EQ(st.kind, TrapKind::SramOutOfBounds);
    EXPECT_EQ(st.addr, 0x2000u);

    Trap ld = trapOnBothPaths("lds r16, 0xfffe\nret");
    EXPECT_EQ(ld.kind, TrapKind::SramOutOfBounds);
    EXPECT_EQ(ld.addr, 0xfffeu);
}

TEST(MachineTraps, TrappingStoreDoesNotWrite)
{
    Program prog = assemble("ldi r16, 0xaa\nsts 0x1100, r16\nret", "t");
    for (int reference = 0; reference < 2; reference++) {
        Machine m(CpuMode::CA);
        m.forceReference = reference != 0;
        m.loadProgram(prog.words, 0);
        // Raise the limit to plant a sentinel where the store lands,
        // then restore it for the run.
        m.setDataLimit(0xffff);
        m.writeData(0x1100, 0x55);
        m.setDataLimit(0x10ff);
        RunResult r = m.call(0);
        EXPECT_EQ(r.trap.kind, TrapKind::SramOutOfBounds);
        m.setDataLimit(0xffff);
        EXPECT_EQ(m.readData(0x1100), 0x55);  // untouched
    }
}

TEST(MachineTraps, CustomDataLimitIsHonored)
{
    Program prog = assemble("sts 0x0480, r16\nret", "t");
    for (int reference = 0; reference < 2; reference++) {
        Machine m(CpuMode::CA);
        m.forceReference = reference != 0;
        m.loadProgram(prog.words, 0);
        m.setDataLimit(0x047f);
        RunResult r = m.call(0);
        EXPECT_EQ(r.trap.kind, TrapKind::SramOutOfBounds);
        EXPECT_EQ(r.trap.addr, 0x0480u);
    }
}

TEST(MachineTraps, TrappedInstructionDoesNotRetire)
{
    // The trapping LD leaves PC on itself and counts no cycles or
    // instructions for it; the X pointer's pre-decrement and the
    // open-bus 0xff in the destination register are the partial side
    // effects, architecturally visible identically on both paths.
    Program prog = assemble(R"(
        ldi r26, 0x01
        ldi r27, 0x11
        ld r16, -X
        ret
    )", "t");
    for (int reference = 0; reference < 2; reference++) {
        Machine m(CpuMode::CA);
        m.forceReference = reference != 0;
        m.loadProgram(prog.words, 0);
        RunResult r = m.call(0);
        EXPECT_EQ(r.trap.kind, TrapKind::SramOutOfBounds);
        EXPECT_EQ(r.trap.pc, 2u);
        EXPECT_EQ(m.pc(), 2u);
        EXPECT_EQ(m.stats().instructions, 2u);  // only the two LDIs
        EXPECT_EQ(m.x(), 0x1100u);   // pre-decrement happened
        EXPECT_EQ(m.reg(16), 0xffu); // open-bus value, both paths
    }
}

// --- Stack guard ----------------------------------------------------

TEST(MachineTraps, RecursiveProgramOverflowsIntoGuard)
{
    // Unbounded recursion: each rcall pushes a 2-byte return address,
    // marching SP down from 0x10ff until it hits the stack guard
    // before corrupting the data segment below it.
    Program prog = assemble("f: rcall f\nret", "t");
    for (int reference = 0; reference < 2; reference++) {
        Machine m(CpuMode::CA);
        m.forceReference = reference != 0;
        m.loadProgram(prog.words, 0);
        m.setStackGuard(0x1000);
        // Sentinel bytes just below the guard: the overflow must not
        // reach them.
        m.writeData(0x0fff, 0x5a);
        m.writeData(0x0ffe, 0xa5);
        RunResult r = m.call(0);
        EXPECT_EQ(r.trap.kind, TrapKind::StackOverflow);
        EXPECT_LT(r.trap.addr, 0x1000u);
        EXPECT_EQ(m.readData(0x0fff), 0x5a);
        EXPECT_EQ(m.readData(0x0ffe), 0xa5);
    }
}

TEST(MachineTraps, PushBelowGuardTrapsBeforeWrite)
{
    Program prog = assemble("push r16\nret", "t");
    for (int reference = 0; reference < 2; reference++) {
        Machine m(CpuMode::CA);
        m.forceReference = reference != 0;
        m.loadProgram(prog.words, 0);
        m.setSp(0x00ff);  // below the default guard at sramBase
        m.setReg(16, 0xee);
        RunResult r = m.run();  // run, not call: call itself pushes
        EXPECT_EQ(r.trap.kind, TrapKind::StackOverflow);
        EXPECT_EQ(r.trap.addr, 0x00ffu);
        EXPECT_EQ(m.sp(), 0x00ffu);  // SP not decremented
    }
}

TEST(MachineTraps, PopUnderflowPastSramTopTraps)
{
    // SP at the SRAM top: a pop increments to 0x1100, beyond the
    // data limit.
    Program prog = assemble("pop r16\nret", "t");
    for (int reference = 0; reference < 2; reference++) {
        Machine m(CpuMode::CA);
        m.forceReference = reference != 0;
        m.loadProgram(prog.words, 0);
        RunResult r = m.run();
        EXPECT_EQ(r.trap.kind, TrapKind::SramOutOfBounds);
        EXPECT_EQ(r.trap.addr, 0x1100u);
    }
}

// --- Flash boundary -------------------------------------------------

TEST(MachineTraps, JumpIntoErasedFlashTraps)
{
    // JMP into never-programmed flash: the erased 0xffff word is not
    // a valid instruction, distinguished from an in-program illegal
    // encoding by the FlashOutOfBounds kind.
    Trap t = trapOnBothPaths("jmp 0x5000\nret");
    EXPECT_EQ(t.kind, TrapKind::FlashOutOfBounds);
    EXPECT_EQ(t.pc, 0x5000u);
    EXPECT_EQ(t.addr, 0xffffu);
}

TEST(MachineTraps, RunningOffProgramEndTraps)
{
    // No RET: execution falls off the program into erased flash.
    Trap t = trapOnBothPaths("ldi r16, 1\nldi r17, 2");
    EXPECT_EQ(t.kind, TrapKind::FlashOutOfBounds);
    EXPECT_EQ(t.pc, 2u);
}

// --- Illegal opcodes ------------------------------------------------

TEST(MachineTraps, ExhaustiveIllegalOpcodesRaiseNotAbort)
{
    // Every undecodable word in the 16-bit opcode space must trap
    // in-process. Valid words are skipped (they may touch arbitrary
    // state); the flash word behind the probe stays erased so a
    // skipping instruction would itself trap instead of running wild.
    Machine m(CpuMode::CA);
    unsigned illegal = 0;
    for (uint32_t w = 0; w <= 0xffff; w++) {
        if (decode(static_cast<uint16_t>(w), 0).op != Op::INVALID)
            continue;
        illegal++;
        m.reset();
        m.loadProgram({static_cast<uint16_t>(w)}, 0);
        RunResult r = m.call(0, 100);
        ASSERT_FALSE(r.ok()) << "word 0x" << std::hex << w;
        ASSERT_EQ(r.trap.kind, w == 0xffff ? TrapKind::FlashOutOfBounds
                                           : TrapKind::IllegalOpcode)
            << "word 0x" << std::hex << w;
        ASSERT_EQ(r.trap.pc, 0u);
        ASSERT_EQ(r.trap.addr, w);
    }
    EXPECT_GT(illegal, 0u);
}

TEST(MachineTraps, IllegalOpcodeIdenticalOnBothPaths)
{
    Machine fast(CpuMode::CA), ref(CpuMode::CA);
    ref.forceReference = true;
    for (Machine *m : {&fast, &ref}) {
        m->loadProgram({0x9404}, 0);
        RunResult r = m->call(0);
        EXPECT_EQ(r.trap.kind, TrapKind::IllegalOpcode);
        EXPECT_EQ(r.trap.addr, 0x9404u);
        EXPECT_EQ(r.cycles, 0u);
    }
    EXPECT_EQ(fast.trap(), ref.trap());
}

// --- Budget and recovery --------------------------------------------

TEST(MachineTraps, BudgetTrapIsRecoverable)
{
    Machine m(CpuMode::FAST);
    m.loadProgram(assemble("loop: rjmp loop", "t").words);
    for (int i = 0; i < 3; i++) {
        RunResult r = m.call(0, 100);
        EXPECT_EQ(r.trap.kind, TrapKind::CycleBudget);
        EXPECT_GE(r.cycles, 100u);
        m.reset();
    }
    // Still usable for a clean program afterwards.
    m.loadProgram(assemble("ldi r20, 9\nret", "t").words);
    RunResult ok = m.call(0);
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(m.reg(20), 9);
}

TEST(MachineTraps, TrapDescribeNamesEveryKind)
{
    for (TrapKind k :
         {TrapKind::None, TrapKind::IllegalOpcode,
          TrapKind::FlashOutOfBounds, TrapKind::SramOutOfBounds,
          TrapKind::StackOverflow, TrapKind::CycleBudget,
          TrapKind::MacHazard}) {
        EXPECT_STRNE(trapKindName(k), "?");
        Trap t{k, 0x123, 7};
        EXPECT_FALSE(t.describe().empty());
    }
}

// --- Fast-vs-reference equality on random wild programs -------------

TEST(MachineTraps, RandomWildProgramsTrapIdentically)
{
    // Programs whose pointers straddle the data limit and whose
    // stacks run close to the guard: every run must end with the
    // same trap, PC, cycle count and register file on both paths.
    Rng rng(0xfa117);
    unsigned trapped = 0;
    for (unsigned round = 0; round < 40; round++) {
        std::string src;
        src += "ldi r26, " + std::to_string(rng.below(256)) + "\n";
        src += "ldi r27, 0x10\n";  // X near the 0x10ff limit
        src += "ldi r28, 0xf0\nldi r29, 0x10\n";  // Y above it
        src += "ldi r30, 0x00\nldi r31, 0x02\n";
        for (unsigned i = 0; i < 30; i++) {
            switch (rng.below(8)) {
              case 0: src += "ld r16, X+\n"; break;
              case 1: src += "ldd r17, Y+" +
                             std::to_string(rng.below(32)) + "\n"; break;
              case 2: src += "std Y+" + std::to_string(rng.below(32)) +
                             ", r16\n"; break;
              case 3: src += "st Z+, r17\n"; break;
              case 4: src += "push r16\n"; break;
              case 5: src += "pop r18\n"; break;
              case 6: src += "adiw r26, " +
                             std::to_string(rng.below(16)) + "\n"; break;
              default: src += "inc r16\n"; break;
            }
        }
        src += "ret\n";

        Program prog = assemble(src, "wild");
        Machine fast(CpuMode::CA), ref(CpuMode::CA);
        ref.forceReference = true;
        for (Machine *m : {&fast, &ref}) {
            m->loadProgram(prog.words, 0);
            m->call(0);
        }
        EXPECT_EQ(fast.trap(), ref.trap())
            << "round " << round << ": " << fast.trap().describe()
            << " vs " << ref.trap().describe();
        EXPECT_EQ(fast.pc(), ref.pc());
        EXPECT_EQ(fast.sp(), ref.sp());
        EXPECT_EQ(fast.stats().cycles, ref.stats().cycles);
        EXPECT_EQ(fast.stats().instructions, ref.stats().instructions);
        for (unsigned i = 0; i < 32; i++)
            EXPECT_EQ(fast.reg(i), ref.reg(i)) << "r" << i;
        if (fast.trap())
            trapped++;
    }
    // The address mix must actually exercise the boundaries.
    EXPECT_GT(trapped, 0u);
}
