/**
 * @file
 * The ECC service end to end: the bounded lock-free queue's contract
 * (FIFO, capacity, backpressure), every op on every curve against
 * the single-call library golden path, bit-identical batched vs
 * single-call signatures (explicit nonces), error and hardened
 * paths, deterministic full-batch occupancy, and the idempotent
 * metrics publication.
 */

#include <gtest/gtest.h>

#include "curves/standard_curves.hh"
#include "curves/validate.hh"
#include "service/service.hh"

using namespace jaavr;

namespace
{

ServiceConfig
testConfig(unsigned workers = 2, bool amortize = true)
{
    ServiceConfig cfg;
    cfg.workers = workers;
    cfg.amortize = amortize;
    cfg.rngSeed = 7;
    return cfg;
}

BigUInt
scalarBelow(Rng &rng, const BigUInt &n)
{
    return BigUInt(1) + BigUInt::random(rng, n - BigUInt(1));
}

} // namespace

// --- BoundedMpmcQueue --------------------------------------------------

TEST(ServiceQueue, FifoAndCapacity)
{
    BoundedMpmcQueue<ServiceRequest *> q(5); // rounds up to 8
    EXPECT_EQ(q.capacity(), 8u);

    std::vector<ServiceRequest> reqs(9);
    for (size_t i = 0; i < 8; i++)
        EXPECT_TRUE(q.tryPush(&reqs[i]));
    EXPECT_TRUE(q.sizeApprox() == 8u);
    // Full: the ninth push is the backpressure signal.
    EXPECT_FALSE(q.tryPush(&reqs[8]));

    ServiceRequest *out = nullptr;
    for (size_t i = 0; i < 8; i++) {
        ASSERT_TRUE(q.tryPop(out));
        EXPECT_EQ(out, &reqs[i]);
    }
    EXPECT_FALSE(q.tryPop(out));
    EXPECT_EQ(q.sizeApprox(), 0u);

    // Wraps around the ring cleanly.
    for (int lap = 0; lap < 3; lap++) {
        for (size_t i = 0; i < 6; i++)
            EXPECT_TRUE(q.tryPush(&reqs[i]));
        for (size_t i = 0; i < 6; i++) {
            ASSERT_TRUE(q.tryPop(out));
            EXPECT_EQ(out, &reqs[i]);
        }
    }
}

// --- Service lifecycle and routing ------------------------------------

TEST(Service, RejectsAfterStop)
{
    EccService svc(testConfig(1));
    svc.start();
    svc.stop();
    ServiceRequest r;
    EXPECT_FALSE(svc.trySubmit(&r));
    EXPECT_FALSE(svc.submit(&r));
}

TEST(Service, StopDrainsQueuedRequests)
{
    // Everything accepted before stop() completes, even requests that
    // were still queued when stop() was called (pre-start submission
    // queues them all).
    EccService svc(testConfig(1));
    Rng rng(1);
    const BigUInt &n = secp160r1Generator().order;
    std::vector<ServiceRequest> reqs(8);
    for (auto &r : reqs) {
        r.op = ServiceOp::Sign;
        r.curve = ServiceCurve::Secp160r1;
        r.message = "drain";
        r.privateKey = scalarBelow(rng, n);
        ASSERT_TRUE(svc.trySubmit(&r));
    }
    svc.start();
    svc.stop();
    for (auto &r : reqs) {
        EXPECT_TRUE(r.done.load());
        EXPECT_EQ(r.status, ServiceStatus::Ok) << r.error;
    }
    EXPECT_EQ(svc.opsProcessed(), reqs.size());
}

// --- Sign/Verify/Keygen against the library golden path ----------------

TEST(Service, SignMatchesSingleCallOnEveryOrderKnownCurve)
{
    // Explicit nonces make the signature deterministic: the service
    // (amortized, multi-worker) must be bit-identical to the plain
    // library call.
    Ecdsa r1(secp160r1Curve(), secp160r1Generator().g,
             secp160r1Generator().order);
    Ecdsa k1(secp160k1Curve());
    Ecdsa glv(glvOpfCurve());
    const std::pair<ServiceCurve, const Ecdsa *> goldens[] = {
        {ServiceCurve::Secp160r1, &r1},
        {ServiceCurve::Secp160k1, &k1},
        {ServiceCurve::GlvOpf, &glv},
    };

    EccService svc(testConfig(2, true));
    svc.start();
    Rng rng(2);
    for (auto [curve, signer] : goldens) {
        const BigUInt &n = signer->order();
        std::vector<ServiceRequest> reqs(6);
        std::vector<BigUInt> ds, ks;
        for (size_t i = 0; i < reqs.size(); i++) {
            ds.push_back(scalarBelow(rng, n));
            ks.push_back(scalarBelow(rng, n));
            ServiceRequest &r = reqs[i];
            r.op = ServiceOp::Sign;
            r.curve = curve;
            r.message = "msg " + std::to_string(i);
            r.privateKey = ds[i];
            r.nonce = ks[i];
            ASSERT_TRUE(svc.submit(&r));
        }
        for (size_t i = 0; i < reqs.size(); i++) {
            EccService::wait(reqs[i]);
            ASSERT_EQ(reqs[i].status, ServiceStatus::Ok)
                << serviceCurveName(curve) << ": " << reqs[i].error;
            auto expect =
                signer->signWithNonce(reqs[i].message, ds[i], ks[i]);
            ASSERT_TRUE(expect.has_value());
            EXPECT_EQ(reqs[i].sigOut.r, expect->r);
            EXPECT_EQ(reqs[i].sigOut.s, expect->s);
        }
    }
    svc.stop();
}

TEST(Service, FullBatchIsBitIdenticalToSingleCalls)
{
    // One worker, everything queued before start(): the worker's
    // first drain processes the entire micro-batch through the
    // amortized path (shared comb + batched inversions), pinned by
    // the batch counter. The signatures must still equal the
    // single-call library results.
    ServiceConfig cfg = testConfig(1, true);
    cfg.batchMax = 16;
    EccService svc(cfg);
    Ecdsa golden(secp160r1Curve(), secp160r1Generator().g,
                 secp160r1Generator().order);
    const BigUInt &n = golden.order();
    Rng rng(3);

    std::vector<ServiceRequest> reqs(12);
    std::vector<BigUInt> ds, ks;
    for (size_t i = 0; i < reqs.size(); i++) {
        ds.push_back(scalarBelow(rng, n));
        ks.push_back(scalarBelow(rng, n));
        ServiceRequest &r = reqs[i];
        r.op = ServiceOp::Sign;
        r.curve = ServiceCurve::Secp160r1;
        r.message = "batch " + std::to_string(i);
        r.privateKey = ds[i];
        r.nonce = ks[i];
        ASSERT_TRUE(svc.trySubmit(&r));
    }
    svc.start();
    for (auto &r : reqs)
        EccService::wait(r);
    svc.stop();

    for (size_t i = 0; i < reqs.size(); i++) {
        ASSERT_EQ(reqs[i].status, ServiceStatus::Ok) << reqs[i].error;
        auto expect = golden.signWithNonce(reqs[i].message, ds[i], ks[i]);
        ASSERT_TRUE(expect.has_value());
        EXPECT_EQ(reqs[i].sigOut.r, expect->r);
        EXPECT_EQ(reqs[i].sigOut.s, expect->s);
    }

    // The whole batch went through one drain.
    MetricsRegistry reg;
    svc.publishMetrics(reg);
    EXPECT_EQ(reg.counter("service_batches", {{"worker", "0"}}).value(),
              1u);
    EXPECT_EQ(reg.counter("service_ops", {{"worker", "0"}}).value(),
              reqs.size());
}

TEST(Service, UnamortizedConfigurationAgrees)
{
    // amortize = false is the pre-existing single-call path; the two
    // configurations must produce identical signatures.
    ServiceConfig amort = testConfig(1, true);
    ServiceConfig plain = testConfig(1, false);
    EccService a(amort), b(plain);
    a.start();
    b.start();
    Rng rng(4);
    const BigUInt &n = glvOpfCurve().order();
    for (int i = 0; i < 4; i++) {
        ServiceRequest ra, rb;
        for (ServiceRequest *r : {&ra, &rb}) {
            r->op = ServiceOp::Sign;
            r->curve = ServiceCurve::GlvOpf;
            r->message = "cfg";
            r->privateKey = BigUInt(1234 + i);
            r->nonce = scalarBelow(rng, n);
        }
        rb.nonce = ra.nonce;
        ASSERT_TRUE(a.submit(&ra));
        ASSERT_TRUE(b.submit(&rb));
        EccService::wait(ra);
        EccService::wait(rb);
        ASSERT_EQ(ra.status, ServiceStatus::Ok) << ra.error;
        ASSERT_EQ(rb.status, ServiceStatus::Ok) << rb.error;
        EXPECT_EQ(ra.sigOut.r, rb.sigOut.r);
        EXPECT_EQ(ra.sigOut.s, rb.sigOut.s);
    }
    a.stop();
    b.stop();
}

TEST(Service, SignVerifyKeygenRoundTrip)
{
    EccService svc(testConfig(2));
    svc.start();

    ServiceRequest kg;
    kg.op = ServiceOp::Keygen;
    kg.curve = ServiceCurve::Secp160k1;
    ASSERT_TRUE(svc.submit(&kg));
    EccService::wait(kg);
    ASSERT_EQ(kg.status, ServiceStatus::Ok) << kg.error;
    EXPECT_TRUE(validatePoint(secp160k1Curve(), kg.keyOut.q,
                              &secp160k1Curve().order()));

    ServiceRequest sg;
    sg.op = ServiceOp::Sign;
    sg.curve = ServiceCurve::Secp160k1;
    sg.message = "round trip";
    sg.privateKey = kg.keyOut.d;
    ASSERT_TRUE(svc.submit(&sg));
    EccService::wait(sg);
    ASSERT_EQ(sg.status, ServiceStatus::Ok) << sg.error;

    ServiceRequest vf;
    vf.op = ServiceOp::Verify;
    vf.curve = ServiceCurve::Secp160k1;
    vf.message = "round trip";
    vf.signature = sg.sigOut;
    vf.peer = kg.keyOut.q;
    ASSERT_TRUE(svc.submit(&vf));
    EccService::wait(vf);
    ASSERT_EQ(vf.status, ServiceStatus::Ok) << vf.error;
    EXPECT_TRUE(vf.verifyOk);

    // A tampered message must not verify.
    ServiceRequest bad;
    bad.op = ServiceOp::Verify;
    bad.curve = ServiceCurve::Secp160k1;
    bad.message = "round trap";
    bad.signature = sg.sigOut;
    bad.peer = kg.keyOut.q;
    ASSERT_TRUE(svc.submit(&bad));
    EccService::wait(bad);
    ASSERT_EQ(bad.status, ServiceStatus::Ok) << bad.error;
    EXPECT_FALSE(bad.verifyOk);

    // Forced-key keygen is deterministic: q = d * G.
    Ecdsa golden(secp160k1Curve());
    ServiceRequest forced;
    forced.op = ServiceOp::Keygen;
    forced.curve = ServiceCurve::Secp160k1;
    forced.privateKey = kg.keyOut.d;
    ASSERT_TRUE(svc.submit(&forced));
    EccService::wait(forced);
    ASSERT_EQ(forced.status, ServiceStatus::Ok) << forced.error;
    EXPECT_EQ(forced.keyOut.q.x, kg.keyOut.q.x);
    EXPECT_EQ(forced.keyOut.q.y, kg.keyOut.q.y);

    svc.stop();
}

// --- Derive across all six curves --------------------------------------

TEST(Service, DeriveMatchesGoldenOnEveryCurve)
{
    EccService svc(testConfig(2));
    svc.start();
    Rng rng(5);

    // Weierstrass-family curves: peer is a generator multiple (so the
    // subgroup check passes where the order is known).
    struct WCase
    {
        ServiceCurve curve;
        const WeierstrassCurve *c;
        AffinePoint g;
        BigUInt bound;
    };
    const std::vector<WCase> wcases = {
        {ServiceCurve::Secp160r1, &secp160r1Curve(),
         secp160r1Generator().g, secp160r1Generator().order},
        {ServiceCurve::Secp160k1, &secp160k1Curve(),
         secp160k1Curve().generator(), secp160k1Curve().order()},
        {ServiceCurve::GlvOpf, &glvOpfCurve(),
         glvOpfCurve().generator(), glvOpfCurve().order()},
        {ServiceCurve::WeierstrassOpf, &weierstrassOpfCurve(),
         weierstrassOpfBasePoint(),
         weierstrassOpfCurve().field().modulus()},
    };
    for (const WCase &w : wcases) {
        BigUInt kb = scalarBelow(rng, w.bound);
        BigUInt ka = scalarBelow(rng, w.bound);
        AffinePoint peer = w.c->mulNaf(kb, w.g);
        ServiceRequest r;
        r.op = ServiceOp::Derive;
        r.curve = w.curve;
        r.privateKey = ka;
        r.peer = peer;
        ASSERT_TRUE(svc.submit(&r));
        EccService::wait(r);
        ASSERT_EQ(r.status, ServiceStatus::Ok)
            << serviceCurveName(w.curve) << ": " << r.error;
        AffinePoint expect = w.c->mulNaf(ka, peer);
        EXPECT_EQ(r.pointOut.x, expect.x);
        EXPECT_EQ(r.pointOut.y, expect.y);
    }

    // Montgomery: x-only.
    {
        const MontgomeryCurve &m = montgomeryOpfCurve();
        BigUInt k = scalarBelow(rng, m.field().modulus());
        ServiceRequest r;
        r.op = ServiceOp::Derive;
        r.curve = ServiceCurve::MontgomeryOpf;
        r.privateKey = k;
        r.peerX = montgomeryOpfBasePoint().x;
        ASSERT_TRUE(svc.submit(&r));
        EccService::wait(r);
        ASSERT_EQ(r.status, ServiceStatus::Ok) << r.error;
        auto expect = m.ladder(k, montgomeryOpfBasePoint().x);
        ASSERT_TRUE(expect.has_value());
        EXPECT_EQ(r.xOut, *expect);
    }

    // Edwards.
    {
        const EdwardsCurve &e = edwardsOpfCurve();
        BigUInt k = scalarBelow(rng, e.field().modulus());
        ServiceRequest r;
        r.op = ServiceOp::Derive;
        r.curve = ServiceCurve::EdwardsOpf;
        r.privateKey = k;
        r.peer = edwardsOpfBasePoint();
        ASSERT_TRUE(svc.submit(&r));
        EccService::wait(r);
        ASSERT_EQ(r.status, ServiceStatus::Ok) << r.error;
        AffinePoint expect = e.mulNaf(k, edwardsOpfBasePoint());
        EXPECT_EQ(r.pointOut.x, expect.x);
        EXPECT_EQ(r.pointOut.y, expect.y);
    }

    svc.stop();
}

TEST(Service, BatchedDeriveAgreesWithEcdh)
{
    // A full-batch derive on one worker (pre-start submission again),
    // checked with the Diffie-Hellman symmetry a*(b*G) == b*(a*G).
    ServiceConfig cfg = testConfig(1, true);
    cfg.batchMax = 16;
    EccService svc(cfg);
    const GlvCurve &c = glvOpfCurve();
    Rng rng(6);

    std::vector<BigUInt> as, bs;
    std::vector<ServiceRequest> reqs(6);
    for (size_t i = 0; i < reqs.size(); i++) {
        as.push_back(scalarBelow(rng, c.order()));
        bs.push_back(scalarBelow(rng, c.order()));
        ServiceRequest &r = reqs[i];
        r.op = ServiceOp::Derive;
        r.curve = ServiceCurve::GlvOpf;
        r.privateKey = as[i];
        r.peer = c.mulNaf(bs[i], c.generator());
        ASSERT_TRUE(svc.trySubmit(&r));
    }
    svc.start();
    for (auto &r : reqs)
        EccService::wait(r);
    svc.stop();

    for (size_t i = 0; i < reqs.size(); i++) {
        ASSERT_EQ(reqs[i].status, ServiceStatus::Ok) << reqs[i].error;
        AffinePoint other =
            c.mulNaf(bs[i], c.mulNaf(as[i], c.generator()));
        EXPECT_EQ(reqs[i].pointOut.x, other.x);
        EXPECT_EQ(reqs[i].pointOut.y, other.y);
    }
}

// --- Hardened routing ---------------------------------------------------

TEST(Service, HardenedDeriveMatchesPlain)
{
    EccService svc(testConfig(1));
    svc.start();
    Rng rng(8);
    const GlvCurve &c = secp160k1Curve();
    BigUInt k = scalarBelow(rng, c.order());
    AffinePoint peer =
        c.mulNaf(scalarBelow(rng, c.order()), c.generator());

    ServiceRequest plain, hard;
    for (ServiceRequest *r : {&plain, &hard}) {
        r->op = ServiceOp::Derive;
        r->curve = ServiceCurve::Secp160k1;
        r->privateKey = k;
        r->peer = peer;
    }
    hard.hardened = true;
    ASSERT_TRUE(svc.submit(&plain));
    ASSERT_TRUE(svc.submit(&hard));
    EccService::wait(plain);
    EccService::wait(hard);
    ASSERT_EQ(plain.status, ServiceStatus::Ok) << plain.error;
    ASSERT_EQ(hard.status, ServiceStatus::Ok) << hard.error;
    EXPECT_EQ(plain.pointOut.x, hard.pointOut.x);
    EXPECT_EQ(plain.pointOut.y, hard.pointOut.y);

    // Hardened derive needs a known order.
    ServiceRequest nope;
    nope.op = ServiceOp::Derive;
    nope.curve = ServiceCurve::WeierstrassOpf;
    nope.hardened = true;
    nope.privateKey = k;
    nope.peer = weierstrassOpfBasePoint();
    ASSERT_TRUE(svc.submit(&nope));
    EccService::wait(nope);
    EXPECT_EQ(nope.status, ServiceStatus::InvalidRequest);
    svc.stop();
}

// --- Error paths --------------------------------------------------------

TEST(Service, ErrorPaths)
{
    EccService svc(testConfig(1));
    svc.start();
    const BigUInt &n = secp160r1Generator().order;

    auto roundTrip = [&](ServiceRequest &r) {
        EXPECT_TRUE(svc.submit(&r));
        EccService::wait(r);
    };

    // ECDSA on an order-unknown curve.
    ServiceRequest s1;
    s1.op = ServiceOp::Sign;
    s1.curve = ServiceCurve::MontgomeryOpf;
    s1.message = "x";
    s1.privateKey = BigUInt(5);
    roundTrip(s1);
    EXPECT_EQ(s1.status, ServiceStatus::InvalidRequest);

    // Zero / out-of-range private key.
    ServiceRequest s2;
    s2.op = ServiceOp::Sign;
    s2.curve = ServiceCurve::Secp160r1;
    s2.message = "x";
    s2.privateKey = BigUInt(0);
    roundTrip(s2);
    EXPECT_EQ(s2.status, ServiceStatus::InvalidRequest);

    ServiceRequest s3;
    s3.op = ServiceOp::Sign;
    s3.curve = ServiceCurve::Secp160r1;
    s3.message = "x";
    s3.privateKey = BigUInt(5);
    s3.nonce = n; // out of [1, n)
    roundTrip(s3);
    EXPECT_EQ(s3.status, ServiceStatus::InvalidRequest);

    // Off-curve peer point.
    ServiceRequest d1;
    d1.op = ServiceOp::Derive;
    d1.curve = ServiceCurve::Secp160r1;
    d1.privateKey = BigUInt(5);
    d1.peer = AffinePoint(secp160r1Generator().g.x,
                          secp160r1Curve().field().add(
                              secp160r1Generator().g.y, BigUInt(1)));
    roundTrip(d1);
    EXPECT_EQ(d1.status, ServiceStatus::InvalidRequest);
    EXPECT_FALSE(d1.error.empty());

    // Invalid x-only peer (0 is 2-torsion).
    ServiceRequest d2;
    d2.op = ServiceOp::Derive;
    d2.curve = ServiceCurve::MontgomeryOpf;
    d2.privateKey = BigUInt(5);
    d2.peerX = BigUInt(0);
    roundTrip(d2);
    EXPECT_EQ(d2.status, ServiceStatus::InvalidRequest);

    svc.stop();
}

// --- Metrics ------------------------------------------------------------

TEST(Service, PublishMetricsIsIdempotent)
{
    EccService svc(testConfig(2));
    svc.start();
    Rng rng(9);
    const BigUInt &n = secp160r1Generator().order;
    std::vector<ServiceRequest> reqs(10);
    for (auto &r : reqs) {
        r.op = ServiceOp::Sign;
        r.curve = ServiceCurve::Secp160r1;
        r.message = "metrics";
        r.privateKey = scalarBelow(rng, n);
        ASSERT_TRUE(svc.submit(&r));
    }
    for (auto &r : reqs)
        EccService::wait(r);
    svc.stop();

    MetricsRegistry reg;
    svc.publishMetrics(reg);
    svc.publishMetrics(reg); // counters must not double

    uint64_t total = 0, hist = 0;
    for (unsigned w = 0; w < 2; w++) {
        MetricLabels wl{{"worker", std::to_string(w)}};
        total += reg.counter("service_ops", wl).value();
        hist += reg.histogram("service_latency_us", {}, wl).count();
    }
    EXPECT_EQ(total, reqs.size());
    EXPECT_EQ(hist, reqs.size());
    EXPECT_EQ(svc.opsProcessed(), reqs.size());
    EXPECT_GT(svc.latencyPercentileUs(99), 0.0);
    EXPECT_GE(svc.latencyPercentileUs(99), svc.latencyPercentileUs(50));
}
