/**
 * @file
 * Unit tests for the signed BigInt wrapper.
 */

#include <gtest/gtest.h>

#include "bigint/big_int.hh"
#include "support/random.hh"

using namespace jaavr;

TEST(BigInt, ConstructFromInt64)
{
    EXPECT_TRUE(BigInt(0).isZero());
    EXPECT_FALSE(BigInt(0).isNegative());
    EXPECT_TRUE(BigInt(-5).isNegative());
    EXPECT_EQ(BigInt(-5).magnitude().toUint64(), 5u);
    EXPECT_EQ(BigInt(INT64_MIN).magnitude().toUint64(),
              static_cast<uint64_t>(1) << 63);
}

TEST(BigInt, NegativeZeroNormalized)
{
    BigInt z(BigUInt(0), true);
    EXPECT_FALSE(z.isNegative());
    EXPECT_EQ(z, BigInt(0));
}

TEST(BigInt, AdditionSignCases)
{
    EXPECT_EQ(BigInt(3) + BigInt(4), BigInt(7));
    EXPECT_EQ(BigInt(3) + BigInt(-4), BigInt(-1));
    EXPECT_EQ(BigInt(-3) + BigInt(4), BigInt(1));
    EXPECT_EQ(BigInt(-3) + BigInt(-4), BigInt(-7));
    EXPECT_EQ(BigInt(5) + BigInt(-5), BigInt(0));
}

TEST(BigInt, SubtractionSignCases)
{
    EXPECT_EQ(BigInt(3) - BigInt(4), BigInt(-1));
    EXPECT_EQ(BigInt(-3) - BigInt(-4), BigInt(1));
    EXPECT_EQ(BigInt(3) - BigInt(-4), BigInt(7));
}

TEST(BigInt, MultiplicationSigns)
{
    EXPECT_EQ(BigInt(-3) * BigInt(4), BigInt(-12));
    EXPECT_EQ(BigInt(-3) * BigInt(-4), BigInt(12));
    EXPECT_EQ(BigInt(3) * BigInt(0), BigInt(0));
}

TEST(BigInt, TruncatedDivision)
{
    EXPECT_EQ(BigInt(7) / BigInt(2), BigInt(3));
    EXPECT_EQ(BigInt(-7) / BigInt(2), BigInt(-3));
    EXPECT_EQ(BigInt(7) / BigInt(-2), BigInt(-3));
    EXPECT_EQ(BigInt(-7) % BigInt(2), BigInt(-1));
    EXPECT_EQ(BigInt(7) % BigInt(-2), BigInt(1));
}

TEST(BigInt, DivModConsistencyProperty)
{
    Rng rng(11);
    for (int i = 0; i < 200; i++) {
        BigInt a(BigUInt::randomBits(rng, 150), rng.flip());
        BigInt b(BigUInt::randomBits(rng, 80), rng.flip());
        if (b.isZero())
            continue;
        BigInt q = a / b, r = a % b;
        EXPECT_EQ(q * b + r, a);
        EXPECT_LT(r.magnitude(), b.magnitude());
    }
}

TEST(BigInt, LeastNonNegativeResidue)
{
    BigUInt m(10);
    EXPECT_EQ(BigInt(-1).mod(m).toUint64(), 9u);
    EXPECT_EQ(BigInt(-10).mod(m).toUint64(), 0u);
    EXPECT_EQ(BigInt(23).mod(m).toUint64(), 3u);
    Rng rng(12);
    BigUInt mm = BigUInt::randomBits(rng, 100) + BigUInt(1);
    for (int i = 0; i < 100; i++) {
        BigInt a(BigUInt::randomBits(rng, 200), rng.flip());
        BigUInt r = a.mod(mm);
        EXPECT_LT(r, mm);
        // (a - r) divisible by mm.
        BigInt diff = a - BigInt(r);
        EXPECT_TRUE((diff.magnitude() % mm).isZero());
    }
}

TEST(BigInt, CompareAcrossSigns)
{
    EXPECT_LT(BigInt(-5), BigInt(3));
    EXPECT_LT(BigInt(-5), BigInt(-3));
    EXPECT_GT(BigInt(5), BigInt(3));
    EXPECT_LT(BigInt(0), BigInt(1));
    EXPECT_GT(BigInt(0), BigInt(-1));
}

TEST(BigInt, ToString)
{
    EXPECT_EQ(BigInt(-255).toString(), "-ff");
    EXPECT_EQ(BigInt(255).toString(), "ff");
    EXPECT_EQ(BigInt(0).toString(), "0");
}
