/**
 * @file
 * Tests for the general-modulus word-level Montgomery domain: product
 * correctness against BigUInt, the 2s^2 + s MAC count that motivates
 * OPFs, and exponentiation (the RSA building block).
 */

#include <gtest/gtest.h>

#include "field/montgomery_domain.hh"
#include "field/opf_field.hh"
#include "nt/opf_prime.hh"
#include "nt/primality.hh"
#include "support/random.hh"

using namespace jaavr;

TEST(MontgomeryDomain, MulMatchesBigUInt)
{
    Rng rng(140);
    // An arbitrary odd 160-bit modulus (not low-weight).
    BigUInt m = BigUInt::randomBits(rng, 160);
    if (!m.isOdd())
        m += BigUInt(1);
    MontgomeryDomain d(m);
    for (int i = 0; i < 100; i++) {
        BigUInt a = BigUInt::random(rng, m);
        BigUInt b = BigUInt::random(rng, m);
        BigUInt r = d.fromMont(d.montMul(d.toMont(a), d.toMont(b)));
        EXPECT_EQ(r, a.mulMod(b, m));
    }
}

TEST(MontgomeryDomain, MacCountIsTwoSSquaredPlusS)
{
    Rng rng(141);
    for (unsigned bits : {64u, 160u, 256u, 512u}) {
        BigUInt m = BigUInt::randomBits(rng, bits);
        if (!m.isOdd())
            m += BigUInt(1);
        if (m.bitLength() < bits)
            m += BigUInt::powerOfTwo(bits - 1);
        MontgomeryDomain d(m);
        auto a = d.toMont(BigUInt::random(rng, m));
        auto b = d.toMont(BigUInt::random(rng, m));
        d.montMul(a, b);
        uint64_t s = d.words();
        EXPECT_EQ(d.lastWordMacs(), 2 * s * s + s) << bits;
    }
}

TEST(MontgomeryDomain, OpfHalvesTheMacs)
{
    // The OPF field needs s^2 + s MACs where the general modulus
    // needs 2s^2 + s: the property the paper's Section II-A claims.
    Rng rng(142);
    OpfField opf(paperOpfPrime());
    MontgomeryDomain gen(paperOpfPrime().p);
    auto a = BigUInt::random(rng, paperOpfPrime().p);
    auto b = BigUInt::random(rng, paperOpfPrime().p);
    opf.montMul(opf.toMont(a), opf.toMont(b));
    gen.montMul(gen.toMont(a), gen.toMont(b));
    EXPECT_EQ(opf.lastStats().wordMacs, 5u * 5u + 5u);
    EXPECT_EQ(gen.lastWordMacs(), 2u * 5u * 5u + 5u);
    // And both compute the same product.
    EXPECT_EQ(opf.fromMont(opf.montMul(opf.toMont(a), opf.toMont(b))),
              gen.fromMont(gen.montMul(gen.toMont(a), gen.toMont(b))));
}

TEST(MontgomeryDomain, ExpMatchesPowMod)
{
    Rng rng(143);
    BigUInt m = BigUInt::randomBits(rng, 192);
    if (!m.isOdd())
        m += BigUInt(1);
    MontgomeryDomain d(m);
    for (int i = 0; i < 10; i++) {
        BigUInt base = BigUInt::random(rng, m);
        BigUInt e = BigUInt::randomBits(rng, 64);
        BigUInt r = d.fromMont(d.montExp(d.toMont(base), e));
        EXPECT_EQ(r, base.powMod(e, m));
    }
}

TEST(MontgomeryDomain, RsaStyleRoundTrip)
{
    // Tiny RSA (two 96-bit primes) end to end: the Section IV-A
    // "even RSA" claim, functionally.
    Rng rng(144);
    auto find_prime = [&](unsigned bits) {
        for (;;) {
            BigUInt c = BigUInt::randomBits(rng, bits);
            c = c + BigUInt::powerOfTwo(bits - 1);
            if (!c.isOdd())
                c += BigUInt(1);
            if (isProbablePrime(c, rng))
                return c;
        }
    };
    BigUInt p = find_prime(96), q = find_prime(96);
    BigUInt n = p * q;
    BigUInt phi = (p - BigUInt(1)) * (q - BigUInt(1));
    BigUInt e(65537);
    BigUInt dExp = e.invMod(phi);

    MontgomeryDomain dom(n);
    BigUInt msg = BigUInt::fromHex("badc0ffee0ddf00d");
    BigUInt ct = dom.fromMont(dom.montExp(dom.toMont(msg), e));
    BigUInt pt = dom.fromMont(dom.montExp(dom.toMont(ct), dExp));
    EXPECT_EQ(pt, msg);
    EXPECT_NE(ct, msg);
}

TEST(MontgomeryDomain, RejectsEvenModulus)
{
    EXPECT_DEATH(MontgomeryDomain(BigUInt(100)), "odd");
}
