/**
 * @file
 * Node-layer tests over the Testbed: ECDH handshakes, signed
 * telemetry, and the degradation ladders (re-key on auth failures,
 * quarantine on handshake failures) — including the adversarial
 * cases the chaos campaign gates on: forged Data frames must never
 * be accepted, and a forged Hello must never reset a session.
 */

#include <gtest/gtest.h>

#include "curves/standard_curves.hh"
#include "net/testbed.hh"
#include "support/sha256.hh"

using namespace jaavr;
using namespace jaavr::net;

namespace
{

/** Shared curve/signature fixture; secp160r1 keeps ECDSA fast. */
struct NodeTest : ::testing::Test
{
    NodeTest()
        : curve(secp160r1Curve()), gen(secp160r1Generator()),
          dsa(curve, gen.g, gen.order), tb(curve, dsa)
    {}

    NodeConfig
    nodeCfg(const std::string &name, uint64_t seed)
    {
        NodeConfig c;
        c.name = name;
        c.seed = seed;
        return c;
    }

    size_t
    scalarBytes() const
    {
        size_t bits = std::max(gen.order.bitLength(),
                               curve.field().modulus().bitLength());
        return (bits + 7) / 8;
    }

    WeierstrassCurve curve;
    CurveGenerator gen;
    Ecdsa dsa;
    Testbed tb;
};

/**
 * What an attacker on the wire can always do: frame arbitrary bytes
 * with a valid CRC and the (public) unkeyed handshake tag. Kept in
 * sync with the wire format documented in net/node.cc.
 */
std::vector<uint8_t>
forgeUnkeyedFrame(const Frame &f)
{
    std::string msg("jaavr-net-unkeyed");
    msg.push_back(char(uint8_t(f.type)));
    for (uint32_t v : {f.session, f.seq, f.ack})
        for (int i = 0; i < 4; i++)
            msg.push_back(char(uint8_t(v >> (8 * i))));
    msg.append(reinterpret_cast<const char *>(f.payload.data()),
               f.payload.size());
    auto digest = Sha256::digest(msg);
    Frame sealed = f;
    sealed.payload.insert(sealed.payload.end(), digest.begin(),
                          digest.begin() + FrameAuth::kTagSize);
    return encodeFrame(sealed);
}

} // anonymous namespace

TEST_F(NodeTest, HandshakeEstablishesAndSignedTelemetryFlows)
{
    tb.addNode(nodeCfg("a", 11));
    tb.addNode(nodeCfg("b", 22));
    tb.connect("a", "b", LinkConfig{});

    std::vector<std::vector<uint8_t>> got;
    tb.node("b").setTelemetryHandler(
        [&](const std::string &from, const std::vector<uint8_t> &app,
            SimTime) {
            EXPECT_EQ(from, "a");
            got.push_back(app);
        });

    ASSERT_TRUE(
        tb.node("a").sendTelemetry("b", {1, 2, 3}, tb.now()));
    tb.run(100'000);

    EXPECT_EQ(int(tb.node("a").peerState("b")),
              int(PeerState::Established));
    EXPECT_EQ(int(tb.node("b").peerState("a")),
              int(PeerState::Established));
    EXPECT_EQ(tb.node("a").peerEpoch("b"), 1u);
    EXPECT_EQ(tb.node("b").peerEpoch("a"), 1u);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], (std::vector<uint8_t>{1, 2, 3}));
    // The ack made it back: nothing left queued or in flight.
    EXPECT_EQ(tb.node("a").peerBacklog("b"), 0u);
    EXPECT_EQ(tb.node("a").stats().telemetryAcked, 1u);
    EXPECT_EQ(tb.node("b").stats().telemetryAccepted, 1u);
    EXPECT_EQ(tb.node("b").stats().telemetryRejected, 0u);
}

TEST_F(NodeTest, SimultaneousConnectConvergesOnOneSession)
{
    tb.addNode(nodeCfg("a", 31));
    tb.addNode(nodeCfg("b", 32));
    tb.connect("a", "b", LinkConfig{});

    tb.node("a").connect("b", tb.now());
    tb.node("b").connect("a", tb.now());
    tb.run(100'000);

    EXPECT_EQ(int(tb.node("a").peerState("b")),
              int(PeerState::Established));
    EXPECT_EQ(int(tb.node("b").peerState("a")),
              int(PeerState::Established));
    EXPECT_EQ(tb.node("a").peerEpoch("b"),
              tb.node("b").peerEpoch("a"));

    // Telemetry flows both ways on the converged session.
    size_t atB = 0, atA = 0;
    tb.node("b").setTelemetryHandler(
        [&](const std::string &, const std::vector<uint8_t> &,
            SimTime) { atB++; });
    tb.node("a").setTelemetryHandler(
        [&](const std::string &, const std::vector<uint8_t> &,
            SimTime) { atA++; });
    ASSERT_TRUE(tb.node("a").sendTelemetry("b", {0xaa}, tb.now()));
    ASSERT_TRUE(tb.node("b").sendTelemetry("a", {0xbb}, tb.now()));
    tb.run(tb.now() + 100'000);
    EXPECT_EQ(atB, 1u);
    EXPECT_EQ(atA, 1u);
}

TEST_F(NodeTest, HostileLinkDeliversAllTelemetryInOrderOnce)
{
    tb.addNode(nodeCfg("a", 41));
    tb.addNode(nodeCfg("b", 42));
    LinkConfig hostile;
    hostile.dropPermil = 200;
    hostile.dupPermil = 150;
    hostile.reorderPermil = 150;
    hostile.seed = 7;
    tb.connect("a", "b", hostile);

    std::vector<uint8_t> got;
    tb.node("b").setTelemetryHandler(
        [&](const std::string &, const std::vector<uint8_t> &app,
            SimTime) {
            ASSERT_EQ(app.size(), 1u);
            got.push_back(app[0]);
        });

    const size_t kCount = 20;
    for (size_t i = 0; i < kCount; i++)
        ASSERT_TRUE(tb.node("a").sendTelemetry(
            "b", {uint8_t(i)}, tb.now()));
    tb.run(3'000'000);

    // Drops/dups/reordering (no bit flips, so no re-keys) must not
    // cost exactly-once in-order delivery.
    ASSERT_EQ(got.size(), kCount);
    for (size_t i = 0; i < kCount; i++)
        EXPECT_EQ(got[i], uint8_t(i)) << "at " << i;
    EXPECT_EQ(tb.node("a").peerBacklog("b"), 0u);
    EXPECT_EQ(tb.node("a").stats().rekeys, 0u);
    EXPECT_GT(tb.node("a").sessionStats("b").retransmits, 0u);
}

TEST_F(NodeTest, ForgedDataIsNeverAcceptedAndTriggersRekey)
{
    tb.addNode(nodeCfg("a", 51));
    tb.addNode(nodeCfg("b", 52));
    tb.connect("a", "b", LinkConfig{});

    size_t accepted = 0;
    tb.node("b").setTelemetryHandler(
        [&](const std::string &, const std::vector<uint8_t> &app,
            SimTime) {
            accepted++;
            // Nothing the attacker sent may ever surface.
            EXPECT_TRUE(app.empty() || app[0] != 0xee);
        });

    ASSERT_TRUE(tb.node("a").sendTelemetry("b", {1}, tb.now()));
    tb.run(100'000);
    ASSERT_EQ(int(tb.node("b").peerState("a")),
              int(PeerState::Established));
    uint32_t epochBefore = tb.node("b").peerEpoch("a");

    // The attacker knows the wire format and the live epoch but not
    // the epoch key: CRC-valid Data frames with garbage MAC tags,
    // injected straight onto the a->b link.
    DuplexLink &link = tb.edge("a", "b");
    for (uint32_t i = 0; i < 3; i++) {
        Frame forged;
        forged.type = FrameType::Data;
        forged.session = epochBefore;
        forged.seq = 1000 + i;
        forged.payload.assign(40, 0xee); // bogus MAC tag included
        link.forward.transmit(encodeFrame(forged), tb.now());
        tb.run(tb.now() + 10'000);
    }

    // Every forgery was rejected at the MAC; the consecutive-failure
    // ladder re-keyed the victim past the attacked epoch.
    EXPECT_GE(tb.node("b").sessionStats("a").authRejected, 3u);
    EXPECT_GE(tb.node("b").stats().rekeys, 1u);

    // The re-key converges and genuine telemetry still flows.
    tb.run(tb.now() + 200'000);
    EXPECT_GT(tb.node("b").peerEpoch("a"), epochBefore);
    ASSERT_TRUE(tb.node("a").sendTelemetry("b", {2}, tb.now()));
    tb.run(tb.now() + 200'000);
    EXPECT_GE(accepted, 2u);
    EXPECT_EQ(tb.node("b").stats().telemetryRejected, 0u);
}

TEST_F(NodeTest, ForgedHelloCannotResetAnEstablishedSession)
{
    tb.addNode(nodeCfg("a", 61));
    tb.addNode(nodeCfg("b", 62));
    tb.connect("a", "b", LinkConfig{});

    size_t accepted = 0;
    tb.node("b").setTelemetryHandler(
        [&](const std::string &, const std::vector<uint8_t> &,
            SimTime) { accepted++; });

    ASSERT_TRUE(tb.node("a").sendTelemetry("b", {1}, tb.now()));
    tb.run(100'000);
    ASSERT_EQ(int(tb.node("b").peerState("a")),
              int(PeerState::Established));
    uint32_t epochBefore = tb.node("b").peerEpoch("a");
    uint64_t authBefore = tb.node("b").stats().authFailures;

    // A high-epoch Hello passes the (public) unkeyed frame tag, but
    // its identity signature cannot verify — the node must reject it
    // before touching any session state.
    Frame forged;
    forged.type = FrameType::Hello;
    forged.session = epochBefore + 5;
    forged.payload.assign(4 * scalarBytes(), 0x77);
    tb.edge("a", "b").forward.transmit(forgeUnkeyedFrame(forged),
                                       tb.now());
    tb.run(tb.now() + 50'000);

    EXPECT_EQ(int(tb.node("b").peerState("a")),
              int(PeerState::Established));
    EXPECT_EQ(tb.node("b").peerEpoch("a"), epochBefore);
    EXPECT_GT(tb.node("b").stats().authFailures, authBefore);

    ASSERT_TRUE(tb.node("a").sendTelemetry("b", {2}, tb.now()));
    tb.run(tb.now() + 100'000);
    EXPECT_EQ(accepted, 2u);
}

TEST_F(NodeTest, DeadLinkQuarantinesWithBackoffThenHeals)
{
    tb.addNode(nodeCfg("a", 71));
    tb.addNode(nodeCfg("b", 72));
    LinkConfig dead;
    dead.dropPermil = 1000;
    tb.connect("a", "b", dead);

    size_t accepted = 0;
    tb.node("b").setTelemetryHandler(
        [&](const std::string &, const std::vector<uint8_t> &,
            SimTime) { accepted++; });

    // Queue telemetry; it must survive the whole outage.
    ASSERT_TRUE(tb.node("a").sendTelemetry("b", {9}, tb.now()));
    tb.run(700'000);
    // Three failed handshakes -> quarantine; the repeat quarantine
    // doubles the hold.
    EXPECT_GE(tb.node("a").stats().quarantineEvents, 1u);
    EXPECT_GE(tb.node("a").stats().handshakeFailures, 3u);
    EXPECT_EQ(accepted, 0u);
    EXPECT_EQ(tb.node("a").peerBacklog("b"), 1u);

    // Link heals; the next post-quarantine probe must establish and
    // flush the backlog.
    DuplexLink &link = tb.edge("a", "b");
    link.forward.config().dropPermil = 0;
    link.backward.config().dropPermil = 0;
    tb.run(tb.now() + 5'000'000);

    EXPECT_EQ(int(tb.node("a").peerState("b")),
              int(PeerState::Established));
    EXPECT_EQ(accepted, 1u);
    EXPECT_EQ(tb.node("a").peerBacklog("b"), 0u);
}

TEST_F(NodeTest, QuarantineDropsInboundTraffic)
{
    tb.addNode(nodeCfg("a", 81));
    tb.addNode(nodeCfg("b", 82));
    LinkConfig dead;
    dead.dropPermil = 1000;
    tb.connect("a", "b", dead);

    tb.node("a").connect("b", tb.now());
    tb.run(700'000);
    ASSERT_EQ(int(tb.node("a").peerState("b")),
              int(PeerState::Quarantined));

    // Frames arriving during quarantine must be ignored wholesale —
    // this tagless frame would otherwise count an auth reject.
    uint64_t rejectsBefore =
        tb.node("a").sessionStats("b").authRejected;
    Frame junk;
    junk.type = FrameType::Data;
    junk.session = 1;
    junk.payload.assign(8, 0x11);
    tb.node("a").onWire("b", encodeFrame(junk), tb.now());
    EXPECT_EQ(tb.node("a").sessionStats("b").authRejected,
              rejectsBefore);
    EXPECT_EQ(int(tb.node("a").peerState("b")),
              int(PeerState::Quarantined));
}
