/**
 * @file
 * Unit tests for the number-theory module: primality, Jacobi symbols,
 * modular square roots, Cornacchia, and OPF prime search.
 */

#include <gtest/gtest.h>

#include "nt/cornacchia.hh"
#include "nt/intsqrt.hh"
#include "nt/opf_prime.hh"
#include "nt/primality.hh"
#include "nt/sqrt_mod.hh"

using namespace jaavr;

TEST(Primality, SmallKnownValues)
{
    Rng rng(1);
    uint64_t primes[] = {2, 3, 5, 7, 11, 13, 97, 65537, 1000000007};
    uint64_t composites[] = {0, 1, 4, 6, 9, 15, 91, 341, 561, 1000000008};
    for (uint64_t p : primes)
        EXPECT_TRUE(isProbablePrime(BigUInt(p), rng)) << p;
    for (uint64_t c : composites)
        EXPECT_FALSE(isProbablePrime(BigUInt(c), rng)) << c;
}

TEST(Primality, CarmichaelNumbers)
{
    // Fermat pseudoprimes to many bases; Miller-Rabin must reject.
    Rng rng(2);
    for (uint64_t n : {561ULL, 1105ULL, 1729ULL, 2465ULL, 6601ULL})
        EXPECT_FALSE(isProbablePrime(BigUInt(n), rng)) << n;
}

TEST(Primality, LargeKnownPrime)
{
    Rng rng(3);
    // 2^127 - 1 is a Mersenne prime; 2^128 + 1 is composite.
    EXPECT_TRUE(isProbablePrime(
        BigUInt::powerOfTwo(127) - BigUInt(1), rng));
    EXPECT_FALSE(isProbablePrime(
        BigUInt::powerOfTwo(128) + BigUInt(1), rng));
}

TEST(Primality, PaperOpfPrimeIsPrime)
{
    // The paper's example p = 65356 * 2^144 + 1 (Section II-A).
    const OpfPrime &o = paperOpfPrime();
    EXPECT_EQ(o.u, 65356u);
    EXPECT_EQ(o.p.toHex(), "ff4c" + std::string(35, '0') + "1");
    EXPECT_EQ(o.p.bitLength(), 160u);
}

TEST(Jacobi, MatchesEulerCriterion)
{
    Rng rng(4);
    BigUInt p(1000003);
    BigUInt e = (p - BigUInt(1)) >> 1;
    for (int i = 0; i < 100; i++) {
        BigUInt a = BigUInt(1) + BigUInt::random(rng, p - BigUInt(1));
        BigUInt ls = a.powMod(e, p);
        int expect = ls.isOne() ? 1 : -1;
        EXPECT_EQ(jacobi(a, p), expect);
    }
}

TEST(Jacobi, ZeroAndMultiples)
{
    EXPECT_EQ(jacobi(BigUInt(0), BigUInt(7)), 0);
    EXPECT_EQ(jacobi(BigUInt(14), BigUInt(7)), 0);
    EXPECT_EQ(jacobi(BigUInt(1), BigUInt(9)), 1);
}

TEST(Jacobi, KnownSmallTable)
{
    // (a/7): QRs mod 7 are {1, 2, 4}.
    EXPECT_EQ(jacobi(BigUInt(1), BigUInt(7)), 1);
    EXPECT_EQ(jacobi(BigUInt(2), BigUInt(7)), 1);
    EXPECT_EQ(jacobi(BigUInt(3), BigUInt(7)), -1);
    EXPECT_EQ(jacobi(BigUInt(4), BigUInt(7)), 1);
    EXPECT_EQ(jacobi(BigUInt(5), BigUInt(7)), -1);
    EXPECT_EQ(jacobi(BigUInt(6), BigUInt(7)), -1);
}

TEST(SqrtMod, RoundTripSmallPrime)
{
    Rng rng(5);
    BigUInt p(10007);  // p = 3 mod 4
    for (int i = 0; i < 50; i++) {
        BigUInt a = BigUInt::random(rng, p);
        BigUInt sq = a.mulMod(a, p);
        auto r = sqrtMod(sq, p, rng);
        ASSERT_TRUE(r.has_value());
        EXPECT_EQ(r->mulMod(*r, p), sq);
    }
}

TEST(SqrtMod, HighTwoAdicityPrime)
{
    // The OPF primes have 2-adicity 144+, exercising the full
    // Tonelli-Shanks loop rather than the p = 3 (mod 4) shortcut.
    Rng rng(6);
    const BigUInt &p = paperOpfPrime().p;
    for (int i = 0; i < 10; i++) {
        BigUInt a = BigUInt::random(rng, p);
        BigUInt sq = a.mulMod(a, p);
        auto r = sqrtMod(sq, p, rng);
        ASSERT_TRUE(r.has_value());
        EXPECT_EQ(r->mulMod(*r, p), sq);
    }
}

TEST(SqrtMod, NonResidueReturnsNullopt)
{
    Rng rng(7);
    BigUInt p(10007);
    int nones = 0;
    for (uint64_t a = 2; a < 60; a++) {
        if (jacobi(BigUInt(a), p) == -1) {
            EXPECT_FALSE(sqrtMod(BigUInt(a), p, rng).has_value());
            nones++;
        }
    }
    EXPECT_GT(nones, 10);
}

TEST(SqrtMod, ZeroMapsToZero)
{
    Rng rng(8);
    auto r = sqrtMod(BigUInt(0), BigUInt(10007), rng);
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(r->isZero());
}

TEST(IntSqrt, ExactAndFloor)
{
    EXPECT_EQ(isqrt(BigUInt(0)).toUint64(), 0u);
    EXPECT_EQ(isqrt(BigUInt(1)).toUint64(), 1u);
    EXPECT_EQ(isqrt(BigUInt(15)).toUint64(), 3u);
    EXPECT_EQ(isqrt(BigUInt(16)).toUint64(), 4u);
    EXPECT_EQ(isqrt(BigUInt(17)).toUint64(), 4u);
    Rng rng(9);
    for (int i = 0; i < 100; i++) {
        BigUInt a = BigUInt::randomBits(rng, 170);
        BigUInt r = isqrt(a);
        EXPECT_LE(r * r, a);
        EXPECT_GT((r + BigUInt(1)) * (r + BigUInt(1)), a);
    }
}

TEST(IntSqrt, PerfectSquareDetection)
{
    Rng rng(10);
    for (int i = 0; i < 50; i++) {
        BigUInt a = BigUInt::randomBits(rng, 90);
        BigUInt root;
        EXPECT_TRUE(isPerfectSquare(a * a, root));
        EXPECT_EQ(root, a);
        if (!a.isZero()) {
            BigUInt r2;
            EXPECT_FALSE(isPerfectSquare(a * a + BigUInt(1), r2) &&
                         r2 * r2 != a * a + BigUInt(1));
        }
    }
}

TEST(Cornacchia, KnownSmallRepresentation)
{
    // 31 = 2^2 + 3 * 3^2.
    Rng rng(11);
    auto sol = cornacchia(BigUInt(31), 3, rng);
    ASSERT_TRUE(sol.has_value());
    BigUInt check = sol->x * sol->x + BigUInt(3) * sol->y * sol->y;
    EXPECT_EQ(check.toUint64(), 31u);
}

TEST(Cornacchia, RepresentationProperty)
{
    Rng rng(12);
    // p = 1 mod 3 primes are exactly those representable as a^2+3b^2.
    for (uint64_t p : {7ULL, 13ULL, 19ULL, 31ULL, 37ULL, 43ULL, 61ULL}) {
        auto sol = cornacchia(BigUInt(p), 3, rng);
        ASSERT_TRUE(sol.has_value()) << p;
        EXPECT_EQ((sol->x * sol->x + BigUInt(3) * sol->y * sol->y)
                      .toUint64(), p);
    }
    // p = 2 mod 3 primes are not representable.
    for (uint64_t p : {5ULL, 11ULL, 17ULL, 23ULL, 29ULL})
        EXPECT_FALSE(cornacchia(BigUInt(p), 3, rng).has_value()) << p;
}

TEST(Cornacchia, LargePrimeD1)
{
    // p = 1 mod 4 is a sum of two squares (d = 1).
    Rng rng(13);
    const BigUInt &p = paperOpfPrime().p;  // p = 1 mod 4 by shape
    auto sol = cornacchia(p, 1, rng);
    ASSERT_TRUE(sol.has_value());
    EXPECT_EQ(sol->x * sol->x + sol->y * sol->y, p);
}

TEST(Cornacchia, CmDecomposition4p)
{
    Rng rng(14);
    const OpfPrime &glv = glvOpfPrime();
    ASSERT_EQ(glv.p % BigUInt(3), BigUInt(1));
    CmDecomposition d = cmDecompose4p(glv.p, rng);
    BigUInt check = d.l * d.l + BigUInt(27) * d.m * d.m;
    EXPECT_EQ(check, glv.p << 2);
}

TEST(Cornacchia, CmDecompositionSmall)
{
    // p = 7: 4*7 = 28 = 1 + 27 = 1^2 + 27*1^2.
    Rng rng(15);
    CmDecomposition d = cmDecompose4p(BigUInt(7), rng);
    EXPECT_EQ((d.l * d.l + BigUInt(27) * d.m * d.m).toUint64(), 28u);
}

TEST(OpfPrime, MakeOpfShape)
{
    OpfPrime o = makeOpf(0xff4c, 144);
    EXPECT_EQ(o.p.bitLength(), 160u);
    EXPECT_EQ(o.p.low32(), 1u);
    // Middle words are all zero: only MSW and LSW non-zero.
    auto w = o.p.toWords(5);
    EXPECT_EQ(w[1], 0u);
    EXPECT_EQ(w[2], 0u);
    EXPECT_EQ(w[3], 0u);
    EXPECT_EQ(w[4], 0xff4c0000u);
}

TEST(OpfPrime, RejectsBadU)
{
    EXPECT_DEATH(makeOpf(0, 144), "16-bit");
    EXPECT_DEATH(makeOpf(0x10000, 144), "16-bit");
}

TEST(OpfPrime, SearchFindsPaperPrime)
{
    Rng rng(16);
    // Searching down from 65356 must find 65356 itself.
    auto found = findOpfPrime(144, 65356, rng);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->u, 65356u);
}

TEST(OpfPrime, GlvPrimeHasRightCongruence)
{
    const OpfPrime &o = glvOpfPrime();
    EXPECT_EQ(o.p % BigUInt(3), BigUInt(1));
    EXPECT_EQ(o.u % 3, 0u);
    EXPECT_EQ(o.p.bitLength(), 160u);
    Rng rng(17);
    EXPECT_TRUE(isProbablePrime(o.p, rng));
}
