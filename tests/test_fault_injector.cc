/**
 * @file
 * FaultInjector semantics: deterministic firing, one-shot behavior
 * (the basis of time-redundant detection), identical perturbed
 * execution on the step() reference path and the runFast Faulted
 * instantiations, every fault target, routine-entry triggers through
 * the SymbolTable, and flash corruption revert.
 */

#include <gtest/gtest.h>

#include "avr/fault.hh"
#include "avr/machine.hh"
#include "avrasm/assembler.hh"
#include "avrasm/symbol_table.hh"
#include "avrgen/opf_harness.hh"
#include "nt/opf_prime.hh"
#include "support/random.hh"

using namespace jaavr;

namespace
{

/** A program long enough to give every cycle trigger a boundary:
 *  writes r16 = 1..16 into 0x0200.., then sums them back into r20. */
const char *kWorkload = R"(
    ldi r26, 0x00
    ldi r27, 0x02
    ldi r16, 0
    ldi r17, 16
fill:
    inc r16
    st X+, r16
    dec r17
    brne fill
    ldi r26, 0x00
    ldi r27, 0x02
    ldi r17, 16
    ldi r20, 0
sum:
    ld r18, X+
    add r20, r18
    dec r17
    brne sum
    ret
)";

struct RunState
{
    std::array<uint8_t, 32> regs;
    uint8_t sreg;
    uint16_t sp;
    uint32_t pc;
    uint64_t cycles;
    Trap trap;
    std::vector<uint8_t> data;

    bool operator==(const RunState &) const = default;
};

RunState
runWithPlan(const FaultPlan *plan, bool reference,
            CpuMode mode = CpuMode::CA)
{
    Machine m(mode);
    m.forceReference = reference;
    m.loadProgram(assemble(kWorkload, "w").words, 0);
    FaultInjector inj;
    m.setFaultInjector(&inj);
    if (plan)
        inj.arm(*plan, m.stats().cycles);
    m.call(0);
    RunState st;
    for (unsigned i = 0; i < 32; i++)
        st.regs[i] = m.reg(i);
    st.sreg = m.sreg();
    st.sp = m.sp();
    st.pc = m.pc();
    st.cycles = m.stats().cycles;
    st.trap = m.trap();
    st.data = m.readBytes(0x0200, 32);
    return st;
}

} // namespace

TEST(FaultInjector, UnarmedInjectorPerturbsNothing)
{
    RunState with = runWithPlan(nullptr, false);
    Machine bare(CpuMode::CA);
    bare.loadProgram(assemble(kWorkload, "w").words, 0);
    bare.call(0);
    EXPECT_EQ(with.regs[20], bare.reg(20));
    EXPECT_EQ(with.cycles, bare.stats().cycles);
    EXPECT_EQ(with.regs[20], 136);  // 1+2+...+16
}

TEST(FaultInjector, GprFlipIsDeterministicAndOneShot)
{
    FaultPlan plan;
    plan.target = FaultTarget::Gpr;
    plan.reg = 20;
    plan.mask = 0x81;  // double bit flip
    plan.triggerCycle = 150;  // mid-summation, after "ldi r20, 0"

    RunState a = runWithPlan(&plan, false);
    RunState b = runWithPlan(&plan, false);
    EXPECT_EQ(a, b);  // same seed plan, same outcome
    EXPECT_NE(a.regs[20], 136);  // the flip corrupted the sum

    // One-shot: a machine re-run with the injector still attached
    // after firing executes cleanly (time-redundancy foundation).
    Machine m(CpuMode::CA);
    m.loadProgram(assemble(kWorkload, "w").words, 0);
    FaultInjector inj;
    m.setFaultInjector(&inj);
    inj.arm(plan, 0);
    m.call(0);
    EXPECT_TRUE(inj.fired());
    m.reset();
    m.call(0);
    EXPECT_EQ(m.reg(20), 136);
}

TEST(FaultInjector, AllTargetsMatchOnBothPaths)
{
    Rng rng(0x5eed);
    const FaultTarget targets[] = {
        FaultTarget::Gpr, FaultTarget::Sreg, FaultTarget::Sram,
        FaultTarget::MacAcc, FaultTarget::InstSkip,
        FaultTarget::OpcodeCorrupt,
    };
    for (FaultTarget t : targets) {
        for (unsigned round = 0; round < 8; round++) {
            FaultPlan plan;
            plan.target = t;
            plan.triggerCycle = rng.below(90);
            plan.reg = static_cast<uint8_t>(
                t == FaultTarget::MacAcc ? rng.below(9) : rng.below(32));
            plan.sramAddr =
                static_cast<uint16_t>(0x0200 + rng.below(16));
            plan.mask = static_cast<uint16_t>(1u << rng.below(8));
            if (t == FaultTarget::OpcodeCorrupt)
                plan.mask = static_cast<uint16_t>(1u << rng.below(16));

            RunState fast = runWithPlan(&plan, false);
            RunState ref = runWithPlan(&plan, true);
            EXPECT_EQ(fast, ref)
                << faultTargetName(t) << " round " << round
                << " trigger " << plan.triggerCycle << ": fast trap "
                << fast.trap.describe() << " vs ref trap "
                << ref.trap.describe();
        }
    }
}

TEST(FaultInjector, InstSkipSkipsExactlyOne)
{
    // Three LDIs at one cycle each: skipping the boundary at cycle 1
    // drops the second LDI only.
    Program prog = assemble("ldi r16, 1\nldi r17, 2\nldi r18, 3\nret", "t");
    for (int reference = 0; reference < 2; reference++) {
        Machine m(CpuMode::CA);
        m.forceReference = reference != 0;
        m.loadProgram(prog.words, 0);
        FaultInjector inj;
        m.setFaultInjector(&inj);
        FaultPlan plan;
        plan.target = FaultTarget::InstSkip;
        plan.triggerCycle = 1;
        inj.arm(plan, 0);
        RunResult r = m.call(0);
        EXPECT_TRUE(r.ok());
        EXPECT_EQ(m.reg(16), 1);
        EXPECT_EQ(m.reg(17), 0);  // skipped
        EXPECT_EQ(m.reg(18), 3);
        EXPECT_TRUE(inj.fired());
        EXPECT_EQ(inj.firedAtPc(), 1u);
    }
}

TEST(FaultInjector, OpcodeCorruptionPersistsAndReverts)
{
    // Corrupt "ldi r17, 2" (word 1) into garbage mid-run; the
    // corruption persists in flash (a second run still sees it)
    // until revertFlash() undoes the XOR.
    Program prog = assemble("ldi r16, 1\nldi r17, 2\nldi r18, 3\nret", "t");
    Machine m(CpuMode::CA);
    m.loadProgram(prog.words, 0);
    FaultInjector inj;
    m.setFaultInjector(&inj);
    FaultPlan plan;
    plan.target = FaultTarget::OpcodeCorrupt;
    plan.triggerCycle = 1;
    plan.flashAddr = FaultPlan::kCurrentPc;
    // Flip LDI 0xE0x2 into an encoding with a different immediate.
    plan.mask = 0x0101;
    inj.arm(plan, 0);
    RunResult first = m.call(0);
    EXPECT_TRUE(inj.fired());
    EXPECT_EQ(inj.firedAtPc(), 1u);
    EXPECT_TRUE(first.ok());
    EXPECT_NE(m.reg(17), 2);  // corrupted immediate

    // Persistent: re-running without revert repeats the corruption.
    m.reset();
    m.call(0);
    EXPECT_NE(m.reg(17), 2);

    // Revert restores the original program behavior.
    inj.revertFlash(m);
    m.reset();
    m.call(0);
    EXPECT_EQ(m.reg(17), 2);
}

TEST(FaultInjector, EntryTriggeredPlanWaitsForRoutine)
{
    // Routine g at a higher address; a plan triggered at g's entry
    // must not fire during the long preamble loop before the call.
    Program prog = assemble(R"(
        ldi r17, 50
warm:
        dec r17
        brne warm
        rcall g
        ret
g:
        ldi r20, 5
        ldi r21, 6
        ret
    )", "t");
    SymbolTable syms;
    syms.addProgram("prog", prog, 0);
    ASSERT_TRUE(prog.labels.count("g"));
    uint32_t g_entry = prog.labels.at("g");

    for (int reference = 0; reference < 2; reference++) {
        Machine m(CpuMode::CA);
        m.forceReference = reference != 0;
        m.loadProgram(prog.words, 0);
        FaultInjector inj;
        m.setFaultInjector(&inj);
        FaultPlan plan;
        plan.target = FaultTarget::Gpr;
        plan.reg = 20;
        plan.mask = 0x04;
        plan.atEntry = true;
        plan.entryPc = g_entry;
        plan.triggerCycle = 1;  // one cycle into g: after ldi r20
        inj.arm(plan, 0);
        RunResult r = m.call(0);
        EXPECT_TRUE(r.ok());
        EXPECT_TRUE(inj.fired());
        // Fired after g's first LDI retired: r20 = 5 ^ 0x04 = 1.
        EXPECT_EQ(m.reg(20), 1);
        EXPECT_EQ(m.reg(21), 6);
        EXPECT_GE(inj.firedAtPc(), g_entry);
    }
}

TEST(FaultInjector, MacAccFlipInIseOpfMul)
{
    // End-to-end with the generated OPF code in ISE mode: a MAC
    // accumulator flip during the multiplication corrupts the result
    // but a clean re-run (time redundancy) exposes it.
    OpfPrime prime = paperOpfPrime();
    OpfAvrLibrary lib(prime, CpuMode::ISE);
    OpfField field(prime);
    Rng rng(42);
    OpfField::Words a = field.fromBig(BigUInt::random(rng, field.modulus()));
    OpfField::Words b = field.fromBig(BigUInt::random(rng, field.modulus()));

    lib.machine().reset();
    OpfRun golden = lib.mul(a, b);
    ASSERT_EQ(golden.trap.kind, TrapKind::None);

    FaultInjector inj;
    lib.machine().setFaultInjector(&inj);
    FaultPlan plan;
    plan.target = FaultTarget::MacAcc;
    plan.reg = 3;
    plan.mask = 0x10;
    plan.triggerCycle = golden.cycles / 2;
    lib.machine().reset();
    inj.arm(plan, lib.machine().stats().cycles);
    OpfRun faulted = lib.mul(a, b);
    EXPECT_TRUE(inj.fired());

    lib.machine().reset();
    OpfRun redo = lib.mul(a, b);
    EXPECT_EQ(redo.result, golden.result);
    // The flip mid-accumulation must surface either as a trap (MAC
    // hazard shape change) or as a wrong product.
    bool detected_or_wrong = faulted.trap.kind != TrapKind::None ||
                             faulted.result != golden.result;
    EXPECT_TRUE(detected_or_wrong);
    lib.machine().setFaultInjector(nullptr);
}

TEST(FaultInjector, PlanDescribeIsStable)
{
    FaultPlan plan;
    plan.target = FaultTarget::Sram;
    plan.sramAddr = 0x0220;
    plan.mask = 0x40;
    plan.triggerCycle = 17;
    EXPECT_EQ(plan.describe(), "sram[0x0220] ^= 0x40 at +17 cycles");
    EXPECT_STREQ(faultTargetName(FaultTarget::OpcodeCorrupt),
                 "opcode_corrupt");
}
