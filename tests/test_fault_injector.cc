/**
 * @file
 * FaultInjector semantics: deterministic firing, one-shot behavior
 * (the basis of time-redundant detection), identical perturbed
 * execution on the step() reference path and the runFast Faulted
 * instantiations, every fault target, routine-entry triggers through
 * the SymbolTable, and flash corruption revert.
 */

#include <gtest/gtest.h>

#include "avr/fault.hh"
#include "avr/machine.hh"
#include "avrasm/assembler.hh"
#include "avrasm/symbol_table.hh"
#include "avrgen/opf_harness.hh"
#include "nt/opf_prime.hh"
#include "support/random.hh"

using namespace jaavr;

namespace
{

/** A program long enough to give every cycle trigger a boundary:
 *  writes r16 = 1..16 into 0x0200.., then sums them back into r20. */
const char *kWorkload = R"(
    ldi r26, 0x00
    ldi r27, 0x02
    ldi r16, 0
    ldi r17, 16
fill:
    inc r16
    st X+, r16
    dec r17
    brne fill
    ldi r26, 0x00
    ldi r27, 0x02
    ldi r17, 16
    ldi r20, 0
sum:
    ld r18, X+
    add r20, r18
    dec r17
    brne sum
    ret
)";

struct RunState
{
    std::array<uint8_t, 32> regs;
    uint8_t sreg;
    uint16_t sp;
    uint32_t pc;
    uint64_t cycles;
    Trap trap;
    std::vector<uint8_t> data;

    bool operator==(const RunState &) const = default;
};

RunState
runWithPlan(const FaultPlan *plan, bool reference,
            CpuMode mode = CpuMode::CA)
{
    Machine m(mode);
    m.forceReference = reference;
    m.loadProgram(assemble(kWorkload, "w").words, 0);
    FaultInjector inj;
    m.setFaultInjector(&inj);
    if (plan)
        inj.arm(*plan, m.stats().cycles);
    m.call(0);
    RunState st;
    for (unsigned i = 0; i < 32; i++)
        st.regs[i] = m.reg(i);
    st.sreg = m.sreg();
    st.sp = m.sp();
    st.pc = m.pc();
    st.cycles = m.stats().cycles;
    st.trap = m.trap();
    st.data = m.readBytes(0x0200, 32);
    return st;
}

} // namespace

TEST(FaultInjector, UnarmedInjectorPerturbsNothing)
{
    RunState with = runWithPlan(nullptr, false);
    Machine bare(CpuMode::CA);
    bare.loadProgram(assemble(kWorkload, "w").words, 0);
    bare.call(0);
    EXPECT_EQ(with.regs[20], bare.reg(20));
    EXPECT_EQ(with.cycles, bare.stats().cycles);
    EXPECT_EQ(with.regs[20], 136);  // 1+2+...+16
}

TEST(FaultInjector, GprFlipIsDeterministicAndOneShot)
{
    FaultPlan plan;
    plan.target = FaultTarget::Gpr;
    plan.reg = 20;
    plan.mask = 0x81;  // double bit flip
    plan.triggerCycle = 150;  // mid-summation, after "ldi r20, 0"

    RunState a = runWithPlan(&plan, false);
    RunState b = runWithPlan(&plan, false);
    EXPECT_EQ(a, b);  // same seed plan, same outcome
    EXPECT_NE(a.regs[20], 136);  // the flip corrupted the sum

    // One-shot: a machine re-run with the injector still attached
    // after firing executes cleanly (time-redundancy foundation).
    Machine m(CpuMode::CA);
    m.loadProgram(assemble(kWorkload, "w").words, 0);
    FaultInjector inj;
    m.setFaultInjector(&inj);
    inj.arm(plan, 0);
    m.call(0);
    EXPECT_TRUE(inj.fired());
    m.reset();
    m.call(0);
    EXPECT_EQ(m.reg(20), 136);
}

TEST(FaultInjector, AllTargetsMatchOnBothPaths)
{
    Rng rng(0x5eed);
    const FaultTarget targets[] = {
        FaultTarget::Gpr, FaultTarget::Sreg, FaultTarget::Sram,
        FaultTarget::MacAcc, FaultTarget::InstSkip,
        FaultTarget::OpcodeCorrupt,
    };
    for (FaultTarget t : targets) {
        for (unsigned round = 0; round < 8; round++) {
            FaultPlan plan;
            plan.target = t;
            plan.triggerCycle = rng.below(90);
            plan.reg = static_cast<uint8_t>(
                t == FaultTarget::MacAcc ? rng.below(9) : rng.below(32));
            plan.sramAddr =
                static_cast<uint16_t>(0x0200 + rng.below(16));
            plan.mask = static_cast<uint16_t>(1u << rng.below(8));
            if (t == FaultTarget::OpcodeCorrupt)
                plan.mask = static_cast<uint16_t>(1u << rng.below(16));

            RunState fast = runWithPlan(&plan, false);
            RunState ref = runWithPlan(&plan, true);
            EXPECT_EQ(fast, ref)
                << faultTargetName(t) << " round " << round
                << " trigger " << plan.triggerCycle << ": fast trap "
                << fast.trap.describe() << " vs ref trap "
                << ref.trap.describe();
        }
    }
}

TEST(FaultInjector, InstSkipSkipsExactlyOne)
{
    // Three LDIs at one cycle each: skipping the boundary at cycle 1
    // drops the second LDI only.
    Program prog = assemble("ldi r16, 1\nldi r17, 2\nldi r18, 3\nret", "t");
    for (int reference = 0; reference < 2; reference++) {
        Machine m(CpuMode::CA);
        m.forceReference = reference != 0;
        m.loadProgram(prog.words, 0);
        FaultInjector inj;
        m.setFaultInjector(&inj);
        FaultPlan plan;
        plan.target = FaultTarget::InstSkip;
        plan.triggerCycle = 1;
        inj.arm(plan, 0);
        RunResult r = m.call(0);
        EXPECT_TRUE(r.ok());
        EXPECT_EQ(m.reg(16), 1);
        EXPECT_EQ(m.reg(17), 0);  // skipped
        EXPECT_EQ(m.reg(18), 3);
        EXPECT_TRUE(inj.fired());
        EXPECT_EQ(inj.firedAtPc(), 1u);
    }
}

TEST(FaultInjector, OpcodeCorruptionPersistsAndReverts)
{
    // Corrupt "ldi r17, 2" (word 1) into garbage mid-run; the
    // corruption persists in flash (a second run still sees it)
    // until revertFlash() undoes the XOR.
    Program prog = assemble("ldi r16, 1\nldi r17, 2\nldi r18, 3\nret", "t");
    Machine m(CpuMode::CA);
    m.loadProgram(prog.words, 0);
    FaultInjector inj;
    m.setFaultInjector(&inj);
    FaultPlan plan;
    plan.target = FaultTarget::OpcodeCorrupt;
    plan.triggerCycle = 1;
    plan.flashAddr = FaultPlan::kCurrentPc;
    // Flip LDI 0xE0x2 into an encoding with a different immediate.
    plan.mask = 0x0101;
    inj.arm(plan, 0);
    RunResult first = m.call(0);
    EXPECT_TRUE(inj.fired());
    EXPECT_EQ(inj.firedAtPc(), 1u);
    EXPECT_TRUE(first.ok());
    EXPECT_NE(m.reg(17), 2);  // corrupted immediate

    // Persistent: re-running without revert repeats the corruption.
    m.reset();
    m.call(0);
    EXPECT_NE(m.reg(17), 2);

    // Revert restores the original program behavior.
    inj.revertFlash(m);
    m.reset();
    m.call(0);
    EXPECT_EQ(m.reg(17), 2);
}

TEST(FaultInjector, EntryTriggeredPlanWaitsForRoutine)
{
    // Routine g at a higher address; a plan triggered at g's entry
    // must not fire during the long preamble loop before the call.
    Program prog = assemble(R"(
        ldi r17, 50
warm:
        dec r17
        brne warm
        rcall g
        ret
g:
        ldi r20, 5
        ldi r21, 6
        ret
    )", "t");
    SymbolTable syms;
    syms.addProgram("prog", prog, 0);
    ASSERT_TRUE(prog.labels.count("g"));
    uint32_t g_entry = prog.labels.at("g");

    for (int reference = 0; reference < 2; reference++) {
        Machine m(CpuMode::CA);
        m.forceReference = reference != 0;
        m.loadProgram(prog.words, 0);
        FaultInjector inj;
        m.setFaultInjector(&inj);
        FaultPlan plan;
        plan.target = FaultTarget::Gpr;
        plan.reg = 20;
        plan.mask = 0x04;
        plan.atEntry = true;
        plan.entryPc = g_entry;
        plan.triggerCycle = 1;  // one cycle into g: after ldi r20
        inj.arm(plan, 0);
        RunResult r = m.call(0);
        EXPECT_TRUE(r.ok());
        EXPECT_TRUE(inj.fired());
        // Fired after g's first LDI retired: r20 = 5 ^ 0x04 = 1.
        EXPECT_EQ(m.reg(20), 1);
        EXPECT_EQ(m.reg(21), 6);
        EXPECT_GE(inj.firedAtPc(), g_entry);
    }
}

TEST(FaultInjector, MacAccFlipInIseOpfMul)
{
    // End-to-end with the generated OPF code in ISE mode: a MAC
    // accumulator flip during the multiplication corrupts the result
    // but a clean re-run (time redundancy) exposes it.
    OpfPrime prime = paperOpfPrime();
    OpfAvrLibrary lib(prime, CpuMode::ISE);
    OpfField field(prime);
    Rng rng(42);
    OpfField::Words a = field.fromBig(BigUInt::random(rng, field.modulus()));
    OpfField::Words b = field.fromBig(BigUInt::random(rng, field.modulus()));

    lib.machine().reset();
    OpfRun golden = lib.mul(a, b);
    ASSERT_EQ(golden.trap.kind, TrapKind::None);

    FaultInjector inj;
    lib.machine().setFaultInjector(&inj);
    FaultPlan plan;
    plan.target = FaultTarget::MacAcc;
    plan.reg = 3;
    plan.mask = 0x10;
    plan.triggerCycle = golden.cycles / 2;
    lib.machine().reset();
    inj.arm(plan, lib.machine().stats().cycles);
    OpfRun faulted = lib.mul(a, b);
    EXPECT_TRUE(inj.fired());

    lib.machine().reset();
    OpfRun redo = lib.mul(a, b);
    EXPECT_EQ(redo.result, golden.result);
    // The flip mid-accumulation must surface either as a trap (MAC
    // hazard shape change) or as a wrong product.
    bool detected_or_wrong = faulted.trap.kind != TrapKind::None ||
                             faulted.result != golden.result;
    EXPECT_TRUE(detected_or_wrong);
    lib.machine().setFaultInjector(nullptr);
}

TEST(FaultInjector, ScheduleFiresEveryPlanInOrder)
{
    // Three GPR flips on different registers, each delayed from the
    // boundary where the previous one fired. Checked machine-free:
    // checkFire is the whole contract.
    std::vector<FaultPlan> plans(3);
    for (size_t i = 0; i < plans.size(); i++) {
        plans[i].target = FaultTarget::Gpr;
        plans[i].reg = uint8_t(20 + i);
        plans[i].triggerCycle = 10;
    }
    FaultInjector inj;
    inj.armSchedule(plans, 100);
    EXPECT_TRUE(inj.pending());

    std::vector<std::pair<uint8_t, uint64_t>> fired;
    for (uint64_t cycle = 100; cycle < 200; cycle++)
        if (inj.checkFire(0, cycle))
            fired.emplace_back(inj.plan().reg, cycle);
    ASSERT_EQ(fired.size(), 3u);
    EXPECT_EQ(inj.firedCount(), 3u);
    EXPECT_FALSE(inj.pending());
    EXPECT_EQ(fired[0], std::make_pair(uint8_t(20), uint64_t(110)));
    // Each later plan re-arms at the boundary AFTER its predecessor
    // fired (so plan() still names the firing plan at apply time),
    // shifting its delay base by one boundary.
    EXPECT_EQ(fired[1], std::make_pair(uint8_t(21), uint64_t(121)));
    EXPECT_EQ(fired[2], std::make_pair(uint8_t(22), uint64_t(132)));
}

TEST(FaultInjector, ScheduleOnMachinePerturbsEachShot)
{
    // Three SRAM flips into bytes the workload never reads: the run
    // stays architecturally clean (r20 = 136) while every shot lands
    // and is visible in the perturbed bytes afterwards.
    std::vector<FaultPlan> plans(3);
    for (size_t i = 0; i < plans.size(); i++) {
        plans[i].target = FaultTarget::Sram;
        plans[i].sramAddr = uint16_t(0x02f0 + i);
        plans[i].mask = 0x01 << i;
        plans[i].triggerCycle = i ? 20 : 50;
    }

    Machine m(CpuMode::CA);
    m.loadProgram(assemble(kWorkload, "w").words, 0);
    FaultInjector inj;
    m.setFaultInjector(&inj);
    inj.armSchedule(plans, 0);
    RunResult r = m.call(0);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(inj.firedCount(), 3u);
    EXPECT_FALSE(inj.pending());
    EXPECT_EQ(m.reg(20), 136); // untouched by the off-path flips
    std::vector<uint8_t> bytes = m.readBytes(0x02f0, 3);
    EXPECT_EQ(bytes[0], 0x01);
    EXPECT_EQ(bytes[1], 0x02);
    EXPECT_EQ(bytes[2], 0x04);
}

TEST(FaultInjector, DisarmClearsQueuedPlans)
{
    std::vector<FaultPlan> plans(4);
    FaultInjector inj;
    inj.armSchedule(plans, 0);
    EXPECT_TRUE(inj.pending());
    inj.disarm();
    EXPECT_FALSE(inj.pending());
    for (uint64_t cycle = 0; cycle < 50; cycle++)
        EXPECT_FALSE(inj.checkFire(0, cycle));
    EXPECT_EQ(inj.firedCount(), 0u);
}

TEST(FaultInjector, EmptyScheduleIsDisarm)
{
    FaultInjector inj;
    FaultPlan plan;
    inj.arm(plan, 0);
    EXPECT_TRUE(inj.pending());
    inj.armSchedule({}, 0);
    EXPECT_FALSE(inj.pending());
}

TEST(FaultInjector, SingleShotSemanticsUnchangedByScheduleSupport)
{
    // arm() after a schedule behaves exactly like the classic
    // single-shot API: one fire, then silence, firedCount reset.
    FaultInjector inj;
    inj.armSchedule(std::vector<FaultPlan>(3), 0);
    FaultPlan plan;
    plan.triggerCycle = 5;
    inj.arm(plan, 0);
    uint64_t fires = 0;
    for (uint64_t cycle = 0; cycle < 100; cycle++)
        if (inj.checkFire(0, cycle))
            fires++;
    EXPECT_EQ(fires, 1u);
    EXPECT_EQ(inj.firedCount(), 1u);
    EXPECT_TRUE(inj.fired());
    EXPECT_FALSE(inj.pending());
}

TEST(FaultInjector, BurstPlansAreSeededAndDeterministic)
{
    FaultPlan base;
    base.target = FaultTarget::Sram;
    base.sramAddr = 0x0210;
    base.triggerCycle = 25;
    base.atEntry = true;
    base.entryPc = 7;

    Rng a(99), b(99), c(100);
    std::vector<FaultPlan> s1 = burstPlans(base, 5, 40, 16, a);
    std::vector<FaultPlan> s2 = burstPlans(base, 5, 40, 16, b);
    std::vector<FaultPlan> s3 = burstPlans(base, 5, 40, 16, c);
    ASSERT_EQ(s1.size(), 5u);

    // First shot keeps the base trigger (including the entry wait);
    // later shots are plain gap+jitter delays from the predecessor.
    EXPECT_TRUE(s1[0].atEntry);
    EXPECT_EQ(s1[0].triggerCycle, 25u);
    bool jittered = false;
    for (size_t i = 1; i < s1.size(); i++) {
        EXPECT_FALSE(s1[i].atEntry);
        EXPECT_GE(s1[i].triggerCycle, 40u);
        EXPECT_LE(s1[i].triggerCycle, 56u);
        EXPECT_EQ(s1[i].triggerCycle, s2[i].triggerCycle);
        if (s1[i].triggerCycle != s3[i].triggerCycle)
            jittered = true;
    }
    EXPECT_TRUE(jittered); // a different seed moves at least one shot
}

TEST(FaultInjector, PlanDescribeIsStable)
{
    FaultPlan plan;
    plan.target = FaultTarget::Sram;
    plan.sramAddr = 0x0220;
    plan.mask = 0x40;
    plan.triggerCycle = 17;
    EXPECT_EQ(plan.describe(), "sram[0x0220] ^= 0x40 at +17 cycles");
    EXPECT_STREQ(faultTargetName(FaultTarget::OpcodeCorrupt),
                 "opcode_corrupt");
}
