/**
 * @file
 * Unit tests for the support utilities (hex codec, RNG, logging,
 * JSON emission).
 */

#include <gtest/gtest.h>

#include "support/hex.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/random.hh"

using namespace jaavr;

TEST(Hex, EncodeDecodeRoundTrip)
{
    std::vector<uint8_t> bytes = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x01};
    EXPECT_EQ(hexEncode(bytes), "deadbeef0001");
    EXPECT_EQ(hexDecode("deadbeef0001"), bytes);
    EXPECT_EQ(hexDecode("0xDEADBEEF0001"), bytes);
    EXPECT_EQ(hexDecode("de_ad be ef_00 01"), bytes);
}

TEST(Hex, OddLengthGetsLeadingZero)
{
    std::vector<uint8_t> expect = {0x0a, 0xbc};
    EXPECT_EQ(hexDecode("abc"), expect);
}

TEST(Hex, EmptyInput)
{
    EXPECT_TRUE(hexDecode("").empty());
    EXPECT_EQ(hexEncode({}), "");
}

TEST(Hex, InvalidCharacterIsFatal)
{
    EXPECT_DEATH(hexDecode("xyz"), "invalid character");
}

TEST(Hex, DigitValues)
{
    EXPECT_EQ(hexDigit('0'), 0);
    EXPECT_EQ(hexDigit('9'), 9);
    EXPECT_EQ(hexDigit('a'), 10);
    EXPECT_EQ(hexDigit('F'), 15);
    EXPECT_EQ(hexDigit('g'), -1);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; i++)
        if (a.next64() == b.next64())
            same++;
    EXPECT_LT(same, 5);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 1000; i++)
        EXPECT_LT(rng.below(17), 17u);
    // All residues hit eventually.
    bool seen[17] = {};
    for (int i = 0; i < 2000; i++)
        seen[rng.below(17)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Logging, Csprintf)
{
    EXPECT_EQ(csprintf("x=%d y=%s", 5, "abc"), "x=5 y=abc");
}

TEST(Logging, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "boom 42");
}

TEST(Json, EscapeQuotesAndBackslash)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
}

TEST(Json, EscapeControlCharacters)
{
    // The short escapes plus \u00XX for the rest of C0; a raw control
    // character in the output would make the line invalid JSON.
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape("\t\r\b\f"), "\\t\\r\\b\\f");
    EXPECT_EQ(jsonEscape(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
    for (int c = 0; c < 0x20; c++) {
        std::string esc = jsonEscape(std::string(1, char(c)));
        for (char e : esc)
            EXPECT_GE(static_cast<unsigned char>(e), 0x20u)
                << "control char " << c << " leaked through";
    }
}

TEST(Json, LineBuilder)
{
    JsonLine line;
    line.str("name", "a\"b").num("n", uint64_t(7)).num("x", 1.5);
    EXPECT_EQ(line.text(), "{\"name\":\"a\\\"b\",\"n\":7,\"x\":1.5}");
}

TEST(Json, NonFiniteDoublesBecomeNull)
{
    // JSON has no inf/nan literals; emitting them verbatim would
    // break every parser of the BENCH_*.json trajectory files.
    JsonLine line;
    double zero = 0.0;
    line.num("pinf", 1.0 / zero)
        .num("ninf", -1.0 / zero)
        .num("nan", zero / zero)
        .num("fine", 2.0);
    EXPECT_EQ(line.text(),
              "{\"pinf\":null,\"ninf\":null,\"nan\":null,\"fine\":2}");
}
