/**
 * @file
 * Fixed-base comb tables vs the generic multiplication paths, across
 * all four curve families: Weierstrass (secp160r1 and the OPF a = -3
 * curve), GLV (secp160k1 and the constructed OPF curve), twisted
 * Edwards (the OPF twin and the counted small pair), and Montgomery
 * (x-only ladder cross-checked through the comb on the birationally
 * equivalent Weierstrass curve). Includes agreement with the
 * hardened (validated + recomputed) paths and the batched-affine
 * evaluation contract (mulJacobian + toAffineBatch == mul).
 */

#include <gtest/gtest.h>

#include "curves/ecdsa.hh"
#include "curves/fixed_base.hh"
#include "curves/small_curves.hh"
#include "curves/standard_curves.hh"
#include "curves/validate.hh"
#include "support/random.hh"

using namespace jaavr;

namespace
{

std::vector<BigUInt>
edgeAndRandomScalars(const BigUInt &bound, Rng &rng, size_t randoms)
{
    std::vector<BigUInt> ks{BigUInt(1), BigUInt(2), BigUInt(3),
                            bound - BigUInt(1), bound - BigUInt(2)};
    for (size_t i = 0; i < randoms; i++)
        ks.push_back(BigUInt(1) +
                     BigUInt::random(rng, bound - BigUInt(1)));
    return ks;
}

/** edgeAndRandomScalars minus n - 1: the hardened Weierstrass path's
 *  co-Z ladder recomputation hits its P = -Q exception there and
 *  (conservatively) reports a mismatch — pre-existing behavior, not
 *  a comb property. */
std::vector<BigUInt>
hardenedScalars(const BigUInt &bound, Rng &rng, size_t randoms)
{
    std::vector<BigUInt> ks{BigUInt(1), BigUInt(2), BigUInt(3),
                            bound - BigUInt(2)};
    for (size_t i = 0; i < randoms; i++)
        ks.push_back(BigUInt(1) +
                     BigUInt::random(rng, bound - BigUInt(2)));
    return ks;
}

void
expectWeierstrassCombMatches(const WeierstrassCurve &c,
                             const AffinePoint &g, const BigUInt &n,
                             unsigned w)
{
    FixedBaseComb comb(c, g, n.bitLength(), w);
    EXPECT_EQ(comb.tableSize(), size_t(1u << w) - 1);
    Rng rng(1000 + w);
    for (const BigUInt &k : edgeAndRandomScalars(n, rng, 8)) {
        AffinePoint expect = c.mulNaf(k, g);
        AffinePoint got = comb.mul(c, k);
        EXPECT_EQ(got.inf, expect.inf);
        EXPECT_EQ(got.x, expect.x);
        EXPECT_EQ(got.y, expect.y);
    }
    // k = 0 is the point at infinity.
    EXPECT_TRUE(comb.mul(c, BigUInt(0)).inf);
}

} // namespace

TEST(FixedBase, Secp160r1AcrossWidths)
{
    const WeierstrassCurve &c = secp160r1Curve();
    const CurveGenerator &gen = secp160r1Generator();
    for (unsigned w : {2u, 3u, 5u, 8u})
        expectWeierstrassCombMatches(c, gen.g, gen.order, w);
}

TEST(FixedBase, WeierstrassOpfBasePoint)
{
    // Order unpublished: cover the scalar sizes the service would
    // use (up to the field size).
    const WeierstrassCurve &c = weierstrassOpfCurve();
    AffinePoint g = weierstrassOpfBasePoint();
    unsigned bits = c.field().modulus().bitLength();
    FixedBaseComb comb(c, g, bits, 5);
    Rng rng(7);
    for (int i = 0; i < 8; i++) {
        BigUInt k = BigUInt::randomBits(rng, bits);
        if (k.isZero())
            k = BigUInt(1);
        AffinePoint expect = c.mulNaf(k, g);
        AffinePoint got = comb.mul(c, k);
        EXPECT_EQ(got.inf, expect.inf);
        EXPECT_EQ(got.x, expect.x);
        EXPECT_EQ(got.y, expect.y);
    }
}

TEST(FixedBase, GlvCurvesMatchEndomorphismPath)
{
    // The comb must agree with the GLV-accelerated multiplication,
    // not just plain NAF.
    for (const GlvCurve *cp : {&secp160k1Curve(), &glvOpfCurve()}) {
        const GlvCurve &c = *cp;
        FixedBaseComb comb(c, c.generator(), c.order().bitLength(), 5);
        Rng rng(11);
        for (const BigUInt &k :
             edgeAndRandomScalars(c.order(), rng, 6)) {
            AffinePoint naf = c.mulNaf(k, c.generator());
            AffinePoint glv = c.mulGlvJsf(k, c.generator());
            AffinePoint got = comb.mul(c, k);
            EXPECT_EQ(got.x, naf.x);
            EXPECT_EQ(got.y, naf.y);
            EXPECT_EQ(got.x, glv.x);
            EXPECT_EQ(got.y, glv.y);
        }
    }
}

TEST(FixedBase, BatchedJacobianEvaluationMatchesAffine)
{
    // The service-layer contract: many mulJacobian results converted
    // with one toAffineBatch equal the one-at-a-time comb.mul.
    const WeierstrassCurve &c = secp160r1Curve();
    const CurveGenerator &gen = secp160r1Generator();
    FixedBaseComb comb(c, gen.g, gen.order.bitLength(), 5);
    Rng rng(13);
    std::vector<BigUInt> ks = edgeAndRandomScalars(gen.order, rng, 12);
    std::vector<JacobianPoint> pts;
    for (const BigUInt &k : ks)
        pts.push_back(comb.mulJacobian(c, k));
    std::vector<AffinePoint> affs = c.toAffineBatch(pts);
    ASSERT_EQ(affs.size(), ks.size());
    for (size_t i = 0; i < ks.size(); i++) {
        AffinePoint expect = comb.mul(c, ks[i]);
        EXPECT_EQ(affs[i].x, expect.x);
        EXPECT_EQ(affs[i].y, expect.y);
    }
}

TEST(FixedBase, EdwardsCombMatchesGenericPaths)
{
    const EdwardsCurve &c = edwardsOpfCurve();
    AffinePoint g = edwardsOpfBasePoint();
    unsigned bits = c.field().modulus().bitLength();
    EdwardsFixedBaseComb comb(c, g, bits, 5);
    EXPECT_EQ(comb.tableSize(), size_t(31));
    Rng rng(17);
    for (int i = 0; i < 8; i++) {
        BigUInt k = BigUInt::randomBits(rng, bits);
        if (k.isZero())
            k = BigUInt(1);
        AffinePoint naf = c.mulNaf(k, g);
        AffinePoint daaa = c.mulDaaa(k, g);
        AffinePoint got = comb.mul(c, k);
        EXPECT_EQ(got.x, naf.x);
        EXPECT_EQ(got.y, naf.y);
        EXPECT_EQ(got.x, daaa.x);
        EXPECT_EQ(got.y, daaa.y);
    }
    // k = 0 is the Edwards identity (0, 1).
    EXPECT_TRUE(c.isIdentity(comb.mul(c, BigUInt(0))));
}

TEST(FixedBase, MontgomeryLadderCrossCheck)
{
    // Montgomery is x-only, so the fixed-base story for the family
    // runs through the birationally equivalent Weierstrass curve: a
    // comb there must project back to the ladder's x-coordinates.
    const MontgomeryCurve &m = montgomeryOpfCurve();
    WeierstrassCurve w = m.toWeierstrass();
    AffinePoint base_m = montgomeryOpfBasePoint();
    AffinePoint base_w = m.mapToWeierstrass(base_m);
    unsigned bits = m.field().modulus().bitLength();
    FixedBaseComb comb(w, base_w, bits, 5);
    Rng rng(19);
    for (int i = 0; i < 6; i++) {
        BigUInt k = BigUInt::randomBits(rng, bits);
        if (k.isZero())
            k = BigUInt(1);
        auto lx = m.ladder(k, base_m.x);
        AffinePoint via_w = comb.mul(w, k);
        ASSERT_TRUE(lx.has_value());
        ASSERT_FALSE(via_w.inf);
        EXPECT_EQ(m.mapFromWeierstrass(via_w).x, *lx);
    }
}

TEST(FixedBase, HardenedPathEquivalence)
{
    // The comb is a third independent algorithm: it must agree with
    // the hardened (co-Z ladder + NAF recompute + validate) results
    // on every order-known curve.
    {
        const WeierstrassCurve &c = secp160r1Curve();
        const CurveGenerator &gen = secp160r1Generator();
        FixedBaseComb comb(c, gen.g, gen.order.bitLength(), 5);
        Rng rng(23);
        for (const BigUInt &k : hardenedScalars(gen.order, rng, 4)) {
            HardenedMul h =
                hardenedMulWeierstrass(c, k, gen.g, gen.order);
            ASSERT_TRUE(h.ok) << h.reason;
            AffinePoint got = comb.mul(c, k);
            EXPECT_EQ(got.x, h.point.x);
            EXPECT_EQ(got.y, h.point.y);
        }
    }
    for (const GlvCurve *cp : {&secp160k1Curve(), &glvOpfCurve()}) {
        const GlvCurve &c = *cp;
        FixedBaseComb comb(c, c.generator(), c.order().bitLength(), 5);
        Rng rng(29);
        for (const BigUInt &k : hardenedScalars(c.order(), rng, 4)) {
            HardenedMul h = hardenedMulGlv(c, k, c.generator());
            ASSERT_TRUE(h.ok) << h.reason;
            AffinePoint got = comb.mul(c, k);
            EXPECT_EQ(got.x, h.point.x);
            EXPECT_EQ(got.y, h.point.y);
        }
    }
}

TEST(FixedBase, SmallPairHardenedEdwardsAndMontgomery)
{
    // The counted small pair supplies the known subgroup order the
    // OPF Montgomery/Edwards curves lack, closing the hardened
    // equivalence over the remaining two families.
    const SmallCurvePair &pair = smallCurvePair();
    EdwardsFixedBaseComb comb(pair.edwards, pair.edBase,
                              pair.n.bitLength(), 3);
    Rng rng(31);
    for (const BigUInt &k : hardenedScalars(pair.n, rng, 4)) {
        HardenedMul h =
            hardenedMulEdwards(pair.edwards, k, pair.edBase, pair.n);
        ASSERT_TRUE(h.ok) << h.reason;
        AffinePoint got = comb.mul(pair.edwards, k);
        EXPECT_EQ(got.x, h.point.x);
        EXPECT_EQ(got.y, h.point.y);
    }

    WeierstrassCurve w = pair.montgomery.toWeierstrass();
    AffinePoint base_w = pair.montgomery.mapToWeierstrass(pair.montBase);
    FixedBaseComb wcomb(w, base_w, pair.n.bitLength(), 3);
    for (const BigUInt &k : hardenedScalars(pair.n, rng, 4)) {
        HardenedMul h = hardenedMulMontgomery(pair.montgomery, k,
                                              pair.montBase.x, pair.n);
        ASSERT_TRUE(h.ok) << h.reason;
        ASSERT_TRUE(h.x.has_value());
        AffinePoint via_w = wcomb.mul(w, k);
        ASSERT_FALSE(via_w.inf);
        EXPECT_EQ(pair.montgomery.mapFromWeierstrass(via_w).x, *h.x);
    }
}

TEST(FixedBase, EcdsaIntegration)
{
    // attachFixedBase reroutes every fixed-base multiplication;
    // signatures and verification outcomes must be unchanged.
    const GlvCurve &c = secp160k1Curve();
    Ecdsa plain(c);
    Ecdsa combed(c);
    FixedBaseComb comb(c, c.generator(), c.order().bitLength(), 5);
    combed.attachFixedBase(&comb);
    EXPECT_EQ(combed.fixedBase(), &comb);

    Rng rng(37);
    BigUInt d = BigUInt(1) + BigUInt::random(rng, c.order() - BigUInt(1));
    BigUInt k = BigUInt(1) + BigUInt::random(rng, c.order() - BigUInt(1));
    const std::string msg = "fixed-base integration";

    auto s1 = plain.signWithNonce(msg, d, k);
    auto s2 = combed.signWithNonce(msg, d, k);
    ASSERT_TRUE(s1.has_value());
    ASSERT_TRUE(s2.has_value());
    EXPECT_EQ(s1->r, s2->r);
    EXPECT_EQ(s1->s, s2->s);

    AffinePoint q_plain = plain.mulG(d);
    AffinePoint q_combed = combed.mulG(d);
    EXPECT_EQ(q_plain.x, q_combed.x);
    EXPECT_EQ(q_plain.y, q_combed.y);

    EXPECT_TRUE(plain.verify(msg, *s2, q_combed));
    EXPECT_TRUE(combed.verify(msg, *s1, q_plain));
    EcdsaSignature tampered{s1->r, c.field().add(s1->s, BigUInt(1))};
    EXPECT_FALSE(combed.verify(msg, tampered, q_plain));
}
