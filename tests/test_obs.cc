/**
 * @file
 * Observability pins for the span tracer and flight recorder
 * (DESIGN.md §15): an attached trap sink adds exactly zero simulated
 * cycles on every ISS backend, fault-like traps land in the flight
 * ring (with the slice/budget filter intact), dumps are
 * byte-identical across reruns of the same history, the span rings
 * wrap with honest drop accounting, both exporters round-trip
 * through the repo's own JSON-lines parser, and the EccService stays
 * bit-identical with a tracer attached — enabled or not — while the
 * verify-mismatch and backpressure anomalies fire flight triggers.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "avr/machine.hh"
#include "avrasm/assembler.hh"
#include "avrgen/opf_harness.hh"
#include "curves/standard_curves.hh"
#include "field/opf_field.hh"
#include "nt/opf_prime.hh"
#include "obs/flight.hh"
#include "obs/trace.hh"
#include "service/service.hh"
#include "support/json.hh"
#include "support/random.hh"

using namespace jaavr;

namespace
{

void
expectSameState(const Machine &a, const Machine &b)
{
    for (unsigned i = 0; i < 32; i++)
        EXPECT_EQ(a.reg(i), b.reg(i)) << "r" << i;
    EXPECT_EQ(a.sreg(), b.sreg());
    EXPECT_EQ(a.sp(), b.sp());
    EXPECT_EQ(a.pc(), b.pc());
    EXPECT_EQ(a.stats().instructions, b.stats().instructions);
    EXPECT_EQ(a.stats().cycles, b.stats().cycles);
    EXPECT_EQ(a.mac().totalMacs(), b.mac().totalMacs());
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
tmpPath(const std::string &leaf)
{
    return testing::TempDir() + "/" + leaf;
}

std::vector<JsonObject>
parseLines(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::vector<JsonObject> out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        JsonObject obj;
        std::string err;
        EXPECT_TRUE(parseJsonLine(line, obj, &err))
            << path << ": " << err << ": " << line;
        out.push_back(std::move(obj));
    }
    return out;
}

} // anonymous namespace

/*
 * The observer pinning contract, extended to the flight recorder: a
 * MachineTrapFlight attached to a machine that never traps must
 * leave every backend (reference, fast, superblock) with
 * bit-identical results, cycles and architectural state — the same
 * discipline Vcd.AttachedButIdleAddsZeroCycles pins for the wave
 * sink. The trap funnel only runs after the run loop has already
 * stopped, so "attached" costs zero simulated cycles by
 * construction; this test keeps it that way.
 */
TEST(Obs, TrapSinkAttachedAddsZeroCyclesOnAllBackends)
{
    OpfPrime prime = makeOpf(0xff4c, 144);
    OpfField field(prime);
    Rng rng(0x0b5);
    auto a = field.fromBig(BigUInt::randomBits(rng, prime.k));
    auto b = field.fromBig(BigUInt::randomBits(rng, prime.k));

    for (IssBackend backend : {IssBackend::Reference, IssBackend::Fast,
                               IssBackend::Superblock}) {
        for (CpuMode mode : {CpuMode::CA, CpuMode::ISE}) {
            OpfAvrLibrary base(prime, mode);
            base.machine().setBackend(backend);
            OpfRun r0 = base.mul(a, b);

            OpfAvrLibrary observed(prime, mode);
            observed.machine().setBackend(backend);
            obs::FlightRecorder flight;
            obs::MachineTrapFlight sink(flight, "iss");
            observed.machine().setTrapSink(&sink);
            OpfRun r1 = observed.mul(a, b);

            EXPECT_EQ(r1.result, r0.result)
                << issBackendName(backend) << " " << cpuModeName(mode);
            EXPECT_EQ(r1.cycles, r0.cycles);
            EXPECT_EQ(r1.instructions, r0.instructions);
            expectSameState(observed.machine(), base.machine());
            EXPECT_EQ(flight.totalRecorded(), 0u);
            EXPECT_EQ(flight.triggers(), 0u);
        }
    }
}

TEST(Obs, IllegalOpcodeTrapFiresAFlightDump)
{
    std::string path = tmpPath("jaavr_flight_trap.json");
    obs::FlightRecorder flight;
    flight.setDumpPath(path);
    obs::MachineTrapFlight sink(flight, "iss");

    Machine m(CpuMode::CA);
    m.loadProgram({0x9404}, 0); // reserved opcode word
    m.setTrapSink(&sink);
    RunResult r = m.call(0);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.trap.kind, TrapKind::IllegalOpcode);

    EXPECT_EQ(flight.triggers(), 1u);
    EXPECT_EQ(flight.source("iss")->recorded(), 1u);

    std::vector<JsonObject> lines = parseLines(path);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0].at("flight").str, "header");
    EXPECT_EQ(lines[0].at("reason").str, "iss_trap");
    EXPECT_EQ(lines[0].at("events").num, 1.0);
    EXPECT_EQ(lines[1].at("source").str, "iss");
    EXPECT_EQ(lines[1].at("kind").str, "trap");
    EXPECT_NE(lines[1].at("detail").str.find("illegal"),
              std::string::npos);
    // The timestamp is the retired-cycle count — logical time.
    EXPECT_EQ(lines[1].at("t").num, double(r.cycles));
    std::remove(path.c_str());
}

TEST(Obs, BudgetSlicesAreFilteredUnlessRecordAll)
{
    Program prog = assemble("nop\nnop\nret\n", "obs_budget");
    Machine ref(CpuMode::CA);
    ref.loadProgram(prog.words, 0);
    uint64_t full = ref.call(0);

    // A budget == consumption run traps with CycleBudget; the default
    // sink treats it as a control-flow stop, not an anomaly.
    obs::FlightRecorder flight;
    obs::MachineTrapFlight sink(flight, "iss");
    Machine m(CpuMode::CA);
    m.loadProgram(prog.words, 0);
    m.setTrapSink(&sink);
    RunResult r = m.call(0, full);
    ASSERT_EQ(r.trap.kind, TrapKind::CycleBudget);
    EXPECT_EQ(flight.totalRecorded(), 0u);
    EXPECT_EQ(flight.triggers(), 0u);

    // recordAll opts the slice stops in; dumpOnTrap off keeps the
    // trigger count clean (the GDB continue loop uses this shape).
    sink.setRecordAll(true);
    sink.setDumpOnTrap(false);
    Machine m2(CpuMode::CA);
    m2.loadProgram(prog.words, 0);
    m2.setTrapSink(&sink);
    ASSERT_EQ(m2.call(0, full).trap.kind, TrapKind::CycleBudget);
    EXPECT_EQ(flight.source("iss")->recorded(), 1u);
    EXPECT_EQ(flight.triggers(), 0u);
}

TEST(Obs, FlightDumpIsByteIdenticalAcrossReruns)
{
    std::string paths[2] = {tmpPath("jaavr_flight_a.json"),
                            tmpPath("jaavr_flight_b.json")};
    for (int i = 0; i < 2; i++) {
        obs::FlightRecorder flight(4);
        flight.setDumpPath(paths[i]);
        // Same logical history both times, sources created in a
        // different order: the dump sorts by name, so order of
        // creation must not leak into the bytes.
        flight.source(i ? "zeta" : "alpha");
        flight.source(i ? "alpha" : "zeta");
        obs::FlightRecorder::Source *z = flight.source("zeta");
        obs::FlightRecorder::Source *a = flight.source("alpha");
        for (uint64_t t = 1; t <= 6; t++) // 6 > capacity 4: wraps
            z->record(t, "rekey", "epoch rolled", t, 0);
        a->record(10, "trap", "illegal opcode", 0x40, 0);
        EXPECT_TRUE(flight.trigger("test_anomaly"));
    }
    std::string a = slurp(paths[0]), b = slurp(paths[1]);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "identical histories must dump identical bytes";

    std::vector<JsonObject> lines = parseLines(paths[0]);
    ASSERT_EQ(lines.size(), 6u); // header + 1 alpha + 4 zeta
    EXPECT_EQ(lines[0].at("events").num, 5.0);
    EXPECT_EQ(lines[1].at("source").str, "alpha");
    // The zeta ring retained the last 4 of 6, seq numbers intact.
    EXPECT_EQ(lines[2].at("source").str, "zeta");
    EXPECT_EQ(lines[2].at("seq").num, 3.0);
    EXPECT_EQ(lines[5].at("seq").num, 6.0);
    std::remove(paths[0].c_str());
    std::remove(paths[1].c_str());
}

TEST(Obs, SpanRingWrapsWithHonestDropAccounting)
{
    obs::SpanRing ring("test", 8);
    EXPECT_EQ(ring.capacity(), 8u);
    for (uint64_t i = 0; i < 20; i++) {
        obs::SpanRecord r;
        r.name = "tick";
        r.spanId = i + 1;
        r.beginUs = i;
        r.endUs = i + 1;
        ring.push(r);
    }
    EXPECT_EQ(ring.recorded(), 20u);
    EXPECT_EQ(ring.dropped(), 12u);
    std::vector<obs::SpanRecord> snap = ring.snapshot();
    ASSERT_EQ(snap.size(), 8u);
    // Oldest-first, and exactly the survivors 12..19.
    for (size_t i = 0; i < snap.size(); i++)
        EXPECT_EQ(snap[i].beginUs, 12 + i);
}

TEST(Obs, JsonLinesExportRoundTripsThroughTheParser)
{
    obs::SpanTracer tracer(16);
    tracer.setEnabled(true);
    obs::SpanRing *ring = tracer.ring("worker0");

    obs::SpanRecord parent;
    parent.name = "drain";
    parent.cat = "service";
    parent.spanId = tracer.newSpanId();
    parent.beginUs = 100;
    parent.endUs = 250;
    parent.arg0Name = "batch";
    parent.arg0 = 3;
    ring->push(parent);

    obs::SpanRecord child;
    child.name = "sign";
    child.cat = "service";
    child.traceId = tracer.newTraceId();
    child.spanId = tracer.newSpanId();
    child.parentId = parent.spanId;
    child.beginUs = 120;
    child.endUs = 120; // instant
    ring->push(child);

    std::string path = tmpPath("jaavr_trace_roundtrip.json");
    std::remove(path.c_str());
    JsonLine stamp;
    stamp.str("bench", "test");
    ASSERT_TRUE(tracer.exportJsonLines(path, stamp));

    std::vector<JsonObject> lines = parseLines(path);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0].at("bench").str, "test");
    EXPECT_EQ(lines[0].at("record").str, "span");
    EXPECT_EQ(lines[0].at("source").str, "worker0");
    EXPECT_EQ(lines[0].at("name").str, "drain");
    EXPECT_EQ(lines[0].at("dur_us").num, 150.0);
    EXPECT_EQ(lines[0].at("batch").num, 3.0);
    EXPECT_EQ(lines[1].at("name").str, "sign");
    EXPECT_EQ(lines[1].at("parent_id").num, double(parent.spanId));
    EXPECT_EQ(lines[1].at("dur_us").num, 0.0);
    EXPECT_EQ(lines[1].count("batch"), 0u);

    // The Chrome export carries the same spans: a complete "X" event
    // for the interval, an instant "i" for the zero-length child, and
    // one thread_name metadata record per ring — and the whole file
    // is a single well-formed JSON array.
    std::string chrome = tmpPath("jaavr_trace_chrome.json");
    ASSERT_TRUE(tracer.exportChromeTrace(chrome));
    std::string text = slurp(chrome);
    EXPECT_EQ(text.front(), '[');
    EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"X\",\"ts\":100,\"dur\":150"),
              std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"i\",\"ts\":120"), std::string::npos);
    // Balanced array: every line but the first starts with a comma
    // or the closing bracket — cheap structural sanity without a
    // full JSON parser.
    EXPECT_EQ(text[text.size() - 2], ']');
    std::remove(path.c_str());
    std::remove(chrome.c_str());
}

TEST(Obs, ServiceResultsBitIdenticalWithTracerAttached)
{
    const GlvCurve &c = secp160k1Curve();
    Ecdsa golden(c);
    Rng rng(77);
    const BigUInt d =
        BigUInt(1) + BigUInt::random(rng, c.order() - BigUInt(1));
    const BigUInt k =
        BigUInt(1) + BigUInt::random(rng, c.order() - BigUInt(1));
    auto expect = golden.signWithNonce("traced", d, k);
    ASSERT_TRUE(expect.has_value());

    constexpr int kReqs = 12;
    auto run = [&](obs::SpanTracer *tracer, bool enabled) {
        EccService svc([] {
            ServiceConfig cfg;
            cfg.workers = 2;
            cfg.rngSeed = 9;
            return cfg;
        }());
        if (tracer) {
            tracer->setEnabled(enabled);
            svc.setTracer(tracer);
        }
        svc.start();
        std::vector<ServiceRequest> reqs(kReqs);
        for (int i = 0; i < kReqs; i++) {
            ServiceRequest &r = reqs[i];
            r.op = ServiceOp::Sign;
            r.curve = ServiceCurve::Secp160k1;
            r.message = "traced";
            r.privateKey = d;
            r.nonce = k;
            r.shardHint = uint64_t(i);
            ASSERT_TRUE(svc.submit(&r));
        }
        for (ServiceRequest &r : reqs) {
            EccService::wait(r);
            ASSERT_EQ(r.status, ServiceStatus::Ok);
            EXPECT_EQ(r.sigOut.r, expect->r);
            EXPECT_EQ(r.sigOut.s, expect->s);
        }
        svc.stop();
    };

    run(nullptr, false);

    obs::SpanTracer idle;
    run(&idle, false);
    EXPECT_EQ(idle.totalRecorded(), 0u);

    obs::SpanTracer armed;
    run(&armed, true);
    EXPECT_GT(armed.totalRecorded(), 0u);
    size_t requestSpans = 0, drainSpans = 0;
    std::set<uint64_t> traceIds;
    for (const auto &[source, records] : armed.snapshotAll()) {
        for (const obs::SpanRecord &r : records) {
            if (std::string(r.name) == "sign") {
                requestSpans++;
                EXPECT_NE(r.traceId, 0u);
                EXPECT_NE(r.parentId, 0u);
                traceIds.insert(r.traceId);
                ASSERT_NE(r.arg0Name, nullptr);
                EXPECT_STREQ(r.arg0Name, "queue_wait_us");
            } else if (std::string(r.name) == "drain") {
                drainSpans++;
            }
        }
    }
    EXPECT_EQ(requestSpans, size_t(kReqs));
    EXPECT_EQ(traceIds.size(), size_t(kReqs)) << "trace IDs not unique";
    EXPECT_GT(drainSpans, 0u);
}

TEST(Obs, VerifyMismatchTriggersAFlightDump)
{
    const GlvCurve &c = secp160k1Curve();
    Ecdsa golden(c);
    Rng rng(31);
    const BigUInt d =
        BigUInt(1) + BigUInt::random(rng, c.order() - BigUInt(1));
    const BigUInt k =
        BigUInt(1) + BigUInt::random(rng, c.order() - BigUInt(1));
    auto sig = golden.signWithNonce("genuine", d, k);
    ASSERT_TRUE(sig.has_value());

    std::string path = tmpPath("jaavr_flight_verify.json");
    obs::FlightRecorder flight;
    flight.setDumpPath(path);

    EccService svc([] {
        ServiceConfig cfg;
        cfg.workers = 1;
        cfg.amortize = false;
        cfg.rngSeed = 3;
        return cfg;
    }());
    svc.setFlightRecorder(&flight);

    ServiceRequest r;
    r.op = ServiceOp::Verify;
    r.curve = ServiceCurve::Secp160k1;
    r.message = "genuine tampered";
    r.signature = *sig;
    r.peer = c.mulNaf(d, c.generator());
    ASSERT_TRUE(svc.trySubmit(&r));
    svc.start();
    EccService::wait(r);
    svc.stop();

    ASSERT_EQ(r.status, ServiceStatus::Ok);
    EXPECT_FALSE(r.verifyOk);
    EXPECT_EQ(flight.triggers(), 1u);

    std::vector<JsonObject> lines = parseLines(path);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0].at("reason").str, "service_verify_mismatch");
    EXPECT_EQ(lines[1].at("kind").str, "verify_mismatch");
    EXPECT_EQ(lines[1].at("source").str, "worker0");
    EXPECT_NE(lines[1].at("detail").str.find("signature rejected"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(Obs, BackpressureOnsetIsRecordedExactlyOnce)
{
    obs::FlightRecorder flight; // no dump path: trigger only counts
    EccService svc([] {
        ServiceConfig cfg;
        cfg.workers = 1;
        cfg.queueCapacity = 2;
        cfg.rngSeed = 4;
        return cfg;
    }());
    svc.setFlightRecorder(&flight);

    // Never started: submissions park in the shard queue until it
    // fills, then every further trySubmit is a backpressure refusal.
    std::vector<ServiceRequest> reqs(6);
    unsigned accepted = 0, refused = 0;
    for (ServiceRequest &r : reqs) {
        r.op = ServiceOp::Sign;
        r.curve = ServiceCurve::Secp160k1;
        r.message = "bp";
        r.privateKey = BigUInt(7);
        r.nonce = BigUInt(5);
        if (svc.trySubmit(&r))
            accepted++;
        else
            refused++;
    }
    EXPECT_EQ(accepted, 2u);
    EXPECT_EQ(refused, 4u);
    EXPECT_EQ(svc.backpressureRefusals(), 4u);
    // Only the onset lands in the ring; the counter keeps the tally.
    EXPECT_EQ(flight.source("submit")->recorded(), 1u);
    EXPECT_EQ(flight.triggers(), 1u);

    // Drain the parked requests so their stack storage can unwind.
    svc.start();
    for (unsigned i = 0; i < accepted; i++)
        EccService::wait(reqs[i]);
    svc.stop();
}
