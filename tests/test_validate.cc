/**
 * @file
 * Unified scalar/point validation and the hardened multiplications:
 * canonical-range and on-curve rejection, subgroup membership via
 * the counted small-curve pair, agreement of the hardened paths with
 * the plain algorithms, and the Ecdsa integration (invalid private
 * scalars are fatal, invalid public keys unverifiable).
 */

#include <gtest/gtest.h>

#include "curves/ecdsa.hh"
#include "curves/small_curves.hh"
#include "curves/standard_curves.hh"
#include "curves/validate.hh"
#include "nt/primality.hh"
#include "support/random.hh"

using namespace jaavr;

TEST(Validate, ScalarRange)
{
    BigUInt n = BigUInt::fromHex("100000000000000000001b8fa16dfab9aca16b6b3");
    EXPECT_FALSE(validScalar(BigUInt(0), n));
    EXPECT_TRUE(validScalar(BigUInt(1), n));
    EXPECT_TRUE(validScalar(n - BigUInt(1), n));
    EXPECT_FALSE(validScalar(n, n));
    EXPECT_FALSE(validScalar(n + BigUInt(1), n));
}

TEST(Validate, WeierstrassPointChecks)
{
    const WeierstrassCurve &c = secp160r1Curve();
    const CurveGenerator &gen = secp160r1Generator();
    EXPECT_TRUE(validatePoint(c, gen.g));
    EXPECT_TRUE(validatePoint(c, gen.g, &gen.order));

    EXPECT_FALSE(validatePoint(c, AffinePoint::infinity()));

    // Off-curve: perturb y.
    AffinePoint bad(gen.g.x, c.field().add(gen.g.y, BigUInt(1)));
    EXPECT_FALSE(validatePoint(c, bad));

    // Non-canonical coordinates are rejected even though they reduce
    // to a curve point.
    AffinePoint wide(gen.g.x + c.field().modulus(), gen.g.y);
    EXPECT_FALSE(validatePoint(c, wide));
}

TEST(Validate, SubgroupMembershipOnCofactorCurve)
{
    // The small pair's Weierstrass image has cofactor 4 or 8: a
    // generic random point is on the curve but outside the order-n
    // subgroup, which only the order check catches.
    const SmallCurvePair &pair = smallCurvePair();
    WeierstrassCurve w = pair.montgomery.toWeierstrass();
    AffinePoint base_w = pair.montgomery.mapToWeierstrass(pair.montBase);
    EXPECT_TRUE(validatePoint(w, base_w, &pair.n));

    Rng rng(7);
    bool rejected_full_order = false;
    for (int i = 0; i < 16 && !rejected_full_order; i++) {
        AffinePoint p =
            pair.montgomery.mapToWeierstrass(pair.montgomery.randomPoint(rng));
        ASSERT_TRUE(validatePoint(w, p)); // on curve
        if (!validatePoint(w, p, &pair.n))
            rejected_full_order = true;
    }
    EXPECT_TRUE(rejected_full_order);
}

TEST(Validate, EdwardsPointChecks)
{
    const SmallCurvePair &pair = smallCurvePair();
    const EdwardsCurve &e = pair.edwards;
    EXPECT_TRUE(validatePoint(e, pair.edBase, &pair.n));
    EXPECT_FALSE(validatePoint(e, e.identity()));
    EXPECT_FALSE(validatePoint(e, AffinePoint::infinity()));
    AffinePoint bad(pair.edBase.x,
                    e.field().add(pair.edBase.y, BigUInt(1)));
    EXPECT_FALSE(validatePoint(e, bad));

    // A random full-order point fails the subgroup check.
    Rng rng(9);
    bool rejected = false;
    for (int i = 0; i < 16 && !rejected; i++) {
        AffinePoint p = e.randomPoint(rng);
        if (validatePoint(e, p) && !validatePoint(e, p, &pair.n))
            rejected = true;
    }
    EXPECT_TRUE(rejected);
}

TEST(Validate, MontgomeryXChecks)
{
    const SmallCurvePair &pair = smallCurvePair();
    const MontgomeryCurve &m = pair.montgomery;
    EXPECT_TRUE(validateX(m, pair.montBase.x));
    EXPECT_FALSE(validateX(m, BigUInt(0)));            // order 2
    EXPECT_FALSE(validateX(m, m.field().modulus()));   // non-canonical

    // Roughly half the field is off-curve; find one such x.
    bool rejected_twist = false;
    for (uint64_t xi = 1; xi < 64 && !rejected_twist; xi++)
        if (!validateX(m, BigUInt(xi)))
            rejected_twist = true;
    EXPECT_TRUE(rejected_twist);
}

TEST(Validate, SmallPairConstructionInvariants)
{
    const SmallCurvePair &pair = smallCurvePair();
    Rng rng(11);
    EXPECT_TRUE(isProbablePrime(pair.n, rng));
    EXPECT_TRUE(pair.cofactor == BigUInt(4) || pair.cofactor == BigUInt(8));
    EXPECT_EQ(pair.groupOrder % pair.n, BigUInt(0));
    EXPECT_EQ(pair.groupOrder, pair.n * pair.cofactor);
    EXPECT_TRUE(pair.montgomery.onCurve(pair.montBase));
    EXPECT_TRUE(pair.edwards.onCurve(pair.edBase));
    EXPECT_TRUE(pair.edwards.isComplete());
}

TEST(Validate, HardenedWeierstrassAgreesAndRejects)
{
    const WeierstrassCurve &c = secp160r1Curve();
    const CurveGenerator &gen = secp160r1Generator();
    Rng rng(21);
    BigUInt k = BigUInt(1) + BigUInt::random(rng, gen.order - BigUInt(1));

    HardenedMul r = hardenedMulWeierstrass(c, k, gen.g, gen.order);
    ASSERT_TRUE(r.ok) << r.reason;
    AffinePoint expect = c.mulNaf(k, gen.g);
    EXPECT_EQ(r.point.x, expect.x);
    EXPECT_EQ(r.point.y, expect.y);

    EXPECT_EQ(hardenedMulWeierstrass(c, BigUInt(0), gen.g, gen.order)
                  .reason,
              "invalid scalar");
    EXPECT_EQ(hardenedMulWeierstrass(c, gen.order, gen.g, gen.order)
                  .reason,
              "invalid scalar");
    AffinePoint bad(gen.g.x, c.field().add(gen.g.y, BigUInt(1)));
    EXPECT_EQ(hardenedMulWeierstrass(c, k, bad, gen.order).reason,
              "invalid input point");
}

TEST(Validate, HardenedGlvAgrees)
{
    const GlvCurve &c = secp160k1Curve();
    Rng rng(22);
    BigUInt k = BigUInt(1) + BigUInt::random(rng, c.order() - BigUInt(1));
    HardenedMul r = hardenedMulGlv(c, k, c.generator());
    ASSERT_TRUE(r.ok) << r.reason;
    AffinePoint expect = c.mulGlvJsf(k, c.generator());
    EXPECT_EQ(r.point.x, expect.x);
    EXPECT_EQ(r.point.y, expect.y);
}

TEST(Validate, HardenedEdwardsAgreesAndRejects)
{
    const SmallCurvePair &pair = smallCurvePair();
    Rng rng(23);
    BigUInt k = BigUInt(1) + BigUInt::random(rng, pair.n - BigUInt(1));
    HardenedMul r =
        hardenedMulEdwards(pair.edwards, k, pair.edBase, pair.n);
    ASSERT_TRUE(r.ok) << r.reason;
    AffinePoint expect = pair.edwards.mulBinary(k, pair.edBase);
    EXPECT_EQ(r.point.x, expect.x);
    EXPECT_EQ(r.point.y, expect.y);

    EXPECT_EQ(hardenedMulEdwards(pair.edwards, k,
                                 pair.edwards.identity(), pair.n)
                  .reason,
              "invalid input point");
}

TEST(Validate, HardenedMontgomeryAgreesAndRejects)
{
    const SmallCurvePair &pair = smallCurvePair();
    Rng rng(24);
    BigUInt k = BigUInt(1) + BigUInt::random(rng, pair.n - BigUInt(1));
    HardenedMul r = hardenedMulMontgomery(pair.montgomery, k,
                                          pair.montBase.x, pair.n);
    ASSERT_TRUE(r.ok) << r.reason;
    auto expect = pair.montgomery.ladder(k, pair.montBase.x);
    ASSERT_TRUE(expect.has_value());
    ASSERT_TRUE(r.x.has_value());
    EXPECT_EQ(*r.x, *expect);

    EXPECT_EQ(hardenedMulMontgomery(pair.montgomery, BigUInt(0),
                                    pair.montBase.x, pair.n)
                  .reason,
              "invalid scalar");
    EXPECT_EQ(hardenedMulMontgomery(pair.montgomery, k, BigUInt(0),
                                    pair.n)
                  .reason,
              "invalid input point");
}

TEST(Validate, EcdsaSignRejectsOutOfRangeScalar)
{
    Ecdsa dsa(secp160r1Curve(), secp160r1Generator().g,
              secp160r1Generator().order);
    Rng rng(25);
    EXPECT_DEATH(dsa.sign("msg", BigUInt(0), rng), "out of range");
    EXPECT_DEATH(dsa.sign("msg", dsa.order(), rng), "out of range");
}

TEST(Validate, EcdsaVerifyRejectsNonCanonicalKey)
{
    Ecdsa dsa(secp160r1Curve(), secp160r1Generator().g,
              secp160r1Generator().order);
    Rng rng(26);
    EcdsaKeyPair kp = dsa.generateKey(rng);
    EcdsaSignature sig = dsa.sign("hello", kp.d, rng);
    ASSERT_TRUE(dsa.verify("hello", sig, kp.q));

    AffinePoint wide(kp.q.x + secp160r1Field().modulus(), kp.q.y);
    EXPECT_FALSE(dsa.verify("hello", sig, wide));
}
