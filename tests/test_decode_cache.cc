/**
 * @file
 * Tests pinning the predecoded fast path to the step() reference
 * implementation: cache contents versus fresh decode over the entire
 * primary opcode space, incremental cache refresh on loadProgram,
 * architectural-state equivalence on randomized programs and on the
 * generated OPF field routines (including the wide 192/256-bit
 * variants), and the >= cycle-budget semantics on both paths.
 */

#include <gtest/gtest.h>

#include "avr/machine.hh"
#include "avrasm/assembler.hh"
#include "avrgen/opf_harness.hh"
#include "avr/profiler.hh"
#include "debug/target.hh"
#include "field/opf_field.hh"
#include "nt/opf_prime.hh"
#include "support/logging.hh"
#include "support/random.hh"

using namespace jaavr;

namespace
{

void
expectSameInst(const Inst &a, const Inst &b, uint32_t addr)
{
    EXPECT_EQ(a.op, b.op) << "word addr 0x" << std::hex << addr;
    EXPECT_EQ(a.rd, b.rd) << "word addr 0x" << std::hex << addr;
    EXPECT_EQ(a.rr, b.rr) << "word addr 0x" << std::hex << addr;
    EXPECT_EQ(a.imm, b.imm) << "word addr 0x" << std::hex << addr;
    EXPECT_EQ(a.bit, b.bit) << "word addr 0x" << std::hex << addr;
    EXPECT_EQ(a.disp, b.disp) << "word addr 0x" << std::hex << addr;
    EXPECT_EQ(a.k, b.k) << "word addr 0x" << std::hex << addr;
    EXPECT_EQ(a.words, b.words) << "word addr 0x" << std::hex << addr;
}

/** Compare complete architectural state of two machines. */
void
expectSameState(const Machine &a, const Machine &b)
{
    for (unsigned i = 0; i < 32; i++)
        EXPECT_EQ(a.reg(i), b.reg(i)) << "r" << i;
    EXPECT_EQ(a.sreg(), b.sreg());
    EXPECT_EQ(a.sp(), b.sp());
    EXPECT_EQ(a.pc(), b.pc());
    EXPECT_EQ(a.readBytes(Machine::sramBase, 0x1000),
              b.readBytes(Machine::sramBase, 0x1000));
    EXPECT_EQ(a.stats().instructions, b.stats().instructions);
    EXPECT_EQ(a.stats().cycles, b.stats().cycles);
    for (size_t op = 0; op < kNumOps; op++)
        EXPECT_EQ(a.stats().opCount[op], b.stats().opCount[op])
            << opName(static_cast<Op>(op));
    for (size_t op = 0; op < kNumOps; op++)
        EXPECT_EQ(a.stats().opCycles[op], b.stats().opCycles[op])
            << opName(static_cast<Op>(op));
    EXPECT_EQ(a.stats().macStallNops, b.stats().macStallNops);
    EXPECT_EQ(a.mac().shiftCounter(), b.mac().shiftCounter());
    EXPECT_EQ(a.mac().pendingShadow(), b.mac().pendingShadow());
    EXPECT_EQ(a.mac().totalMacs(), b.mac().totalMacs());
}

} // anonymous namespace

/*
 * Every primary opcode word, predecoded, must be bit-identical to a
 * fresh decode of the same word pair -- including the two-word forms
 * (LDS/STS/JMP/CALL), whose cached operand word comes from the next
 * flash word. Two flash patterns give every word two different
 * second words.
 */
TEST(DecodeCache, AllPrimaryWordsMatchFreshDecode)
{
    for (CpuMode mode : {CpuMode::CA, CpuMode::FAST, CpuMode::ISE}) {
        for (int pattern = 0; pattern < 2; pattern++) {
            Machine m(mode);
            std::vector<uint16_t> words(Machine::flashWords);
            for (uint32_t i = 0; i < Machine::flashWords; i++)
                words[i] = static_cast<uint16_t>(
                    pattern == 0 ? i : (i * 0x9e37u + 0x1234u));
            m.loadProgram(words, 0);
            for (uint32_t a = 0; a < Machine::flashWords; a++) {
                uint16_t w0 = words[a];
                uint16_t w1 = words[(a + 1) & (Machine::flashWords - 1)];
                Inst fresh = decode(w0, w1);
                const DecodedInst &dc = m.decoded(a);
                expectSameInst(dc.inst, fresh, a);
                EXPECT_EQ(dc.cycles, baseCycles(fresh.op, mode));
                if (HasFailure())
                    FAIL() << "stopping at first mismatching word";
            }
        }
    }
}

/** isTwoWord() is exactly the words == 2 predicate of the decoder. */
TEST(DecodeCache, IsTwoWordMatchesDecodeLength)
{
    for (uint32_t w0 = 0; w0 <= 0xffff; w0++) {
        Inst inst = decode(static_cast<uint16_t>(w0), 0);
        EXPECT_EQ(isTwoWord(static_cast<uint16_t>(w0)), inst.words == 2)
            << "w0=0x" << std::hex << w0;
    }
}

/*
 * Overwriting flash refreshes the cache incrementally: both the
 * stored words and the preceding word (whose two-word operand may
 * have changed) must be re-predecoded.
 */
TEST(DecodeCache, LoadProgramRefreshesNeighborEntry)
{
    Machine m(CpuMode::CA);
    // lds r16, 0x1234 at word 8 (two words: opcode + address).
    Program p = assemble("lds r16, 0x1234", "t");
    ASSERT_EQ(p.words.size(), 2u);
    m.loadProgram(p.words, 8);
    EXPECT_EQ(m.decoded(8).inst.op, Op::LDS);
    EXPECT_EQ(m.decoded(8).inst.k, 0x1234u);

    // Overwrite only the operand word: the entry at word 8 must see
    // the new address even though word 8 itself was not rewritten.
    m.loadProgram({0x4321}, 9);
    EXPECT_EQ(m.decoded(8).inst.op, Op::LDS);
    EXPECT_EQ(m.decoded(8).inst.k, 0x4321u);
}

/*
 * Randomized ALU/memory/branch soup: the fast path and the step()
 * reference must agree on every piece of architectural state, the
 * statistics included. MACCR stays zero, so the program is valid in
 * all three modes.
 */
TEST(DecodeCache, RandomProgramStateEquivalence)
{
    static const char *const kAlu[] = {
        "add r%u, r%u",  "adc r%u, r%u",  "sub r%u, r%u",
        "sbc r%u, r%u",  "and r%u, r%u",  "or r%u, r%u",
        "eor r%u, r%u",  "mov r%u, r%u",  "cp r%u, r%u",
        "cpc r%u, r%u",  "mul r%u, r%u",
    };
    static const char *const kSingle[] = {
        "com r%u", "neg r%u", "swap r%u", "inc r%u", "dec r%u",
        "asr r%u", "lsr r%u", "ror r%u",  "push r%u", "pop r%u",
    };
    static const char *const kImm[] = {
        "subi r%u, %u", "sbci r%u, %u", "andi r%u, %u",
        "ori r%u, %u",  "cpi r%u, %u",  "ldi r%u, %u",
    };

    for (CpuMode mode : {CpuMode::CA, CpuMode::FAST, CpuMode::ISE}) {
        Rng rng(0xdecade + static_cast<unsigned>(mode));
        auto r = [&](unsigned bound) {
            return static_cast<unsigned>(rng.below(bound));
        };
        std::string src;
        // Scratch pointers into SRAM; operands seeded below.
        src += "ldi r26, 0x00\nldi r27, 0x02\n";  // X = 0x0200
        src += "ldi r28, 0x40\nldi r29, 0x02\n";  // Y = 0x0240
        src += "ldi r30, 0x80\nldi r31, 0x02\n";  // Z = 0x0280
        for (int i = 0; i < 4000; i++) {
            switch (rng.below(8)) {
              case 0: case 1: case 2:
                src += csprintf(kAlu[rng.below(std::size(kAlu))],
                                r(26), r(26));
                break;
              case 3:
                src += csprintf(kSingle[rng.below(std::size(kSingle))],
                                r(26));
                break;
              case 4:
                src += csprintf(kImm[rng.below(std::size(kImm))],
                                16 + r(10), r(256));
                break;
              case 5:
                src += csprintf("std Y+%u, r%u", r(32), r(26));
                break;
              case 6:
                src += csprintf("ldd r%u, Z+%u", r(26), r(32));
                break;
              case 7:
                // Short forward skip over one single-word ALU op.
                src += csprintf("sbrc r%u, %u\n", r(26), r(8));
                src += csprintf(kAlu[rng.below(std::size(kAlu))],
                                r(26), r(26));
                break;
            }
            src += "\n";
        }
        src += "ret\n";

        Program prog = assemble(src, "soup");
        Machine fast(mode), ref(mode);
        ref.forceReference = true;
        fast.forceReference = false;
        for (Machine *m : {&fast, &ref}) {
            m->loadProgram(prog.words, 0);
            // The soup's unbalanced pops may raise SP past the
            // ATmega128 SRAM top; open the whole 64 KiB data space so
            // the pre-trap wraparound coverage of this test survives.
            m->setDataLimit(0xffff);
            Rng seed(7);
            for (uint16_t a = 0x200; a < 0x300; a++)
                m->writeData(a, static_cast<uint8_t>(seed.next32()));
            m->call(0);
        }
        expectSameState(fast, ref);
        EXPECT_EQ(fast.trap(), ref.trap());
    }
}

/*
 * The generated OPF field routines must produce identical results,
 * cycle counts and statistics on both paths -- and match the host
 * word-level model. 176/240 exercise the wide-field code generation
 * (two-word CALL subroutine linkage, long-branch final fold).
 */
class OpfPathEquivalence : public ::testing::TestWithParam<unsigned>
{};

TEST_P(OpfPathEquivalence, FieldOpsMatchReferenceAndModel)
{
    const unsigned k = GetParam();
    OpfPrime prime = makeOpf(0xff4c, k);
    OpfField field(prime);
    Rng rng(k);
    for (CpuMode mode : {CpuMode::CA, CpuMode::FAST, CpuMode::ISE}) {
        OpfAvrLibrary lib(prime, mode);
        auto a = field.fromBig(BigUInt::randomBits(rng, prime.k));
        auto b = field.fromBig(BigUInt::randomBits(rng, prime.k));

        lib.machine().forceReference = false;
        OpfRun fm = lib.mul(a, b);
        OpfRun fa = lib.add(a, b);
        OpfRun fs = lib.sub(a, b);
        lib.machine().forceReference = true;
        OpfRun rm = lib.mul(a, b);
        OpfRun ra = lib.add(a, b);
        OpfRun rs = lib.sub(a, b);

        EXPECT_EQ(fm.result, rm.result);
        EXPECT_EQ(fm.cycles, rm.cycles);
        EXPECT_EQ(fm.instructions, rm.instructions);
        EXPECT_EQ(fa.result, ra.result);
        EXPECT_EQ(fa.cycles, ra.cycles);
        EXPECT_EQ(fs.result, rs.result);
        EXPECT_EQ(fs.cycles, rs.cycles);

        // Host model agreement (covers the wide-field assembly).
        EXPECT_EQ(fm.result, field.montMul(a, b));
        EXPECT_EQ(fa.result, field.add(a, b));
        EXPECT_EQ(fs.result, field.sub(a, b));
    }

    // Inversion on the native-mode library, fast vs reference.
    OpfAvrLibrary lib(prime, CpuMode::FAST);
    BigUInt x = BigUInt(2) + BigUInt::random(rng, prime.p - BigUInt(2));
    auto wx = field.fromBig(x);
    lib.machine().forceReference = false;
    OpfRun fi = lib.inv(wx);
    lib.machine().forceReference = true;
    OpfRun ri = lib.inv(wx);
    EXPECT_EQ(fi.result, ri.result);
    EXPECT_EQ(fi.cycles, ri.cycles);
}

INSTANTIATE_TEST_SUITE_P(FieldSizes, OpfPathEquivalence,
                         ::testing::Values(144u, 176u, 240u));

/*
 * Budget semantics: the run panics once consumed >= max_cycles,
 * identically on both paths. A program consuming exactly C cycles
 * dies under a budget of C and survives under C + 1 (the >= check
 * runs after each instruction, before the exit test).
 */
TEST(DecodeCache, CycleBudgetBoundaryIdenticalOnBothPaths)
{
    std::string src;
    for (int i = 0; i < 16; i++)
        src += "nop\n";
    src += "ret\n";
    Program prog = assemble(src, "budget");

    for (CpuMode mode : {CpuMode::CA, CpuMode::FAST, CpuMode::ISE}) {
        for (IssBackend backend : {IssBackend::Reference,
                                   IssBackend::Fast,
                                   IssBackend::Superblock}) {
            auto configure = [&](Machine &m) {
                m.forceReference = backend == IssBackend::Reference;
                m.setBackend(backend);
                m.loadProgram(prog.words, 0);
            };
            Machine probe(mode);
            configure(probe);
            uint64_t c = probe.call(0);

            Machine over(mode);
            configure(over);
            RunResult over_r = over.call(0, c);
            EXPECT_FALSE(over_r.ok());
            EXPECT_EQ(over_r.trap.kind, TrapKind::CycleBudget);

            Machine fit(mode);
            configure(fit);
            EXPECT_EQ(fit.call(0, c + 1), c);
        }
    }
}

/*
 * The debug hook must be free when no debugger wants stops: a
 * DebugTarget that is attached but has no breakpoints or watchpoints
 * selects the plain run loops, and even an armed (but unreachable)
 * breakpoint — which engages the Debugged loop variants — must add
 * exactly zero cycles and zero architectural drift. Covers every
 * runFast instantiation mode on both paths, plus the
 * Profiled+Debugged combination.
 */
TEST(DecodeCache, DebugHookAddsZeroCyclesWhenNotStopping)
{
    OpfPrime prime = makeOpf(0xff4c, 144);
    OpfField field(prime);
    Rng rng(0xdb9);
    auto a = field.fromBig(BigUInt::randomBits(rng, prime.k));
    auto b = field.fromBig(BigUInt::randomBits(rng, prime.k));
    // Unused flash, never executed by the OPF image.
    constexpr uint32_t unreachable = 2 * 0xf000;

    for (CpuMode mode : {CpuMode::CA, CpuMode::FAST, CpuMode::ISE}) {
        for (bool reference : {false, true}) {
            OpfAvrLibrary base(prime, mode);
            base.machine().forceReference = reference;
            OpfRun r0 = base.mul(a, b);

            // Attached but passive: no breakpoints, no watchpoints.
            OpfAvrLibrary passive(prime, mode);
            passive.machine().forceReference = reference;
            DebugTarget quiet(passive.machine());
            EXPECT_FALSE(quiet.wantsStops());
            OpfRun r1 = passive.mul(a, b);
            EXPECT_EQ(r1.result, r0.result);
            EXPECT_EQ(r1.cycles, r0.cycles);
            expectSameState(passive.machine(), base.machine());

            // Armed with a breakpoint that never hits: the Debugged
            // loop runs, but timing must be bit-identical.
            OpfAvrLibrary armed(prime, mode);
            armed.machine().forceReference = reference;
            DebugTarget watching(armed.machine());
            ASSERT_TRUE(watching.setBreakpoint(unreachable));
            EXPECT_TRUE(watching.wantsStops());
            OpfRun r2 = armed.mul(a, b);
            EXPECT_EQ(r2.result, r0.result);
            EXPECT_EQ(r2.cycles, r0.cycles);
            EXPECT_EQ(r2.instructions, r0.instructions);
            expectSameState(armed.machine(), base.machine());
        }
    }

    // Profiled + Debugged fast-loop instantiation.
    OpfAvrLibrary base(prime, CpuMode::ISE);
    OpfRun r0 = base.mul(a, b);
    OpfAvrLibrary both(prime, CpuMode::ISE);
    CallGraphProfiler prof(both.machine(), both.symbols());
    DebugTarget dbg(both.machine());
    ASSERT_TRUE(dbg.setBreakpoint(unreachable));
    OpfRun r1 = both.mul(a, b);
    EXPECT_EQ(r1.result, r0.result);
    EXPECT_EQ(r1.cycles, r0.cycles);
    expectSameState(both.machine(), base.machine());
}

/** The environment flag forces the reference path at construction. */
TEST(DecodeCache, EnvironmentFlagSelectsReferencePath)
{
    setenv("JAAVR_ISS_REFERENCE", "1", 1);
    Machine forced(CpuMode::CA);
    EXPECT_TRUE(forced.forceReference);
    setenv("JAAVR_ISS_REFERENCE", "0", 1);
    Machine normal(CpuMode::CA);
    EXPECT_FALSE(normal.forceReference);
    unsetenv("JAAVR_ISS_REFERENCE");
}
