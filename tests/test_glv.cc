/**
 * @file
 * Tests for the GLV curve machinery: CM order computation on the
 * constructed OPF curve, the published secp160k1 parameters as an
 * independent anchor, endomorphism/eigenvalue consistency, and the
 * GLV+JSF multiplication against plain methods.
 */

#include <gtest/gtest.h>

#include "curves/standard_curves.hh"
#include "nt/cornacchia.hh"
#include "nt/primality.hh"

using namespace jaavr;

namespace
{

void
expectEq(const AffinePoint &a, const AffinePoint &b, const char *what)
{
    EXPECT_EQ(a.inf, b.inf) << what;
    if (!a.inf && !b.inf) {
        EXPECT_EQ(a.x, b.x) << what;
        EXPECT_EQ(a.y, b.y) << what;
    }
}

} // anonymous namespace

TEST(Secp160k1, PublishedParametersValidate)
{
    // The GlvCurve constructor itself checks G on curve, n G = O and
    // phi(G) = lambda G; reaching here means the published constants
    // and our beta/lambda derivation are consistent.
    const GlvCurve &c = secp160k1Curve();
    EXPECT_EQ(c.params().b.toUint64(), 7u);
    EXPECT_EQ(c.params().cofactor.toUint64(), 1u);
    Rng rng(90);
    EXPECT_TRUE(isProbablePrime(c.order(), rng));
}

TEST(Secp160k1, GlvJsfMatchesNaf)
{
    const GlvCurve &c = secp160k1Curve();
    Rng rng(91);
    AffinePoint g = c.generator();
    for (int i = 0; i < 6; i++) {
        BigUInt k = BigUInt::random(rng, c.order());
        expectEq(c.mulGlvJsf(k, g), c.mulNaf(k, g), "GLV vs NAF");
    }
}

TEST(Secp160k1, EndomorphismIsGroupHomomorphism)
{
    const GlvCurve &c = secp160k1Curve();
    Rng rng(92);
    AffinePoint g = c.generator();
    BigUInt k = BigUInt::random(rng, c.order());
    // phi(k G) == k phi(G).
    expectEq(c.phi(c.mulNaf(k, g)), c.mulNaf(k, c.phi(g)), "phi hom");
    // phi(P) is on the curve.
    EXPECT_TRUE(c.onCurve(c.phi(g)));
}

TEST(GlvOpf, ConstructedCurveValidates)
{
    const GlvCurve &c = glvOpfCurve();
    Rng rng(93);
    EXPECT_TRUE(isProbablePrime(c.order(), rng));
    EXPECT_LE(c.params().cofactor.toUint64(), 8u);
    EXPECT_TRUE(c.onCurve(c.generator()));
    // order * cofactor is a valid group order in the Hasse interval.
    BigUInt full = c.order() * c.params().cofactor;
    const BigUInt &p = c.field().modulus();
    BigUInt four_sqrt_p = BigUInt(4) << 80;  // loose 4*sqrt(p) bound
    EXPECT_LT(full, p + BigUInt(1) + four_sqrt_p);
    EXPECT_GT(full + four_sqrt_p, p + BigUInt(1));
}

TEST(GlvOpf, CandidateOrdersContainHasseValues)
{
    Rng rng(94);
    const BigUInt &p = glvOpfField().modulus();
    CmDecomposition cm = cmDecompose4p(p, rng);
    auto cands = GlvCurve::candidateOrders(p, cm.l, cm.m);
    EXPECT_GE(cands.size(), 4u);
    // Every candidate satisfies the Hasse bound |t| <= 2 sqrt(p).
    for (const BigUInt &n : cands) {
        BigInt t = BigInt(p + BigUInt(1)) - BigInt(n);
        EXPECT_LE(t.magnitude() * t.magnitude(), p << 2);
    }
}

TEST(GlvOpf, GlvJsfMatchesOtherMethods)
{
    const GlvCurve &c = glvOpfCurve();
    Rng rng(95);
    AffinePoint g = c.generator();
    for (int i = 0; i < 5; i++) {
        BigUInt k = BigUInt::random(rng, c.order());
        AffinePoint r = c.mulNaf(k, g);
        expectEq(c.mulGlvJsf(k, g), r, "GLV vs NAF (OPF)");
        expectEq(c.mulLadder(k, g), r, "ladder vs NAF (OPF)");
        expectEq(c.mulDaaa(k, g), r, "DAAA vs NAF (OPF)");
    }
}

TEST(GlvOpf, GlvJsfEdgeScalars)
{
    const GlvCurve &c = glvOpfCurve();
    AffinePoint g = c.generator();
    // k = 0 -> infinity; k = 1 -> G; k = n -> infinity; k = n-1 -> -G.
    EXPECT_TRUE(c.mulGlvJsf(BigUInt(0), g).inf);
    expectEq(c.mulGlvJsf(BigUInt(1), g), g, "1*G");
    EXPECT_TRUE(c.mulGlvJsf(c.order(), g).inf);
    expectEq(c.mulGlvJsf(c.order() - BigUInt(1), g), c.negate(g), "(n-1)G");
}

TEST(GlvOpf, SubgroupMembersWork)
{
    // Any multiple of G is in the prime subgroup; GLV must be exact
    // on all of them.
    const GlvCurve &c = glvOpfCurve();
    Rng rng(96);
    AffinePoint p = c.mulNaf(BigUInt::random(rng, c.order()),
                             c.generator());
    BigUInt k = BigUInt::random(rng, c.order());
    expectEq(c.mulGlvJsf(k, p), c.mulNaf(k, p), "GLV on subgroup point");
}

TEST(GlvOpf, DecompositionHalvesLength)
{
    const GlvCurve &c = glvOpfCurve();
    Rng rng(97);
    unsigned max_len = 0;
    for (int i = 0; i < 50; i++) {
        GlvSplit s = c.decomposer().decompose(
            BigUInt::random(rng, c.order()));
        max_len = std::max(max_len, s.k1.magnitude().bitLength());
        max_len = std::max(max_len, s.k2.magnitude().bitLength());
    }
    // Half of 160 plus a couple of slack bits.
    EXPECT_LE(max_len, 84u);
}

TEST(GlvOpf, EndomorphismCharacteristicPolynomial)
{
    // phi^2 + phi + 1 = 0: phi(phi(P)) + phi(P) + P = O.
    const GlvCurve &c = glvOpfCurve();
    Rng rng(98);
    AffinePoint p = c.mulNaf(BigUInt::random(rng, c.order()),
                             c.generator());
    auto sum = c.addMixed(c.addMixed(c.toJacobian(c.phi(c.phi(p))),
                                     c.phi(p)), p);
    EXPECT_TRUE(sum.isInfinity());
}
