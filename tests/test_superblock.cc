/**
 * @file
 * Tests pinning the superblock-threaded backend (DESIGN.md §11) to
 * the step() reference implementation and the predecoded fast path:
 * exhaustive all-opcode-word replay in all three CPU modes, random
 * program soup across all three backends, trap-in-mid-trace side
 * exits, the MACCR store side exit, trace invalidation through the
 * GDB flash-patch path, the JAAVR_ISS_BACKEND selection switch, and
 * the decode-canonicalization (synonym) satellite.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <iterator>

#include "avr/isa.hh"
#include "avr/mac_unit.hh"
#include "avr/machine.hh"
#include "avr/timing.hh"
#include "avrasm/assembler.hh"
#include "avrgen/secp160_harness.hh"
#include "debug/target.hh"
#include "support/logging.hh"
#include "support/random.hh"

using namespace jaavr;

namespace
{

/**
 * Fast whole-state equality (no gtest overhead in the hot loop):
 * registers, SREG, SP, PC, the full internal SRAM, every statistic,
 * the MAC unit, and the pending trap.
 */
bool
sameState(const Machine &a, const Machine &b)
{
    for (unsigned i = 0; i < 32; i++)
        if (a.reg(i) != b.reg(i))
            return false;
    if (a.sreg() != b.sreg() || a.sp() != b.sp() || a.pc() != b.pc())
        return false;
    if (a.stats().instructions != b.stats().instructions ||
        a.stats().cycles != b.stats().cycles ||
        a.stats().opCount != b.stats().opCount ||
        a.stats().opCycles != b.stats().opCycles ||
        a.stats().macStallNops != b.stats().macStallNops)
        return false;
    if (!(a.trap() == b.trap()))
        return false;
    if (a.mac().pendingShadow() != b.mac().pendingShadow() ||
        a.mac().totalMacs() != b.mac().totalMacs())
        return false;
    return a.readBytes(Machine::sramBase, 0x1000) ==
           b.readBytes(Machine::sramBase, 0x1000);
}

/** Detailed mismatch report (called only once sameState() failed). */
void
explainState(const Machine &a, const Machine &b, const char *a_name,
             const char *b_name)
{
    for (unsigned i = 0; i < 32; i++)
        EXPECT_EQ(a.reg(i), b.reg(i)) << "r" << i;
    EXPECT_EQ(a.sreg(), b.sreg()) << "sreg";
    EXPECT_EQ(a.sp(), b.sp()) << "sp";
    EXPECT_EQ(a.pc(), b.pc()) << "pc";
    EXPECT_EQ(a.stats().instructions, b.stats().instructions)
        << "instructions";
    EXPECT_EQ(a.stats().cycles, b.stats().cycles) << "cycles";
    for (size_t op = 0; op < kNumOps; op++) {
        EXPECT_EQ(a.stats().opCount[op], b.stats().opCount[op])
            << "opCount " << opName(static_cast<Op>(op));
        EXPECT_EQ(a.stats().opCycles[op], b.stats().opCycles[op])
            << "opCycles " << opName(static_cast<Op>(op));
    }
    EXPECT_EQ(a.stats().macStallNops, b.stats().macStallNops);
    EXPECT_TRUE(a.trap() == b.trap())
        << "trap kind " << static_cast<int>(a.trap().kind) << " vs "
        << static_cast<int>(b.trap().kind) << " pc 0x" << std::hex
        << a.trap().pc << " vs 0x" << b.trap().pc;
    EXPECT_EQ(a.readBytes(Machine::sramBase, 0x1000),
              b.readBytes(Machine::sramBase, 0x1000)) << "sram";
    ADD_FAILURE() << "state mismatch between " << a_name << " and "
                  << b_name;
}

/** Identical deterministic seeding for every machine under test. */
void
seed(Machine &m, uint32_t salt)
{
    for (unsigned i = 0; i < 32; i++)
        m.setReg(i, static_cast<uint8_t>(i * 29 + salt));
    m.setSreg(static_cast<uint8_t>(salt >> 8));
    m.setSp(0x10e0);
    m.setX(0x0200);
    m.setY(0x0240);
    m.setZ(0x0280);
}

/**
 * Run @p prog on all three backends from identical state and verify
 * bit- and cycle-identical outcomes (reference is truth).
 */
void
expectThreeWayEquivalence(const Program &prog, CpuMode mode,
                          uint64_t budget = Machine::defaultCycleBudget,
                          uint32_t salt = 0x1a2b)
{
    Machine ref(mode), fast(mode), sb(mode);
    ref.forceReference = true;
    fast.forceReference = false;
    fast.setBackend(IssBackend::Fast);
    sb.forceReference = false;
    sb.setBackend(IssBackend::Superblock);
    for (Machine *m : {&ref, &fast, &sb}) {
        m->loadProgram(prog.words, 0);
        seed(*m, salt);
        for (uint16_t a = 0x200; a < 0x2c0; a++)
            m->writeData(a, static_cast<uint8_t>(a * 7 + salt));
        m->call(0, budget);
    }
    if (!sameState(ref, sb))
        explainState(ref, sb, "reference", "superblock");
    if (!sameState(ref, fast))
        explainState(ref, fast, "reference", "fast");
}

} // anonymous namespace

/*
 * Exhaustive replay: every one of the 65536 primary opcode words,
 * executed as the entry of a translated trace, must leave all three
 * backends in bit- and cycle-identical state — registers, SREG, SP,
 * PC, SRAM, per-op statistics and the stopping trap. Because the
 * synonym encodings (LSL/ROL/TST/CLR = ADD/ADC/AND/EOR with rd==rr)
 * are among these words, this is also the behavioral proof that
 * decode canonicalization changed nothing.
 *
 * The word under test sits at 0 followed by a varying operand word
 * and erased flash, so two-word forms get a live operand and straight
 * lines fall off into a FlashOutOfBounds stop; a small cycle budget
 * bounds runaway loops (rjmp .-2 and friends). Architectural state
 * carries over from word to word — it stays identical across the
 * machines by induction, and serves as varied seeding.
 */
TEST(Superblock, AllOpcodeWordsMatchReferenceAllModes)
{
    for (CpuMode mode : {CpuMode::CA, CpuMode::FAST, CpuMode::ISE}) {
        Machine ref(mode), fast(mode), sb(mode);
        ref.forceReference = true;
        fast.setBackend(IssBackend::Fast);
        sb.setBackend(IssBackend::Superblock);
        for (uint32_t w = 0; w <= 0xffff; w++) {
            const uint16_t operand =
                static_cast<uint16_t>(w * 0x9e37u + 0x1234u);
            const std::vector<uint16_t> words = {
                static_cast<uint16_t>(w), operand, 0xffff, 0xffff};
            for (Machine *m : {&ref, &fast, &sb}) {
                m->loadProgram(words, 0);
                seed(*m, w);
                m->setPc(0);
                m->run(64);
            }
            if (!sameState(ref, sb)) {
                explainState(ref, sb, "reference", "superblock");
                FAIL() << "word 0x" << std::hex << w << " mode "
                       << cpuModeName(mode);
            }
            if (!sameState(ref, fast)) {
                explainState(ref, fast, "reference", "fast");
                FAIL() << "word 0x" << std::hex << w << " mode "
                       << cpuModeName(mode);
            }
        }
    }
}

/*
 * Randomized straight-line/branch/memory soup with in-trace loops:
 * long enough that translation hits revisited PCs, taken branches,
 * skips over one- and two-word targets, and block-cache reuse.
 */
TEST(Superblock, RandomProgramThreeBackendEquivalence)
{
    static const char *const kAlu[] = {
        "add r%u, r%u", "adc r%u, r%u", "sub r%u, r%u",
        "sbc r%u, r%u", "and r%u, r%u", "or r%u, r%u",
        "eor r%u, r%u", "mov r%u, r%u", "cp r%u, r%u",
        "cpc r%u, r%u", "mul r%u, r%u",
    };
    static const char *const kSingle[] = {
        "com r%u", "neg r%u", "swap r%u", "inc r%u", "dec r%u",
        "asr r%u", "lsr r%u", "ror r%u",  "lsl r%u", "rol r%u",
        "tst r%u", "push r%u", "pop r%u",
    };

    for (CpuMode mode : {CpuMode::CA, CpuMode::FAST, CpuMode::ISE}) {
        Rng rng(0x5b10c + static_cast<unsigned>(mode));
        auto r = [&](unsigned bound) {
            return static_cast<unsigned>(rng.below(bound));
        };
        std::string src;
        src += "ldi r26, 0x00\nldi r27, 0x02\n";  // X = 0x0200
        src += "ldi r28, 0x40\nldi r29, 0x02\n";  // Y = 0x0240
        src += "ldi r30, 0x80\nldi r31, 0x02\n";  // Z = 0x0280
        for (int blockn = 0; blockn < 60; blockn++) {
            // A bounded counted loop per block: brne back-edges close
            // superblocks and re-enter them repeatedly.
            src += csprintf("ldi r25, %u\n", 2 + r(6));
            src += csprintf("blk%d:\n", blockn);
            for (int i = 0; i < 24; i++) {
                switch (rng.below(6)) {
                  case 0: case 1:
                    src += csprintf(kAlu[rng.below(std::size(kAlu))],
                                    r(24), r(24));
                    break;
                  case 2:
                    src += csprintf(
                        kSingle[rng.below(std::size(kSingle))], r(24));
                    break;
                  case 3:
                    src += csprintf("std Y+%u, r%u", r(32), r(24));
                    break;
                  case 4:
                    src += csprintf("ldd r%u, Z+%u", r(24), r(32));
                    break;
                  case 5:
                    // Skip over a one- or two-word instruction.
                    if (r(2)) {
                        src += csprintf("sbrc r%u, %u\n", r(24), r(8));
                        src += csprintf("sts 0x0%x, r%u", 0x220 + r(64),
                                        r(24));
                    } else {
                        src += csprintf("sbrs r%u, %u\n", r(24), r(8));
                        src += csprintf(
                            kSingle[rng.below(std::size(kSingle))],
                            r(24));
                    }
                    break;
                }
                src += "\n";
            }
            src += "dec r25\n";
            src += csprintf("brne blk%d\n", blockn);
        }
        src += "ret\n";
        expectThreeWayEquivalence(assemble(src, "soup"), mode);
    }
}

/*
 * Side exit: a trap in the middle of a translated trace must not
 * retire the trapping instruction, must charge exactly the retired
 * prefix, and must leave PC at the trapping instruction — bit- and
 * cycle-identical to the reference on every trap kind reachable from
 * straight-line code.
 */
TEST(Superblock, TrapMidTraceSramOutOfBounds)
{
    // The sts at trace position 4 targets unimplemented data space.
    Program p = assemble("add r0, r1\n"
                         "adc r2, r3\n"
                         "ldi r16, 0x5a\n"
                         "eor r4, r4\n"
                         "sts 0x2000, r16\n"
                         "ldi r17, 0x99\n"  // must NOT execute
                         "ret\n",
                         "oob");
    for (CpuMode mode : {CpuMode::CA, CpuMode::FAST, CpuMode::ISE}) {
        expectThreeWayEquivalence(p, mode);
        Machine sb(mode);
        sb.loadProgram(p.words, 0);
        seed(sb, 1);
        RunResult r = sb.call(0);
        EXPECT_EQ(r.trap.kind, TrapKind::SramOutOfBounds);
        EXPECT_EQ(r.trap.addr, 0x2000u);
        EXPECT_EQ(sb.reg(17), static_cast<uint8_t>(29 * 17 + 1))
            << "instruction after the trap must not have executed";
    }
}

TEST(Superblock, TrapMidTraceStackOverflow)
{
    std::string src;
    for (int i = 0; i < 8; i++)
        src += csprintf("push r%d\n", i);
    src += "ret\n";
    Program p = assemble(src, "stackov");
    for (CpuMode mode : {CpuMode::CA, CpuMode::FAST, CpuMode::ISE}) {
        Machine ref(mode), sb(mode);
        ref.forceReference = true;
        sb.setBackend(IssBackend::Superblock);
        for (Machine *m : {&ref, &sb}) {
            m->loadProgram(p.words, 0);
            seed(*m, 2);
            // Room for the call's return address plus three pushes.
            m->setSp(Machine::sramBase + 4);
            m->call(0);
        }
        if (!sameState(ref, sb))
            explainState(ref, sb, "reference", "superblock");
        EXPECT_EQ(sb.trap().kind, TrapKind::StackOverflow);
    }
}

TEST(Superblock, TrapMidTraceIllegalAndFlashOob)
{
    // Find a reserved (non-erased) encoding for the illegal case.
    uint16_t illegal = 0;
    for (uint32_t w = 1; w <= 0xfffe; w++) {
        if (decode(static_cast<uint16_t>(w), 0).op == Op::INVALID) {
            illegal = static_cast<uint16_t>(w);
            break;
        }
    }
    ASSERT_NE(illegal, 0) << "no reserved encoding found";

    Program head = assemble("add r0, r1\nadc r2, r3\n", "head");
    for (CpuMode mode : {CpuMode::CA, CpuMode::FAST, CpuMode::ISE}) {
        // Illegal opcode mid-trace (EXIT_TRAP discriminates at run
        // time on the flash word).
        Program ill = head;
        ill.words.push_back(illegal);
        expectThreeWayEquivalence(ill, mode);
        Machine m1(mode);
        m1.loadProgram(ill.words, 0);
        seed(m1, 3);
        EXPECT_EQ(m1.call(0).trap.kind, TrapKind::IllegalOpcode);
        EXPECT_EQ(m1.trap().pc, 2u);

        // Straight line off the end of the program into erased flash.
        expectThreeWayEquivalence(head, mode);
        Machine m2(mode);
        m2.loadProgram(head.words, 0);
        seed(m2, 4);
        EXPECT_EQ(m2.call(0).trap.kind, TrapKind::FlashOutOfBounds);
        EXPECT_EQ(m2.trap().pc, 2u);
    }
}

/*
 * Budget side exit: superblock delegates budget-critical passes to
 * the fast path, which must land the CycleBudget trap on exactly the
 * same instruction boundary as the reference (>= semantics), even
 * when the budget expires mid-trace.
 */
TEST(Superblock, CycleBudgetMidTraceMatchesReference)
{
    std::string src = "start:\n";
    for (int i = 0; i < 23; i++)
        src += csprintf("add r%d, r%d\n", i % 20, (i + 1) % 20);
    src += "rjmp start\n";
    Program p = assemble(src, "spin");
    for (CpuMode mode : {CpuMode::CA, CpuMode::FAST, CpuMode::ISE}) {
        // Budgets around one, several, and mid-pass multiples of the
        // trace length (23 adds + rjmp = 25 cycles per iteration).
        for (uint64_t budget : {1ull, 7ull, 24ull, 25ull, 26ull,
                                250ull, 261ull, 1000ull}) {
            Machine ref(mode), sb(mode);
            ref.forceReference = true;
            sb.setBackend(IssBackend::Superblock);
            for (Machine *m : {&ref, &sb}) {
                m->loadProgram(p.words, 0);
                seed(*m, static_cast<uint32_t>(budget));
                m->setPc(0);
                RunResult r = m->run(budget);
                EXPECT_EQ(r.trap.kind, TrapKind::CycleBudget);
                // A multi-cycle instruction may straddle the budget
                // (>= stop semantics); both paths must overshoot by
                // the same amount, which sameState() pins below.
                EXPECT_GE(r.cycles, budget);
            }
            if (!sameState(ref, sb))
                explainState(ref, sb, "reference", "superblock");
        }
    }
}

/*
 * MACCR side exit: an OUT/ST that enables the MAC unit mid-trace
 * retires in the superblock, then the rest of the run executes on
 * the fast path with the full hazard machinery — Algorithm 2 load-mac
 * triggers, shadow micro-ops and stall accounting must be identical
 * to the reference. In non-ISE modes the same store is inert and the
 * trace keeps running.
 */
TEST(Superblock, MaccrStoreSideExitsMidTrace)
{
    std::string src;
    src += "ldi r26, 0x00\nldi r27, 0x02\n";  // X = 0x0200
    src += "ldi r16, 0x42\nst X, r16\n";
    src += csprintf("ldi r17, %u\n",
                    static_cast<unsigned>(MacUnit::ctrlLoadMode));
    src += "out 0x3c, r17\n";   // enable MAC load mode (MACCR)
    src += "ld r24, X+\n";      // Algorithm 2 trigger (r24 load)
    src += "nop\nnop\nnop\n";   // shadow drain window
    src += "add r0, r1\n";
    src += "ldi r18, 0\nout 0x3c, r18\n";  // disable again
    src += "eor r2, r3\n";
    src += "ret\n";
    Program p = assemble(src, "maccr");
    for (CpuMode mode : {CpuMode::CA, CpuMode::FAST, CpuMode::ISE})
        expectThreeWayEquivalence(p, mode);
}

/** The full MAC-ISE multiplication kernel, superblock vs reference. */
TEST(Superblock, Secp160MulIseMatchesReference)
{
    Rng rng(0x5ec9);
    std::vector<uint32_t> a(5), b(5);
    for (auto *v : {&a, &b}) {
        for (auto &word : *v)
            word = rng.next32();
        (*v)[4] &= 0x7fffffff;
    }
    Secp160AvrLibrary lib(CpuMode::ISE);
    lib.machine().setBackend(IssBackend::Superblock);
    lib.machine().forceReference = false;
    OpfRun s = lib.mulIse(a, b);
    lib.machine().forceReference = true;
    OpfRun r = lib.mulIse(a, b);
    EXPECT_EQ(s.result, r.result);
    EXPECT_EQ(s.cycles, r.cycles);
    EXPECT_EQ(s.instructions, r.instructions);
}

/*
 * Self-modifying flash through the GDB `M`/`X` packet path
 * (DebugTarget::writeMemory -> corruptFlashWord): a cached trace of
 * the pre-patch program must be dropped, and the patched instruction
 * must execute as patched on the very next run.
 */
TEST(Superblock, GdbFlashPatchInvalidatesTraces)
{
    Program p1 = assemble("ldi r24, 1\nldi r25, 3\nret", "p1");
    Program p2 = assemble("ldi r24, 2\nldi r25, 3\nret", "p2");
    ASSERT_EQ(p1.words.size(), p2.words.size());

    Machine m(CpuMode::CA);
    m.setBackend(IssBackend::Superblock);
    m.loadProgram(p1.words, 0);
    ASSERT_TRUE(m.call(0).ok());
    EXPECT_EQ(m.reg(24), 1);

    // Patch word 0 through the gdb flash address space (byte 0..1,
    // little endian). The target is attached but passive, so runs
    // keep using the superblock backend.
    DebugTarget target(m);
    EXPECT_FALSE(target.wantsStops());
    ASSERT_TRUE(target.writeMemory(
        0, {static_cast<uint8_t>(p2.words[0] & 0xff),
            static_cast<uint8_t>(p2.words[0] >> 8)}));

    ASSERT_TRUE(m.call(0).ok());
    EXPECT_EQ(m.reg(24), 2)
        << "stale superblock trace executed after a flash patch";
    EXPECT_EQ(m.reg(25), 3);
}

/** loadProgram() equally drops stale traces (non-debug path). */
TEST(Superblock, LoadProgramInvalidatesTraces)
{
    Program p1 = assemble("ldi r20, 7\nret", "p1");
    Program p2 = assemble("ldi r20, 9\nret", "p2");
    Machine m(CpuMode::FAST);
    m.setBackend(IssBackend::Superblock);
    m.loadProgram(p1.words, 0);
    ASSERT_TRUE(m.call(0).ok());
    EXPECT_EQ(m.reg(20), 7);
    m.loadProgram(p2.words, 0);
    ASSERT_TRUE(m.call(0).ok());
    EXPECT_EQ(m.reg(20), 9);
}

/** JAAVR_ISS_BACKEND selects the construction-time backend. */
TEST(Superblock, BackendEnvironmentSelection)
{
    unsetenv("JAAVR_ISS_REFERENCE");
    setenv("JAAVR_ISS_BACKEND", "reference", 1);
    EXPECT_EQ(Machine(CpuMode::CA).backend(), IssBackend::Reference);
    setenv("JAAVR_ISS_BACKEND", "fast", 1);
    EXPECT_EQ(Machine(CpuMode::CA).backend(), IssBackend::Fast);
    setenv("JAAVR_ISS_BACKEND", "superblock", 1);
    EXPECT_EQ(Machine(CpuMode::CA).backend(), IssBackend::Superblock);
    // Unknown values warn and keep the default.
    setenv("JAAVR_ISS_BACKEND", "warp-drive", 1);
    EXPECT_EQ(Machine(CpuMode::CA).backend(), IssBackend::Superblock);
    unsetenv("JAAVR_ISS_BACKEND");
    EXPECT_EQ(Machine(CpuMode::CA).backend(), IssBackend::Superblock);

    // Name round-trip used by benches and tools.
    EXPECT_STREQ(issBackendName(IssBackend::Reference), "reference");
    EXPECT_STREQ(issBackendName(IssBackend::Fast), "fast");
    EXPECT_STREQ(issBackendName(IssBackend::Superblock), "superblock");
}

/*
 * Decode canonicalization satellite: over the whole 16-bit word
 * space, synonymOf() classifies exactly the rd==rr forms of
 * ADD/ADC/AND/EOR as LSL/ROL/TST/CLR (and nothing else), the
 * assembler folds the alias mnemonics onto the same encodings, and
 * the disassembler prints the idiomatic alias. Behavioral
 * equivalence of the specialized superblock handlers is covered by
 * AllOpcodeWordsMatchReferenceAllModes above.
 */
TEST(Superblock, SynonymClassificationExhaustive)
{
    unsigned counts[5] = {};
    for (uint32_t w = 0; w <= 0xffff; w++) {
        Inst i = decode(static_cast<uint16_t>(w), 0x1234);
        Synonym s = synonymOf(i);
        Synonym expect = Synonym::None;
        if (i.rd == i.rr) {
            switch (i.op) {
              case Op::ADD: expect = Synonym::LSL; break;
              case Op::ADC: expect = Synonym::ROL; break;
              case Op::AND: expect = Synonym::TST; break;
              case Op::EOR: expect = Synonym::CLR; break;
              default: break;
            }
        }
        ASSERT_EQ(s, expect) << "word 0x" << std::hex << w;
        counts[static_cast<size_t>(s)]++;
    }
    // 32 registers per synonym class, each a unique encoding.
    for (Synonym s : {Synonym::LSL, Synonym::ROL, Synonym::TST,
                      Synonym::CLR})
        EXPECT_EQ(counts[static_cast<size_t>(s)], 32u);

    for (unsigned rd : {0u, 7u, 16u, 31u}) {
        EXPECT_EQ(assemble(csprintf("lsl r%u", rd), "a").words,
                  assemble(csprintf("add r%u, r%u", rd, rd), "b").words);
        EXPECT_EQ(assemble(csprintf("rol r%u", rd), "a").words,
                  assemble(csprintf("adc r%u, r%u", rd, rd), "b").words);
        EXPECT_EQ(assemble(csprintf("tst r%u", rd), "a").words,
                  assemble(csprintf("and r%u, r%u", rd, rd), "b").words);
        EXPECT_EQ(assemble(csprintf("clr r%u", rd), "a").words,
                  assemble(csprintf("eor r%u, r%u", rd, rd), "b").words);

        uint16_t add_w = assemble(csprintf("add r%u, r%u", rd, rd),
                                  "w").words[0];
        EXPECT_EQ(disassemble(decode(add_w, 0)),
                  csprintf("lsl r%u", rd));
    }

    // The decode cache carries the classification for the backend.
    Machine m(CpuMode::CA);
    m.loadProgram(assemble("lsl r9\nadd r9, r8\n", "dc").words, 0);
    EXPECT_EQ(m.decoded(0).synonym, Synonym::LSL);
    EXPECT_EQ(m.decoded(1).synonym, Synonym::None);
}

/*
 * Call/return stitching: RCALL/CALL continue translation into the
 * callee and RET side-exits through the pushed return address;
 * nested calls and an ICALL through Z must behave identically on all
 * backends, cycles included.
 */
TEST(Superblock, CallStitchingAndIndirectControlFlow)
{
    std::string src;
    src += "rcall f1\n";
    src += "call f2\n";
    src += "ldi r30, lo8(f1)\nldi r31, hi8(f1)\n";
    src += "icall\n";
    src += "ijmp_done:\nret\n";
    src += "f1:\ninc r20\nrcall f2\nret\n";
    src += "f2:\ninc r21\nret\n";
    Program p = assemble(src, "calls");
    for (CpuMode mode : {CpuMode::CA, CpuMode::FAST, CpuMode::ISE})
        expectThreeWayEquivalence(p, mode);
}
