/**
 * @file
 * LeakTracer tests: an attached-but-idle tracer adds exactly zero
 * simulated cycles on every run-loop instantiation (the same pinning
 * contract tests/test_vcd.cc holds the VCD writer to), recording does
 * not perturb timing or results, the synthesized samples match the
 * documented Hamming-weight/Hamming-distance model exactly when the
 * noise is off, the seeded noise stream is deterministic, the
 * CSV/NPY/meta exports are byte-identical across identical runs, and
 * traps land as markers. Also pins the p50/p99 cycles-per-instruction
 * gauges Machine::publishMetrics derives from the retired statistics.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "avr/leakage.hh"
#include "avr/machine.hh"
#include "avrasm/assembler.hh"
#include "avrgen/opf_harness.hh"
#include "field/opf_field.hh"
#include "nt/opf_prime.hh"
#include "support/json.hh"
#include "support/metrics.hh"
#include "support/random.hh"

using namespace jaavr;

namespace
{

void
expectSameState(const Machine &a, const Machine &b)
{
    for (unsigned i = 0; i < 32; i++)
        EXPECT_EQ(a.reg(i), b.reg(i)) << "r" << i;
    EXPECT_EQ(a.sreg(), b.sreg());
    EXPECT_EQ(a.sp(), b.sp());
    EXPECT_EQ(a.pc(), b.pc());
    EXPECT_EQ(a.stats().instructions, b.stats().instructions);
    EXPECT_EQ(a.stats().cycles, b.stats().cycles);
    EXPECT_EQ(a.mac().totalMacs(), b.mac().totalMacs());
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
tmpPath(const std::string &leaf)
{
    return testing::TempDir() + "/" + leaf;
}

} // anonymous namespace

/*
 * The WaveSink pinning contract: a LeakTracer that is attached but
 * never armed must leave every run-loop instantiation (all modes,
 * fast and reference) with bit-identical results, cycles and
 * architectural state, and must synthesize no samples.
 */
TEST(Leakage, AttachedButIdleAddsZeroCycles)
{
    OpfPrime prime = makeOpf(0xff4c, 144);
    OpfField field(prime);
    Rng rng(0x1ea4);
    auto a = field.fromBig(BigUInt::randomBits(rng, prime.k));
    auto b = field.fromBig(BigUInt::randomBits(rng, prime.k));

    for (CpuMode mode : {CpuMode::CA, CpuMode::FAST, CpuMode::ISE}) {
        for (bool reference : {false, true}) {
            OpfAvrLibrary base(prime, mode);
            base.machine().forceReference = reference;
            OpfRun r0 = base.mul(a, b);

            OpfAvrLibrary idle(prime, mode);
            idle.machine().forceReference = reference;
            LeakTracer leak; // attached, never armed
            idle.machine().setLeakSink(&leak);
            EXPECT_FALSE(leak.active());
            OpfRun r1 = idle.mul(a, b);
            EXPECT_EQ(r1.result, r0.result);
            EXPECT_EQ(r1.cycles, r0.cycles);
            EXPECT_EQ(r1.instructions, r0.instructions);
            expectSameState(idle.machine(), base.machine());
            EXPECT_TRUE(leak.samples().empty());
        }
    }
}

/** An armed tracer routes through the reference loop, whose timing is
 *  pinned to the fast path — recording is observation, not physics. */
TEST(Leakage, RecordingDoesNotPerturbTimingOrResults)
{
    OpfPrime prime = makeOpf(0xff4c, 144);
    OpfField field(prime);
    Rng rng(0x7ace);
    auto a = field.fromBig(BigUInt::randomBits(rng, prime.k));
    auto b = field.fromBig(BigUInt::randomBits(rng, prime.k));

    OpfAvrLibrary base(prime, CpuMode::ISE);
    OpfRun r0 = base.mul(a, b);

    OpfAvrLibrary rec(prime, CpuMode::ISE);
    LeakTracer leak;
    rec.machine().setLeakSink(&leak);
    leak.begin(rec.machine());
    OpfRun r1 = rec.mul(a, b);
    leak.end();

    EXPECT_EQ(r1.result, r0.result);
    EXPECT_EQ(r1.cycles, r0.cycles);
    EXPECT_EQ(r1.instructions, r0.instructions);
    // One sample per retired instruction, stamped monotonically up to
    // the run's cycle count.
    EXPECT_EQ(leak.samples().size(), r0.instructions);
    ASSERT_EQ(leak.stamps().size(), leak.samples().size());
    EXPECT_EQ(leak.time(), r0.cycles);
    EXPECT_EQ(leak.stamps().back(), r0.cycles);
    for (size_t i = 1; i < leak.stamps().size(); i++)
        EXPECT_GE(leak.stamps()[i], leak.stamps()[i - 1]);
    // The ISE multiplication steps the MAC, so some samples carry the
    // accumulator term and the trace is not flat.
    EXPECT_GT(rec.machine().mac().totalMacs(), 0u);
    float mx = 0;
    for (float s : leak.samples())
        mx = std::max(mx, s);
    EXPECT_GT(mx, 0.0f);
}

/** With the noise off, every sample is the documented model exactly:
 *  register-file HD + bus value/address HW for loads and stores. */
TEST(Leakage, SamplesMatchTheHammingModelExactly)
{
    Program prog = assemble(R"(
            ldi r16, 0xff
            ldi r16, 0x00
            ldi r17, 0x0f
            sts 0x0123, r17
            ret
    )",
                            "leak_fixture");

    Machine m(CpuMode::CA);
    m.loadProgram(prog.words, 0);
    LeakTracer leak; // default model: noiseSigma = 0
    m.setLeakSink(&leak);
    leak.begin(m);
    leak.mark("pre");
    unsigned r16_0 = m.reg(16), r17_0 = m.reg(17);
    RunResult r = m.call(0);
    ASSERT_TRUE(r.ok());
    leak.mark("post");
    leak.end();

    ASSERT_EQ(leak.samples().size(), m.stats().instructions);
    ASSERT_EQ(leak.samples().size(), 5u);
    // ldi r16, 0xff: register-file switching only.
    EXPECT_FLOAT_EQ(leak.samples()[0],
                    float(std::popcount(0xffu ^ r16_0)));
    // ldi r16, 0x00 undoes all eight bits.
    EXPECT_FLOAT_EQ(leak.samples()[1], 8.0f);
    EXPECT_FLOAT_EQ(leak.samples()[2],
                    float(std::popcount(0x0fu ^ r17_0)));
    // sts 0x0123, r17: no register changes; the bus term prices
    // HW(value 0x0f) + HW(address 0x0123) = 4 + 4.
    EXPECT_FLOAT_EQ(leak.samples()[3], 8.0f);
    // ret touches neither the register file nor the data bus.
    EXPECT_FLOAT_EQ(leak.samples()[4], 0.0f);
    EXPECT_EQ(leak.time(), r.cycles);

    // Markers bracket the recording at the right sample indices.
    ASSERT_EQ(leak.markers().size(), 2u);
    EXPECT_EQ(leak.markers()[0].first, "pre");
    EXPECT_EQ(leak.markers()[0].second, 0u);
    EXPECT_EQ(leak.markers()[1].first, "post");
    EXPECT_EQ(leak.markers()[1].second, 5u);
}

/** The Irwin-Hall noise stream is a pure function of the seed. */
TEST(Leakage, NoiseIsSeededAndDeterministic)
{
    Program prog = assemble("ldi r20, 0xaa\nldi r21, 0x55\nret\n",
                            "leak_noise");
    LeakModel noisy;
    noisy.noiseSigma = 1.5;

    auto run = [&](uint64_t seed) {
        Machine m(CpuMode::CA);
        m.loadProgram(prog.words, 0);
        LeakTracer leak(noisy);
        m.setLeakSink(&leak);
        leak.begin(m, seed);
        RunResult r = m.call(0);
        EXPECT_TRUE(r.ok());
        leak.end();
        return leak.samples();
    };

    auto a = run(42), b = run(42), c = run(43);
    EXPECT_EQ(a, b) << "same seed must synthesize identical traces";
    EXPECT_NE(a, c) << "different seeds must decorrelate the noise";
}

TEST(Leakage, ExportsAreByteIdenticalAcrossIdenticalRuns)
{
    OpfPrime prime = makeOpf(0xff4c, 144);
    OpfField field(prime);
    Rng rng(0xd0d0);
    auto a = field.fromBig(BigUInt::randomBits(rng, prime.k));
    auto b = field.fromBig(BigUInt::randomBits(rng, prime.k));

    std::string csv[2] = {tmpPath("jaavr_leak_a.csv"),
                          tmpPath("jaavr_leak_b.csv")};
    std::string npy[2] = {tmpPath("jaavr_leak_a.npy"),
                          tmpPath("jaavr_leak_b.npy")};
    std::string meta[2] = {tmpPath("jaavr_leak_a.json"),
                           tmpPath("jaavr_leak_b.json")};
    size_t samples = 0;
    for (int i = 0; i < 2; i++) {
        std::remove(meta[i].c_str()); // writeMeta appends
        OpfAvrLibrary lib(prime, CpuMode::ISE);
        LeakTracer leak;
        lib.machine().setLeakSink(&leak);
        leak.begin(lib.machine(), 0x5eed);
        leak.mark("mul");
        OpfRun r = lib.mul(a, b);
        ASSERT_EQ(r.trap.kind, TrapKind::None);
        leak.end();
        samples = leak.samples().size();
        ASSERT_TRUE(leak.writeCsv(csv[i]));
        ASSERT_TRUE(leak.writeNpy(npy[i]));
        JsonLine stamp;
        stamp.str("bench", "unit");
        ASSERT_TRUE(leak.writeMeta(meta[i], stamp));
    }

    std::string ca = slurp(csv[0]);
    ASSERT_FALSE(ca.empty());
    EXPECT_EQ(ca.substr(0, ca.find('\n')), "sample,cycle,power");
    EXPECT_EQ(ca, slurp(csv[1]));

    std::string na = slurp(npy[0]);
    EXPECT_EQ(na, slurp(npy[1]));
    // NPY format 1.0: magic, little-endian header length, a '<f4'
    // dict padded so the payload starts 64-byte aligned, then one
    // float32 per sample.
    ASSERT_GT(na.size(), 10u);
    EXPECT_EQ(na.substr(0, 8), std::string("\x93NUMPY\x01\x00", 8));
    size_t hlen = uint8_t(na[8]) | (uint8_t(na[9]) << 8);
    EXPECT_EQ((10 + hlen) % 64, 0u);
    EXPECT_NE(na.find("'descr': '<f4'"), std::string::npos);
    EXPECT_EQ(na.size(), 10 + hlen + 4 * samples);

    // The metadata is parsable JSON-lines carrying the stamp, the
    // model and the marker.
    std::string ma = slurp(meta[0]);
    EXPECT_EQ(ma, slurp(meta[1]));
    std::istringstream lines(ma);
    std::string line;
    bool sawTrace = false, sawMarker = false;
    while (std::getline(lines, line)) {
        JsonObject obj;
        std::string err;
        ASSERT_TRUE(parseJsonLine(line, obj, &err)) << err;
        EXPECT_EQ(obj.at("bench").str, "unit");
        if (obj.at("kind").str == "trace") {
            sawTrace = true;
            EXPECT_EQ(obj.at("samples").num, double(samples));
            EXPECT_EQ(obj.at("noise_seed").num, 0x5eed);
        } else if (obj.at("kind").str == "marker") {
            sawMarker = true;
            EXPECT_EQ(obj.at("label").str, "mul");
            EXPECT_EQ(obj.at("sample").num, 0);
        }
    }
    EXPECT_TRUE(sawTrace && sawMarker);

    for (int i = 0; i < 2; i++) {
        std::remove(csv[i].c_str());
        std::remove(npy[i].c_str());
        std::remove(meta[i].c_str());
    }
}

TEST(Leakage, TrapLandsAsAMarker)
{
    Program prog = assemble("nop\nnop\nnop\nret\n", "leak_trap");
    Machine full(CpuMode::CA);
    full.loadProgram(prog.words, 0);
    RunResult whole = full.call(0);
    ASSERT_TRUE(whole.ok());

    Machine m(CpuMode::CA);
    m.loadProgram(prog.words, 0);
    LeakTracer leak;
    m.setLeakSink(&leak);
    leak.begin(m);
    RunResult r = m.call(0, whole.cycles); // budget == consumption
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.trap.kind, TrapKind::CycleBudget);
    leak.end();

    ASSERT_EQ(leak.markers().size(), 1u);
    EXPECT_EQ(leak.markers()[0].first, "trap:cycle_budget");
    EXPECT_EQ(leak.markers()[0].second, leak.samples().size());
}

/** publishMetrics derives tail-latency gauges from the per-op retired
 *  statistics via Histogram::percentile. */
TEST(Leakage, PublishMetricsExportsPercentileGauges)
{
    OpfPrime prime = makeOpf(0xff4c, 144);
    OpfField field(prime);
    Rng rng(0x99);
    auto a = field.fromBig(BigUInt::randomBits(rng, prime.k));
    auto b = field.fromBig(BigUInt::randomBits(rng, prime.k));

    OpfAvrLibrary lib(prime, CpuMode::ISE);
    OpfRun r = lib.mul(a, b);
    ASSERT_EQ(r.trap.kind, TrapKind::None);

    MetricsRegistry reg;
    lib.machine().publishMetrics(reg);
    double p50 = reg.gauge("iss_cycles_per_inst_p50").value();
    double p99 = reg.gauge("iss_cycles_per_inst_p99").value();
    EXPECT_GT(p50, 0.0);
    EXPECT_GE(p99, p50);
    // Single-cycle ALU ops dominate the OPF multiply; CALL/RET-class
    // retirements put the p99 tail strictly above the median.
    EXPECT_LT(p50, 2.0);
    EXPECT_GT(p99, p50 * 1.0 - 1e-9);
    // The gauges summarize the same histogram the registry publishes.
    Histogram &cyc = reg.histogram("iss_cycles_per_inst", {});
    EXPECT_GT(cyc.count(), 0u);
    EXPECT_DOUBLE_EQ(cyc.percentile(50), p50);
    EXPECT_DOUBLE_EQ(cyc.percentile(99), p99);
}
