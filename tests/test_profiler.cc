/**
 * @file
 * Tests for the ISS profiling layer (src/avr/profiler.{hh,cc}): the
 * call-graph profiler must observe identical events on the predecoded
 * fast path and the step() reference path, attribute every cycle and
 * instruction exactly once, keep Chrome-trace begin/end events
 * properly nested, and leave the machine's statistics bit-identical
 * to an unprofiled run.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "avr/machine.hh"
#include "avr/profiler.hh"
#include "avrasm/assembler.hh"
#include "avrasm/symbol_table.hh"
#include "avrgen/opf_harness.hh"
#include "field/opf_field.hh"
#include "nt/opf_prime.hh"
#include "support/random.hh"

using namespace jaavr;

namespace
{

/*
 * Three-level nested-call program: main calls outer twice, outer
 * calls inner and leaf, inner calls leaf.  Call counts: outer 2,
 * inner 2, leaf 4.
 */
const char *kNested = R"(
main:   rcall outer
        rcall outer
        ret
outer:  rcall inner
        call  leaf
        ret
inner:  call  leaf
        nop
        ret
leaf:   nop
        nop
        ret
)";

void
expectSameProfile(const CallGraphProfiler &a, const CallGraphProfiler &b)
{
    ASSERT_EQ(a.nodes().size(), b.nodes().size());
    auto ib = b.nodes().begin();
    for (const auto &[addr, na] : a.nodes()) {
        const auto &[addr_b, nb] = *ib++;
        ASSERT_EQ(addr, addr_b);
        EXPECT_EQ(na.calls, nb.calls) << a.name(addr);
        EXPECT_EQ(na.inclusiveCycles, nb.inclusiveCycles) << a.name(addr);
        EXPECT_EQ(na.exclusiveCycles, nb.exclusiveCycles) << a.name(addr);
        EXPECT_EQ(na.instructions, nb.instructions) << a.name(addr);
        EXPECT_EQ(na.loads, nb.loads) << a.name(addr);
        EXPECT_EQ(na.stores, nb.stores) << a.name(addr);
        EXPECT_EQ(na.opCount, nb.opCount) << a.name(addr);
        EXPECT_EQ(na.opCycles, nb.opCycles) << a.name(addr);
    }
    EXPECT_EQ(a.traceEvents(), b.traceEvents());
    EXPECT_EQ(a.spLowWater(), b.spLowWater());
    EXPECT_EQ(a.spHighWater(), b.spHighWater());
}

/** Begin/end events must pair up like well-nested parentheses. */
void
expectWellNested(const std::vector<CallGraphProfiler::TraceEvent> &evs)
{
    std::vector<uint32_t> stack;
    uint64_t last_ts = 0;
    for (const auto &e : evs) {
        EXPECT_GE(e.ts, last_ts);
        last_ts = e.ts;
        if (e.begin) {
            stack.push_back(e.addr);
        } else {
            ASSERT_FALSE(stack.empty()) << "end event without begin";
            EXPECT_EQ(stack.back(), e.addr) << "mismatched CALL/RET pair";
            stack.pop_back();
        }
    }
    EXPECT_TRUE(stack.empty()) << "unterminated begin events";
}

} // anonymous namespace

TEST(Profiler, NestedCallAttribution)
{
    Program prog = assemble(kNested, "nested");
    SymbolTable syms;
    syms.addProgram("main", prog, 0);

    Machine m(CpuMode::CA);
    m.loadProgram(prog.words);
    CallGraphProfiler prof(m, syms, /*histograms=*/true,
                           /*record_trace=*/true);
    m.call(0);

    EXPECT_EQ(prof.depth(), 0u);
    EXPECT_EQ(prof.spuriousRets(), 0u);

    const auto *main_n = prof.nodeByName("main");
    const auto *outer = prof.nodeByName("main.outer");
    const auto *inner = prof.nodeByName("main.inner");
    const auto *leaf = prof.nodeByName("main.leaf");
    ASSERT_TRUE(main_n && outer && inner && leaf);
    EXPECT_EQ(main_n->calls, 1u);
    EXPECT_EQ(outer->calls, 2u);
    EXPECT_EQ(inner->calls, 2u);
    EXPECT_EQ(leaf->calls, 4u);

    // The program is deterministic, so each leaf call costs the same.
    uint64_t leaf_each = leaf->inclusiveCycles / 4;
    EXPECT_EQ(leaf->inclusiveCycles % 4, 0u);
    EXPECT_EQ(leaf->exclusiveCycles, leaf->inclusiveCycles);
    EXPECT_EQ(inner->exclusiveCycles,
              inner->inclusiveCycles - 2 * leaf_each);
    EXPECT_EQ(outer->exclusiveCycles,
              outer->inclusiveCycles - inner->inclusiveCycles -
                  2 * leaf_each);
    EXPECT_EQ(main_n->exclusiveCycles,
              main_n->inclusiveCycles - outer->inclusiveCycles);

    // Every cycle and instruction is attributed to exactly one node,
    // and the synthetic top-level frame spans the whole run.
    uint64_t excl_sum = 0, inst_sum = 0;
    for (const auto &[addr, n] : prof.nodes()) {
        excl_sum += n.exclusiveCycles;
        inst_sum += n.instructions;
    }
    EXPECT_EQ(excl_sum, m.stats().cycles);
    EXPECT_EQ(inst_sum, m.stats().instructions);
    EXPECT_EQ(main_n->inclusiveCycles, m.stats().cycles);

    // 9 events: 1 synthetic + 8 real calls, each with a matching end.
    EXPECT_EQ(prof.traceEvents().size(), 18u);
    expectWellNested(prof.traceEvents());

    // Stack: sentinel + 3 nesting levels of 2-byte return addresses,
    // with the high mark sampled after the final RET pops everything.
    EXPECT_EQ(prof.stackHighWaterBytes(), 8u);
}

TEST(Profiler, FastAndReferencePathsObserveIdenticalEvents)
{
    Program prog = assemble(kNested, "nested");
    SymbolTable syms;
    syms.addProgram("main", prog, 0);

    for (CpuMode mode : {CpuMode::CA, CpuMode::FAST, CpuMode::ISE}) {
        Machine fast(mode), ref(mode);
        fast.loadProgram(prog.words);
        ref.loadProgram(prog.words);
        ref.forceReference = true;
        CallGraphProfiler pf(fast, syms, true, true);
        CallGraphProfiler pr(ref, syms, true, true);
        fast.call(0);
        ref.call(0);
        expectSameProfile(pf, pr);
    }
}

/*
 * The OPF field routines (including the MAC-ISE multiplication and
 * the subroutine-heavy inversion) must profile identically on both
 * execution paths across field sizes.
 */
class ProfilerOpfEquivalence : public ::testing::TestWithParam<unsigned>
{};

TEST_P(ProfilerOpfEquivalence, MulAndInvProfileIdentically)
{
    const unsigned k = GetParam();
    OpfPrime prime = makeOpf(0xff4c, k);
    OpfField field(prime);
    Rng rng(k);
    auto a = field.fromBig(BigUInt::randomBits(rng, prime.k));
    auto b = field.fromBig(BigUInt::randomBits(rng, prime.k));

    for (CpuMode mode : {CpuMode::CA, CpuMode::FAST, CpuMode::ISE}) {
        OpfAvrLibrary lib(prime, mode);

        lib.machine().forceReference = false;
        lib.machine().resetStats();
        CallGraphProfiler pf(lib.machine(), lib.symbols(), true, true);
        lib.mul(a, b);
        lib.inv(a);
        lib.machine().setProfiler(nullptr);

        lib.machine().forceReference = true;
        lib.machine().resetStats();
        CallGraphProfiler pr(lib.machine(), lib.symbols(), true, true);
        lib.mul(a, b);
        lib.inv(a);
        lib.machine().setProfiler(nullptr);

        expectSameProfile(pf, pr);
        expectWellNested(pf.traceEvents());

        // Attribution is complete: per-node sums equal the machine's
        // global statistics for the profiled (reference) run.
        uint64_t excl_sum = 0, inst_sum = 0;
        for (const auto &[addr, n] : pr.nodes()) {
            excl_sum += n.exclusiveCycles;
            inst_sum += n.instructions;
        }
        EXPECT_EQ(excl_sum, lib.machine().stats().cycles);
        EXPECT_EQ(inst_sum, lib.machine().stats().instructions);
    }
}

INSTANTIATE_TEST_SUITE_P(FieldSizes, ProfilerOpfEquivalence,
                         ::testing::Values(144u, 176u, 240u));

/*
 * Attaching (and detaching) a sink must not perturb execution: the
 * machine statistics of a profiled run are bit-identical to an
 * unprofiled run of the same workload.
 */
TEST(Profiler, SinkDoesNotPerturbExecution)
{
    OpfPrime prime = paperOpfPrime();
    OpfField field(prime);
    Rng rng(42);
    auto a = field.fromBig(BigUInt::randomBits(rng, prime.k));
    auto b = field.fromBig(BigUInt::randomBits(rng, prime.k));

    OpfAvrLibrary plain(prime, CpuMode::ISE);
    plain.machine().resetStats();
    OpfRun r0 = plain.mul(a, b);

    OpfAvrLibrary profiled(prime, CpuMode::ISE);
    CallGraphProfiler prof(profiled.machine(), profiled.symbols(), true,
                           true);
    profiled.machine().resetStats();
    OpfRun r1 = profiled.mul(a, b);

    EXPECT_EQ(r0.result, r1.result);
    EXPECT_EQ(r0.cycles, r1.cycles);
    const ExecStats &s0 = plain.machine().stats();
    const ExecStats &s1 = profiled.machine().stats();
    EXPECT_EQ(s0.instructions, s1.instructions);
    EXPECT_EQ(s0.cycles, s1.cycles);
    EXPECT_EQ(s0.macStallNops, s1.macStallNops);
    EXPECT_EQ(s0.opCount, s1.opCount);
    EXPECT_EQ(s0.opCycles, s1.opCycles);

    // And the profiler saw everything the statistics saw.
    const auto *mul = prof.nodeByName("opf_mul");
    ASSERT_TRUE(mul);
    EXPECT_EQ(mul->instructions, s1.instructions);
    EXPECT_EQ(mul->inclusiveCycles, s1.cycles);
    EXPECT_EQ(mul->count(Op::NOP), s1.macStallNops);
}

TEST(Profiler, TraceSinkFormatIdenticalOnBothPaths)
{
    Program prog = assemble("ldi r16, 0x2a\nnop\nret\n", "t");

    auto capture = [&](bool reference) {
        std::FILE *f = std::tmpfile();
        Machine m(CpuMode::CA);
        m.loadProgram(prog.words);
        m.forceReference = reference;
        TraceSink sink(f);
        m.setProfiler(&sink);
        m.call(0);
        m.setProfiler(nullptr);
        std::string out;
        std::rewind(f);
        char buf[256];
        while (std::fgets(buf, sizeof buf, f))
            out += buf;
        std::fclose(f);
        return out;
    };

    std::string fast = capture(false);
    std::string ref = capture(true);
    EXPECT_EQ(fast, ref);
    EXPECT_NE(fast.find("     0  0000: ldi r16, 0x2a"),
              std::string::npos);
    EXPECT_NE(fast.find("nop"), std::string::npos);
    EXPECT_NE(fast.find("ret"), std::string::npos);
}

/* The legacy trace flag still produces `info: `-prefixed stderr. */
TEST(Profiler, LegacyTraceFlagPrintsToStderr)
{
    Machine m(CpuMode::CA);
    m.loadProgram(assemble("nop\nret\n", "t").words);
    m.trace = true;
    testing::internal::CaptureStderr();
    m.call(0);
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("info:      0  0000: nop"), std::string::npos);
    EXPECT_NE(err.find("ret"), std::string::npos);
}

/* Structured export: JSON-lines records and a nested Chrome trace. */
TEST(Profiler, ExportsParseAndNest)
{
    Program prog = assemble(kNested, "nested");
    SymbolTable syms;
    syms.addProgram("main", prog, 0);
    Machine m(CpuMode::CA);
    m.loadProgram(prog.words);
    CallGraphProfiler prof(m, syms, true, true);
    m.call(0);

    std::string report = prof.textReport();
    EXPECT_NE(report.find("main.leaf"), std::string::npos);
    EXPECT_NE(report.find("routine"), std::string::npos);

    std::string dir = ::testing::TempDir();
    std::string jl = dir + "/prof.json";
    std::string ct = dir + "/trace.json";
    std::remove(jl.c_str());
    ASSERT_TRUE(prof.writeJsonLines(jl, "test", "nested"));
    ASSERT_TRUE(prof.writeChromeTrace(ct));

    // Spot-check the emitted documents without a JSON parser: every
    // profile line is one {...} object, and the trace pairs B/E phases.
    std::FILE *f = std::fopen(jl.c_str(), "r");
    ASSERT_TRUE(f);
    char buf[1024];
    int lines = 0;
    while (std::fgets(buf, sizeof buf, f)) {
        std::string line(buf);
        EXPECT_EQ(line.front(), '{');
        EXPECT_NE(line.find("\"symbol\""), std::string::npos);
        lines++;
    }
    std::fclose(f);
    EXPECT_EQ(lines, 4); // main, outer, inner, leaf

    f = std::fopen(ct.c_str(), "r");
    ASSERT_TRUE(f);
    std::string doc;
    while (std::fgets(buf, sizeof buf, f))
        doc += buf;
    std::fclose(f);
    size_t begins = 0, ends = 0, pos = 0;
    while ((pos = doc.find("\"ph\":\"B\"", pos)) != std::string::npos)
        begins++, pos++;
    pos = 0;
    while ((pos = doc.find("\"ph\":\"E\"", pos)) != std::string::npos)
        ends++, pos++;
    EXPECT_EQ(begins, 9u);
    EXPECT_EQ(begins, ends);
}
