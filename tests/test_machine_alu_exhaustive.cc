/**
 * @file
 * Exhaustive validation of the ALU semantics the ECC assembly lives
 * on: every (a, b, carry-in) combination for the add/sub/compare
 * family, every (a, carry) for the single-register operations, and
 * every (a, b) for the multiplier family, each checked against an
 * independent bit-level reference derived from the AVR instruction
 * set manual (not from the machine implementation).
 */

#include <gtest/gtest.h>

#include "avr/machine.hh"
#include "avrasm/assembler.hh"

using namespace jaavr;

namespace
{

constexpr uint8_t fC = 0x01, fZ = 0x02, fN = 0x04, fV = 0x08,
                  fS = 0x10, fH = 0x20;

struct Ref
{
    uint8_t result;
    uint8_t flags;  // C Z N V S H only
};

/** Reference for ADD/ADC per the instruction-set manual. */
Ref
refAdd(uint8_t a, uint8_t b, bool cin)
{
    unsigned wide = unsigned(a) + b + (cin ? 1 : 0);
    uint8_t r = uint8_t(wide);
    uint8_t f = 0;
    if (wide > 0xff)
        f |= fC;
    if (((a & 0xf) + (b & 0xf) + (cin ? 1 : 0)) > 0xf)
        f |= fH;
    if (r == 0)
        f |= fZ;
    if (r & 0x80)
        f |= fN;
    bool v = !((a ^ b) & 0x80) && ((a ^ r) & 0x80);
    if (v)
        f |= fV;
    if (bool(f & fN) != v)
        f |= fS;
    return {r, f};
}

/** Reference for SUB/SBC/CP/CPC. */
Ref
refSub(uint8_t a, uint8_t b, bool cin, bool keep_z, bool zin)
{
    int wide = int(a) - b - (cin ? 1 : 0);
    uint8_t r = uint8_t(wide);
    uint8_t f = 0;
    if (wide < 0)
        f |= fC;
    if ((int(a & 0xf) - int(b & 0xf) - (cin ? 1 : 0)) < 0)
        f |= fH;
    bool z = r == 0;
    if (keep_z)
        z = z && zin;
    if (z)
        f |= fZ;
    if (r & 0x80)
        f |= fN;
    bool v = ((a ^ b) & 0x80) && ((b ^ r) & 0x80) == 0;
    // V: operands of different sign and result has the sign of b.
    v = ((a ^ b) & 0x80) && !((b ^ r) & 0x80);
    if (v)
        f |= fV;
    if (bool(f & fN) != v)
        f |= fS;
    return {r, f};
}

/** One-instruction machine: set inputs, step, read back. */
class AluHarness
{
  public:
    explicit AluHarness(const std::string &insn) : m(CpuMode::CA)
    {
        m.loadProgram(assemble(insn, "alu").words);
    }

    /** Execute with the given registers and SREG; returns (r16, SREG). */
    std::pair<uint8_t, uint8_t>
    run(uint8_t a, uint8_t b, uint8_t sreg_in)
    {
        m.setReg(16, a);
        m.setReg(17, b);
        m.setSreg(sreg_in);
        m.setPc(0);
        m.step();
        return {m.reg(16), m.sreg()};
    }

    Machine m;
};

constexpr uint8_t kArithMask = fC | fZ | fN | fV | fS | fH;

} // anonymous namespace

TEST(MachineAluExhaustive, AddAllInputs)
{
    AluHarness h("add r16, r17");
    for (unsigned a = 0; a < 256; a++) {
        for (unsigned b = 0; b < 256; b++) {
            Ref ref = refAdd(a, b, false);
            auto [r, f] = h.run(a, b, 0);
            ASSERT_EQ(r, ref.result) << a << "+" << b;
            ASSERT_EQ(f & kArithMask, ref.flags) << a << "+" << b;
        }
    }
}

TEST(MachineAluExhaustive, AdcAllInputsBothCarries)
{
    AluHarness h("adc r16, r17");
    for (unsigned cin = 0; cin < 2; cin++) {
        for (unsigned a = 0; a < 256; a++) {
            for (unsigned b = 0; b < 256; b++) {
                Ref ref = refAdd(a, b, cin);
                auto [r, f] = h.run(a, b, cin ? fC : 0);
                ASSERT_EQ(r, ref.result) << a << "+" << b << "+" << cin;
                ASSERT_EQ(f & kArithMask, ref.flags)
                    << a << "+" << b << "+" << cin;
            }
        }
    }
}

TEST(MachineAluExhaustive, SubAllInputs)
{
    AluHarness h("sub r16, r17");
    for (unsigned a = 0; a < 256; a++) {
        for (unsigned b = 0; b < 256; b++) {
            Ref ref = refSub(a, b, false, false, false);
            auto [r, f] = h.run(a, b, 0);
            ASSERT_EQ(r, ref.result) << a << "-" << b;
            ASSERT_EQ(f & kArithMask, ref.flags) << a << "-" << b;
        }
    }
}

TEST(MachineAluExhaustive, SbcAllInputsCarryAndZ)
{
    AluHarness h("sbc r16, r17");
    for (unsigned cin = 0; cin < 2; cin++) {
        for (unsigned zin = 0; zin < 2; zin++) {
            for (unsigned a = 0; a < 256; a++) {
                for (unsigned b = 0; b < 256; b++) {
                    Ref ref = refSub(a, b, cin, true, zin);
                    uint8_t sreg_in = (cin ? fC : 0) | (zin ? fZ : 0);
                    auto [r, f] = h.run(a, b, sreg_in);
                    ASSERT_EQ(r, ref.result)
                        << a << "-" << b << "-" << cin;
                    ASSERT_EQ(f & kArithMask, ref.flags)
                        << a << "-" << b << "-" << cin << " z" << zin;
                }
            }
        }
    }
}

TEST(MachineAluExhaustive, CpMatchesSubWithoutWriteback)
{
    AluHarness hc("cp r16, r17");
    for (unsigned a = 0; a < 256; a++) {
        for (unsigned b = 0; b < 256; b++) {
            Ref ref = refSub(a, b, false, false, false);
            auto [r, f] = hc.run(a, b, 0);
            ASSERT_EQ(r, a) << "cp must not write";
            ASSERT_EQ(f & kArithMask, ref.flags);
        }
    }
}

TEST(MachineAluExhaustive, NegMatchesSubFromZero)
{
    AluHarness h("neg r16");
    for (unsigned a = 0; a < 256; a++) {
        Ref ref = refSub(0, a, false, false, false);
        auto [r, f] = h.run(a, 0, 0);
        ASSERT_EQ(r, ref.result) << a;
        ASSERT_EQ(f & kArithMask, ref.flags) << a;
    }
}

TEST(MachineAluExhaustive, ShiftsAllInputsBothCarries)
{
    AluHarness lsr("lsr r16"), ror_h("ror r16"), asr("asr r16");
    for (unsigned cin = 0; cin < 2; cin++) {
        for (unsigned a = 0; a < 256; a++) {
            uint8_t sreg_in = cin ? fC : 0;

            auto [r1, f1] = lsr.run(a, 0, sreg_in);
            ASSERT_EQ(r1, a >> 1);
            ASSERT_EQ(bool(f1 & fC), bool(a & 1));
            ASSERT_EQ(bool(f1 & fZ), r1 == 0);
            ASSERT_FALSE(f1 & fN);
            // V = N ^ C = C; S = N ^ V = V.
            ASSERT_EQ(bool(f1 & fV), bool(a & 1));

            auto [r2, f2] = ror_h.run(a, 0, sreg_in);
            uint8_t expect2 = (a >> 1) | (cin ? 0x80 : 0);
            ASSERT_EQ(r2, expect2);
            ASSERT_EQ(bool(f2 & fC), bool(a & 1));
            ASSERT_EQ(bool(f2 & fN), bool(expect2 & 0x80));

            auto [r3, f3] = asr.run(a, 0, sreg_in);
            uint8_t expect3 = uint8_t((a >> 1) | (a & 0x80));
            ASSERT_EQ(r3, expect3);
            ASSERT_EQ(bool(f3 & fC), bool(a & 1));
        }
    }
}

TEST(MachineAluExhaustive, MulFamilyAllInputs)
{
    AluHarness mul("mul r16, r17"), muls("muls r16, r17"),
        mulsu("mulsu r16, r17");
    for (unsigned a = 0; a < 256; a++) {
        for (unsigned b = 0; b < 256; b++) {
            // MUL: unsigned 16-bit product in R1:R0.
            mul.run(a, b, 0);
            uint16_t p = uint16_t(a * b);
            ASSERT_EQ(mul.m.reg(0), p & 0xff);
            ASSERT_EQ(mul.m.reg(1), p >> 8);
            ASSERT_EQ(bool(mul.m.sreg() & fC), bool(p & 0x8000));
            ASSERT_EQ(bool(mul.m.sreg() & fZ), p == 0);

            // MULS: signed x signed.
            muls.run(a, b, 0);
            int16_t ps = int16_t(int8_t(a)) * int8_t(b);
            ASSERT_EQ(muls.m.reg(0), uint16_t(ps) & 0xff);
            ASSERT_EQ(muls.m.reg(1), uint16_t(ps) >> 8);

            // MULSU: signed x unsigned.
            mulsu.run(a, b, 0);
            int16_t pu = int16_t(int8_t(a)) * int16_t(b);
            ASSERT_EQ(mulsu.m.reg(0), uint16_t(pu) & 0xff);
            ASSERT_EQ(mulsu.m.reg(1), uint16_t(pu) >> 8);
        }
    }
}

TEST(MachineAluExhaustive, IncDecComAllInputs)
{
    AluHarness inc("inc r16"), dec("dec r16"), com("com r16");
    for (unsigned a = 0; a < 256; a++) {
        auto [ri, fi] = inc.run(a, 0, 0);
        ASSERT_EQ(ri, uint8_t(a + 1));
        ASSERT_EQ(bool(fi & fV), a == 0x7f);
        ASSERT_EQ(bool(fi & fZ), uint8_t(a + 1) == 0);

        auto [rd, fd] = dec.run(a, 0, 0);
        ASSERT_EQ(rd, uint8_t(a - 1));
        ASSERT_EQ(bool(fd & fV), a == 0x80);

        auto [rc, fc2] = com.run(a, 0, 0);
        ASSERT_EQ(rc, uint8_t(~a));
        ASSERT_TRUE(fc2 & fC);
        ASSERT_FALSE(fc2 & fV);
    }
}

TEST(MachineAluExhaustive, IncDecPreserveCarry)
{
    AluHarness inc("inc r16"), dec("dec r16");
    for (unsigned a = 0; a < 256; a++) {
        auto [r1, f1] = inc.run(a, 0, fC);
        ASSERT_TRUE(f1 & fC) << "inc must not touch C";
        auto [r2, f2] = dec.run(a, 0, fC);
        ASSERT_TRUE(f2 & fC) << "dec must not touch C";
        (void)r1;
        (void)r2;
    }
}

TEST(MachineAluExhaustive, LogicOpsAllInputs)
{
    AluHarness and_h("and r16, r17"), or_h("or r16, r17"),
        eor_h("eor r16, r17");
    for (unsigned a = 0; a < 256; a += 3) {
        for (unsigned b = 0; b < 256; b += 3) {
            auto [ra, fa] = and_h.run(a, b, fC);
            ASSERT_EQ(ra, a & b);
            ASSERT_FALSE(fa & fV);
            ASSERT_TRUE(fa & fC);  // logic ops keep C
            auto [ro, fo] = or_h.run(a, b, 0);
            ASSERT_EQ(ro, a | b);
            ASSERT_EQ(bool(fo & fZ), (a | b) == 0);
            auto [rx, fx] = eor_h.run(a, b, 0);
            ASSERT_EQ(rx, a ^ b);
            ASSERT_EQ(bool(fx & fN), bool((a ^ b) & 0x80));
        }
    }
}

TEST(MachineAluExhaustive, AdiwSbiwSampled)
{
    // 16-bit immediate add/sub over a dense sample of pair values and
    // all immediates.
    AluHarness adiw("adiw r24, 17"), sbiw("sbiw r24, 17");
    for (unsigned v = 0; v < 0x10000; v += 251) {
        adiw.m.setRegPair(24, v);
        adiw.m.setSreg(0);
        adiw.m.setPc(0);
        adiw.m.step();
        ASSERT_EQ(adiw.m.regPair(24), uint16_t(v + 17)) << v;
        ASSERT_EQ(bool(adiw.m.sreg() & fC), v + 17 > 0xffff) << v;
        ASSERT_EQ(bool(adiw.m.sreg() & fZ), uint16_t(v + 17) == 0) << v;

        sbiw.m.setRegPair(24, v);
        sbiw.m.setSreg(0);
        sbiw.m.setPc(0);
        sbiw.m.step();
        ASSERT_EQ(sbiw.m.regPair(24), uint16_t(v - 17)) << v;
        ASSERT_EQ(bool(sbiw.m.sreg() & fC), v < 17) << v;
    }
}
