/**
 * @file
 * Tests for the Montgomery x-only ladder and twisted Edwards
 * arithmetic, including the cross-family consistency checks: the
 * Montgomery OPF curve against its Weierstrass image, and the Edwards
 * OPF curve against its Montgomery twin.
 */

#include <gtest/gtest.h>

#include "curves/standard_curves.hh"

using namespace jaavr;

namespace
{

void
expectEq(const AffinePoint &a, const AffinePoint &b, const char *what)
{
    EXPECT_EQ(a.inf, b.inf) << what;
    if (!a.inf && !b.inf) {
        EXPECT_EQ(a.x, b.x) << what;
        EXPECT_EQ(a.y, b.y) << what;
    }
}

} // anonymous namespace

TEST(MontgomeryOpf, ParametersAreAsConstructed)
{
    const MontgomeryCurve &c = montgomeryOpfCurve();
    // (A+2)/4 is a small constant, the property the paper's doubling
    // cost (3M + 2S with one small operand) relies on.
    EXPECT_LE(c.a24(), 1024u);
    EXPECT_EQ(c.field().fromUint(4u * c.a24()),
              c.field().add(c.coeffA(), BigUInt(2)));
}

TEST(MontgomeryOpf, PointsOnCurve)
{
    const MontgomeryCurve &c = montgomeryOpfCurve();
    Rng rng(80);
    for (int i = 0; i < 10; i++)
        EXPECT_TRUE(c.onCurve(c.randomPoint(rng)));
    EXPECT_TRUE(c.onCurve(montgomeryOpfBasePoint()));
}

TEST(MontgomeryOpf, LadderMatchesWeierstrassImage)
{
    // Map the curve to its birationally equivalent Weierstrass curve,
    // multiply there with an independently implemented method, map
    // back, and compare x-coordinates.
    const MontgomeryCurve &c = montgomeryOpfCurve();
    WeierstrassCurve w = c.toWeierstrass();
    Rng rng(81);
    for (int i = 0; i < 6; i++) {
        AffinePoint p = c.randomPoint(rng);
        AffinePoint pw = c.mapToWeierstrass(p);
        ASSERT_TRUE(w.onCurve(pw));
        BigUInt k = BigUInt::randomBits(rng, 160);
        if (k.isZero())
            k = BigUInt(3);

        auto x_ladder = c.ladder(k, p.x);
        AffinePoint rw = w.mulNaf(k, pw);
        if (rw.inf) {
            EXPECT_FALSE(x_ladder.has_value());
        } else {
            AffinePoint rm = c.mapFromWeierstrass(rw);
            ASSERT_TRUE(x_ladder.has_value());
            EXPECT_EQ(*x_ladder, rm.x);
            // Round-trip of the maps is the identity.
            expectEq(c.mapToWeierstrass(rm), rw, "map round-trip");
        }
    }
}

TEST(MontgomeryOpf, LadderSmallScalars)
{
    const MontgomeryCurve &c = montgomeryOpfCurve();
    WeierstrassCurve w = c.toWeierstrass();
    Rng rng(82);
    AffinePoint p = c.randomPoint(rng);
    AffinePoint pw = c.mapToWeierstrass(p);
    for (uint64_t k = 1; k <= 12; k++) {
        auto x = c.ladder(BigUInt(k), p.x);
        AffinePoint rw = w.mulBinary(BigUInt(k), pw);
        ASSERT_TRUE(x.has_value()) << k;
        EXPECT_EQ(*x, c.mapFromWeierstrass(rw).x) << k;
    }
    EXPECT_FALSE(c.ladder(BigUInt(0), p.x).has_value());
}

TEST(MontgomeryOpf, LadderIsScalarCommutative)
{
    // x(k1 * k2 * P) computed in either order agrees: the ECDH
    // property the quickstart example relies on.
    const MontgomeryCurve &c = montgomeryOpfCurve();
    Rng rng(83);
    BigUInt x = montgomeryOpfBasePoint().x;
    for (int i = 0; i < 5; i++) {
        BigUInt k1 = BigUInt(1) + BigUInt::randomBits(rng, 155);
        BigUInt k2 = BigUInt(1) + BigUInt::randomBits(rng, 155);
        auto xa = c.ladder(k1, x);
        ASSERT_TRUE(xa.has_value());
        auto xab = c.ladder(k2, *xa);
        auto xb = c.ladder(k2, x);
        ASSERT_TRUE(xb.has_value());
        auto xba = c.ladder(k1, *xb);
        ASSERT_TRUE(xab.has_value());
        ASSERT_TRUE(xba.has_value());
        EXPECT_EQ(*xab, *xba);
    }
}

TEST(MontgomeryOpf, XzPrimitivesMatchLadder)
{
    const MontgomeryCurve &c = montgomeryOpfCurve();
    const PrimeField &f = c.field();
    Rng rng(84);
    AffinePoint p = c.randomPoint(rng);
    // 2P via xzDbl == ladder with k=2.
    XzPoint pp{p.x, BigUInt(1)};
    XzPoint d = c.xzDbl(pp);
    auto x2 = c.ladder(BigUInt(2), p.x);
    ASSERT_TRUE(x2.has_value());
    EXPECT_EQ(f.mul(d.x, f.inv(d.z)), *x2);
    // 3P via diffAdd(2P, P; P) == ladder k=3.
    XzPoint t = c.xzDiffAdd(d, pp, p.x);
    auto x3 = c.ladder(BigUInt(3), p.x);
    ASSERT_TRUE(x3.has_value());
    EXPECT_EQ(f.mul(t.x, f.inv(t.z)), *x3);
}

TEST(Montgomery, RejectsBadParameters)
{
    // A = 2 makes A^2 - 4 = 0.
    EXPECT_DEATH(MontgomeryCurve(paperOpfField(), BigUInt(2), BigUInt(1),
                                 "bad"),
                 "singular");
    // (A+2)/4 not an integer.
    EXPECT_DEATH(MontgomeryCurve(paperOpfField(), BigUInt(3), BigUInt(1),
                                 "bad"),
                 "small integer");
}

TEST(EdwardsOpf, CompleteAndConsistent)
{
    const EdwardsCurve &c = edwardsOpfCurve();
    EXPECT_TRUE(c.isComplete());
    EXPECT_TRUE(c.onCurve(c.identity()));
    EXPECT_TRUE(c.onCurve(edwardsOpfBasePoint()));
}

TEST(EdwardsOpf, GroupLawBasics)
{
    const EdwardsCurve &c = edwardsOpfCurve();
    Rng rng(85);
    for (int i = 0; i < 10; i++) {
        AffinePoint p = c.randomPoint(rng);
        AffinePoint q = c.randomPoint(rng);
        EXPECT_TRUE(c.onCurve(p));

        auto pe = c.toExtended(p);
        auto qe = c.toExtended(q);
        AffinePoint pq = c.toAffine(c.add(pe, qe));
        AffinePoint qp = c.toAffine(c.add(qe, pe));
        EXPECT_EQ(pq.x, qp.x);
        EXPECT_EQ(pq.y, qp.y);
        EXPECT_TRUE(c.onCurve(pq));

        // Unified law: add(P, P) == dbl(P).
        AffinePoint d1 = c.toAffine(c.add(pe, pe));
        AffinePoint d2 = c.toAffine(c.dbl(pe, true));
        EXPECT_EQ(d1.x, d2.x);
        EXPECT_EQ(d1.y, d2.y);

        // P + (-P) = identity; completeness means no special-casing.
        AffinePoint z = c.toAffine(c.add(pe, c.toExtended(c.negate(p))));
        EXPECT_TRUE(c.isIdentity(z));

        // Identity is neutral.
        AffinePoint pi = c.toAffine(c.add(pe, c.toExtended(c.identity())));
        EXPECT_EQ(pi.x, p.x);
        EXPECT_EQ(pi.y, p.y);
    }
}

TEST(EdwardsOpf, MixedAdditionMatchesFull)
{
    const EdwardsCurve &c = edwardsOpfCurve();
    Rng rng(86);
    for (int i = 0; i < 20; i++) {
        AffinePoint p = c.randomPoint(rng);
        AffinePoint q = c.randomPoint(rng);
        auto pe = c.toExtended(p);
        AffinePoint full = c.toAffine(c.add(pe, c.toExtended(q)));
        AffinePoint mixed = c.toAffine(
            c.addMixed(pe, q, c.precomputeTd2(q)));
        EXPECT_EQ(full.x, mixed.x);
        EXPECT_EQ(full.y, mixed.y);
    }
}

TEST(EdwardsOpf, MultipliersAgree)
{
    const EdwardsCurve &c = edwardsOpfCurve();
    Rng rng(87);
    for (int i = 0; i < 6; i++) {
        AffinePoint p = c.randomPoint(rng);
        BigUInt k = BigUInt::randomBits(rng, 160);
        if (k.isZero())
            k = BigUInt(9);
        AffinePoint r = c.mulBinary(k, p);
        AffinePoint rn = c.mulNaf(k, p);
        AffinePoint rd = c.mulDaaa(k, p);
        EXPECT_EQ(r.x, rn.x);
        EXPECT_EQ(r.y, rn.y);
        EXPECT_EQ(r.x, rd.x);
        EXPECT_EQ(r.y, rd.y);
        EXPECT_TRUE(c.onCurve(r));
    }
}

TEST(EdwardsOpf, MatchesMontgomeryTwin)
{
    // The Edwards OPF curve was built as the birational twin of the
    // Montgomery OPF curve: scalar multiplication must agree through
    // the map u = (1+y)/(1-y).
    const EdwardsCurve &e = edwardsOpfCurve();
    const MontgomeryCurve &m = montgomeryOpfCurve();
    Rng rng(88);
    for (int i = 0; i < 5; i++) {
        AffinePoint p = e.randomPoint(rng);
        if (p.x.isZero() || p.y.isOne())
            continue;
        AffinePoint pm = edwardsToMontgomery(p);
        ASSERT_TRUE(m.onCurve(pm));

        BigUInt k = BigUInt(1) + BigUInt::randomBits(rng, 158);
        AffinePoint re = e.mulNaf(k, p);
        auto xm = m.ladder(k, pm.x);
        if (e.isIdentity(re) || re.y.isOne() || re.x.isZero()) {
            continue;  // exceptional image; skip
        }
        ASSERT_TRUE(xm.has_value());
        EXPECT_EQ(edwardsToMontgomery(re).x, *xm);
    }
}

TEST(Edwards, RejectsWrongA)
{
    EXPECT_DEATH(EdwardsCurve(paperOpfField(), BigUInt(1), BigUInt(5),
                              "bad"),
                 "a = -1");
}

TEST(Edwards, ScalarHomomorphism)
{
    const EdwardsCurve &c = edwardsOpfCurve();
    Rng rng(89);
    AffinePoint p = c.randomPoint(rng);
    BigUInt k1 = BigUInt::randomBits(rng, 80);
    BigUInt k2 = BigUInt::randomBits(rng, 80);
    AffinePoint lhs = c.mulBinary(k1 + k2, p);
    AffinePoint rhs = c.toAffine(
        c.add(c.toExtended(c.mulBinary(k1, p)),
              c.toExtended(c.mulBinary(k2, p))));
    EXPECT_EQ(lhs.x, rhs.x);
    EXPECT_EQ(lhs.y, rhs.y);
}
