/**
 * @file
 * End-to-end RSP debug sessions over the in-process loopback
 * transport — no sockets, no external gdb, fully deterministic.
 *
 * The main scenario is the acceptance script of the debug subsystem:
 * load the OPF-160 image in ISE mode, arrange a Montgomery
 * multiplication call over the wire, hit a breakpoint inside the mul,
 * read and modify registers and SRAM through packets, single-step
 * across MAC-ISE instructions, hit a data watchpoint on the result
 * buffer, run to the exit sentinel, check the (modified) result
 * against the host field model, drive the monitor commands, and
 * receive a T-stop for an injected illegal-opcode trap. The session
 * transcript is logged to DEBUG_session.log (a CI artifact).
 */

#include <gtest/gtest.h>

#include <fstream>

#include "avrasm/assembler.hh"
#include "avrgen/opf_harness.hh"
#include "debug/server.hh"
#include "field/opf_field.hh"
#include "nt/opf_prime.hh"
#include "obs/flight.hh"
#include "obs/trace.hh"
#include "support/logging.hh"
#include "support/random.hh"

using namespace jaavr;

namespace
{

/** A scripted gdb: sends frames, pumps the server, decodes replies. */
struct RspClient
{
    RspClient(GdbServer &srv, LoopbackTransport &wire)
        : srv(srv), wire(wire)
    {}

    GdbServer &srv;
    LoopbackTransport &wire;
    RspDecoder dec;
    std::vector<RspEvent> events;
    size_t next = 0;
    bool noAck = false;
    std::vector<std::string> console; ///< decoded `O` packet texts
    int naksSeen = 0;
    int acksSeen = 0;

    void
    pump()
    {
        srv.poll();
        std::string bytes = wire.clientTake();
        if (bytes.empty())
            return;
        std::vector<RspEvent> ev = dec.feed(bytes);
        events.insert(events.end(), ev.begin(), ev.end());
    }

    /** Pump until a (non-console) reply packet arrives. */
    std::string
    waitPacket()
    {
        for (int spins = 0; spins < 200000; spins++) {
            while (next < events.size()) {
                RspEvent ev = events[next++];
                if (ev.kind == RspEvent::Kind::Ack) {
                    acksSeen++;
                    continue;
                }
                if (ev.kind == RspEvent::Kind::Nak) {
                    naksSeen++;
                    continue;
                }
                if (ev.kind != RspEvent::Kind::Packet)
                    continue;
                if (!noAck)
                    wire.clientSend("+");
                std::vector<uint8_t> text;
                if (ev.payload.size() > 1 && ev.payload[0] == 'O' &&
                    rspUnhexBytes(
                        std::string_view(ev.payload).substr(1), text)) {
                    console.emplace_back(text.begin(), text.end());
                    continue;
                }
                return ev.payload;
            }
            pump();
        }
        ADD_FAILURE() << "timed out waiting for a reply packet";
        return "<timeout>";
    }

    std::string
    request(const std::string &payload)
    {
        wire.clientSend(rspFrame(payload));
        return waitPacket();
    }

    /** `monitor <cmd>`: qRcmd round trip, output decoded. */
    std::string
    monitor(const std::string &cmd)
    {
        std::string reply = request(
            "qRcmd," +
            rspHexBytes(reinterpret_cast<const uint8_t *>(cmd.data()),
                        cmd.size()));
        std::vector<uint8_t> text;
        if (!rspUnhexBytes(reply, text)) {
            ADD_FAILURE() << "non-hex monitor reply: " << reply;
            return reply;
        }
        return {text.begin(), text.end()};
    }
};

std::vector<uint8_t>
wordsToBytes(const OpfField::Words &w)
{
    std::vector<uint8_t> out;
    for (uint32_t word : w)
        for (int i = 0; i < 4; i++)
            out.push_back(static_cast<uint8_t>(word >> (8 * i)));
    return out;
}

OpfField::Words
bytesToWords(const std::vector<uint8_t> &bytes, size_t s)
{
    OpfField::Words out(s, 0);
    for (size_t i = 0; i < bytes.size(); i++)
        out[i / 4] |= static_cast<uint32_t>(bytes[i]) << (8 * (i % 4));
    return out;
}

std::string
hexOf(const std::vector<uint8_t> &bytes)
{
    return rspHexBytes(bytes.data(), bytes.size());
}

/** Word address of the @p n-th instruction at/after @p start. */
uint32_t
nthBoundary(const Machine &m, uint32_t start, unsigned n)
{
    uint32_t a = start;
    for (unsigned i = 0; i < n; i++)
        a += m.decoded(a).inst.words;
    return a;
}

} // anonymous namespace

TEST(GdbServer, FullLoopbackDebugSession)
{
    const OpfPrime &prime = paperOpfPrime();
    OpfField field(prime);
    const size_t s = prime.k / 32 + 1; // 5 words = 160 bits
    Rng rng(0x160);
    OpfField::Words a = field.fromBig(BigUInt::randomBits(rng, prime.k));
    OpfField::Words b = field.fromBig(BigUInt::randomBits(rng, prime.k));

    OpfAvrLibrary lib(prime, CpuMode::ISE);
    Machine &m = lib.machine();
    DebugTarget target(m);
    LoopbackTransport wire;
    GdbServer srv(target, wire);
    SymbolTable syms = lib.symbols();
    srv.setSymbols(syms);
    CallGraphProfiler prof(m, syms);
    srv.setProfiler(&prof);
    std::FILE *log = fopen("DEBUG_session.log", "w");
    ASSERT_NE(log, nullptr);
    srv.setLog(log);

    RspClient gdb(srv, wire);

    // --- handshake, still in ack mode -----------------------------
    std::string supported = gdb.request("qSupported:swbreak+");
    EXPECT_NE(supported.find("PacketSize="), std::string::npos);
    EXPECT_NE(supported.find("QStartNoAckMode+"), std::string::npos);
    EXPECT_NE(supported.find("swbreak+"), std::string::npos);
    EXPECT_GT(gdb.acksSeen, 0) << "server must ack in ack mode";

    // A corrupted frame draws a NAK, and the retransmit goes through.
    gdb.wire.clientSend("$qC#00");
    gdb.wire.clientSend(rspFrame("qC"));
    EXPECT_EQ(gdb.waitPacket(), "QC1");
    EXPECT_GT(gdb.naksSeen, 0);

    EXPECT_EQ(gdb.request("QStartNoAckMode"), "OK");
    gdb.noAck = true;
    EXPECT_EQ(gdb.request("Hg0"), "OK");
    std::string initial = gdb.request("?");
    EXPECT_EQ(initial.rfind("T05", 0), 0u) << initial;

    // --- find opf_mul via the symbol table ------------------------
    uint32_t mulEntry = 0;
    for (const auto &[addr, name] : syms.entries())
        if (name == "opf_mul")
            mulEntry = addr;
    ASSERT_NE(mulEntry, 0u);

    // --- marshal the call entirely over the wire ------------------
    // Operands at the fixed OPF harness addresses...
    std::vector<uint8_t> abytes = wordsToBytes(a);
    std::vector<uint8_t> bbytes = wordsToBytes(b);
    EXPECT_EQ(gdb.request(csprintf("M%x,%zx:%s",
                                   kGdbDataBase + OpfMemoryMap::aAddr,
                                   abytes.size(),
                                   hexOf(abytes).c_str())),
              "OK");
    EXPECT_EQ(gdb.request(csprintf("M%x,%zx:%s",
                                   kGdbDataBase + OpfMemoryMap::bAddr,
                                   bbytes.size(),
                                   hexOf(bbytes).c_str())),
              "OK");
    // ...read one back through the other memory packet.
    EXPECT_EQ(gdb.request(csprintf("m%x,%zx",
                                   kGdbDataBase + OpfMemoryMap::aAddr,
                                   abytes.size())),
              hexOf(abytes));

    // The exit sentinel Machine::call() would push, via a memory
    // write and an SP register write; Y/Z point at the operands.
    EXPECT_EQ(gdb.request(csprintf("M%x,2:ffff", kGdbDataBase + 0x10fe)),
              "OK");
    EXPECT_EQ(gdb.request("P21=fd10"), "OK"); // SP = 0x10fd
    EXPECT_EQ(gdb.request(csprintf("P1c=%02x",
                                   OpfMemoryMap::aAddr & 0xff)),
              "OK");
    EXPECT_EQ(gdb.request(csprintf("P1d=%02x",
                                   OpfMemoryMap::aAddr >> 8)),
              "OK");
    EXPECT_EQ(gdb.request(csprintf("P1e=%02x",
                                   OpfMemoryMap::bAddr & 0xff)),
              "OK");
    EXPECT_EQ(gdb.request(csprintf("P1f=%02x",
                                   OpfMemoryMap::bAddr >> 8)),
              "OK");
    // PC = opf_mul entry (gdb PCs are byte addresses).
    std::vector<uint8_t> pcBytes = {
        static_cast<uint8_t>((2 * mulEntry)),
        static_cast<uint8_t>((2 * mulEntry) >> 8),
        static_cast<uint8_t>((2 * mulEntry) >> 16), 0};
    EXPECT_EQ(gdb.request("P22=" + hexOf(pcBytes)), "OK");
    EXPECT_EQ(gdb.request("p22"), hexOf(pcBytes));

    // --- modify an operand byte over the wire ---------------------
    abytes[3] ^= 0x5a;
    EXPECT_EQ(gdb.request(csprintf(
                  "M%x,1:%02x", kGdbDataBase + OpfMemoryMap::aAddr + 3,
                  abytes[3])),
              "OK");
    OpfField::Words aMod = bytesToWords(abytes, s);

    // --- breakpoint a few instructions into the mul ---------------
    uint32_t bpWord = nthBoundary(m, mulEntry, 5);
    EXPECT_EQ(gdb.request(csprintf("Z0,%x,2", 2 * bpWord)), "OK");
    gdb.wire.clientSend(rspFrame("c"));
    std::string stop = gdb.waitPacket();
    EXPECT_EQ(stop.rfind("T05", 0), 0u) << stop;
    EXPECT_NE(stop.find("swbreak"), std::string::npos) << stop;
    EXPECT_EQ(m.pc(), bpWord);

    // Registers through the g packet: SP and PC where we put them.
    std::string regs = gdb.request("g");
    ASSERT_EQ(regs.size(), 2 * DebugTarget::kRegBlockLen);
    std::vector<uint8_t> regBytes;
    ASSERT_TRUE(rspUnhexBytes(regs, regBytes));
    EXPECT_EQ(regBytes[28], OpfMemoryMap::aAddr & 0xff); // Y low
    EXPECT_EQ(regBytes[29], OpfMemoryMap::aAddr >> 8);   // Y high
    uint32_t pcByte = regBytes[35] | (regBytes[36] << 8) |
                      (regBytes[37] << 16) |
                      (static_cast<uint32_t>(regBytes[38]) << 24);
    EXPECT_EQ(pcByte, 2 * bpWord);

    // Write a scratch register, read it back both ways, restore.
    std::string r25 = gdb.request("p19");
    EXPECT_EQ(gdb.request("P19=7e"), "OK");
    EXPECT_EQ(gdb.request("p19"), "7e");
    EXPECT_EQ(m.reg(25), 0x7e);
    EXPECT_EQ(gdb.request("P19=" + r25), "OK");

    // --- single-step across the MAC-ISE instructions --------------
    uint64_t macs0 = m.mac().totalMacs();
    bool crossed = false;
    for (int i = 0; i < 400 && !crossed; i++) {
        std::string step = gdb.request("s");
        ASSERT_EQ(step.rfind("T05", 0), 0u) << step;
        crossed = m.mac().totalMacs() > macs0;
    }
    EXPECT_TRUE(crossed)
        << "no MAC-ISE instruction crossed while stepping opf_mul";

    // --- watchpoint on the result buffer --------------------------
    EXPECT_EQ(gdb.request(csprintf("z0,%x,2", 2 * bpWord)), "OK");
    EXPECT_EQ(gdb.request(csprintf("Z2,%x,%zx",
                                   kGdbDataBase +
                                       OpfMemoryMap::resultAddr,
                                   4 * s)),
              "OK");
    gdb.wire.clientSend(rspFrame("c"));
    stop = gdb.waitPacket();
    EXPECT_EQ(stop.rfind("T05", 0), 0u) << stop;
    EXPECT_NE(stop.find(csprintf("watch:%x;",
                                 kGdbDataBase +
                                     OpfMemoryMap::resultAddr)),
              std::string::npos)
        << stop;

    // --- run to completion and check the product ------------------
    EXPECT_EQ(gdb.request(csprintf("z2,%x,%zx",
                                   kGdbDataBase +
                                       OpfMemoryMap::resultAddr,
                                   4 * s)),
              "OK");
    gdb.wire.clientSend(rspFrame("vCont;c"));
    EXPECT_EQ(gdb.waitPacket(), "W00");
    std::string resHex = gdb.request(csprintf(
        "m%x,%zx", kGdbDataBase + OpfMemoryMap::resultAddr, 4 * s));
    std::vector<uint8_t> resBytes;
    ASSERT_TRUE(rspUnhexBytes(resHex, resBytes));
    EXPECT_EQ(bytesToWords(resBytes, s), field.montMul(aMod, b))
        << "debugged mul result does not match the host field model";

    // --- monitor commands -----------------------------------------
    EXPECT_NE(gdb.monitor("help").find("profile"), std::string::npos);
    EXPECT_NE(gdb.monitor("stats").find("instructions"),
              std::string::npos);
    EXPECT_NE(gdb.monitor("symbols").find("opf_mul"),
              std::string::npos);
    EXPECT_FALSE(gdb.monitor("profile").empty());
    std::string metrics = gdb.monitor("metrics");
    EXPECT_NE(metrics.find("iss_cycles"), std::string::npos);
    EXPECT_NE(metrics.find("iss_op_retired"), std::string::npos);
    EXPECT_NE(gdb.monitor("bogus").find("unknown command"),
              std::string::npos);
    EXPECT_NE(gdb.monitor("reset").find("reset"), std::string::npos);
    EXPECT_EQ(m.stats().instructions, 0u);

    // --- injected illegal-opcode trap -> T04 + console text -------
    // Plant the reserved opcode 0x9404 in unused flash by writing it
    // through the debugger, then jump there.
    EXPECT_EQ(gdb.request(csprintf("M%x,2:0494", 2 * 0x7000)), "OK");
    EXPECT_EQ(m.flashWord(0x7000), 0x9404);
    std::vector<uint8_t> trapPc = {0x00, 0xe0, 0x00, 0x00}; // 2*0x7000
    EXPECT_EQ(gdb.request("P22=" + hexOf(trapPc)), "OK");
    gdb.wire.clientSend(rspFrame("c"));
    stop = gdb.waitPacket();
    EXPECT_EQ(stop.rfind("T04", 0), 0u) << stop; // SIGILL
    ASSERT_FALSE(gdb.console.empty());
    EXPECT_NE(gdb.console.back().find("illegal"), std::string::npos)
        << gdb.console.back();
    EXPECT_NE(gdb.monitor("trap").find("illegal"), std::string::npos);

    // --- detach ---------------------------------------------------
    EXPECT_EQ(gdb.request("D"), "OK");
    EXPECT_FALSE(srv.alive());
    EXPECT_FALSE(srv.poll());
    fclose(log);

    // The session log is a CI artifact; it must have real content.
    std::FILE *back = fopen("DEBUG_session.log", "r");
    ASSERT_NE(back, nullptr);
    fseek(back, 0, SEEK_END);
    EXPECT_GT(ftell(back), 1000);
    fclose(back);
}

TEST(GdbServer, InterruptStopsAContinue)
{
    Machine m(CpuMode::FAST);
    m.loadProgram(assemble("loop:\nrjmp loop\n", "spin").words, 0);
    DebugTarget target(m);
    LoopbackTransport wire;
    GdbServer srv(target, wire);
    srv.setSliceCycles(10000);
    RspClient gdb(srv, wire);

    EXPECT_EQ(gdb.request("QStartNoAckMode"), "OK");
    gdb.noAck = true;
    gdb.wire.clientSend(rspFrame("c"));
    for (int i = 0; i < 5; i++)
        gdb.pump(); // let it spin a few slices
    uint64_t before = m.stats().cycles;
    EXPECT_GT(before, 0u);
    gdb.wire.clientSend("\x03");
    std::string stop = gdb.waitPacket();
    EXPECT_EQ(stop.rfind("T02", 0), 0u) << stop; // SIGINT
    EXPECT_FALSE(srv.running());

    // The session survives and the machine continues on demand.
    gdb.wire.clientSend(rspFrame("c"));
    for (int i = 0; i < 3; i++)
        gdb.pump();
    gdb.wire.clientSend("\x03");
    EXPECT_EQ(gdb.waitPacket().rfind("T02", 0), 0u);
    EXPECT_GT(m.stats().cycles, before);

    gdb.wire.clientSend(rspFrame("k"));
    for (int i = 0; i < 3 && srv.alive(); i++)
        gdb.pump();
    EXPECT_FALSE(srv.alive());
}

TEST(GdbServer, FlightAndTraceMonitorCommands)
{
    Machine m(CpuMode::CA);
    m.loadProgram(assemble("nop\nret\n", "mon").words, 0);
    DebugTarget target(m);
    LoopbackTransport wire;
    GdbServer srv(target, wire);
    RspClient gdb(srv, wire);
    EXPECT_EQ(gdb.request("QStartNoAckMode"), "OK");
    gdb.noAck = true;

    // Nothing attached yet: the commands degrade with a hint, not
    // an "unknown command" error.
    EXPECT_NE(gdb.monitor("flight").find("no flight recorder attached"),
              std::string::npos);
    EXPECT_NE(gdb.monitor("trace status").find("no span tracer"),
              std::string::npos);

    // Attach both, seed one flight event, and drive the commands the
    // way jaavr-gdb --flight wires them up.
    std::string dumpPath =
        std::string(testing::TempDir()) + "/jaavr_gdb_flight.json";
    std::remove(dumpPath.c_str());
    obs::FlightRecorder flight;
    flight.setDumpPath(dumpPath);
    flight.source("iss")->record(42, "trap", "illegal opcode", 6, 0);
    obs::SpanTracer tracer;
    srv.setFlightRecorder(&flight, dumpPath);
    srv.setTracer(&tracer);

    EXPECT_NE(gdb.monitor("help").find("flight dump"),
              std::string::npos);
    std::string status = gdb.monitor("flight");
    EXPECT_NE(status.find("1 sources"), std::string::npos) << status;
    EXPECT_NE(status.find("1 events"), std::string::npos) << status;

    std::string dump = gdb.monitor("flight dump");
    EXPECT_NE(dump.find("flight dump written to"), std::string::npos)
        << dump;
    EXPECT_NE(dump.find(dumpPath), std::string::npos) << dump;
    std::ifstream in(dumpPath);
    ASSERT_TRUE(in.good()) << dumpPath;
    std::string header;
    ASSERT_TRUE(std::getline(in, header));
    EXPECT_NE(header.find("\"reason\":\"gdb_monitor\""),
              std::string::npos)
        << header;
    // On-demand dumps are not anomalies: the trigger count stays 0.
    EXPECT_EQ(flight.triggers(), 0u);

    std::string trace = gdb.monitor("trace status");
    EXPECT_NE(trace.find("tracer idle"), std::string::npos) << trace;
    tracer.setEnabled(true);
    EXPECT_NE(gdb.monitor("trace status").find("tracer enabled"),
              std::string::npos);
    std::remove(dumpPath.c_str());
}

TEST(GdbServer, UnknownPacketsGetEmptyReplies)
{
    Machine m(CpuMode::CA);
    m.loadProgram(assemble("nop\nret\n", "t").words, 0);
    DebugTarget target(m);
    LoopbackTransport wire;
    GdbServer srv(target, wire);
    RspClient gdb(srv, wire);
    EXPECT_EQ(gdb.request("QStartNoAckMode"), "OK");
    gdb.noAck = true;
    EXPECT_EQ(gdb.request("qXfer:features:read::0,0"), "");
    EXPECT_EQ(gdb.request("vMustReplyEmpty"), "");
    EXPECT_EQ(gdb.request("Z9,0,0"), "");
    EXPECT_EQ(gdb.request("m10000000000000000000,4"), "E01");
    EXPECT_EQ(gdb.request("P22=zz"), "E01");
    EXPECT_EQ(gdb.request("vCont?"), "vCont;c;C;s;S");
}
