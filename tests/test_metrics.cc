/**
 * @file
 * MetricsRegistry semantics (identity, labels, histogram bucketing,
 * deterministic snapshot ordering) and the JSON-lines round trip
 * through the flat-record parser in support/json.hh.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "net/session.hh"
#include "support/json.hh"
#include "support/metrics.hh"

using namespace jaavr;

TEST(Metrics, CounterIdentityByNameAndLabels)
{
    MetricsRegistry reg;
    reg.counter("ops").inc();
    reg.counter("ops").inc(41);
    EXPECT_EQ(reg.counter("ops").value(), 42u);

    // Different label sets are different instances.
    reg.counter("ops", {{"mode", "ise"}}).inc(7);
    EXPECT_EQ(reg.counter("ops").value(), 42u);
    EXPECT_EQ(reg.counter("ops", {{"mode", "ise"}}).value(), 7u);
    EXPECT_EQ(reg.counter("ops", {{"mode", "ca"}}).value(), 0u);
    EXPECT_EQ(reg.size(), 3u);

    reg.clear();
    EXPECT_EQ(reg.size(), 0u);
    EXPECT_EQ(reg.counter("ops").value(), 0u);
}

TEST(Metrics, GaugeHoldsLastValue)
{
    MetricsRegistry reg;
    reg.gauge("depth").set(3);
    reg.gauge("depth").set(1.5);
    EXPECT_DOUBLE_EQ(reg.gauge("depth").value(), 1.5);
}

TEST(Metrics, HistogramBucketBoundaries)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram("cycles", {1, 10});
    h.observe(0.5);
    h.observe(1); // boundary lands in its own bucket (le semantics)
    h.observe(5);
    h.observe(10);
    h.observe(11);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.sum(), 27.5);
    EXPECT_DOUBLE_EQ(h.mean(), 5.5);
    ASSERT_EQ(h.bounds().size(), 2u);
    EXPECT_EQ(h.bucketCount(0), 2u); // <= 1
    EXPECT_EQ(h.bucketCount(1), 2u); // <= 10
    EXPECT_EQ(h.bucketCount(2), 1u); // overflow

    // Weighted observation.
    h.observe(3, 10);
    EXPECT_EQ(h.count(), 15u);
    EXPECT_EQ(h.bucketCount(1), 12u);

    // Re-lookup keeps the original bounds.
    Histogram &again = reg.histogram("cycles", {100, 200});
    EXPECT_EQ(&again, &h);
    EXPECT_EQ(again.bounds().size(), 2u);
    EXPECT_DOUBLE_EQ(again.bounds()[1], 10);
}

TEST(Metrics, HistogramPercentileInterpolatesInsideBuckets)
{
    Histogram h({10, 20});
    EXPECT_DOUBLE_EQ(h.percentile(50), 0); // empty histogram

    h.observe(5, 10);  // 10 observations <= 10
    h.observe(15, 10); // 10 observations in (10, 20]
    // Ranks interpolate linearly inside the crossing bucket
    // (histogram_quantile semantics: bucket [0,10] spans ranks 0..10).
    EXPECT_DOUBLE_EQ(h.percentile(25), 5);
    EXPECT_DOUBLE_EQ(h.percentile(50), 10);
    EXPECT_DOUBLE_EQ(h.percentile(75), 15);
    EXPECT_DOUBLE_EQ(h.percentile(100), 20);
    // Out-of-range p clamps.
    EXPECT_DOUBLE_EQ(h.percentile(-5), h.percentile(0));
    EXPECT_DOUBLE_EQ(h.percentile(250), 20);

    // Overflow observations clamp to the largest finite bound: the
    // histogram cannot resolve beyond its buckets.
    h.observe(9999, 80);
    EXPECT_DOUBLE_EQ(h.percentile(99), 20);
}

TEST(Metrics, TextSnapshotIsDeterministicallyOrdered)
{
    MetricsRegistry reg;
    reg.counter("zeta").inc();
    reg.counter("alpha", {{"k", "2"}}).inc();
    reg.counter("alpha", {{"k", "1"}}).inc();
    reg.gauge("mid").set(4);

    std::string snap = reg.textSnapshot();
    size_t a1 = snap.find("alpha{k=\"1\"}");
    size_t a2 = snap.find("alpha{k=\"2\"}");
    size_t z = snap.find("zeta");
    size_t m = snap.find("mid");
    ASSERT_NE(a1, std::string::npos);
    ASSERT_NE(a2, std::string::npos);
    ASSERT_NE(z, std::string::npos);
    ASSERT_NE(m, std::string::npos);
    EXPECT_LT(a1, a2); // label order breaks the name tie
    EXPECT_LT(a2, z);  // counters sort by name

    // Two identical registries produce byte-identical snapshots.
    MetricsRegistry reg2;
    reg2.gauge("mid").set(4);
    reg2.counter("alpha", {{"k", "1"}}).inc();
    reg2.counter("alpha", {{"k", "2"}}).inc();
    reg2.counter("zeta").inc();
    EXPECT_EQ(reg2.textSnapshot(), snap);
}

TEST(Metrics, JsonSnapshotRoundTrips)
{
    MetricsRegistry reg;
    reg.counter("macs", {{"alg", "2"}}).inc(200);
    reg.gauge("sp").set(0x10ff);
    reg.histogram("lat", {4}, {{"mode", "ise"}}).observe(2, 3);

    JsonLine stamp;
    stamp.str("bench", "unit").num("schema_version", uint64_t(2));
    std::vector<JsonLine> lines = reg.jsonSnapshot(stamp);
    ASSERT_EQ(lines.size(), 3u);

    bool saw_counter = false, saw_gauge = false, saw_hist = false;
    for (const JsonLine &line : lines) {
        JsonObject obj;
        std::string err;
        ASSERT_TRUE(parseJsonLine(line.text(), obj, &err)) << err;
        // The stamp rides on every record.
        ASSERT_TRUE(obj.at("bench").isStr());
        EXPECT_EQ(obj.at("bench").str, "unit");
        EXPECT_EQ(obj.at("schema_version").num, 2);
        const std::string &type = obj.at("type").str;
        if (type == "counter") {
            saw_counter = true;
            EXPECT_EQ(obj.at("metric").str, "macs");
            EXPECT_EQ(obj.at("alg").str, "2");
            EXPECT_EQ(obj.at("value").num, 200);
        } else if (type == "gauge") {
            saw_gauge = true;
            EXPECT_EQ(obj.at("metric").str, "sp");
            EXPECT_EQ(obj.at("value").num, 0x10ff);
        } else if (type == "histogram") {
            saw_hist = true;
            EXPECT_EQ(obj.at("metric").str, "lat");
            EXPECT_EQ(obj.at("mode").str, "ise");
            EXPECT_EQ(obj.at("count").num, 3);
            EXPECT_EQ(obj.at("sum").num, 6);
            EXPECT_EQ(obj.at("le_4").num, 3);
            EXPECT_EQ(obj.at("le_inf").num, 0);
        }
    }
    EXPECT_TRUE(saw_counter && saw_gauge && saw_hist);
}

TEST(Metrics, SessionPublishRoundTripsThroughJson)
{
    // Two directly wired sessions generate real traffic, publish
    // into a registry under node/peer labels, and every record must
    // survive the JSON-lines round trip with its labels flattened.
    net::ReliableSession a{net::SessionConfig{}};
    net::ReliableSession b{net::SessionConfig{}};
    a.setTransmit([&](std::vector<uint8_t> bytes, net::SimTime t) {
        b.onWire(bytes, t);
    });
    b.setTransmit([&](std::vector<uint8_t> bytes, net::SimTime t) {
        a.onWire(bytes, t);
    });
    size_t delivered = 0;
    b.setDeliver([&](const net::Frame &, net::SimTime) {
        delivered++;
    });
    a.reset(1);
    b.reset(1);
    for (uint32_t i = 0; i < 5; i++)
        ASSERT_TRUE(a.send(net::FrameType::Data, {uint8_t(i)}, i));
    ASSERT_EQ(delivered, 5u);

    MetricsRegistry reg;
    MetricLabels labels{{"node", "a"}, {"peer", "b"}};
    a.publishMetrics(reg, labels);
    // Publishing is set-to-max: a second pass with unchanged stats
    // must not double-count.
    a.publishMetrics(reg, labels);

    uint64_t sent = 0, inflight = ~uint64_t(0), epoch = 0;
    for (const JsonLine &line : reg.jsonSnapshot()) {
        JsonObject obj;
        std::string err;
        ASSERT_TRUE(parseJsonLine(line.text(), obj, &err)) << err;
        EXPECT_EQ(obj.at("node").str, "a");
        EXPECT_EQ(obj.at("peer").str, "b");
        const std::string &metric = obj.at("metric").str;
        if (metric == "net_session_frames_sent")
            sent = uint64_t(obj.at("value").num);
        else if (metric == "net_session_inflight")
            inflight = uint64_t(obj.at("value").num);
        else if (metric == "net_session_epoch")
            epoch = uint64_t(obj.at("value").num);
    }
    EXPECT_EQ(sent, 5u);
    EXPECT_EQ(inflight, 0u); // everything acked on the clean wire
    EXPECT_EQ(epoch, 1u);
}

TEST(Metrics, WriteJsonLinesAppendsParsableRecords)
{
    std::string path =
        testing::TempDir() + "/jaavr_metrics_roundtrip.json";
    std::remove(path.c_str());

    MetricsRegistry reg;
    reg.counter("a").inc(1);
    reg.counter("b").inc(2);
    ASSERT_TRUE(reg.writeJsonLines(path));
    ASSERT_TRUE(reg.writeJsonLines(path)); // appends, second snapshot

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    size_t n = 0;
    while (std::getline(in, line)) {
        JsonObject obj;
        std::string err;
        EXPECT_TRUE(parseJsonLine(line, obj, &err)) << err;
        n++;
    }
    EXPECT_EQ(n, 4u);
    std::remove(path.c_str());
}

TEST(JsonParse, AcceptsEmitterOutputWithEscapes)
{
    JsonLine line;
    line.str("k", "a\"b\\c\nd\te\x01" "f")
        .num("n", -12.5)
        .num("u", uint64_t(77));
    JsonObject obj;
    std::string err;
    ASSERT_TRUE(parseJsonLine(line.text(), obj, &err)) << err;
    EXPECT_EQ(obj.at("k").str, "a\"b\\c\nd\te\x01" "f");
    EXPECT_DOUBLE_EQ(obj.at("n").num, -12.5);
    EXPECT_DOUBLE_EQ(obj.at("u").num, 77);

    // Non-finite numbers are emitted as null and parse as Null.
    JsonLine nan_line;
    nan_line.num("x", std::nan(""));
    ASSERT_TRUE(parseJsonLine(nan_line.text(), obj, &err)) << err;
    EXPECT_EQ(obj.at("x").kind, JsonValue::Kind::Null);
}

TEST(JsonParse, AcceptsLiteralsAndWhitespace)
{
    JsonObject obj;
    ASSERT_TRUE(parseJsonLine("{}", obj));
    EXPECT_TRUE(obj.empty());
    ASSERT_TRUE(parseJsonLine(
        "  { \"a\" : true , \"b\" : false , \"c\" : null }  ", obj));
    EXPECT_EQ(obj.at("a").kind, JsonValue::Kind::Bool);
    EXPECT_TRUE(obj.at("a").boolean);
    EXPECT_FALSE(obj.at("b").boolean);
    EXPECT_EQ(obj.at("c").kind, JsonValue::Kind::Null);
}

TEST(JsonParse, RejectsMalformedInput)
{
    JsonObject obj;
    EXPECT_FALSE(parseJsonLine("", obj));
    EXPECT_FALSE(parseJsonLine("   ", obj));
    EXPECT_FALSE(parseJsonLine("{\"a\":1} trailing", obj));
    EXPECT_FALSE(parseJsonLine("{\"a\":{}}", obj));  // nested object
    EXPECT_FALSE(parseJsonLine("{\"a\":[1]}", obj)); // array
    EXPECT_FALSE(parseJsonLine("{\"a\":1", obj));    // unterminated
    EXPECT_FALSE(parseJsonLine("{\"a\":12..3}", obj));
    EXPECT_FALSE(parseJsonLine("{\"a\":\"\x01\"}", obj)); // raw control
    EXPECT_FALSE(parseJsonLine("{\"a\":\"\\u12\"}", obj));
    EXPECT_FALSE(parseJsonLine("{a:1}", obj)); // unquoted key

    std::string err;
    EXPECT_FALSE(parseJsonLine("{\"a\":nope}", obj, &err));
    EXPECT_FALSE(err.empty());
}
