/**
 * @file
 * Network frame codec tests. Like the RSP codec tests this file is
 * mostly hostile input: random byte soup, truncated frames, lying
 * length fields, bit flips, duplicated deliveries, and frames split
 * at every possible byte boundary. The decoder must classify all of
 * it as events — never abort, never lose resynchronisation for the
 * following frame — because on the simulated lossy link this is the
 * normal diet, not the exception.
 */

#include <gtest/gtest.h>

#include "net/frame.hh"
#include "support/random.hh"

using namespace jaavr;
using namespace jaavr::net;

namespace
{

Frame
sampleFrame(uint32_t seq = 7)
{
    Frame f;
    f.type = FrameType::Data;
    f.session = 3;
    f.seq = seq;
    f.ack = 5;
    f.payload = {0xde, 0xad, 0xbe, 0xef, uint8_t(seq)};
    return f;
}

/** Feed everything, expect exactly one good frame back. */
Frame
singleFrame(FrameDecoder &dec, const std::vector<uint8_t> &bytes)
{
    std::vector<FrameEvent> ev = dec.feed(bytes);
    EXPECT_EQ(ev.size(), 1u);
    if (ev.empty())
        return {};
    EXPECT_EQ(int(ev[0].kind), int(FrameEvent::Kind::Frame))
        << "reason: " << ev[0].reason;
    return ev[0].frame;
}

} // anonymous namespace

TEST(NetFrame, RoundTrips)
{
    FrameDecoder dec;
    Frame in = sampleFrame();
    Frame out = singleFrame(dec, encodeFrame(in));
    EXPECT_EQ(int(out.type), int(in.type));
    EXPECT_EQ(out.session, in.session);
    EXPECT_EQ(out.seq, in.seq);
    EXPECT_EQ(out.ack, in.ack);
    EXPECT_EQ(out.payload, in.payload);
    EXPECT_FALSE(dec.midFrame());
    EXPECT_EQ(dec.stats().frames, 1u);
    EXPECT_EQ(dec.stats().garbageBytes, 0u);
}

TEST(NetFrame, EmptyAndMaxPayloads)
{
    FrameDecoder dec;
    Frame empty;
    empty.type = FrameType::Ack;
    empty.ack = 42;
    EXPECT_EQ(singleFrame(dec, encodeFrame(empty)).payload.size(), 0u);

    Frame big = sampleFrame();
    big.payload.assign(kFrameMaxPayload, 0x5a);
    EXPECT_EQ(singleFrame(dec, encodeFrame(big)).payload.size(),
              kFrameMaxPayload);
}

TEST(NetFrame, ManyFramesInOneClump)
{
    FrameDecoder dec;
    std::vector<uint8_t> wire;
    for (uint32_t i = 0; i < 10; i++) {
        std::vector<uint8_t> one = encodeFrame(sampleFrame(i));
        wire.insert(wire.end(), one.begin(), one.end());
    }
    std::vector<FrameEvent> ev = dec.feed(wire);
    ASSERT_EQ(ev.size(), 10u);
    for (uint32_t i = 0; i < 10; i++)
        EXPECT_EQ(ev[i].frame.seq, i);
}

TEST(NetFrame, ByteAtATimeDelivery)
{
    FrameDecoder dec;
    std::vector<uint8_t> wire = encodeFrame(sampleFrame());
    size_t got = 0;
    for (uint8_t b : wire)
        got += dec.feed(&b, 1).size();
    EXPECT_EQ(got, 1u);
    EXPECT_FALSE(dec.midFrame());
}

TEST(NetFrame, EverySplitPoint)
{
    // Two frames, cut into two clumps at every possible boundary.
    std::vector<uint8_t> wire = encodeFrame(sampleFrame(1));
    std::vector<uint8_t> second = encodeFrame(sampleFrame(2));
    wire.insert(wire.end(), second.begin(), second.end());
    for (size_t cut = 0; cut <= wire.size(); cut++) {
        FrameDecoder dec;
        std::vector<FrameEvent> ev =
            dec.feed(wire.data(), cut);
        std::vector<FrameEvent> more =
            dec.feed(wire.data() + cut, wire.size() - cut);
        ev.insert(ev.end(), more.begin(), more.end());
        ASSERT_EQ(ev.size(), 2u) << "cut at " << cut;
        EXPECT_EQ(ev[0].frame.seq, 1u);
        EXPECT_EQ(ev[1].frame.seq, 2u);
    }
}

TEST(NetFrame, BitFlipAnywhereIsRejectedAndResyncs)
{
    std::vector<uint8_t> wire = encodeFrame(sampleFrame());
    std::vector<uint8_t> follow = encodeFrame(sampleFrame(9));
    // A flip in the length field can inflate the claimed extent past
    // the real input, leaving the decoder legitimately waiting for
    // bytes; a sync-free zero pad of one maximum extent forces every
    // pending extent to complete (and fail its CRC) so the decoder
    // rescans the buffered bytes and recovers the follower.
    const std::vector<uint8_t> pad(
        kFrameHeaderSize + kFrameMaxPayload + kFrameCrcSize, 0);
    for (size_t bit = 0; bit < wire.size() * 8; bit++) {
        FrameDecoder dec;
        std::vector<uint8_t> bad = wire;
        bad[bit / 8] ^= uint8_t(1) << (bit % 8);
        bad.insert(bad.end(), follow.begin(), follow.end());
        std::vector<FrameEvent> ev = dec.feed(bad);
        std::vector<FrameEvent> flushed = dec.feed(pad);
        ev.insert(ev.end(), flushed.begin(), flushed.end());
        // The corrupted frame must never decode as-is; the following
        // pristine frame must always survive.
        size_t good = 0;
        for (const FrameEvent &e : ev)
            if (e.kind == FrameEvent::Kind::Frame) {
                good++;
                EXPECT_EQ(e.frame.seq, 9u) << "bit " << bit;
            }
        EXPECT_EQ(good, 1u) << "bit " << bit;
    }
}

TEST(NetFrame, TruncatedFrameThenGoodFrame)
{
    FrameDecoder dec;
    std::vector<uint8_t> wire = encodeFrame(sampleFrame());
    wire.resize(wire.size() / 2); // lose the tail
    std::vector<uint8_t> follow = encodeFrame(sampleFrame(9));
    wire.insert(wire.end(), follow.begin(), follow.end());
    std::vector<FrameEvent> ev = dec.feed(wire);
    // The truncated head's surviving header bytes splice with the
    // follower's first bytes into a fake header whose claimed extent
    // may outrun the input; flush with a sync-free max-extent pad so
    // the decoder judges (and rejects) it, then rescans.
    std::vector<FrameEvent> flushed = dec.feed(std::vector<uint8_t>(
        kFrameHeaderSize + kFrameMaxPayload + kFrameCrcSize, 0));
    ev.insert(ev.end(), flushed.begin(), flushed.end());
    // The truncated head must never decode; the follower must.
    size_t good = 0;
    for (const FrameEvent &e : ev)
        if (e.kind == FrameEvent::Kind::Frame) {
            good++;
            EXPECT_EQ(e.frame.seq, 9u);
        }
    EXPECT_EQ(good, 1u);
}

TEST(NetFrame, LyingLengthFieldCannotHideAFrame)
{
    // A header claiming an oversized payload must be rejected
    // immediately — not make the decoder wait for bytes that never
    // come — and a genuine frame right after the sync word of the
    // liar must still be recovered.
    std::vector<uint8_t> wire = encodeFrame(sampleFrame());
    wire[16] = 0xff;
    wire[17] = 0xff; // length 65535 > kFrameMaxPayload
    std::vector<uint8_t> follow = encodeFrame(sampleFrame(9));
    wire.insert(wire.end(), follow.begin(), follow.end());
    FrameDecoder dec;
    std::vector<FrameEvent> ev = dec.feed(wire);
    ASSERT_FALSE(ev.empty());
    EXPECT_EQ(ev[0].reason, "bad length");
    EXPECT_EQ(int(ev.back().kind), int(FrameEvent::Kind::Frame));
    EXPECT_EQ(ev.back().frame.seq, 9u);
    EXPECT_EQ(dec.stats().badLength, 1u);
    EXPECT_FALSE(dec.midFrame());
}

TEST(NetFrame, BadVersionRejectedAndCounted)
{
    std::vector<uint8_t> wire = encodeFrame(sampleFrame());
    wire[2] = kFrameVersion + 1;
    std::vector<uint8_t> follow = encodeFrame(sampleFrame(9));
    wire.insert(wire.end(), follow.begin(), follow.end());
    FrameDecoder dec;
    std::vector<FrameEvent> ev = dec.feed(wire);
    ASSERT_FALSE(ev.empty());
    EXPECT_EQ(ev[0].reason, "bad version");
    EXPECT_EQ(ev.back().frame.seq, 9u);
    EXPECT_EQ(dec.stats().badVersion, 1u);
}

TEST(NetFrame, GarbageBetweenFramesIsCountedAndSkipped)
{
    FrameDecoder dec;
    std::vector<uint8_t> wire = {0x00, 0x11, 0x22, 0x33};
    std::vector<uint8_t> f = encodeFrame(sampleFrame());
    wire.insert(wire.end(), f.begin(), f.end());
    wire.insert(wire.end(), {0x44, 0x55});
    std::vector<uint8_t> g = encodeFrame(sampleFrame(9));
    wire.insert(wire.end(), g.begin(), g.end());
    std::vector<FrameEvent> ev = dec.feed(wire);
    ASSERT_EQ(ev.size(), 2u);
    EXPECT_EQ(ev[0].frame.seq, 7u);
    EXPECT_EQ(ev[1].frame.seq, 9u);
    EXPECT_EQ(dec.stats().garbageBytes, 6u);
}

TEST(NetFrame, DuplicatedDeliveryDecodesTwice)
{
    // Link-level duplication hands the same datagram in twice; the
    // codec is stateless across frames and must return both copies
    // (dedup belongs to the session's sequence numbers).
    FrameDecoder dec;
    std::vector<uint8_t> wire = encodeFrame(sampleFrame());
    wire.insert(wire.end(), wire.begin(), wire.end());
    std::vector<FrameEvent> ev = dec.feed(wire);
    ASSERT_EQ(ev.size(), 2u);
    EXPECT_EQ(ev[0].frame.seq, ev[1].frame.seq);
}

TEST(NetFrame, RandomByteSoupNeverAborts)
{
    Rng rng(123);
    FrameDecoder dec;
    for (int round = 0; round < 200; round++) {
        size_t len = rng.below(257);
        std::vector<uint8_t> soup(len);
        for (uint8_t &b : soup)
            b = uint8_t(rng.below(256));
        dec.feed(soup); // must not crash or grow without bound
    }
    // The soup's tail may fake a frame start whose claimed extent is
    // still waiting for bytes; a max-extent zero flush (no sync words
    // in it) forces that to resolve, after which the decoder must be
    // fully resynchronised: a pristine frame decodes cleanly.
    std::vector<uint8_t> pad(kFrameHeaderSize + kFrameMaxPayload +
                                 kFrameCrcSize,
                             0);
    dec.feed(pad);
    EXPECT_FALSE(dec.midFrame());
    std::vector<FrameEvent> ev = dec.feed(encodeFrame(sampleFrame(2)));
    ASSERT_EQ(ev.size(), 1u);
    EXPECT_EQ(int(ev[0].kind), int(FrameEvent::Kind::Frame));
    EXPECT_EQ(ev[0].frame.seq, 2u);
}

TEST(NetFrame, SoupWithEmbeddedFramesRecoversThem)
{
    // Interleave genuine frames with random garbage and check every
    // one of them is recovered in order.
    Rng rng(77);
    FrameDecoder dec;
    std::vector<uint8_t> wire;
    const uint32_t kFrames = 50;
    for (uint32_t i = 0; i < kFrames; i++) {
        size_t glen = rng.below(40);
        for (size_t j = 0; j < glen; j++)
            wire.push_back(uint8_t(rng.below(256)));
        std::vector<uint8_t> f = encodeFrame(sampleFrame(i));
        wire.insert(wire.end(), f.begin(), f.end());
    }
    // Feed in random clumps.
    std::vector<uint32_t> seen;
    size_t pos = 0;
    while (pos < wire.size()) {
        size_t n = std::min(wire.size() - pos, size_t(rng.below(64)) + 1);
        for (const FrameEvent &e : dec.feed(wire.data() + pos, n))
            if (e.kind == FrameEvent::Kind::Frame)
                seen.push_back(e.frame.seq);
        pos += n;
    }
    // Garbage may fake a sync word whose claimed extent runs past
    // the end of the stream, leaving the last real frame buffered;
    // zero padding (which contains no sync) completes any such
    // extent, fails its CRC, and lets the resync recover the frame.
    std::vector<uint8_t> pad(kFrameHeaderSize + kFrameMaxPayload +
                                 kFrameCrcSize,
                             0);
    for (const FrameEvent &e : dec.feed(pad))
        if (e.kind == FrameEvent::Kind::Frame)
            seen.push_back(e.frame.seq);
    ASSERT_EQ(seen.size(), kFrames);
    for (uint32_t i = 0; i < kFrames; i++)
        EXPECT_EQ(seen[i], i);
}

TEST(NetFrame, OversizedPayloadIsClampedByEncoder)
{
    Frame f = sampleFrame();
    f.payload.assign(kFrameMaxPayload + 100, 0xab);
    std::vector<uint8_t> wire = encodeFrame(f);
    FrameDecoder dec;
    Frame out = singleFrame(dec, wire);
    EXPECT_EQ(out.payload.size(), kFrameMaxPayload);
}
