/**
 * @file
 * Tests for the AVR machine model: instruction semantics, SREG flags,
 * stack and control flow, CA vs FAST timing, and execution statistics.
 */

#include <gtest/gtest.h>

#include "avr/machine.hh"
#include "avrasm/assembler.hh"

using namespace jaavr;

namespace
{

/** Assemble, load, run from word 0 until RET; return the machine. */
std::unique_ptr<Machine>
run(const std::string &src, CpuMode mode = CpuMode::CA,
    const std::function<void(Machine &)> &setup = {})
{
    auto m = std::make_unique<Machine>(mode);
    m->loadProgram(assemble(src + "\nret\n", "test").words);
    if (setup)
        setup(*m);
    m->call(0);
    return m;
}

} // anonymous namespace

TEST(Machine, LdiAndMov)
{
    auto m = run("ldi r16, 0xab\nmov r0, r16");
    EXPECT_EQ(m->reg(16), 0xab);
    EXPECT_EQ(m->reg(0), 0xab);
}

TEST(Machine, AddCarryChain)
{
    // 0x00ff + 0x0001 across two bytes = 0x0100.
    auto m = run(R"(
        ldi r16, 0xff
        ldi r17, 0x00
        ldi r18, 0x01
        ldi r19, 0x00
        add r16, r18
        adc r17, r19
    )");
    EXPECT_EQ(m->reg(16), 0x00);
    EXPECT_EQ(m->reg(17), 0x01);
}

TEST(Machine, AddFlags)
{
    // 0x80 + 0x80 = 0x00 with C=1, V=1, Z=1, N=0.
    auto m = run("ldi r16, 0x80\nldi r17, 0x80\nadd r16, r17");
    uint8_t s = m->sreg();
    EXPECT_TRUE(s & 0x01);   // C
    EXPECT_TRUE(s & 0x02);   // Z
    EXPECT_FALSE(s & 0x04);  // N
    EXPECT_TRUE(s & 0x08);   // V
}

TEST(Machine, SubAndCompareFlags)
{
    // 5 - 7 borrows.
    auto m = run("ldi r16, 5\nldi r17, 7\nsub r16, r17");
    EXPECT_EQ(m->reg(16), 0xfe);
    EXPECT_TRUE(m->sreg() & 0x01);   // C (borrow)
    EXPECT_TRUE(m->sreg() & 0x04);   // N

    // cp equal sets Z.
    m = run("ldi r16, 9\nldi r17, 9\ncp r16, r17");
    EXPECT_TRUE(m->sreg() & 0x02);
}

TEST(Machine, SbcZPropagation)
{
    // 16-bit compare: 0x0100 - 0x0100: Z stays set through cpc.
    auto m = run(R"(
        ldi r16, 0x00
        ldi r17, 0x01
        ldi r18, 0x00
        ldi r19, 0x01
        sub r16, r18
        sbc r17, r19
    )");
    EXPECT_TRUE(m->sreg() & 0x02);
    EXPECT_EQ(m->reg(17), 0);
}

TEST(Machine, MulProducesR1R0)
{
    auto m = run("ldi r20, 200\nldi r21, 100\nmul r20, r21");
    // 200 * 100 = 20000 = 0x4e20.
    EXPECT_EQ(m->reg(0), 0x20);
    EXPECT_EQ(m->reg(1), 0x4e);
    EXPECT_FALSE(m->sreg() & 0x01);  // C = bit15 = 0
}

TEST(Machine, MulsSignedProduct)
{
    // -2 * 3 = -6 = 0xfffa.
    auto m = run("ldi r16, 0xfe\nldi r17, 3\nmuls r16, r17");
    EXPECT_EQ(m->reg(0), 0xfa);
    EXPECT_EQ(m->reg(1), 0xff);
    EXPECT_TRUE(m->sreg() & 0x01);  // C = bit15
}

TEST(Machine, MovwAdiwSbiw)
{
    auto m = run(R"(
        ldi r26, 0x34
        ldi r27, 0x12
        movw r30, r26
        adiw r30, 63
        sbiw r26, 1
    )");
    EXPECT_EQ(m->z(), 0x1234 + 63);
    EXPECT_EQ(m->x(), 0x1233);
}

TEST(Machine, LogicAndShifts)
{
    auto m = run(R"(
        ldi r16, 0b1100
        ldi r17, 0b1010
        and r16, r17
        ldi r18, 0x81
        lsr r18
        ldi r19, 0x81
        asr r19
        ldi r20, 0x0f
        swap r20
        ldi r21, 0xf0
        com r21
        ldi r22, 1
        neg r22
    )");
    EXPECT_EQ(m->reg(16), 0b1000);
    EXPECT_EQ(m->reg(18), 0x40);
    EXPECT_EQ(m->reg(19), 0xc0);
    EXPECT_EQ(m->reg(20), 0xf0);
    EXPECT_EQ(m->reg(21), 0x0f);
    EXPECT_EQ(m->reg(22), 0xff);
    EXPECT_TRUE(m->sreg() & 0x01);  // C from neg of non-zero
}

TEST(Machine, RorUsesCarry)
{
    auto m = run("sec\nldi r16, 0x02\nror r16");
    EXPECT_EQ(m->reg(16), 0x81);
    EXPECT_FALSE(m->sreg() & 0x01);
}

TEST(Machine, LoadStoreAndPointers)
{
    auto m = run(R"(
        .equ BUF = 0x0200
        ldi r26, lo8(BUF)
        ldi r27, hi8(BUF)
        ldi r16, 0x11
        st X+, r16
        ldi r16, 0x22
        st X+, r16
        ldi r28, lo8(BUF)
        ldi r29, hi8(BUF)
        ldd r0, Y+0
        ldd r1, Y+1
        sts 0x0300, r1
        lds r2, 0x0300
    )");
    EXPECT_EQ(m->reg(0), 0x11);
    EXPECT_EQ(m->reg(1), 0x22);
    EXPECT_EQ(m->reg(2), 0x22);
    EXPECT_EQ(m->readData(0x0200), 0x11);
    EXPECT_EQ(m->x(), 0x0202);
}

TEST(Machine, PreDecrementPostIncrement)
{
    auto m = run(R"(
        .equ BUF = 0x0240
        ldi r30, lo8(BUF)
        ldi r31, hi8(BUF)
        ldi r16, 0xaa
        st Z+, r16
        ldi r16, 0xbb
        st Z, r16
        ld r5, -Z
    )");
    EXPECT_EQ(m->reg(5), 0xaa);
    EXPECT_EQ(m->z(), 0x0240);
    EXPECT_EQ(m->readData(0x0241), 0xbb);
}

TEST(Machine, PushPopStack)
{
    auto m = run(R"(
        ldi r16, 0x5a
        push r16
        ldi r16, 0x00
        pop r17
    )");
    EXPECT_EQ(m->reg(17), 0x5a);
}

TEST(Machine, CallRetNesting)
{
    auto m = run(R"(
            call sub1
            ldi r20, 3
            rjmp done
        sub1:
            call sub2
            ldi r21, 2
            ret
        sub2:
            ldi r22, 1
            ret
        done:
    )");
    EXPECT_EQ(m->reg(20), 3);
    EXPECT_EQ(m->reg(21), 2);
    EXPECT_EQ(m->reg(22), 1);
}

TEST(Machine, BranchLoop)
{
    // Sum 1..10 via a loop.
    auto m = run(R"(
        ldi r16, 10
        ldi r17, 0
    loop:
        add r17, r16
        dec r16
        brne loop
    )");
    EXPECT_EQ(m->reg(17), 55);
}

TEST(Machine, SkipInstructions)
{
    auto m = run(R"(
        ldi r16, 0b100
        sbrc r16, 2
        ldi r17, 1      ; skipped? no: bit 2 is set -> not skipped
        sbrc r16, 1
        ldi r18, 1      ; bit 1 clear -> skipped
        sbrs r16, 2
        ldi r19, 1      ; bit 2 set -> skipped
    )");
    EXPECT_EQ(m->reg(17), 1);
    EXPECT_EQ(m->reg(18), 0);
    EXPECT_EQ(m->reg(19), 0);
}

TEST(Machine, SkipOverTwoWordInstruction)
{
    auto m = run(R"(
        ldi r16, 0
        sbrc r16, 0
        call never
        ldi r17, 7
        rjmp end
    never:
        ldi r18, 9
    end:
    )");
    EXPECT_EQ(m->reg(17), 7);
    EXPECT_EQ(m->reg(18), 0);
}

TEST(Machine, InOutSreg)
{
    auto m = run(R"(
        sec
        in r16, 0x3f
        out 0x3c, r16
    )");
    EXPECT_EQ(m->reg(16) & 1, 1);
    EXPECT_EQ(m->maccr(), m->reg(16));
}

TEST(Machine, BstBld)
{
    auto m = run(R"(
        ldi r16, 0b1000
        bst r16, 3
        ldi r17, 0
        bld r17, 6
    )");
    EXPECT_EQ(m->reg(17), 0x40);
}

TEST(Machine, LpmReadsFlash)
{
    auto m = run(R"(
            ldi r30, lo8(tbl * 2)
            ldi r31, hi8(tbl * 2)
            lpm r16, Z+
            lpm r17, Z
            rjmp end
        tbl:
            .dw 0xbeef
        end:
    )");
    EXPECT_EQ(m->reg(16), 0xef);
    EXPECT_EQ(m->reg(17), 0xbe);
}

TEST(MachineTiming, CaMatchesDatasheet)
{
    // ldi(1) + mul(2) + ld(2) + st(2) + push(2) + pop(2) + nop(1)
    // + adiw(2) + ret(4): executed linearly.
    const char *src = R"(
        ldi r26, 0x00
        ldi r27, 0x02
        ldi r16, 5
        mul r16, r16
        ld r17, X
        st X, r17
        push r17
        pop r18
        nop
        adiw r26, 1
    )";
    Machine m(CpuMode::CA);
    m.loadProgram(assemble(std::string(src) + "\nret\n", "t").words);
    uint64_t c = m.call(0);
    // 3*ldi(3) + mul(2) + ld(2) + st(2) + push(2) + pop(2) + nop(1)
    // + adiw(2) + ret(4) = 20.
    EXPECT_EQ(c, 20u);
}

TEST(MachineTiming, FastImprovesLoadsStoresMul)
{
    const char *src = R"(
        ldi r26, 0x00
        ldi r27, 0x02
        ldi r16, 5
        mul r16, r16
        ld r17, X
        st X, r17
        push r17
        pop r18
        nop
        adiw r26, 1
    )";
    Machine m(CpuMode::FAST);
    m.loadProgram(assemble(std::string(src) + "\nret\n", "t").words);
    uint64_t c = m.call(0);
    // mul, ld, st, push, pop now 1 cycle each: 20 - 5 = 15.
    EXPECT_EQ(c, 15u);
}

TEST(MachineTiming, BranchTakenCostsExtra)
{
    // Loop of 3 iterations: dec(1) + brne(2 taken, 1 final).
    Machine m(CpuMode::CA);
    m.loadProgram(assemble(R"(
        ldi r16, 3
    loop:
        dec r16
        brne loop
        ret
    )", "t").words);
    uint64_t c = m.call(0);
    // ldi(1) + 3*dec(3) + 2 taken branches(4) + 1 not-taken(1) + ret(4).
    EXPECT_EQ(c, 1 + 3 + 4 + 1 + 4u);
}

TEST(MachineTiming, CallLdsTiming)
{
    Machine m(CpuMode::CA);
    m.loadProgram(assemble(R"(
            call f
            lds r16, 0x0200
            ret
        f:  ret
    )", "t").words);
    uint64_t c = m.call(0);
    // call(4) + ret(4) + lds(2) + ret(4) = 14.
    EXPECT_EQ(c, 14u);
}

TEST(Machine, StatsHistogram)
{
    auto m = run("ldi r16, 2\nldi r17, 3\nmul r16, r17\nnop");
    EXPECT_EQ(m->stats().count(Op::LDI), 2u);
    EXPECT_EQ(m->stats().count(Op::MUL), 1u);
    EXPECT_EQ(m->stats().count(Op::NOP), 1u);
    EXPECT_EQ(m->stats().count(Op::RET), 1u);
    EXPECT_EQ(m->stats().instructions, 5u);
}

TEST(Machine, CycleBudgetTraps)
{
    Machine m(CpuMode::CA);
    m.loadProgram(assemble("loop: rjmp loop", "t").words);
    RunResult r = m.call(0, 1000);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.trap.kind, TrapKind::CycleBudget);
    EXPECT_EQ(m.trap(), r.trap);
    // Recoverable: the machine is reusable after the trap.
    m.reset();
    m.loadProgram(assemble("ldi r16, 7\nret", "t").words);
    RunResult ok = m.call(0);
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(m.reg(16), 7);
}

TEST(Machine, InvalidOpcodeTraps)
{
    Machine m(CpuMode::CA);
    m.loadProgram({0x9404});  // reserved one-operand encoding
    RunResult r = m.call(0);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.trap.kind, TrapKind::IllegalOpcode);
    EXPECT_EQ(r.trap.pc, 0u);
    EXPECT_EQ(r.trap.addr, 0x9404u);
    EXPECT_EQ(r.cycles, 0u);  // the trapping instruction never retired
}

TEST(Machine, WriteReadBytesHelpers)
{
    Machine m(CpuMode::CA);
    m.writeBytes(0x0300, {1, 2, 3, 4});
    auto v = m.readBytes(0x0300, 4);
    EXPECT_EQ(v, (std::vector<uint8_t>{1, 2, 3, 4}));
}
