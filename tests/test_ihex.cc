/**
 * @file
 * Intel HEX reader/writer tests: round trips (chunked, high-address,
 * odd alignment), the words() flash view, and the full malformed-
 * record taxonomy — every rejection must come back as a false return
 * with a line-numbered error, never as an abort.
 */

#include <gtest/gtest.h>

#include "support/ihex.hh"
#include "support/random.hh"

using namespace jaavr;

namespace
{

IhexImage
roundTrip(const IhexImage &img, size_t record_len = 16)
{
    std::string text = writeIhex(img, record_len);
    IhexImage back;
    std::string err;
    EXPECT_TRUE(parseIhex(text, back, &err)) << err << "\n" << text;
    return back;
}

} // anonymous namespace

TEST(Ihex, EmptyImageRoundTrips)
{
    IhexImage img;
    EXPECT_EQ(writeIhex(img), ":00000001FF\n");
    EXPECT_EQ(roundTrip(img).chunks, img.chunks);
    EXPECT_EQ(img.byteCount(), 0u);
}

TEST(Ihex, SimpleRecordParses)
{
    // The canonical Wikipedia example record.
    IhexImage img;
    std::string err;
    ASSERT_TRUE(parseIhex(":0B0010006164647265737320676170A7\n"
                          ":00000001FF\n",
                          img, &err))
        << err;
    ASSERT_EQ(img.chunks.size(), 1u);
    EXPECT_EQ(img.chunks[0].addr, 0x10u);
    EXPECT_EQ(img.chunks[0].bytes,
              (std::vector<uint8_t>{'a', 'd', 'd', 'r', 'e', 's', 's',
                                    ' ', 'g', 'a', 'p'}));
}

TEST(Ihex, RandomImageRoundTrips)
{
    Rng rng(42);
    IhexImage img;
    for (int c = 0; c < 8; c++) {
        std::vector<uint8_t> bytes(1 + rng.below(300));
        for (uint8_t &b : bytes)
            b = static_cast<uint8_t>(rng.next32());
        img.add(static_cast<uint32_t>(rng.below(0x30000)), bytes);
    }
    for (size_t rec : {1u, 7u, 16u, 255u}) {
        IhexImage back = roundTrip(img, rec);
        EXPECT_EQ(back.chunks, img.chunks) << "record_len " << rec;
    }
}

TEST(Ihex, HighAddressesUseExtendedLinearRecords)
{
    IhexImage img;
    img.add(0x0001fffe, {0x11, 0x22, 0x33, 0x44});
    std::string text = writeIhex(img);
    // Crossing the 64 KiB page boundary needs two type-04 records.
    EXPECT_NE(text.find(":02000004000"), std::string::npos);
    IhexImage back = roundTrip(img);
    EXPECT_EQ(back.chunks, img.chunks);
    EXPECT_EQ(back.minAddr(), 0x0001fffeu);
    EXPECT_EQ(back.endAddr(), 0x00020002u);
}

TEST(Ihex, ExtendedSegmentAddressApplies)
{
    // Type-02 bases shift left by 4: 0x1000 -> 0x10000.
    IhexImage img;
    std::string err;
    ASSERT_TRUE(parseIhex(":020000021000EC\n"
                          ":02000000AABB99\n"
                          ":00000001FF\n",
                          img, &err))
        << err;
    ASSERT_EQ(img.chunks.size(), 1u);
    EXPECT_EQ(img.chunks[0].addr, 0x10000u);
    EXPECT_EQ(img.chunks[0].bytes, (std::vector<uint8_t>{0xaa, 0xbb}));
}

TEST(Ihex, OverlappingAddIsLastWriterWins)
{
    IhexImage img;
    img.add(0x100, {1, 2, 3, 4, 5, 6});
    img.add(0x102, {0xaa, 0xbb});
    ASSERT_EQ(img.chunks.size(), 1u);
    EXPECT_EQ(img.chunks[0].bytes,
              (std::vector<uint8_t>{1, 2, 0xaa, 0xbb, 5, 6}));
    // Adjacent chunks coalesce.
    img.add(0x106, {7});
    ASSERT_EQ(img.chunks.size(), 1u);
    EXPECT_EQ(img.byteCount(), 7u);
}

TEST(Ihex, FlattenFillsGaps)
{
    IhexImage img;
    img.add(0x10, {1, 2});
    img.add(0x15, {3});
    std::vector<uint8_t> flat = img.flatten(0xee);
    EXPECT_EQ(flat, (std::vector<uint8_t>{1, 2, 0xee, 0xee, 0xee, 3}));
}

TEST(Ihex, WordsViewIsLittleEndianAndAligned)
{
    IhexImage img;
    img.add(0x21, {0xbb, 0x34, 0x12}); // odd start address
    std::vector<uint16_t> w = img.words(0xff);
    EXPECT_EQ(img.loadWordAddr(), 0x10u);
    ASSERT_EQ(w.size(), 2u);
    EXPECT_EQ(w[0], 0xbbffu); // low byte padded with fill
    EXPECT_EQ(w[1], 0x1234u);
}

/* ---- malformed input: reject, never abort ---------------------- */

namespace
{

void
expectReject(const std::string &text, const char *what)
{
    IhexImage img;
    std::string err;
    EXPECT_FALSE(parseIhex(text, img, &err)) << what;
    EXPECT_FALSE(err.empty()) << what;
}

} // anonymous namespace

TEST(Ihex, MalformedRecordsAreRejected)
{
    expectReject("garbage\n:00000001FF\n", "no start code");
    expectReject(":0100000055\n:00000001FF\n", "truncated data");
    expectReject(":01000000555\n:00000001FF\n", "odd digit count");
    expectReject(":01000000GGAA\n:00000001FF\n", "non-hex digit");
    expectReject(":010000005500\n:00000001FF\n", "bad checksum");
    expectReject(":0100000655A4\n:00000001FF\n", "unknown record type");
    expectReject(":020000040000FA\n", "missing EOF");
    expectReject(":00000001FF\n:0100000055AA\n", "data after EOF");
    expectReject(":0100000155A9\n", "EOF record with data");
    expectReject(":01000004AA51\n:00000001FF\n", "short type-04");
    expectReject(":0100", "truncated header");
    expectReject(":\n:00000001FF\n", "bare colon");
}

TEST(Ihex, WhitespaceAndCrlfAreAccepted)
{
    IhexImage img;
    std::string err;
    ASSERT_TRUE(parseIhex("  :02000000AABB99\r\n"
                          "\n"
                          ":00000001FF\r\n",
                          img, &err))
        << err;
    EXPECT_EQ(img.byteCount(), 2u);
}

TEST(Ihex, FuzzedParserNeverAborts)
{
    Rng rng(0xbeef);
    const char alphabet[] = ":0123456789abcdefABCDEF\r\n xyz*}$#";
    for (int iter = 0; iter < 2000; iter++) {
        std::string text;
        size_t n = rng.below(120);
        for (size_t i = 0; i < n; i++)
            text += alphabet[rng.below(sizeof(alphabet) - 1)];
        IhexImage img;
        std::string err;
        parseIhex(text, img, &err); // must simply return
    }
    // Mutated valid records: flip one character at a time.
    IhexImage src;
    src.add(0x40, {1, 2, 3, 4, 5, 6, 7, 8});
    std::string good = writeIhex(src);
    for (size_t i = 0; i < good.size(); i++) {
        std::string bad = good;
        bad[i] ^= 0x11;
        IhexImage img;
        std::string err;
        parseIhex(bad, img, &err);
    }
}
