/**
 * @file
 * Tests for Weierstrass-curve arithmetic: group laws over secp160r1
 * (published constants give known-answer anchors) and the OPF curve,
 * plus the equivalence of all point-multiplication methods (binary,
 * NAF, DAAA, co-Z Montgomery ladder).
 */

#include <gtest/gtest.h>

#include "curves/standard_curves.hh"

using namespace jaavr;

namespace
{

void
expectEq(const AffinePoint &a, const AffinePoint &b, const char *what)
{
    EXPECT_EQ(a.inf, b.inf) << what;
    if (!a.inf && !b.inf) {
        EXPECT_EQ(a.x, b.x) << what;
        EXPECT_EQ(a.y, b.y) << what;
    }
}

} // anonymous namespace

TEST(Secp160r1Curve, GeneratorSanity)
{
    // The accessor itself panics if G is off-curve or n*G != O; this
    // also pins the constants.
    const CurveGenerator &g = secp160r1Generator();
    EXPECT_TRUE(secp160r1Curve().onCurve(g.g));
    EXPECT_EQ(g.order.bitLength(), 161u);
}

TEST(Secp160r1Curve, GroupLawBasics)
{
    const WeierstrassCurve &c = secp160r1Curve();
    Rng rng(70);
    for (int i = 0; i < 10; i++) {
        AffinePoint p = c.randomPoint(rng);
        AffinePoint q = c.randomPoint(rng);
        EXPECT_TRUE(c.onCurve(p));

        // P + Q = Q + P.
        auto pq = c.toAffine(c.addMixed(c.toJacobian(p), q));
        auto qp = c.toAffine(c.addMixed(c.toJacobian(q), p));
        expectEq(pq, qp, "commutativity");
        EXPECT_TRUE(c.onCurve(pq));

        // P + (-P) = O.
        auto zero = c.addMixed(c.toJacobian(p), c.negate(p));
        EXPECT_TRUE(zero.isInfinity());

        // 2P via dbl == P + P via full add path.
        auto d1 = c.toAffine(c.dbl(c.toJacobian(p)));
        auto d2 = c.toAffine(c.add(c.toJacobian(p), c.toJacobian(p)));
        expectEq(d1, d2, "doubling");
    }
}

TEST(Secp160r1Curve, Associativity)
{
    const WeierstrassCurve &c = secp160r1Curve();
    Rng rng(71);
    for (int i = 0; i < 10; i++) {
        auto p = c.toJacobian(c.randomPoint(rng));
        auto q = c.toJacobian(c.randomPoint(rng));
        auto r = c.toJacobian(c.randomPoint(rng));
        auto lhs = c.toAffine(c.add(c.add(p, q), r));
        auto rhs = c.toAffine(c.add(p, c.add(q, r)));
        expectEq(lhs, rhs, "associativity");
    }
}

TEST(Secp160r1Curve, InfinityHandling)
{
    const WeierstrassCurve &c = secp160r1Curve();
    Rng rng(72);
    AffinePoint p = c.randomPoint(rng);
    auto inf = JacobianPoint::infinity();
    expectEq(c.toAffine(c.add(inf, c.toJacobian(p))), p, "O + P");
    expectEq(c.toAffine(c.addMixed(inf, p)), p, "O madd P");
    EXPECT_TRUE(c.dbl(inf).isInfinity());
    EXPECT_TRUE(c.toAffine(inf).inf);
    expectEq(c.mulBinary(BigUInt(0), p), AffinePoint::infinity(), "0*P");
}

TEST(Secp160r1Curve, MultipliersAgree)
{
    const WeierstrassCurve &c = secp160r1Curve();
    Rng rng(73);
    for (int i = 0; i < 8; i++) {
        AffinePoint p = c.randomPoint(rng);
        BigUInt k = BigUInt::randomBits(rng, 160);
        if (k.isZero())
            k = BigUInt(1);
        AffinePoint r_bin = c.mulBinary(k, p);
        expectEq(c.mulNaf(k, p), r_bin, "NAF vs binary");
        expectEq(c.mulDaaa(k, p), r_bin, "DAAA vs binary");
        expectEq(c.mulLadder(k, p), r_bin, "co-Z ladder vs binary");
    }
}

TEST(Secp160r1Curve, SmallScalarsLadder)
{
    const WeierstrassCurve &c = secp160r1Curve();
    Rng rng(74);
    AffinePoint p = c.randomPoint(rng);
    for (uint64_t k = 1; k <= 17; k++) {
        expectEq(c.mulLadder(BigUInt(k), p), c.mulBinary(BigUInt(k), p),
                 "small-k ladder");
        expectEq(c.mulDaaa(BigUInt(k), p), c.mulBinary(BigUInt(k), p),
                 "small-k DAAA");
        expectEq(c.mulNaf(BigUInt(k), p), c.mulBinary(BigUInt(k), p),
                 "small-k NAF");
    }
}

TEST(Secp160r1Curve, ScalarHomomorphism)
{
    // (k1 + k2) P = k1 P + k2 P and (k1 k2) P = k1 (k2 P).
    const WeierstrassCurve &c = secp160r1Curve();
    Rng rng(75);
    AffinePoint p = c.randomPoint(rng);
    BigUInt k1 = BigUInt::randomBits(rng, 80);
    BigUInt k2 = BigUInt::randomBits(rng, 80);
    auto lhs = c.mulBinary(k1 + k2, p);
    auto rhs = c.toAffine(c.addMixed(c.toJacobian(c.mulBinary(k1, p)),
                                     c.mulBinary(k2, p)));
    expectEq(lhs, rhs, "additive");
    expectEq(c.mulBinary(k1 * k2, p), c.mulBinary(k1, c.mulBinary(k2, p)),
             "multiplicative");
}

TEST(Secp160r1Curve, OrderAnnihilatesAllMethods)
{
    const WeierstrassCurve &c = secp160r1Curve();
    const CurveGenerator &g = secp160r1Generator();
    EXPECT_TRUE(c.mulNaf(g.order, g.g).inf);
    // (n-1) G = -G.
    expectEq(c.mulNaf(g.order - BigUInt(1), g.g), c.negate(g.g), "(n-1)G");
}

TEST(WeierstrassOpf, CurveAndMultipliers)
{
    const WeierstrassCurve &c = weierstrassOpfCurve();
    EXPECT_TRUE(c.onCurve(weierstrassOpfBasePoint()));
    Rng rng(76);
    for (int i = 0; i < 5; i++) {
        AffinePoint p = c.randomPoint(rng);
        BigUInt k = BigUInt::randomBits(rng, 160);
        if (k.isZero())
            k = BigUInt(5);
        AffinePoint r = c.mulBinary(k, p);
        EXPECT_TRUE(c.onCurve(r));
        expectEq(c.mulNaf(k, p), r, "opf NAF");
        expectEq(c.mulLadder(k, p), r, "opf ladder");
        expectEq(c.mulDaaa(k, p), r, "opf DAAA");
    }
}

TEST(WeierstrassOpf, LiftXRejectsNonResidues)
{
    const WeierstrassCurve &c = weierstrassOpfCurve();
    Rng rng(77);
    int hits = 0, misses = 0;
    for (uint64_t x = 0; x < 40; x++) {
        if (c.liftX(BigUInt(x), rng))
            hits++;
        else
            misses++;
    }
    EXPECT_GT(hits, 5);
    EXPECT_GT(misses, 5);
}

TEST(Weierstrass, RejectsSingularCurve)
{
    // y^2 = x^3 has 4a^3 + 27b^2 = 0.
    EXPECT_DEATH(WeierstrassCurve(secp160r1Field(), BigUInt(0), BigUInt(0),
                                  "singular"),
                 "singular");
}

TEST(Weierstrass, NegateAndOnCurve)
{
    const WeierstrassCurve &c = weierstrassOpfCurve();
    Rng rng(78);
    AffinePoint p = c.randomPoint(rng);
    AffinePoint n = c.negate(p);
    EXPECT_TRUE(c.onCurve(n));
    EXPECT_EQ(n.x, p.x);
    EXPECT_EQ(c.field().add(n.y, p.y), BigUInt(0));
}

TEST(Weierstrass, WNafMatchesBinary)
{
    const WeierstrassCurve &c = secp160r1Curve();
    Rng rng(79);
    AffinePoint p = c.randomPoint(rng);
    for (unsigned w = 2; w <= 6; w++) {
        BigUInt k = BigUInt::randomBits(rng, 160);
        if (k.isZero())
            k = BigUInt(7);
        AffinePoint r = c.mulBinary(k, p);
        AffinePoint rw = c.mulWNaf(k, p, w);
        EXPECT_EQ(rw.inf, r.inf) << w;
        EXPECT_EQ(rw.x, r.x) << w;
        EXPECT_EQ(rw.y, r.y) << w;
    }
    // Small scalars exercise table edge cases.
    for (uint64_t k = 1; k <= 20; k++) {
        AffinePoint r = c.mulBinary(BigUInt(k), p);
        AffinePoint rw = c.mulWNaf(BigUInt(k), p, 5);
        EXPECT_EQ(rw.x, r.x) << k;
        EXPECT_EQ(rw.y, r.y) << k;
    }
}

TEST(Weierstrass, BatchAffineMatchesSingle)
{
    const WeierstrassCurve &c = weierstrassOpfCurve();
    Rng rng(90);
    std::vector<JacobianPoint> pts;
    for (int i = 0; i < 9; i++) {
        JacobianPoint j = c.toJacobian(c.randomPoint(rng));
        // Randomize Z by doubling/adding a bit.
        j = c.dbl(j);
        pts.push_back(j);
    }
    pts.push_back(JacobianPoint::infinity());  // passes through
    auto batch = c.toAffineBatch(pts);
    ASSERT_EQ(batch.size(), pts.size());
    for (size_t i = 0; i < pts.size(); i++) {
        AffinePoint single = c.toAffine(pts[i]);
        EXPECT_EQ(batch[i].inf, single.inf) << i;
        if (!single.inf) {
            EXPECT_EQ(batch[i].x, single.x) << i;
            EXPECT_EQ(batch[i].y, single.y) << i;
        }
    }
}

TEST(Weierstrass, BatchAffineUsesOneInversion)
{
    const WeierstrassCurve &c = weierstrassOpfCurve();
    Rng rng(91);
    std::vector<JacobianPoint> pts;
    for (int i = 0; i < 8; i++)
        pts.push_back(c.dbl(c.toJacobian(c.randomPoint(rng))));
    FieldOpCounts counts;
    c.field().attachCounter(&counts);
    c.toAffineBatch(pts);
    c.field().attachCounter(nullptr);
    EXPECT_EQ(counts.inv, 1u);
}
