/**
 * @file
 * Tests of the evaluation models: field-op cycle costs, the inversion
 * model, the cycle executor, area/power models, SARP, and the
 * experiment runners' shape properties (the relationships the paper's
 * conclusions rest on).
 */

#include <gtest/gtest.h>

#include "model/area_power.hh"
#include "model/cycle_executor.hh"
#include "model/experiments.hh"
#include "model/field_costs.hh"
#include "model/inverse_model.hh"
#include "curves/standard_curves.hh"

using namespace jaavr;

TEST(FieldCosts, OrderingAcrossModes)
{
    const OpfPrime &p = paperOpfPrime();
    auto ca = opfFieldCosts(p, CpuMode::CA);
    auto fast = opfFieldCosts(p, CpuMode::FAST);
    auto ise = opfFieldCosts(p, CpuMode::ISE);

    EXPECT_GT(ca.add, fast.add);
    EXPECT_EQ(fast.add, ise.add);  // the MAC does not speed up adds
    EXPECT_GT(ca.mul, fast.mul);
    EXPECT_GT(fast.mul, 3 * ise.mul);
    EXPECT_EQ(ca.sqr, ca.mul);
    EXPECT_LT(ca.mulSmall, ca.mul / 2);
    EXPECT_GT(ca.inv, 100000u);
    EXPECT_LT(ca.inv, 250000u);
}

TEST(FieldCosts, CachedAcrossCalls)
{
    const FieldCycleCosts &a = opfFieldCosts(paperOpfPrime(), CpuMode::CA);
    const FieldCycleCosts &b = opfFieldCosts(paperOpfPrime(), CpuMode::CA);
    EXPECT_EQ(&a, &b);
}

TEST(FieldCosts, Secp160r1SlightlySlowerMul)
{
    auto opf = opfFieldCosts(paperOpfPrime(), CpuMode::CA);
    auto sec = secp160r1FieldCosts(CpuMode::CA);
    EXPECT_GT(sec.mul, opf.mul);
    EXPECT_LT(sec.mul, opf.mul * 125 / 100);
    // The adds differ only in the reduction fold; same ballpark.
    EXPECT_GT(sec.add, opf.add * 70 / 100);
    EXPECT_LT(sec.add, opf.add * 130 / 100);
}

TEST(InverseModel, IterationBounds)
{
    Rng rng(130);
    const BigUInt &p = paperOpfPrime().p;
    for (int i = 0; i < 20; i++) {
        BigUInt a = BigUInt(1) + BigUInt::random(rng, p - BigUInt(1));
        uint64_t k = kaliskiIterations(a, p);
        EXPECT_GE(k, 160u);
        EXPECT_LE(k, 320u);
    }
    uint64_t avg = kaliskiAverageIterations(160);
    EXPECT_GT(avg, 200u);  // theoretical mean ~1.41 * 160 = 226
    EXPECT_LT(avg, 260u);
}

TEST(InverseModel, SmallKnownCase)
{
    // gcd loop on tiny numbers terminates with sensible counts.
    EXPECT_GT(kaliskiIterations(BigUInt(3), BigUInt(7)), 0u);
    EXPECT_DEATH(kaliskiIterations(BigUInt(0), BigUInt(7)), "zero");
}

TEST(CycleExecutor, CountsAndConverts)
{
    FieldCycleCosts c;
    c.add = 10;
    c.sub = 11;
    c.mul = 100;
    c.sqr = 90;
    c.mulSmall = 30;
    c.inv = 5000;
    c.callOverhead = 1;
    CycleExecutor exec(c);

    PrimeField f(BigUInt(10007));
    Rng rng(131);
    BigUInt a = f.random(rng), b = f.random(rng);
    MeasuredRun run = exec.measure(f, [&] {
        f.mul(a, b);
        f.sqr(a);
        f.add(a, b);
        f.inv(BigUInt(3));
    });
    EXPECT_EQ(run.ops.mul, 1u);
    EXPECT_EQ(run.ops.sqr, 1u);
    EXPECT_EQ(run.ops.add, 1u);
    EXPECT_EQ(run.ops.inv, 1u);
    EXPECT_EQ(run.cycles, 100u + 90 + 10 + 5000 + 4 /*overhead*/);
}

TEST(CycleExecutor, RestoresPreviousCounter)
{
    FieldCycleCosts c;
    CycleExecutor exec(c);
    PrimeField f(BigUInt(10007));
    FieldOpCounts outer;
    f.attachCounter(&outer);
    exec.measure(f, [&] { f.add(BigUInt(1), BigUInt(2)); });
    EXPECT_EQ(f.attachedCounter(), &outer);
    f.attachCounter(nullptr);
}

TEST(AreaModel, MatchesPaperCalibrationPoints)
{
    // The RAM fit must reproduce the paper's (bytes, GE) pairs.
    EXPECT_NEAR(AreaModel::ramGe(505), 4359, 60);
    EXPECT_NEAR(AreaModel::ramGe(528), 4485, 60);
    EXPECT_NEAR(AreaModel::ramGe(567), 4712, 60);
    EXPECT_NEAR(AreaModel::ramGe(865), 6450, 60);
    // ROM slope.
    EXPECT_NEAR(AreaModel::romGe(6224), 9091, 200);
    EXPECT_NEAR(AreaModel::romGe(8638), 12413, 200);
    // Core sizes are the Table I constants.
    EXPECT_EQ(AreaModel::coreGe(CpuMode::CA), 6166);
    EXPECT_EQ(AreaModel::coreGe(CpuMode::FAST), 6800);
    EXPECT_EQ(AreaModel::coreGe(CpuMode::ISE), 8344);
}

TEST(AreaModel, ChipTotalsAddUp)
{
    AreaBreakdown a = AreaModel::chip(CpuMode::CA, 6000, 500);
    EXPECT_DOUBLE_EQ(a.total(), a.coreGe + a.romGe + a.ramGe);
    EXPECT_GT(a.total(), 15000);
}

TEST(PowerModel, RangesMatchPaper)
{
    // Paper: CPU 17-22 uW, RAM 1.2-5.4 uW, ROM up to ~110 uW.
    for (CpuMode m : {CpuMode::CA, CpuMode::FAST, CpuMode::ISE}) {
        EXPECT_GE(PowerModel::cpuUw(m), 17.0);
        EXPECT_LE(PowerModel::cpuUw(m), 22.0);
    }
    EXPECT_LT(PowerModel::ramUw(505), 5.4);
    EXPECT_GT(PowerModel::ramUw(865), 1.2);
    EXPECT_LT(PowerModel::romUw(6224), 120.0);
}

TEST(PowerModel, EnergyScalesWithCycles)
{
    PowerBreakdown p = PowerModel::chip(CpuMode::CA, 6000, 500);
    double e1 = PowerModel::energyUj(p, 1000000);
    double e2 = PowerModel::energyUj(p, 2000000);
    EXPECT_NEAR(e2, 2 * e1, 1e-9);
    // ~100-200 uW for 1M cycles at 1 MHz -> 100-200 uJ.
    EXPECT_GT(e1, 50);
    EXPECT_LT(e1, 300);
}

TEST(Sarp, ReferenceIsOneAndOrderingWorks)
{
    EXPECT_DOUBLE_EQ(sarp(100, 1000, 100, 1000), 1.0);
    // Smaller and faster is better (higher).
    EXPECT_GT(sarp(100, 1000, 50, 1000), 1.0);
    EXPECT_GT(sarp(100, 1000, 100, 500), 1.0);
    EXPECT_LT(sarp(100, 1000, 200, 2000), 1.0);
    // The paper's GLV/CA row: 1.40.
    EXPECT_NEAR(sarp(19742, 6982629, 25029, 3930256), 1.40, 0.01);
}

TEST(Experiments, TableTwoOrderingHolds)
{
    // The headline result: GLV < Montgomery ~ Edwards < Weierstrass
    // < secp160r1 for the high-speed methods on the ATmega128.
    // The Weierstrass-vs-secp160r1 gap is only ~3%, so average over
    // several scalars to push the NAF-density noise well below it.
    Rng rng(132);
    auto glv = measurePointMultAvg(CurveId::GlvOpf, PmMethod::GlvJsf,
                                   CpuMode::CA, rng, 10);
    auto mon = measurePointMultAvg(CurveId::MontgomeryOpf,
                                   PmMethod::XzLadder, CpuMode::CA, rng,
                                   10);
    auto edw = measurePointMultAvg(CurveId::EdwardsOpf, PmMethod::Naf,
                                   CpuMode::CA, rng, 10);
    auto wei = measurePointMultAvg(CurveId::WeierstrassOpf, PmMethod::Naf,
                                   CpuMode::CA, rng, 10);
    auto sec = measurePointMultAvg(CurveId::Secp160r1, PmMethod::Naf,
                                   CpuMode::CA, rng, 10);

    EXPECT_LT(glv.run.cycles, mon.run.cycles);
    EXPECT_LT(glv.run.cycles, edw.run.cycles);
    EXPECT_LT(mon.run.cycles, wei.run.cycles);
    EXPECT_LT(edw.run.cycles, wei.run.cycles);
    EXPECT_LT(wei.run.cycles, sec.run.cycles);

    // Absolute scale: millions of cycles, not thousands.
    EXPECT_GT(glv.run.cycles, 2000000u);
    EXPECT_LT(sec.run.cycles, 12000000u);
}

TEST(Experiments, ConstantTimeMontgomeryIsBest)
{
    // Among the constant-pattern methods the Montgomery ladder wins
    // (the paper's second conclusion).
    Rng rng(133);
    auto mon = measurePointMult(CurveId::MontgomeryOpf, PmMethod::XzLadder,
                                CpuMode::CA, rng);
    auto wei = measurePointMult(CurveId::WeierstrassOpf,
                                PmMethod::CozLadder, CpuMode::CA, rng);
    auto edw = measurePointMult(CurveId::EdwardsOpf, PmMethod::Daaa,
                                CpuMode::CA, rng);
    auto glv = measurePointMult(CurveId::GlvOpf, PmMethod::CozLadder,
                                CpuMode::CA, rng);
    EXPECT_LT(mon.run.cycles, wei.run.cycles);
    EXPECT_LT(mon.run.cycles, edw.run.cycles);
    EXPECT_LT(mon.run.cycles, glv.run.cycles);
}

TEST(Experiments, IseBelowOnePointFiveMillion)
{
    // Abstract: "taking advantage of the MAC unit, the time for a
    // full 160-bit scalar multiplication falls below 1M cycles"
    // (GLV); the Montgomery ladder needs ~1.3M. Our mul is ~20%
    // heavier, so check the relaxed bounds and the relationship.
    Rng rng(134);
    auto glv = measurePointMult(CurveId::GlvOpf, PmMethod::GlvJsf,
                                CpuMode::ISE, rng);
    auto mon = measurePointMult(CurveId::MontgomeryOpf, PmMethod::XzLadder,
                                CpuMode::ISE, rng);
    EXPECT_LT(glv.run.cycles, 1500000u);
    EXPECT_LT(mon.run.cycles, 1700000u);
    EXPECT_LT(glv.run.cycles, mon.run.cycles);
}

TEST(Experiments, FootprintsSane)
{
    for (CurveId c : {CurveId::WeierstrassOpf, CurveId::EdwardsOpf,
                      CurveId::MontgomeryOpf, CurveId::GlvOpf}) {
        CurveFootprint fp = curveFootprint(c, CpuMode::CA);
        EXPECT_GT(fp.romBytes, 4000u);
        EXPECT_LT(fp.romBytes, 20000u);
        EXPECT_GT(fp.ramBytes, 400u);
        EXPECT_LT(fp.ramBytes, 1000u);
    }
    // GLV needs the most RAM (JSF digit arrays + table), as in the
    // paper's 865-byte row.
    EXPECT_GT(curveFootprint(CurveId::GlvOpf, CpuMode::CA).ramBytes,
              curveFootprint(CurveId::EdwardsOpf, CpuMode::CA).ramBytes);
}

TEST(Experiments, MethodUnavailablePanics)
{
    Rng rng(135);
    EXPECT_DEATH(measurePointMult(CurveId::MontgomeryOpf, PmMethod::Naf,
                                  CpuMode::CA, rng),
                 "not available");
}
