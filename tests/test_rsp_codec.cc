/**
 * @file
 * RSP packet codec tests. The codec faces untrusted bytes from the
 * wire, so half of this file is hostile input: bad checksums,
 * truncated and interleaved frames, dangling escapes, bogus
 * run-length counts, oversized payloads, and plain random garbage.
 * The decoder must classify all of it as events — never abort, never
 * lose resynchronisation for the following frame.
 */

#include <gtest/gtest.h>

#include "debug/rsp.hh"
#include "support/random.hh"

using namespace jaavr;

namespace
{

/** Frame a *raw* (already escaped/RLE'd) body with a valid checksum. */
std::string
rawFrame(std::string_view raw)
{
    uint8_t sum = 0;
    for (char c : raw)
        sum += static_cast<uint8_t>(c);
    std::string out = "$";
    out += raw;
    char buf[4];
    snprintf(buf, sizeof(buf), "#%02x", sum);
    return out + buf;
}

/** Feed everything and expect exactly one event of @p kind. */
RspEvent
single(RspDecoder &dec, std::string_view bytes, RspEvent::Kind kind)
{
    std::vector<RspEvent> ev = dec.feed(bytes);
    EXPECT_EQ(ev.size(), 1u);
    if (ev.empty())
        return {kind, "<missing>"};
    EXPECT_EQ(static_cast<int>(ev[0].kind), static_cast<int>(kind))
        << "payload: " << ev[0].payload;
    return ev[0];
}

} // anonymous namespace

TEST(RspCodec, SimplePacketRoundTrips)
{
    RspDecoder dec;
    RspEvent ev =
        single(dec, rspFrame("qSupported"), RspEvent::Kind::Packet);
    EXPECT_EQ(ev.payload, "qSupported");
    EXPECT_FALSE(dec.midFrame());
}

TEST(RspCodec, KnownChecksum)
{
    // "OK" sums to 0x9a; both digit cases must be accepted.
    EXPECT_EQ(rspFrame("OK"), "$OK#9a");
    RspDecoder dec;
    EXPECT_EQ(single(dec, "$OK#9A", RspEvent::Kind::Packet).payload,
              "OK");
}

TEST(RspCodec, AcksNaksAndBreaksInterleave)
{
    RspDecoder dec;
    std::string stream = "+";
    stream += rspFrame("g");
    stream += "-";
    stream += "\x03";
    stream += "+";
    stream += rspFrame("s");
    std::vector<RspEvent> ev = dec.feed(stream);
    ASSERT_EQ(ev.size(), 6u);
    EXPECT_EQ(ev[0].kind, RspEvent::Kind::Ack);
    EXPECT_EQ(ev[1].kind, RspEvent::Kind::Packet);
    EXPECT_EQ(ev[1].payload, "g");
    EXPECT_EQ(ev[2].kind, RspEvent::Kind::Nak);
    EXPECT_EQ(ev[3].kind, RspEvent::Kind::Break);
    EXPECT_EQ(ev[4].kind, RspEvent::Kind::Ack);
    EXPECT_EQ(ev[5].kind, RspEvent::Kind::Packet);
    EXPECT_EQ(ev[5].payload, "s");
}

TEST(RspCodec, ByteAtATimeDelivery)
{
    RspDecoder dec;
    std::string frame = rspFrame("m800100,20");
    std::vector<RspEvent> all;
    for (char c : frame) {
        std::vector<RspEvent> ev = dec.feed({&c, 1});
        all.insert(all.end(), ev.begin(), ev.end());
    }
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(all[0].kind, RspEvent::Kind::Packet);
    EXPECT_EQ(all[0].payload, "m800100,20");
}

TEST(RspCodec, EscapedSpecialsRoundTrip)
{
    std::string payload = "X$#}*";
    payload.push_back('\0');
    payload.push_back('\x03');
    payload.push_back('\x7d');
    RspDecoder dec;
    RspEvent ev = single(dec, rspFrame(payload), RspEvent::Kind::Packet);
    EXPECT_EQ(ev.payload, payload);
}

TEST(RspCodec, AllByteValuesRoundTrip)
{
    std::string payload;
    for (int b = 0; b < 256; b++)
        payload.push_back(static_cast<char>(b));
    for (bool rle : {false, true}) {
        RspDecoder dec;
        RspEvent ev =
            single(dec, rspFrame(payload, rle), RspEvent::Kind::Packet);
        EXPECT_EQ(ev.payload, payload) << "rle " << rle;
    }
}

TEST(RspCodec, RunLengthDecodes)
{
    // '0' '*' ' ': ' ' is count 32, i.e. 3 extra repeats -> "0000".
    RspDecoder dec;
    RspEvent ev = single(dec, rawFrame("0* "), RspEvent::Kind::Packet);
    EXPECT_EQ(ev.payload, "0000");
}

TEST(RspCodec, RunLengthEncodingCompressesAndRoundTrips)
{
    Rng rng(7);
    for (size_t len : {4u, 5u, 6u, 7u, 8u, 97u, 98u, 99u, 200u, 1000u}) {
        std::string payload(len, 'f');
        payload += "tail";
        std::string framed = rspFrame(payload, true);
        EXPECT_LT(framed.size(), payload.size() + 4) << "len " << len;
        // The forbidden counts '#' and '$' must never appear as RLE
        // counts; since 'f' needs no escape the frame body may only
        // contain them as the frame's own delimiters.
        EXPECT_EQ(framed.find('$'), 0u);
        EXPECT_EQ(framed.rfind('#'), framed.size() - 3);
        RspDecoder dec;
        RspEvent ev = single(dec, framed, RspEvent::Kind::Packet);
        EXPECT_EQ(ev.payload, payload) << "len " << len;
    }
}

/* ---- hostile input --------------------------------------------- */

TEST(RspCodec, BadChecksumIsReported)
{
    RspDecoder dec;
    RspEvent ev = single(dec, "$OK#00", RspEvent::Kind::BadPacket);
    EXPECT_NE(ev.payload.find("checksum"), std::string::npos);
    // The decoder must resynchronise on the next frame.
    EXPECT_EQ(single(dec, "$OK#9a", RspEvent::Kind::Packet).payload,
              "OK");
}

TEST(RspCodec, NonHexChecksumDigitsAreReported)
{
    RspDecoder dec;
    single(dec, "$OK#zz", RspEvent::Kind::BadPacket);
    EXPECT_EQ(single(dec, "$OK#9a", RspEvent::Kind::Packet).payload,
              "OK");
}

TEST(RspCodec, TruncatedFrameRestartedByNextDollar)
{
    RspDecoder dec;
    std::vector<RspEvent> ev = dec.feed("$mangled$OK#9a");
    ASSERT_EQ(ev.size(), 2u);
    EXPECT_EQ(ev[0].kind, RspEvent::Kind::BadPacket);
    EXPECT_EQ(ev[1].kind, RspEvent::Kind::Packet);
    EXPECT_EQ(ev[1].payload, "OK");
}

TEST(RspCodec, DanglingEscapeIsReported)
{
    RspDecoder dec;
    RspEvent ev = single(dec, rawFrame("}"), RspEvent::Kind::BadPacket);
    EXPECT_NE(ev.payload.find("escape"), std::string::npos);
}

TEST(RspCodec, BadRunLengthsAreReported)
{
    {
        RspDecoder dec; // leading '*' has nothing to repeat
        single(dec, rawFrame("*!"), RspEvent::Kind::BadPacket);
    }
    {
        RspDecoder dec; // '*' with no count byte
        single(dec, rawFrame("a*"), RspEvent::Kind::BadPacket);
    }
    {
        RspDecoder dec; // count byte below the valid range
        single(dec, rawFrame(std::string("a*") + '\x01'),
               RspEvent::Kind::BadPacket);
    }
}

TEST(RspCodec, OversizedPayloadIsCappedNotFatal)
{
    std::string huge(kRspMaxPayload + 10, 'a');
    RspDecoder dec;
    RspEvent ev = single(dec, rawFrame(huge), RspEvent::Kind::BadPacket);
    EXPECT_NE(ev.payload.find("exceeds"), std::string::npos);
    EXPECT_EQ(single(dec, "$OK#9a", RspEvent::Kind::Packet).payload,
              "OK");
}

TEST(RspCodec, RleBombIsCappedNotFatal)
{
    // ~160 raw bytes expanding to ~97x that; stop at the cap.
    std::string raw;
    for (int i = 0; i < 200; i++)
        raw += "a*~";
    RspDecoder dec;
    RspEvent ev = single(dec, rawFrame(raw), RspEvent::Kind::BadPacket);
    EXPECT_NE(ev.payload.find("expanded"), std::string::npos);
}

TEST(RspCodec, HexHelpersRoundTrip)
{
    std::vector<uint8_t> bytes{0x00, 0x01, 0xfe, 0xff, 0x5a};
    std::string hex = rspHexBytes(bytes.data(), bytes.size());
    EXPECT_EQ(hex, "0001feff5a");
    std::vector<uint8_t> back;
    ASSERT_TRUE(rspUnhexBytes(hex, back));
    EXPECT_EQ(back, bytes);
    EXPECT_TRUE(rspUnhexBytes("", back));
    EXPECT_TRUE(back.empty());
    EXPECT_FALSE(rspUnhexBytes("abc", back));
    EXPECT_FALSE(rspUnhexBytes("gg", back));
}

TEST(RspCodec, FuzzedStreamsNeverAbort)
{
    Rng rng(0x1234);
    RspDecoder dec; // one long-lived decoder across all garbage
    for (int iter = 0; iter < 5000; iter++) {
        std::string chunk;
        size_t n = rng.below(40);
        for (size_t i = 0; i < n; i++)
            chunk.push_back(static_cast<char>(rng.next32()));
        dec.feed(chunk);
    }
    // Regardless of the garbage above, a clean frame must still
    // decode once the decoder returns to Idle.
    dec.feed("#00#00"); // flush any partial frame state
    std::vector<RspEvent> ev = dec.feed("$OK#9a");
    ASSERT_FALSE(ev.empty());
    EXPECT_EQ(ev.back().kind, RspEvent::Kind::Packet);
    EXPECT_EQ(ev.back().payload, "OK");
}

TEST(RspCodec, FuzzedValidFramesAlwaysDecode)
{
    Rng rng(0xabcd);
    RspDecoder dec;
    for (int iter = 0; iter < 500; iter++) {
        std::string payload;
        size_t n = rng.below(200);
        for (size_t i = 0; i < n; i++) {
            // Mix runs and random bytes so RLE paths get exercised.
            if (rng.flip()) {
                payload.append(rng.below(12),
                               static_cast<char>(rng.next32()));
            } else {
                payload.push_back(static_cast<char>(rng.next32()));
            }
        }
        bool rle = rng.flip();
        RspEvent ev =
            single(dec, rspFrame(payload, rle), RspEvent::Kind::Packet);
        ASSERT_EQ(ev.payload, payload)
            << "iter " << iter << " rle " << rle;
    }
}

TEST(RspCodec, MutatedFramesNeverAbort)
{
    std::string good = rspFrame("mDEADBEEF,40");
    for (size_t i = 0; i < good.size(); i++) {
        for (int delta : {0x01, 0x20, 0x80}) {
            std::string bad = good;
            bad[i] = static_cast<char>(bad[i] ^ delta);
            RspDecoder dec;
            dec.feed(bad);      // classification may vary...
            dec.feed("$OK#9a"); // ...but the decoder must survive
        }
    }
}
