/**
 * @file
 * Concurrency pins for the service layer's scaling contract
 * (DESIGN.md §14): per-instance Machines running on separate threads
 * are bit-identical to serial runs (no hidden globals in the ISS),
 * independent WorkerContexts evaluating one shared comb table
 * concurrently agree with the single-threaded golden results, the
 * lock-free queue survives a multi-producer stress run without
 * losing or duplicating items, and a running multi-worker service
 * fed from several submitter threads completes every request
 * correctly. The span tracer rides the same contract: one shared
 * SpanTracer feeding per-thread rings under full contention must
 * keep span IDs globally unique and every ring internally ordered.
 */

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "avr/machine.hh"
#include "avrasm/assembler.hh"
#include "curves/standard_curves.hh"
#include "obs/trace.hh"
#include "service/service.hh"

using namespace jaavr;

namespace
{

/** A register- and stack-churning program with data-dependent
 *  branches; push/pop give CA and FAST timing different totals. */
const char *kProgram = R"(
    ldi r16, 0
    ldi r17, 1
    ldi r18, 0
    ldi r19, 199
loop:
    add r16, r17
    push r16
    mov r20, r17
    mov r17, r16
    mov r16, r20
    eor r18, r16
    pop r16
    inc r16
    dec r19
    brne loop
    ret
)";

struct MachineResult
{
    uint64_t cycles;
    uint8_t r16, r17, r18;
    uint8_t sreg;
};

MachineResult
runProgram(CpuMode mode)
{
    Machine m(mode);
    m.loadProgram(assemble(kProgram, "conc").words);
    MachineResult res;
    res.cycles = m.call(0);
    res.r16 = m.reg(16);
    res.r17 = m.reg(17);
    res.r18 = m.reg(18);
    res.sreg = m.sreg();
    return res;
}

} // namespace

TEST(Concurrency, MachinesAreBitIdenticalAcrossThreads)
{
    // Serial golden runs first, then the same programs concurrently:
    // the ISS must be entirely member-state, so interleaving cannot
    // perturb cycles, registers, or flags.
    MachineResult golden_ca = runProgram(CpuMode::CA);
    MachineResult golden_ise = runProgram(CpuMode::ISE);

    constexpr int kThreads = 8;
    std::vector<MachineResult> results(kThreads);
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; i++)
        threads.emplace_back([&results, i] {
            results[i] = runProgram(i % 2 ? CpuMode::CA : CpuMode::ISE);
        });
    for (auto &t : threads)
        t.join();

    for (int i = 0; i < kThreads; i++) {
        const MachineResult &want = i % 2 ? golden_ca : golden_ise;
        EXPECT_EQ(results[i].cycles, want.cycles) << "thread " << i;
        EXPECT_EQ(results[i].r16, want.r16);
        EXPECT_EQ(results[i].r17, want.r17);
        EXPECT_EQ(results[i].r18, want.r18);
        EXPECT_EQ(results[i].sreg, want.sreg);
    }
    // The two interleaved timing models really were distinct (ISE
    // uses the improved-CPI stack timing, CA the classic one).
    EXPECT_NE(golden_ca.cycles, golden_ise.cycles);
}

TEST(Concurrency, WorkerContextsShareOneCombSafely)
{
    // One immutable table, many private contexts: every thread signs
    // the same (message, d, k) tuples through its own context and
    // must reproduce the single-threaded signatures exactly.
    const ServiceCurveSet &snap = ServiceCurveSet::instance();
    ServiceTables tables = ServiceTables::build(snap);

    constexpr int kThreads = 4;
    constexpr int kSigs = 5;
    WorkerContext golden_ctx(99);
    golden_ctx.ecdsaR1.attachFixedBase(tables.r1.get());
    golden_ctx.ecdsaGlv.attachFixedBase(tables.glv.get());

    struct Tuple
    {
        std::string msg;
        BigUInt d, k;
    };
    std::vector<Tuple> tuples;
    Rng rng(123);
    const BigUInt &n = golden_ctx.ecdsaR1.order();
    for (int i = 0; i < kSigs; i++)
        tuples.push_back({"m" + std::to_string(i),
                          BigUInt(1) + BigUInt::random(rng, n - BigUInt(1)),
                          BigUInt(1) + BigUInt::random(rng, n - BigUInt(1))});

    std::vector<EcdsaSignature> golden;
    for (const Tuple &t : tuples) {
        auto s = golden_ctx.ecdsaR1.signWithNonce(t.msg, t.d, t.k);
        ASSERT_TRUE(s.has_value());
        golden.push_back(*s);
    }

    std::vector<std::vector<EcdsaSignature>> results(kThreads);
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; i++)
        threads.emplace_back([&, i] {
            WorkerContext ctx(1000 + i);
            ctx.ecdsaR1.attachFixedBase(tables.r1.get());
            for (const Tuple &t : tuples) {
                auto s = ctx.ecdsaR1.signWithNonce(t.msg, t.d, t.k);
                if (s)
                    results[i].push_back(*s);
            }
        });
    for (auto &t : threads)
        t.join();

    for (int i = 0; i < kThreads; i++) {
        ASSERT_EQ(results[i].size(), golden.size()) << "thread " << i;
        for (size_t j = 0; j < golden.size(); j++) {
            EXPECT_EQ(results[i][j].r, golden[j].r);
            EXPECT_EQ(results[i][j].s, golden[j].s);
        }
    }
}

TEST(Concurrency, QueueMultiProducerStress)
{
    // 4 producers push disjoint tagged requests through one queue
    // while a consumer drains; every tag must arrive exactly once.
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 2000;
    BoundedMpmcQueue<ServiceRequest *> q(64);

    std::vector<std::vector<ServiceRequest>> reqs;
    for (int p = 0; p < kProducers; p++) {
        reqs.emplace_back(kPerProducer);
        for (int i = 0; i < kPerProducer; i++)
            reqs[p][i].shardHint = uint64_t(p) * kPerProducer + i;
    }

    std::vector<char> seen(kProducers * kPerProducer, 0);
    std::atomic<int> consumed{0};
    std::thread consumer([&] {
        ServiceRequest *r = nullptr;
        while (consumed.load(std::memory_order_relaxed) <
               kProducers * kPerProducer)
        {
            if (q.tryPop(r)) {
                seen[size_t(r->shardHint)]++;
                consumed.fetch_add(1, std::memory_order_relaxed);
            } else {
                std::this_thread::yield();
            }
        }
    });

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; p++)
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; i++)
                while (!q.tryPush(&reqs[p][i]))
                    std::this_thread::yield();
        });
    for (auto &t : producers)
        t.join();
    consumer.join();

    for (size_t i = 0; i < seen.size(); i++)
        ASSERT_EQ(int(seen[i]), 1) << "tag " << i;
    EXPECT_EQ(q.sizeApprox(), 0u);
}

TEST(Concurrency, TracerSpanIdsStayUniqueAcrossThreads)
{
    // N producer threads hammer one shared tracer, each through its
    // own ring (the single-producer contract): the atomic ID counter
    // must hand out globally unique span IDs, every ring must retain
    // its own pushes in order, and nothing may be lost below the
    // ring capacity.
    constexpr int kThreads = 8;
    constexpr int kSpans = 4000;
    obs::SpanTracer tracer(kSpans); // capacity >= pushes: no drops
    tracer.setEnabled(true);

    std::vector<obs::SpanRing *> rings;
    for (int t = 0; t < kThreads; t++)
        rings.push_back(tracer.ring("thread" + std::to_string(t)));

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++)
        threads.emplace_back([&, t] {
            for (int i = 0; i < kSpans; i++) {
                obs::SpanRecord r;
                r.name = "tick";
                r.cat = "stress";
                r.traceId = tracer.newTraceId();
                r.spanId = tracer.newSpanId();
                r.beginUs = uint64_t(i);
                r.endUs = uint64_t(i) + 1;
                rings[t]->push(r);
            }
        });
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(tracer.totalRecorded(), uint64_t(kThreads) * kSpans);
    EXPECT_EQ(tracer.totalDropped(), 0u);
    std::set<uint64_t> ids;
    for (const auto &[source, records] : tracer.snapshotAll()) {
        ASSERT_EQ(records.size(), size_t(kSpans)) << source;
        for (size_t i = 0; i < records.size(); i++) {
            // Per-ring ordering: this producer's own push order.
            EXPECT_EQ(records[i].beginUs, uint64_t(i)) << source;
            ids.insert(records[i].spanId);
            ids.insert(records[i].traceId);
        }
    }
    // Trace and span IDs share one counter space: all distinct.
    EXPECT_EQ(ids.size(), size_t(2) * kThreads * kSpans);
}

TEST(Concurrency, ManySubmittersOneService)
{
    // Several threads hammer a running 2-worker service with mixed
    // sign/derive traffic (shard hints force cross-queue contention);
    // every request must complete with the deterministic expected
    // result.
    EccService svc([] {
        ServiceConfig cfg;
        cfg.workers = 2;
        cfg.queueCapacity = 8; // small: exercises backpressure spins
        cfg.rngSeed = 5;
        return cfg;
    }());
    svc.start();

    const GlvCurve &c = secp160k1Curve();
    Ecdsa golden(c);
    Rng rng(55);
    const BigUInt d = BigUInt(1) + BigUInt::random(rng, c.order() - BigUInt(1));
    const BigUInt k = BigUInt(1) + BigUInt::random(rng, c.order() - BigUInt(1));
    auto expect_sig = golden.signWithNonce("stress", d, k);
    ASSERT_TRUE(expect_sig.has_value());
    AffinePoint peer = c.mulNaf(k, c.generator());
    AffinePoint expect_pt = c.mulNaf(d, peer);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 12;
    std::atomic<int> bad{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++)
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; i++) {
                ServiceRequest r;
                if (i % 2 == 0) {
                    r.op = ServiceOp::Sign;
                    r.curve = ServiceCurve::Secp160k1;
                    r.message = "stress";
                    r.privateKey = d;
                    r.nonce = k;
                } else {
                    r.op = ServiceOp::Derive;
                    r.curve = ServiceCurve::Secp160k1;
                    r.privateKey = d;
                    r.peer = peer;
                }
                r.shardHint = uint64_t(t * kPerThread + i);
                if (!svc.submit(&r)) {
                    bad.fetch_add(1);
                    continue;
                }
                EccService::wait(r);
                bool ok = r.status == ServiceStatus::Ok;
                if (ok && i % 2 == 0)
                    ok = r.sigOut.r == expect_sig->r &&
                         r.sigOut.s == expect_sig->s;
                if (ok && i % 2 == 1)
                    ok = r.pointOut.x == expect_pt.x &&
                         r.pointOut.y == expect_pt.y;
                if (!ok)
                    bad.fetch_add(1);
            }
        });
    for (auto &t : threads)
        t.join();
    svc.stop();

    EXPECT_EQ(bad.load(), 0);
    EXPECT_EQ(svc.opsProcessed(), uint64_t(kThreads * kPerThread));
}
