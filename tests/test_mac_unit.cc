/**
 * @file
 * Tests for the (32 x 4)-bit MAC instruction-set extension (Fig. 1):
 * both access mechanisms from the paper's Algorithms 1 and 2, the
 * 8-cycle (32 x 32)-bit multiplication claim, the auto-wrapping shift
 * counter, and the hazard rules.
 */

#include <gtest/gtest.h>

#include "avr/machine.hh"
#include "avrasm/assembler.hh"
#include "support/random.hh"

using namespace jaavr;

namespace
{

constexpr uint16_t kA = 0x0200;  // operand A (4 bytes)
constexpr uint16_t kB = 0x0210;  // operand B (4 bytes)

/** Read the 72-bit accumulator R0..R8 as an integer. */
unsigned __int128
readAcc(const Machine &m)
{
    unsigned __int128 acc = 0;
    for (int i = 8; i >= 0; i--)
        acc = (acc << 8) | m.reg(i);
    return acc;
}

void
setOperands(Machine &m, uint32_t a, uint32_t b)
{
    m.writeBytes(kA, {uint8_t(a), uint8_t(a >> 8), uint8_t(a >> 16),
                      uint8_t(a >> 24)});
    m.writeBytes(kB, {uint8_t(b), uint8_t(b >> 8), uint8_t(b >> 16),
                      uint8_t(b >> 24)});
}

/**
 * Algorithm 1 of the paper: load both 32-bit operands, then eight
 * re-interpreted SWAPs perform the full (32 x 32)-bit MAC.
 */
const char *kAlg1 = R"(
    .equ MACCR = 0x3c
    ldi r20, 0x01        ; SWAP-MAC mode
    out MACCR, r20
    ld  r16, Y+          ; operand A -> R16..R19
    ld  r17, Y+
    ld  r18, Y+
    ld  r19, Y+
    ld  r20, Z+          ; operand B -> R20..R23
    ld  r21, Z+
    ld  r22, Z+
    ld  r23, Z+
    swap r20
    swap r20
    swap r21
    swap r21
    swap r22
    swap r22
    swap r23
    swap r23
    ret
)";

/**
 * Algorithm 2 of the paper, verbatim structure: every load into R24
 * triggers two MAC micro-ops in the following two cycles; the NOPs
 * are the data-dependency bubbles the paper describes.
 */
const char *kAlg2 = R"(
    .equ MACCR = 0x3c
    ldi r20, 0x02        ; R24-load MAC mode
    out MACCR, r20
    ldd r16, Y+0
    ldd r17, Y+1
    ldd r18, Y+2
    ldd r19, Y+3
    ldd r24, Z+0
    nop
    ldd r24, Z+1
    nop
    ldd r24, Z+2
    nop
    ldd r24, Z+3
    nop
    nop
    ret
)";

std::unique_ptr<Machine>
runMac(const char *src, uint32_t a, uint32_t b)
{
    auto m = std::make_unique<Machine>(CpuMode::ISE);
    m->loadProgram(assemble(src, "mac").words);
    setOperands(*m, a, b);
    m->setY(kA);
    m->setZ(kB);
    m->call(0);
    return m;
}

} // anonymous namespace

TEST(MacUnit, Algorithm1ComputesFullProduct)
{
    Rng rng(100);
    for (int i = 0; i < 50; i++) {
        uint32_t a = rng.next32(), b = rng.next32();
        auto m = runMac(kAlg1, a, b);
        EXPECT_EQ(readAcc(*m),
                  static_cast<unsigned __int128>(a) * b);
        // Register contents are restored by the double swaps.
        EXPECT_EQ(m->reg(20), uint8_t(b));
        EXPECT_EQ(m->reg(23), uint8_t(b >> 24));
    }
}

TEST(MacUnit, Algorithm2ComputesFullProduct)
{
    Rng rng(101);
    for (int i = 0; i < 50; i++) {
        uint32_t a = rng.next32(), b = rng.next32();
        auto m = runMac(kAlg2, a, b);
        EXPECT_EQ(readAcc(*m),
                  static_cast<unsigned __int128>(a) * b);
    }
}

TEST(MacUnit, AccumulationAcrossCalls)
{
    // Two sequential Algorithm-2 multiplications accumulate.
    auto m = std::make_unique<Machine>(CpuMode::ISE);
    Program p = assemble(kAlg2, "mac");
    m->loadProgram(p.words);
    setOperands(*m, 0xffffffff, 0xffffffff);
    m->setY(kA);
    m->setZ(kB);
    m->call(0);
    m->setY(kA);
    m->setZ(kB);
    m->call(0);
    unsigned __int128 p1 =
        static_cast<unsigned __int128>(0xffffffffu) * 0xffffffffu;
    EXPECT_EQ(readAcc(*m), p1 + p1);
}

TEST(MacUnit, EightMacsPerMultiplication)
{
    auto m = runMac(kAlg2, 0x12345678, 0x9abcdef0);
    EXPECT_EQ(m->mac().totalMacs(), 8u);
    // The counter wrapped back to zero, ready for the next operand.
    EXPECT_EQ(m->mac().shiftCounter(), 0u);
}

TEST(MacUnit, MacTakesEightCyclesAndDoesNotStall)
{
    // The 8 SWAPs of Algorithm 1 cost exactly 8 cycles (one MAC per
    // cycle); in Algorithm 2 the MACs ride in the shadow of the loads
    // and NOPs, adding zero cycles of their own. Compare against the
    // same instruction stream with the MAC disabled.
    Machine with(CpuMode::ISE), without(CpuMode::ISE);
    Program p = assemble(kAlg2, "mac");
    with.loadProgram(p.words);
    without.loadProgram(p.words);
    setOperands(with, 1, 2);
    setOperands(without, 1, 2);
    with.setY(kA);
    with.setZ(kB);
    without.setY(kA);
    without.setZ(kB);
    // Disable the MAC in 'without' by patching MACCR mode to 0.
    uint64_t c_with = with.call(0);
    without.setMaccr(0);
    // Patch the OUT's source register value: rerun with mode 0 by
    // overwriting the ldi immediate (word 0: ldi r20, 0x02 -> 0x00).
    Program p0 = assemble(kAlg2, "mac");
    p0.words[0] = assemble("ldi r20, 0x00", "x").words[0];
    without.loadProgram(p0.words);
    uint64_t c_without = without.call(0);
    EXPECT_EQ(c_with, c_without);
}

TEST(MacUnit, ShiftCounterWraps)
{
    // 4 SWAPs only: counter at 4; after 8 it returns to 0.
    auto m = std::make_unique<Machine>(CpuMode::ISE);
    m->loadProgram(assemble(R"(
        .equ MACCR = 0x3c
        ldi r20, 0x01
        out MACCR, r20
        ldi r21, 0x12
        swap r21
        swap r21
        swap r21
        swap r21
        ret
    )", "mac").words);
    m->call(0);
    EXPECT_EQ(m->mac().shiftCounter(), 4u);
}

TEST(MacUnit, MaccrWriteResetsCounter)
{
    auto m = std::make_unique<Machine>(CpuMode::ISE);
    m->loadProgram(assemble(R"(
        .equ MACCR = 0x3c
        ldi r20, 0x01
        out MACCR, r20
        ldi r21, 0x12
        swap r21
        swap r21
        out MACCR, r20   ; reset mid-stream
        ret
    )", "mac").words);
    m->call(0);
    EXPECT_EQ(m->mac().shiftCounter(), 0u);
}

TEST(MacUnit, SwapStillSwapsInMacMode)
{
    auto m = std::make_unique<Machine>(CpuMode::ISE);
    m->loadProgram(assemble(R"(
        .equ MACCR = 0x3c
        ldi r20, 0x01
        out MACCR, r20
        ldi r21, 0xa5
        swap r21
        ret
    )", "mac").words);
    m->call(0);
    EXPECT_EQ(m->reg(21), 0x5a);
}

TEST(MacUnit, SwapModeUsesPreSwapLowNibble)
{
    // One SWAP of 0xa5 multiplies by nibble 5 (the pre-swap low
    // nibble) at shift 0.
    auto m = std::make_unique<Machine>(CpuMode::ISE);
    m->loadProgram(assemble(R"(
        .equ MACCR = 0x3c
        ldi r20, 0x01
        out MACCR, r20
        ldi r16, 0x10
        ldi r17, 0x00
        ldi r18, 0x00
        ldi r19, 0x00
        ldi r21, 0xa5
        swap r21
        ret
    )", "mac").words);
    m->call(0);
    EXPECT_EQ(static_cast<uint64_t>(readAcc(*m)), 0x10u * 5u);
}

TEST(MacUnit, HazardTouchingAccumulatorTraps)
{
    auto m = std::make_unique<Machine>(CpuMode::ISE);
    m->loadProgram(assemble(R"(
        .equ MACCR = 0x3c
        ldi r20, 0x02
        out MACCR, r20
        ldd r24, Y+0
        add r0, r0      ; in the MAC shadow: illegal
        ret
    )", "mac").words);
    m->setY(kA);
    RunResult r = m->call(0);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.trap.kind, TrapKind::MacHazard);
    EXPECT_EQ(r.trap.addr, 0u);  // shadow-register touch, not retrigger
}

TEST(MacUnit, HazardTouchingMultiplicandTraps)
{
    auto m = std::make_unique<Machine>(CpuMode::ISE);
    m->loadProgram(assemble(R"(
        .equ MACCR = 0x3c
        ldi r20, 0x02
        out MACCR, r20
        ldd r24, Y+0
        ldi r16, 1      ; R16 is the multiplicand: illegal
        ret
    )", "mac").words);
    m->setY(kA);
    RunResult r = m->call(0);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.trap.kind, TrapKind::MacHazard);
    EXPECT_EQ(r.trap.addr, 0u);
}

TEST(MacUnit, BackToBackTriggersTrap)
{
    auto m = std::make_unique<Machine>(CpuMode::ISE);
    m->loadProgram(assemble(R"(
        .equ MACCR = 0x3c
        ldi r20, 0x02
        out MACCR, r20
        ldd r24, Y+0
        ldd r24, Y+1    ; retrigger with two MACs pending: illegal
        ret
    )", "mac").words);
    m->setY(kA);
    RunResult r = m->call(0);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.trap.kind, TrapKind::MacHazard);
    EXPECT_EQ(r.trap.addr, 1u);  // back-to-back retrigger flavor
}

TEST(MacUnit, IndependentWorkInShadowIsLegal)
{
    // The paper: "the ALU is free and can execute some other
    // instructions in parallel" — anything outside the 13 registers.
    auto m = std::make_unique<Machine>(CpuMode::ISE);
    m->loadProgram(assemble(R"(
        .equ MACCR = 0x3c
        ldi r20, 0x02
        out MACCR, r20
        ldi r16, 0x01
        ldi r17, 0
        ldi r18, 0
        ldi r19, 0
        ldd r24, Y+0
        ldi r25, 7      ; legal: r25 not in the hazard set
        mov r10, r25    ; legal
        ret
    )", "mac").words);
    m->setY(kA);
    m->writeBytes(kA, {0x21, 0, 0, 0});
    m->call(0);
    EXPECT_EQ(static_cast<uint64_t>(readAcc(*m)), 0x21u);
    EXPECT_EQ(m->reg(10), 7);
}

TEST(MacUnit, NoMacInCaOrFastModes)
{
    for (CpuMode mode : {CpuMode::CA, CpuMode::FAST}) {
        Machine m(mode);
        m.loadProgram(assemble(kAlg1, "mac").words);
        setOperands(m, 3, 5);
        m.setY(kA);
        m.setZ(kB);
        m.call(0);
        EXPECT_EQ(static_cast<uint64_t>(readAcc(m)), 0u)
            << cpuModeName(mode);
        EXPECT_EQ(m.mac().totalMacs(), 0u);
    }
}
