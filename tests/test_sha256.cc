/**
 * @file
 * SHA-256 against the FIPS 180-4 known-answer vectors, plus streaming
 * and boundary-length behaviour.
 */

#include <gtest/gtest.h>

#include "support/hex.hh"
#include "support/sha256.hh"

using namespace jaavr;

namespace
{

std::string
hexDigest(const std::array<uint8_t, 32> &d)
{
    return hexEncode(std::vector<uint8_t>(d.begin(), d.end()));
}

} // anonymous namespace

TEST(Sha256, EmptyString)
{
    EXPECT_EQ(hexDigest(Sha256::digest(std::string())),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b"
              "7852b855");
}

TEST(Sha256, Abc)
{
    EXPECT_EQ(hexDigest(Sha256::digest(std::string("abc"))),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61"
              "f20015ad");
}

TEST(Sha256, TwoBlockMessage)
{
    EXPECT_EQ(hexDigest(Sha256::digest(std::string(
                  "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnop"
                  "nopq"))),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd4"
              "19db06c1");
}

TEST(Sha256, MillionAs)
{
    Sha256 s;
    std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; i++)
        s.update(chunk);
    EXPECT_EQ(hexDigest(s.finish()),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39cc"
              "c7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot)
{
    std::string msg = "the quick brown fox jumps over the lazy dog";
    for (size_t split = 0; split <= msg.size(); split++) {
        Sha256 s;
        s.update(msg.substr(0, split));
        s.update(msg.substr(split));
        EXPECT_EQ(hexDigest(s.finish()),
                  hexDigest(Sha256::digest(msg)))
            << "split at " << split;
    }
}

TEST(Sha256, PaddingBoundaries)
{
    // Lengths around the 56-byte padding boundary and the block size.
    for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 128u}) {
        std::string msg(len, 'x');
        Sha256 a;
        a.update(msg);
        auto d1 = a.finish();
        auto d2 = Sha256::digest(msg);
        EXPECT_EQ(hexDigest(d1), hexDigest(d2)) << len;
    }
}

TEST(Sha256, DistinctInputsDistinctDigests)
{
    auto a = Sha256::digest(std::string("message-a"));
    auto b = Sha256::digest(std::string("message-b"));
    EXPECT_NE(hexDigest(a), hexDigest(b));
}

TEST(Sha256, ReuseAfterFinishPanics)
{
    Sha256 s;
    s.update(std::string("x"));
    s.finish();
    EXPECT_DEATH(s.finish(), "finish");
}
