/**
 * @file
 * The shared Montgomery simultaneous-inversion driver: agreement
 * with one-at-a-time PrimeField::inv across sizes (empty, single,
 * odd, large), zero passthrough in every position, and the return
 * count contract.
 */

#include <gtest/gtest.h>

#include "field/batch_inverse.hh"
#include "support/random.hh"

using namespace jaavr;

namespace
{

PrimeField
testField()
{
    // secp160r1's prime: large enough to be representative, cheap to
    // construct (no reduction specialization needed here).
    return PrimeField(
        BigUInt::fromHex("ffffffffffffffffffffffffffffffff7fffffff"));
}

std::vector<BigUInt>
randomElems(const PrimeField &f, Rng &rng, size_t n)
{
    std::vector<BigUInt> v;
    v.reserve(n);
    for (size_t i = 0; i < n; i++) {
        BigUInt x = f.random(rng);
        if (x.isZero())
            x = BigUInt(1);
        v.push_back(x);
    }
    return v;
}

} // namespace

TEST(BatchInverse, EmptyAndSingle)
{
    PrimeField f = testField();
    std::vector<BigUInt> none;
    EXPECT_EQ(invBatch(f, none), 0u);
    EXPECT_TRUE(none.empty());

    std::vector<BigUInt> one{BigUInt(7)};
    EXPECT_EQ(invBatch(f, one), 1u);
    EXPECT_EQ(one[0], f.inv(BigUInt(7)));
}

TEST(BatchInverse, MatchesSingleInversions)
{
    PrimeField f = testField();
    Rng rng(42);
    for (size_t n : {2u, 3u, 7u, 64u, 257u}) {
        std::vector<BigUInt> elems = randomElems(f, rng, n);
        std::vector<BigUInt> expect;
        expect.reserve(n);
        for (const BigUInt &x : elems)
            expect.push_back(f.inv(x));
        EXPECT_EQ(invBatch(f, elems), n);
        EXPECT_EQ(elems, expect);
    }
}

TEST(BatchInverse, ZeroPassthrough)
{
    PrimeField f = testField();
    Rng rng(43);
    // A zero in every position of a small batch, plus all-zero.
    for (size_t zero_at = 0; zero_at < 5; zero_at++) {
        std::vector<BigUInt> elems = randomElems(f, rng, 5);
        elems[zero_at] = BigUInt(0);
        std::vector<BigUInt> expect;
        for (const BigUInt &x : elems)
            expect.push_back(x.isZero() ? BigUInt(0) : f.inv(x));
        EXPECT_EQ(invBatch(f, elems), 4u);
        EXPECT_EQ(elems, expect);
    }

    std::vector<BigUInt> zeros(3, BigUInt(0));
    EXPECT_EQ(invBatch(f, zeros), 0u);
    for (const BigUInt &x : zeros)
        EXPECT_TRUE(x.isZero());
}

TEST(BatchInverse, ZeroHeavyLargeBatch)
{
    PrimeField f = testField();
    Rng rng(44);
    std::vector<BigUInt> elems = randomElems(f, rng, 100);
    size_t zeros = 0;
    for (size_t i = 0; i < elems.size(); i += 3) {
        elems[i] = BigUInt(0);
        zeros++;
    }
    std::vector<BigUInt> expect;
    for (const BigUInt &x : elems)
        expect.push_back(x.isZero() ? BigUInt(0) : f.inv(x));
    EXPECT_EQ(invBatch(f, elems), elems.size() - zeros);
    EXPECT_EQ(elems, expect);
}

TEST(BatchInverse, CopyWrapperLeavesInputAlone)
{
    PrimeField f = testField();
    Rng rng(45);
    std::vector<BigUInt> elems = randomElems(f, rng, 9);
    std::vector<BigUInt> orig = elems;
    std::vector<BigUInt> inv = invBatchCopy(f, elems);
    EXPECT_EQ(elems, orig);
    ASSERT_EQ(inv.size(), elems.size());
    for (size_t i = 0; i < elems.size(); i++)
        EXPECT_TRUE(f.mul(elems[i], inv[i]) == BigUInt(1));
}

TEST(BatchInverse, ProductIsOneInBothDirections)
{
    // x * invBatch(x) == 1 for mixed small/large values, including
    // p - 1 (its own inverse) and 1.
    PrimeField f = testField();
    std::vector<BigUInt> elems{BigUInt(1), BigUInt(2),
                               f.modulus() - BigUInt(1),
                               f.modulus() - BigUInt(2), BigUInt(12345)};
    std::vector<BigUInt> orig = elems;
    EXPECT_EQ(invBatch(f, elems), elems.size());
    for (size_t i = 0; i < elems.size(); i++)
        EXPECT_TRUE(f.mul(orig[i], elems[i]) == BigUInt(1));
}
