/**
 * @file
 * Validation of the generated secp160r1 assembly routines against the
 * host golden field, plus the cycle comparison the paper's Table II
 * implies (secp160r1's multiplication is slightly more expensive than
 * the OPF one, and the additive reduction means the MAC unit helps it
 * less).
 */

#include <gtest/gtest.h>

#include "avrgen/opf_harness.hh"
#include "avrgen/secp160_harness.hh"
#include "bigint/big_int.hh"
#include "field/secp160.hh"
#include "nt/mont_inverse.hh"
#include "nt/opf_prime.hh"
#include "support/random.hh"

using namespace jaavr;

namespace
{

class Secp160AsmTest : public ::testing::TestWithParam<CpuMode>
{
  protected:
    Secp160AsmTest()
        : p(Secp160r1Field::primeValue()), lib(GetParam()),
          rng(0x5ec9 + int(GetParam()))
    {}

    std::vector<uint32_t>
    words(const BigUInt &v)
    {
        return v.toWords(5);
    }

    BigUInt
    big(const std::vector<uint32_t> &w)
    {
        return BigUInt::fromWords(w);
    }

    BigUInt p;
    Secp160AvrLibrary lib;
    Rng rng;
};

} // anonymous namespace

TEST_P(Secp160AsmTest, AddMatchesGolden)
{
    for (int i = 0; i < 100; i++) {
        BigUInt a = BigUInt::randomBits(rng, 160);
        BigUInt b = BigUInt::randomBits(rng, 160);
        OpfRun r = lib.add(words(a), words(b));
        EXPECT_EQ(big(r.result) % p, (a + b) % p)
            << a.toHex() << " + " << b.toHex();
        EXPECT_LE(big(r.result).bitLength(), 160u);
    }
}

TEST_P(Secp160AsmTest, SubMatchesGolden)
{
    for (int i = 0; i < 100; i++) {
        BigUInt a = BigUInt::randomBits(rng, 160);
        BigUInt b = BigUInt::randomBits(rng, 160);
        OpfRun r = lib.sub(words(a), words(b));
        EXPECT_EQ(big(r.result) % p, (BigInt(a) - BigInt(b)).mod(p))
            << a.toHex() << " - " << b.toHex();
    }
}

TEST_P(Secp160AsmTest, MulMatchesGolden)
{
    for (int i = 0; i < 60; i++) {
        BigUInt a = BigUInt::randomBits(rng, 160);
        BigUInt b = BigUInt::randomBits(rng, 160);
        OpfRun r = lib.mul(words(a), words(b));
        EXPECT_EQ(big(r.result) % p, a.mulMod(b, p))
            << a.toHex() << " * " << b.toHex();
        EXPECT_LE(big(r.result).bitLength(), 160u);
    }
}

TEST_P(Secp160AsmTest, MulEdgeOperands)
{
    std::vector<BigUInt> edges = {
        BigUInt(0), BigUInt(1), p - BigUInt(1), p,
        BigUInt::powerOfTwo(160) - BigUInt(1),
        BigUInt::powerOfTwo(31) + BigUInt(1),  // the fold constant
        BigUInt::powerOfTwo(159),
    };
    for (const BigUInt &a : edges)
        for (const BigUInt &b : edges)
            EXPECT_EQ(big(lib.mul(words(a), words(b)).result) % p,
                      a.mulMod(b, p))
                << a.toHex() << " * " << b.toHex();
}

TEST_P(Secp160AsmTest, InverseMatchesHostReference)
{
    for (int i = 0; i < 10; i++) {
        BigUInt a = BigUInt(1) + BigUInt::random(rng, p - BigUInt(1));
        OpfRun r = lib.inv(words(a));
        EXPECT_EQ(big(r.result), montInverse(a, p, 160)) << a.toHex();
    }
}

INSTANTIATE_TEST_SUITE_P(AllModes, Secp160AsmTest,
                         ::testing::Values(CpuMode::CA, CpuMode::FAST,
                                           CpuMode::ISE),
                         [](const ::testing::TestParamInfo<CpuMode> &info) {
                             return cpuModeName(info.param);
                         });

TEST(Secp160AsmCycles, SlightlySlowerThanOpfMul)
{
    // Table II implies the secp160r1 multiplication costs a few
    // percent more than the OPF one on native AVR.
    Rng rng(150);
    Secp160AvrLibrary sec(CpuMode::CA);
    OpfAvrLibrary opf(paperOpfPrime(), CpuMode::CA);
    OpfField f(paperOpfPrime());

    BigUInt a = BigUInt::randomBits(rng, 159);
    BigUInt b = BigUInt::randomBits(rng, 159);
    uint64_t sec_mul = sec.mul(a.toWords(5), b.toWords(5)).cycles;
    uint64_t opf_mul = opf.mul(f.fromBig(a), f.fromBig(b)).cycles;
    EXPECT_GT(sec_mul, opf_mul * 98 / 100);
    EXPECT_LT(sec_mul, opf_mul * 125 / 100);
}

TEST(Secp160AsmCycles, AdditiveReductionGainsNothingFromMac)
{
    // The paper's OPF motivation, measured: enabling the MAC-less
    // FAST->ISE transition changes nothing for secp160r1's reduction
    // (the generated routine uses no MAC), while the OPF mul drops 4x.
    Rng rng(151);
    Secp160AvrLibrary fast(CpuMode::FAST), ise(CpuMode::ISE);
    BigUInt a = BigUInt::randomBits(rng, 159);
    BigUInt b = BigUInt::randomBits(rng, 159);
    EXPECT_EQ(fast.mul(a.toWords(5), b.toWords(5)).cycles,
              ise.mul(a.toWords(5), b.toWords(5)).cycles);
}

TEST(Secp160AsmCycles, MacProductVariantValidatesAndSpeeds)
{
    // The ISE variant runs the 25 product blocks on the MAC unit
    // (correctness identical, reduction unchanged) and lands between
    // the native secp160r1 mul and the full-OPF ISE mul.
    Rng rng(152);
    Secp160AvrLibrary ise(CpuMode::ISE);
    const BigUInt p = Secp160r1Field::primeValue();
    for (int i = 0; i < 40; i++) {
        BigUInt a = BigUInt::randomBits(rng, 160);
        BigUInt b = BigUInt::randomBits(rng, 160);
        OpfRun r = ise.mulIse(a.toWords(5), b.toWords(5));
        ASSERT_EQ(BigUInt::fromWords(r.result) % p, a.mulMod(b, p))
            << a.toHex() << " * " << b.toHex();
    }

    BigUInt a = BigUInt::randomBits(rng, 159);
    BigUInt b = BigUInt::randomBits(rng, 159);
    uint64_t mac_mul = ise.mulIse(a.toWords(5), b.toWords(5)).cycles;
    uint64_t native_mul = ise.mul(a.toWords(5), b.toWords(5)).cycles;
    OpfAvrLibrary opf(paperOpfPrime(), CpuMode::ISE);
    OpfField f(paperOpfPrime());
    uint64_t opf_mul =
        opf.mul(f.fromBig(a), f.fromBig(b)).cycles;
    EXPECT_LT(mac_mul, native_mul);   // the MAC product phase helps...
    EXPECT_GT(mac_mul, opf_mul);      // ...but the OPF still wins
}

TEST(Secp160AsmCycles, MulIseRequiresIseMode)
{
    Rng rng(153);
    Secp160AvrLibrary ca(CpuMode::CA);
    BigUInt a = BigUInt::randomBits(rng, 159);
    EXPECT_DEATH(ca.mulIse(a.toWords(5), a.toWords(5)),
                 "requires ISE");
}
