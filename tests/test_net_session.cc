/**
 * @file
 * LossyLink and ReliableSession tests: seeded determinism of the
 * impairment draws, exactly-once in-order delivery across a hostile
 * link, window backpressure, exponential backoff to a ceiling,
 * retry-cap failure, and the FaultInjector link tap (single-shot and
 * burst schedules corrupting frames in flight).
 */

#include <gtest/gtest.h>

#include "net/link.hh"
#include "net/session.hh"

using namespace jaavr;
using namespace jaavr::net;

namespace
{

std::vector<uint8_t>
payloadFor(uint32_t i)
{
    return {uint8_t(i), uint8_t(i >> 8), 0xab};
}

/** Pump a duplex link between two sessions until idle or deadline. */
struct SessionPair
{
    explicit SessionPair(const LinkConfig &lc,
                         const SessionConfig &sc = {})
        : link(lc), a(sc), b(sc)
    {
        a.setTransmit([this](std::vector<uint8_t> d, SimTime t) {
            link.forward.transmit(std::move(d), t);
        });
        b.setTransmit([this](std::vector<uint8_t> d, SimTime t) {
            link.backward.transmit(std::move(d), t);
        });
        a.setDeliver([this](const Frame &f, SimTime) {
            gotA.push_back(f.payload);
        });
        b.setDeliver([this](const Frame &f, SimTime) {
            gotB.push_back(f.payload);
        });
    }

    void
    pump(SimTime until, SimTime step = 250)
    {
        while (now < until) {
            now += step;
            for (auto &d : link.forward.drain(now))
                b.onWire(d, now);
            for (auto &d : link.backward.drain(now))
                a.onWire(d, now);
            a.poll(now);
            b.poll(now);
        }
    }

    DuplexLink link;
    ReliableSession a, b;
    SimTime now = 0;
    std::vector<std::vector<uint8_t>> gotA, gotB;
};

} // anonymous namespace

TEST(LossyLink, PerfectLinkDeliversInOrder)
{
    LinkConfig lc;
    lc.jitterUs = 0;
    LossyLink link(lc);
    for (uint32_t i = 0; i < 5; i++)
        link.transmit(payloadFor(i), i * 10);
    auto out = link.drain(5'000);
    ASSERT_EQ(out.size(), 5u);
    for (uint32_t i = 0; i < 5; i++)
        EXPECT_EQ(out[i], payloadFor(i));
    EXPECT_TRUE(link.idle());
}

TEST(LossyLink, SameSeedReplaysIdentically)
{
    LinkConfig lc;
    lc.dropPermil = 300;
    lc.dupPermil = 200;
    lc.reorderPermil = 200;
    lc.flipPermil = 300;
    lc.seed = 42;
    LossyLink x(lc), y(lc);
    std::vector<std::vector<uint8_t>> outX, outY;
    for (uint32_t i = 0; i < 200; i++) {
        x.transmit(payloadFor(i), i * 100);
        y.transmit(payloadFor(i), i * 100);
    }
    for (auto &d : x.drain(1'000'000))
        outX.push_back(std::move(d));
    for (auto &d : y.drain(1'000'000))
        outY.push_back(std::move(d));
    EXPECT_EQ(outX, outY); // byte-identical impairments
    EXPECT_EQ(x.stats().dropped, y.stats().dropped);
    EXPECT_EQ(x.stats().bitFlipped, y.stats().bitFlipped);
    EXPECT_GT(x.stats().dropped, 0u);
    EXPECT_GT(x.stats().duplicated, 0u);
    EXPECT_GT(x.stats().bitFlipped, 0u);
    EXPECT_GT(x.stats().reordered, 0u);

    LinkConfig other = lc;
    other.seed = 43;
    LossyLink z(other);
    for (uint32_t i = 0; i < 200; i++)
        z.transmit(payloadFor(i), i * 100);
    std::vector<std::vector<uint8_t>> outZ;
    for (auto &d : z.drain(1'000'000))
        outZ.push_back(std::move(d));
    EXPECT_NE(outX, outZ); // a different seed impairs differently
}

TEST(LossyLink, ImpairmentRatesAreRoughlyHonored)
{
    LinkConfig lc;
    lc.dropPermil = 500;
    lc.seed = 7;
    LossyLink link(lc);
    for (uint32_t i = 0; i < 1000; i++)
        link.transmit(payloadFor(i), i);
    // 50% +- generous slack on 1000 trials.
    EXPECT_GT(link.stats().dropped, 400u);
    EXPECT_LT(link.stats().dropped, 600u);
}

TEST(ReliableSession, CleanLinkDeliversInOrderOnce)
{
    SessionPair p({});
    for (uint32_t i = 0; i < 8; i++)
        EXPECT_TRUE(p.a.send(FrameType::Data, payloadFor(i), p.now));
    p.pump(50'000);
    ASSERT_EQ(p.gotB.size(), 8u);
    for (uint32_t i = 0; i < 8; i++)
        EXPECT_EQ(p.gotB[i], payloadFor(i));
    EXPECT_EQ(p.a.stats().retransmits, 0u);
    EXPECT_EQ(p.a.inflight(), 0u);
}

TEST(ReliableSession, WindowBackpressuresSender)
{
    SessionConfig sc;
    sc.window = 4;
    SessionPair p({}, sc);
    for (uint32_t i = 0; i < 4; i++)
        EXPECT_TRUE(p.a.send(FrameType::Data, payloadFor(i), p.now));
    EXPECT_FALSE(p.a.send(FrameType::Data, payloadFor(99), p.now));
    EXPECT_EQ(p.a.stats().sendRefused, 1u);
    p.pump(20'000);
    // Acks opened the window again.
    EXPECT_TRUE(p.a.send(FrameType::Data, payloadFor(4), p.now));
}

TEST(ReliableSession, HostileLinkStillDeliversExactlyOnceInOrder)
{
    LinkConfig lc;
    lc.dropPermil = 250;
    lc.dupPermil = 150;
    lc.reorderPermil = 150;
    lc.flipPermil = 150;
    lc.seed = 1234;
    SessionConfig sc;
    sc.maxRetries = 30;
    SessionPair p(lc, sc);

    const uint32_t kCount = 60;
    uint32_t sent = 0;
    while (p.gotB.size() < kCount && p.now < 10'000'000) {
        if (sent < kCount &&
            p.a.send(FrameType::Data, payloadFor(sent), p.now))
            sent++;
        p.pump(p.now + 500);
    }
    ASSERT_EQ(p.gotB.size(), kCount);
    for (uint32_t i = 0; i < kCount; i++)
        EXPECT_EQ(p.gotB[i], payloadFor(i)); // in order, exactly once
    EXPECT_FALSE(p.a.failed());
    EXPECT_GT(p.a.stats().retransmits, 0u);
    // The codec saw the flipped frames and rejected them.
    EXPECT_GT(p.b.decoderStats().badCrc + p.a.decoderStats().badCrc,
              0u);
}

TEST(ReliableSession, DeadLinkFailsAfterRetryCapWithBackoff)
{
    LinkConfig lc;
    lc.dropPermil = 1000; // everything vanishes
    SessionConfig sc;
    sc.maxRetries = 6;
    SessionPair p(lc, sc);
    EXPECT_TRUE(p.a.send(FrameType::Data, payloadFor(0), p.now));
    p.pump(10'000'000, 1'000);
    EXPECT_TRUE(p.a.failed());
    EXPECT_EQ(p.a.stats().sessionFailures, 1u);
    EXPECT_EQ(p.a.stats().retransmits, 6u);
    // Further sends are refused until the node resets the epoch.
    EXPECT_FALSE(p.a.send(FrameType::Data, payloadFor(1), p.now));
    p.a.reset(1);
    EXPECT_FALSE(p.a.failed());
    EXPECT_TRUE(p.a.send(FrameType::Data, payloadFor(1), p.now));
}

TEST(ReliableSession, BackoffDoublesToCeiling)
{
    LinkConfig lc;
    lc.dropPermil = 1000;
    SessionConfig sc;
    sc.rtoUs = 1'000;
    sc.rtoMaxUs = 8'000;
    sc.jitterPermil = 0; // exact timings for this test
    sc.maxRetries = 10;
    SessionPair p(lc, sc);
    EXPECT_TRUE(p.a.send(FrameType::Data, payloadFor(0), p.now));

    std::vector<SimTime> timeouts;
    SimTime now = 0;
    for (int i = 0; i < 10; i++) {
        SimTime at = p.a.nextTimeoutAt();
        timeouts.push_back(at - now);
        now = at;
        p.a.poll(now);
    }
    // 1ms, then doubling to the 8ms ceiling and sticking there.
    std::vector<SimTime> want{1'000, 2'000, 4'000, 8'000, 8'000,
                              8'000, 8'000, 8'000, 8'000, 8'000};
    EXPECT_EQ(timeouts, want);
    EXPECT_GT(p.a.stats().backoffCeilingHits, 0u);
}

TEST(ReliableSession, ReorderedFramesAreHeldAndReleasedInOrder)
{
    LinkConfig lc;
    lc.reorderPermil = 400;
    lc.seed = 5;
    SessionConfig sc;
    sc.maxRetries = 30;
    SessionPair p(lc, sc);
    const uint32_t kCount = 40;
    uint32_t sent = 0;
    while (p.gotB.size() < kCount && p.now < 5'000'000) {
        if (sent < kCount &&
            p.a.send(FrameType::Data, payloadFor(sent), p.now))
            sent++;
        p.pump(p.now + 500);
    }
    ASSERT_EQ(p.gotB.size(), kCount);
    for (uint32_t i = 0; i < kCount; i++)
        EXPECT_EQ(p.gotB[i], payloadFor(i));
    EXPECT_GT(p.b.stats().outOfOrderHeld, 0u);
}

TEST(FaultLinkTapTest, SingleShotDropsOneFrame)
{
    FaultInjector inj;
    FaultPlan plan;
    plan.target = FaultTarget::InstSkip; // in link terms: drop
    plan.atEntry = true;
    plan.entryPc = 3; // frame index 3
    inj.arm(plan, 0);
    FaultLinkTap tap(inj);

    LinkConfig lc;
    lc.jitterUs = 0;
    LossyLink link(lc);
    link.setTap(&tap);
    for (uint32_t i = 0; i < 6; i++)
        link.transmit(payloadFor(i), i * 10);
    auto out = link.drain(100'000);
    ASSERT_EQ(out.size(), 5u);
    EXPECT_EQ(link.stats().tapDropped, 1u);
    for (auto &d : out)
        EXPECT_NE(d, payloadFor(3)); // exactly frame 3 vanished
}

TEST(FaultLinkTapTest, BurstScheduleCorruptsSeveralFrames)
{
    FaultInjector inj;
    FaultPlan base;
    base.target = FaultTarget::Sram; // in link terms: XOR a byte
    base.sramAddr = 1;
    base.mask = 0xff;
    base.triggerCycle = 0;
    Rng rng(9);
    // Three corruptions, the first immediate, later ones ~20us apart.
    inj.armSchedule(burstPlans(base, 3, 20, 0, rng), 0);
    FaultLinkTap tap(inj);

    LinkConfig lc;
    lc.jitterUs = 0;
    LossyLink link(lc);
    link.setTap(&tap);
    for (uint32_t i = 0; i < 10; i++)
        link.transmit(payloadFor(i), i * 10);
    auto out = link.drain(100'000);
    ASSERT_EQ(out.size(), 10u);
    EXPECT_EQ(inj.firedCount(), 3u);
    EXPECT_EQ(link.stats().tapMutated, 3u);
    size_t corrupted = 0;
    for (uint32_t i = 0; i < 10; i++)
        if (out[i] != payloadFor(i))
            corrupted++;
    EXPECT_EQ(corrupted, 3u);
}

TEST(FaultLinkTapTest, CorruptedFramesDieAtTheDecoder)
{
    // End to end: a burst tap XORs bytes inside encoded frames; the
    // session's CRC rejects every corrupted frame, retransmission
    // recovers, and delivery stays exactly-once in-order.
    FaultInjector inj;
    FaultPlan base;
    base.target = FaultTarget::Sram;
    base.sramAddr = 20; // inside header/payload for our frame sizes
    base.mask = 0x55;
    Rng rng(11);
    inj.armSchedule(burstPlans(base, 4, 1'000, 500, rng), 0);
    FaultLinkTap tap(inj);

    SessionConfig sc;
    sc.maxRetries = 20;
    SessionPair p({}, sc);
    p.link.forward.setTap(&tap);

    const uint32_t kCount = 20;
    uint32_t sent = 0;
    while (p.gotB.size() < kCount && p.now < 5'000'000) {
        if (sent < kCount &&
            p.a.send(FrameType::Data, payloadFor(sent), p.now))
            sent++;
        p.pump(p.now + 500);
    }
    ASSERT_EQ(p.gotB.size(), kCount);
    for (uint32_t i = 0; i < kCount; i++)
        EXPECT_EQ(p.gotB[i], payloadFor(i));
    EXPECT_EQ(inj.firedCount(), 4u);
    EXPECT_EQ(p.link.forward.stats().tapMutated, 4u);
    EXPECT_GT(p.b.decoderStats().badCrc, 0u);
}
