/**
 * @file
 * Unit and property tests for BigUInt.
 */

#include <gtest/gtest.h>

#include "bigint/big_uint.hh"
#include "support/random.hh"

using namespace jaavr;

TEST(BigUInt, ZeroBasics)
{
    BigUInt z;
    EXPECT_TRUE(z.isZero());
    EXPECT_EQ(z.numLimbs(), 0u);
    EXPECT_EQ(z.bitLength(), 0u);
    EXPECT_EQ(z.toHex(), "0");
    EXPECT_FALSE(z.isOdd());
    EXPECT_EQ(z, BigUInt(0));
}

TEST(BigUInt, FromUint64)
{
    BigUInt v(0x123456789abcdef0ULL);
    EXPECT_EQ(v.toHex(), "123456789abcdef0");
    EXPECT_EQ(v.toUint64(), 0x123456789abcdef0ULL);
    EXPECT_EQ(v.numLimbs(), 2u);
    EXPECT_EQ(v.bitLength(), 61u);
}

TEST(BigUInt, HexRoundTrip)
{
    const char *cases[] = {
        "0", "1", "ff", "100", "ffffffff", "100000000",
        "ff4c0000000000000000000000000000000000000001",
        "deadbeefcafebabe0123456789abcdef",
    };
    for (const char *c : cases) {
        BigUInt v = BigUInt::fromHex(c);
        EXPECT_EQ(v.toHex(), std::string(c)) << c;
    }
}

TEST(BigUInt, HexPrefixAndSeparators)
{
    EXPECT_EQ(BigUInt::fromHex("0xff_00 11").toHex(), "ff0011");
    EXPECT_EQ(BigUInt::fromHex("0x0").toHex(), "0");
    // Odd number of digits implies a leading zero nibble.
    EXPECT_EQ(BigUInt::fromHex("abc").toHex(), "abc");
}

TEST(BigUInt, BytesRoundTrip)
{
    Rng rng(1);
    for (int i = 0; i < 50; i++) {
        BigUInt v = BigUInt::randomBits(rng, 1 + rng.below(256));
        auto bytes = v.toBytes();
        EXPECT_EQ(BigUInt::fromBytes(bytes), v);
    }
}

TEST(BigUInt, BytesPadding)
{
    BigUInt v(0x1234);
    auto b = v.toBytes(4);
    ASSERT_EQ(b.size(), 4u);
    EXPECT_EQ(b[0], 0);
    EXPECT_EQ(b[1], 0);
    EXPECT_EQ(b[2], 0x12);
    EXPECT_EQ(b[3], 0x34);
}

TEST(BigUInt, WordsRoundTrip)
{
    BigUInt v = BigUInt::fromHex("0123456789abcdef0011223344556677");
    auto w = v.toWords(5);
    ASSERT_EQ(w.size(), 5u);
    EXPECT_EQ(w[0], 0x44556677u);
    EXPECT_EQ(w[4], 0u);
    EXPECT_EQ(BigUInt::fromWords(w), v);
}

TEST(BigUInt, AddSubInverse)
{
    Rng rng(2);
    for (int i = 0; i < 200; i++) {
        BigUInt a = BigUInt::randomBits(rng, 200);
        BigUInt b = BigUInt::randomBits(rng, 200);
        BigUInt s = a + b;
        EXPECT_EQ(s - a, b);
        EXPECT_EQ(s - b, a);
        EXPECT_GE(s, a);
    }
}

TEST(BigUInt, AddCarryChain)
{
    BigUInt a = BigUInt::fromHex("ffffffffffffffffffffffffffffffff");
    BigUInt one(1);
    EXPECT_EQ((a + one).toHex(), "100000000000000000000000000000000");
}

TEST(BigUInt, SubUnderflowPanics)
{
    EXPECT_DEATH(BigUInt(1) - BigUInt(2), "underflow");
}

TEST(BigUInt, MulCommutativeAssociative)
{
    Rng rng(3);
    for (int i = 0; i < 100; i++) {
        BigUInt a = BigUInt::randomBits(rng, 150);
        BigUInt b = BigUInt::randomBits(rng, 150);
        BigUInt c = BigUInt::randomBits(rng, 150);
        EXPECT_EQ(a * b, b * a);
        EXPECT_EQ((a * b) * c, a * (b * c));
        EXPECT_EQ(a * (b + c), a * b + a * c);
    }
}

TEST(BigUInt, MulKnownValue)
{
    BigUInt a = BigUInt::fromHex("ffffffffffffffff");
    EXPECT_EQ((a * a).toHex(), "fffffffffffffffe0000000000000001");
}

TEST(BigUInt, ShiftRoundTrip)
{
    Rng rng(4);
    for (int i = 0; i < 100; i++) {
        BigUInt a = BigUInt::randomBits(rng, 180);
        unsigned k = rng.below(120);
        EXPECT_EQ((a << k) >> k, a);
        EXPECT_EQ(a << k, a * BigUInt::powerOfTwo(k));
    }
}

TEST(BigUInt, ShiftByZeroAndMultiples)
{
    BigUInt a = BigUInt::fromHex("deadbeef12345678");
    EXPECT_EQ(a << 0, a);
    EXPECT_EQ(a >> 0, a);
    EXPECT_EQ((a << 32).limb(0), 0u);
    EXPECT_EQ((a << 32).limb(1), 0x12345678u);
    EXPECT_EQ((a << 64) >> 64, a);
}

TEST(BigUInt, DivModIdentityProperty)
{
    Rng rng(5);
    for (int i = 0; i < 300; i++) {
        BigUInt n = BigUInt::randomBits(rng, 1 + rng.below(400));
        BigUInt d = BigUInt::randomBits(rng, 1 + rng.below(250));
        if (d.isZero())
            d = BigUInt(1);
        BigUInt q, r;
        BigUInt::divMod(n, d, q, r);
        EXPECT_LT(r, d);
        EXPECT_EQ(q * d + r, n);
    }
}

TEST(BigUInt, DivModKnuthAddBackCase)
{
    // Crafted to exercise the rare add-back branch of Algorithm D:
    // divisor with top limb 0x80000000 and dividend top pattern that
    // overestimates qhat.
    BigUInt d = BigUInt::fromHex("800000000000000000000001");
    BigUInt n = (d << 96) - BigUInt(1);
    BigUInt q, r;
    BigUInt::divMod(n, d, q, r);
    EXPECT_EQ(q * d + r, n);
    EXPECT_LT(r, d);
}

TEST(BigUInt, DivBySingleLimb)
{
    BigUInt n = BigUInt::fromHex("123456789abcdef0123456789");
    BigUInt d(0x10000);
    EXPECT_EQ(n / d, BigUInt::fromHex("123456789abcdef012345"));
    EXPECT_EQ((n % d).toUint64(), 0x6789ULL);
}

TEST(BigUInt, DivByLargerIsZero)
{
    BigUInt n(5), d(7);
    EXPECT_TRUE((n / d).isZero());
    EXPECT_EQ(n % d, n);
}

TEST(BigUInt, CompareOrdering)
{
    BigUInt a(1), b(2), c = BigUInt::powerOfTwo(100);
    EXPECT_LT(a, b);
    EXPECT_LT(b, c);
    EXPECT_GT(c, a);
    EXPECT_LE(a, a);
    EXPECT_GE(c, c);
    EXPECT_NE(a, b);
}

TEST(BigUInt, BitAccess)
{
    BigUInt v = BigUInt::powerOfTwo(97) + BigUInt(5);
    EXPECT_TRUE(v.bit(0));
    EXPECT_FALSE(v.bit(1));
    EXPECT_TRUE(v.bit(2));
    EXPECT_TRUE(v.bit(97));
    EXPECT_FALSE(v.bit(96));
    EXPECT_FALSE(v.bit(300));
    EXPECT_EQ(v.bitLength(), 98u);
}

TEST(BigUInt, TrailingZeros)
{
    EXPECT_EQ(BigUInt(1).trailingZeros(), 0u);
    EXPECT_EQ(BigUInt(8).trailingZeros(), 3u);
    EXPECT_EQ(BigUInt::powerOfTwo(144).trailingZeros(), 144u);
}

TEST(BigUInt, ModularHelpers)
{
    Rng rng(6);
    BigUInt m = (BigUInt(65356) << 144) + BigUInt(1);  // the paper OPF prime
    for (int i = 0; i < 100; i++) {
        BigUInt a = BigUInt::random(rng, m);
        BigUInt b = BigUInt::random(rng, m);
        BigUInt s = a.addMod(b, m);
        EXPECT_LT(s, m);
        EXPECT_EQ(s, (a + b) % m);
        BigUInt d = a.subMod(b, m);
        EXPECT_LT(d, m);
        EXPECT_EQ(d.addMod(b, m), a);
        EXPECT_EQ(a.mulMod(b, m), (a * b) % m);
    }
}

TEST(BigUInt, PowModSmall)
{
    BigUInt m(1000000007ULL);
    EXPECT_EQ(BigUInt(2).powMod(BigUInt(10), m).toUint64(), 1024u);
    // Fermat: a^(p-1) = 1 mod p.
    EXPECT_EQ(BigUInt(12345).powMod(m - BigUInt(1), m).toUint64(), 1u);
    EXPECT_EQ(BigUInt(5).powMod(BigUInt(0), m).toUint64(), 1u);
}

TEST(BigUInt, InvModProperty)
{
    Rng rng(7);
    BigUInt m = (BigUInt(65356) << 144) + BigUInt(1);  // the paper OPF prime
    for (int i = 0; i < 50; i++) {
        BigUInt a = BigUInt::random(rng, m);
        if (a.isZero())
            continue;
        BigUInt inv = a.invMod(m);
        EXPECT_LT(inv, m);
        EXPECT_TRUE(a.mulMod(inv, m).isOne());
    }
}

TEST(BigUInt, InvModSmallKnown)
{
    // 3 * 4 = 12 = 1 mod 11.
    EXPECT_EQ(BigUInt(3).invMod(BigUInt(11)).toUint64(), 4u);
    EXPECT_EQ(BigUInt(1).invMod(BigUInt(7)).toUint64(), 1u);
}

TEST(BigUInt, Gcd)
{
    EXPECT_EQ(BigUInt(12).gcd(BigUInt(18)).toUint64(), 6u);
    EXPECT_EQ(BigUInt(17).gcd(BigUInt(31)).toUint64(), 1u);
    EXPECT_EQ(BigUInt(0).gcd(BigUInt(5)).toUint64(), 5u);
    Rng rng(8);
    for (int i = 0; i < 30; i++) {
        BigUInt a = BigUInt::randomBits(rng, 128);
        BigUInt b = BigUInt::randomBits(rng, 128);
        if (a.isZero() || b.isZero())
            continue;
        BigUInt g = a.gcd(b);
        EXPECT_TRUE((a % g).isZero());
        EXPECT_TRUE((b % g).isZero());
    }
}

TEST(BigUInt, RandomBelowBound)
{
    Rng rng(9);
    BigUInt bound = BigUInt::fromHex("10000000000000000000001");
    for (int i = 0; i < 100; i++)
        EXPECT_LT(BigUInt::random(rng, bound), bound);
}

TEST(BigUInt, RandomBitsRespectsWidth)
{
    Rng rng(10);
    for (int i = 0; i < 100; i++) {
        unsigned bits = 1 + rng.below(300);
        EXPECT_LE(BigUInt::randomBits(rng, bits).bitLength(), bits);
    }
}

TEST(BigUInt, CapacityOverflowPanics)
{
    BigUInt big = BigUInt::powerOfTwo(1270);
    EXPECT_DEATH(big * big, "capacity");
}
