/**
 * @file
 * Tests for the scalar recodings: binary, NAF, wNAF, JSF, and the GLV
 * decomposition.
 */

#include <gtest/gtest.h>

#include "bigint/big_int.hh"
#include "scalar/glv_decompose.hh"
#include "scalar/recode.hh"
#include "support/random.hh"

using namespace jaavr;

TEST(Recode, BinaryRoundTrip)
{
    Rng rng(60);
    for (int i = 0; i < 100; i++) {
        BigUInt k = BigUInt::randomBits(rng, 1 + rng.below(200));
        auto d = binaryDigits(k);
        EXPECT_EQ(digitsToScalar(d), k);
        for (int8_t v : d)
            EXPECT_TRUE(v == 0 || v == 1);
    }
}

TEST(Recode, NafRoundTripAndNonAdjacency)
{
    Rng rng(61);
    for (int i = 0; i < 200; i++) {
        BigUInt k = BigUInt::randomBits(rng, 1 + rng.below(200));
        auto d = nafDigits(k);
        EXPECT_EQ(digitsToScalar(d), k);
        for (size_t j = 0; j + 1 < d.size(); j++) {
            EXPECT_TRUE(d[j] >= -1 && d[j] <= 1);
            if (d[j] != 0) {
                EXPECT_EQ(d[j + 1], 0)
                    << "adjacent non-zeros at " << j;
            }
        }
    }
}

TEST(Recode, NafKnownValues)
{
    // 7 = 8 - 1 -> (-1, 0, 0, 1).
    auto d = nafDigits(BigUInt(7));
    ASSERT_EQ(d.size(), 4u);
    EXPECT_EQ(d[0], -1);
    EXPECT_EQ(d[1], 0);
    EXPECT_EQ(d[2], 0);
    EXPECT_EQ(d[3], 1);
    EXPECT_TRUE(nafDigits(BigUInt(0)).empty());
}

TEST(Recode, NafDensityIsAboutOneThird)
{
    Rng rng(62);
    uint64_t nonzero = 0, total = 0;
    for (int i = 0; i < 100; i++) {
        auto d = nafDigits(BigUInt::randomBits(rng, 160));
        for (int8_t v : d)
            if (v != 0)
                nonzero++;
        total += d.size();
    }
    double density = double(nonzero) / double(total);
    EXPECT_GT(density, 0.30);
    EXPECT_LT(density, 0.37);
}

TEST(Recode, WNafRoundTripAndWindow)
{
    Rng rng(63);
    for (unsigned w = 2; w <= 6; w++) {
        for (int i = 0; i < 50; i++) {
            BigUInt k = BigUInt::randomBits(rng, 160);
            auto d = wNafDigits(k, w);
            EXPECT_EQ(digitsToScalar(d), k);
            int32_t bound = 1 << (w - 1);
            for (size_t j = 0; j < d.size(); j++) {
                EXPECT_LT(std::abs(int(d[j])), bound);
                if (d[j] != 0) {
                    EXPECT_TRUE(d[j] & 1);  // odd digits
                    for (size_t l = j + 1; l < j + w && l < d.size(); l++)
                        EXPECT_EQ(d[l], 0);
                }
            }
        }
    }
}

TEST(Recode, JsfRoundTripBothScalars)
{
    Rng rng(64);
    for (int i = 0; i < 200; i++) {
        BigUInt k1 = BigUInt::randomBits(rng, 1 + rng.below(90));
        BigUInt k2 = BigUInt::randomBits(rng, 1 + rng.below(90));
        auto d = jsfDigits(k1, k2);
        std::vector<int8_t> d1, d2;
        for (auto [u1, u2] : d) {
            d1.push_back(u1);
            d2.push_back(u2);
        }
        EXPECT_EQ(digitsToScalar(d1), k1);
        EXPECT_EQ(digitsToScalar(d2), k2);
    }
}

TEST(Recode, JsfJointDensityIsAboutHalf)
{
    // The JSF joint Hamming density of 1/2 is what gives the paper's
    // n/4 additions for the GLV method (Section II-D).
    Rng rng(65);
    uint64_t joint_nonzero = 0, total = 0;
    for (int i = 0; i < 100; i++) {
        auto d = jsfDigits(BigUInt::randomBits(rng, 81),
                           BigUInt::randomBits(rng, 81));
        for (auto [u1, u2] : d)
            if (u1 != 0 || u2 != 0)
                joint_nonzero++;
        total += d.size();
    }
    double density = double(joint_nonzero) / double(total);
    EXPECT_GT(density, 0.46);
    EXPECT_LT(density, 0.54);
}

TEST(Recode, JsfLengthAtMostOneOverMax)
{
    Rng rng(66);
    for (int i = 0; i < 50; i++) {
        BigUInt k1 = BigUInt::randomBits(rng, 80);
        BigUInt k2 = BigUInt::randomBits(rng, 80);
        auto d = jsfDigits(k1, k2);
        unsigned maxlen = std::max(k1.bitLength(), k2.bitLength());
        EXPECT_LE(d.size(), maxlen + 1);
    }
}

TEST(Recode, JsfZeroPairs)
{
    EXPECT_TRUE(jsfDigits(BigUInt(0), BigUInt(0)).empty());
    auto d = jsfDigits(BigUInt(1), BigUInt(0));
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].first, 1);
    EXPECT_EQ(d[0].second, 0);
}

TEST(GlvDecompose, HalfLengthProperty)
{
    // A synthetic (n, lambda): n a 160-bit prime, lambda a root of
    // x^2 + x + 1 would need a special n, but the decomposition only
    // needs *some* lambda in (0, n); use a random one and check the
    // defining identity plus the length bound.
    Rng rng(67);
    BigUInt n = BigUInt::fromHex(
        "0100000000000000000001f4c8f927aed3ca752257");  // secp160r1 n
    BigUInt lambda = BigUInt::random(rng, n);
    GlvDecomposer dec(n, lambda);
    for (int i = 0; i < 100; i++) {
        BigUInt k = BigUInt::random(rng, n);
        GlvSplit s = dec.decompose(k);
        BigUInt rebuilt = (s.k1 + s.k2 * BigInt(lambda)).mod(n);
        EXPECT_EQ(rebuilt, k);
        // |k1|, |k2| around sqrt(n): allow a few bits of slack.
        EXPECT_LE(s.k1.magnitude().bitLength(), 86u);
        EXPECT_LE(s.k2.magnitude().bitLength(), 86u);
    }
}

TEST(GlvDecompose, BasisVectorsInLattice)
{
    Rng rng(68);
    BigUInt n = BigUInt::fromHex(
        "0100000000000000000001f4c8f927aed3ca752257");
    BigUInt lambda = BigUInt::random(rng, n);
    GlvDecomposer dec(n, lambda);
    auto check = [&](const BigInt &a, const BigInt &b) {
        EXPECT_TRUE((a + b * BigInt(lambda)).mod(n).isZero());
    };
    check(dec.a1(), dec.b1());
    check(dec.a2(), dec.b2());
}

TEST(GlvDecompose, ZeroAndSmallScalars)
{
    Rng rng(69);
    BigUInt n = BigUInt::fromHex(
        "0100000000000000000001f4c8f927aed3ca752257");
    BigUInt lambda = BigUInt::random(rng, n);
    GlvDecomposer dec(n, lambda);
    for (uint64_t k : {0ULL, 1ULL, 2ULL, 12345ULL}) {
        GlvSplit s = dec.decompose(BigUInt(k));
        EXPECT_EQ((s.k1 + s.k2 * BigInt(lambda)).mod(n),
                  BigUInt(k) % n);
    }
}
