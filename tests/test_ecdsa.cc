/**
 * @file
 * ECDSA tests over the curves of the paper: the standardized
 * secp160r1/secp160k1 and the constructed GLV OPF curve (whose exact
 * order the CM machinery provides).
 */

#include <gtest/gtest.h>

#include "curves/ecdsa.hh"
#include "curves/standard_curves.hh"

using namespace jaavr;

namespace
{

Ecdsa
secp160r1Ecdsa()
{
    return Ecdsa(secp160r1Curve(), secp160r1Generator().g,
                 secp160r1Generator().order);
}

} // anonymous namespace

TEST(Ecdsa, SignVerifyRoundTripSecp160r1)
{
    Ecdsa dsa = secp160r1Ecdsa();
    Rng rng(120);
    EcdsaKeyPair kp = dsa.generateKey(rng);
    for (int i = 0; i < 5; i++) {
        std::string msg = "sensor reading #" + std::to_string(i);
        EcdsaSignature sig = dsa.sign(msg, kp.d, rng);
        EXPECT_TRUE(dsa.verify(msg, sig, kp.q)) << msg;
    }
}

TEST(Ecdsa, SignVerifyRoundTripGlvOpf)
{
    Ecdsa dsa(glvOpfCurve());
    Rng rng(121);
    EcdsaKeyPair kp = dsa.generateKey(rng);
    EcdsaSignature sig = dsa.sign("glv message", kp.d, rng);
    EXPECT_TRUE(dsa.verify("glv message", sig, kp.q));
}

TEST(Ecdsa, SignVerifyRoundTripSecp160k1)
{
    Ecdsa dsa(secp160k1Curve());
    Rng rng(122);
    EcdsaKeyPair kp = dsa.generateKey(rng);
    EcdsaSignature sig = dsa.sign("k1 message", kp.d, rng);
    EXPECT_TRUE(dsa.verify("k1 message", sig, kp.q));
}

TEST(Ecdsa, WrongMessageRejected)
{
    Ecdsa dsa = secp160r1Ecdsa();
    Rng rng(123);
    EcdsaKeyPair kp = dsa.generateKey(rng);
    EcdsaSignature sig = dsa.sign("original", kp.d, rng);
    EXPECT_FALSE(dsa.verify("tampered", sig, kp.q));
}

TEST(Ecdsa, WrongKeyRejected)
{
    Ecdsa dsa = secp160r1Ecdsa();
    Rng rng(124);
    EcdsaKeyPair kp1 = dsa.generateKey(rng);
    EcdsaKeyPair kp2 = dsa.generateKey(rng);
    EcdsaSignature sig = dsa.sign("msg", kp1.d, rng);
    EXPECT_FALSE(dsa.verify("msg", sig, kp2.q));
}

TEST(Ecdsa, MalformedSignatureRejected)
{
    Ecdsa dsa = secp160r1Ecdsa();
    Rng rng(125);
    EcdsaKeyPair kp = dsa.generateKey(rng);
    EcdsaSignature sig = dsa.sign("msg", kp.d, rng);

    EcdsaSignature zero_r = sig;
    zero_r.r = BigUInt(0);
    EXPECT_FALSE(dsa.verify("msg", zero_r, kp.q));

    EcdsaSignature big_s = sig;
    big_s.s = dsa.order();
    EXPECT_FALSE(dsa.verify("msg", big_s, kp.q));

    EcdsaSignature flipped = sig;
    flipped.s = dsa.order() - sig.s;  // valid for -R: wrong here
    EXPECT_FALSE(flipped.s == sig.s);
}

TEST(Ecdsa, SignatureBitFlipsRejected)
{
    Ecdsa dsa = secp160r1Ecdsa();
    Rng rng(126);
    EcdsaKeyPair kp = dsa.generateKey(rng);
    EcdsaSignature sig = dsa.sign("bit flip test", kp.d, rng);
    for (unsigned bit : {0u, 17u, 80u, 159u}) {
        EcdsaSignature bad = sig;
        BigUInt mask = BigUInt::powerOfTwo(bit);
        // XOR via add/sub on the bit.
        bad.s = bad.s.bit(bit) ? bad.s - mask : bad.s + mask;
        if (bad.s.isZero() || bad.s >= dsa.order())
            continue;
        EXPECT_FALSE(dsa.verify("bit flip test", bad, kp.q)) << bit;
    }
}

TEST(Ecdsa, OffCurvePublicKeyRejected)
{
    Ecdsa dsa = secp160r1Ecdsa();
    Rng rng(127);
    EcdsaKeyPair kp = dsa.generateKey(rng);
    EcdsaSignature sig = dsa.sign("msg", kp.d, rng);
    AffinePoint bogus(kp.q.x, secp160r1Field().add(kp.q.y, BigUInt(1)));
    EXPECT_FALSE(dsa.verify("msg", sig, bogus));
}

TEST(Ecdsa, GlvAndNafSignaturesInteroperate)
{
    // A signature produced with the endomorphism-accelerated signer
    // verifies with the plain-NAF verifier and vice versa.
    const GlvCurve &c = secp160k1Curve();
    Ecdsa fast(c);
    Ecdsa plain(c, c.generator(), c.order());
    Rng rng(128);
    EcdsaKeyPair kp = fast.generateKey(rng);
    EcdsaSignature sig = fast.sign("interop", kp.d, rng);
    EXPECT_TRUE(plain.verify("interop", sig, kp.q));
    EcdsaSignature sig2 = plain.sign("interop2", kp.d, rng);
    EXPECT_TRUE(fast.verify("interop2", sig2, kp.q));
}
