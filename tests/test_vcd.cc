/**
 * @file
 * VCD waveform writer tests: an attached-but-idle writer adds exactly
 * zero cycles on every run-loop instantiation (mirroring
 * DebugHookAddsZeroCyclesWhenNotStopping for the WaveSink observer),
 * recording does not perturb timing, emitted dumps parse back
 * (header, declarations, change records), are cycle-accurate and
 * byte-identical across identical runs, and trap/call-depth events
 * land on the right wires. Also covers Machine::publishMetrics(),
 * which shares the retired-statistics plumbing.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "avr/machine.hh"
#include "avr/vcd.hh"
#include "avrasm/assembler.hh"
#include "avrgen/opf_harness.hh"
#include "field/opf_field.hh"
#include "nt/opf_prime.hh"
#include "support/metrics.hh"
#include "support/random.hh"

using namespace jaavr;

namespace
{

void
expectSameState(const Machine &a, const Machine &b)
{
    for (unsigned i = 0; i < 32; i++)
        EXPECT_EQ(a.reg(i), b.reg(i)) << "r" << i;
    EXPECT_EQ(a.sreg(), b.sreg());
    EXPECT_EQ(a.sp(), b.sp());
    EXPECT_EQ(a.pc(), b.pc());
    EXPECT_EQ(a.stats().instructions, b.stats().instructions);
    EXPECT_EQ(a.stats().cycles, b.stats().cycles);
    EXPECT_EQ(a.mac().totalMacs(), b.mac().totalMacs());
}

/** One parsed value change: (time, signal name, bit string). */
struct VcdChange
{
    uint64_t time;
    std::string name;
    std::string bits;
};

struct VcdData
{
    std::map<std::string, unsigned> widths; ///< by signal name
    std::vector<VcdChange> changes;         ///< includes $dumpvars
    uint64_t finalTime = 0;

    /** Last value of @p name at or before the end, as an integer. */
    uint64_t
    lastValue(const std::string &name) const
    {
        uint64_t v = 0;
        for (const VcdChange &c : changes)
            if (c.name == name)
                v = std::stoull(c.bits, nullptr, 2);
        return v;
    }

    uint64_t
    maxValue(const std::string &name) const
    {
        uint64_t best = 0;
        for (const VcdChange &c : changes)
            if (c.name == name)
                best = std::max<uint64_t>(
                    best, std::stoull(c.bits, nullptr, 2));
        return best;
    }
};

/** Minimal VCD reader for what VcdWriter emits; fails the test on
 *  undeclared identifiers, bad values or time going backwards.
 *  (void return so gtest's fatal ASSERT macros are usable.) */
void
parseVcd(const std::string &path, VcdData &out)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::map<char, std::string> byId;
    std::string line;
    uint64_t now = 0;
    bool sawTimescale = false, sawEnd = false;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (line.rfind("$var", 0) == 0) {
            std::istringstream tok(line);
            std::string var, wire, id, name, end;
            unsigned width;
            tok >> var >> wire >> width >> id >> name >> end;
            EXPECT_EQ(wire, "wire");
            EXPECT_EQ(end, "$end");
            ASSERT_EQ(id.size(), 1u);
            EXPECT_EQ(byId.count(id[0]), 0u) << "duplicate id";
            byId[id[0]] = name;
            out.widths[name] = width;
            continue;
        }
        if (line.rfind("$timescale", 0) == 0) {
            sawTimescale = true;
            continue;
        }
        if (line.rfind("$enddefinitions", 0) == 0) {
            sawEnd = true;
            continue;
        }
        if (line[0] == '$') // $comment/$scope/$upscope/$dumpvars/$end
            continue;
        if (line[0] == '#') {
            uint64_t t = std::stoull(line.substr(1));
            EXPECT_GE(t, now) << "time went backwards";
            now = t;
            out.finalTime = t;
            continue;
        }
        ASSERT_TRUE(sawEnd) << "value change before $enddefinitions";
        std::string bits;
        char id;
        if (line[0] == 'b') {
            size_t sp = line.find(' ');
            ASSERT_NE(sp, std::string::npos) << line;
            ASSERT_EQ(line.size(), sp + 2) << line;
            bits = line.substr(1, sp - 1);
            id = line[sp + 1];
        } else {
            ASSERT_EQ(line.size(), 2u) << line;
            ASSERT_TRUE(line[0] == '0' || line[0] == '1') << line;
            bits = line.substr(0, 1);
            id = line[1];
        }
        ASSERT_TRUE(byId.count(id)) << "undeclared id " << id;
        const std::string &name = byId[id];
        ASSERT_LE(bits.size(), out.widths[name]);
        for (char b : bits)
            ASSERT_TRUE(b == '0' || b == '1') << line;
        out.changes.push_back({now, name, bits});
    }
    EXPECT_TRUE(sawTimescale);
    EXPECT_TRUE(sawEnd);
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
tmpPath(const std::string &leaf)
{
    return testing::TempDir() + "/" + leaf;
}

} // anonymous namespace

/*
 * The WaveSink pinning contract: a VcdWriter that is attached but not
 * recording must leave every run-loop instantiation (all modes, fast
 * and reference, profiled or not) with bit-identical results, cycles
 * and architectural state — the same discipline
 * DebugHookAddsZeroCyclesWhenNotStopping pins for the debug hook.
 */
TEST(Vcd, AttachedButIdleAddsZeroCycles)
{
    OpfPrime prime = makeOpf(0xff4c, 144);
    OpfField field(prime);
    Rng rng(0x5cd);
    auto a = field.fromBig(BigUInt::randomBits(rng, prime.k));
    auto b = field.fromBig(BigUInt::randomBits(rng, prime.k));

    for (CpuMode mode : {CpuMode::CA, CpuMode::FAST, CpuMode::ISE}) {
        for (bool reference : {false, true}) {
            OpfAvrLibrary base(prime, mode);
            base.machine().forceReference = reference;
            OpfRun r0 = base.mul(a, b);

            OpfAvrLibrary idle(prime, mode);
            idle.machine().forceReference = reference;
            VcdWriter vcd; // attached, never opened
            idle.machine().setWaveSink(&vcd);
            EXPECT_FALSE(vcd.active());
            OpfRun r1 = idle.mul(a, b);
            EXPECT_EQ(r1.result, r0.result);
            EXPECT_EQ(r1.cycles, r0.cycles);
            EXPECT_EQ(r1.instructions, r0.instructions);
            expectSameState(idle.machine(), base.machine());
            EXPECT_EQ(vcd.samples(), 0u);
        }
    }
}

/** Recording routes through the reference loop, whose timing is
 *  pinned to the fast path — so the dump is free of time skew. */
TEST(Vcd, RecordingDoesNotPerturbTimingOrResults)
{
    OpfPrime prime = makeOpf(0xff4c, 144);
    OpfField field(prime);
    Rng rng(0x7a1);
    auto a = field.fromBig(BigUInt::randomBits(rng, prime.k));
    auto b = field.fromBig(BigUInt::randomBits(rng, prime.k));

    OpfAvrLibrary base(prime, CpuMode::ISE);
    OpfRun r0 = base.mul(a, b);

    OpfAvrLibrary rec(prime, CpuMode::ISE);
    VcdWriter vcd;
    rec.machine().setWaveSink(&vcd);
    std::string path = tmpPath("jaavr_vcd_mul.vcd");
    ASSERT_TRUE(vcd.open(path, rec.machine()));
    EXPECT_TRUE(vcd.active());
    OpfRun r1 = rec.mul(a, b);
    vcd.close();

    EXPECT_EQ(r1.result, r0.result);
    EXPECT_EQ(r1.cycles, r0.cycles);
    EXPECT_EQ(r1.instructions, r0.instructions);
    EXPECT_EQ(vcd.samples(), r0.instructions);
    EXPECT_EQ(vcd.time(), r0.cycles);

    VcdData dump;
    parseVcd(path, dump);
    EXPECT_EQ(dump.finalTime, r0.cycles);
    // The ISE multiplication exercises the MAC accumulator.
    EXPECT_GT(dump.maxValue("mac_cnt"), 0u);
    std::remove(path.c_str());
}

TEST(Vcd, DumpIsCycleAccurateAndByteIdenticalAcrossRuns)
{
    Program prog = assemble(R"(
            call sub1
            nop
            ret
        sub1:
            ldi r16, 7
            ret
    )",
                            "vcd_calls");

    std::string paths[2] = {tmpPath("jaavr_vcd_a.vcd"),
                            tmpPath("jaavr_vcd_b.vcd")};
    uint64_t cycles[2];
    for (int i = 0; i < 2; i++) {
        Machine m(CpuMode::ISE);
        m.loadProgram(prog.words, 0);
        VcdWriter vcd;
        m.setWaveSink(&vcd);
        ASSERT_TRUE(vcd.open(paths[i], m));
        RunResult r = m.call(0);
        ASSERT_TRUE(r.ok());
        cycles[i] = r.cycles;
        vcd.close();
    }
    EXPECT_EQ(cycles[0], cycles[1]);

    std::string a = slurp(paths[0]), b = slurp(paths[1]);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "identical runs must dump identical bytes";

    VcdData dump;
    parseVcd(paths[0], dump);
    EXPECT_EQ(dump.finalTime, cycles[0]);
    // CALL enters sub1 (depth 1), both RETs unwind back to 0.
    EXPECT_EQ(dump.maxValue("call_depth"), 1u);
    EXPECT_EQ(dump.lastValue("call_depth"), 0u);
    EXPECT_EQ(dump.lastValue("trap"), 0u);
    // r16 <- 7 retires, so the declared wires carry real traffic.
    ASSERT_EQ(dump.widths.at("pc"), 16u);
    ASSERT_EQ(dump.widths.at("mac_acc"), 72u);
    std::remove(paths[0].c_str());
    std::remove(paths[1].c_str());
}

TEST(Vcd, TrapLandsOnTheTrapWire)
{
    Program prog = assemble("nop\nnop\nnop\nret\n", "vcd_trap");
    Machine m(CpuMode::CA);
    m.loadProgram(prog.words, 0);
    uint64_t full = m.call(0);

    Machine t(CpuMode::CA);
    t.loadProgram(prog.words, 0);
    VcdWriter vcd;
    t.setWaveSink(&vcd);
    std::string path = tmpPath("jaavr_vcd_trap.vcd");
    ASSERT_TRUE(vcd.open(path, t));
    RunResult r = t.call(0, full); // budget == consumption traps
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.trap.kind, TrapKind::CycleBudget);
    vcd.close();

    VcdData dump;
    parseVcd(path, dump);
    EXPECT_EQ(dump.lastValue("trap"),
              static_cast<uint64_t>(TrapKind::CycleBudget));
    EXPECT_EQ(dump.finalTime, r.cycles);
}

TEST(Vcd, PublishMetricsExportsRetiredStatistics)
{
    OpfPrime prime = makeOpf(0xff4c, 144);
    OpfField field(prime);
    Rng rng(0x91f);
    auto a = field.fromBig(BigUInt::randomBits(rng, prime.k));
    auto b = field.fromBig(BigUInt::randomBits(rng, prime.k));

    OpfAvrLibrary lib(prime, CpuMode::ISE);
    OpfRun r = lib.mul(a, b);
    ASSERT_EQ(r.trap.kind, TrapKind::None);

    MetricsRegistry reg;
    lib.machine().publishMetrics(reg);
    const ExecStats &st = lib.machine().stats();
    EXPECT_EQ(reg.counter("iss_instructions").value(), st.instructions);
    EXPECT_EQ(reg.counter("iss_cycles").value(), st.cycles);
    EXPECT_EQ(reg.counter("iss_mac_stall_nops").value(),
              st.macStallNops);
    EXPECT_EQ(reg.counter("mac_ops_total").value(),
              lib.machine().mac().totalMacs());
    // The generated ISE multiplication uses the Algorithm-2 (load)
    // trigger exclusively; both nibbles of each byte count.
    EXPECT_EQ(reg.counter("mac_triggers", {{"alg", "2"}}).value(),
              lib.machine().mac().alg2Macs());
    EXPECT_GT(lib.machine().mac().alg2Macs(), 0u);
    EXPECT_EQ(reg.counter("mac_triggers", {{"alg", "1"}}).value() +
                  reg.counter("mac_triggers", {{"alg", "2"}}).value(),
              lib.machine().mac().totalMacs());
    // Per-op counters carry only retired mnemonics.
    EXPECT_EQ(reg.counter("iss_op_retired", {{"op", "ret"}}).value(),
              st.count(Op::RET));
    EXPECT_GT(st.count(Op::RET), 0u);

    // Trap telemetry: a budget trap shows up under its kind label.
    Machine m(CpuMode::CA);
    Program prog = assemble("nop\nnop\nret\n", "vcd_metrics_trap");
    m.loadProgram(prog.words, 0);
    RunResult rr = m.call(0, 1);
    ASSERT_EQ(rr.trap.kind, TrapKind::CycleBudget);
    EXPECT_EQ(m.stats().traps(TrapKind::CycleBudget), 1u);
    MetricsRegistry treg;
    m.publishMetrics(treg);
    EXPECT_EQ(
        treg.counter("iss_traps", {{"kind", "cycle_budget"}}).value(),
        1u);
}
