/**
 * @file
 * Parameterized sweep over OPF primes: the whole stack (word-level
 * model, generated assembly, Montgomery domain) must work for any
 * valid u, not only the paper's 65356 — the flexibility/scalability
 * argument the paper makes for the ASIP approach.
 */

#include <gtest/gtest.h>

#include "avrgen/opf_harness.hh"
#include "field/montgomery_domain.hh"
#include "field/opf_field.hh"
#include "nt/mont_inverse.hh"
#include "nt/opf_prime.hh"
#include "nt/primality.hh"
#include "support/random.hh"

using namespace jaavr;

namespace
{

class OpfSweepTest : public ::testing::TestWithParam<uint32_t>
{
  protected:
    OpfSweepTest() : prime(makeOpf(GetParam(), 144)), field(prime) {}

    OpfPrime prime;
    OpfField field;
};

} // anonymous namespace

TEST_P(OpfSweepTest, WordModelMatchesBigUInt)
{
    Rng rng(GetParam());
    for (int i = 0; i < 40; i++) {
        BigUInt a = BigUInt::randomBits(rng, 160);
        BigUInt b = BigUInt::randomBits(rng, 160);
        auto wa = field.fromBig(a), wb = field.fromBig(b);
        EXPECT_EQ(field.canonical(field.add(wa, wb)),
                  (a + b) % prime.p);
        BigUInt rinv = field.montR().invMod(prime.p);
        EXPECT_EQ(field.canonical(field.montMul(wa, wb)),
                  a.mulMod(b, prime.p).mulMod(rinv, prime.p));
    }
}

TEST_P(OpfSweepTest, MacCountIndependentOfU)
{
    Rng rng(GetParam() + 1);
    auto a = field.fromBig(BigUInt::randomBits(rng, 160));
    auto b = field.fromBig(BigUInt::randomBits(rng, 160));
    field.montMul(a, b);
    EXPECT_EQ(field.lastStats().wordMacs, 30u);
    EXPECT_LE(field.maxAccBits(), 72u);
}

TEST_P(OpfSweepTest, GeneratedAssemblyValidates)
{
    OpfAvrLibrary lib(prime, CpuMode::ISE);
    Rng rng(GetParam() + 2);
    for (int i = 0; i < 10; i++) {
        auto a = field.fromBig(BigUInt::randomBits(rng, 160));
        auto b = field.fromBig(BigUInt::randomBits(rng, 160));
        EXPECT_EQ(lib.add(a, b).result, field.add(a, b));
        EXPECT_EQ(lib.sub(a, b).result, field.sub(a, b));
        EXPECT_EQ(lib.mul(a, b).result, field.montMul(a, b));
    }
    // Some sweep moduli are composite with small factors; the
    // inversion needs gcd(x, p) = 1.
    BigUInt x;
    do {
        x = BigUInt(2) + BigUInt::random(rng, prime.p - BigUInt(2));
    } while (!x.gcd(prime.p).isOne());
    EXPECT_EQ(field.toBig(lib.inv(field.fromBig(x)).result),
              montInverse(x, prime.p, 160));
}

TEST_P(OpfSweepTest, CycleCountsIndependentOfU)
{
    // The routine structure depends only on s, not on u: all OPF
    // primes of one size share the same timing.
    OpfAvrLibrary lib(prime, CpuMode::CA);
    OpfAvrLibrary ref(paperOpfPrime(), CpuMode::CA);
    Rng rng(GetParam() + 3);
    auto a = field.fromBig(BigUInt::randomBits(rng, 160));
    auto b = field.fromBig(BigUInt::randomBits(rng, 160));
    OpfField reff(paperOpfPrime());
    auto ra = reff.fromBig(BigUInt::randomBits(rng, 160));
    auto rb = reff.fromBig(BigUInt::randomBits(rng, 160));
    EXPECT_EQ(lib.add(a, b).cycles, ref.add(ra, rb).cycles);
    EXPECT_EQ(lib.mul(a, b).cycles, ref.mul(ra, rb).cycles);
}

// A spread of 16-bit u values (top of the range, prime and composite
// moduli alike: the arithmetic identities hold for any odd modulus of
// the right shape; primality only matters for inversion, so the
// sweep values are chosen with gcd(x, p) = 1 overwhelmingly likely).
INSTANTIATE_TEST_SUITE_P(UValues, OpfSweepTest,
                         ::testing::Values(0x8001u, 0x9c3fu, 0xa555u,
                                           0xbeefu, 0xcafdu, 0xe001u,
                                           0xff4cu, 0xffffu));
