/**
 * @file
 * DebugTarget tests: gdb register-block layout, the composite gdb
 * address space (flash / data / EEPROM), flash patching through the
 * decode-cache refresh, software breakpoints with resume step-over,
 * read/write/access data watchpoints on both execution paths, sliced
 * continues, single-stepping, and trap-to-signal mapping.
 */

#include <gtest/gtest.h>

#include "avrasm/assembler.hh"
#include "debug/target.hh"

using namespace jaavr;

namespace
{

/** Machine with @p src assembled at word 0 and an attached target. */
struct Session
{
    explicit Session(const std::string &src,
                     CpuMode mode = CpuMode::CA)
        : m(mode), t(m)
    {
        m.loadProgram(assemble(src, "dbg").words, 0);
    }

    Machine m;
    DebugTarget t;
};

} // anonymous namespace

TEST(DebugTarget, RegisterBlockLayout)
{
    Machine m(CpuMode::CA);
    DebugTarget t(m);
    for (unsigned i = 0; i < 32; i++)
        m.setReg(i, static_cast<uint8_t>(0xa0 + i));
    m.setSreg(0x5a);
    m.setSp(0x10fe);
    m.setPc(0x2001);

    std::array<uint8_t, DebugTarget::kRegBlockLen> block =
        t.readRegisters();
    for (unsigned i = 0; i < 32; i++)
        EXPECT_EQ(block[i], 0xa0 + i);
    EXPECT_EQ(block[32], 0x5a);
    EXPECT_EQ(block[33], 0xfe); // SP little-endian
    EXPECT_EQ(block[34], 0x10);
    // PC is a byte address: 0x2001 words -> 0x4002 bytes, LE.
    EXPECT_EQ(block[35], 0x02);
    EXPECT_EQ(block[36], 0x40);
    EXPECT_EQ(block[37], 0x00);
    EXPECT_EQ(block[38], 0x00);

    // Whole-block write round-trips.
    block[5] = 0x17;
    block[33] = 0x80;
    t.writeRegisters(block);
    EXPECT_EQ(m.reg(5), 0x17);
    EXPECT_EQ(m.sp(), 0x1080);
    EXPECT_EQ(m.pc(), 0x2001u);

    // Single-register access, gdb numbering.
    EXPECT_EQ(t.readRegister(5), (std::vector<uint8_t>{0x17}));
    EXPECT_EQ(t.readRegister(32), (std::vector<uint8_t>{0x5a}));
    EXPECT_EQ(t.readRegister(33), (std::vector<uint8_t>{0x80, 0x10}));
    EXPECT_EQ(t.readRegister(34),
              (std::vector<uint8_t>{0x02, 0x40, 0x00, 0x00}));
    EXPECT_TRUE(t.readRegister(35).empty());

    EXPECT_TRUE(t.writeRegister(34, {0x08, 0x00, 0x00, 0x00}));
    EXPECT_EQ(m.pc(), 4u);
    EXPECT_TRUE(t.writeRegister(33, {0x34, 0x12}));
    EXPECT_EQ(m.sp(), 0x1234);
    EXPECT_FALSE(t.writeRegister(34, {0x08})); // wrong width
    EXPECT_FALSE(t.writeRegister(99, {0x00}));
}

TEST(DebugTarget, GdbAddressSpaces)
{
    Session s("ldi r16, 0x42\nret\n");
    std::vector<uint8_t> out;

    // Flash is byte-addressed little-endian words at gdb address 0.
    ASSERT_TRUE(s.t.readMemory(0, 4, out));
    uint16_t w0 = s.m.flashWord(0), w1 = s.m.flashWord(1);
    EXPECT_EQ(out, (std::vector<uint8_t>{
                       static_cast<uint8_t>(w0),
                       static_cast<uint8_t>(w0 >> 8),
                       static_cast<uint8_t>(w1),
                       static_cast<uint8_t>(w1 >> 8)}));

    // Reads past the end of flash read as erased, like a device dump.
    ASSERT_TRUE(s.t.readMemory(2 * Machine::flashWords - 1, 2, out));
    EXPECT_EQ(out[1], 0xff);

    // Data space at 0x800000: registers, I/O, SRAM.
    s.m.writeData(0x0150, 0xab);
    ASSERT_TRUE(s.t.readMemory(kGdbDataBase + 0x0150, 1, out));
    EXPECT_EQ(out, (std::vector<uint8_t>{0xab}));
    ASSERT_TRUE(s.t.writeMemory(kGdbDataBase + 0x0151, {0xcd}));
    EXPECT_EQ(s.m.readData(0x0151), 0xcd);
    ASSERT_TRUE(s.t.readMemory(kGdbDataBase + 16, 1, out));
    EXPECT_EQ(out[0], s.m.reg(16));

    // EEPROM space: erased until written, bounded at 4 KiB.
    ASSERT_TRUE(s.t.readMemory(kGdbEepromBase + 0x10, 2, out));
    EXPECT_EQ(out, (std::vector<uint8_t>{0xff, 0xff}));
    ASSERT_TRUE(s.t.writeMemory(kGdbEepromBase + 0x10, {0x11, 0x22}));
    ASSERT_TRUE(s.t.readMemory(kGdbEepromBase + 0x10, 2, out));
    EXPECT_EQ(out, (std::vector<uint8_t>{0x11, 0x22}));
    EXPECT_FALSE(s.t.readMemory(kGdbEepromBase + kEepromSize, 1, out));
    EXPECT_FALSE(
        s.t.writeMemory(kGdbEepromBase + kEepromSize - 1, {1, 2}));
}

TEST(DebugTarget, FlashWritesRefreshTheDecodeCache)
{
    Session s("nop\nret\n");
    // Patch word 0 from NOP to `ldi r24, 0x42` and execute: the
    // patched instruction must run, proving the decode cache followed
    // the flash write.
    uint16_t ldi = assemble("ldi r24, 0x42", "p").words[0];
    ASSERT_TRUE(s.t.writeMemory(0, {static_cast<uint8_t>(ldi),
                                    static_cast<uint8_t>(ldi >> 8)}));
    EXPECT_EQ(s.m.flashWord(0), ldi);
    s.m.setSp(0x10ff);
    s.t.setupCall(0);
    StopInfo stop = s.t.resume();
    EXPECT_EQ(stop.kind, StopInfo::Kind::Exited);
    EXPECT_EQ(s.m.reg(24), 0x42);
}

TEST(DebugTarget, BreakpointHitsAndStepsOverOnResume)
{
    Session s(R"(
        ldi r16, 3
    loop:
        dec r16
        brne loop
        ret
    )");
    // Word 1 is the DEC inside the loop; gdb sends byte addresses.
    ASSERT_TRUE(s.t.setBreakpoint(2 * 1));
    s.m.setSp(0x10ff);
    s.t.setupCall(0);

    StopInfo stop = s.t.resume();
    ASSERT_EQ(stop.kind, StopInfo::Kind::Breakpoint);
    EXPECT_EQ(stop.signal, 5);
    EXPECT_EQ(s.m.pc(), 1u);     // stopped *before* the DEC
    EXPECT_EQ(s.m.reg(16), 3);   // nothing retired at the breakpoint

    // Resume steps over the breakpoint and stops on the next hit.
    stop = s.t.resume();
    ASSERT_EQ(stop.kind, StopInfo::Kind::Breakpoint);
    EXPECT_EQ(s.m.pc(), 1u);
    EXPECT_EQ(s.m.reg(16), 2);   // one loop iteration in between

    // Clearing the breakpoint lets the run finish.
    ASSERT_TRUE(s.t.clearBreakpoint(2 * 1));
    EXPECT_FALSE(s.t.clearBreakpoint(2 * 1));
    stop = s.t.resume();
    EXPECT_EQ(stop.kind, StopInfo::Kind::Exited);
    EXPECT_EQ(s.m.reg(16), 0);
}

TEST(DebugTarget, WriteWatchpointStopsAfterTheStore)
{
    for (bool reference : {false, true}) {
        Session s(R"(
            ldi r16, 0x99
            sts 0x0150, r16
            ldi r17, 1
            ret
        )");
        s.m.forceReference = reference;
        // gdb sends data-space watch addresses with the 0x800000 bias.
        ASSERT_TRUE(s.t.setWatchpoint(WatchKind::Write,
                                      kGdbDataBase + 0x0150, 2));
        s.m.setSp(0x10ff);
        s.t.setupCall(0);
        StopInfo stop = s.t.resume();
        ASSERT_EQ(stop.kind, StopInfo::Kind::Watchpoint)
            << "reference " << reference;
        EXPECT_EQ(stop.watchAddr, 0x0150);
        EXPECT_EQ(stop.signal, 5);
        // PC is past the STS (gdb reports writes after the fact), but
        // the following LDI has not run.
        EXPECT_EQ(s.m.pc(), 3u);
        EXPECT_EQ(s.m.readData(0x0150), 0x99);
        EXPECT_EQ(s.m.reg(17), 0);

        stop = s.t.resume();
        EXPECT_EQ(stop.kind, StopInfo::Kind::Exited);
        EXPECT_EQ(s.m.reg(17), 1);
    }
}

TEST(DebugTarget, ReadAndAccessWatchpointFlavours)
{
    const char *src = R"(
        ldi r26, 0x50
        ldi r27, 0x01
        ld r16, X
        st X, r16
        ret
    )";
    {
        Session s(src);
        ASSERT_TRUE(
            s.t.setWatchpoint(WatchKind::Read, 0x0150, 1)); // raw addr
        s.m.setSp(0x10ff);
        s.t.setupCall(0);
        StopInfo stop = s.t.resume();
        ASSERT_EQ(stop.kind, StopInfo::Kind::Watchpoint);
        EXPECT_EQ(stop.watchKind, WatchKind::Read);
        EXPECT_EQ(s.m.pc(), 3u); // after the LD, before the ST
    }
    {
        Session s(src);
        ASSERT_TRUE(s.t.setWatchpoint(WatchKind::Access, 0x0150, 1));
        s.m.setSp(0x10ff);
        s.t.setupCall(0);
        ASSERT_EQ(s.t.resume().kind, StopInfo::Kind::Watchpoint);
        EXPECT_EQ(s.m.pc(), 3u); // the load already trips it
        ASSERT_EQ(s.t.resume().kind, StopInfo::Kind::Watchpoint);
        EXPECT_EQ(s.m.pc(), 4u); // and the store trips it again
    }
    {
        Session s(src); // write-watch does not fire on the read
        ASSERT_TRUE(s.t.setWatchpoint(WatchKind::Write, 0x0150, 1));
        s.m.setSp(0x10ff);
        s.t.setupCall(0);
        ASSERT_EQ(s.t.resume().kind, StopInfo::Kind::Watchpoint);
        EXPECT_EQ(s.m.pc(), 4u);
        ASSERT_TRUE(
            s.t.clearWatchpoint(WatchKind::Write, 0x0150, 1));
        EXPECT_FALSE(
            s.t.clearWatchpoint(WatchKind::Write, 0x0150, 1));
    }
}

TEST(DebugTarget, SingleStepWalksInstructions)
{
    Session s("ldi r16, 1\nldi r17, 2\nret\n");
    s.m.setSp(0x10ff);
    s.t.setupCall(0);

    StopInfo stop = s.t.stepOne();
    EXPECT_EQ(stop.kind, StopInfo::Kind::Stepped);
    EXPECT_EQ(s.m.pc(), 1u);
    EXPECT_EQ(s.m.reg(16), 1);
    stop = s.t.stepOne();
    EXPECT_EQ(s.m.reg(17), 2);
    // Stepping the final RET lands on the exit sentinel.
    stop = s.t.stepOne();
    EXPECT_EQ(stop.kind, StopInfo::Kind::Exited);
    // Further steps keep reporting the exit.
    EXPECT_EQ(s.t.stepOne().kind, StopInfo::Kind::Exited);
}

TEST(DebugTarget, StepFiresWatchpoints)
{
    Session s("ldi r16, 5\nsts 0x0150, r16\nret\n");
    ASSERT_TRUE(s.t.setWatchpoint(WatchKind::Write, 0x0150, 1));
    s.m.setSp(0x10ff);
    s.t.setupCall(0);
    EXPECT_EQ(s.t.stepOne().kind, StopInfo::Kind::Stepped);
    StopInfo stop = s.t.stepOne(); // the STS
    EXPECT_EQ(stop.kind, StopInfo::Kind::Watchpoint);
    EXPECT_EQ(stop.watchAddr, 0x0150);
}

TEST(DebugTarget, TrapsMapToGdbSignals)
{
    {
        Session s("nop\nret\n");
        // .word is unavailable; corrupt the NOP into the reserved
        // opcode 0x9404 instead.
        s.m.corruptFlashWord(0, 0x9404);
        s.m.setSp(0x10ff);
        s.t.setupCall(0);
        StopInfo stop = s.t.resume();
        ASSERT_EQ(stop.kind, StopInfo::Kind::Trapped);
        EXPECT_EQ(stop.trap.kind, TrapKind::IllegalOpcode);
        EXPECT_EQ(stop.signal, 4); // SIGILL
    }
    {
        Session s("ldi r26, 0x00\nldi r27, 0x20\nld r16, X\nret\n");
        s.m.setSp(0x10ff);
        s.t.setupCall(0);
        StopInfo stop = s.t.resume();
        ASSERT_EQ(stop.kind, StopInfo::Kind::Trapped);
        EXPECT_EQ(stop.trap.kind, TrapKind::SramOutOfBounds);
        EXPECT_EQ(stop.signal, 11); // SIGSEGV
        EXPECT_EQ(stop.trap.addr, 0x2000u);
    }
}

TEST(DebugTarget, SlicedContinueReportsRunning)
{
    Session s(R"(
        ldi r16, 0
        ldi r17, 200
    outer:
        dec r16
        brne outer
        dec r17
        brne outer
        ret
    )");
    s.m.setSp(0x10ff);
    s.t.setupCall(0);
    // Force the slicing machinery: a breakpoint nothing reaches keeps
    // wantsStops() true, and tiny slices mean many Running returns.
    ASSERT_TRUE(s.t.setBreakpoint(2 * 0x3000));
    int slices = 0;
    StopInfo stop = s.t.resume(1000);
    while (stop.kind == StopInfo::Kind::Running) {
        slices++;
        ASSERT_LT(slices, 1000000);
        stop = s.t.resume(1000);
    }
    EXPECT_EQ(stop.kind, StopInfo::Kind::Exited);
    EXPECT_GT(slices, 10);
    // An interrupted continue reports SIGINT and abandons the run.
    s.t.setupCall(0);
    ASSERT_EQ(s.t.resume(100).kind, StopInfo::Kind::Running);
    StopInfo irq = s.t.interrupt();
    EXPECT_EQ(irq.kind, StopInfo::Kind::Interrupted);
    EXPECT_EQ(irq.signal, 2);
}

TEST(DebugTarget, BreakpointValidation)
{
    Machine m(CpuMode::CA);
    DebugTarget t(m);
    EXPECT_FALSE(t.setBreakpoint(1));               // odd byte address
    EXPECT_FALSE(t.setBreakpoint(kGdbDataBase));    // not flash
    EXPECT_FALSE(t.setBreakpoint(2 * Machine::flashWords));
    EXPECT_FALSE(t.setWatchpoint(WatchKind::Write, 0x150, 0));
    EXPECT_FALSE(
        t.setWatchpoint(WatchKind::Write, kGdbEepromBase + 4, 1));
    EXPECT_FALSE(t.clearWatchpoint(WatchKind::Write, 0x150, 1));
}
