/**
 * @file
 * Tests of the word-level OPF model against the generic golden field,
 * plus the paper's structural claims: s^2 + s word MACs per Montgomery
 * multiplication, a 72-bit accumulator bound, incomplete-reduction
 * semantics, and the 2^-32 borrow-ripple corner case.
 */

#include <gtest/gtest.h>

#include "bigint/big_int.hh"
#include "field/opf_field.hh"
#include "field/prime_field.hh"
#include "nt/opf_prime.hh"

using namespace jaavr;

namespace
{

class OpfFieldTest : public ::testing::Test
{
  protected:
    OpfFieldTest() : opf(paperOpfPrime()), f(opf), gold(opf.p) {}

    OpfPrime opf;
    OpfField f;
    PrimeField gold;
};

} // anonymous namespace

TEST_F(OpfFieldTest, LayoutConstants)
{
    EXPECT_EQ(f.words(), 5u);
    EXPECT_EQ(f.bits(), 160u);
    EXPECT_EQ(f.montR(), BigUInt::powerOfTwo(160) % opf.p);
}

TEST_F(OpfFieldTest, RoundTripConversions)
{
    Rng rng(40);
    for (int i = 0; i < 50; i++) {
        BigUInt a = gold.random(rng);
        EXPECT_EQ(f.toBig(f.fromBig(a)), a);
        EXPECT_EQ(f.fromMont(f.toMont(a)), a);
    }
}

TEST_F(OpfFieldTest, AddMatchesGolden)
{
    Rng rng(41);
    for (int i = 0; i < 500; i++) {
        // Operands may be incompletely reduced: anywhere in [0, 2^160).
        BigUInt a = BigUInt::randomBits(rng, 160);
        BigUInt b = BigUInt::randomBits(rng, 160);
        auto r = f.add(f.fromBig(a), f.fromBig(b));
        EXPECT_EQ(f.canonical(r), (a + b) % opf.p);
        // Result stays within the incomplete range (5 words).
        EXPECT_LE(f.toBig(r).bitLength(), 160u);
    }
}

TEST_F(OpfFieldTest, SubMatchesGolden)
{
    Rng rng(42);
    for (int i = 0; i < 500; i++) {
        BigUInt a = BigUInt::randomBits(rng, 160);
        BigUInt b = BigUInt::randomBits(rng, 160);
        auto r = f.sub(f.fromBig(a), f.fromBig(b));
        BigUInt expect = (BigInt(a) - BigInt(b)).mod(opf.p);
        EXPECT_EQ(f.canonical(r), expect);
    }
}

TEST_F(OpfFieldTest, MontMulMatchesGolden)
{
    Rng rng(43);
    for (int i = 0; i < 500; i++) {
        BigUInt a = gold.random(rng);
        BigUInt b = gold.random(rng);
        auto r = f.montMul(f.toMont(a), f.toMont(b));
        EXPECT_EQ(f.fromMont(r), gold.mul(a, b));
    }
}

TEST_F(OpfFieldTest, MontMulAcceptsIncompleteOperands)
{
    Rng rng(44);
    for (int i = 0; i < 200; i++) {
        // Raw 160-bit operands (not reduced below p).
        BigUInt a = BigUInt::randomBits(rng, 160);
        BigUInt b = BigUInt::randomBits(rng, 160);
        auto r = f.montMul(f.fromBig(a), f.fromBig(b));
        // r = a*b*R^-1 mod p.
        BigUInt rinv = f.montR().invMod(opf.p);
        BigUInt expect = a.mulMod(b, opf.p).mulMod(rinv, opf.p);
        EXPECT_EQ(f.canonical(r), expect);
    }
}

TEST_F(OpfFieldTest, MacCountIsSSquaredPlusS)
{
    // Paper, Section III-B: the FIPS method on a low-weight prime
    // needs s^2 + s word-level multiplications (25 + 5 for s = 5).
    Rng rng(45);
    auto a = f.toMont(gold.random(rng));
    auto b = f.toMont(gold.random(rng));
    f.montMul(a, b);
    EXPECT_EQ(f.lastStats().wordMacs, 5u * 5u + 5u);
}

TEST_F(OpfFieldTest, AccumulatorFitsIn72Bits)
{
    // Paper, Section IV-A: the hardware accumulator is 72 bits wide.
    Rng rng(46);
    // Stress with all-ones operands, the worst case for column sums.
    OpfField::Words ones(f.words(), 0xffffffffu);
    f.montMul(ones, ones);
    for (int i = 0; i < 200; i++) {
        auto a = f.fromBig(BigUInt::randomBits(rng, 160));
        auto b = f.fromBig(BigUInt::randomBits(rng, 160));
        f.montMul(a, b);
    }
    EXPECT_LE(f.maxAccBits(), 72u);
    EXPECT_GE(f.maxAccBits(), 64u);  // the accumulator really is wide
}

TEST_F(OpfFieldTest, SqrMatchesMul)
{
    Rng rng(47);
    for (int i = 0; i < 100; i++) {
        auto a = f.toMont(gold.random(rng));
        EXPECT_EQ(f.montSqr(a), f.montMul(a, a));
    }
}

TEST_F(OpfFieldTest, BorrowRippleCornerCase)
{
    // Construct the paper's 2^-32 corner: an addition whose sum has a
    // zero LSW while the carry bit is set, so subtracting c*p borrows
    // out of the LSW and ripples through the zero middle words.
    // a + b = 2^160 + 2^32 * x with low word 0.
    BigUInt a = BigUInt::powerOfTwo(159) + BigUInt::powerOfTwo(32);
    BigUInt b = BigUInt::powerOfTwo(159);
    auto r = f.add(f.fromBig(a), f.fromBig(b));
    EXPECT_EQ(f.canonical(r), (a + b) % opf.p);
    EXPECT_GE(f.lastStats().borrowRipples, 1u);
}

TEST_F(OpfFieldTest, TypicalAddHasNoRipple)
{
    Rng rng(48);
    uint64_t ripples = 0;
    for (int i = 0; i < 1000; i++) {
        auto a = f.fromBig(BigUInt::randomBits(rng, 160));
        auto b = f.fromBig(BigUInt::randomBits(rng, 160));
        f.add(a, b);
        ripples += f.lastStats().borrowRipples;
    }
    // Probability ~2^-32 per op; seeing even one in 1000 would be
    // astronomically unlikely.
    EXPECT_EQ(ripples, 0u);
}

TEST_F(OpfFieldTest, MulByOneInMontDomain)
{
    Rng rng(49);
    auto one_m = f.toMont(BigUInt(1));
    for (int i = 0; i < 20; i++) {
        BigUInt a = gold.random(rng);
        auto am = f.toMont(a);
        EXPECT_EQ(f.fromMont(f.montMul(am, one_m)), a);
    }
}

TEST_F(OpfFieldTest, ZeroAbsorbs)
{
    Rng rng(50);
    OpfField::Words zero(f.words(), 0);
    auto a = f.toMont(gold.random(rng));
    EXPECT_TRUE(f.fromMont(f.montMul(a, zero)).isZero());
    EXPECT_EQ(f.canonical(f.add(a, zero)), f.fromMont(a).mulMod(
        f.montR(), opf.p));
}

TEST(OpfFieldGlv, WorksOverGlvPrime)
{
    // The whole machinery also runs over the second OPF prime used by
    // the GLV curve.
    OpfField f(glvOpfPrime());
    PrimeField gold(glvOpfPrime().p);
    Rng rng(51);
    for (int i = 0; i < 100; i++) {
        BigUInt a = gold.random(rng), b = gold.random(rng);
        EXPECT_EQ(f.fromMont(f.montMul(f.toMont(a), f.toMont(b))),
                  gold.mul(a, b));
        EXPECT_EQ(f.canonical(f.add(f.fromBig(a), f.fromBig(b))),
                  gold.add(a, b));
    }
}

TEST(OpfFieldCtor, RejectsMisalignedK)
{
    EXPECT_DEATH(OpfField(makeOpf(3, 128)), "16 mod 32");
}
