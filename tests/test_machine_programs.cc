/**
 * @file
 * Whole-program tests of the AVR machine model: small but complete
 * algorithms in assembly (string ops, sorting, jump tables, 16/32-bit
 * arithmetic idioms) that collectively exercise the addressing modes,
 * skip/branch instructions, the stack, and the multiplier the ECC
 * routines rely on — plus disassembler/assembler consistency over the
 * whole generated OPF code base.
 */

#include <gtest/gtest.h>

#include "avr/machine.hh"
#include "avrasm/assembler.hh"
#include "avrgen/opf_routines.hh"
#include "nt/opf_prime.hh"

using namespace jaavr;

TEST(MachinePrograms, MemcpyViaPostIncrement)
{
    Machine m(CpuMode::CA);
    m.loadProgram(assemble(R"(
        ; copy r16 bytes from X to Z
        copy:
            ld r18, X+
            st Z+, r18
            dec r16
            brne copy
            ret
    )", "memcpy").words);
    m.writeBytes(0x0200, {1, 2, 3, 4, 5, 6, 7, 8});
    m.setX(0x0200);
    m.setZ(0x0300);
    m.setReg(16, 8);
    m.call(0);
    EXPECT_EQ(m.readBytes(0x0300, 8),
              (std::vector<uint8_t>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(MachinePrograms, BubbleSortEightBytes)
{
    Machine m(CpuMode::FAST);
    m.loadProgram(assemble(R"(
        .equ BUF = 0x0200
        ; bubble sort 8 bytes at BUF (unsigned)
        outer:
            ldi r20, 7          ; inner iterations
            ldi r26, lo8(BUF)
            ldi r27, hi8(BUF)
            clr r21             ; swapped flag
        inner:
            ld r18, X+
            ld r19, X
            cp r19, r18
            brsh noswap         ; already ordered
            st X, r18
            st -X, r19
            adiw r26, 1
            ldi r21, 1
        noswap:
            dec r20
            brne inner
            tst r21
            brne outer
            ret
    )", "sort").words);
    m.writeBytes(0x0200, {42, 7, 99, 1, 200, 13, 77, 5});
    m.call(0);
    EXPECT_EQ(m.readBytes(0x0200, 8),
              (std::vector<uint8_t>{1, 5, 7, 13, 42, 77, 99, 200}));
}

TEST(MachinePrograms, JumpTableViaIjmp)
{
    Machine m(CpuMode::CA);
    m.loadProgram(assemble(R"(
            ; dispatch on r16 through a flash jump table
            ldi r30, lo8(table)
            ldi r31, hi8(table)
            add r30, r16
            clr r17
            adc r31, r17
            ; load the handler address from the table
            ; (word table: each entry is a code address)
            lsl r30
            rol r31
            lpm r18, Z+
            lpm r19, Z
            mov r30, r18
            mov r31, r19
            ijmp
        table:
            .dw h0, h1, h2
        h0: ldi r24, 10
            ret
        h1: ldi r24, 20
            ret
        h2: ldi r24, 30
            ret
    )", "jt").words);
    for (uint8_t sel = 0; sel < 3; sel++) {
        m.setReg(16, sel);
        m.call(0);
        EXPECT_EQ(m.reg(24), 10 * (sel + 1));
    }
}

TEST(MachinePrograms, SixteenBitDivisionByShiftSubtract)
{
    // 16/8-bit restoring division: quotient in r24, remainder r25.
    Machine m(CpuMode::CA);
    m.loadProgram(assemble(R"(
        ; dividend r25:r24, divisor r22
        div:
            ldi r20, 16
            clr r26            ; remainder
        dloop:
            lsl r24
            rol r25
            rol r26
            cp r26, r22
            brlo skip
            sub r26, r22
            inc r24
        skip:
            dec r20
            brne dloop
            mov r25, r26
            ret
    )", "div").words);
    struct Case { uint16_t n; uint8_t d; };
    for (Case c : {Case{50000, 7}, Case{1234, 5}, Case{255, 16},
                   Case{9, 10}}) {
        m.setReg(24, c.n & 0xff);
        m.setReg(25, c.n >> 8);
        m.setReg(22, c.d);
        m.call(0);
        uint16_t q = m.reg(24) | (unsigned(m.reg(1)) << 8);
        (void)q;
        EXPECT_EQ(m.reg(24), (c.n / c.d) & 0xff) << c.n;
        EXPECT_EQ(m.reg(25), c.n % c.d) << c.n;
    }
}

TEST(MachinePrograms, CpseSkipsAndSignedMul)
{
    Machine m(CpuMode::CA);
    m.loadProgram(assemble(R"(
        ; r24 = (r16 == r17) ? 1 : 0 via cpse
            clr r24
            cpse r16, r17
            rjmp done
            ldi r24, 1
        done:
        ; r0:r1 = (signed) r18 * r19 via muls
            muls r18, r19
            ret
    )", "cpse").words);
    m.setReg(16, 5);
    m.setReg(17, 5);
    m.setReg(18, 0xf8);  // -8
    m.setReg(19, 3);
    m.call(0);
    EXPECT_EQ(m.reg(24), 1);
    // -24 = 0xffe8.
    EXPECT_EQ(m.reg(0), 0xe8);
    EXPECT_EQ(m.reg(1), 0xff);

    m.setReg(16, 5);
    m.setReg(17, 6);
    m.call(0);
    EXPECT_EQ(m.reg(24), 0);
}

TEST(MachinePrograms, FmulFractionalShift)
{
    Machine m(CpuMode::CA);
    m.loadProgram(assemble("fmul r16, r17\nret", "fmul").words);
    m.setReg(16, 0x40);  // 0.5 in Q1.7
    m.setReg(17, 0x40);
    m.call(0);
    // 0.5 * 0.5 = 0.25 -> 0x2000 in Q1.15 after the fractional shift.
    EXPECT_EQ(m.reg(1), 0x20);
    EXPECT_EQ(m.reg(0), 0x00);
}

TEST(MachinePrograms, StackDepthAndRecursion)
{
    // Recursive sum 1..N via rcall (stack discipline).
    Machine m(CpuMode::CA);
    m.loadProgram(assemble(R"(
        ; r24 += r16; recurse with r16-1 until zero
        sum:
            tst r16
            breq base
            add r24, r16
            dec r16
            rcall sum
        base:
            ret
    )", "rec").words);
    m.setReg(16, 10);
    m.setReg(24, 0);
    m.call(0);
    EXPECT_EQ(m.reg(24), 55);
}

TEST(MachinePrograms, SbiCbiSbisOnIo)
{
    Machine m(CpuMode::CA);
    m.loadProgram(assemble(R"(
        .equ PORT = 0x18
            sbi PORT, 3
            sbi PORT, 5
            cbi PORT, 3
            sbis PORT, 5
            ldi r24, 99       ; skipped (bit 5 set)
            sbic PORT, 3
            ldi r25, 99       ; skipped: sbic skips when the bit is clear
            ret
    )", "io").words);
    m.call(0);
    EXPECT_EQ(m.readData(0x20 + 0x18), 0x20);
    EXPECT_EQ(m.reg(24), 0);
    EXPECT_EQ(m.reg(25), 0);
}

TEST(MachinePrograms, DisassemblerCoversGeneratedCode)
{
    // Every instruction of every generated OPF routine decodes to a
    // valid operation and disassembles to a non-empty string.
    OpfPrime prime = paperOpfPrime();
    for (const std::string &src :
         {genOpfAddSub(prime, false), genOpfAddSub(prime, true),
          genOpfMulNative(prime), genOpfMulIse(prime),
          genOpfMontInverse(prime)}) {
        Program prog = assemble(src, "cover");
        for (size_t i = 0; i < prog.words.size();) {
            uint16_t w1 =
                i + 1 < prog.words.size() ? prog.words[i + 1] : 0;
            Inst inst = decode(prog.words[i], w1);
            EXPECT_NE(inst.op, Op::INVALID) << "word " << i;
            EXPECT_FALSE(disassemble(inst).empty());
            i += inst.words;
        }
    }
}
