/**
 * @file
 * Tests for the two-pass assembler: encodings round-trip through the
 * independent decoder, labels and directives resolve, and operand
 * violations are diagnosed.
 */

#include <gtest/gtest.h>

#include "avr/isa.hh"
#include "avrasm/assembler.hh"

using namespace jaavr;

namespace
{

/** Assemble a single line and decode its first word(s). */
Inst
one(const std::string &line)
{
    Program p = assemble(line, "test");
    EXPECT_GE(p.words.size(), 1u);
    uint16_t w1 = p.words.size() > 1 ? p.words[1] : 0;
    return decode(p.words[0], w1);
}

} // anonymous namespace

TEST(Assembler, RegisterRegisterOps)
{
    struct Case { const char *src; Op op; int rd, rr; };
    Case cases[] = {
        {"add r0, r31", Op::ADD, 0, 31},
        {"adc r15, r16", Op::ADC, 15, 16},
        {"sub r1, r2", Op::SUB, 1, 2},
        {"sbc r30, r29", Op::SBC, 30, 29},
        {"and r7, r8", Op::AND, 7, 8},
        {"or r9, r10", Op::OR, 9, 10},
        {"eor r11, r12", Op::EOR, 11, 12},
        {"mov r13, r14", Op::MOV, 13, 14},
        {"cp r5, r6", Op::CP, 5, 6},
        {"cpc r3, r4", Op::CPC, 3, 4},
        {"cpse r17, r18", Op::CPSE, 17, 18},
        {"mul r19, r20", Op::MUL, 19, 20},
    };
    for (const Case &c : cases) {
        Inst i = one(c.src);
        EXPECT_EQ(i.op, c.op) << c.src;
        EXPECT_EQ(i.rd, c.rd) << c.src;
        EXPECT_EQ(i.rr, c.rr) << c.src;
    }
}

TEST(Assembler, ImmediateOps)
{
    Inst i = one("ldi r16, 0xff");
    EXPECT_EQ(i.op, Op::LDI);
    EXPECT_EQ(i.rd, 16);
    EXPECT_EQ(i.imm, 0xff);

    i = one("subi r24, 42");
    EXPECT_EQ(i.op, Op::SUBI);
    EXPECT_EQ(i.rd, 24);
    EXPECT_EQ(i.imm, 42);

    i = one("cpi r31, 0b1010");
    EXPECT_EQ(i.op, Op::CPI);
    EXPECT_EQ(i.imm, 10);

    i = one("andi r20, lo8(0x1234)");
    EXPECT_EQ(i.imm, 0x34);
    i = one("ori r20, hi8(0x1234)");
    EXPECT_EQ(i.imm, 0x12);
}

TEST(Assembler, AliasesExpand)
{
    Inst i = one("lsl r5");
    EXPECT_EQ(i.op, Op::ADD);
    EXPECT_EQ(i.rd, 5);
    EXPECT_EQ(i.rr, 5);

    i = one("rol r6");
    EXPECT_EQ(i.op, Op::ADC);
    EXPECT_EQ(i.rr, 6);

    i = one("clr r7");
    EXPECT_EQ(i.op, Op::EOR);

    i = one("tst r8");
    EXPECT_EQ(i.op, Op::AND);

    i = one("ser r17");
    EXPECT_EQ(i.op, Op::LDI);
    EXPECT_EQ(i.imm, 0xff);

    i = one("sec");
    EXPECT_EQ(i.op, Op::BSET);
    EXPECT_EQ(i.bit, 0);
    i = one("clz");
    EXPECT_EQ(i.op, Op::BCLR);
    EXPECT_EQ(i.bit, 1);
    i = one("set");
    EXPECT_EQ(i.op, Op::BSET);
    EXPECT_EQ(i.bit, 6);
}

TEST(Assembler, LoadsAndStores)
{
    Inst i = one("ld r24, X+");
    EXPECT_EQ(i.op, Op::LD_X_INC);
    EXPECT_EQ(i.rd, 24);

    i = one("ld r0, -Y");
    EXPECT_EQ(i.op, Op::LD_Y_DEC);

    i = one("ldd r16, Y+3");
    EXPECT_EQ(i.op, Op::LDD_Y);
    EXPECT_EQ(i.disp, 3);

    i = one("ldd r24, Z+63");
    EXPECT_EQ(i.op, Op::LDD_Z);
    EXPECT_EQ(i.disp, 63);

    i = one("ld r5, Y");
    EXPECT_EQ(i.op, Op::LDD_Y);
    EXPECT_EQ(i.disp, 0);

    i = one("std Z+17, r9");
    EXPECT_EQ(i.op, Op::STD_Z);
    EXPECT_EQ(i.disp, 17);
    EXPECT_EQ(i.rd, 9);

    i = one("st X+, r1");
    EXPECT_EQ(i.op, Op::ST_X_INC);

    i = one("lds r8, 0x0123");
    EXPECT_EQ(i.op, Op::LDS);
    EXPECT_EQ(i.k, 0x0123u);
    EXPECT_EQ(i.words, 2);

    i = one("sts 0x0456, r9");
    EXPECT_EQ(i.op, Op::STS);
    EXPECT_EQ(i.k, 0x0456u);

    i = one("push r10");
    EXPECT_EQ(i.op, Op::PUSH);
    i = one("pop r11");
    EXPECT_EQ(i.op, Op::POP);
}

TEST(Assembler, WordOpsAndBits)
{
    Inst i = one("movw r24, r0");
    EXPECT_EQ(i.op, Op::MOVW);
    EXPECT_EQ(i.rd, 24);
    EXPECT_EQ(i.rr, 0);

    i = one("adiw r26, 63");
    EXPECT_EQ(i.op, Op::ADIW);
    EXPECT_EQ(i.rd, 26);
    EXPECT_EQ(i.imm, 63);

    i = one("sbiw r30, 1");
    EXPECT_EQ(i.op, Op::SBIW);
    EXPECT_EQ(i.rd, 30);

    i = one("sbrc r12, 5");
    EXPECT_EQ(i.op, Op::SBRC);
    EXPECT_EQ(i.bit, 5);

    i = one("bld r13, 2");
    EXPECT_EQ(i.op, Op::BLD);

    i = one("in r25, 0x3f");
    EXPECT_EQ(i.op, Op::IN);
    EXPECT_EQ(i.imm, 0x3f);

    i = one("out 0x3c, r2");
    EXPECT_EQ(i.op, Op::OUT);
    EXPECT_EQ(i.imm, 0x3c);
    EXPECT_EQ(i.rd, 2);
}

TEST(Assembler, ControlFlowAndLabels)
{
    Program p = assemble(R"(
        start:
            ldi r16, 1
        loop:
            dec r16
            brne loop
            rjmp start
            ret
    )", "cf");
    EXPECT_EQ(p.label("start"), 0u);
    EXPECT_EQ(p.label("loop"), 1u);

    // brne loop: at addr 2, target 1, offset -2.
    Inst br = decode(p.words[2], 0);
    EXPECT_EQ(br.op, Op::BRBC);
    EXPECT_EQ(br.bit, 1);  // Z flag
    EXPECT_EQ(br.disp, -2);

    Inst rj = decode(p.words[3], 0);
    EXPECT_EQ(rj.op, Op::RJMP);
    EXPECT_EQ(rj.disp, -4);

    EXPECT_EQ(decode(p.words[4], 0).op, Op::RET);
}

TEST(Assembler, CallAndJmp)
{
    Program p = assemble(R"(
            call func
            jmp func
        func:
            ret
    )", "cj");
    Inst c = decode(p.words[0], p.words[1]);
    EXPECT_EQ(c.op, Op::CALL);
    EXPECT_EQ(c.k, 4u);
    Inst j = decode(p.words[2], p.words[3]);
    EXPECT_EQ(j.op, Op::JMP);
    EXPECT_EQ(j.k, 4u);
}

TEST(Assembler, DirectivesEquOrgDw)
{
    Program p = assemble(R"(
        .equ FRAME = 0x0200
        .equ SIZE = 5 * 4
            ldi r26, lo8(FRAME)
            ldi r27, hi8(FRAME)
            ldi r16, SIZE
        .org 0x10
        table:
            .dw 0x1234, table
    )", "dir");
    EXPECT_EQ(decode(p.words[0], 0).imm, 0x00);
    EXPECT_EQ(decode(p.words[1], 0).imm, 0x02);
    EXPECT_EQ(decode(p.words[2], 0).imm, 20);
    EXPECT_EQ(p.label("table"), 0x10u);
    EXPECT_EQ(p.words[0x10], 0x1234);
    EXPECT_EQ(p.words[0x11], 0x10);
}

TEST(Assembler, DiagnosesErrors)
{
    EXPECT_DEATH(assemble("ldi r5, 1", "e"), "r16..r31");
    EXPECT_DEATH(assemble("adiw r25, 1", "e"), "r24/r26/r28/r30");
    EXPECT_DEATH(assemble("ldd r0, Y+64", "e"), "displacement");
    EXPECT_DEATH(assemble("frobnicate r1", "e"), "unknown mnemonic");
    EXPECT_DEATH(assemble("rjmp nowhere", "e"), "undefined symbol");
    EXPECT_DEATH(assemble("movw r1, r2", "e"), "even");
    EXPECT_DEATH(assemble("x: nop\nx: nop", "e"), "duplicate label");
}

TEST(Assembler, DisassemblyRoundTrip)
{
    // Assemble a sampler, disassemble, re-assemble: encodings match.
    const char *src = R"(
        ldi r24, 0x42
        add r0, r1
        ldd r16, Y+9
        std Z+5, r17
        mul r20, r21
        adiw r30, 12
        push r2
        ret
    )";
    Program p1 = assemble(src, "rt1");
    std::string redis;
    for (size_t i = 0; i < p1.words.size();) {
        Inst inst = decode(p1.words[i],
                           i + 1 < p1.words.size() ? p1.words[i + 1] : 0);
        redis += disassemble(inst) + "\n";
        i += inst.words;
    }
    Program p2 = assemble(redis, "rt2");
    EXPECT_EQ(p1.words, p2.words);
}

TEST(Assembler, RomBytes)
{
    Program p = assemble("nop\nnop\ncall x\nx: ret", "rb");
    EXPECT_EQ(p.romBytes(), 2u * 5u);
}
