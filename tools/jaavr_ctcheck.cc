/**
 * @file
 * jaavr-ctcheck: static constant-time verification of every shipped
 * assembly routine (src/avrgen/ct_check.hh).
 *
 * Assembles the OPF routine set for the paper's reference prime and
 * the secp160r1 set, lays each out at its harness load address, and
 * runs the secret-taint walk with the harness entry state (Y = &a,
 * Z = &b, secrets in the operand buffers). Emits one JSON line per
 * routine plus one per finding to CT_report.json and exits non-zero
 * unless every routine satisfies its contract:
 *
 *  - OPF add/sub/mul (native and ISE): ConstantTime with exactly the
 *    two final-fold ripple branches waived (paper Section III-A,
 *    probability 2^-32 per round);
 *  - secp160r1 add/sub/mul/mul-ISE: VariableTime — the pseudo-
 *    Mersenne fold ripple is ordinary data-dependent control flow;
 *  - both Kaliski inverses: VariableTime (the paper concedes the
 *    inversion's data-dependent runtime, Section V-B).
 *
 * Usage: jaavr-ctcheck [--out CT_report.json] [-v]
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "avrasm/assembler.hh"
#include "avrgen/ct_check.hh"
#include "avrgen/opf_routines.hh"
#include "avrgen/secp160_routines.hh"
#include "nt/opf_prime.hh"
#include "support/json.hh"
#include "support/logging.hh"

using namespace jaavr;

namespace
{

constexpr uint32_t kFlashWords = 0x10000;

std::vector<uint16_t>
loadAt(const Program &prog, uint32_t entry)
{
    std::vector<uint16_t> flash(kFlashWords, 0xffff);
    for (size_t i = 0; i < prog.words.size(); i++)
        flash[entry + i] = prog.words[i];
    return flash;
}

std::vector<std::pair<uint8_t, uint8_t>>
harnessEntryRegs()
{
    // OpfAvrLibrary::run / Secp160AvrLibrary::run calling convention.
    return {
        {28, uint8_t(OpfMemoryMap::aAddr & 0xff)},
        {29, uint8_t(OpfMemoryMap::aAddr >> 8)},
        {30, uint8_t(OpfMemoryMap::bAddr & 0xff)},
        {31, uint8_t(OpfMemoryMap::bAddr >> 8)},
    };
}

std::vector<CtSecretRange>
operandSecrets(uint16_t nbytes, bool b_too)
{
    std::vector<CtSecretRange> s{{OpfMemoryMap::aAddr, nbytes}};
    if (b_too)
        s.push_back({OpfMemoryMap::bAddr, nbytes});
    return s;
}

struct Job
{
    std::string name;
    Program prog;
    uint32_t entry;
    CtContract contract;
    unsigned waivedBranches;
    bool secretB; ///< b operand is secret too (not for the inverses)
    uint16_t secretBytes;
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string out = "CT_report.json";
    bool verbose = false;
    for (int i = 1; i < argc; i++) {
        if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out = argv[++i];
        } else if (!std::strcmp(argv[i], "-v") ||
                   !std::strcmp(argv[i], "--verbose")) {
            verbose = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--out CT_report.json] [-v]\n",
                         argv[0]);
            return 2;
        }
    }

    const OpfPrime &prime = paperOpfPrime();
    const uint16_t opfBytes = uint16_t((prime.k + 16) / 8);
    const uint16_t secpBytes = 20;
    // Harness load addresses (OpfAvrLibrary / Secp160AvrLibrary).
    constexpr uint32_t invEntry = 0x4000;

    std::vector<Job> jobs;
    // The two fold rounds of emitFinalFold each branch on the rare
    // ripple carry; that pair is the only waived site set.
    jobs.push_back({"opf160_add", assemble(genOpfAddSub(prime, false),
                                           "opf_add"),
                    0, CtContract::ConstantTime, 2, true, opfBytes});
    jobs.push_back({"opf160_sub", assemble(genOpfAddSub(prime, true),
                                           "opf_sub"),
                    0, CtContract::ConstantTime, 2, true, opfBytes});
    jobs.push_back({"opf160_mul_native",
                    assemble(genOpfMulNative(prime), "opf_mul"),
                    0, CtContract::ConstantTime, 2, true, opfBytes});
    jobs.push_back({"opf160_mul_ise",
                    assemble(genOpfMulIse(prime), "opf_mul_ise"),
                    0, CtContract::ConstantTime, 2, true, opfBytes});
    jobs.push_back({"opf160_inv",
                    assemble(genOpfMontInverse(prime, invEntry),
                             "opf_inv"),
                    invEntry, CtContract::VariableTime, 0, false,
                    opfBytes});
    jobs.push_back({"secp160r1_add",
                    assemble(genSecp160AddSub(false), "secp_add"),
                    0, CtContract::VariableTime, 0, true, secpBytes});
    jobs.push_back({"secp160r1_sub",
                    assemble(genSecp160AddSub(true), "secp_sub"),
                    0, CtContract::VariableTime, 0, true, secpBytes});
    jobs.push_back({"secp160r1_mul",
                    assemble(genSecp160Mul(), "secp_mul"),
                    0, CtContract::VariableTime, 0, true, secpBytes});
    jobs.push_back({"secp160r1_mul_ise",
                    assemble(genSecp160MulIse(), "secp_mul_ise"),
                    0, CtContract::VariableTime, 0, true, secpBytes});
    jobs.push_back({"secp160r1_inv",
                    assemble(genSecp160Inverse(), "secp_inv"),
                    0, CtContract::VariableTime, 0, false, secpBytes});

    // Truncate the report file: the checker is a whole-state tool,
    // not an append-only trajectory.
    if (FILE *f = std::fopen(out.c_str(), "w"))
        std::fclose(f);

    bool allPass = true;
    for (const Job &job : jobs) {
        CtCheckSpec spec;
        spec.routine = job.name;
        spec.entry = job.entry;
        spec.contract = job.contract;
        spec.waivedBranches = job.waivedBranches;
        spec.secrets = operandSecrets(job.secretBytes, job.secretB);
        spec.entryRegs = harnessEntryRegs();

        CtReport rep = ctCheck(loadAt(job.prog, job.entry), spec);
        allPass = allPass && rep.pass;

        std::printf("%-20s %-14s %s  (%zu findings, %zu waived, "
                    "%llu states, %llu mem passes)\n",
                    rep.routine.c_str(), ctContractName(rep.contract),
                    rep.pass ? "PASS" : "FAIL", rep.findings.size(),
                    rep.waivedCount(),
                    static_cast<unsigned long long>(rep.instsAnalyzed),
                    static_cast<unsigned long long>(rep.memPasses));

        JsonLine line;
        line.str("kind", "routine")
            .str("routine", rep.routine)
            .str("contract", ctContractName(rep.contract))
            .num("pass", rep.pass ? 1.0 : 0.0)
            .num("findings", double(rep.findings.size()))
            .num("waived", double(rep.waivedCount()))
            .num("violations", double(rep.violationCount()))
            .num("states", double(rep.instsAnalyzed))
            .num("rom_bytes", double(job.prog.romBytes()));
        appendJsonLine(out, line);

        for (const CtFinding &f : rep.findings) {
            if (verbose || !f.waived)
                std::printf("    pc=0x%04x %-16s %s%s\n", f.pc,
                            ctFindingClassName(f.cls),
                            f.disasm.c_str(),
                            f.waived ? "  [waived]" : "");
            JsonLine fl;
            fl.str("kind", "finding")
                .str("routine", rep.routine)
                .num("pc", double(f.pc))
                .str("class", ctFindingClassName(f.cls))
                .str("disasm", f.disasm)
                .num("waived", f.waived ? 1.0 : 0.0);
            appendJsonLine(out, fl);
        }
    }

    std::printf("jaavr-ctcheck: %s (%zu routines, report: %s)\n",
                allPass ? "all contracts hold" : "CONTRACT VIOLATIONS",
                jobs.size(), out.c_str());
    return allPass ? 0 : 1;
}
