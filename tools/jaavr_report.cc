/**
 * @file
 * jaavr-report: trajectory aggregator and regression gate over the
 * JSON-lines files the bench binaries emit (BENCH_*.json).
 *
 * Inputs:
 *  - a baselines file (default bench/baselines.json): one JSON line
 *    per tracked workload. Every *string* field except "metric" is a
 *    match field; a bench line matches when all of them are equal.
 *    Reserved numeric fields: "baseline" (the checked-in cycle
 *    count), optional "paper" (the paper-pinned target),
 *    "paper_pinned" (nonzero: the workload gates the build),
 *    "higher_is_better" (nonzero: the metric is a throughput-style
 *    value — e.g. speedup_vs_reference — so a DROP is the
 *    regression) and "threshold_pct" (per-entry override of the
 *    global --threshold).
 *  - one or more bench JSON-lines files; every line must parse as a
 *    flat JSON object (the same validation CI applies with
 *    `python3 -m json.tool --json-lines`). The *last* matching line
 *    per baseline wins, so re-running a bench supersedes older rows.
 *  - `--optional FILE` inputs (the TRACE_*.json exports) may be
 *    absent — a bench run without tracing simply doesn't produce
 *    them — and an absent optional is noted on stderr and skipped.
 *    A *present* optional is held to the same validation as any
 *    input: a malformed line is an error (exit 2), never silently
 *    ignored, so a truncated artifact can't masquerade as "tracing
 *    was off".
 *
 * Outputs:
 *  - REPORT_trajectory.json (override with --out): one JSON line per
 *    baseline with measured value, delta vs baseline and status, plus
 *    a trailing summary line;
 *  - a markdown paper-vs-measured table on stdout (and --markdown
 *    FILE to also write it to a file).
 *
 * Unmatched baselines are diagnosed per entry on stderr, with
 * status "missing" when no bench row matched the entry's match
 * fields (the workload never ran) and "missing_metric" when rows
 * matched but none carried the named metric (a metric-name mismatch
 * between baselines and bench).
 *
 * Exit status: 0 on success; with --gate, 1 when any paper-pinned
 * workload regressed by more than the threshold (--threshold PCT,
 * default 2%) or is missing from the inputs; 2 on usage, I/O or
 * malformed-input errors.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "support/json.hh"
#include "support/logging.hh"

namespace
{

using jaavr::JsonLine;
using jaavr::JsonObject;
using jaavr::JsonValue;
using jaavr::appendJsonLine;
using jaavr::parseJsonLine;

struct Options
{
    std::string baselines = "bench/baselines.json";
    std::string out = "REPORT_trajectory.json";
    std::string markdown;
    std::vector<std::string> inputs;
    std::vector<std::string> optionalInputs;
    double thresholdPct = 2.0;
    bool gate = false;
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options] BENCH_*.json...\n"
        "  --baselines FILE   baselines (default bench/baselines.json)\n"
        "  --out FILE         trajectory output "
        "(default REPORT_trajectory.json)\n"
        "  --markdown FILE    also write the markdown table to FILE\n"
        "  --optional FILE    input that may be absent (TRACE_*.json);\n"
        "                     a present-but-malformed file still errors\n"
        "  --threshold PCT    regression gate threshold (default 2)\n"
        "  --gate             exit 1 on paper-pinned regression/missing\n",
        argv0);
}

/**
 * Read every line of @p path as a flat JSON object. Returns false
 * after diagnosing the first malformed line (file:line and reason).
 */
bool
readJsonLines(const std::string &path, std::vector<JsonObject> &out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
        return false;
    }
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        lineno++;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue; // blank lines are legal between records
        JsonObject obj;
        std::string err;
        if (!parseJsonLine(line, obj, &err)) {
            std::fprintf(stderr, "error: %s:%zu: %s\n", path.c_str(),
                         lineno, err.c_str());
            return false;
        }
        out.push_back(std::move(obj));
    }
    return true;
}

/** The string-valued match fields of a baseline (all but "metric"). */
std::vector<std::pair<std::string, std::string>>
matchFields(const JsonObject &baseline)
{
    std::vector<std::pair<std::string, std::string>> out;
    for (const auto &[key, val] : baseline)
        if (val.isStr() && key != "metric")
            out.emplace_back(key, val.str);
    return out;
}

bool
matches(const JsonObject &line,
        const std::vector<std::pair<std::string, std::string>> &fields)
{
    for (const auto &[key, want] : fields) {
        auto it = line.find(key);
        if (it == line.end() || !it->second.isStr() ||
            it->second.str != want)
            return false;
    }
    return true;
}

double
numField(const JsonObject &obj, const std::string &key, double fallback)
{
    auto it = obj.find(key);
    if (it == obj.end())
        return fallback;
    if (it->second.isNum())
        return it->second.num;
    if (it->second.kind == JsonValue::Kind::Bool)
        return it->second.boolean ? 1.0 : 0.0;
    return fallback;
}

std::string
fmtNum(double v)
{
    char buf[64];
    if (v == std::floor(v) && std::fabs(v) < 1e15)
        std::snprintf(buf, sizeof buf, "%.0f", v);
    else
        std::snprintf(buf, sizeof buf, "%.2f", v);
    return buf;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--baselines") {
            opt.baselines = value();
        } else if (arg == "--out") {
            opt.out = value();
        } else if (arg == "--markdown") {
            opt.markdown = value();
        } else if (arg == "--optional") {
            opt.optionalInputs.push_back(value());
        } else if (arg == "--threshold") {
            opt.thresholdPct = std::atof(value());
        } else if (arg == "--gate") {
            opt.gate = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "error: unknown option %s\n",
                         arg.c_str());
            usage(argv[0]);
            return 2;
        } else {
            opt.inputs.push_back(arg);
        }
    }
    if (opt.inputs.empty() && opt.optionalInputs.empty()) {
        usage(argv[0]);
        return 2;
    }

    std::vector<JsonObject> baselines;
    if (!readJsonLines(opt.baselines, baselines))
        return 2;
    if (baselines.empty()) {
        std::fprintf(stderr, "error: %s has no baseline entries\n",
                     opt.baselines.c_str());
        return 2;
    }

    // Validate and merge every input line (order preserved: later
    // files and later lines supersede earlier ones on match).
    std::vector<JsonObject> lines;
    for (const std::string &path : opt.inputs)
        if (!readJsonLines(path, lines))
            return 2;
    // Optional inputs: absence is legal (the producing bench ran
    // without tracing), but a file that *exists* must validate like
    // any other input — malformed is an error, not "absent".
    for (const std::string &path : opt.optionalInputs) {
        if (!std::ifstream(path)) {
            std::fprintf(stderr,
                         "report: optional input %s not present, "
                         "skipping (bench ran without tracing?)\n",
                         path.c_str());
            continue;
        }
        if (!readJsonLines(path, lines))
            return 2;
    }

    // Truncate the trajectory file: a report run replaces, not
    // appends — the bench JSON lines are the accumulating record.
    {
        std::ofstream trunc(opt.out, std::ios::trunc);
        if (!trunc) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         opt.out.c_str());
            return 2;
        }
    }

    std::string md;
    md += "| bench | workload | paper | baseline | measured | delta "
          "| status |\n";
    md += "|---|---|---:|---:|---:|---:|---|\n";

    size_t regressions = 0, missing = 0, improved = 0;
    size_t gateFailures = 0; // pinned workloads regressed or missing
    for (const JsonObject &base : baselines) {
        auto fields = matchFields(base);
        std::string metric = "measured_cycles";
        if (auto it = base.find("metric");
            it != base.end() && it->second.isStr())
            metric = it->second.str;
        double baseline = numField(base, "baseline", -1);
        if (baseline < 0) {
            std::fprintf(stderr,
                         "error: baseline entry without a numeric "
                         "\"baseline\" field in %s\n",
                         opt.baselines.c_str());
            return 2;
        }
        double paper = numField(base, "paper", -1);
        bool pinned = numField(base, "paper_pinned", 0) != 0;
        bool higher = numField(base, "higher_is_better", 0) != 0;
        double threshold =
            numField(base, "threshold_pct", opt.thresholdPct);

        // Last matching line that carries the metric wins. Rows that
        // match the string fields but lack the metric are counted so
        // the "missing" diagnosis can distinguish a workload that
        // never ran from a metric-name mismatch.
        const JsonObject *hit = nullptr;
        size_t fieldMatches = 0;
        for (const JsonObject &line : lines) {
            if (!matches(line, fields))
                continue;
            fieldMatches++;
            auto it = line.find(metric);
            if (it != line.end() && it->second.isNum())
                hit = &line;
        }

        std::string benchName, workload;
        for (const auto &[key, val] : fields) {
            if (key == "bench") {
                benchName = val;
                continue;
            }
            if (!workload.empty())
                workload += " ";
            workload += key + "=" + val;
        }

        JsonLine out;
        out.str("report", "trajectory").str("bench", benchName);
        for (const auto &[key, val] : fields)
            if (key != "bench")
                out.str(key, val);
        out.str("metric", metric).num("baseline", baseline);
        if (paper >= 0)
            out.num("paper", paper);
        out.num("paper_pinned", uint64_t(pinned ? 1 : 0));
        if (higher)
            out.num("higher_is_better", uint64_t(1));

        std::string status;
        double measured = -1, delta_pct = 0;
        if (!hit) {
            // Same gate outcome either way, but a precise diagnosis:
            // "missing" means no bench row matched this entry's match
            // fields (the workload never ran); "missing_metric" means
            // rows matched but none carried the named metric (a
            // metric-name mismatch between baselines and bench, or a
            // bench emitting incomplete rows).
            status = fieldMatches ? "missing_metric" : "missing";
            missing++;
            if (fieldMatches)
                std::fprintf(stderr,
                             "report: %s %s: %zu row%s matched but "
                             "none carry metric \"%s\" — check the "
                             "\"metric\" field in %s against what the "
                             "bench emits\n",
                             benchName.c_str(), workload.c_str(),
                             fieldMatches,
                             fieldMatches == 1 ? "" : "s",
                             metric.c_str(), opt.baselines.c_str());
            else
                std::fprintf(stderr,
                             "report: %s %s: no bench row matched "
                             "(workload did not run or its label "
                             "fields changed)\n",
                             benchName.c_str(), workload.c_str());
        } else {
            measured = numField(*hit, metric, -1);
            delta_pct = baseline > 0
                            ? (measured - baseline) / baseline * 100.0
                            : 0.0;
            // For cycle-style metrics growth is the regression; for
            // throughput-style metrics (higher_is_better) shrinkage is.
            double adverse_pct = higher ? -delta_pct : delta_pct;
            if (adverse_pct > threshold) {
                status = "regression";
                regressions++;
            } else if (higher ? measured > baseline
                              : measured < baseline) {
                status = "improved";
                improved++;
            } else {
                status = "ok";
            }
            out.num("measured", measured).num("delta_pct", delta_pct);
        }
        out.str("status", status);
        appendJsonLine(opt.out, out);

        md += "| " + benchName + " | " + workload + " | " +
              (paper >= 0 ? fmtNum(paper) : std::string("n/a")) +
              " | " + fmtNum(baseline) + " | " +
              (hit ? fmtNum(measured) : std::string("n/a")) + " | " +
              (hit ? fmtNum(delta_pct) + "%" : std::string("n/a")) +
              " | " + status + (pinned ? " (pinned)" : "") + " |\n";

        if (pinned && status != "ok" && status != "improved") {
            gateFailures++;
            std::fprintf(stderr,
                         "gate: %s %s: %s (baseline %s, measured %s, "
                         "threshold %.2f%%)\n",
                         benchName.c_str(), workload.c_str(),
                         status.c_str(), fmtNum(baseline).c_str(),
                         hit ? fmtNum(measured).c_str() : "n/a",
                         threshold);
        }
    }

    JsonLine summary;
    summary.str("report", "summary")
        .num("entries", uint64_t(baselines.size()))
        .num("bench_lines", uint64_t(lines.size()))
        .num("missing", uint64_t(missing))
        .num("regressions", uint64_t(regressions))
        .num("improved", uint64_t(improved))
        .num("gate_failures", uint64_t(gateFailures))
        .num("threshold_pct", opt.thresholdPct);
    appendJsonLine(opt.out, summary);

    std::fputs(md.c_str(), stdout);
    if (!opt.markdown.empty()) {
        std::ofstream mdf(opt.markdown, std::ios::trunc);
        if (!mdf) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         opt.markdown.c_str());
            return 2;
        }
        mdf << md;
    }

    std::fprintf(stderr,
                 "report: %zu workloads, %zu missing, %zu regressed, "
                 "%zu improved -> %s\n",
                 baselines.size(), missing, regressions, improved,
                 opt.out.c_str());

    if (opt.gate && gateFailures)
        return 1;
    return 0;
}
