/**
 * @file
 * jaavr-gdb: GDB Remote Serial Protocol server for the JAAVR ISS.
 *
 * Serves an assembled OPF field-arithmetic image (or an external
 * Intel HEX firmware) over TCP so avr-gdb can attach with
 * `target remote :3333` and set breakpoints, watch the result
 * buffers, single-step across MAC-ISE instructions, and inspect the
 * profiler through `monitor` commands. See README.md for a
 * walkthrough stepping opf_mul.
 */

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "avr/profiler.hh"
#include "avr/leakage.hh"
#include "avr/vcd.hh"
#include "avrgen/opf_harness.hh"
#include "debug/server.hh"
#include "nt/opf_prime.hh"
#include "obs/flight.hh"
#include "support/ihex.hh"
#include "support/logging.hh"

using namespace jaavr;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [options]\n"
                 "  --port N          TCP port to listen on "
                 "(default 3333, 0 = ephemeral)\n"
                 "  --mode ca|fast|ise  CPU timing/ISE mode "
                 "(default ise)\n"
                 "  --backend reference|fast|superblock\n"
                 "                    ISS execution backend for free "
                 "running\n"
                 "                    (default: JAAVR_ISS_BACKEND or "
                 "superblock)\n"
                 "  --image opf160|opf192|opf256\n"
                 "                    built-in OPF routine image "
                 "(default opf160)\n"
                 "  --load FILE.hex   serve an external Intel HEX "
                 "image instead\n"
                 "  --entry ADDR      initial PC word address "
                 "(default: image start)\n"
                 "  --export-hex FILE write the loaded flash image as "
                 "Intel HEX and exit\n"
                 "  --log FILE        mirror the RSP session to FILE\n"
                 "  --vcd FILE        dump a cycle-accurate VCD "
                 "waveform of the session\n"
                 "  --leak-trace FILE record a synthesized power "
                 "trace of the session\n"
                 "                    (.npy suffix: NumPy vector, "
                 "else CSV; marker metadata\n"
                 "                    goes to FILE.meta.json; "
                 "`monitor leakage` shows status)\n"
                 "  --flight FILE     arm the flight recorder: machine "
                 "traps dump the last\n"
                 "                    events to FILE; `monitor flight "
                 "dump` writes on demand\n"
                 "  --slice N         ISS cycles per continue slice "
                 "(default 200000)\n",
                 argv0);
}

bool
parseBackend(const std::string &s, IssBackend &out)
{
    if (s == "reference")
        out = IssBackend::Reference;
    else if (s == "fast")
        out = IssBackend::Fast;
    else if (s == "superblock")
        out = IssBackend::Superblock;
    else
        return false;
    return true;
}

bool
parseMode(const std::string &s, CpuMode &out)
{
    if (s == "ca")
        out = CpuMode::CA;
    else if (s == "fast")
        out = CpuMode::FAST;
    else if (s == "ise")
        out = CpuMode::ISE;
    else
        return false;
    return true;
}

/** Non-0xffff flash runs as an Intel HEX image (LE byte order). */
IhexImage
dumpFlash(const Machine &m)
{
    IhexImage img;
    std::vector<uint8_t> run;
    uint32_t runStart = 0;
    for (uint32_t w = 0; w <= Machine::flashWords; w++) {
        uint16_t v = w < Machine::flashWords ? m.flashWord(w) : 0xffff;
        if (v != 0xffff) {
            if (run.empty())
                runStart = 2 * w;
            run.push_back(static_cast<uint8_t>(v));
            run.push_back(static_cast<uint8_t>(v >> 8));
        } else if (!run.empty()) {
            img.add(runStart, run);
            run.clear();
        }
    }
    return img;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    uint16_t port = 3333;
    CpuMode mode = CpuMode::ISE;
    bool backendSet = false;
    IssBackend backend = IssBackend::Superblock;
    std::string image = "opf160";
    std::string loadFile, exportFile, logPath, vcdPath, leakPath;
    std::string flightPath;
    long entry = -1;
    uint64_t slice = 200000;

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs an argument\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--port") {
            port = static_cast<uint16_t>(std::strtoul(next(), nullptr, 0));
        } else if (arg == "--mode") {
            if (!parseMode(next(), mode)) {
                std::fprintf(stderr, "unknown mode (ca|fast|ise)\n");
                return 2;
            }
        } else if (arg == "--backend") {
            if (!parseBackend(next(), backend)) {
                std::fprintf(stderr, "unknown backend "
                             "(reference|fast|superblock)\n");
                return 2;
            }
            backendSet = true;
        } else if (arg == "--image") {
            image = next();
        } else if (arg == "--load") {
            loadFile = next();
        } else if (arg == "--entry") {
            entry = std::strtol(next(), nullptr, 0);
        } else if (arg == "--export-hex") {
            exportFile = next();
        } else if (arg == "--log") {
            logPath = next();
        } else if (arg == "--vcd") {
            vcdPath = next();
        } else if (arg == "--leak-trace") {
            leakPath = next();
        } else if (arg == "--flight") {
            flightPath = next();
        } else if (arg == "--slice") {
            slice = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    // --- build the target machine ---------------------------------
    std::unique_ptr<OpfAvrLibrary> lib;
    std::unique_ptr<Machine> bare;
    Machine *m = nullptr;
    SymbolTable symbols;
    if (!loadFile.empty()) {
        std::ifstream in(loadFile, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", loadFile.c_str());
            return 1;
        }
        std::ostringstream text;
        text << in.rdbuf();
        IhexImage img;
        std::string err;
        if (!parseIhex(text.str(), img, &err)) {
            std::fprintf(stderr, "%s: %s\n", loadFile.c_str(),
                         err.c_str());
            return 1;
        }
        if (img.empty()) {
            std::fprintf(stderr, "%s: empty image\n", loadFile.c_str());
            return 1;
        }
        bare = std::make_unique<Machine>(mode);
        bare->loadProgram(img.words(), img.loadWordAddr());
        bare->setPc(entry >= 0 ? static_cast<uint32_t>(entry)
                               : img.loadWordAddr());
        m = bare.get();
        std::printf("loaded %zu bytes from %s at word 0x%x\n",
                    img.byteCount(), loadFile.c_str(),
                    img.loadWordAddr());
    } else {
        unsigned k;
        if (image == "opf160")
            k = 144;
        else if (image == "opf192")
            k = 176;
        else if (image == "opf256")
            k = 240;
        else {
            std::fprintf(stderr,
                         "unknown image %s (opf160|opf192|opf256)\n",
                         image.c_str());
            return 2;
        }
        OpfPrime prime = makeOpf(0xff4c, k);
        lib = std::make_unique<OpfAvrLibrary>(prime, mode);
        m = &lib->machine();
        symbols = lib->symbols();
        if (entry >= 0)
            m->setPc(static_cast<uint32_t>(entry));
        std::printf("image %s (%u-bit OPF), mode %s, %zu ROM bytes\n",
                    image.c_str(), 32 * (prime.k / 32 + 1),
                    cpuModeName(mode), lib->romBytes());
    }

    // The flag overrides the environment's JAAVR_ISS_BACKEND pick
    // (already applied at machine construction). With stops armed the
    // server falls back to the debug-hooked loops regardless; the
    // backend governs free-running continues.
    if (backendSet)
        m->setBackend(backend);
    std::printf("ISS backend: %s\n", issBackendName(m->backend()));

    if (!exportFile.empty()) {
        std::ofstream out(exportFile, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         exportFile.c_str());
            return 1;
        }
        out << writeIhex(dumpFlash(*m));
        std::printf("wrote %s\n", exportFile.c_str());
        return 0;
    }

    // --- serve ----------------------------------------------------
    DebugTarget target(*m);
    TcpServerTransport tcp;
    if (!tcp.listen(port)) {
        std::fprintf(stderr, "cannot listen on port %u\n", port);
        return 1;
    }
    std::printf("listening on 127.0.0.1:%u — connect with:\n"
                "  avr-gdb -ex 'target remote :%u'\n",
                tcp.port(), tcp.port());
    std::fflush(stdout);
    while (!tcp.acceptClient())
        usleep(20000);
    std::printf("client attached\n");
    std::fflush(stdout);

    VcdWriter vcd;
    if (!vcdPath.empty()) {
        m->setWaveSink(&vcd);
        if (!vcd.open(vcdPath, *m))
            return 1;
        std::printf("dumping VCD waveform to %s\n", vcdPath.c_str());
    }

    LeakTracer leak;
    if (!leakPath.empty()) {
        m->setLeakSink(&leak);
        leak.begin(*m);
        std::printf("recording leakage trace for %s (model %s)\n",
                    leakPath.c_str(), leak.model().describe().c_str());
    }

    obs::FlightRecorder flight;
    std::unique_ptr<obs::MachineTrapFlight> trapFlight;
    if (!flightPath.empty()) {
        flight.setDumpPath(flightPath);
        trapFlight =
            std::make_unique<obs::MachineTrapFlight>(flight, "iss");
        m->setTrapSink(trapFlight.get());
        std::printf("flight recorder armed, dumps to %s\n",
                    flightPath.c_str());
    }

    CallGraphProfiler profiler(*m, symbols);
    GdbServer server(target, tcp);
    server.setSymbols(symbols);
    server.setProfiler(&profiler);
    if (!leakPath.empty())
        server.setLeakTracer(&leak);
    if (!flightPath.empty())
        server.setFlightRecorder(&flight, flightPath);
    server.setSliceCycles(slice);
    std::FILE *log = nullptr;
    if (!logPath.empty()) {
        log = std::fopen(logPath.c_str(), "w");
        if (!log) {
            std::fprintf(stderr, "cannot write %s\n", logPath.c_str());
            return 1;
        }
        server.setLog(log);
    }
    server.serve();
    if (!leakPath.empty()) {
        leak.end();
        bool npy = leakPath.size() > 4 &&
                   leakPath.compare(leakPath.size() - 4, 4, ".npy") ==
                       0;
        bool ok = npy ? leak.writeNpy(leakPath)
                      : leak.writeCsv(leakPath);
        JsonLine stamp;
        stamp.str("tool", "jaavr-gdb").str("trace", leakPath);
        ok = leak.writeMeta(leakPath + ".meta.json", stamp) && ok;
        if (!ok)
            std::fprintf(stderr, "cannot write %s\n", leakPath.c_str());
        std::printf("leakage: %zu samples over %llu cycles -> %s\n",
                    leak.samples().size(),
                    static_cast<unsigned long long>(leak.time()),
                    leakPath.c_str());
    }
    if (vcd.active()) {
        std::printf("VCD: %llu instructions over %llu cycles -> %s\n",
                    static_cast<unsigned long long>(vcd.samples()),
                    static_cast<unsigned long long>(vcd.time()),
                    vcdPath.c_str());
        vcd.close();
    }
    if (log)
        std::fclose(log);
    tcp.shutdown();
    std::printf("session ended\n");
    return 0;
}
