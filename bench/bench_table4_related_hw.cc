/**
 * @file
 * Reproduction of Table IV: comparison with related lightweight ECC
 * hardware. The literature rows are constants from the paper's table;
 * "Our Work (Mon)" is re-measured by this reproduction (Montgomery
 * curve, ISE mode) with the chip area from the calibrated model.
 */

#include "bench/bench_util.hh"
#include "model/area_power.hh"
#include "model/experiments.hh"

using namespace jaavr;
using namespace jaavr::bench;

int
main()
{
    heading("Table IV: comparison with related hardware "
            "implementations");

    struct LitRow
    {
        const char *ref;
        const char *field;
        int bits;
        double kcycles;
        double ge;
    };
    const LitRow lit[] = {
        {"Koschuch et al. [15]", "GF(2^m)", 163, 1190, 29491},
        {"Fuerbass et al. [5]", "GF(p)", 160, 362, 19000},
        {"Hein et al. [11]", "GF(2^m)", 163, 296, 13250},
        {"Lee et al. [16]", "GF(2^m)", 163, 302, 12506},
        {"Wenger et al. [25]", "GF(p)", 192, 1377, 11686},
    };

    std::printf("  %-24s %-9s %5s | %10s | %8s\n", "Reference", "Field",
                "Size", "kCycles", "Area GE");
    separator();
    for (const LitRow &r : lit)
        std::printf("  %-24s %-9s %5d | %10.0f | %8.0f\n", r.ref,
                    r.field, r.bits, r.kcycles, r.ge);

    // Our row: Montgomery curve, ISE mode (the paper's choice for the
    // comparison because of its constant execution pattern).
    Rng rng(0x7ab4);
    auto m = measurePointMultAvg(CurveId::MontgomeryOpf,
                                 PmMethod::XzLadder, CpuMode::ISE, rng, 3);
    CurveFootprint fp = curveFootprint(CurveId::MontgomeryOpf,
                                       CpuMode::ISE);
    AreaBreakdown area =
        AreaModel::chip(CpuMode::ISE, fp.romBytes, fp.ramBytes);
    std::printf("  %-24s %-9s %5d | %10.1f | %8.0f\n",
                "Our Work (Mon, repro)", "GF(p)", 160,
                m.run.cycles / 1000.0, area.total());
    row("Our Work (Mon) kCycles", 1300, m.run.cycles / 1000.0, "kcyc");
    row("Our Work (Mon) area", 20980, area.total(), "GE");

    note("shape check (paper): dedicated ECC hardware is faster and/or "
         "smaller, but the ASIP keeps a C-programmable AVR core able "
         "to run other tasks.");
    return 0;
}
