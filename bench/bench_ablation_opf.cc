/**
 * @file
 * Ablation: WHY Optimal Prime Fields — the paper's §II-A argument,
 * measured. An OPF performs its Montgomery reduction through
 * multiplications (s^2 + s word MACs total), so the MAC unit
 * accelerates the *whole* multiplication; a generalized-Mersenne
 * prime like secp160r1's reduces through additions, which the MAC
 * cannot touch. Both routine sets are generated assembly measured on
 * the ISS.
 */

#include "bench/bench_util.hh"
#include "avrgen/secp160_harness.hh"
#include "field/montgomery_domain.hh"
#include "field/opf_field.hh"
#include "model/field_costs.hh"
#include "nt/opf_prime.hh"
#include "support/random.hh"

using namespace jaavr;
using namespace jaavr::bench;

int
main()
{
    heading("Ablation: OPF vs. generalized-Mersenne (secp160r1) "
            "modular multiplication");

    std::printf("  %-28s | %8s %8s %8s | %s\n", "field", "CA", "FAST",
                "ISE", "ISE speed-up vs CA");
    separator();
    uint64_t opf_cyc[3], sec_cyc[3];
    CpuMode modes[3] = {CpuMode::CA, CpuMode::FAST, CpuMode::ISE};
    for (int m = 0; m < 3; m++) {
        opf_cyc[m] = opfFieldCosts(paperOpfPrime(), modes[m]).mul;
        sec_cyc[m] = secp160r1FieldCosts(modes[m]).mul;
    }
    std::printf("  %-28s | %8llu %8llu %8llu | %.2fx\n",
                "OPF p = 65356*2^144+1",
                (unsigned long long)opf_cyc[0],
                (unsigned long long)opf_cyc[1],
                (unsigned long long)opf_cyc[2],
                double(opf_cyc[0]) / opf_cyc[2]);
    std::printf("  %-28s | %8llu %8llu %8llu | %.2fx\n",
                "secp160r1 p = 2^160-2^31-1",
                (unsigned long long)sec_cyc[0],
                (unsigned long long)sec_cyc[1],
                (unsigned long long)sec_cyc[2],
                double(sec_cyc[0]) / sec_cyc[2]);

    // Third data point: give secp160r1 the MAC for its product phase
    // (something the paper did not build) -- the additive reduction
    // still leaves it behind the OPF.
    {
        Rng r2(0xab10);
        Secp160AvrLibrary ise(CpuMode::ISE);
        BigUInt a = BigUInt::randomBits(r2, 159);
        BigUInt b2 = BigUInt::randomBits(r2, 159);
        uint64_t mac_mul =
            ise.mulIse(a.toWords(5), b2.toWords(5)).cycles;
        std::printf("  %-28s | %8s %8s %8llu | %.2fx\n",
                    "secp160r1 + MAC product", "-", "-",
                    (unsigned long long)mac_mul,
                    double(sec_cyc[0]) / mac_mul);
    }

    heading("The word-MAC accounting behind it (paper Section II-A)");
    Rng rng(0xab0f);
    OpfField opf(paperOpfPrime());
    MontgomeryDomain gen(paperOpfPrime().p);
    BigUInt a = BigUInt::random(rng, paperOpfPrime().p);
    BigUInt b = BigUInt::random(rng, paperOpfPrime().p);
    opf.montMul(opf.toMont(a), opf.toMont(b));
    gen.montMul(gen.toMont(a), gen.toMont(b));
    row("OPF word MACs per mul (s^2+s)", 30,
        double(opf.lastStats().wordMacs), "");
    row("general-modulus word MACs (2s^2+s)", 55,
        double(gen.lastWordMacs()), "");

    note("shape: the low-weight prime halves the word multiplications "
         "AND keeps the");
    note("reduction in multiply form, so the MAC unit's benefit "
         "applies end to end");
    note("(5.3x here). Even handing secp160r1's product phase to the "
         "MAC (a variant");
    note("the paper did not build) leaves it ~20% behind the OPF: "
         "the reduction's");
    note("s extra MAC blocks are cheaper than the fold's loads, "
         "stores and adds.");
    return 0;
}
