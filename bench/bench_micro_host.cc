/**
 * @file
 * google-benchmark microbenchmarks of the host-side library layers:
 * bigint primitives, OPF word-level arithmetic, curve group
 * operations, full scalar multiplications, and the raw simulation
 * rate of the AVR ISS. These measure the reproduction itself (host
 * performance), not the paper's cycle counts.
 */

#include <benchmark/benchmark.h>

#include "avrgen/opf_harness.hh"
#include "curves/standard_curves.hh"
#include "field/opf_field.hh"
#include "nt/opf_prime.hh"
#include "support/random.hh"

using namespace jaavr;

namespace
{

void
BM_BigUIntMul(benchmark::State &state)
{
    Rng rng(1);
    BigUInt a = BigUInt::randomBits(rng, 160);
    BigUInt b = BigUInt::randomBits(rng, 160);
    for (auto _ : state)
        benchmark::DoNotOptimize(a * b);
}
BENCHMARK(BM_BigUIntMul);

void
BM_BigUIntDivMod(benchmark::State &state)
{
    Rng rng(2);
    BigUInt n = BigUInt::randomBits(rng, 320);
    BigUInt d = BigUInt::randomBits(rng, 160);
    BigUInt q, r;
    for (auto _ : state) {
        BigUInt::divMod(n, d, q, r);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_BigUIntDivMod);

void
BM_OpfMontMul(benchmark::State &state)
{
    OpfField f(paperOpfPrime());
    Rng rng(3);
    auto a = f.fromBig(BigUInt::randomBits(rng, 160));
    auto b = f.fromBig(BigUInt::randomBits(rng, 160));
    for (auto _ : state)
        benchmark::DoNotOptimize(f.montMul(a, b));
}
BENCHMARK(BM_OpfMontMul);

void
BM_FieldInv(benchmark::State &state)
{
    const PrimeField &f = paperOpfField();
    Rng rng(4);
    BigUInt a = f.random(rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(f.inv(a));
}
BENCHMARK(BM_FieldInv);

void
BM_JacobianDouble(benchmark::State &state)
{
    const WeierstrassCurve &c = weierstrassOpfCurve();
    Rng rng(5);
    JacobianPoint p = c.toJacobian(c.randomPoint(rng));
    for (auto _ : state)
        benchmark::DoNotOptimize(c.dbl(p));
}
BENCHMARK(BM_JacobianDouble);

void
BM_ScalarMult(benchmark::State &state)
{
    // Arg selects the configuration.
    Rng rng(6);
    BigUInt k = BigUInt::randomBits(rng, 160);
    switch (state.range(0)) {
      case 0: {
        const WeierstrassCurve &c = secp160r1Curve();
        AffinePoint g = secp160r1Generator().g;
        for (auto _ : state)
            benchmark::DoNotOptimize(c.mulNaf(k, g));
        break;
      }
      case 1: {
        const MontgomeryCurve &c = montgomeryOpfCurve();
        BigUInt x = montgomeryOpfBasePoint().x;
        for (auto _ : state)
            benchmark::DoNotOptimize(c.ladder(k, x));
        break;
      }
      case 2: {
        const GlvCurve &c = glvOpfCurve();
        AffinePoint g = c.generator();
        for (auto _ : state)
            benchmark::DoNotOptimize(c.mulGlvJsf(k, g));
        break;
      }
    }
}
BENCHMARK(BM_ScalarMult)->Arg(0)->Arg(1)->Arg(2);

void
BM_IssSimulationRate(benchmark::State &state)
{
    // Instructions per second of the ISS on the native OPF mul.
    OpfField f(paperOpfPrime());
    OpfAvrLibrary lib(paperOpfPrime(), CpuMode::CA);
    Rng rng(7);
    auto a = f.fromBig(BigUInt::randomBits(rng, 160));
    auto b = f.fromBig(BigUInt::randomBits(rng, 160));
    uint64_t instructions = 0;
    for (auto _ : state) {
        uint64_t before = lib.machine().stats().instructions;
        benchmark::DoNotOptimize(lib.mul(a, b));
        instructions += lib.machine().stats().instructions - before;
    }
    state.counters["insns/s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IssSimulationRate);

} // anonymous namespace

BENCHMARK_MAIN();
