/**
 * @file
 * Reproduction of Figure 1 / Section IV-A: the (32x4)-bit MAC unit in
 * action. Demonstrates the 8-cycle (32x32)-bit multiply-accumulate,
 * both access mechanisms (Algorithm 1: re-interpreted SWAP;
 * Algorithm 2: R24-load trigger), and the instruction histogram of
 * the 552-cycle ISE multiplication (paper: 204 LD/LDD of which 100
 * trigger MACs, 40 ST, 83 MOVW, 40 SWAP, 31 NOP).
 */

#include "avr/profiler.hh"
#include "avr/vcd.hh"
#include "avrasm/assembler.hh"
#include "avrgen/opf_harness.hh"
#include "bench/bench_util.hh"
#include "nt/opf_prime.hh"
#include "support/random.hh"

using namespace jaavr;
using namespace jaavr::bench;

namespace
{

uint64_t
cyclesOf(const char *src, uint32_t a, uint32_t b)
{
    Machine m(CpuMode::ISE);
    m.loadProgram(assemble(src, "fig1").words);
    m.writeBytes(0x0200, {uint8_t(a), uint8_t(a >> 8), uint8_t(a >> 16),
                          uint8_t(a >> 24)});
    m.writeBytes(0x0210, {uint8_t(b), uint8_t(b >> 8), uint8_t(b >> 16),
                          uint8_t(b >> 24)});
    m.setY(0x0200);
    m.setZ(0x0210);
    return m.call(0) - 4 /* ret */;
}

// Algorithm 1 (paper listing): operand loads + eight SWAPs.
const char *kAlg1 = R"(
    .equ MACCR = 0x3c
    ldi r20, 0x01
    out MACCR, r20
    ld  r16, Y+
    ld  r17, Y+
    ld  r18, Y+
    ld  r19, Y+
    ld  r20, Z+
    ld  r21, Z+
    ld  r22, Z+
    ld  r23, Z+
    swap r20
    swap r20
    swap r21
    swap r21
    swap r22
    swap r22
    swap r23
    swap r23
    ret
)";

// Algorithm 2 (paper listing): R24 loads trigger MAC pairs; the NOPs
// are the data-dependency bubbles of the listing.
const char *kAlg2 = R"(
    .equ MACCR = 0x3c
    ldi r20, 0x02
    out MACCR, r20
    ldd r16, Y+0
    ldd r17, Y+1
    ldd r18, Y+2
    ldd r19, Y+3
    ldd r24, Z+0
    nop
    ldd r24, Z+1
    nop
    ldd r24, Z+2
    nop
    ldd r24, Z+3
    nop
    nop
    ret
)";

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string vcdPath;
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--vcd" && i + 1 < argc) {
            vcdPath = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--vcd FILE]\n", argv[0]);
            return 2;
        }
    }

    heading("Figure 1 / Section IV-A: the (32x4)-bit MAC unit");

    Rng rng(0xf161);
    uint32_t a = rng.next32(), b = rng.next32();

    // Pure MAC sequence: 8 SWAP-MACs = 8 cycles.
    uint64_t alg1 = cyclesOf(kAlg1, a, b);
    uint64_t alg2 = cyclesOf(kAlg2, a, b);
    note("a full (32x32)-bit multiplication is composed of eight "
         "(32x4)-bit MAC operations:");
    row("Algorithm 1 MAC phase (8 swaps)", 8, alg1 - 2 - 8, "cyc");
    note("  (total sequence incl. mode setup and 8 operand-byte "
         "loads: " + std::to_string(alg1) + " cycles)");
    row("Algorithm 2 full listing", 13, alg2 - 2, "cyc");
    note("  (4 A-operand loads + 4 trigger loads + 5 bubble slots; "
         "MACs add zero cycles)");

    heading("Instruction histogram of the ISE OPF multiplication");
    OpfPrime prime = paperOpfPrime();
    OpfField f(prime);
    OpfAvrLibrary ise(prime, CpuMode::ISE);
    auto wa = f.fromBig(BigUInt::randomBits(rng, 160));
    auto wb = f.fromBig(BigUInt::randomBits(rng, 160));
    CallGraphProfiler prof(ise.machine(), ise.symbols(),
                           /*histograms=*/true, /*record_trace=*/true);
    ise.machine().resetStats();
    // Optional waveform capture of the 552-cycle multiplication; the
    // recording run routes through the reference loop, whose timing
    // is pinned to the fast path, so the numbers below are unchanged.
    VcdWriter vcd;
    if (!vcdPath.empty()) {
        ise.machine().setWaveSink(&vcd);
        if (!vcd.open(vcdPath, ise.machine()))
            return 1;
    }
    OpfRun run = ise.mul(wa, wb);
    if (vcd.active()) {
        note("VCD waveform (" + std::to_string(vcd.samples()) +
             " instructions, " + std::to_string(vcd.time()) +
             " cycles) written to " + vcdPath);
        vcd.close();
    }
    const ExecStats &st = ise.machine().stats();

    // Per-routine attribution: the profiler's opf_mul node carries the
    // same counts as the global ExecStats here (only the one routine
    // ran), but keyed to the routine symbol.
    const CallGraphProfiler::Node *mul = prof.nodeByName("opf_mul");
    if (!mul)
        return 1;
    note("paper, Section III-B: 204 LD, 40 ST, 83 MOVW, 40 SWAP, "
         "31 NOP; 552 cycles total");
    row("total cycles (opf_mul, inclusive)", 552, mul->inclusiveCycles,
        "cyc");
    row("LD/LDD instructions", 204, mul->loads, "");
    row("  of which MAC triggers", 100, ise.machine().mac().totalMacs() / 2
            - 40 / 2 /* SWAP MACs excluded */, "");
    row("ST/STS instructions", 40, mul->stores, "");
    row("MOVW instructions", 83, mul->count(Op::MOVW), "");
    row("SWAP instructions", 40, mul->count(Op::SWAP), "");
    row("NOP instructions", 31, mul->count(Op::NOP), "");
    row("  = MAC hazard stalls (ISS counter)", 31, st.macStallNops, "");
    row("MAC operations (25 blocks + 5 reductions) * 8", 240,
        ise.machine().mac().totalMacs(), "");
    if (mul->count(Op::NOP) == st.macStallNops)
        note("check: every NOP retired while MAC micro-ops were "
             "pending (pure hazard bubbles)");

    heading("Profiler report (ISE opf_mul run)");
    std::printf("%s", prof.textReport().c_str());
    rowMeasured("stack high water", prof.stackHighWaterBytes(), "bytes");

    appendJsonLine("BENCH_fig1.json",
                   benchLine("fig1_mac")
                       .str("workload", "opf_mul_ise")
                       .num("cycles", run.cycles)
                       .num("paper_cycles", uint64_t(552))
                       .num("loads", mul->loads)
                       .num("stores", mul->stores)
                       .num("movw", mul->count(Op::MOVW))
                       .num("swap", mul->count(Op::SWAP))
                       .num("nop", mul->count(Op::NOP))
                       .num("mac_stall_nops", st.macStallNops)
                       .num("total_macs",
                            ise.machine().mac().totalMacs()));
    prof.writeJsonLines("PROFILE_fig1_mac.json", "fig1_mac",
                        "opf_mul_ise");
    prof.writeChromeTrace("TRACE_fig1_mac.json");
    note("profiler export: PROFILE_fig1_mac.json (JSON lines), "
         "TRACE_fig1_mac.json (chrome://tracing)");
    return 0;
}
