/**
 * @file
 * Ablation: the scalar-recoding design space the paper navigates in
 * Section V-B. The paper picks NAF for the high-speed rows because it
 * cuts additions without extra memory, and explicitly rejects
 * windowed/comb methods on memory grounds ("should not consume all
 * available program or data memory"; comb also needs a fixed base
 * point, ruling out ECDH). This benchmark quantifies that trade-off:
 * cycles vs. precomputation RAM for binary, NAF and width-w NAF on
 * the OPF Weierstrass curve, in CA and ISE modes, plus the GLV
 * endomorphism as the "recoding" that actually wins.
 */

#include "bench/bench_util.hh"
#include "curves/standard_curves.hh"
#include "model/experiments.hh"

using namespace jaavr;
using namespace jaavr::bench;

namespace
{

struct Variant
{
    const char *name;
    unsigned w;        ///< 0 = binary, 1 = NAF, >= 2 = wNAF width
    size_t tableRam;   ///< bytes of precomputed points (affine)
};

const Variant kVariants[] = {
    {"binary double-and-add", 0, 0},
    {"NAF (the paper's choice)", 1, 0},
    {"wNAF w=4 (3 extra points)", 4, 3 * 40},
    {"wNAF w=5 (7 extra points)", 5, 7 * 40},
    {"wNAF w=6 (15 extra points)", 6, 15 * 40},
};

} // anonymous namespace

int
main()
{
    heading("Ablation: scalar recoding vs. memory on the OPF "
            "Weierstrass curve");

    const WeierstrassCurve &c = weierstrassOpfCurve();
    AffinePoint g = weierstrassOpfBasePoint();
    Rng rng(0xab1a);

    for (CpuMode mode : {CpuMode::CA, CpuMode::ISE}) {
        std::printf("  -- %s mode --\n", cpuModeName(mode));
        CycleExecutor exec(opfFieldCosts(paperOpfPrime(), mode));
        uint64_t naf_cycles = 0;
        for (const Variant &v : kVariants) {
            uint64_t total = 0;
            const int samples = 5;
            for (int i = 0; i < samples; i++) {
                BigUInt k = BigUInt(1) + BigUInt::randomBits(rng, 159);
                MeasuredRun run = exec.measure(c.field(), [&] {
                    if (v.w == 0)
                        c.mulBinary(k, g);
                    else if (v.w == 1)
                        c.mulNaf(k, g);
                    else
                        c.mulWNaf(k, g, v.w);
                });
                total += run.cycles;
            }
            uint64_t cycles = total / samples;
            if (v.w == 1)
                naf_cycles = cycles;
            std::printf("  %-28s %9llu cyc  %+6.1f%% vs NAF  "
                        "table RAM %4zu B\n",
                        v.name, static_cast<unsigned long long>(cycles),
                        naf_cycles ? 100.0 * (double(cycles) /
                                                  naf_cycles - 1.0)
                                   : 0.0,
                        v.tableRam);
        }

        // The GLV endomorphism: half-length scalars beat any window.
        const GlvCurve &glv = glvOpfCurve();
        AffinePoint gg = glv.generator();
        CycleExecutor gexec(opfFieldCosts(glvOpfPrimeUsed(), mode));
        uint64_t total = 0;
        for (int i = 0; i < 5; i++) {
            BigUInt k = BigUInt(1) +
                        BigUInt::random(rng, glv.order() - BigUInt(1));
            total += gexec.measure(glv.field(), [&] {
                glv.mulGlvJsf(k, gg);
            }).cycles;
        }
        std::printf("  %-28s %9llu cyc  %+6.1f%% vs NAF  "
                    "table RAM %4u B\n\n",
                    "GLV endomorphism + JSF",
                    static_cast<unsigned long long>(total / 5),
                    100.0 * (double(total / 5) / naf_cycles - 1.0),
                    3 * 40);
    }

    note("shape: wNAF buys at most ~5% over NAF and needs 100-600 "
         "bytes of table RAM");
    note("(a large fraction of the paper's 505-865 byte budgets); at "
         "w=6 the table");
    note("construction already cancels the gain for 160-bit scalars. "
         "The GLV");
    note("endomorphism gets ~40% from three points - which is why the "
         "paper's");
    note("high-speed pick is NAF per curve plus the endomorphism "
         "where available.");
    return 0;
}
