/**
 * @file
 * Shared console-reporting helpers for the table-reproduction
 * benchmark binaries: every bench prints the paper's reported value
 * next to the value this reproduction measures, plus their ratio, so
 * the shape comparison is immediate.
 *
 * Additionally provides a JSON-lines emitter (one flat object per
 * line) so every bench can append machine-readable records to a
 * BENCH_*.json file; downstream tooling tracks the perf trajectory
 * across PRs from these files.
 */

#ifndef JAAVR_BENCH_BENCH_UTIL_HH
#define JAAVR_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "support/json.hh"

namespace jaavr::bench
{

// JSON emission lives in src/support/json.hh so the profiler and the
// benches share one (correctly escaping) implementation.
using jaavr::JsonLine;
using jaavr::appendJsonLine;

/** Schema of the stamped bench records (bump on breaking changes). */
inline constexpr uint64_t kBenchSchemaVersion = 2;

/**
 * Git revision for run stamping: the JAAVR_GIT_SHA environment
 * variable wins (CI exports the checkout SHA), else the
 * configure-time revision CMake baked into the bench binaries, else
 * "unknown" (e.g. building from a tarball).
 */
inline std::string
gitSha()
{
    if (const char *env = std::getenv("JAAVR_GIT_SHA"); env && *env)
        return env;
#ifdef JAAVR_BUILD_GIT_SHA
    return JAAVR_BUILD_GIT_SHA;
#else
    return "unknown";
#endif
}

/**
 * The ISS backend the environment selects for this run:
 * JAAVR_ISS_REFERENCE=1 wins (legacy force-reference switch), then
 * JAAVR_ISS_BACKEND (reference|fast|superblock), else the default
 * superblock backend. Mirrors the Machine's own env handling.
 */
inline std::string
issPathFromEnv()
{
    if (const char *ref = std::getenv("JAAVR_ISS_REFERENCE");
        ref && *ref && *ref != '0')
        return "reference";
    if (const char *be = std::getenv("JAAVR_ISS_BACKEND");
        be && (!std::strcmp(be, "reference") ||
               !std::strcmp(be, "fast") ||
               !std::strcmp(be, "superblock")))
        return be;
    return "superblock";
}

/**
 * One JSON record pre-stamped with run metadata — schema version,
 * git revision, ISS path (the environment-selected backend) and the
 * emitting bench — so every line in a BENCH_*.json trajectory is
 * self-describing. All benches start their records here.
 */
inline JsonLine
benchLine(const std::string &bench)
{
    JsonLine line;
    line.num("schema_version", kBenchSchemaVersion)
        .str("git_sha", gitSha())
        .str("iss_path", issPathFromEnv())
        .str("bench", bench);
    return line;
}

inline void
heading(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

inline void
note(const std::string &text)
{
    std::printf("  %s\n", text.c_str());
}

/** "(xR.RR)" ratio tag, or "(n/a)" when the paper gives no value —
 *  a 0 reference is "not reported", not a zero to divide by. */
inline std::string
ratioTag(double paper, double measured)
{
    if (paper <= 0)
        return "(n/a)";
    char buf[32];
    std::snprintf(buf, sizeof buf, "(x%.2f)", measured / paper);
    return buf;
}

/** Print one paper-vs-measured row with the measured/paper ratio. */
inline void
row(const std::string &label, double paper, double measured,
    const char *unit)
{
    std::printf("  %-38s paper %12.0f %-7s  measured %12.0f  %s\n",
                label.c_str(), paper, unit, measured,
                ratioTag(paper, measured).c_str());
}

/** Paper-vs-measured row for small ratios (two decimals). */
inline void
rowF(const std::string &label, double paper, double measured,
     const char *unit)
{
    std::printf("  %-38s paper %12.2f %-7s  measured %12.2f  %s\n",
                label.c_str(), paper, unit, measured,
                ratioTag(paper, measured).c_str());
}

/** Row without a paper reference value. */
inline void
rowMeasured(const std::string &label, double measured, const char *unit)
{
    std::printf("  %-38s %43s %12.0f %s\n", label.c_str(), "", measured,
                unit);
}

inline void
separator()
{
    std::printf("  %s\n", std::string(96, '-').c_str());
}

} // namespace jaavr::bench

#endif // JAAVR_BENCH_BENCH_UTIL_HH
