/**
 * @file
 * Shared console-reporting helpers for the table-reproduction
 * benchmark binaries: every bench prints the paper's reported value
 * next to the value this reproduction measures, plus their ratio, so
 * the shape comparison is immediate.
 *
 * Additionally provides a JSON-lines emitter (one flat object per
 * line) so every bench can append machine-readable records to a
 * BENCH_*.json file; downstream tooling tracks the perf trajectory
 * across PRs from these files.
 */

#ifndef JAAVR_BENCH_BENCH_UTIL_HH
#define JAAVR_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "support/json.hh"

namespace jaavr::bench
{

// JSON emission lives in src/support/json.hh so the profiler and the
// benches share one (correctly escaping) implementation.
using jaavr::JsonLine;
using jaavr::appendJsonLine;

inline void
heading(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

inline void
note(const std::string &text)
{
    std::printf("  %s\n", text.c_str());
}

/** Print one paper-vs-measured row with the measured/paper ratio. */
inline void
row(const std::string &label, double paper, double measured,
    const char *unit)
{
    std::printf("  %-38s paper %12.0f %-7s  measured %12.0f  (x%.2f)\n",
                label.c_str(), paper, unit, measured,
                paper > 0 ? measured / paper : 0.0);
}

/** Paper-vs-measured row for small ratios (two decimals). */
inline void
rowF(const std::string &label, double paper, double measured,
     const char *unit)
{
    std::printf("  %-38s paper %12.2f %-7s  measured %12.2f  (x%.2f)\n",
                label.c_str(), paper, unit, measured,
                paper > 0 ? measured / paper : 0.0);
}

/** Row without a paper reference value. */
inline void
rowMeasured(const std::string &label, double measured, const char *unit)
{
    std::printf("  %-38s %43s %12.0f %s\n", label.c_str(), "", measured,
                unit);
}

inline void
separator()
{
    std::printf("  %s\n", std::string(96, '-').c_str());
}

} // namespace jaavr::bench

#endif // JAAVR_BENCH_BENCH_UTIL_HH
