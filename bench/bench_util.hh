/**
 * @file
 * Shared console-reporting helpers for the table-reproduction
 * benchmark binaries: every bench prints the paper's reported value
 * next to the value this reproduction measures, plus their ratio, so
 * the shape comparison is immediate.
 *
 * Additionally provides a JSON-lines emitter (one flat object per
 * line) so every bench can append machine-readable records to a
 * BENCH_*.json file; downstream tooling tracks the perf trajectory
 * across PRs from these files.
 */

#ifndef JAAVR_BENCH_BENCH_UTIL_HH
#define JAAVR_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace jaavr::bench
{

inline void
heading(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

inline void
note(const std::string &text)
{
    std::printf("  %s\n", text.c_str());
}

/** Print one paper-vs-measured row with the measured/paper ratio. */
inline void
row(const std::string &label, double paper, double measured,
    const char *unit)
{
    std::printf("  %-38s paper %12.0f %-7s  measured %12.0f  (x%.2f)\n",
                label.c_str(), paper, unit, measured,
                paper > 0 ? measured / paper : 0.0);
}

/** Paper-vs-measured row for small ratios (two decimals). */
inline void
rowF(const std::string &label, double paper, double measured,
     const char *unit)
{
    std::printf("  %-38s paper %12.2f %-7s  measured %12.2f  (x%.2f)\n",
                label.c_str(), paper, unit, measured,
                paper > 0 ? measured / paper : 0.0);
}

/** Row without a paper reference value. */
inline void
rowMeasured(const std::string &label, double measured, const char *unit)
{
    std::printf("  %-38s %43s %12.0f %s\n", label.c_str(), "", measured,
                unit);
}

inline void
separator()
{
    std::printf("  %s\n", std::string(96, '-').c_str());
}

/**
 * One flat JSON object serialized as a single line. Field order is
 * insertion order; values are strings, integers or doubles (all a
 * trajectory tracker needs).
 */
class JsonLine
{
  public:
    JsonLine &
    str(const std::string &key, const std::string &value)
    {
        fields.push_back("\"" + escape(key) + "\":\"" + escape(value) +
                         "\"");
        return *this;
    }

    JsonLine &
    num(const std::string &key, double value)
    {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6g", value);
        fields.push_back("\"" + escape(key) + "\":" + buf);
        return *this;
    }

    JsonLine &
    num(const std::string &key, uint64_t value)
    {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%llu",
                      static_cast<unsigned long long>(value));
        fields.push_back("\"" + escape(key) + "\":" + buf);
        return *this;
    }

    std::string
    text() const
    {
        std::string out = "{";
        for (size_t i = 0; i < fields.size(); i++)
            out += (i ? "," : "") + fields[i];
        return out + "}";
    }

  private:
    static std::string
    escape(const std::string &s)
    {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        return out;
    }

    std::vector<std::string> fields;
};

/**
 * Append @p line to the JSON-lines file @p path (created on first
 * use). Returns false (with a warning on stderr) if the file cannot
 * be opened — benches still report on the console in that case.
 */
inline bool
appendJsonLine(const std::string &path, const JsonLine &line)
{
    std::FILE *f = std::fopen(path.c_str(), "a");
    if (!f) {
        std::fprintf(stderr, "warn: cannot append to %s\n", path.c_str());
        return false;
    }
    std::fprintf(f, "%s\n", line.text().c_str());
    std::fclose(f);
    return true;
}

} // namespace jaavr::bench

#endif // JAAVR_BENCH_BENCH_UTIL_HH
