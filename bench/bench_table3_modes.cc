/**
 * @file
 * Reproduction of Table III: the full 4-curve x 3-mode matrix of
 * point-multiplication cycles, memory footprints, chip area, power,
 * energy, and the Scaled Area-Runtime Product (SARP; higher is
 * better, normalized to the Weierstrass/CA configuration).
 */

#include <vector>

#include "bench/bench_util.hh"
#include "model/area_power.hh"
#include "model/experiments.hh"

using namespace jaavr;
using namespace jaavr::bench;

namespace
{

struct PaperRow
{
    CurveId curve;
    CpuMode mode;
    double cycles;  ///< paper's point-mult cycles
    double rom_bytes;
    double total_ge;
    double sarp;
};

const PaperRow kPaper[] = {
    {CurveId::WeierstrassOpf, CpuMode::CA, 6982629, 6224, 19742, 1.00},
    {CurveId::EdwardsOpf, CpuMode::CA, 5596860, 6022, 19572, 1.26},
    {CurveId::MontgomeryOpf, CpuMode::CA, 5545078, 6824, 20068, 1.24},
    {CurveId::GlvOpf, CpuMode::CA, 3930256, 8638, 25029, 1.40},
    {CurveId::WeierstrassOpf, CpuMode::FAST, 5254706, 6224, 20355, 1.29},
    {CurveId::EdwardsOpf, CpuMode::FAST, 4214289, 6022, 20208, 1.62},
    {CurveId::MontgomeryOpf, CpuMode::FAST, 4165405, 6824, 20695, 1.60},
    {CurveId::GlvOpf, CpuMode::FAST, 2939929, 8638, 25665, 1.83},
    {CurveId::WeierstrassOpf, CpuMode::ISE, 1542981, 6290, 21546, 4.15},
    {CurveId::EdwardsOpf, CpuMode::ISE, 1230663, 6128, 21266, 5.27},
    {CurveId::MontgomeryOpf, CpuMode::ISE, 1299598, 5752, 20980, 5.06},
    {CurveId::GlvOpf, CpuMode::ISE, 1001302, 8640, 26858, 5.13},
};

/** High-speed method per curve (what Table III times). */
PmMethod
methodFor(CurveId curve)
{
    switch (curve) {
      case CurveId::EdwardsOpf: return PmMethod::Naf;
      case CurveId::MontgomeryOpf: return PmMethod::XzLadder;
      case CurveId::GlvOpf: return PmMethod::GlvJsf;
      default: return PmMethod::Naf;
    }
}

struct MeasuredRow
{
    const PaperRow *paper;
    uint64_t cycles;
    CurveFootprint fp;
    AreaBreakdown area;
    PowerBreakdown power;
    double energyUj;
    double sarp = 0;
};

} // anonymous namespace

int
main()
{
    heading("Table III: point mult cycles / ROM / area / power / SARP "
            "per curve and mode");

    Rng rng(0x7ab3);
    std::vector<MeasuredRow> rows;
    for (const PaperRow &pr : kPaper) {
        MeasuredRow r;
        r.paper = &pr;
        auto m = measurePointMultAvg(pr.curve, methodFor(pr.curve),
                                     pr.mode, rng, 3);
        r.cycles = m.run.cycles;
        r.fp = curveFootprint(pr.curve, pr.mode);
        r.area = AreaModel::chip(pr.mode, r.fp.romBytes, r.fp.ramBytes);
        r.power = PowerModel::chip(pr.mode, r.fp.romBytes, r.fp.ramBytes);
        r.energyUj = PowerModel::energyUj(r.power, r.cycles);
        rows.push_back(r);
    }

    // SARP normalized to the Weierstrass/CA row (index 0).
    double ref_area = rows[0].area.total();
    uint64_t ref_cycles = rows[0].cycles;
    for (MeasuredRow &r : rows)
        r.sarp = sarp(ref_area, ref_cycles, r.area.total(), r.cycles);

    std::printf("  %-12s %-5s | %13s %13s | %8s %8s | %7s %7s | %6s %6s\n",
                "Curve", "Mode", "cyc(paper)", "cyc(ours)", "ROM(p)",
                "ROM(o)", "GE(p)", "GE(o)", "SARP-p", "SARP-o");
    separator();
    for (const MeasuredRow &r : rows) {
        std::printf("  %-12s %-5s | %13.0f %13llu | %8.0f %8zu | "
                    "%7.0f %7.0f | %6.2f %6.2f\n",
                    curveName(r.paper->curve), cpuModeName(r.paper->mode),
                    r.paper->cycles,
                    static_cast<unsigned long long>(r.cycles),
                    r.paper->rom_bytes, r.fp.romBytes, r.paper->total_ge,
                    r.area.total(), r.paper->sarp, r.sarp);
    }

    heading("Table III details (our model): power and energy at 1 MHz");
    for (const MeasuredRow &r : rows) {
        std::printf("  %-12s %-5s | CPU %5.1f uW  ROM %6.1f uW  RAM "
                    "%4.1f uW | total %6.1f uW | energy %7.1f uJ\n",
                    curveName(r.paper->curve), cpuModeName(r.paper->mode),
                    r.power.cpuUw, r.power.romUw, r.power.ramUw,
                    r.power.total(), r.energyUj);
    }
    note("paper: CPU 17-22 uW, RAM 1.2-5.4 uW, ROM up to 110 uW; "
         "energy 455-969 uJ per point multiplication in CA mode");

    heading("Section V-C shape checks");
    // CA->FAST improves runtimes by ~33%.
    double ca_fast = 0;
    for (int i = 0; i < 4; i++)
        ca_fast += 100.0 * (1.0 - double(rows[i + 4].cycles) /
                                      double(rows[i].cycles));
    row("CA->FAST runtime improvement (avg)", 33, ca_fast / 4, "%");
    // MAC speeds point mult by 3.9-4.5 (FAST vs ISE here: paper's
    // claim compares against CA).
    for (int i = 0; i < 4; i++) {
        double speedup = double(rows[i].cycles) / rows[i + 8].cycles;
        rowF(std::string(curveName(rows[i].paper->curve)) +
                 " CA->ISE point-mult speed-up",
             4.2, speedup, "x");
    }
    // Best ISE-mode SARP belongs to Edwards.
    int best = 8;
    for (int i = 9; i < 12; i++)
        if (rows[i].sarp > rows[best].sarp)
            best = i;
    note(std::string("best ISE-mode SARP: ") +
         curveName(rows[best].paper->curve) +
         " (paper: Edwards, by a small margin)");
    return 0;
}
