/**
 * @file
 * Reproduction of Table V: comparison with related ATmega128 software
 * implementations. Literature rows are constants from the paper; the
 * "This work" rows are re-measured by the reproduction in CA mode
 * (pure software on a standard ATmega128).
 */

#include "bench/bench_util.hh"
#include "model/experiments.hh"

using namespace jaavr;
using namespace jaavr::bench;

int
main()
{
    heading("Table V: related ATmega128 software implementations "
            "[kCycles]");

    struct LitRow
    {
        const char *ref;
        const char *curve;
        double kcycles;
    };
    const LitRow lit[] = {
        {"Wang et al. [23]", "secp160r1", 15060},
        {"Liu et al. (TinyECC) [17]", "secp160r1", 9953},
        {"Szczechowiak et al. [21]", "Weierstrass, GM prime", 9376},
        {"Ugus et al. [22]", "secp160r1", 7594},
        {"Gura et al. [9]", "secp160r1", 6480},
        {"Grossschaedl et al. [8]", "GLV, OPF", 5480},
    };
    std::printf("  %-28s %-24s | %10s\n", "Implementation", "Curve",
                "kCycles");
    separator();
    for (const LitRow &r : lit)
        std::printf("  %-28s %-24s | %10.0f\n", r.ref, r.curve,
                    r.kcycles);

    Rng rng(0x7ab5);
    struct OurRow
    {
        const char *label;
        CurveId curve;
        PmMethod method;
        double paper_kcycles;
    };
    const OurRow ours[] = {
        {"This work (Montgomery, OPF)", CurveId::MontgomeryOpf,
         PmMethod::XzLadder, 5545},
        {"This work (GLV, OPF)", CurveId::GlvOpf, PmMethod::GlvJsf,
         3930},
    };
    for (const OurRow &r : ours) {
        auto m = measurePointMultAvg(r.curve, r.method, CpuMode::CA,
                                     rng, 5);
        std::printf("  %-28s %-24s | %10.1f\n", r.label,
                    curveName(r.curve), m.run.cycles / 1000.0);
        row(r.label, r.paper_kcycles, m.run.cycles / 1000.0, "kcyc");
    }

    note("shape check (paper): the native-AVR GLV/OPF implementation "
         "outperforms all previously reported prime-field "
         "implementations.");
    return 0;
}
