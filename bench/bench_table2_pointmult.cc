/**
 * @file
 * Reproduction of Table II: point-multiplication times on a standard
 * ATmega128 (JAAVR in CA mode) for all five curves, with both the
 * high-speed and the constant-execution-pattern method per curve.
 * The real algorithms run on the host golden model while every field
 * operation is charged its ISS-measured cycle cost.
 */

#include "avr/profiler.hh"
#include "avrgen/opf_harness.hh"
#include "bench/bench_util.hh"
#include "model/area_power.hh"
#include "model/experiments.hh"
#include "nt/opf_prime.hh"

using namespace jaavr;
using namespace jaavr::bench;

namespace
{

struct Config
{
    CurveId curve;
    PmMethod method;
    double paper_kcycles;
};

const Config kHighSpeed[] = {
    {CurveId::Secp160r1, PmMethod::Naf, 7136},
    {CurveId::WeierstrassOpf, PmMethod::Naf, 6983},
    {CurveId::EdwardsOpf, PmMethod::Naf, 5597},
    {CurveId::MontgomeryOpf, PmMethod::XzLadder, 5545},
    {CurveId::GlvOpf, PmMethod::GlvJsf, 3930},
};

const Config kConstant[] = {
    {CurveId::Secp160r1, PmMethod::CozLadder, 8722},
    {CurveId::WeierstrassOpf, PmMethod::CozLadder, 8824},
    {CurveId::EdwardsOpf, PmMethod::Daaa, 8251},
    {CurveId::MontgomeryOpf, PmMethod::XzLadder, 5545},
    {CurveId::GlvOpf, PmMethod::CozLadder, 8132},
};

void
runSet(const char *title, const Config *configs, size_t n, Rng &rng)
{
    heading(title);
    double glv_cycles = 0, best = 1e18;
    for (size_t i = 0; i < n; i++) {
        const Config &cfg = configs[i];
        auto m = measurePointMultAvg(cfg.curve, cfg.method, CpuMode::CA,
                                     rng, 5);
        double kcyc = m.run.cycles / 1000.0;
        row(std::string(curveName(cfg.curve)) + " (" +
                methodName(cfg.method) + ")",
            cfg.paper_kcycles, kcyc, "kcyc");
        if (cfg.curve == CurveId::GlvOpf)
            glv_cycles = kcyc;
        best = std::min(best, kcyc);
    }
    if (glv_cycles > 0 && glv_cycles == best)
        note("shape check: GLV is the fastest high-speed curve (as in "
             "the paper)");
}

} // anonymous namespace

int
main()
{
    Rng rng(0x7ab2e2);
    runSet("Table II: high-speed point multiplication on ATmega128 "
           "[kCycles]", kHighSpeed, 5, rng);
    runSet("Table II: constant-pattern point multiplication [kCycles]",
           kConstant, 5, rng);

    heading("Section V-B relative slowdowns vs GLV (high-speed)");
    Rng rng2(0x7ab2e3);
    auto glv = measurePointMultAvg(CurveId::GlvOpf, PmMethod::GlvJsf,
                                   CpuMode::CA, rng2, 5);
    struct Rel { CurveId c; PmMethod m; double paper_pct; };
    Rel rels[] = {
        {CurveId::MontgomeryOpf, PmMethod::XzLadder, 41},
        {CurveId::EdwardsOpf, PmMethod::Naf, 42},
        {CurveId::WeierstrassOpf, PmMethod::Naf, 77},
        {CurveId::Secp160r1, PmMethod::Naf, 82},
    };
    for (const Rel &r : rels) {
        auto m = measurePointMultAvg(r.c, r.m, CpuMode::CA, rng2, 5);
        double pct =
            100.0 * (double(m.run.cycles) / glv.run.cycles - 1.0);
        row(std::string(curveName(r.c)) + " slower than GLV by",
            r.paper_pct, pct, "%");
    }

    // --- Where do the cycles of a scalar multiplication go? --------
    heading("Per-field-op cycle attribution (GLV high-speed, CA mode)");
    const FieldCycleCosts costs = opfFieldCosts(paperOpfPrime(),
                                                CpuMode::CA);
    // One fresh single-scalar run: measurePointMultAvg sums the op
    // counts across its samples while averaging the cycles.
    Rng rng3(0x7ab2e4);
    auto one = measurePointMult(CurveId::GlvOpf, PmMethod::GlvJsf,
                                CpuMode::CA, rng3);
    const FieldOpCounts &ops = one.run.ops;
    struct Item { const char *op; uint64_t count; uint64_t cycles; };
    Item items[] = {
        {"mul", ops.mul, ops.mul * costs.mul},
        {"sqr", ops.sqr, ops.sqr * costs.sqr},
        {"add", ops.add, ops.add * costs.add},
        {"sub", ops.sub, ops.sub * costs.sub},
        {"mul_small", ops.mulSmall, ops.mulSmall * costs.mulSmall},
        {"inv", ops.inv, ops.inv * costs.inv},
        {"call overhead", one.run.totalCalls(),
         one.run.totalCalls() * costs.callOverhead},
    };
    for (const Item &it : items) {
        double pct = 100.0 * it.cycles / one.run.cycles;
        std::printf("  %-14s %8llu calls %12llu cyc  (%5.1f%%)\n",
                    it.op, static_cast<unsigned long long>(it.count),
                    static_cast<unsigned long long>(it.cycles), pct);
        appendJsonLine("PROFILE_table2.json",
                       benchLine("table2_pointmult")
                           .str("workload", "glv_jsf_ca")
                           .str("symbol", it.op)
                           .num("calls", it.count)
                           .num("inclusive_cycles", it.cycles)
                           .num("pct_of_total", pct));
    }
    rowMeasured("total (modeled)", double(one.run.cycles), "cyc");

    // --- The same workload replayed on the ISS with the profiler ---
    // No monolithic AVR scalar-multiplication program exists (the
    // curve arithmetic runs on the host golden model), so replay the
    // measured field-op mix through the generated routines and let
    // the call-graph profiler attribute the cycles. sqr and mul_small
    // replay as mul (the library has no dedicated routines), so the
    // replayed total differs from the modeled total by the mul_small
    // discount and the per-call overhead.
    heading("ISS replay of the GLV field-op mix (profiled)");
    OpfAvrLibrary lib(paperOpfPrime(), CpuMode::CA);
    OpfField field(paperOpfPrime());
    auto wa = field.fromBig(BigUInt::randomBits(rng3, 160));
    auto wb = field.fromBig(BigUInt::randomBits(rng3, 160));
    CallGraphProfiler prof(lib.machine(), lib.symbols(),
                           /*histograms=*/true, /*record_trace=*/true);
    lib.machine().resetStats();
    for (uint64_t i = 0; i < ops.mul + ops.sqr + ops.mulSmall; i++)
        lib.mul(wa, wb);
    for (uint64_t i = 0; i < ops.add; i++)
        lib.add(wa, wb);
    for (uint64_t i = 0; i < ops.sub; i++)
        lib.sub(wa, wb);
    for (uint64_t i = 0; i < ops.inv; i++)
        lib.inv(wa);
    std::printf("%s", prof.textReport().c_str());
    rowMeasured("replayed total", double(lib.machine().stats().cycles),
                "cyc");
    rowMeasured("stack high water", prof.stackHighWaterBytes(), "bytes");
    prof.writeJsonLines("PROFILE_table2.json", "table2_pointmult",
                        "glv_replay_iss_ca");
    prof.writeChromeTrace("TRACE_table2_scalarmult.json");
    note("profiler export: PROFILE_table2.json (JSON lines), "
         "TRACE_table2_scalarmult.json (chrome://tracing)");

    // --- Energy per routine (Table III power model x profiler) -----
    // The replayed cycle attribution priced through the chip power
    // model of the GLV configuration, so the profile reads in the
    // paper's energy units (Table III reports whole-multiplication
    // energies; this breaks the same budget down per routine).
    heading("Energy per routine (GLV chip power model, CA mode)");
    const auto fp = curveFootprint(CurveId::GlvOpf, CpuMode::CA);
    const PowerBreakdown chip =
        PowerModel::chip(CpuMode::CA, fp.romBytes, fp.ramBytes);
    std::printf("%s", energyPerRoutineReport(prof, chip).c_str());
    for (const RoutineEnergy &e : energyPerRoutine(prof, chip))
        appendJsonLine("PROFILE_table2.json",
                       benchLine("table2_pointmult")
                           .str("workload", "glv_replay_energy")
                           .str("symbol", e.name)
                           .num("calls", e.calls)
                           .num("inclusive_cycles", e.inclusiveCycles)
                           .num("exclusive_cycles", e.exclusiveCycles)
                           .num("inclusive_uj", e.inclusiveUj)
                           .num("exclusive_uj", e.exclusiveUj));
    return 0;
}
