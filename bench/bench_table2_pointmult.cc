/**
 * @file
 * Reproduction of Table II: point-multiplication times on a standard
 * ATmega128 (JAAVR in CA mode) for all five curves, with both the
 * high-speed and the constant-execution-pattern method per curve.
 * The real algorithms run on the host golden model while every field
 * operation is charged its ISS-measured cycle cost.
 */

#include "bench/bench_util.hh"
#include "model/experiments.hh"

using namespace jaavr;
using namespace jaavr::bench;

namespace
{

struct Config
{
    CurveId curve;
    PmMethod method;
    double paper_kcycles;
};

const Config kHighSpeed[] = {
    {CurveId::Secp160r1, PmMethod::Naf, 7136},
    {CurveId::WeierstrassOpf, PmMethod::Naf, 6983},
    {CurveId::EdwardsOpf, PmMethod::Naf, 5597},
    {CurveId::MontgomeryOpf, PmMethod::XzLadder, 5545},
    {CurveId::GlvOpf, PmMethod::GlvJsf, 3930},
};

const Config kConstant[] = {
    {CurveId::Secp160r1, PmMethod::CozLadder, 8722},
    {CurveId::WeierstrassOpf, PmMethod::CozLadder, 8824},
    {CurveId::EdwardsOpf, PmMethod::Daaa, 8251},
    {CurveId::MontgomeryOpf, PmMethod::XzLadder, 5545},
    {CurveId::GlvOpf, PmMethod::CozLadder, 8132},
};

void
runSet(const char *title, const Config *configs, size_t n, Rng &rng)
{
    heading(title);
    double glv_cycles = 0, best = 1e18;
    for (size_t i = 0; i < n; i++) {
        const Config &cfg = configs[i];
        auto m = measurePointMultAvg(cfg.curve, cfg.method, CpuMode::CA,
                                     rng, 5);
        double kcyc = m.run.cycles / 1000.0;
        row(std::string(curveName(cfg.curve)) + " (" +
                methodName(cfg.method) + ")",
            cfg.paper_kcycles, kcyc, "kcyc");
        if (cfg.curve == CurveId::GlvOpf)
            glv_cycles = kcyc;
        best = std::min(best, kcyc);
    }
    if (glv_cycles > 0 && glv_cycles == best)
        note("shape check: GLV is the fastest high-speed curve (as in "
             "the paper)");
}

} // anonymous namespace

int
main()
{
    Rng rng(0x7ab2e2);
    runSet("Table II: high-speed point multiplication on ATmega128 "
           "[kCycles]", kHighSpeed, 5, rng);
    runSet("Table II: constant-pattern point multiplication [kCycles]",
           kConstant, 5, rng);

    heading("Section V-B relative slowdowns vs GLV (high-speed)");
    Rng rng2(0x7ab2e3);
    auto glv = measurePointMultAvg(CurveId::GlvOpf, PmMethod::GlvJsf,
                                   CpuMode::CA, rng2, 5);
    struct Rel { CurveId c; PmMethod m; double paper_pct; };
    Rel rels[] = {
        {CurveId::MontgomeryOpf, PmMethod::XzLadder, 41},
        {CurveId::EdwardsOpf, PmMethod::Naf, 42},
        {CurveId::WeierstrassOpf, PmMethod::Naf, 77},
        {CurveId::Secp160r1, PmMethod::Naf, 82},
    };
    for (const Rel &r : rels) {
        auto m = measurePointMultAvg(r.c, r.m, CpuMode::CA, rng2, 5);
        double pct =
            100.0 * (double(m.run.cycles) / glv.run.cycles - 1.0);
        row(std::string(curveName(r.c)) + " slower than GLV by",
            r.paper_pct, pct, "%");
    }
    return 0;
}
