/**
 * @file
 * Deterministic network chaos campaign (DESIGN.md, "Network
 * robustness layer"). A star of sensor nodes streams ECDSA-signed
 * telemetry to a gateway over LossyLinks while the campaign sweeps
 * impairment levels (drop/duplicate/reorder/bit-flip) and an active
 * adversary injects CRC-valid forged Data frames (live epoch, bogus
 * MAC) and forged high-epoch Hello frames onto every uplink.
 *
 * Everything runs in simulated time from fixed seeds, so a run is
 * byte-identical and the campaign can make hard assertions instead
 * of statistical ones:
 *
 *  - zero accepted forgeries: no payload the adversary injected may
 *    ever surface from a node's telemetry handler;
 *  - zero silent corruption: every accepted payload must be
 *    byte-identical to one a sensor queued (checked against a
 *    sender-side ledger). Duplicates are permitted only as the
 *    documented at-least-once window across re-keys;
 *  - zero silent loss: every queued payload is accepted at the
 *    gateway before the per-level simulated-time cap;
 *  - bounded degradation: the harshest level's goodput must stay
 *    within kMaxSlowdown of the clean level's.
 *
 * Results go to BENCH_network.json (rows pinned in
 * bench/baselines.json gate via jaavr-report) and a labeled metrics
 * snapshot to METRICS_network.json.
 *
 * Observability (src/obs/): every level runs with a span tracer and
 * flight recorder attached to all nodes. Telemetry trace IDs follow
 * each payload through session send/retransmit/ack in simulated
 * time; per-level span summaries (and the raw spans) land in
 * TRACE_network.json, the last level's spans in
 * TRACE_network_chrome.json. The adversary fires one volley of
 * back-to-back forged Data frames per level so the gateway's
 * forgery-rejection streak deterministically trips the re-key
 * ladder and dumps FLIGHT_network.json (byte-identical per seed —
 * all flight timestamps are simulated time).
 *
 * Flags: --smoke (CI-sized sweep), --seed <n>.
 */

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "curves/standard_curves.hh"
#include "net/testbed.hh"
#include "obs/flight.hh"
#include "obs/trace.hh"
#include "support/logging.hh"
#include "support/sha256.hh"

using namespace jaavr;
using namespace jaavr::bench;
using namespace jaavr::net;

namespace
{

constexpr const char *kJsonPath = "BENCH_network.json";
constexpr const char *kMetricsPath = "METRICS_network.json";
constexpr const char *kTracePath = "TRACE_network.json";
constexpr const char *kChromePath = "TRACE_network_chrome.json";
constexpr const char *kFlightPath = "FLIGHT_network.json";

/** Back-to-back forged Data frames per per-level volley: enough to
 *  trip the consecutive-reject re-key ladder even when the lossiest
 *  link eats half of them. */
constexpr int kForgedVolley = 6;

/** Worst-level goodput may not fall below clean/kMaxSlowdown. */
constexpr double kMaxSlowdown = 25.0;

struct LevelSpec
{
    const char *name;
    uint32_t dropPermil;
    uint32_t flipPermil;
    uint32_t dupPermil;
    uint32_t reorderPermil;
};

constexpr LevelSpec kLevels[] = {
    {"clean", 0, 0, 0, 0},
    {"mild", 100, 10, 50, 50},
    {"harsh", 250, 30, 100, 100},
    {"brutal", 350, 60, 150, 150},
};

struct LevelResult
{
    uint64_t queued = 0;
    uint64_t acceptedTotal = 0;
    uint64_t acceptedUnique = 0;
    uint64_t forgedInjected = 0;
    uint64_t forgedAccepted = 0;
    uint64_t corruptedAccepted = 0;
    uint64_t rekeys = 0;
    uint64_t quarantineEvents = 0;
    uint64_t handshakeFailures = 0;
    uint64_t sessionAuthRejects = 0;
    uint64_t retransmits = 0;
    uint64_t badFrames = 0;
    SimTime drainUs = 0;
    bool drained = false;

    // Trace/flight summary (deterministic: simulated time only).
    uint64_t telemetrySpans = 0;   ///< queue -> delivery-confirmed
    uint64_t sendAckSpans = 0;
    uint64_t retransmitSpans = 0;
    uint64_t rekeyEvents = 0;      ///< traced "rekey" instants
    uint64_t telemetryP99Us = 0;   ///< p99 telemetry span, sim µs
    uint64_t flightTriggers = 0;
    uint64_t flightEvents = 0;

    double
    goodputPerSec() const
    {
        return drainUs ? double(queued) * 1e6 / double(drainUs) : 0;
    }
};

/**
 * What a wire adversary can always produce: a CRC-valid frame, and
 * for handshake types the (public) unkeyed integrity tag. Mirrors
 * the format documented in net/node.cc.
 */
std::vector<uint8_t>
forgeFrame(const Frame &f, bool unkeyed_tag)
{
    Frame sealed = f;
    if (unkeyed_tag) {
        std::string msg("jaavr-net-unkeyed");
        msg.push_back(char(uint8_t(f.type)));
        for (uint32_t v : {f.session, f.seq, f.ack})
            for (int i = 0; i < 4; i++)
                msg.push_back(char(uint8_t(v >> (8 * i))));
        msg.append(reinterpret_cast<const char *>(f.payload.data()),
                   f.payload.size());
        auto digest = Sha256::digest(msg);
        sealed.payload.insert(sealed.payload.end(), digest.begin(),
                              digest.begin() + FrameAuth::kTagSize);
    } else {
        sealed.payload.insert(sealed.payload.end(),
                              FrameAuth::kTagSize, 0xee);
    }
    return encodeFrame(sealed);
}

/** One deterministic telemetry payload, unique per (sensor, seq). */
std::vector<uint8_t>
ledgerPayload(size_t sensor, uint32_t seq)
{
    std::vector<uint8_t> p;
    p.push_back(uint8_t(0x10 + sensor));
    for (int i = 0; i < 4; i++)
        p.push_back(uint8_t(seq >> (8 * i)));
    p.insert(p.end(), 16, 0x5a);
    return p;
}

LevelResult
runLevel(const LevelSpec &level, size_t sensors, uint32_t msgs,
         uint64_t seed, const WeierstrassCurve &curve,
         const Ecdsa &dsa)
{
    // Declared before the testbed so the nodes (which hold raw
    // pointers into both) are destroyed first. One fresh tracer and
    // recorder per level keeps the per-level summaries exact; the
    // recorder dumps every level to the same path, so the file holds
    // the last (harshest) level's postmortem.
    obs::SpanTracer tracer;
    tracer.setEnabled(true);
    obs::FlightRecorder flight;
    flight.setDumpPath(kFlightPath);

    Testbed tb(curve, dsa);

    NodeConfig gw;
    gw.name = "gw";
    gw.seed = seed * 1000 + 1;
    tb.addNode(gw);

    std::vector<std::string> names;
    for (size_t s = 0; s < sensors; s++) {
        NodeConfig nc;
        nc.name = "s" + std::to_string(s);
        nc.seed = seed * 1000 + 2 + s;
        names.push_back(nc.name);
        tb.addNode(nc);

        LinkConfig lc;
        lc.dropPermil = level.dropPermil;
        lc.flipPermil = level.flipPermil;
        lc.dupPermil = level.dupPermil;
        lc.reorderPermil = level.reorderPermil;
        lc.seed = seed * 100 + 7 * (s + 1);
        tb.connect(nc.name, "gw", lc);
    }

    tb.node("gw").setTracer(&tracer);
    tb.node("gw").setFlightRecorder(&flight);
    for (const std::string &n : names) {
        tb.node(n).setTracer(&tracer);
        tb.node(n).setFlightRecorder(&flight);
    }

    // Sender-side ledger: payload bytes -> times accepted at gw.
    std::map<std::vector<uint8_t>, uint64_t> ledger;
    LevelResult res;
    tb.node("gw").setTelemetryHandler(
        [&](const std::string &, const std::vector<uint8_t> &app,
            SimTime) {
            res.acceptedTotal++;
            auto it = ledger.find(app);
            if (it == ledger.end()) {
                if (!app.empty() && app[0] == 0xee)
                    res.forgedAccepted++;
                else
                    res.corruptedAccepted++;
                return;
            }
            if (it->second++ == 0)
                res.acceptedUnique++;
        });

    // Submission phase: one payload per sensor every 5 ms, one
    // forged Data frame per uplink every 25 ms, one forged Hello
    // every 100 ms. The adversary reads the victim's live epoch —
    // the strongest wire position short of holding the key.
    const SimTime kTick = 5'000;
    for (uint32_t i = 0; i < msgs; i++) {
        for (size_t s = 0; s < sensors; s++) {
            std::vector<uint8_t> p = ledgerPayload(s, i);
            if (tb.node(names[s]).sendTelemetry("gw", p, tb.now()))
                ledger.emplace(std::move(p), 0);
        }
        if (i % 5 == 4) {
            for (size_t s = 0; s < sensors; s++) {
                Frame forged;
                forged.type = FrameType::Data;
                forged.session = tb.node("gw").peerEpoch(names[s]);
                forged.seq = 50'000 + i;
                forged.payload.assign(24, 0xee);
                tb.edge(names[s], "gw")
                    .forward.transmit(forgeFrame(forged, false),
                                      tb.now());
                res.forgedInjected++;
            }
        }
        if (i % 20 == 19) {
            for (size_t s = 0; s < sensors; s++) {
                Frame hello;
                hello.type = FrameType::Hello;
                hello.session =
                    tb.node("gw").peerEpoch(names[s]) + 40;
                hello.payload.assign(84, 0xee);
                tb.edge(names[s], "gw")
                    .forward.transmit(forgeFrame(hello, true),
                                      tb.now());
                res.forgedInjected++;
            }
        }
        // Mid-campaign volley: back-to-back forged Data frames on one
        // uplink, so the gateway sees consecutive MAC rejects with no
        // genuine frame in between — the forgery-rejection streak
        // deterministically reaches the re-key threshold and fires
        // the flight recorder's "net_forgery_streak" dump.
        if (i == msgs / 2) {
            for (int v = 0; v < kForgedVolley; v++) {
                Frame forged;
                forged.type = FrameType::Data;
                forged.session = tb.node("gw").peerEpoch(names[0]);
                forged.seq = 60'000 + uint32_t(v);
                forged.payload.assign(24, 0xee);
                tb.edge(names[0], "gw")
                    .forward.transmit(forgeFrame(forged, false),
                                      tb.now());
                res.forgedInjected++;
            }
        }
        tb.run(tb.now() + kTick);
    }
    res.queued = ledger.size();

    // Drain phase: adversary quiet, impairments still on. Everything
    // queued must surface before the cap.
    const SimTime kDrainCap = tb.now() + 120'000'000;
    while (res.acceptedUnique < res.queued && tb.now() < kDrainCap)
        tb.run(tb.now() + 10'000);
    res.drained = res.acceptedUnique == res.queued;
    res.drainUs = tb.now();

    // Settle phase (after the goodput clock stops): the drain loop
    // ends at gateway *acceptance*, but a telemetry span closes on
    // the sender-side ack. Run on until every sensor's backlog has
    // cleared so each payload's delivery-confirmed span exists.
    const SimTime kSettleCap = tb.now() + 60'000'000;
    auto backlog = [&] {
        size_t b = 0;
        for (const std::string &n : names)
            b += tb.node(n).peerBacklog("gw");
        return b;
    };
    while (backlog() && tb.now() < kSettleCap)
        tb.run(tb.now() + 10'000);

    for (size_t s = 0; s < sensors; s++) {
        const NodeStats &ns = tb.node(names[s]).stats();
        res.rekeys += ns.rekeys;
        res.quarantineEvents += ns.quarantineEvents;
        res.handshakeFailures += ns.handshakeFailures;
        res.retransmits +=
            tb.node(names[s]).sessionStats("gw").retransmits;
        res.badFrames += tb.node(names[s]).sessionStats("gw").badFrames;
    }
    const NodeStats &gs = tb.node("gw").stats();
    res.rekeys += gs.rekeys;
    res.quarantineEvents += gs.quarantineEvents;
    res.handshakeFailures += gs.handshakeFailures;
    for (size_t s = 0; s < sensors; s++) {
        res.retransmits +=
            tb.node("gw").sessionStats(names[s]).retransmits;
        res.badFrames +=
            tb.node("gw").sessionStats(names[s]).badFrames;
        res.sessionAuthRejects +=
            tb.node("gw").sessionStats(names[s]).authRejected;
    }

    // Labeled metrics snapshot for monitor-style consumers.
    MetricsRegistry reg;
    tb.publishMetrics(reg);
    JsonLine stamp = benchLine("network_chaos");
    stamp.str("profile", level.name);
    reg.writeJsonLines(kMetricsPath, stamp);

    // Trace summary: spans by name across all node rings, plus the
    // p99 telemetry latency in simulated µs — deterministic per
    // seed, so the pinned ratio rows can use tight thresholds.
    tracer.setEnabled(false);
    std::vector<uint64_t> telemetryDurs;
    for (const auto &[source, recs] : tracer.snapshotAll()) {
        for (const obs::SpanRecord &sp : recs) {
            if (!std::strcmp(sp.name, "telemetry")) {
                res.telemetrySpans++;
                telemetryDurs.push_back(sp.durUs());
            } else if (!std::strcmp(sp.name, "send_ack")) {
                res.sendAckSpans++;
            } else if (!std::strcmp(sp.name, "retransmit")) {
                res.retransmitSpans++;
            } else if (!std::strcmp(sp.name, "rekey")) {
                res.rekeyEvents++;
            }
        }
    }
    if (!telemetryDurs.empty()) {
        std::sort(telemetryDurs.begin(), telemetryDurs.end());
        size_t idx = static_cast<size_t>(
            0.99 * double(telemetryDurs.size() - 1) + 0.5);
        res.telemetryP99Us = telemetryDurs[idx];
    }
    res.flightTriggers = flight.triggers();
    res.flightEvents = flight.totalRecorded();
    if (!tracer.exportJsonLines(kTracePath, stamp) ||
        !tracer.exportChromeTrace(kChromePath))
        fatal("cannot write the trace exports");
    return res;
}

void
emitLevel(const LevelSpec &level, const LevelResult &r, uint64_t seed)
{
    double deliveredRatio =
        r.queued ? double(r.acceptedUnique) / double(r.queued) : 0;
    double forgedRejectedRatio =
        r.forgedInjected
            ? double(r.forgedInjected - r.forgedAccepted) /
                  double(r.forgedInjected)
            : 1.0;
    JsonLine line = benchLine("network_chaos");
    line.str("profile", level.name)
        .num("seed", seed)
        .num("drop_permil", uint64_t(level.dropPermil))
        .num("flip_permil", uint64_t(level.flipPermil))
        .num("queued", r.queued)
        .num("accepted_total", r.acceptedTotal)
        .num("accepted_unique", r.acceptedUnique)
        .num("delivered_ratio", deliveredRatio)
        .num("forged_injected", r.forgedInjected)
        .num("forged_accepted", r.forgedAccepted)
        .num("forged_rejected_ratio", forgedRejectedRatio)
        .num("corrupted_accepted", r.corruptedAccepted)
        .num("rekeys", r.rekeys)
        .num("quarantine_events", r.quarantineEvents)
        .num("handshake_failures", r.handshakeFailures)
        .num("session_auth_rejects", r.sessionAuthRejects)
        .num("retransmits", r.retransmits)
        .num("bad_frames", r.badFrames)
        .num("drain_us", r.drainUs)
        .num("goodput_msgs_per_s", r.goodputPerSec());
    appendJsonLine(kJsonPath, line);

    // Per-level trace summary: every queued payload must have at
    // least one delivery-confirmed telemetry span (re-keys can add
    // re-sends, so the ratio may exceed 1, never undercut it).
    double tracedRatio =
        r.queued ? double(r.telemetrySpans) / double(r.queued) : 0;
    JsonLine trace = benchLine("network_chaos");
    trace.str("profile", level.name)
        .str("record", "trace_summary")
        .num("seed", seed)
        .num("telemetry_spans", r.telemetrySpans)
        .num("traced_telemetry_ratio", tracedRatio)
        .num("telemetry_p99_us", r.telemetryP99Us)
        .num("send_ack_spans", r.sendAckSpans)
        .num("retransmit_spans", r.retransmitSpans)
        .num("rekey_events", r.rekeyEvents)
        .num("flight_triggers", r.flightTriggers)
        .num("flight_events", r.flightEvents);
    appendJsonLine(kTracePath, trace);

    std::printf("  %-8s queued %4llu  accepted %4llu (+%llu dup)  "
                "forged %llu/%llu rej  rekeys %llu  quar %llu  "
                "retrans %llu  drain %.2fs  goodput %.1f msg/s\n",
                level.name, (unsigned long long)r.queued,
                (unsigned long long)r.acceptedUnique,
                (unsigned long long)(r.acceptedTotal -
                                     r.acceptedUnique -
                                     r.forgedAccepted -
                                     r.corruptedAccepted),
                (unsigned long long)(r.forgedInjected -
                                     r.forgedAccepted),
                (unsigned long long)r.forgedInjected,
                (unsigned long long)r.rekeys,
                (unsigned long long)r.quarantineEvents,
                (unsigned long long)r.retransmits,
                double(r.drainUs) / 1e6, r.goodputPerSec());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    uint64_t seed = 20260808;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
            seed = std::strtoull(argv[++i], nullptr, 0);
        else
            fatal("unknown argument: %s", argv[i]);
    }

    const size_t sensors = smoke ? 2 : 3;
    const uint32_t msgs = smoke ? 10 : 30;

    WeierstrassCurve curve = secp160r1Curve();
    CurveGenerator gen = secp160r1Generator();
    Ecdsa dsa(curve, gen.g, gen.order);

    heading("Network chaos campaign (secp160r1 sessions)");
    note(csprintf("seed %llu, %zu sensors x %u msgs per level%s",
                  (unsigned long long)seed, sensors, msgs,
                  smoke ? " (smoke)" : ""));

    size_t failures = 0;
    double cleanGoodput = 0, worstGoodput = 0;
    for (const LevelSpec &level : kLevels) {
        if (smoke && std::strcmp(level.name, "clean") != 0 &&
            std::strcmp(level.name, "harsh") != 0)
            continue;
        LevelResult r =
            runLevel(level, sensors, msgs, seed, curve, dsa);
        emitLevel(level, r, seed);
        if (std::strcmp(level.name, "clean") == 0)
            cleanGoodput = r.goodputPerSec();
        worstGoodput = r.goodputPerSec();

        if (r.forgedAccepted) {
            std::fprintf(stderr,
                         "FAIL %s: %llu forged payloads accepted\n",
                         level.name,
                         (unsigned long long)r.forgedAccepted);
            failures++;
        }
        if (r.corruptedAccepted) {
            std::fprintf(stderr,
                         "FAIL %s: %llu corrupted payloads "
                         "accepted\n",
                         level.name,
                         (unsigned long long)r.corruptedAccepted);
            failures++;
        }
        if (!r.drained) {
            std::fprintf(stderr,
                         "FAIL %s: only %llu/%llu payloads "
                         "delivered before the simulated cap\n",
                         level.name,
                         (unsigned long long)r.acceptedUnique,
                         (unsigned long long)r.queued);
            failures++;
        }
        if (r.flightTriggers == 0) {
            std::fprintf(stderr,
                         "FAIL %s: the forged volley never tripped "
                         "the flight recorder\n",
                         level.name);
            failures++;
        }
        if (r.queued && r.telemetrySpans < r.queued) {
            std::fprintf(stderr,
                         "FAIL %s: only %llu telemetry spans for "
                         "%llu queued payloads\n",
                         level.name,
                         (unsigned long long)r.telemetrySpans,
                         (unsigned long long)r.queued);
            failures++;
        }
    }

    // Bounded degradation: chaos may slow the star down, not stall
    // it. (The worst level runs last in both sweep sizes.)
    if (cleanGoodput > 0 &&
        worstGoodput * kMaxSlowdown < cleanGoodput) {
        std::fprintf(stderr,
                     "FAIL goodput degraded beyond bound: clean "
                     "%.1f msg/s, worst %.1f msg/s (> %.0fx)\n",
                     cleanGoodput, worstGoodput, kMaxSlowdown);
        failures++;
    }

    JsonLine meta = benchLine("network_chaos");
    meta.str("profile", "meta")
        .num("seed", seed)
        .str("mode", smoke ? "smoke" : "full")
        .num("failures", uint64_t(failures));
    appendJsonLine(kJsonPath, meta);
    note(std::string("JSON appended to ") + kJsonPath);
    note(std::string("metrics snapshot appended to ") + kMetricsPath);
    note(std::string("trace summaries + spans appended to ") +
         kTracePath);
    note(std::string("chrome trace -> ") + kChromePath);
    note(std::string("flight dump -> ") + kFlightPath);
    if (failures) {
        std::fprintf(stderr, "network chaos campaign: %zu invariant "
                             "violations\n",
                     failures);
        return 1;
    }
    note("all invariants held: zero forged accepted, zero "
         "corruption, zero loss");
    return 0;
}
