/**
 * @file
 * Fault-injection campaign over the hardened scalar-multiplication
 * stack (DESIGN.md, "Fault model & hardening"). Two sweeps:
 *
 *  Sweep A (ISS): an x-only Montgomery-ladder scalar multiplication
 *  over the paper's OPF curve runs step by step on the simulated
 *  AVR core (every field operation executes the generated assembly
 *  in ISE mode). Each trial arms one seeded FaultPlan — GPR / SREG /
 *  SRAM / MAC-accumulator bit flips, instruction skips, opcode
 *  corruption — at a random cycle inside the first ladder pass, then
 *  the detectors run: ISS traps, time redundancy (a second ladder
 *  pass; the injector is one-shot), and x-coordinate validation.
 *
 *  Sweep B (curve layer): data faults on the scalar/point images
 *  around the hardened multiplications of all four curve families
 *  (Weierstrass, GLV, twisted Edwards, Montgomery). Inputs are held
 *  as duplicated images; one bit of one image, of the working copy,
 *  or of the output is flipped, and the countermeasure chain
 *  (image compare, input validation + algorithm-diverse recompute
 *  inside hardenedMul*, output revalidation, cross-check against a
 *  recompute from the clean image) classifies the outcome.
 *
 * Every trial is classified as detected (by which detector),
 * corrected (fault fired but the result is still right), or silent
 * (all checks passed, result wrong — the metric this bench tracks).
 * Counts go to BENCH_fault.json as JSON lines.
 *
 * Flags: --smoke (CI-sized trial counts), --seed <n>.
 */

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "avr/fault.hh"
#include "avrgen/opf_harness.hh"
#include "bench/bench_util.hh"
#include "curves/small_curves.hh"
#include "curves/standard_curves.hh"
#include "curves/validate.hh"
#include "field/opf_field.hh"
#include "nt/opf_prime.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/random.hh"

using namespace jaavr;
using namespace jaavr::bench;

namespace
{

constexpr const char *kJsonPath = "BENCH_fault.json";
constexpr const char *kMetricsPath = "METRICS_fault.json";

/** Campaign-wide detector telemetry, snapshotted at exit. */
MetricsRegistry &
metrics()
{
    static MetricsRegistry reg;
    return reg;
}

// --- Outcome bookkeeping --------------------------------------------

enum class Outcome
{
    DetectedTrap,       ///< an ISS trap surfaced the fault
    DetectedRedundancy, ///< redundant recomputation mismatched
    DetectedValidation, ///< input/output validation rejected
    DetectedDuplication,///< duplicated input images disagreed
    DetectedCrossCheck, ///< cross-check vs clean-image recompute
    Corrected,          ///< fault fired, result still correct
    Silent,             ///< all checks passed, result wrong
};

struct Tally
{
    uint64_t trials = 0;
    uint64_t trap = 0, redundancy = 0, validation = 0;
    uint64_t duplication = 0, crosscheck = 0;
    uint64_t corrected = 0, silent = 0;

    void
    add(Outcome o)
    {
        trials++;
        switch (o) {
          case Outcome::DetectedTrap:        trap++; break;
          case Outcome::DetectedRedundancy:  redundancy++; break;
          case Outcome::DetectedValidation:  validation++; break;
          case Outcome::DetectedDuplication: duplication++; break;
          case Outcome::DetectedCrossCheck:  crosscheck++; break;
          case Outcome::Corrected:           corrected++; break;
          case Outcome::Silent:              silent++; break;
        }
    }

    uint64_t
    detected() const
    {
        return trap + redundancy + validation + duplication + crosscheck;
    }

    double
    silentRate() const
    {
        return trials ? double(silent) / double(trials) : 0.0;
    }
};

void
report(const std::string &sweep, const std::string &family,
       const std::string &plan, const Tally &t, uint64_t seed)
{
    std::printf("  %-10s %-16s %-16s trials %5llu  detected %5llu "
                "(trap %llu, redo %llu, valid %llu, dup %llu, cross "
                "%llu)  corrected %llu  silent %llu (%.2f%%)\n",
                sweep.c_str(), family.c_str(), plan.c_str(),
                (unsigned long long)t.trials,
                (unsigned long long)t.detected(),
                (unsigned long long)t.trap,
                (unsigned long long)t.redundancy,
                (unsigned long long)t.validation,
                (unsigned long long)t.duplication,
                (unsigned long long)t.crosscheck,
                (unsigned long long)t.corrected,
                (unsigned long long)t.silent, 100.0 * t.silentRate());
    // Detector telemetry: one labeled counter per outcome class, so
    // the snapshot mirrors the JSON tallies but in registry form.
    MetricLabels where = {{"sweep", sweep},
                          {"family", family},
                          {"plan", plan}};
    metrics().counter("fault_trials", where).inc(t.trials);
    const std::pair<const char *, uint64_t> dets[] = {
        {"trap", t.trap},           {"redundancy", t.redundancy},
        {"validation", t.validation}, {"duplication", t.duplication},
        {"crosscheck", t.crosscheck},
    };
    for (const auto &[det, n] : dets) {
        MetricLabels l = where;
        l.emplace_back("detector", det);
        metrics().counter("fault_detected", l).inc(n);
    }
    metrics().counter("fault_corrected", where).inc(t.corrected);
    metrics().counter("fault_silent", where).inc(t.silent);

    JsonLine line = benchLine("fault_campaign");
    line.str("sweep", sweep)
        .str("family", family)
        .str("plan", plan)
        .num("seed", seed)
        .num("trials", t.trials)
        .num("detected", t.detected())
        .num("detected_trap", t.trap)
        .num("detected_redundancy", t.redundancy)
        .num("detected_validation", t.validation)
        .num("detected_duplication", t.duplication)
        .num("detected_crosscheck", t.crosscheck)
        .num("corrected", t.corrected)
        .num("silent", t.silent)
        .num("silent_rate", t.silentRate());
    appendJsonLine(kJsonPath, line);
}

// --- Sweep A: ISS ladder --------------------------------------------

/** Result of one ISS ladder pass. */
struct IssPass
{
    Trap trap;          ///< first trap raised by any field routine
    bool infinity = false;
    BigUInt x;          ///< canonical affine x when finite and clean
};

/**
 * One x-only Montgomery-ladder pass for @p k (kbits bits, MSB first)
 * on x1, with every field operation executed by @p lib on the ISS.
 * Montgomery-domain RFC-7748-shaped ladder step; the conditional
 * swaps are host-side data movement (register renaming on a real
 * implementation), the arithmetic is all simulated.
 */
IssPass
issLadderPass(OpfAvrLibrary &lib, const OpfField &fm,
              const MontgomeryCurve &mc, uint32_t k, unsigned kbits,
              const BigUInt &x1)
{
    using W = OpfField::Words;
    IssPass out;
    Trap trap;
    auto mul = [&](const W &a, const W &b) -> W {
        OpfRun r = lib.mul(a, b);
        if (r.trap && !trap)
            trap = r.trap;
        return r.result;
    };
    auto add = [&](const W &a, const W &b) -> W {
        OpfRun r = lib.add(a, b);
        if (r.trap && !trap)
            trap = r.trap;
        return r.result;
    };
    auto sub = [&](const W &a, const W &b) -> W {
        OpfRun r = lib.sub(a, b);
        if (r.trap && !trap)
            trap = r.trap;
        return r.result;
    };

    W x1m = fm.toMont(x1);
    W a24m = fm.toMont(BigUInt(mc.a24()));
    W one = fm.toMont(BigUInt(1));
    W zero(fm.words(), 0);
    W x2 = one, z2 = zero, x3 = x1m, z3 = one;

    unsigned swap = 0;
    for (int i = int(kbits) - 1; i >= 0 && !trap; i--) {
        unsigned bit = (k >> i) & 1;
        swap ^= bit;
        if (swap) {
            std::swap(x2, x3);
            std::swap(z2, z3);
        }
        swap = bit;

        W a = add(x2, z2);
        W aa = mul(a, a);
        W b = sub(x2, z2);
        W bb = mul(b, b);
        W e = sub(aa, bb);
        W c = add(x3, z3);
        W d = sub(x3, z3);
        W da = mul(d, a);
        W cb = mul(c, b);
        W t0 = add(da, cb);
        x3 = mul(t0, t0);
        W t1 = sub(da, cb);
        W t2 = mul(t1, t1);
        z3 = mul(x1m, t2);
        x2 = mul(aa, bb);
        W t3 = mul(a24m, e);
        W t4 = add(bb, t3);
        z2 = mul(e, t4);
    }
    if (!trap && swap) {
        std::swap(x2, x3);
        std::swap(z2, z3);
    }
    if (trap) {
        out.trap = trap;
        return out;
    }

    BigUInt zc = fm.canonical(z2);
    if (zc.isZero()) {
        out.infinity = true;
        return out;
    }
    // inv(Z R) = Z^-1; montMul(X R, Z^-1) = X/Z in plain domain.
    OpfRun ir = lib.inv(fm.fromBig(zc));
    if (ir.trap) {
        out.trap = ir.trap;
        return out;
    }
    OpfRun xr = lib.mul(x2, ir.result);
    if (xr.trap) {
        out.trap = xr.trap;
        return out;
    }
    out.x = fm.canonical(xr.result);
    return out;
}

/** Seeded random fault plan for sweep A. */
FaultPlan
randomPlan(Rng &rng, uint64_t window_cycles)
{
    static const FaultTarget kTargets[] = {
        FaultTarget::Gpr,    FaultTarget::Sreg,
        FaultTarget::Sram,   FaultTarget::MacAcc,
        FaultTarget::InstSkip, FaultTarget::OpcodeCorrupt,
    };
    FaultPlan plan;
    plan.target = kTargets[rng.below(6)];
    plan.triggerCycle = rng.below(window_cycles);
    plan.reg = static_cast<uint8_t>(plan.target == FaultTarget::MacAcc
                                        ? rng.below(9)
                                        : rng.below(32));
    // The OPF working set: q buffer, result, operands, inverse state.
    plan.sramAddr =
        static_cast<uint16_t>(0x01c0 + rng.below(0x0140));
    if (plan.target == FaultTarget::OpcodeCorrupt) {
        plan.mask = static_cast<uint16_t>(1u << rng.below(16));
        if (rng.below(2))
            plan.mask |= static_cast<uint16_t>(1u << rng.below(16));
    } else {
        plan.mask = static_cast<uint16_t>(1u << rng.below(8));
        if (rng.below(2))
            plan.mask |= static_cast<uint16_t>(1u << rng.below(8));
    }
    return plan;
}

void
sweepIss(unsigned trials, uint64_t seed)
{
    heading("Sweep A: ISS Montgomery-ladder scalar-mult injections");

    OpfPrime prime = paperOpfPrime();
    OpfField fm(prime);
    OpfAvrLibrary lib(prime, CpuMode::ISE);
    const MontgomeryCurve &mc = montgomeryOpfCurve();
    const BigUInt x1 = montgomeryOpfBasePoint().x;
    constexpr unsigned kBits = 16;

    Rng rng(seed);

    // Correctness gate + fault window: one clean pass must match the
    // host ladder, and its cycle span bounds the trigger offsets.
    uint32_t k0 = 1 + static_cast<uint32_t>(rng.below((1u << kBits) - 1));
    uint64_t c0 = lib.machine().stats().cycles;
    IssPass gate = issLadderPass(lib, fm, mc, k0, kBits, x1);
    uint64_t window = lib.machine().stats().cycles - c0;
    auto host = mc.ladder(BigUInt(k0), x1);
    if (gate.trap || gate.infinity || !host || gate.x != *host)
        panic("fault campaign: clean ISS ladder disagrees with host");
    note(csprintf("clean ladder pass: %llu cycles, %u-bit scalar",
                  (unsigned long long)window, kBits));

    FaultInjector inj;
    lib.machine().setFaultInjector(&inj);

    Tally per_target[6];
    Tally all;
    unsigned not_fired = 0;
    for (unsigned t = 0; t < trials; t++) {
        uint32_t k =
            1 + static_cast<uint32_t>(rng.below((1u << kBits) - 1));
        auto host_x = mc.ladder(BigUInt(k), x1);

        FaultPlan plan = randomPlan(rng, window);
        lib.machine().reset();
        inj.arm(plan, lib.machine().stats().cycles);

        IssPass first = issLadderPass(lib, fm, mc, k, kBits, x1);
        bool fired = inj.fired();
        // Time redundancy: the injector is one-shot, so the second
        // pass is clean — unless the plan corrupted flash, which is
        // a persistent fault by design.
        IssPass second = issLadderPass(lib, fm, mc, k, kBits, x1);

        Outcome o;
        if (first.trap || second.trap) {
            o = Outcome::DetectedTrap;
        } else if (first.infinity != second.infinity ||
                   (!first.infinity && first.x != second.x)) {
            o = Outcome::DetectedRedundancy;
        } else if (first.infinity ? host_x.has_value()
                                  : !validateX(mc, first.x)) {
            o = Outcome::DetectedValidation;
        } else if (!first.infinity && host_x && first.x == *host_x) {
            o = Outcome::Corrected;
        } else {
            o = Outcome::Silent;
        }

        if (plan.target == FaultTarget::OpcodeCorrupt)
            inj.revertFlash(lib.machine());
        if (!fired) {
            inj.disarm();
            not_fired++;
            continue;
        }
        per_target[static_cast<unsigned>(plan.target)].add(o);
        all.add(o);
    }
    lib.machine().setFaultInjector(nullptr);

    for (unsigned i = 0; i < 6; i++)
        report("iss", "montgomery-opf160",
               faultTargetName(static_cast<FaultTarget>(i)),
               per_target[i], seed);
    report("iss", "montgomery-opf160", "all", all, seed);
    if (not_fired)
        note(csprintf("%u plans did not fire (trap cut the pass "
                      "short before the trigger); excluded",
                      not_fired));
}

// --- Sweep B: curve-layer image faults ------------------------------

BigUInt
flipBit(const BigUInt &v, unsigned i)
{
    return v.bit(i) ? v - BigUInt::powerOfTwo(i)
                    : v + BigUInt::powerOfTwo(i);
}

bool
samePoint(const AffinePoint &a, const AffinePoint &b)
{
    if (a.inf != b.inf)
        return false;
    return a.inf || (a.x == b.x && a.y == b.y);
}

/** Duplicated input images of one scalar multiplication. */
struct Images
{
    BigUInt k;
    AffinePoint p;
};

/**
 * Sweep-B driver for the full-point families. @p hardened runs the
 * hardened multiplication, @p plain the cross-check/golden
 * recompute, @p revalidate the consumer-side output check.
 */
template <typename HardenedFn, typename PlainFn, typename RevalFn>
Tally
sweepCurveFamily(unsigned trials, Rng &rng,
                 const BigUInt &n, const AffinePoint &base,
                 unsigned coord_bits, HardenedFn hardened, PlainFn plain,
                 RevalFn revalidate)
{
    Tally tally;
    for (unsigned t = 0; t < trials; t++) {
        BigUInt k = BigUInt(1) + BigUInt::random(rng, n - BigUInt(1));
        AffinePoint golden = plain(k, base);

        Images img_a{k, base}, img_b{k, base};
        unsigned site = static_cast<unsigned>(rng.below(8));
        unsigned kbit = static_cast<unsigned>(rng.below(n.bitLength()));
        unsigned cbit = static_cast<unsigned>(rng.below(coord_bits));

        Images work = img_a;
        AffinePoint out;
        bool flip_out_x = site == 6, flip_out_y = site == 7;
        switch (site) {
          case 0: img_a.k = flipBit(img_a.k, kbit); break;
          case 1: img_a.p.x = flipBit(img_a.p.x, cbit); break;
          case 2: img_a.p.y = flipBit(img_a.p.y, cbit); break;
          case 3: work.k = flipBit(work.k, kbit); break;
          case 4: work.p.x = flipBit(work.p.x, cbit); break;
          case 5: work.p.y = flipBit(work.p.y, cbit); break;
          default: break; // output sites, applied after the multiply
        }

        // Detector chain, in system order: a corrupted image never
        // reaches the multiply, so sites 0-2 classify here.
        if (img_a.k != img_b.k || !samePoint(img_a.p, img_b.p)) {
            tally.add(Outcome::DetectedDuplication);
            continue;
        }

        HardenedMul hm = hardened(work.k, work.p);
        if (!hm.ok) {
            tally.add(Outcome::DetectedValidation);
            continue;
        }
        out = hm.point;
        if (flip_out_x)
            out.x = flipBit(out.x, cbit);
        if (flip_out_y)
            out.y = flipBit(out.y, cbit);

        if (!revalidate(out)) {
            tally.add(Outcome::DetectedValidation);
            continue;
        }
        AffinePoint cross = plain(img_b.k, img_b.p);
        if (!samePoint(out, cross)) {
            tally.add(Outcome::DetectedCrossCheck);
            continue;
        }
        tally.add(samePoint(out, golden) ? Outcome::Corrected
                                         : Outcome::Silent);
    }
    return tally;
}

Tally
sweepMontgomeryFamily(unsigned trials, Rng &rng)
{
    const SmallCurvePair &pair = smallCurvePair();
    const MontgomeryCurve &c = pair.montgomery;
    unsigned bits = c.field().modulus().bitLength();
    Tally tally;
    for (unsigned t = 0; t < trials; t++) {
        BigUInt k =
            BigUInt(1) + BigUInt::random(rng, pair.n - BigUInt(1));
        auto golden = c.ladder(k, pair.montBase.x);

        BigUInt ka = k, kb = k, xa = pair.montBase.x,
                xb = pair.montBase.x;
        unsigned site = static_cast<unsigned>(rng.below(5));
        unsigned kbit =
            static_cast<unsigned>(rng.below(pair.n.bitLength()));
        unsigned cbit = static_cast<unsigned>(rng.below(bits));
        BigUInt wk = k, wx = pair.montBase.x;
        switch (site) {
          case 0: ka = flipBit(ka, kbit); break;
          case 1: xa = flipBit(xa, cbit); break;
          case 2: wk = flipBit(wk, kbit); break;
          case 3: wx = flipBit(wx, cbit); break;
          default: break; // output site
        }

        if (ka != kb || xa != xb) {
            tally.add(Outcome::DetectedDuplication);
            continue;
        }
        HardenedMul hm = hardenedMulMontgomery(c, wk, wx, pair.n);
        if (!hm.ok) {
            tally.add(Outcome::DetectedValidation);
            continue;
        }
        BigUInt out = *hm.x;
        if (site == 4)
            out = flipBit(out, cbit);

        if (!validateX(c, out)) {
            tally.add(Outcome::DetectedValidation);
            continue;
        }
        auto cross = c.ladder(kb, xb);
        if (!cross || out != *cross) {
            tally.add(Outcome::DetectedCrossCheck);
            continue;
        }
        tally.add(golden && out == *golden ? Outcome::Corrected
                                           : Outcome::Silent);
    }
    return tally;
}

void
sweepCurves(unsigned trials, uint64_t seed)
{
    heading("Sweep B: curve-layer data faults on hardened multiplies");

    Rng rng(seed ^ 0xb5eed);
    {
        const WeierstrassCurve &c = secp160r1Curve();
        const CurveGenerator &gen = secp160r1Generator();
        Tally t = sweepCurveFamily(
            trials, rng, gen.order, gen.g,
            c.field().modulus().bitLength(),
            [&](const BigUInt &k, const AffinePoint &p) {
                return hardenedMulWeierstrass(c, k, p, gen.order);
            },
            [&](const BigUInt &k, const AffinePoint &p) {
                return c.mulNaf(k, p);
            },
            [&](const AffinePoint &q) { return validatePoint(c, q); });
        report("curve", "weierstrass-secp160r1", "image_flip", t, seed);
    }
    {
        const GlvCurve &c = secp160k1Curve();
        Tally t = sweepCurveFamily(
            trials, rng, c.order(), c.generator(),
            c.field().modulus().bitLength(),
            [&](const BigUInt &k, const AffinePoint &p) {
                return hardenedMulGlv(c, k, p);
            },
            [&](const BigUInt &k, const AffinePoint &p) {
                return c.mulGlvJsf(k, p);
            },
            [&](const AffinePoint &q) { return validatePoint(c, q); });
        report("curve", "glv-secp160k1", "image_flip", t, seed);
    }
    {
        const SmallCurvePair &pair = smallCurvePair();
        const EdwardsCurve &c = pair.edwards;
        Tally t = sweepCurveFamily(
            trials, rng, pair.n, pair.edBase,
            c.field().modulus().bitLength(),
            [&](const BigUInt &k, const AffinePoint &p) {
                return hardenedMulEdwards(c, k, p, pair.n);
            },
            [&](const BigUInt &k, const AffinePoint &p) {
                return c.mulNaf(k, p);
            },
            [&](const AffinePoint &q) { return validatePoint(c, q); });
        report("curve", "edwards-small", "image_flip", t, seed);
    }
    {
        Tally t = sweepMontgomeryFamily(trials, rng);
        report("curve", "montgomery-small", "image_flip", t, seed);
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    uint64_t seed = 20260806;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
            seed = std::strtoull(argv[++i], nullptr, 0);
        else
            fatal("unknown argument: %s", argv[i]);
    }

    unsigned trials_a = smoke ? 30 : 1000;
    unsigned trials_b = smoke ? 40 : 1000;

    heading("Fault-injection campaign");
    note(csprintf("seed %llu, %u ISS trials, %u trials per curve "
                  "family%s",
                  (unsigned long long)seed, trials_a, trials_b,
                  smoke ? " (smoke)" : ""));

    sweepIss(trials_a, seed);
    sweepCurves(trials_b, seed);

    JsonLine meta = benchLine("fault_campaign");
    meta.str("sweep", "meta")
        .num("seed", seed)
        .num("aborts", uint64_t(0))
        .str("mode", smoke ? "smoke" : "full");
    appendJsonLine(kJsonPath, meta);
    metrics().writeJsonLines(kMetricsPath, benchLine("fault_campaign"));
    note(std::string("JSON appended to ") + kJsonPath);
    note(std::string("metrics snapshot appended to ") + kMetricsPath);
    return 0;
}
