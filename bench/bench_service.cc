/**
 * @file
 * Load benchmark for the ECC service (DESIGN.md §14): a seeded load
 * generator drives EccService through two sweeps and verifies every
 * single result against the single-call host golden model (the bench
 * exits nonzero on any mismatch, so its rows can be trusted).
 *
 *  1. Batch sweep: a fixed ECDSA-sign workload runs through the
 *     unamortized configuration (amortize = off — the pre-existing
 *     single-call library path, i.e. the batch-size-1 configuration)
 *     and the amortized one at several micro-batch limits. Reports
 *     ops/s per configuration plus the headline
 *     batched_speedup_vs_batch1 ratio the regression gate pins
 *     (acceptance: >= 2x).
 *
 *  2. Offered-load sweep: submitter threads pace mixed sign/derive
 *     traffic at a fraction of the measured capacity into a running
 *     multi-worker service; reports achieved ops/s and the p50/p99
 *     submit-to-completion latency from the service histograms
 *     (Histogram::percentile).
 *
 * Rows go to BENCH_service.json (pinned rows gate via jaavr-report
 * against bench/baselines.json); the final sweep's labeled metrics
 * snapshot — queue depths, batch occupancy, per-worker op counters —
 * goes to METRICS_service.json.
 *
 * Observability (src/obs/): the batch sweep runs with a span tracer
 * attached but idle — so the gated ops/s rows double as the
 * "tracing compiled in but off is free" check — and the paced load
 * levels run with it enabled. The recorded spans land in
 * TRACE_service.json (JSON lines: raw spans plus the per-stage
 * latency-attribution rows the gate pins) and
 * TRACE_service_chrome.json (chrome://tracing / Perfetto). A
 * deterministic flight-recorder drill (single corrupted Verify, one
 * worker) dumps FLIGHT_service.json byte-identically per seed.
 *
 * Flags: --smoke (CI-sized sweep), --seed <n>.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "curves/standard_curves.hh"
#include "obs/flight.hh"
#include "obs/trace.hh"
#include "service/service.hh"
#include "support/logging.hh"

using namespace jaavr;
using namespace jaavr::bench;

namespace
{

constexpr const char *kJsonPath = "BENCH_service.json";
constexpr const char *kMetricsPath = "METRICS_service.json";
constexpr const char *kTracePath = "TRACE_service.json";
constexpr const char *kChromePath = "TRACE_service_chrome.json";
constexpr const char *kFlightPath = "FLIGHT_service.json";

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "MISMATCH: %s\n", what);
        failures++;
    }
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/** The sign workload both sweeps replay: deterministic (d, k, msg)
 *  tuples on secp160r1, with the golden signature precomputed. */
struct SignCase
{
    std::string msg;
    BigUInt d;
    BigUInt k;
    EcdsaSignature expect;
};

std::vector<SignCase>
makeSignCases(size_t count, uint64_t seed)
{
    Ecdsa golden(secp160r1Curve(), secp160r1Generator().g,
                 secp160r1Generator().order);
    const BigUInt &n = golden.order();
    Rng rng(seed);
    std::vector<SignCase> cases;
    cases.reserve(count);
    for (size_t i = 0; i < count; i++) {
        SignCase c;
        c.msg = "load " + std::to_string(i);
        c.d = BigUInt(1) + BigUInt::random(rng, n - BigUInt(1));
        c.k = BigUInt(1) + BigUInt::random(rng, n - BigUInt(1));
        auto sig = golden.signWithNonce(c.msg, c.d, c.k);
        if (!sig)
            fatal("degenerate nonce in the seeded workload");
        c.expect = *sig;
        cases.push_back(std::move(c));
    }
    return cases;
}

struct SweepResult
{
    double opsPerSec = 0;
    double p50Us = 0;
    double p99Us = 0;
};

/**
 * Run @p cases through a 1-worker service (so batch occupancy is the
 * drain limit, not scheduling luck), verifying every signature.
 */
SweepResult
runBatchConfig(const std::vector<SignCase> &cases, bool amortize,
               size_t batch_max, uint64_t seed,
               jaavr::obs::SpanTracer *tracer)
{
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.queueCapacity = cases.size() * 2;
    cfg.batchMax = batch_max;
    cfg.amortize = amortize;
    cfg.rngSeed = seed;
    EccService svc(cfg);
    svc.setTracer(tracer);

    std::vector<ServiceRequest> reqs(cases.size());
    for (size_t i = 0; i < cases.size(); i++) {
        reqs[i].op = ServiceOp::Sign;
        reqs[i].curve = ServiceCurve::Secp160r1;
        reqs[i].message = cases[i].msg;
        reqs[i].privateKey = cases[i].d;
        reqs[i].nonce = cases[i].k;
        if (!svc.trySubmit(&reqs[i]))
            fatal("queue rejected a pre-start submission");
    }

    auto t0 = std::chrono::steady_clock::now();
    svc.start();
    for (auto &r : reqs)
        EccService::wait(r);
    double secs = secondsSince(t0);
    svc.stop();

    for (size_t i = 0; i < cases.size(); i++) {
        check(reqs[i].status == ServiceStatus::Ok, "sign status");
        check(reqs[i].sigOut.r == cases[i].expect.r &&
                  reqs[i].sigOut.s == cases[i].expect.s,
              "batched signature differs from the golden model");
    }

    SweepResult res;
    res.opsPerSec = double(cases.size()) / secs;
    res.p50Us = svc.latencyPercentileUs(50);
    res.p99Us = svc.latencyPercentileUs(99);
    return res;
}

/**
 * Offered-load level: submitters pace requests at @p offered ops/s
 * total into a running service; returns the achieved rate and the
 * latency percentiles. Also verifies everything.
 */
SweepResult
runLoadLevel(const std::vector<SignCase> &cases, unsigned workers,
             double offered, uint64_t seed,
             MetricsRegistry *final_metrics,
             jaavr::obs::SpanTracer *tracer)
{
    ServiceConfig cfg;
    cfg.workers = workers;
    cfg.queueCapacity = 1024;
    cfg.batchMax = 16;
    cfg.amortize = true;
    cfg.rngSeed = seed;
    EccService svc(cfg);
    svc.setTracer(tracer);
    svc.start();

    const AffinePoint peer =
        secp160r1Curve().mulNaf(BigUInt(20220408), secp160r1Generator().g);

    constexpr unsigned kSubmitters = 2;
    std::vector<ServiceRequest> reqs(cases.size());
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> submitters;
    for (unsigned s = 0; s < kSubmitters; s++)
        submitters.emplace_back([&, s] {
            // Open-loop pacing: request i of this submitter is due at
            // i * (kSubmitters / offered) seconds.
            double interval = double(kSubmitters) / offered;
            size_t local = 0;
            for (size_t i = s; i < cases.size(); i += kSubmitters) {
                double due = double(local++) * interval;
                while (secondsSince(t0) < due)
                    std::this_thread::yield();
                ServiceRequest &r = reqs[i];
                if (i % 4 == 3) {
                    r.op = ServiceOp::Derive;
                    r.curve = ServiceCurve::Secp160r1;
                    r.privateKey = cases[i].d;
                    r.peer = peer;
                } else {
                    r.op = ServiceOp::Sign;
                    r.curve = ServiceCurve::Secp160r1;
                    r.message = cases[i].msg;
                    r.privateKey = cases[i].d;
                    r.nonce = cases[i].k;
                }
                if (!svc.submit(&r))
                    fatal("service stopped during the load run");
            }
        });
    for (auto &t : submitters)
        t.join();
    for (auto &r : reqs)
        EccService::wait(r);
    double secs = secondsSince(t0);
    svc.stop();

    const WeierstrassCurve &c = secp160r1Curve();
    for (size_t i = 0; i < cases.size(); i++) {
        check(reqs[i].status == ServiceStatus::Ok, "load-run status");
        if (reqs[i].op == ServiceOp::Sign) {
            check(reqs[i].sigOut.r == cases[i].expect.r &&
                      reqs[i].sigOut.s == cases[i].expect.s,
                  "load-run signature differs from the golden model");
        } else {
            AffinePoint expect = c.mulNaf(cases[i].d, peer);
            check(reqs[i].pointOut.x == expect.x &&
                      reqs[i].pointOut.y == expect.y,
                  "load-run derive differs from the golden model");
        }
    }

    if (final_metrics)
        svc.publishMetrics(*final_metrics);

    SweepResult res;
    res.opsPerSec = double(cases.size()) / secs;
    res.p50Us = svc.latencyPercentileUs(50);
    res.p99Us = svc.latencyPercentileUs(99);
    return res;
}

/** One request's stage decomposition, read back from its span. */
struct StageSample
{
    uint64_t e2e = 0;      ///< submit -> completion
    uint64_t queue = 0;    ///< enqueue -> worker pop
    uint64_t drainWait = 0;///< pop -> batch drain begin
    uint64_t compute = 0;  ///< drain begin -> completion
};

/** Nearest-rank percentile (copy; empty -> 0). */
uint64_t
pctOf(std::vector<uint64_t> v, double p)
{
    if (v.empty())
        return 0;
    std::sort(v.begin(), v.end());
    size_t idx = static_cast<size_t>(std::ceil(p / 100.0 * v.size()));
    return v[std::min(idx ? idx - 1 : 0, v.size() - 1)];
}

/**
 * Read every per-request span out of the tracer (quiesced: all
 * traced services are stopped) and emit the latency-attribution
 * rows: independent p50/p99 per stage, plus the tiling check — the
 * p99-rank request's stages sum to its end-to-end latency exactly,
 * so p99_stage_sum_ratio is pinned at 1.0 in bench/baselines.json
 * and any stamping drift trips the gate.
 */
void
emitAttribution(const obs::SpanTracer &tracer)
{
    std::vector<StageSample> samples;
    for (const auto &[source, recs] : tracer.snapshotAll()) {
        for (const obs::SpanRecord &r : recs) {
            if (std::strcmp(r.cat, "service") != 0 ||
                std::strcmp(r.name, "drain") == 0 || !r.arg0Name ||
                std::strcmp(r.arg0Name, "queue_wait_us") != 0)
                continue;
            StageSample s;
            s.e2e = r.durUs();
            s.queue = r.arg0;
            s.drainWait = r.arg1;
            s.compute = s.e2e - std::min(s.e2e, s.queue + s.drainWait);
            samples.push_back(s);
        }
    }
    if (samples.empty()) {
        note("no request spans recorded; attribution rows skipped");
        return;
    }

    std::sort(samples.begin(), samples.end(),
              [](const StageSample &a, const StageSample &b) {
                  return a.e2e < b.e2e;
              });
    size_t idx99 = static_cast<size_t>(
        std::ceil(0.99 * double(samples.size())));
    const StageSample &at99 =
        samples[std::min(idx99 ? idx99 - 1 : 0, samples.size() - 1)];
    double e2e99 = double(at99.e2e);
    double sum99 = double(at99.queue + at99.drainWait + at99.compute);
    double ratio = e2e99 > 0 ? sum99 / e2e99 : 1.0;

    std::vector<uint64_t> qs, ds, cs;
    for (const StageSample &s : samples) {
        qs.push_back(s.queue);
        ds.push_back(s.drainWait);
        cs.push_back(s.compute);
    }

    struct StageRow
    {
        const char *stage;
        const std::vector<uint64_t> *vals;
        uint64_t at99;
    };
    const StageRow rows[] = {
        {"queue_wait", &qs, at99.queue},
        {"drain_wait", &ds, at99.drainWait},
        {"compute", &cs, at99.compute},
    };
    separator();
    note("p99 latency attribution (paced levels, traced)");
    for (const StageRow &row : rows) {
        double share = e2e99 > 0 ? double(row.at99) / e2e99 * 100 : 0;
        JsonLine line = benchLine("service");
        line.str("workload", "mixed_load")
            .str("config", "paced_trace")
            .str("stage", row.stage)
            .num("p50_us", double(pctOf(*row.vals, 50)))
            .num("p99_us", double(pctOf(*row.vals, 99)))
            .num("p99_share_pct", share);
        appendJsonLine(kTracePath, line);
        char label[64];
        std::snprintf(label, sizeof label, "  %s share at p99",
                      row.stage);
        rowMeasured(label, share, "%");
    }
    JsonLine total = benchLine("service");
    total.str("workload", "mixed_load")
        .str("config", "paced_trace")
        .str("stage", "total")
        .num("p99_e2e_us", e2e99)
        .num("p99_stage_sum_ratio", ratio)
        .num("spans", uint64_t(samples.size()))
        .num("dropped", tracer.totalDropped());
    appendJsonLine(kTracePath, total);
    rowMeasured("  p99 stage-sum / end-to-end", ratio, "x");
}

/**
 * Deterministic flight-recorder drill: one worker, one Verify whose
 * message was tampered after signing. The verify mismatch fires the
 * "service_verify_mismatch" trigger and dumps FLIGHT_service.json;
 * with per-worker op ordinals as the only timestamps the dump is
 * byte-identical per seed.
 */
void
runFlightDrill(const SignCase &c, uint64_t seed)
{
    obs::FlightRecorder flight;
    flight.setDumpPath(kFlightPath);

    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.queueCapacity = 4;
    cfg.amortize = false;
    cfg.rngSeed = seed;
    EccService svc(cfg);
    svc.setFlightRecorder(&flight);

    ServiceRequest r;
    r.op = ServiceOp::Verify;
    r.curve = ServiceCurve::Secp160r1;
    r.message = c.msg + " tampered";
    r.signature = c.expect;
    r.peer = secp160r1Curve().mulNaf(c.d, secp160r1Generator().g);
    if (!svc.trySubmit(&r))
        fatal("flight drill submission refused");
    svc.start();
    EccService::wait(r);
    svc.stop();

    check(r.status == ServiceStatus::Ok && !r.verifyOk,
          "flight drill verify unexpectedly accepted");
    check(flight.triggers() == 1,
          "verify mismatch did not fire the flight trigger");
    note(std::string("flight drill dump -> ") + kFlightPath);
}

void
emitRow(const char *workload, const char *config, double batch_max,
        const SweepResult &r, double offered = 0)
{
    JsonLine line = benchLine("service");
    line.str("workload", workload).str("config", config);
    if (batch_max > 0)
        line.num("batch_max", batch_max);
    if (offered > 0)
        line.num("offered_ops_per_s", offered);
    line.num("ops_per_s", r.opsPerSec)
        .num("p50_us", r.p50Us)
        .num("p99_us", r.p99Us);
    appendJsonLine(kJsonPath, line);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    uint64_t seed = 1;
    for (int i = 1; i < argc; i++) {
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;
        else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc)
            seed = std::strtoull(argv[++i], nullptr, 0);
    }

    const size_t batch_ops = smoke ? 48 : 256;
    const size_t load_ops = smoke ? 48 : 240;
    const unsigned load_workers = 2;

    // Attached for the whole run, enabled only for the paced levels:
    // the gated batch-sweep rows therefore measure the idle-tracer
    // cost (contract: none).
    obs::SpanTracer tracer;

    heading("ECC service: batch amortization sweep (ECDSA sign, "
            "secp160r1, 1 worker)");
    std::vector<SignCase> cases = makeSignCases(batch_ops, seed);

    SweepResult batch1 = runBatchConfig(cases, false, 16, seed, &tracer);
    rowMeasured("unamortized (single-call path)", batch1.opsPerSec,
                "ops/s");
    emitRow("sign_secp160r1", "unamortized", 0, batch1);

    double best = 0;
    for (size_t bm : smoke ? std::vector<size_t>{1, 16}
                           : std::vector<size_t>{1, 4, 16, 64}) {
        SweepResult r = runBatchConfig(cases, true, bm, seed, &tracer);
        rowMeasured("amortized, batchMax=" + std::to_string(bm),
                    r.opsPerSec, "ops/s");
        emitRow("sign_secp160r1", "amortized", double(bm), r);
        if (double(bm) >= 16 && r.opsPerSec > best)
            best = r.opsPerSec;
    }

    double speedup = best / batch1.opsPerSec;
    separator();
    rowMeasured("batched speedup vs batch-size-1", speedup, "x");
    {
        JsonLine line = benchLine("service");
        line.str("workload", "sign_secp160r1")
            .str("config", "speedup")
            .num("batched_speedup_vs_batch1", speedup);
        appendJsonLine(kJsonPath, line);
    }
    check(speedup >= 2.0,
          "amortized throughput below the 2x acceptance bound");

    heading("ECC service: offered-load sweep (" +
            std::to_string(load_workers) + " workers, mixed sign/derive)");
    // Capacity estimate from an effectively unpaced burst, then paced
    // levels below/near it.
    std::vector<SignCase> load_cases = makeSignCases(load_ops, seed + 17);
    SweepResult burst =
        runLoadLevel(load_cases, load_workers, 1e9, seed, nullptr,
                     &tracer);
    rowMeasured("burst capacity", burst.opsPerSec, "ops/s");
    rowMeasured("  p50 / p99 latency", burst.p50Us, "us (p50)");
    rowMeasured("  ", burst.p99Us, "us (p99)");
    emitRow("mixed_load", "burst", 0, burst);

    // Tracing live from here: the paced levels feed the attribution
    // table and the exported span files.
    tracer.setEnabled(true);

    const double fractions[] = {0.25, 0.5, 0.8};
    MetricsRegistry reg;
    for (size_t i = 0; i < std::size(fractions); i++) {
        double offered = burst.opsPerSec * fractions[i];
        bool last = i + 1 == std::size(fractions);
        SweepResult r = runLoadLevel(load_cases, load_workers, offered,
                                     seed + i, last ? &reg : nullptr,
                                     &tracer);
        char label[96];
        std::snprintf(label, sizeof label,
                      "offered %.0f ops/s (%.0f%% of burst)", offered,
                      fractions[i] * 100);
        rowMeasured(label, r.opsPerSec, "ops/s");
        rowMeasured("  p50 / p99 latency", r.p50Us, "us (p50)");
        rowMeasured("  ", r.p99Us, "us (p99)");
        emitRow("mixed_load", "paced", 0, r, offered);
    }

    tracer.setEnabled(false);
    emitAttribution(tracer);
    if (!tracer.exportJsonLines(kTracePath, benchLine("service")) ||
        !tracer.exportChromeTrace(kChromePath))
        fatal("cannot write the trace exports");
    note(std::string("spans + attribution -> ") + kTracePath);
    note(std::string("chrome trace -> ") + kChromePath);

    heading("flight recorder drill (deterministic verify mismatch)");
    runFlightDrill(cases[0], seed);

    // The last level's labeled snapshot: queue depth, occupancy and
    // latency histograms, per-worker op counters.
    reg.writeJsonLines(kMetricsPath, benchLine("service"));
    note(std::string("metrics snapshot -> ") + kMetricsPath);
    note(std::string("bench rows -> ") + kJsonPath);

    if (failures) {
        std::fprintf(stderr, "\n%d verification failure(s)\n", failures);
        return 1;
    }
    std::printf("\nall results verified against the host golden model\n");
    return 0;
}
