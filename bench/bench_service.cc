/**
 * @file
 * Load benchmark for the ECC service (DESIGN.md §14): a seeded load
 * generator drives EccService through two sweeps and verifies every
 * single result against the single-call host golden model (the bench
 * exits nonzero on any mismatch, so its rows can be trusted).
 *
 *  1. Batch sweep: a fixed ECDSA-sign workload runs through the
 *     unamortized configuration (amortize = off — the pre-existing
 *     single-call library path, i.e. the batch-size-1 configuration)
 *     and the amortized one at several micro-batch limits. Reports
 *     ops/s per configuration plus the headline
 *     batched_speedup_vs_batch1 ratio the regression gate pins
 *     (acceptance: >= 2x).
 *
 *  2. Offered-load sweep: submitter threads pace mixed sign/derive
 *     traffic at a fraction of the measured capacity into a running
 *     multi-worker service; reports achieved ops/s and the p50/p99
 *     submit-to-completion latency from the service histograms
 *     (Histogram::percentile).
 *
 * Rows go to BENCH_service.json (pinned rows gate via jaavr-report
 * against bench/baselines.json); the final sweep's labeled metrics
 * snapshot — queue depths, batch occupancy, per-worker op counters —
 * goes to METRICS_service.json.
 *
 * Flags: --smoke (CI-sized sweep), --seed <n>.
 */

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "curves/standard_curves.hh"
#include "service/service.hh"
#include "support/logging.hh"

using namespace jaavr;
using namespace jaavr::bench;

namespace
{

constexpr const char *kJsonPath = "BENCH_service.json";
constexpr const char *kMetricsPath = "METRICS_service.json";

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "MISMATCH: %s\n", what);
        failures++;
    }
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/** The sign workload both sweeps replay: deterministic (d, k, msg)
 *  tuples on secp160r1, with the golden signature precomputed. */
struct SignCase
{
    std::string msg;
    BigUInt d;
    BigUInt k;
    EcdsaSignature expect;
};

std::vector<SignCase>
makeSignCases(size_t count, uint64_t seed)
{
    Ecdsa golden(secp160r1Curve(), secp160r1Generator().g,
                 secp160r1Generator().order);
    const BigUInt &n = golden.order();
    Rng rng(seed);
    std::vector<SignCase> cases;
    cases.reserve(count);
    for (size_t i = 0; i < count; i++) {
        SignCase c;
        c.msg = "load " + std::to_string(i);
        c.d = BigUInt(1) + BigUInt::random(rng, n - BigUInt(1));
        c.k = BigUInt(1) + BigUInt::random(rng, n - BigUInt(1));
        auto sig = golden.signWithNonce(c.msg, c.d, c.k);
        if (!sig)
            fatal("degenerate nonce in the seeded workload");
        c.expect = *sig;
        cases.push_back(std::move(c));
    }
    return cases;
}

struct SweepResult
{
    double opsPerSec = 0;
    double p50Us = 0;
    double p99Us = 0;
};

/**
 * Run @p cases through a 1-worker service (so batch occupancy is the
 * drain limit, not scheduling luck), verifying every signature.
 */
SweepResult
runBatchConfig(const std::vector<SignCase> &cases, bool amortize,
               size_t batch_max, uint64_t seed)
{
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.queueCapacity = cases.size() * 2;
    cfg.batchMax = batch_max;
    cfg.amortize = amortize;
    cfg.rngSeed = seed;
    EccService svc(cfg);

    std::vector<ServiceRequest> reqs(cases.size());
    for (size_t i = 0; i < cases.size(); i++) {
        reqs[i].op = ServiceOp::Sign;
        reqs[i].curve = ServiceCurve::Secp160r1;
        reqs[i].message = cases[i].msg;
        reqs[i].privateKey = cases[i].d;
        reqs[i].nonce = cases[i].k;
        if (!svc.trySubmit(&reqs[i]))
            fatal("queue rejected a pre-start submission");
    }

    auto t0 = std::chrono::steady_clock::now();
    svc.start();
    for (auto &r : reqs)
        EccService::wait(r);
    double secs = secondsSince(t0);
    svc.stop();

    for (size_t i = 0; i < cases.size(); i++) {
        check(reqs[i].status == ServiceStatus::Ok, "sign status");
        check(reqs[i].sigOut.r == cases[i].expect.r &&
                  reqs[i].sigOut.s == cases[i].expect.s,
              "batched signature differs from the golden model");
    }

    SweepResult res;
    res.opsPerSec = double(cases.size()) / secs;
    res.p50Us = svc.latencyPercentileUs(50);
    res.p99Us = svc.latencyPercentileUs(99);
    return res;
}

/**
 * Offered-load level: submitters pace requests at @p offered ops/s
 * total into a running service; returns the achieved rate and the
 * latency percentiles. Also verifies everything.
 */
SweepResult
runLoadLevel(const std::vector<SignCase> &cases, unsigned workers,
             double offered, uint64_t seed,
             MetricsRegistry *final_metrics)
{
    ServiceConfig cfg;
    cfg.workers = workers;
    cfg.queueCapacity = 1024;
    cfg.batchMax = 16;
    cfg.amortize = true;
    cfg.rngSeed = seed;
    EccService svc(cfg);
    svc.start();

    const AffinePoint peer =
        secp160r1Curve().mulNaf(BigUInt(20220408), secp160r1Generator().g);

    constexpr unsigned kSubmitters = 2;
    std::vector<ServiceRequest> reqs(cases.size());
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> submitters;
    for (unsigned s = 0; s < kSubmitters; s++)
        submitters.emplace_back([&, s] {
            // Open-loop pacing: request i of this submitter is due at
            // i * (kSubmitters / offered) seconds.
            double interval = double(kSubmitters) / offered;
            size_t local = 0;
            for (size_t i = s; i < cases.size(); i += kSubmitters) {
                double due = double(local++) * interval;
                while (secondsSince(t0) < due)
                    std::this_thread::yield();
                ServiceRequest &r = reqs[i];
                if (i % 4 == 3) {
                    r.op = ServiceOp::Derive;
                    r.curve = ServiceCurve::Secp160r1;
                    r.privateKey = cases[i].d;
                    r.peer = peer;
                } else {
                    r.op = ServiceOp::Sign;
                    r.curve = ServiceCurve::Secp160r1;
                    r.message = cases[i].msg;
                    r.privateKey = cases[i].d;
                    r.nonce = cases[i].k;
                }
                if (!svc.submit(&r))
                    fatal("service stopped during the load run");
            }
        });
    for (auto &t : submitters)
        t.join();
    for (auto &r : reqs)
        EccService::wait(r);
    double secs = secondsSince(t0);
    svc.stop();

    const WeierstrassCurve &c = secp160r1Curve();
    for (size_t i = 0; i < cases.size(); i++) {
        check(reqs[i].status == ServiceStatus::Ok, "load-run status");
        if (reqs[i].op == ServiceOp::Sign) {
            check(reqs[i].sigOut.r == cases[i].expect.r &&
                      reqs[i].sigOut.s == cases[i].expect.s,
                  "load-run signature differs from the golden model");
        } else {
            AffinePoint expect = c.mulNaf(cases[i].d, peer);
            check(reqs[i].pointOut.x == expect.x &&
                      reqs[i].pointOut.y == expect.y,
                  "load-run derive differs from the golden model");
        }
    }

    if (final_metrics)
        svc.publishMetrics(*final_metrics);

    SweepResult res;
    res.opsPerSec = double(cases.size()) / secs;
    res.p50Us = svc.latencyPercentileUs(50);
    res.p99Us = svc.latencyPercentileUs(99);
    return res;
}

void
emitRow(const char *workload, const char *config, double batch_max,
        const SweepResult &r, double offered = 0)
{
    JsonLine line = benchLine("service");
    line.str("workload", workload).str("config", config);
    if (batch_max > 0)
        line.num("batch_max", batch_max);
    if (offered > 0)
        line.num("offered_ops_per_s", offered);
    line.num("ops_per_s", r.opsPerSec)
        .num("p50_us", r.p50Us)
        .num("p99_us", r.p99Us);
    appendJsonLine(kJsonPath, line);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    uint64_t seed = 1;
    for (int i = 1; i < argc; i++) {
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;
        else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc)
            seed = std::strtoull(argv[++i], nullptr, 0);
    }

    const size_t batch_ops = smoke ? 48 : 256;
    const size_t load_ops = smoke ? 48 : 240;
    const unsigned load_workers = 2;

    heading("ECC service: batch amortization sweep (ECDSA sign, "
            "secp160r1, 1 worker)");
    std::vector<SignCase> cases = makeSignCases(batch_ops, seed);

    SweepResult batch1 = runBatchConfig(cases, false, 16, seed);
    rowMeasured("unamortized (single-call path)", batch1.opsPerSec,
                "ops/s");
    emitRow("sign_secp160r1", "unamortized", 0, batch1);

    double best = 0;
    for (size_t bm : smoke ? std::vector<size_t>{1, 16}
                           : std::vector<size_t>{1, 4, 16, 64}) {
        SweepResult r = runBatchConfig(cases, true, bm, seed);
        rowMeasured("amortized, batchMax=" + std::to_string(bm),
                    r.opsPerSec, "ops/s");
        emitRow("sign_secp160r1", "amortized", double(bm), r);
        if (double(bm) >= 16 && r.opsPerSec > best)
            best = r.opsPerSec;
    }

    double speedup = best / batch1.opsPerSec;
    separator();
    rowMeasured("batched speedup vs batch-size-1", speedup, "x");
    {
        JsonLine line = benchLine("service");
        line.str("workload", "sign_secp160r1")
            .str("config", "speedup")
            .num("batched_speedup_vs_batch1", speedup);
        appendJsonLine(kJsonPath, line);
    }
    check(speedup >= 2.0,
          "amortized throughput below the 2x acceptance bound");

    heading("ECC service: offered-load sweep (" +
            std::to_string(load_workers) + " workers, mixed sign/derive)");
    // Capacity estimate from an effectively unpaced burst, then paced
    // levels below/near it.
    std::vector<SignCase> load_cases = makeSignCases(load_ops, seed + 17);
    SweepResult burst =
        runLoadLevel(load_cases, load_workers, 1e9, seed, nullptr);
    rowMeasured("burst capacity", burst.opsPerSec, "ops/s");
    rowMeasured("  p50 / p99 latency", burst.p50Us, "us (p50)");
    rowMeasured("  ", burst.p99Us, "us (p99)");
    emitRow("mixed_load", "burst", 0, burst);

    const double fractions[] = {0.25, 0.5, 0.8};
    MetricsRegistry reg;
    for (size_t i = 0; i < std::size(fractions); i++) {
        double offered = burst.opsPerSec * fractions[i];
        bool last = i + 1 == std::size(fractions);
        SweepResult r = runLoadLevel(load_cases, load_workers, offered,
                                     seed + i, last ? &reg : nullptr);
        char label[96];
        std::snprintf(label, sizeof label,
                      "offered %.0f ops/s (%.0f%% of burst)", offered,
                      fractions[i] * 100);
        rowMeasured(label, r.opsPerSec, "ops/s");
        rowMeasured("  p50 / p99 latency", r.p50Us, "us (p50)");
        rowMeasured("  ", r.p99Us, "us (p99)");
        emitRow("mixed_load", "paced", 0, r, offered);
    }

    // The last level's labeled snapshot: queue depth, occupancy and
    // latency histograms, per-worker op counters.
    reg.writeJsonLines(kMetricsPath, benchLine("service"));
    note(std::string("metrics snapshot -> ") + kMetricsPath);
    note(std::string("bench rows -> ") + kJsonPath);

    if (failures) {
        std::fprintf(stderr, "\n%d verification failure(s)\n", failures);
        return 1;
    }
    std::printf("\nall results verified against the host golden model\n");
    return 0;
}
