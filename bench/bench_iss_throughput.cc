/**
 * @file
 * Host-side ISS throughput benchmark: simulated instructions per
 * wall-second and simulated cycles per wall-second on representative
 * ECC workloads, measured through every ISS backend — the per-step
 * decode reference loop (step()), the predecoded fast path, and the
 * superblock-threaded trace backend. The reference loop is measured
 * exactly ONCE per workload and that one sample anchors every
 * speedup, so the fast and superblock rows of a run are directly
 * comparable (no reference jitter between legs). Emits one JSON line
 * per (workload, backend) to BENCH_iss.json for trajectory tracking
 * across PRs.
 *
 * Workloads:
 *  - OPF Montgomery multiplication at 160/192/256 bits, all three
 *    CPU modes (the Table I / Table II measurement kernel);
 *  - a full secp160r1 field-op run (add + sub + mul + Kaliski inv);
 *  - the secp160r1 MAC-ISE multiplication kernel (Fig. 1 datapath).
 *
 * Environment:
 *  - JAAVR_BENCH_SECONDS: min wall seconds per measurement (def 0.2)
 *  - JAAVR_ISS_BACKEND / JAAVR_ISS_REFERENCE select the backend for
 *    ordinary runs elsewhere; this bench measures all three legs
 *    explicitly and restores the environment's selection afterwards.
 */

#include <chrono>
#include <cstdlib>
#include <functional>

#include "avrgen/opf_harness.hh"
#include "avrgen/secp160_harness.hh"
#include "bench/bench_util.hh"
#include "field/opf_field.hh"
#include "nt/opf_prime.hh"
#include "support/logging.hh"
#include "support/random.hh"

using namespace jaavr;
using namespace jaavr::bench;

namespace
{

constexpr const char *kJsonPath = "BENCH_iss.json";

double
minSeconds()
{
    const char *v = std::getenv("JAAVR_BENCH_SECONDS");
    double s = v ? std::atof(v) : 0.0;
    return s > 0 ? s : 0.2;
}

/** One measurement: wall time plus simulated-work counters. */
struct Sample
{
    double wallSeconds = 0;
    uint64_t simInstructions = 0;
    uint64_t simCycles = 0;
    uint64_t ops = 0;

    double ips() const { return simInstructions / wallSeconds; }
    double cps() const { return simCycles / wallSeconds; }
};

/**
 * Repeat @p one_op (one simulated routine call on @p m) until the
 * minimum wall time is reached; counters come from the machine's own
 * ExecStats so they are exact.
 */
Sample
measure(Machine &m, const std::function<void()> &one_op)
{
    using clock = std::chrono::steady_clock;
    one_op();  // warm-up (page in flash, caches, branch predictors)

    const double min_s = minSeconds();
    uint64_t i0 = m.stats().instructions;
    uint64_t c0 = m.stats().cycles;
    Sample s;
    auto t0 = clock::now();
    do {
        one_op();
        s.ops++;
        s.wallSeconds = std::chrono::duration<double>(clock::now() - t0)
                            .count();
    } while (s.wallSeconds < min_s);
    s.simInstructions = m.stats().instructions - i0;
    s.simCycles = m.stats().cycles - c0;
    return s;
}

/**
 * Measure all three backends against ONE shared reference sample,
 * report, and emit one JSON line per backend. Returns the superblock
 * speedup (the acceptance metric).
 */
double
compare(const std::string &workload, CpuMode mode, Machine &m,
        const std::function<void()> &one_op)
{
    const bool initial_force = m.forceReference;
    const IssBackend initial_backend = m.backend();

    // The single anchoring reference measurement; both speedups below
    // divide by this same sample.
    m.forceReference = true;
    Sample ref = measure(m, one_op);
    m.forceReference = false;

    m.setBackend(IssBackend::Fast);
    Sample fast = measure(m, one_op);
    m.setBackend(IssBackend::Superblock);
    Sample sb = measure(m, one_op);

    m.forceReference = initial_force;
    m.setBackend(initial_backend);

    double fast_speedup = ref.ips() > 0 ? fast.ips() / ref.ips() : 0.0;
    double sb_speedup = ref.ips() > 0 ? sb.ips() / ref.ips() : 0.0;
    std::printf("  %-22s %-4s  ref %7.2f  fast %8.2f (x%.2f)  "
                "superblock %8.2f Minstr/s (x%.2f)\n",
                workload.c_str(), cpuModeName(mode), ref.ips() / 1e6,
                fast.ips() / 1e6, fast_speedup, sb.ips() / 1e6,
                sb_speedup);

    for (const auto &[path, s, speedup] :
         {std::tuple<const char *, const Sample &, double>{
              "reference", ref, 1.0},
          {"fast", fast, fast_speedup},
          {"superblock", sb, sb_speedup}}) {
        appendJsonLine(kJsonPath,
                       benchLine("iss_throughput")
                           .str("workload", workload)
                           .str("mode", cpuModeName(mode))
                           .str("path", path)
                           .num("wall_s", s.wallSeconds)
                           .num("ops", s.ops)
                           .num("sim_instructions", s.simInstructions)
                           .num("sim_cycles", s.simCycles)
                           .num("sim_instructions_per_sec", s.ips())
                           .num("sim_cycles_per_sec", s.cps())
                           .num("speedup_vs_reference", speedup));
    }
    return sb_speedup;
}

/** OPF Montgomery-mul workload at p = u * 2^k + 1 in @p mode. */
double
opfMulWorkload(unsigned k, CpuMode mode)
{
    OpfPrime prime = makeOpf(0xff4c, k);
    OpfField field(prime);
    OpfAvrLibrary lib(prime, mode);
    Rng rng(k * 31 + static_cast<unsigned>(mode));
    auto a = field.fromBig(BigUInt::randomBits(rng, prime.k));
    auto b = field.fromBig(BigUInt::randomBits(rng, prime.k));
    std::string name = csprintf("opf_mul_%u", k + 16);
    return compare(name, mode, lib.machine(),
                   [&] { lib.mul(a, b); });
}

std::vector<uint32_t>
randomSecpWords(Rng &rng)
{
    // Top bit clear keeps the value below p = 2^160 - 2^31 - 1.
    std::vector<uint32_t> w(5);
    for (auto &word : w)
        word = rng.next32();
    w[4] &= 0x7fffffff;
    return w;
}

} // anonymous namespace

int
main()
{
    heading("ISS throughput: reference vs fast vs superblock backends");
    note(csprintf("min %.2f wall seconds per measurement "
                  "(JAAVR_BENCH_SECONDS)", minSeconds()));
    std::printf("\n");

    // The acceptance workload: OPF 256-bit Montgomery multiplication.
    double accept_speedup = 0;
    CpuMode modes[3] = {CpuMode::CA, CpuMode::FAST, CpuMode::ISE};
    for (unsigned k : {144u, 176u, 240u}) {
        for (CpuMode mode : modes) {
            double s = opfMulWorkload(k, mode);
            if (k == 240)
                accept_speedup = std::max(accept_speedup, s);
        }
        separator();
    }

    // Full secp160r1 field-op run (inversion dominates the cycles).
    {
        Secp160AvrLibrary lib(CpuMode::FAST);
        Rng rng(7);
        auto a = randomSecpWords(rng);
        auto b = randomSecpWords(rng);
        compare("secp160_field_ops", CpuMode::FAST, lib.machine(), [&] {
            lib.add(a, b);
            lib.sub(a, b);
            lib.mul(a, b);
            lib.inv(a);
        });
    }

    // The MAC-ISE multiplication kernel (Algorithm 2 triggers).
    {
        Secp160AvrLibrary lib(CpuMode::ISE);
        Rng rng(9);
        auto a = randomSecpWords(rng);
        auto b = randomSecpWords(rng);
        compare("secp160_mul_mac_ise", CpuMode::ISE, lib.machine(),
                [&] { lib.mulIse(a, b); });
    }
    separator();

    std::printf("  OPF 256-bit Montgomery mul best superblock speedup: "
                "x%.2f (acceptance floor: x5)\n", accept_speedup);
    note(csprintf("JSON lines appended to %s", kJsonPath));
    return 0;
}
