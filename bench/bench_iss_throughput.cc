/**
 * @file
 * Host-side ISS throughput benchmark: simulated instructions per
 * wall-second and simulated cycles per wall-second on representative
 * ECC workloads, measured through the predecoded fast path and again
 * through the per-step decode reference path (step()), so every run
 * reports the fast-path speedup. Emits one JSON line per measurement
 * to BENCH_iss.json for trajectory tracking across PRs.
 *
 * Workloads:
 *  - OPF Montgomery multiplication at 160/192/256 bits, all three
 *    CPU modes (the Table I / Table II measurement kernel);
 *  - a full secp160r1 field-op run (add + sub + mul + Kaliski inv);
 *  - the secp160r1 MAC-ISE multiplication kernel (Fig. 1 datapath).
 *
 * Environment:
 *  - JAAVR_BENCH_SECONDS: min wall seconds per measurement (def 0.2)
 *  - JAAVR_ISS_REFERENCE=1: force the reference path globally (the
 *    bench then reports a speedup of ~1x by construction).
 */

#include <chrono>
#include <cstdlib>
#include <functional>

#include "avrgen/opf_harness.hh"
#include "avrgen/secp160_harness.hh"
#include "bench/bench_util.hh"
#include "field/opf_field.hh"
#include "nt/opf_prime.hh"
#include "support/logging.hh"
#include "support/random.hh"

using namespace jaavr;
using namespace jaavr::bench;

namespace
{

constexpr const char *kJsonPath = "BENCH_iss.json";

double
minSeconds()
{
    const char *v = std::getenv("JAAVR_BENCH_SECONDS");
    double s = v ? std::atof(v) : 0.0;
    return s > 0 ? s : 0.2;
}

/** One measurement: wall time plus simulated-work counters. */
struct Sample
{
    double wallSeconds = 0;
    uint64_t simInstructions = 0;
    uint64_t simCycles = 0;
    uint64_t ops = 0;

    double ips() const { return simInstructions / wallSeconds; }
    double cps() const { return simCycles / wallSeconds; }
};

/**
 * Repeat @p one_op (one simulated routine call on @p m) until the
 * minimum wall time is reached; counters come from the machine's own
 * ExecStats so they are exact.
 */
Sample
measure(Machine &m, const std::function<void()> &one_op)
{
    using clock = std::chrono::steady_clock;
    one_op();  // warm-up (page in flash, caches, branch predictors)

    const double min_s = minSeconds();
    uint64_t i0 = m.stats().instructions;
    uint64_t c0 = m.stats().cycles;
    Sample s;
    auto t0 = clock::now();
    do {
        one_op();
        s.ops++;
        s.wallSeconds = std::chrono::duration<double>(clock::now() - t0)
                            .count();
    } while (s.wallSeconds < min_s);
    s.simInstructions = m.stats().instructions - i0;
    s.simCycles = m.stats().cycles - c0;
    return s;
}

/** Measure fast and reference paths, report, and emit JSON lines. */
double
compare(const std::string &workload, CpuMode mode, Machine &m,
        const std::function<void()> &one_op)
{
    // The "fast" leg keeps whatever the environment selected, so
    // JAAVR_ISS_REFERENCE=1 really measures reference-vs-reference.
    const bool initial = m.forceReference;
    Sample fast = measure(m, one_op);
    m.forceReference = true;
    Sample ref = measure(m, one_op);
    m.forceReference = initial;

    double speedup = ref.ips() > 0 ? fast.ips() / ref.ips() : 0.0;
    std::printf("  %-22s %-4s  fast %8.2f Minstr/s %8.2f Mcyc/s   "
                "ref %8.2f Minstr/s   speedup x%.2f\n",
                workload.c_str(), cpuModeName(mode), fast.ips() / 1e6,
                fast.cps() / 1e6, ref.ips() / 1e6, speedup);

    for (const auto &[path, s] :
         {std::pair<const char *, const Sample &>{"fast", fast},
          {"reference", ref}}) {
        appendJsonLine(kJsonPath,
                       benchLine("iss_throughput")
                           .str("workload", workload)
                           .str("mode", cpuModeName(mode))
                           .str("path", path)
                           .num("wall_s", s.wallSeconds)
                           .num("ops", s.ops)
                           .num("sim_instructions", s.simInstructions)
                           .num("sim_cycles", s.simCycles)
                           .num("sim_instructions_per_sec", s.ips())
                           .num("sim_cycles_per_sec", s.cps())
                           .num("speedup_vs_reference",
                                path == std::string("fast") ? speedup
                                                            : 1.0));
    }
    return speedup;
}

/** OPF Montgomery-mul workload at p = u * 2^k + 1 in @p mode. */
double
opfMulWorkload(unsigned k, CpuMode mode)
{
    OpfPrime prime = makeOpf(0xff4c, k);
    OpfField field(prime);
    OpfAvrLibrary lib(prime, mode);
    Rng rng(k * 31 + static_cast<unsigned>(mode));
    auto a = field.fromBig(BigUInt::randomBits(rng, prime.k));
    auto b = field.fromBig(BigUInt::randomBits(rng, prime.k));
    std::string name = csprintf("opf_mul_%u", k + 16);
    return compare(name, mode, lib.machine(),
                   [&] { lib.mul(a, b); });
}

std::vector<uint32_t>
randomSecpWords(Rng &rng)
{
    // Top bit clear keeps the value below p = 2^160 - 2^31 - 1.
    std::vector<uint32_t> w(5);
    for (auto &word : w)
        word = rng.next32();
    w[4] &= 0x7fffffff;
    return w;
}

} // anonymous namespace

int
main()
{
    heading("ISS throughput: predecoded fast path vs step() reference");
    note(csprintf("min %.2f wall seconds per measurement "
                  "(JAAVR_BENCH_SECONDS)", minSeconds()));
    std::printf("\n");

    // The acceptance workload: OPF 256-bit Montgomery multiplication.
    double accept_speedup = 0;
    CpuMode modes[3] = {CpuMode::CA, CpuMode::FAST, CpuMode::ISE};
    for (unsigned k : {144u, 176u, 240u}) {
        for (CpuMode mode : modes) {
            double s = opfMulWorkload(k, mode);
            if (k == 240)
                accept_speedup = std::max(accept_speedup, s);
        }
        separator();
    }

    // Full secp160r1 field-op run (inversion dominates the cycles).
    {
        Secp160AvrLibrary lib(CpuMode::FAST);
        Rng rng(7);
        auto a = randomSecpWords(rng);
        auto b = randomSecpWords(rng);
        compare("secp160_field_ops", CpuMode::FAST, lib.machine(), [&] {
            lib.add(a, b);
            lib.sub(a, b);
            lib.mul(a, b);
            lib.inv(a);
        });
    }

    // The MAC-ISE multiplication kernel (Algorithm 2 triggers).
    {
        Secp160AvrLibrary lib(CpuMode::ISE);
        Rng rng(9);
        auto a = randomSecpWords(rng);
        auto b = randomSecpWords(rng);
        compare("secp160_mul_mac_ise", CpuMode::ISE, lib.machine(),
                [&] { lib.mulIse(a, b); });
    }
    separator();

    std::printf("  OPF 256-bit Montgomery mul best speedup: x%.2f "
                "(acceptance floor: x3)\n", accept_speedup);
    note(csprintf("JSON lines appended to %s", kJsonPath));
    return 0;
}
