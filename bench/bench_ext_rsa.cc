/**
 * @file
 * Extension: the paper's Section IV-A claim that the (32x4)-bit MAC
 * unit "is in principle suitable to speed up any public-key
 * cryptosystem that relies on multi-precision multiplication ... or
 * even RSA".
 *
 * Methodology: a general odd modulus needs 2s^2 + s word MACs per
 * FIPS Montgomery multiplication (measured by MontgomeryDomain); the
 * per-word-MAC cost in each processor mode is extracted from the
 * ISS-measured 160-bit OPF multiplication (whose MAC count is s^2+s
 * with s = 5). Scaling by the MAC counts and adding the per-column
 * overhead measured at s = 5 projects the RSA-512/RSA-1024 private
 * exponentiation cost — the same first-order model the paper's own
 * cost discussion uses.
 */

#include "bench/bench_util.hh"
#include "field/montgomery_domain.hh"
#include "model/field_costs.hh"
#include "nt/opf_prime.hh"
#include "support/random.hh"

using namespace jaavr;
using namespace jaavr::bench;

namespace
{

/** Projected cycles of one s-word general Montgomery multiplication. */
double
projectedMontMul(CpuMode mode, unsigned s)
{
    const FieldCycleCosts &c = opfFieldCosts(paperOpfPrime(), mode);
    // The measured OPF mul consists of s0^2+s0 MAC blocks plus
    // per-column overhead (q digits, accumulator shifts, stores);
    // split measured cycles into those parts at s0 = 5 and rescale.
    const double s0 = 5;
    double mac_blocks0 = s0 * s0 + s0;
    double column_overhead_share = 0.25;  // measured breakdown, s0=5
    double per_block =
        c.mul * (1.0 - column_overhead_share) / mac_blocks0;
    double per_column = c.mul * column_overhead_share / (2 * s0);
    double mac_blocks = 2.0 * s * s + s;  // general modulus
    return mac_blocks * per_block + 2.0 * s * per_column;
}

} // anonymous namespace

int
main()
{
    heading("Extension: projecting the MAC unit onto RSA "
            "(paper Section IV-A)");

    // Functional witness: RSA-style modexp over the general
    // Montgomery domain is exercised by the test suite; here we also
    // count the MACs of one real 512-bit multiplication.
    Rng rng(0xe5a);
    BigUInt n512 = BigUInt::randomBits(rng, 512);
    if (!n512.isOdd())
        n512 += BigUInt(1);
    MontgomeryDomain dom(n512);
    auto a = dom.toMont(BigUInt::random(rng, n512));
    auto bb = dom.toMont(BigUInt::random(rng, n512));
    dom.montMul(a, bb);
    rowMeasured("word MACs per 512-bit montgomery mul (2s^2+s, s=16)",
                dom.lastWordMacs(), "");

    std::printf("\n  projected full private-key RSA exponentiation "
                "(e = n bits, ~1.5n multiplications):\n");
    struct Cfg { const char *name; unsigned bits; };
    for (Cfg cfg : {Cfg{"RSA-512", 512}, Cfg{"RSA-1024", 1024}}) {
        unsigned s = cfg.bits / 32;
        double mults = 1.5 * cfg.bits;
        for (CpuMode mode : {CpuMode::CA, CpuMode::FAST, CpuMode::ISE}) {
            double cyc = projectedMontMul(mode, s) * mults;
            std::printf("    %-9s %-5s %12.0f kcycles  (%6.1f s at "
                        "7.3728 MHz)\n",
                        cfg.name, cpuModeName(mode), cyc / 1000.0,
                        cyc / 7372800.0);
        }
    }

    std::printf("\n");
    double speedup = projectedMontMul(CpuMode::CA, 16) /
                     projectedMontMul(CpuMode::ISE, 16);
    rowF("MAC speed-up carried over to RSA-512 muls", 5.0, speedup, "x");
    note("shape: the MAC unit's multiplication speed-up carries over "
         "to RSA almost");
    note("unchanged (the workload is nearly pure multiplication), "
         "confirming the");
    note("paper's claim - but even with it, RSA-1024 stays in the "
         "tens of seconds");
    note("on an 8-bit node, which is the paper's case for 160-bit ECC.");
    return 0;
}
