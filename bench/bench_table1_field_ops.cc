/**
 * @file
 * Reproduction of Table I: runtimes of the 160-bit OPF field
 * operations in the three processor modes (CA / FAST / ISE), measured
 * by running the generated assembly routines on the instruction-set
 * simulator, plus the JAAVR core area from the calibrated model.
 */

#include "avr/profiler.hh"
#include "avrgen/opf_harness.hh"
#include "bench/bench_util.hh"
#include "model/area_power.hh"
#include "model/field_costs.hh"
#include "nt/opf_prime.hh"
#include "support/random.hh"

using namespace jaavr;
using namespace jaavr::bench;

namespace
{

struct PaperRow
{
    const char *op;
    double ca, fast, ise;
};

const PaperRow kPaper[] = {
    {"Addition", 240, 145, 145},
    {"Subtraction", 240, 145, 145},
    {"Multiplication", 3314, 2537, 552},
    {"Inversion", 189000, 128000, 124000},
};

} // anonymous namespace

int
main()
{
    heading("Table I: arithmetic operations in a 160-bit OPF [cycles]");
    note("p = 65356 * 2^144 + 1; routines generated and run on the ISS");

    const OpfPrime &prime = paperOpfPrime();
    FieldCycleCosts costs[3] = {
        opfFieldCosts(prime, CpuMode::CA),
        opfFieldCosts(prime, CpuMode::FAST),
        opfFieldCosts(prime, CpuMode::ISE),
    };
    CpuMode modes[3] = {CpuMode::CA, CpuMode::FAST, CpuMode::ISE};

    for (const PaperRow &pr : kPaper) {
        double paper_vals[3] = {pr.ca, pr.fast, pr.ise};
        for (int m = 0; m < 3; m++) {
            const FieldCycleCosts &c = costs[m];
            double measured = 0;
            std::string op = pr.op;
            if (op == "Addition")
                measured = c.add;
            else if (op == "Subtraction")
                measured = c.sub;
            else if (op == "Multiplication")
                measured = c.mul;
            else
                measured = c.inv;
            row(op + std::string(" (") + cpuModeName(modes[m]) + ")",
                paper_vals[m], measured, "cyc");
            appendJsonLine("BENCH_table1.json",
                           benchLine("table1_field_ops")
                               .str("op", op)
                               .str("mode", cpuModeName(modes[m]))
                               .num("paper_cycles", paper_vals[m])
                               .num("measured_cycles", measured));
        }
        separator();
    }

    heading("Table I: chip area of the JAAVR core [GE]");
    double paper_ge[3] = {6166, 6800, 8344};
    for (int m = 0; m < 3; m++)
        row(std::string("JAAVR core (") + cpuModeName(modes[m]) + ")",
            paper_ge[m], AreaModel::coreGe(modes[m]), "GE");
    note("core GE values are model calibration constants (DESIGN.md "
         "substitution #2); cycle numbers above are ISS measurements.");

    heading("Per-routine cycle attribution (one run of each routine)");
    Rng rng(0x7a61e1);
    OpfField field(prime);
    auto wa = field.fromBig(BigUInt::randomBits(rng, 160));
    auto wb = field.fromBig(BigUInt::randomBits(rng, 160));
    for (CpuMode mode : modes) {
        OpfAvrLibrary lib(prime, mode);
        CallGraphProfiler prof(lib.machine(), lib.symbols(),
                               /*histograms=*/true,
                               /*record_trace=*/false);
        lib.machine().resetStats();
        lib.add(wa, wb);
        lib.sub(wa, wb);
        lib.mul(wa, wb);
        lib.inv(wa);
        note(std::string("mode ") + cpuModeName(mode) + ":");
        std::printf("%s", prof.textReport().c_str());
        prof.writeJsonLines("PROFILE_table1.json", "table1_field_ops",
                            cpuModeName(mode));
        if (mode == CpuMode::ISE) {
            // Paper Section III-B histogram of the ISE multiplication.
            const CallGraphProfiler::Node *mul =
                prof.nodeByName("opf_mul");
            if (mul) {
                row("  opf_mul LD/LDD", 204, mul->loads, "");
                row("  opf_mul ST/STS", 40, mul->stores, "");
                row("  opf_mul MOVW", 83, mul->count(Op::MOVW), "");
                row("  opf_mul SWAP", 40, mul->count(Op::SWAP), "");
                row("  opf_mul NOP", 31, mul->count(Op::NOP), "");
            }
        }
        separator();
    }
    note("profiler export: PROFILE_table1.json (one JSON line per "
         "routine and mode)");

    heading("Section V-A claims");
    double add_speedup = double(costs[0].add) / costs[1].add;
    double mul_speedup_fast = double(costs[0].mul) / costs[1].mul;
    double mul_speedup_ise_fast = double(costs[1].mul) / costs[2].mul;
    double mul_speedup_ise_ca = double(costs[0].mul) / costs[2].mul;
    rowF("add speed-up CA->FAST", 1.65, add_speedup, "x");
    rowF("mul speed-up CA->FAST", 1.31, mul_speedup_fast, "x");
    rowF("mul speed-up FAST->ISE", 4.6, mul_speedup_ise_fast, "x");
    rowF("mul speed-up CA->ISE", 6.0, mul_speedup_ise_ca, "x");
    return 0;
}
