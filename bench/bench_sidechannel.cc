/**
 * @file
 * First-order CPA attack harness over the synthesized leakage traces
 * (src/avr/leakage.hh; DESIGN.md, "Leakage observability"). Three
 * attacks, all against the generated assembly running on the ISS in
 * ISE mode with the LeakTracer armed:
 *
 *  1. cpa_ladder / plain: an x-only Montgomery-ladder scalar
 *     multiplication over the paper's OPF curve leaks one trace per
 *     random base point, with a fixed secret scalar. The attacker
 *     recovers the scalar nibble by nibble: for each 4-bit prefix
 *     extension hypothesis the host OpfField model predicts the
 *     Hamming weight of every byte of the ladder's Z2 value after
 *     each of the nibble's four steps, and Pearson correlation
 *     against the matching step windows (markers slice the windows;
 *     the routines are fixed-length, so alignment is exact) picks the
 *     hypothesis. Each nibble attack assumes the *true* preceding
 *     prefix (standard known-prefix evaluation — scores per-position
 *     distinguishability without compounding earlier errors).
 *
 *  2. cpa_ladder / hardened: the same traces but with Coron's
 *     randomized projective coordinates (the blinding that
 *     hardenedMulMontgomery draws per pass): the start state is
 *     (lambda : 0), (mu x1 : mu) for fresh nonzero lambda, mu. The
 *     intermediate Z2 values decorrelate from the unblinded
 *     prediction, so the same attack at the same trace budget must
 *     fail — the acceptance criterion this bench pins.
 *
 *  3. cpa_mul: the ISE Montgomery multiplication itself. The b
 *     operand (nibble-fed into the MAC through the ldd-r24 triggers)
 *     is the fixed secret; a is known and random per trace. After the
 *     trigger for byte t of b[0], the MAC accumulator holds
 *     a[0] * (b[0] mod 2^(8(t+1))), and its Hamming weight is priced
 *     into the trace sample, so a 256-hypothesis CPA per byte (at the
 *     trigger sample located by a known-operand profiling phase)
 *     reads b[0] out of the multiplier's prologue.
 *
 * Every attack reports recovered digits, the normalized score margin
 * of the true hypothesis over the best wrong one, and the winning
 * correlation, as JSON rows in BENCH_sidechannel.json (gated against
 * bench/baselines.json by jaavr-report; the "profile" field keeps
 * --smoke rows from matching the full-run baselines).
 *
 * Flags: --smoke (CI-sized: fewer traces, shorter scalar),
 *        --traces <n>, --kbits <n> (multiple of 4),
 *        --dump-prefix <path> (write the first plain trace as
 *        .npy/.csv plus marker metadata for offline tooling).
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "avr/leakage.hh"
#include "avrgen/opf_harness.hh"
#include "bench/bench_util.hh"
#include "curves/standard_curves.hh"
#include "curves/validate.hh"
#include "field/opf_field.hh"
#include "nt/opf_prime.hh"
#include "support/logging.hh"
#include "support/random.hh"

using namespace jaavr;
using namespace jaavr::bench;

namespace
{

constexpr const char *kJsonPath = "BENCH_sidechannel.json";

using W = OpfField::Words;

/**
 * Host-model ladder for the scalar prefix @p bits (bit nbits-1
 * processed first): returns Z2 after *every* step — the exact word
 * values the ISS produces, since the generated routines are validated
 * word-for-word against OpfField. Each snapshot is taken before the
 * next step's conditional swap: the attacked window is the Z2 store
 * inside the step, before the host-side renaming.
 *
 * The attack needs all the per-step snapshots because one step alone
 * cannot pin the last prefix bit: a step computes the doubling of the
 * selected point, so prefixes V and V-1 (V even) predict the same
 * final Z2 ([2(floor(V/2) + (V&1))]P in both cases) and tie exactly.
 * The earlier steps of the nibble break the tie — the impostor's
 * shorter prefixes diverge there.
 */
std::vector<W>
hostLadderZ2Steps(const OpfField &fm, const W &a24m, const W &one,
                  const W &x1m, uint64_t bits, unsigned nbits)
{
    W zero(fm.words(), 0);
    W x2 = one, z2 = zero, x3 = x1m, z3 = one;
    std::vector<W> snaps;
    snaps.reserve(nbits);
    unsigned swap = 0;
    for (int i = int(nbits) - 1; i >= 0; i--) {
        unsigned bit = unsigned(bits >> i) & 1;
        swap ^= bit;
        if (swap) {
            std::swap(x2, x3);
            std::swap(z2, z3);
        }
        swap = bit;

        W a = fm.add(x2, z2);
        W aa = fm.montMul(a, a);
        W b = fm.sub(x2, z2);
        W bb = fm.montMul(b, b);
        W e = fm.sub(aa, bb);
        W c = fm.add(x3, z3);
        W d = fm.sub(x3, z3);
        W da = fm.montMul(d, a);
        W cb = fm.montMul(c, b);
        W t0 = fm.add(da, cb);
        x3 = fm.montMul(t0, t0);
        W t1 = fm.sub(da, cb);
        W t2 = fm.montMul(t1, t1);
        z3 = fm.montMul(x1m, t2);
        x2 = fm.montMul(aa, bb);
        W t3 = fm.montMul(a24m, e);
        W t4 = fm.add(bb, t3);
        z2 = fm.montMul(e, t4);
        snaps.push_back(z2);
    }
    return snaps;
}

/** One target's captured trace set. */
struct LadderSet
{
    std::vector<std::vector<float>> traces;
    std::vector<W> x1m;            ///< per-trace Montgomery-domain base
    std::vector<size_t> stepStart; ///< kbits+1 step-boundary sample idx
};

/**
 * Run @p ntraces ladder executions of the fixed secret @p k on the
 * ISS with the LeakTracer armed, each on a fresh random valid base
 * point. @p blind switches on Coron's randomized projective start.
 * Markers bound every ladder step; the routines are fixed-length so
 * the boundaries must agree across traces (checked — this is the
 * dynamic face of the jaavr-ctcheck constant-time proof).
 */
LadderSet
collectLadder(OpfAvrLibrary &lib, const OpfField &fm,
              const MontgomeryCurve &mc, uint64_t k, unsigned kbits,
              unsigned ntraces, bool blind, uint64_t seed,
              const std::string &dumpPrefix)
{
    const PrimeField &f = mc.field();
    Rng rng(seed);
    LeakTracer tracer;
    lib.machine().setLeakSink(&tracer);

    W a24m = fm.toMont(BigUInt(mc.a24()));
    W one = fm.toMont(BigUInt(1));
    W zero(fm.words(), 0);

    LadderSet set;
    Trap trap;
    auto mul = [&](const W &a, const W &b) -> W {
        OpfRun r = lib.mul(a, b);
        if (r.trap && !trap)
            trap = r.trap;
        return r.result;
    };
    auto add = [&](const W &a, const W &b) -> W {
        OpfRun r = lib.add(a, b);
        if (r.trap && !trap)
            trap = r.trap;
        return r.result;
    };
    auto sub = [&](const W &a, const W &b) -> W {
        OpfRun r = lib.sub(a, b);
        if (r.trap && !trap)
            trap = r.trap;
        return r.result;
    };

    for (unsigned t = 0; t < ntraces; t++) {
        BigUInt x1;
        do
            x1 = f.random(rng);
        while (!validateX(mc, x1));
        W x1m = fm.toMont(x1);

        W x2 = one, z2 = zero, x3 = x1m, z3 = one;
        if (blind) {
            // Coron randomized projective coordinates: the neutral
            // element scales to (lambda : 0), the base to
            // (mu x1 : mu); the blinds cancel in the final X/Z.
            BigUInt lam, mu;
            do
                lam = f.random(rng);
            while (lam.isZero());
            do
                mu = f.random(rng);
            while (mu.isZero());
            W mum = fm.toMont(mu);
            x2 = fm.toMont(lam);
            x3 = fm.montMul(x1m, mum);
            z3 = mum;
        }

        tracer.begin(lib.machine(),
                     seed ^ (0x9e3779b97f4a7c15ULL * (t + 1)));
        unsigned swap = 0;
        for (int i = int(kbits) - 1; i >= 0 && !trap; i--) {
            tracer.mark(csprintf("step%u", kbits - 1 - unsigned(i)));
            unsigned bit = unsigned(k >> i) & 1;
            swap ^= bit;
            if (swap) {
                std::swap(x2, x3);
                std::swap(z2, z3);
            }
            swap = bit;

            W a = add(x2, z2);
            W aa = mul(a, a);
            W b = sub(x2, z2);
            W bb = mul(b, b);
            W e = sub(aa, bb);
            W c = add(x3, z3);
            W d = sub(x3, z3);
            W da = mul(d, a);
            W cb = mul(c, b);
            W t0 = add(da, cb);
            x3 = mul(t0, t0);
            W t1 = sub(da, cb);
            W t2 = mul(t1, t1);
            z3 = mul(x1m, t2);
            x2 = mul(aa, bb);
            W t3 = mul(a24m, e);
            W t4 = add(bb, t3);
            z2 = mul(e, t4);
        }
        tracer.mark("final");
        tracer.end();
        if (trap)
            panic("sidechannel: ISS trap during trace collection");

        // The blind must cancel: X2/Z2 equals the host ladder result.
        BigUInt zc = fm.canonical(z2);
        auto host = mc.ladder(BigUInt(k), x1);
        if (zc.isZero() || !host)
            panic("sidechannel: unexpected ladder infinity");
        if (f.mul(fm.canonical(x2), f.inv(zc)) != *host)
            panic("sidechannel: traced ladder disagrees with host");

        std::vector<size_t> bounds;
        for (const auto &[label, idx] : tracer.markers())
            bounds.push_back(idx);
        if (bounds.size() != size_t(kbits) + 1)
            panic("sidechannel: marker count mismatch");
        if (t == 0)
            set.stepStart = bounds;
        else if (bounds != set.stepStart)
            panic("sidechannel: trace misalignment across executions");

        if (t == 0 && !dumpPrefix.empty()) {
            tracer.writeNpy(dumpPrefix + ".npy");
            tracer.writeCsv(dumpPrefix + ".csv");
            tracer.writeMeta(dumpPrefix + "_meta.json",
                             benchLine("sidechannel"));
        }

        set.traces.push_back(tracer.samples());
        set.x1m.push_back(std::move(x1m));
    }
    lib.machine().setLeakSink(nullptr);
    return set;
}

/** Result of one attack. */
struct Attack
{
    unsigned total = 0;     ///< attacked digits (nibbles)
    unsigned recovered = 0; ///< argmax hypothesis == true digit
    double margin = 0;      ///< mean normalized true-minus-best-wrong
    double corr = 0;        ///< mean normalized winning score
};

/**
 * Per-sample mean/sd over the trace set in [lo, hi); population
 * statistics, zero sd marks a constant column (skipped by the scan).
 */
void
columnStats(const std::vector<std::vector<float>> &traces, size_t lo,
            size_t hi, std::vector<double> &meanY,
            std::vector<double> &sdY)
{
    size_t n = traces.size();
    meanY.assign(hi, 0.0);
    sdY.assign(hi, 0.0);
    for (size_t s = lo; s < hi; s++) {
        double sum = 0, sq = 0;
        for (size_t t = 0; t < n; t++) {
            double v = traces[t][s];
            sum += v;
            sq += v * v;
        }
        double m = sum / double(n);
        double var = sq / double(n) - m * m;
        meanY[s] = m;
        sdY[s] = var > 0 ? std::sqrt(var) : 0.0;
    }
}

/** max |Pearson r| of predictor @p x against each sample column. */
double
maxAbsCorr(const std::vector<std::vector<float>> &traces,
           const std::vector<double> &x, size_t lo, size_t hi,
           const std::vector<double> &meanY,
           const std::vector<double> &sdY)
{
    size_t n = traces.size();
    double mx = 0, mxx = 0;
    for (double v : x) {
        mx += v;
        mxx += v * v;
    }
    mx /= double(n);
    double vx = mxx / double(n) - mx * mx;
    if (vx <= 1e-12)
        return 0.0;
    double sx = std::sqrt(vx);
    double best = 0;
    for (size_t s = lo; s < hi; s++) {
        if (sdY[s] <= 1e-12)
            continue;
        double sxy = 0;
        for (size_t t = 0; t < n; t++)
            sxy += x[t] * traces[t][s];
        double r = (sxy / double(n) - mx * meanY[s]) / (sx * sdY[s]);
        best = std::max(best, std::fabs(r));
    }
    return best;
}

/**
 * Known-prefix nibble-by-nibble CPA against a ladder trace set. A
 * nibble hypothesis is scored against all four of its steps: per
 * level, the window is the tail of the step (where the step's final
 * Z2 = E(BB + a24 E) product is stored back) and the contribution is
 * the sum over Z2's bytes of the best |r| in the window. Scoring
 * every level both pins the earlier prefix bits (breaking the exact
 * V/V-1 doubling tie of the final step — see hostLadderZ2Steps) and
 * quadruples the evidence per nibble.
 */
Attack
cpaLadder(const LadderSet &set, const OpfField &fm, const W &a24m,
          const W &one, uint64_t k, unsigned kbits)
{
    // Restricting the scan to each step's tail keeps the wrong-key
    // noise floor (max of |r| over the window under the null) low at
    // smoke-sized trace counts; 800 samples cover the final product.
    constexpr size_t kWindowTail = 800;
    size_t n = set.traces.size();
    size_t nb = fm.words() * 4;
    unsigned nibbles = kbits / 4;

    Attack out;
    out.total = nibbles;
    for (unsigned j = 0; j < nibbles; j++) {
        unsigned m = 4 * (j + 1); // hypothesis prefix length in bits
        size_t lo[4], hi[4];
        std::vector<double> meanY[4], sdY[4];
        for (unsigned l = 0; l < 4; l++) {
            unsigned step = 4 * j + l;
            hi[l] = set.stepStart[step + 1];
            lo[l] = set.stepStart[step];
            if (hi[l] - lo[l] > kWindowTail)
                lo[l] = hi[l] - kWindowTail;
            columnStats(set.traces, lo[l], hi[l], meanY[l], sdY[l]);
        }

        uint64_t top = k >> (kbits - m);
        unsigned trueNib = unsigned(top & 0xf);
        double score[16];
        std::vector<double> hw(n);
        for (unsigned h = 0; h < 16; h++) {
            uint64_t hyp = (top & ~uint64_t(0xf)) | h;
            std::vector<std::vector<W>> snap(n);
            for (size_t t = 0; t < n; t++)
                snap[t] = hostLadderZ2Steps(fm, a24m, one, set.x1m[t],
                                            hyp, m);
            double sc = 0;
            for (unsigned l = 0; l < 4; l++) {
                unsigned step = 4 * j + l;
                for (size_t b = 0; b < nb; b++) {
                    for (size_t t = 0; t < n; t++)
                        hw[t] = __builtin_popcount(
                            (snap[t][step][b / 4] >> (8 * (b % 4))) &
                            0xff);
                    sc += maxAbsCorr(set.traces, hw, lo[l], hi[l],
                                     meanY[l], sdY[l]);
                }
            }
            score[h] = sc;
        }

        unsigned best = 0;
        double bestWrong = -1;
        for (unsigned h = 0; h < 16; h++) {
            if (score[h] > score[best])
                best = h;
            if (h != trueNib && score[h] > bestWrong)
                bestWrong = score[h];
        }
        double norm = double(nb) * 4.0;
        if (best == trueNib)
            out.recovered++;
        out.margin += (score[trueNib] - bestWrong) / norm;
        out.corr += score[best] / norm;
        std::printf("    nibble %2u: guess 0x%x true 0x%x %s  "
                    "(score %.3f vs best wrong %.3f)\n",
                    j, best, trueNib, best == trueNib ? "ok " : "MISS",
                    score[best] / norm, bestWrong / norm);
    }
    out.margin /= double(nibbles);
    out.corr /= double(nibbles);
    return out;
}

/**
 * CPA against the ISE multiplier's b operand: byte t of b[0]
 * hypothesized from the MAC-accumulator Hamming weight after its
 * ldd-r24 trigger (acc = a[0] * (b[0] mod 2^(8(t+1))) at that
 * retirement).
 *
 * A profiling phase with known operand pairs first locates the exact
 * trigger sample of every byte (template-attack practice: the
 * attacker profiles a clone device; no secret material involved).
 * The attack then scores each hypothesis at that single sample,
 * which kills the multiple-comparison noise floor and the
 * "hypothesis 0 matches the previous trigger" alias. One ambiguity
 * is inherent and left standing: for the lowest byte the accumulator
 * is exactly a[0]*h, and popcount(x) == popcount(2x), so the
 * hypothesis shift-orbit {h * 2^k} ties structurally — the attack
 * targets 6 of the 8 nibbles with certainty.
 */
Attack
cpaMul(OpfAvrLibrary &lib, const OpfField &fm, unsigned ntraces,
       uint64_t seed)
{
    constexpr size_t kWindow = 64; // multiplication prologue
    constexpr unsigned kProfile = 16;
    Rng rng(seed);
    BigUInt bSecret = BigUInt::random(rng, fm.modulus());
    W bW = fm.fromBig(bSecret);

    LeakTracer tracer;
    lib.machine().setLeakSink(&tracer);
    auto capture = [&](const W &aW, const W &bOp, uint64_t nseed,
                       std::vector<std::vector<float>> &out) {
        tracer.begin(lib.machine(), nseed);
        OpfRun r = lib.mul(aW, bOp);
        tracer.end();
        if (r.trap)
            panic("sidechannel: ISS trap during mul collection");
        if (fm.canonical(r.result) !=
            fm.canonical(fm.montMul(aW, bOp)))
            panic("sidechannel: traced mul disagrees with host model");
        const std::vector<float> &s = tracer.samples();
        size_t keep = std::min(kWindow, s.size());
        out.emplace_back(s.begin(), s.begin() + keep);
    };

    // Predicted power of the byte-@p byte MAC-trigger retirement for
    // hypothesis @p h with the true lower bytes @p below: the sample
    // is wRegHd * HD(acc) + wMacHw * HW(acc) + wBusHw * HW(loaded
    // byte) plus hypothesis-independent terms (LeakModel defaults).
    auto predict = [](uint32_t va0, uint32_t below, unsigned h,
                      unsigned byte) {
        uint64_t prev = uint64_t(va0) * uint64_t(below);
        uint64_t cur =
            uint64_t(va0) *
            uint64_t(below | (uint32_t(h) << (8 * byte)));
        return double(__builtin_popcountll(prev ^ cur)) +
               0.5 * double(__builtin_popcountll(cur)) +
               double(__builtin_popcount(h));
    };

    std::vector<std::vector<float>> prof;
    std::vector<uint32_t> profA0, profB0;
    for (unsigned t = 0; t < kProfile; t++) {
        W aW = fm.fromBig(BigUInt::random(rng, fm.modulus()));
        W bP = fm.fromBig(BigUInt::random(rng, fm.modulus()));
        capture(aW, bP, seed ^ (0x94d049bb133111ebULL * (t + 1)),
                prof);
        profA0.push_back(aW[0]);
        profB0.push_back(bP[0]);
    }
    size_t wlen = prof[0].size();
    std::vector<double> meanP, sdP;
    columnStats(prof, 0, wlen, meanP, sdP);
    size_t trig[4];
    {
        std::vector<double> hw(kProfile);
        for (unsigned byte = 0; byte < 4; byte++) {
            uint32_t belowMask =
                byte ? ((1u << (8 * byte)) - 1) : 0u;
            for (unsigned t = 0; t < kProfile; t++)
                hw[t] = predict(profA0[t], profB0[t] & belowMask,
                                (profB0[t] >> (8 * byte)) & 0xff,
                                byte);
            double best = -1;
            trig[byte] = 0;
            for (size_t s = 0; s < wlen; s++) {
                double r = maxAbsCorr(prof, hw, s, s + 1, meanP, sdP);
                if (r > best) {
                    best = r;
                    trig[byte] = s;
                }
            }
            if (best < 0.9)
                panic("sidechannel: mul profiling failed to locate "
                      "the byte-%u MAC trigger (|r| = %.3f)",
                      byte, best);
        }
    }

    std::vector<std::vector<float>> traces;
    std::vector<uint32_t> a0;
    for (unsigned t = 0; t < ntraces; t++) {
        W aW = fm.fromBig(BigUInt::random(rng, fm.modulus()));
        capture(aW, bW, seed ^ (0xbf58476d1ce4e5b9ULL * (t + 1)),
                traces);
        a0.push_back(aW[0]);
    }
    lib.machine().setLeakSink(nullptr);

    size_t n = traces.size();
    std::vector<double> meanY, sdY;
    columnStats(traces, 0, wlen, meanY, sdY);

    Attack out;
    out.total = 8; // two nibbles per recovered byte of b[0]
    std::vector<double> hw(n);
    for (unsigned byte = 0; byte < 4; byte++) {
        uint32_t below = bW[0] & ((byte ? (1u << (8 * byte)) : 1u) - 1);
        unsigned trueByte = (bW[0] >> (8 * byte)) & 0xff;
        double score[256];
        for (unsigned h = 0; h < 256; h++) {
            for (size_t t = 0; t < n; t++)
                hw[t] = predict(a0[t], below, h, byte);
            score[h] = maxAbsCorr(traces, hw, trig[byte],
                                  trig[byte] + 1, meanY, sdY);
        }
        unsigned best = 0;
        double bestWrong = -1;
        for (unsigned h = 0; h < 256; h++) {
            if (score[h] > score[best])
                best = h;
            if (h != trueByte && score[h] > bestWrong)
                bestWrong = score[h];
        }
        if (best == trueByte)
            out.recovered += 2;
        out.margin += score[trueByte] - bestWrong;
        out.corr += score[best];
        std::printf("    b[0] byte %u: guess 0x%02x true 0x%02x %s  "
                    "(|r| %.3f vs best wrong %.3f, trigger sample "
                    "%zu)\n",
                    byte, best, trueByte,
                    best == trueByte ? "ok " : "MISS", score[best],
                    bestWrong, trig[byte]);
    }
    out.margin /= 4.0;
    out.corr /= 4.0;
    return out;
}

void
emit(const std::string &attack, const std::string &target,
     const std::string &profile, unsigned traces, unsigned kbits,
     const Attack &a)
{
    note(csprintf("%-10s %-9s recovered %2u/%2u nibbles, margin %+.3f, "
                  "best corr %.3f  (%u traces)",
                  attack.c_str(), target.c_str(), a.recovered, a.total,
                  a.margin, a.corr, traces));
    JsonLine line = benchLine("sidechannel");
    line.str("attack", attack)
        .str("target", target)
        .str("profile", profile)
        .num("traces", uint64_t(traces))
        .num("kbits", uint64_t(kbits))
        .num("total_nibbles", uint64_t(a.total))
        .num("recovered_nibbles", uint64_t(a.recovered))
        // Derived gate metric for hardened targets: the report gate
        // cannot pin "stays at zero" directly (a zero baseline never
        // regresses), so countermeasure rows pin the complement as a
        // higher-is-better throughput-style metric instead.
        .num("unrecovered_nibbles", uint64_t(a.total - a.recovered))
        .num("margin", a.margin)
        .num("max_correlation", a.corr);
    appendJsonLine(kJsonPath, line);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    unsigned traces = 0, kbits = 0;
    std::string dumpPrefix;
    for (int i = 1; i < argc; i++) {
        if (!std::strcmp(argv[i], "--smoke")) {
            smoke = true;
        } else if (!std::strcmp(argv[i], "--traces") && i + 1 < argc) {
            traces = unsigned(std::atoi(argv[++i]));
        } else if (!std::strcmp(argv[i], "--kbits") && i + 1 < argc) {
            kbits = unsigned(std::atoi(argv[++i]));
        } else if (!std::strcmp(argv[i], "--dump-prefix") &&
                   i + 1 < argc) {
            dumpPrefix = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--traces n] [--kbits n] "
                         "[--dump-prefix path]\n",
                         argv[0]);
            return 2;
        }
    }
    if (!traces)
        traces = smoke ? 12 : 32;
    if (!kbits)
        kbits = smoke ? 24 : 40;
    if (kbits < 8 || kbits > 64 || kbits % 4)
        fatal("--kbits must be a multiple of 4 in [8, 64]");
    const std::string profile = smoke ? "smoke" : "full";

    heading(csprintf("side-channel CPA harness: OPF Montgomery ladder "
                     "on the ISS (ISE mode, %u traces, %u-bit scalar, "
                     "%s profile)",
                     traces, kbits, profile.c_str()));

    OpfPrime prime = paperOpfPrime();
    OpfField fm(prime);
    OpfAvrLibrary lib(prime, CpuMode::ISE);
    const MontgomeryCurve &mc = montgomeryOpfCurve();
    W a24m = fm.toMont(BigUInt(mc.a24()));
    W one = fm.toMont(BigUInt(1));

    // Fixed secret scalar, top bit set so every trace runs kbits full
    // ladder steps.
    Rng krng(0x5ca1ab1e0ddba11ULL);
    uint64_t k = (uint64_t(1) << (kbits - 1)) |
                 krng.below(uint64_t(1) << (kbits - 1));

    note("collecting plain-ladder traces...");
    LadderSet plain = collectLadder(lib, fm, mc, k, kbits, traces,
                                    false, 0x101, dumpPrefix);
    note(csprintf("  %u traces x %zu samples", traces,
                  plain.traces[0].size()));
    note("attacking plain ladder:");
    Attack plainA = cpaLadder(plain, fm, a24m, one, k, kbits);
    plain = LadderSet(); // free before the next capture

    note("collecting hardened-ladder traces (randomized projective "
         "coordinates)...");
    LadderSet hard = collectLadder(lib, fm, mc, k, kbits, traces, true,
                                   0x202, "");
    note("attacking hardened ladder (same attack, same budget):");
    Attack hardA = cpaLadder(hard, fm, a24m, one, k, kbits);
    hard = LadderSet();

    note("attacking ISE Montgomery multiplication (secret b operand):");
    Attack mulA = cpaMul(lib, fm, traces, 0x303);

    separator();
    emit("cpa_ladder", "plain", profile, traces, kbits, plainA);
    emit("cpa_ladder", "hardened", profile, traces, kbits, hardA);
    emit("cpa_mul", "opf_mul_ise", profile, traces, kbits, mulA);

    // Self-checks: the leakage model must be attackable, and the
    // countermeasure must defeat the identical attack at the same
    // trace budget (ISSUE acceptance criteria; jaavr-report pins the
    // full-profile numbers against bench/baselines.json).
    unsigned needPlain = smoke ? 5 : 8;
    if (plainA.recovered < needPlain)
        panic("sidechannel: CPA recovered %u/%u nibbles from the "
              "plain ladder (need >= %u) — leakage model regressed",
              plainA.recovered, plainA.total, needPlain);
    if (hardA.recovered > 3)
        panic("sidechannel: CPA recovered %u/%u nibbles from the "
              "hardened ladder — blinding is not randomizing the "
              "ladder state",
              hardA.recovered, hardA.total);
    if (mulA.recovered < 6)
        panic("sidechannel: CPA recovered %u/8 nibbles of the mul "
              "operand (need >= 6)",
              mulA.recovered);

    note("side-channel harness: all self-checks passed");
    std::printf("\nJSON rows appended to %s\n", kJsonPath);
    return 0;
}
