/**
 * @file
 * Quickstart: Elliptic-Curve Diffie-Hellman over the paper's
 * Montgomery OPF curve using the x-only ladder — the protocol the
 * paper's constant-time rows are built for (no precomputation, base
 * point not fixed, regular execution pattern).
 *
 * Demonstrates the three layers of the library:
 *   1. the curve API (x-only ladder over an Optimal Prime Field),
 *   2. the cycle-accounting executor with ISS-measured field costs,
 *   3. the processor-mode comparison (ATmega128-compatible CA mode
 *      vs. JAAVR FAST vs. the MAC-extended ISE).
 */

#include <cstdio>

#include "curves/standard_curves.hh"
#include "model/experiments.hh"

using namespace jaavr;

int
main()
{
    std::printf("== jaavr-ecc quickstart: x-only ECDH over a 160-bit "
                "OPF ==\n\n");

    const MontgomeryCurve &curve = montgomeryOpfCurve();
    const PrimeField &field = curve.field();
    BigUInt base_x = montgomeryOpfBasePoint().x;

    std::printf("curve: B*y^2 = x^3 + A*x^2 + x over p = 65356*2^144+1\n");
    std::printf("  A = %s ((A+2)/4 = %u, a small constant)\n",
                curve.coeffA().toHex().c_str(), curve.a24());
    std::printf("  base point x = %s\n\n", base_x.toHex().c_str());

    // --- Key exchange -----------------------------------------------
    Rng rng(0xec0d);  // NOT a CSPRNG; replace for production use
    BigUInt alice_secret = BigUInt(1) + BigUInt::randomBits(rng, 159);
    BigUInt bob_secret = BigUInt(1) + BigUInt::randomBits(rng, 159);

    auto alice_public = curve.ladder(alice_secret, base_x);
    auto bob_public = curve.ladder(bob_secret, base_x);
    std::printf("Alice public x: %s\n", alice_public->toHex().c_str());
    std::printf("Bob   public x: %s\n\n", bob_public->toHex().c_str());

    auto alice_shared = curve.ladder(alice_secret, *bob_public);
    auto bob_shared = curve.ladder(bob_secret, *alice_public);
    std::printf("Alice shared secret: %s\n", alice_shared->toHex().c_str());
    std::printf("Bob   shared secret: %s\n", bob_shared->toHex().c_str());
    std::printf("secrets match: %s\n\n",
                *alice_shared == *bob_shared ? "YES" : "NO -- BUG");
    if (*alice_shared != *bob_shared)
        return 1;

    // --- What would this cost on the ASIP? ---------------------------
    std::printf("cost of one ladder scalar multiplication "
                "(ISS-measured field ops):\n");
    for (CpuMode mode : {CpuMode::CA, CpuMode::FAST, CpuMode::ISE}) {
        CycleExecutor exec(opfFieldCosts(paperOpfPrime(), mode));
        MeasuredRun run = exec.measure(field, [&] {
            curve.ladder(alice_secret, *bob_public);
        });
        std::printf("  %-5s %9llu cycles  (%6.1f ms at 7.3728 MHz, "
                    "%5.1f ms at 20 MHz)\n",
                    cpuModeName(mode),
                    static_cast<unsigned long long>(run.cycles),
                    run.cycles / 7372.8, run.cycles / 20000.0);
    }
    std::printf("\nThe MICAz-class sensor node (7.3728 MHz) finishes a "
                "full key\nexchange in well under a second once the MAC "
                "unit is enabled.\n");
    return 0;
}
