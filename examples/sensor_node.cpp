/**
 * @file
 * Scenario: commissioning a wireless sensor node into a secure
 * network — the workload class the paper's introduction motivates.
 *
 * The node performs one ECDH key agreement with the gateway
 * (Montgomery ladder, constant execution pattern: the node handles
 * attacker-observable RF timing) and one ECDSA verification of the
 * gateway's certificate (GLV curve, high speed). The example compares
 * the three JAAVR configurations on latency, area, power and energy —
 * the design-space walk of the paper's Tables I and III — and prints
 * a recommendation per deployment constraint.
 */

#include <cstdio>

#include "curves/ecdsa.hh"
#include "curves/standard_curves.hh"
#include "model/area_power.hh"
#include "model/experiments.hh"

using namespace jaavr;

namespace
{

struct NodeCost
{
    uint64_t ecdhCycles;
    uint64_t verifyCycles;
    AreaBreakdown area;
    double energyUj;
};

} // anonymous namespace

int
main()
{
    std::printf("== sensor-node commissioning: ECDH + certificate "
                "verification ==\n\n");

    // The cryptographic transcript (identical in every mode).
    Rng rng(0x5e50);
    const MontgomeryCurve &mont = montgomeryOpfCurve();
    BigUInt base_x = montgomeryOpfBasePoint().x;
    BigUInt node_secret = BigUInt(1) + BigUInt::randomBits(rng, 159);
    BigUInt gateway_secret = BigUInt(1) + BigUInt::randomBits(rng, 159);
    auto gateway_public = mont.ladder(gateway_secret, base_x);

    const GlvCurve &glv = glvOpfCurve();
    Ecdsa dsa(glv);
    EcdsaKeyPair ca_key = dsa.generateKey(rng);
    std::string cert = "gateway-07 pubkey:" + gateway_public->toHex();
    EcdsaSignature cert_sig = dsa.sign(cert, ca_key.d, rng);

    NodeCost costs[3];
    CpuMode modes[3] = {CpuMode::CA, CpuMode::FAST, CpuMode::ISE};
    for (int m = 0; m < 3; m++) {
        // ECDH share + shared-secret computation (2 ladders).
        CycleExecutor mexec(opfFieldCosts(paperOpfPrime(), modes[m]));
        MeasuredRun ecdh = mexec.measure(mont.field(), [&] {
            auto node_public = mont.ladder(node_secret, base_x);
            mont.ladder(node_secret, *gateway_public);
            (void)node_public;
        });

        // Certificate check (ECDSA verify on the GLV curve).
        CycleExecutor gexec(opfFieldCosts(glvOpfPrimeUsed(), modes[m]));
        MeasuredRun ver = gexec.measure(glv.field(), [&] {
            if (!dsa.verify(cert, cert_sig, ca_key.q))
                std::printf("  certificate INVALID -- bug\n");
        });

        NodeCost &c = costs[m];
        c.ecdhCycles = ecdh.cycles;
        c.verifyCycles = ver.cycles;
        // Footprint: the node carries both curves' code; RAM is the
        // larger of the two working sets.
        CurveFootprint fm = curveFootprint(CurveId::MontgomeryOpf,
                                           modes[m]);
        CurveFootprint fg = curveFootprint(CurveId::GlvOpf, modes[m]);
        size_t rom = fm.romBytes + fg.romBytes;
        size_t ram = std::max(fm.ramBytes, fg.ramBytes);
        c.area = AreaModel::chip(modes[m], rom, ram);
        PowerBreakdown p = PowerModel::chip(modes[m], rom, ram);
        c.energyUj =
            PowerModel::energyUj(p, c.ecdhCycles + c.verifyCycles);
    }

    std::printf("%-6s | %12s %12s | %9s | %9s | %10s\n", "mode",
                "ECDH [cyc]", "verify [cyc]", "total ms*", "area GE",
                "energy uJ");
    std::printf("%s\n", std::string(78, '-').c_str());
    for (int m = 0; m < 3; m++) {
        const NodeCost &c = costs[m];
        double ms = (c.ecdhCycles + c.verifyCycles) / 7372.8;
        std::printf("%-6s | %12llu %12llu | %9.1f | %9.0f | %10.1f\n",
                    cpuModeName(modes[m]),
                    static_cast<unsigned long long>(c.ecdhCycles),
                    static_cast<unsigned long long>(c.verifyCycles), ms,
                    c.area.total(), c.energyUj);
    }
    std::printf("(*latency at the MICAz mote's 7.3728 MHz clock; "
                "energy at 1 MHz reference)\n\n");

    double core_up = 100.0 * (AreaModel::coreGe(CpuMode::ISE) /
                                  AreaModel::coreGe(CpuMode::CA) -
                              1.0);
    double area_delta =
        100.0 * (costs[2].area.total() / costs[0].area.total() - 1.0);
    double speedup =
        double(costs[0].ecdhCycles + costs[0].verifyCycles) /
        double(costs[2].ecdhCycles + costs[2].verifyCycles);
    std::printf("the paper's trade-off, reproduced: the MAC unit buys "
                "a %.1fx commissioning\nspeed-up for +%.0f%% core "
                "area; total chip area changes by %+.0f%% because\n"
                "the MAC-based field routines also need less program "
                "memory.\n\n", speedup, core_up, area_delta);
    std::printf("recommendation:\n"
                "  latency-bound deployments  -> ISE mode\n"
                "  drop-in ATmega128 retrofit -> CA mode (cycle-exact "
                "compatibility)\n"
                "  minimal-area retrofit      -> FAST mode\n");
    return 0;
}
