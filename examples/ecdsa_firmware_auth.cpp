/**
 * @file
 * Scenario: signed firmware updates for an IoT device fleet.
 *
 * A vendor signs firmware images with ECDSA over the GLV curve (the
 * paper's fastest family: the device verifies with two
 * endomorphism-accelerated scalar multiplications). The device
 * rejects tampered images and images signed with the wrong key.
 * Verification cost is reported for all three processor modes.
 */

#include <cstdio>

#include "curves/ecdsa.hh"
#include "curves/standard_curves.hh"
#include "model/experiments.hh"
#include "support/hex.hh"

using namespace jaavr;

int
main()
{
    std::printf("== ECDSA firmware authentication over the GLV OPF "
                "curve ==\n\n");

    const GlvCurve &curve = glvOpfCurve();
    Ecdsa dsa(curve);
    std::printf("curve: y^2 = x^3 + %s over p = %u * 2^144 + 1\n",
                curve.params().b.toHex().c_str(), glvOpfPrimeUsed().u);
    std::printf("subgroup order n = %s (cofactor %s)\n\n",
                curve.order().toHex().c_str(),
                curve.params().cofactor.toHex().c_str());

    // --- Vendor side --------------------------------------------------
    Rng rng(0xf1a4);  // NOT a CSPRNG; replace for production use
    EcdsaKeyPair vendor = dsa.generateKey(rng);
    std::string firmware_v1 =
        "jaavr-node-fw v1.4.2: sensors=temp,rh radio=802.15.4 "
        "build=2026-07-05";
    EcdsaSignature sig = dsa.sign(firmware_v1, vendor.d, rng);
    std::printf("vendor signed firmware image (%zu bytes)\n",
                firmware_v1.size());
    std::printf("  r = %s\n  s = %s\n\n", sig.r.toHex().c_str(),
                sig.s.toHex().c_str());

    // --- Device side ---------------------------------------------------
    bool ok = dsa.verify(firmware_v1, sig, vendor.q);
    std::printf("device verdict on genuine image:   %s\n",
                ok ? "ACCEPT" : "reject");

    std::string tampered = firmware_v1;
    tampered[10] ^= 0x01;
    bool bad = dsa.verify(tampered, sig, vendor.q);
    std::printf("device verdict on tampered image:  %s\n",
                bad ? "ACCEPT -- BUG" : "reject");

    EcdsaKeyPair mallory = dsa.generateKey(rng);
    EcdsaSignature forged = dsa.sign(firmware_v1, mallory.d, rng);
    bool forgery = dsa.verify(firmware_v1, forged, vendor.q);
    std::printf("device verdict on forged signature: %s\n\n",
                forgery ? "ACCEPT -- BUG" : "reject");
    if (!ok || bad || forgery)
        return 1;

    // --- Cost on the ASIP ------------------------------------------------
    std::printf("signature verification cost (two GLV scalar "
                "multiplications):\n");
    const PrimeField &field = curve.field();
    for (CpuMode mode : {CpuMode::CA, CpuMode::FAST, CpuMode::ISE}) {
        CycleExecutor exec(opfFieldCosts(glvOpfPrimeUsed(), mode));
        MeasuredRun run = exec.measure(field, [&] {
            dsa.verify(firmware_v1, sig, vendor.q);
        });
        std::printf("  %-5s %9llu cycles (%6.1f ms at 7.3728 MHz)\n",
                    cpuModeName(mode),
                    static_cast<unsigned long long>(run.cycles),
                    run.cycles / 7372.8);
    }
    return 0;
}
