/**
 * @file
 * Tour of the AVR substrate: assemble a program with the built-in
 * two-pass assembler, run it on the JAAVR machine model with
 * instruction tracing, inspect the statistics, and fire the
 * (32 x 4)-bit MAC unit by hand — the Fig. 1 hardware, scriptable.
 */

#include <cstdio>

#include "avr/machine.hh"
#include "avrasm/assembler.hh"

using namespace jaavr;

int
main()
{
    std::printf("== JAAVR machine-model demo ==\n\n");

    // --- 1. A classic: iterative Fibonacci in AVR assembly. ---------
    const char *fib_src = R"(
        ; compute fib(12) into r24
            ldi r24, 0      ; fib(0)
            ldi r25, 1      ; fib(1)
            ldi r16, 12     ; iterations
        loop:
            mov r18, r24
            add r24, r25    ; actually computes the next pair:
            mov r25, r18    ; (a, b) <- (a+b, a)
            dec r16
            brne loop
            ret
    )";
    Program fib = assemble(fib_src, "fib.S");
    std::printf("assembled fib.S: %zu flash bytes, labels:",
                fib.romBytes());
    for (const auto &[name, addr] : fib.labels)
        std::printf(" %s=0x%x", name.c_str(), addr);
    std::printf("\n");

    for (CpuMode mode : {CpuMode::CA, CpuMode::FAST}) {
        Machine m(mode);
        m.loadProgram(fib.words);
        uint64_t cycles = m.call(0);
        std::printf("  %-4s mode: fib(12) = %u in %llu cycles, "
                    "%llu instructions\n",
                    cpuModeName(mode), m.reg(24),
                    static_cast<unsigned long long>(cycles),
                    static_cast<unsigned long long>(
                        m.stats().instructions));
    }

    // --- 2. The MAC unit, by hand (paper Fig. 1 / Algorithm 2). -----
    std::printf("\nMAC unit: 0x12345678 * 0x9abcdef0 via Algorithm 2\n");
    const char *mac_src = R"(
        .equ MACCR = 0x3c
            ldi r20, 0x02    ; enable the R24-load trigger mode
            out MACCR, r20
            ldd r16, Y+0     ; 32-bit multiplicand -> R16..R19
            ldd r17, Y+1
            ldd r18, Y+2
            ldd r19, Y+3
            ldd r24, Z+0     ; each load fires two (32x4)-bit MACs
            nop
            ldd r24, Z+1
            nop
            ldd r24, Z+2
            nop
            ldd r24, Z+3
            nop
            nop
            ret
    )";
    Machine m(CpuMode::ISE);
    m.loadProgram(assemble(mac_src, "mac.S").words);
    m.writeBytes(0x0200, {0x78, 0x56, 0x34, 0x12});
    m.writeBytes(0x0210, {0xf0, 0xde, 0xbc, 0x9a});
    m.setY(0x0200);
    m.setZ(0x0210);
    m.trace = true;  // watch it run
    uint64_t cycles = m.call(0);
    m.trace = false;

    unsigned long long acc = 0;
    for (int i = 7; i >= 0; i--)
        acc = (acc << 8) | m.reg(i);
    std::printf("  72-bit accumulator R0..R8 = 0x%016llx", acc);
    std::printf(" (expected 0x%016llx)\n",
                0x12345678ULL * 0x9abcdef0ULL);
    std::printf("  %llu cycles total; the 8 MACs rode along in the "
                "load shadows\n",
                static_cast<unsigned long long>(cycles));
    std::printf("  MAC operations performed: %llu\n\n",
                static_cast<unsigned long long>(m.mac().totalMacs()));

    // --- 3. Instruction histogram. -----------------------------------
    std::printf("instruction histogram of the MAC demo:\n");
    for (size_t op = 0; op < m.stats().opCount.size(); op++) {
        if (m.stats().opCount[op] == 0)
            continue;
        std::printf("  %-6s x%llu\n", opName(static_cast<Op>(op)),
                    static_cast<unsigned long long>(
                        m.stats().opCount[op]));
    }
    return acc == 0x12345678ULL * 0x9abcdef0ULL ? 0 : 1;
}
