/**
 * @file
 * Side-channel leakage observability: a WaveSink that prices the
 * per-retirement architectural state of the ISS through a
 * Hamming-weight/Hamming-distance power model into a deterministic
 * synthesized power trace (DESIGN.md, "Leakage observability").
 *
 * One sample is produced per retired instruction, stamped with the
 * cumulative cycle count, as a weighted sum of
 *
 *  - the Hamming distance of the whole register file against the
 *    previous retirement (switching activity of the register write
 *    ports — this includes the 72-bit MAC accumulator R0..R8, whose
 *    single-cycle update is the paper's Fig. 1 datapath),
 *  - the Hamming weight of the data-space bus for loads and stores
 *    (value and address; the address is reconstructed from the
 *    post-retirement pointer state for every LD/ST variant),
 *  - the Hamming weight of the MAC accumulator on retirements that
 *    advanced the MAC unit (the accumulator bus of Fig. 1), and
 *  - deterministic pseudo-Gaussian noise seeded per trace, so two
 *    identical runs synthesize byte-identical traces (the same
 *    rerun-determinism contract the VCD writer pins).
 *
 * Sampling needs the machine's architectural state current after
 * every retirement, which only the reference loop provides: an
 * *active* tracer routes run() through the reference loop, an idle
 * (attached but not armed) tracer leaves every fast-path/superblock
 * instantiation untouched at exactly zero simulated cycles — pinned
 * by tests/test_leakage.cc, mirroring tests/test_vcd.cc.
 */

#ifndef JAAVR_AVR_LEAKAGE_HH
#define JAAVR_AVR_LEAKAGE_HH

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "avr/machine.hh"
#include "support/json.hh"

namespace jaavr
{

/**
 * Power-model coefficients. The defaults weight the register-file
 * switching and the memory bus equally and add mild measurement
 * noise; tests use noiseSigma = 0 for exact fixtures.
 */
struct LeakModel
{
    double wRegHd = 1.0;   ///< register-file Hamming distance
    double wBusHw = 1.0;   ///< load/store bus value+address weight
    double wMacHw = 0.5;   ///< MAC accumulator weight when it stepped
    double noiseSigma = 0; ///< pseudo-Gaussian noise amplitude

    /** One-line description ("hd+hw sigma=1.5") for reports. */
    std::string describe() const;
};

class LeakTracer : public WaveSink
{
  public:
    LeakTracer() = default;
    explicit LeakTracer(const LeakModel &model) : model_(model) {}

    LeakTracer(const LeakTracer &) = delete;
    LeakTracer &operator=(const LeakTracer &) = delete;

    /**
     * Arm the tracer: clear any previous trace, snapshot @p m's
     * register file as the Hamming-distance reference, and reseed the
     * noise stream with @p noise_seed. Recording starts at the
     * machine's next run()/call().
     */
    void begin(const Machine &m, uint64_t noise_seed = 0);

    /** Disarm (captured samples stay readable until the next begin). */
    void end() { armed = false; }

    const LeakModel &model() const { return model_; }
    void setModel(const LeakModel &m) { model_ = m; }

    // WaveSink interface -------------------------------------------------
    bool active() const override { return armed; }
    void onStep(const Machine &m, uint32_t pc, const Inst &inst,
                unsigned cycles) override;
    void onTrap(const Machine &m, const Trap &trap) override;

    /** Synthesized samples, one per retired instruction. */
    const std::vector<float> &samples() const { return trace; }

    /** Cumulative cycle stamp of each sample (same indexing). */
    const std::vector<uint32_t> &stamps() const { return cycleStamps; }

    /** Cycles covered since begin(). */
    uint64_t time() const { return now; }

    /**
     * Record a named marker at the current sample index (harness-side
     * windowing: ladder steps, field-op boundaries). Markers are
     * cleared by begin().
     */
    void mark(const std::string &label);

    /** Markers as (label, sample index) in insertion order. */
    const std::vector<std::pair<std::string, size_t>> &markers() const
    {
        return marks;
    }

    // Exports ------------------------------------------------------------

    /** "sample,cycle,power" CSV; byte-identical across identical runs. */
    bool writeCsv(const std::string &path) const;

    /**
     * NumPy .npy (format 1.0), one float32 vector of the samples —
     * loadable with numpy.load for offline CPA tooling. No timestamps
     * or host info in the header: byte-identical across reruns.
     */
    bool writeNpy(const std::string &path) const;

    /**
     * JSON-lines metadata: one "trace" line (sample count, cycles,
     * model, seed) plus one "marker" line per marker, each prefixed
     * with the fields of @p stamp.
     */
    bool writeMeta(const std::string &path, const JsonLine &stamp) const;

  private:
    double noise();

    LeakModel model_;
    bool armed = false;
    uint64_t now = 0;
    uint64_t seed = 0;
    uint64_t noiseCounter = 0;
    uint64_t lastMacs = 0;
    std::array<uint8_t, 32> prevRegs{};
    std::vector<float> trace;
    std::vector<uint32_t> cycleStamps;
    std::vector<std::pair<std::string, size_t>> marks;
};

} // namespace jaavr

#endif // JAAVR_AVR_LEAKAGE_HH
