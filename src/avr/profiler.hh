/**
 * @file
 * Pluggable execution observers for the JAAVR ISS.
 *
 * A ProfileSink attached to a Machine receives call/return events
 * (CALL/RCALL/ICALL and RET/RETI, plus the synthetic top-level call
 * issued by Machine::call) and — when it asks for them — one event
 * per retired instruction. Both execution paths fire the events: the
 * step() reference path checks the sink pointer per instruction,
 * while the predecoded fast path compiles a separate profiled loop
 * instantiation so the unprofiled loop carries zero overhead
 * (verified by bench_iss_throughput).
 *
 * Two sinks are provided:
 *  - TraceSink: per-instruction disassembly lines in the classic
 *    `--trace` format (cycle count, pc, disassembly);
 *  - CallGraphProfiler: per-routine cycle attribution
 *    (inclusive/exclusive through the avrasm symbol table),
 *    per-routine instruction histograms with per-mnemonic cycle
 *    totals, memory-access counters, stack low/high water marks, and
 *    structured export (text report, JSON-lines records, Chrome
 *    `chrome://tracing` JSON).
 *
 * Sinks are read-only observers: they must not mutate the machine.
 * During the fast path the machine's register file, SREG, PC and
 * ExecStats members are batched in loop locals, so sinks must rely
 * on the event arguments (and Machine::sp(), which is always
 * current) rather than on those members.
 */

#ifndef JAAVR_AVR_PROFILER_HH
#define JAAVR_AVR_PROFILER_HH

#include <array>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "avr/isa.hh"
#include "avrasm/symbol_table.hh"

namespace jaavr
{

class Machine;

/** Observer interface for Machine execution events. */
class ProfileSink
{
  public:
    virtual ~ProfileSink() = default;

    /**
     * Return true to also receive onInst() for every retired
     * instruction (sampled once at attach time; do not change the
     * answer while attached).
     */
    virtual bool wantsInstructions() const { return false; }

    /**
     * A call was executed: @p call_pc is the address of the
     * CALL/RCALL/ICALL (Machine::exitAddress for the synthetic
     * top-level call of Machine::call), @p target the callee entry,
     * @p cycles_after the cumulative cycle count once the call
     * instruction has retired (the callee's start timestamp).
     */
    virtual void onCall(uint32_t call_pc, uint32_t target,
                        uint64_t cycles_after);

    /**
     * A RET/RETI at @p ret_pc resumed execution at @p resume_pc;
     * @p cycles_after includes the return instruction itself.
     */
    virtual void onRet(uint32_t ret_pc, uint32_t resume_pc,
                       uint64_t cycles_after);

    /**
     * Instruction at @p pc retired, costing @p inst_cycles;
     * @p cycles_before is the cumulative cycle count when it began.
     * Only delivered when wantsInstructions() is true. For calls and
     * returns this fires before the matching onCall()/onRet().
     */
    virtual void onInst(uint32_t pc, const Inst &inst,
                        unsigned inst_cycles, uint64_t cycles_before);
};

/**
 * Per-instruction disassembly tracing in the classic stderr format
 * (`%6llu  %04x: %s`). Machine::trace routes through an internal
 * instance with the legacy "info: " prefix, so `--trace`-style
 * output is unchanged; standalone instances can write anywhere.
 */
class TraceSink : public ProfileSink
{
  public:
    explicit TraceSink(std::FILE *out = stderr,
                       std::string line_prefix = "");

    bool wantsInstructions() const override { return true; }
    void onInst(uint32_t pc, const Inst &inst, unsigned inst_cycles,
                uint64_t cycles_before) override;

  private:
    std::FILE *out;
    std::string prefix;
};

/**
 * Call-graph cycle attribution with per-routine instruction
 * histograms. Attaches itself to the machine on construction and
 * detaches on destruction.
 */
class CallGraphProfiler : public ProfileSink
{
  public:
    /** Node address used when instructions retire outside any call. */
    static constexpr uint32_t kTopAddr = 0xffffffffu;

    /** Accumulated per-routine statistics (keyed by entry address). */
    struct Node
    {
        uint64_t calls = 0;
        uint64_t inclusiveCycles = 0; ///< callees included
        uint64_t exclusiveCycles = 0; ///< callees excluded
        // The fields below attribute exclusively (to the innermost
        // active frame) and need histograms to be enabled.
        uint64_t instructions = 0;
        uint64_t loads = 0;  ///< LD/LDD/LDS family
        uint64_t stores = 0; ///< ST/STD/STS family
        std::array<uint64_t, kNumOps> opCount{};
        std::array<uint64_t, kNumOps> opCycles{};

        uint64_t count(Op op) const
        {
            return opCount[static_cast<size_t>(op)];
        }
        uint64_t cyclesOf(Op op) const
        {
            return opCycles[static_cast<size_t>(op)];
        }
    };

    /** One Chrome-trace call event (begin/end pair per frame). */
    struct TraceEvent
    {
        bool begin;
        uint32_t addr;
        uint64_t ts; ///< cycle timestamp

        bool operator==(const TraceEvent &) const = default;
    };

    /**
     * Attach to @p m. @p histograms enables per-instruction events
     * (per-routine histograms, exact stack water marks); @p
     * record_trace keeps the begin/end event list for Chrome-trace
     * export.
     */
    explicit CallGraphProfiler(Machine &m,
                               SymbolTable symbols = SymbolTable(),
                               bool histograms = true,
                               bool record_trace = false);
    ~CallGraphProfiler() override;

    CallGraphProfiler(const CallGraphProfiler &) = delete;
    CallGraphProfiler &operator=(const CallGraphProfiler &) = delete;

    bool wantsInstructions() const override { return histograms; }
    void onCall(uint32_t call_pc, uint32_t target,
                uint64_t cycles_after) override;
    void onRet(uint32_t ret_pc, uint32_t resume_pc,
               uint64_t cycles_after) override;
    void onInst(uint32_t pc, const Inst &inst, unsigned inst_cycles,
                uint64_t cycles_before) override;

    /** Forget everything recorded so far (frames included). */
    void reset();

    const std::map<uint32_t, Node> &nodes() const { return nodeMap; }

    /** Node of the routine entered at @p addr, or nullptr. */
    const Node *node(uint32_t addr) const;

    /** Node of the routine whose symbol is exactly @p name. */
    const Node *nodeByName(const std::string &name) const;

    /** Display name of a node address ("<top>" for kTopAddr). */
    std::string name(uint32_t addr) const;

    /** Currently open call frames. */
    size_t depth() const { return frames.size(); }

    /** RET events that arrived with no open frame (ignored). */
    uint64_t spuriousRets() const { return spurious; }

    /** Lowest / highest SP observed (0 when nothing sampled). */
    uint16_t spLowWater() const { return spSeen ? spMin : 0; }
    uint16_t spHighWater() const { return spSeen ? spMax : 0; }
    /** Peak stack depth in bytes across the observed run. */
    uint16_t stackHighWaterBytes() const
    {
        return spSeen ? static_cast<uint16_t>(spMax - spMin) : 0;
    }

    const std::vector<TraceEvent> &traceEvents() const { return events; }

    /**
     * Human-readable per-routine table, sorted by inclusive cycles
     * (routines at @p max_rows and beyond are summarized).
     */
    std::string textReport(size_t max_rows = 20) const;

    /**
     * Append one JSON-lines record per routine to @p path; every
     * record carries the given bench/workload tags. Returns false if
     * the file cannot be written.
     */
    bool writeJsonLines(const std::string &path,
                        const std::string &bench,
                        const std::string &workload) const;

    /**
     * Write the recorded call events as a Chrome `chrome://tracing`
     * JSON document (one duration pair per call frame; timestamps
     * are simulated cycles). Frames still open are closed at the
     * last recorded timestamp so the document always nests
     * correctly. Requires record_trace; returns false on I/O error.
     */
    bool writeChromeTrace(const std::string &path) const;

  private:
    struct Frame
    {
        uint32_t addr;
        uint64_t entryCycles;
        uint64_t childCycles;
        Node *node;
    };

    void sampleSp();

    Machine *machine;
    SymbolTable symbols;
    bool histograms;
    bool recordTrace;
    std::map<uint32_t, Node> nodeMap;
    std::vector<Frame> frames;
    std::vector<TraceEvent> events;
    Node *topNode; ///< kTopAddr node, used when no frame is open
    uint64_t spurious = 0;
    bool spSeen = false;
    uint16_t spMin = 0;
    uint16_t spMax = 0;
};

} // namespace jaavr

#endif // JAAVR_AVR_PROFILER_HH
