/**
 * @file
 * Deterministic fault injection for the ISS: a FaultInjector arms one
 * FaultPlan — a bit flip in a GPR / SREG / SRAM byte / the R0-R8 MAC
 * accumulator, an instruction skip, or an opcode corruption — and the
 * Machine applies it at the chosen instruction boundary (an absolute
 * trigger delay in cycles, optionally counted from the first arrival
 * at a routine-entry PC resolved through the SymbolTable).
 *
 * The injector is polled by both execution paths at every boundary,
 * through a dedicated runFast<..., Faulted> instantiation so the
 * unarmed fast path carries zero overhead (same pattern as the
 * ProfileSink). A plan fires exactly once; re-running the machine
 * with the injector still attached executes cleanly, which is what
 * lets time-redundant (run-twice-and-compare) countermeasures detect
 * transient faults. Opcode corruption persists in flash like a real
 * program-memory fault; revertFlash() undoes it between campaign
 * trials.
 *
 * Beyond the classic single transient, armSchedule() queues a whole
 * deterministic sequence of plans — each subsequent plan's trigger
 * delay counts from the boundary at which the previous one fired —
 * so campaigns can model burst upsets (N flips at seeded intervals)
 * and the network chaos harness can corrupt several frames in one
 * run. burstPlans() builds such a schedule from a base plan, a count
 * and a seeded jittered gap. The single-shot arm() API and its
 * fires-exactly-once semantics are unchanged.
 */

#ifndef JAAVR_AVR_FAULT_HH
#define JAAVR_AVR_FAULT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace jaavr
{

class Machine;
class Rng;

/** Architectural location a FaultPlan perturbs. */
enum class FaultTarget : uint8_t
{
    Gpr,           ///< XOR mask into register plan.reg
    Sreg,          ///< XOR mask into the status register
    Sram,          ///< XOR mask into data byte plan.sramAddr
    MacAcc,        ///< XOR mask into R0-R8 (the 72-bit MAC accumulator)
    InstSkip,      ///< skip the instruction at the firing boundary
    OpcodeCorrupt, ///< XOR a 16-bit mask into a flash word
};

/** Short stable name for @p target ("gpr", "sreg", ...). */
const char *faultTargetName(FaultTarget target);

/**
 * One deterministic fault: where to perturb, when to trigger, and
 * the XOR mask (campaigns draw 1- or 2-bit masks for the classic
 * single/double bit-flip model). All fields are plain data so a
 * seeded Rng can generate plans reproducibly.
 */
struct FaultPlan
{
    /** flashAddr value meaning "the word at the firing PC". */
    static constexpr uint32_t kCurrentPc = 0xffffffffu;

    FaultTarget target = FaultTarget::Gpr;

    /**
     * Boundary delay in cycles: the plan fires at the first
     * instruction boundary at or after `arm-time cycles +
     * triggerCycle` (or after the entry match, see below).
     */
    uint64_t triggerCycle = 0;

    /**
     * When set, the delay starts counting only once the PC first
     * reaches @p entryPc (a routine entry word from the SymbolTable),
     * so plans can target "N cycles into routine X".
     */
    bool atEntry = false;
    uint32_t entryPc = 0;

    uint8_t reg = 0;       ///< Gpr/MacAcc register index (0-31 / 0-8)
    uint16_t sramAddr = 0; ///< Sram byte address (>= Machine::sramBase)
    uint32_t flashAddr = kCurrentPc; ///< OpcodeCorrupt word address
    uint16_t mask = 1;     ///< XOR mask (byte targets use the low 8 bits)

    /** One-line human-readable description. */
    std::string describe() const;
};

class FaultInjector
{
  public:
    /**
     * Arm @p plan. @p now_cycles is the machine's current absolute
     * cycle count (Machine::stats().cycles), the base the trigger
     * delay counts from for non-entry plans.
     */
    void arm(const FaultPlan &plan, uint64_t now_cycles = 0);

    /**
     * Arm a multi-shot schedule: plans fire in order, and each
     * subsequent plan's trigger delay (or entry wait) starts at the
     * boundary where its predecessor fired. An empty schedule is a
     * disarm.
     */
    void armSchedule(const std::vector<FaultPlan> &plans,
                     uint64_t now_cycles = 0);

    /** Cancel any armed plan and pending schedule without firing. */
    void
    disarm()
    {
        state = State::Idle;
        queue.clear();
        nextIdx = 0;
    }

    /** True while any plan (armed or still queued) has yet to fire. */
    bool pending() const
    {
        return state == State::WaitEntry || state == State::Armed ||
               (state == State::Fired && nextIdx < queue.size());
    }

    /** True once at least one plan has fired. */
    bool fired() const { return state == State::Fired; }

    /** Number of plans that have fired since the last arm. */
    uint64_t firedCount() const { return firedN; }

    /**
     * The plan most recently armed or fired. Immediately after
     * checkFire() returns true this is the plan that just fired (the
     * next queued plan, if any, is loaded at the following boundary).
     */
    const FaultPlan &plan() const { return planV; }

    /** Boundary (cycle count / PC) at which the plan fired. */
    uint64_t firedAtCycle() const { return firedCycle; }
    uint32_t firedAtPc() const { return firedPc; }

    /**
     * Machine-side poll at the instruction boundary (@p pc, absolute
     * @p cycles): advances the trigger state machine and returns true
     * exactly once, when the fault must be applied now.
     */
    bool
    checkFire(uint32_t pc, uint64_t cycles)
    {
        if (state == State::Fired) {
            // Multi-shot: the previous plan fired at an earlier
            // boundary; load the next queued plan now so plan()
            // still named the firing plan when the caller applied it.
            if (nextIdx >= queue.size())
                return false;
            armPlan(queue[nextIdx++], cycles);
        }
        if (state == State::WaitEntry) {
            if (pc != planV.entryPc)
                return false;
            fireAt = cycles + planV.triggerCycle;
            state = State::Armed;
        }
        if (state == State::Armed && cycles >= fireAt) {
            state = State::Fired;
            firedCycle = cycles;
            firedPc = pc;
            firedN++;
            if (planV.target == FaultTarget::OpcodeCorrupt)
                corruptions.emplace_back(
                    planV.flashAddr == FaultPlan::kCurrentPc
                        ? pc
                        : planV.flashAddr,
                    planV.mask);
            return true;
        }
        return false;
    }

    /**
     * Undo every fired OpcodeCorrupt plan's flash mutation on @p m
     * (XOR is involutive). No-op for other targets or unfired plans;
     * call once between campaign trials so a persistent flash fault
     * from one trial cannot leak into the next.
     */
    void revertFlash(Machine &m) const;

  private:
    enum class State : uint8_t { Idle, WaitEntry, Armed, Fired };

    void
    armPlan(const FaultPlan &plan, uint64_t now_cycles)
    {
        planV = plan;
        if (plan.atEntry) {
            state = State::WaitEntry;
            fireAt = 0;
        } else {
            state = State::Armed;
            fireAt = now_cycles + plan.triggerCycle;
        }
    }

    FaultPlan planV;
    State state = State::Idle;
    uint64_t fireAt = 0;
    uint64_t firedCycle = 0;
    uint32_t firedPc = 0;
    uint64_t firedN = 0;
    std::vector<FaultPlan> queue; ///< multi-shot schedule
    size_t nextIdx = 0;           ///< next queue entry to arm
    /** (word address, mask) of every fired flash corruption. */
    std::vector<std::pair<uint32_t, uint16_t>> corruptions;
};

/**
 * Build a deterministic burst schedule: @p count copies of @p base
 * where the first fires after base.triggerCycle and each subsequent
 * one fires @p gap_cycles (+ a seeded jitter in [0, @p jitter])
 * after its predecessor. Entry-triggered bases keep their entry PC
 * on the first shot only; later shots are plain delays, matching how
 * real burst upsets cluster in time rather than on code location.
 */
std::vector<FaultPlan> burstPlans(const FaultPlan &base, size_t count,
                                  uint64_t gap_cycles, uint64_t jitter,
                                  Rng &rng);

} // namespace jaavr

#endif // JAAVR_AVR_FAULT_HH
