/**
 * @file
 * Deterministic fault injection for the ISS: a FaultInjector arms one
 * FaultPlan — a bit flip in a GPR / SREG / SRAM byte / the R0-R8 MAC
 * accumulator, an instruction skip, or an opcode corruption — and the
 * Machine applies it at the chosen instruction boundary (an absolute
 * trigger delay in cycles, optionally counted from the first arrival
 * at a routine-entry PC resolved through the SymbolTable).
 *
 * The injector is polled by both execution paths at every boundary,
 * through a dedicated runFast<..., Faulted> instantiation so the
 * unarmed fast path carries zero overhead (same pattern as the
 * ProfileSink). A plan fires exactly once; re-running the machine
 * with the injector still attached executes cleanly, which is what
 * lets time-redundant (run-twice-and-compare) countermeasures detect
 * transient faults. Opcode corruption persists in flash like a real
 * program-memory fault; revertFlash() undoes it between campaign
 * trials.
 */

#ifndef JAAVR_AVR_FAULT_HH
#define JAAVR_AVR_FAULT_HH

#include <cstdint>
#include <string>

namespace jaavr
{

class Machine;

/** Architectural location a FaultPlan perturbs. */
enum class FaultTarget : uint8_t
{
    Gpr,           ///< XOR mask into register plan.reg
    Sreg,          ///< XOR mask into the status register
    Sram,          ///< XOR mask into data byte plan.sramAddr
    MacAcc,        ///< XOR mask into R0-R8 (the 72-bit MAC accumulator)
    InstSkip,      ///< skip the instruction at the firing boundary
    OpcodeCorrupt, ///< XOR a 16-bit mask into a flash word
};

/** Short stable name for @p target ("gpr", "sreg", ...). */
const char *faultTargetName(FaultTarget target);

/**
 * One deterministic fault: where to perturb, when to trigger, and
 * the XOR mask (campaigns draw 1- or 2-bit masks for the classic
 * single/double bit-flip model). All fields are plain data so a
 * seeded Rng can generate plans reproducibly.
 */
struct FaultPlan
{
    /** flashAddr value meaning "the word at the firing PC". */
    static constexpr uint32_t kCurrentPc = 0xffffffffu;

    FaultTarget target = FaultTarget::Gpr;

    /**
     * Boundary delay in cycles: the plan fires at the first
     * instruction boundary at or after `arm-time cycles +
     * triggerCycle` (or after the entry match, see below).
     */
    uint64_t triggerCycle = 0;

    /**
     * When set, the delay starts counting only once the PC first
     * reaches @p entryPc (a routine entry word from the SymbolTable),
     * so plans can target "N cycles into routine X".
     */
    bool atEntry = false;
    uint32_t entryPc = 0;

    uint8_t reg = 0;       ///< Gpr/MacAcc register index (0-31 / 0-8)
    uint16_t sramAddr = 0; ///< Sram byte address (>= Machine::sramBase)
    uint32_t flashAddr = kCurrentPc; ///< OpcodeCorrupt word address
    uint16_t mask = 1;     ///< XOR mask (byte targets use the low 8 bits)

    /** One-line human-readable description. */
    std::string describe() const;
};

class FaultInjector
{
  public:
    /**
     * Arm @p plan. @p now_cycles is the machine's current absolute
     * cycle count (Machine::stats().cycles), the base the trigger
     * delay counts from for non-entry plans.
     */
    void arm(const FaultPlan &plan, uint64_t now_cycles = 0);

    /** Cancel any armed plan without firing it. */
    void disarm() { state = State::Idle; }

    /** True when a plan is armed and has not fired yet. */
    bool pending() const
    {
        return state == State::WaitEntry || state == State::Armed;
    }

    /** True once the armed plan has fired. */
    bool fired() const { return state == State::Fired; }

    const FaultPlan &plan() const { return planV; }

    /** Boundary (cycle count / PC) at which the plan fired. */
    uint64_t firedAtCycle() const { return firedCycle; }
    uint32_t firedAtPc() const { return firedPc; }

    /**
     * Machine-side poll at the instruction boundary (@p pc, absolute
     * @p cycles): advances the trigger state machine and returns true
     * exactly once, when the fault must be applied now.
     */
    bool
    checkFire(uint32_t pc, uint64_t cycles)
    {
        if (state == State::WaitEntry) {
            if (pc != planV.entryPc)
                return false;
            fireAt = cycles + planV.triggerCycle;
            state = State::Armed;
        }
        if (state == State::Armed && cycles >= fireAt) {
            state = State::Fired;
            firedCycle = cycles;
            firedPc = pc;
            return true;
        }
        return false;
    }

    /**
     * Undo a fired OpcodeCorrupt plan's flash mutation on @p m (XOR
     * is involutive). No-op for other targets or unfired plans; call
     * between campaign trials so a persistent flash fault from one
     * trial cannot leak into the next.
     */
    void revertFlash(Machine &m) const;

  private:
    enum class State : uint8_t { Idle, WaitEntry, Armed, Fired };

    FaultPlan planV;
    State state = State::Idle;
    uint64_t fireAt = 0;
    uint64_t firedCycle = 0;
    uint32_t firedPc = 0;
};

} // namespace jaavr

#endif // JAAVR_AVR_FAULT_HH
