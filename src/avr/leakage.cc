#include "avr/leakage.hh"

#include <bit>
#include <cstdio>

#include "support/logging.hh"

namespace jaavr
{

namespace
{

unsigned
hw(uint32_t v)
{
    return static_cast<unsigned>(std::popcount(v));
}

/** SplitMix64: the same deterministic mixer Rng seeds from. */
uint64_t
mix64(uint64_t z)
{
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Post-retirement register pair @p lo:lo+1 as a 16-bit pointer. */
uint16_t
pair16(const Machine &m, unsigned lo)
{
    return static_cast<uint16_t>(m.reg(lo) |
                                 (static_cast<uint16_t>(m.reg(lo + 1)) << 8));
}

/**
 * Reconstruct the data-space address touched by a retired load/store
 * from the post-retirement machine state. Returns false for
 * instructions without a reconstructable data-space access.
 */
bool
busAddress(const Machine &m, const Inst &inst, uint16_t &addr)
{
    switch (inst.op) {
      case Op::LDS:
      case Op::STS:
        addr = static_cast<uint16_t>(inst.k);
        return true;
      case Op::LDD_Y:
      case Op::STD_Y:
        addr = static_cast<uint16_t>(pair16(m, 28) + inst.disp);
        return true;
      case Op::LDD_Z:
      case Op::STD_Z:
        addr = static_cast<uint16_t>(pair16(m, 30) + inst.disp);
        return true;
      case Op::LD_X:
      case Op::ST_X:
        addr = pair16(m, 26);
        return true;
      // Post-increment: the pointer already moved past the access.
      case Op::LD_X_INC:
      case Op::ST_X_INC:
        addr = static_cast<uint16_t>(pair16(m, 26) - 1);
        return true;
      case Op::LD_Y_INC:
      case Op::ST_Y_INC:
        addr = static_cast<uint16_t>(pair16(m, 28) - 1);
        return true;
      case Op::LD_Z_INC:
      case Op::ST_Z_INC:
        addr = static_cast<uint16_t>(pair16(m, 30) - 1);
        return true;
      // Pre-decrement: the pointer now equals the accessed address.
      case Op::LD_X_DEC:
      case Op::ST_X_DEC:
        addr = pair16(m, 26);
        return true;
      case Op::LD_Y_DEC:
      case Op::ST_Y_DEC:
        addr = pair16(m, 28);
        return true;
      case Op::LD_Z_DEC:
      case Op::ST_Z_DEC:
        addr = pair16(m, 30);
        return true;
      // PUSH stored at SP+1 (SP post-decremented), POP loaded from
      // the post-incremented SP.
      case Op::PUSH:
        addr = static_cast<uint16_t>(m.sp() + 1);
        return true;
      case Op::POP:
        addr = m.sp();
        return true;
      default:
        return false;
    }
}

} // anonymous namespace

std::string
LeakModel::describe() const
{
    return csprintf("hd*%.3g+bus*%.3g+mac*%.3g sigma=%.3g", wRegHd,
                    wBusHw, wMacHw, noiseSigma);
}

void
LeakTracer::begin(const Machine &m, uint64_t noise_seed)
{
    armed = true;
    now = 0;
    seed = noise_seed;
    noiseCounter = 0;
    lastMacs = m.mac().totalMacs();
    for (unsigned i = 0; i < 32; i++)
        prevRegs[i] = m.reg(i);
    trace.clear();
    cycleStamps.clear();
    marks.clear();
}

double
LeakTracer::noise()
{
    if (model_.noiseSigma == 0)
        return 0;
    // Irwin-Hall pseudo-Gaussian: the sum of four deterministic
    // uniforms from the seeded mixer, centered and rescaled to unit
    // sigma. Bit-exact across platforms (pure integer + IEEE double).
    uint64_t r0 = mix64(seed ^ (noiseCounter * 2 + 1));
    uint64_t r1 = mix64(seed ^ (noiseCounter * 2 + 2));
    noiseCounter++;
    double sum = double(uint32_t(r0)) + double(uint32_t(r0 >> 32)) +
                 double(uint32_t(r1)) + double(uint32_t(r1 >> 32));
    double centered = sum / 4294967296.0 - 2.0; // sigma = sqrt(1/3)
    return model_.noiseSigma * centered * 1.7320508075688772;
}

void
LeakTracer::onStep(const Machine &m, uint32_t pc, const Inst &inst,
                   unsigned cycles)
{
    (void)pc;
    now += cycles;

    // Register-file switching: Hamming distance of all 32 registers
    // against the previous retirement (covers ALU results, loads and
    // the single-cycle R0..R8 MAC accumulator update of Fig. 1).
    unsigned reg_hd = 0;
    for (unsigned i = 0; i < 32; i++) {
        uint8_t cur = m.reg(i);
        reg_hd += hw(static_cast<uint8_t>(cur ^ prevRegs[i]));
        prevRegs[i] = cur;
    }

    // Data-space bus: value plus address Hamming weight. The value of
    // a store is the (unchanged) source register; a load's value now
    // sits in the destination register.
    unsigned bus_hw = 0;
    uint16_t addr = 0;
    if (busAddress(m, inst, addr))
        bus_hw = hw(m.reg(inst.rd)) + hw(addr);

    // MAC accumulator bus: priced when this retirement advanced the
    // MAC unit (SWAP trigger or R24-load trigger).
    unsigned mac_hw = 0;
    uint64_t macs = m.mac().totalMacs();
    if (macs != lastMacs) {
        for (unsigned i = 0; i <= 8; i++)
            mac_hw += hw(m.reg(i));
        lastMacs = macs;
    }

    double p = model_.wRegHd * reg_hd + model_.wBusHw * bus_hw +
               model_.wMacHw * mac_hw + noise();
    trace.push_back(static_cast<float>(p));
    cycleStamps.push_back(static_cast<uint32_t>(now));
}

void
LeakTracer::onTrap(const Machine &m, const Trap &trap)
{
    (void)m;
    mark(std::string("trap:") + trapKindName(trap.kind));
}

void
LeakTracer::mark(const std::string &label)
{
    marks.emplace_back(label, trace.size());
}

bool
LeakTracer::writeCsv(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("LeakTracer: cannot write %s", path.c_str());
        return false;
    }
    std::fprintf(f, "sample,cycle,power\n");
    for (size_t i = 0; i < trace.size(); i++)
        std::fprintf(f, "%zu,%u,%.6g\n", i, cycleStamps[i],
                     double(trace[i]));
    std::fclose(f);
    return true;
}

bool
LeakTracer::writeNpy(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        warn("LeakTracer: cannot write %s", path.c_str());
        return false;
    }
    std::string dict = csprintf(
        "{'descr': '<f4', 'fortran_order': False, 'shape': (%zu,), }",
        trace.size());
    // Magic (8) + header length (2) + dict padded to a 64-byte
    // multiple, terminated by newline (NPY format 1.0).
    size_t header = 10 + dict.size() + 1;
    size_t pad = (64 - header % 64) % 64;
    dict += std::string(pad, ' ');
    dict += '\n';
    uint16_t hlen = static_cast<uint16_t>(dict.size());
    std::fwrite("\x93NUMPY\x01\x00", 1, 8, f);
    uint8_t len_le[2] = {static_cast<uint8_t>(hlen),
                         static_cast<uint8_t>(hlen >> 8)};
    std::fwrite(len_le, 1, 2, f);
    std::fwrite(dict.data(), 1, dict.size(), f);
    for (float v : trace) {
        uint32_t bits = std::bit_cast<uint32_t>(v);
        uint8_t le[4] = {static_cast<uint8_t>(bits),
                         static_cast<uint8_t>(bits >> 8),
                         static_cast<uint8_t>(bits >> 16),
                         static_cast<uint8_t>(bits >> 24)};
        std::fwrite(le, 1, 4, f);
    }
    std::fclose(f);
    return true;
}

bool
LeakTracer::writeMeta(const std::string &path, const JsonLine &stamp) const
{
    JsonLine head = stamp;
    head.str("kind", "trace")
        .num("samples", static_cast<uint64_t>(trace.size()))
        .num("cycles", now)
        .num("noise_seed", seed)
        .str("model", model_.describe())
        .num("w_reg_hd", model_.wRegHd)
        .num("w_bus_hw", model_.wBusHw)
        .num("w_mac_hw", model_.wMacHw)
        .num("noise_sigma", model_.noiseSigma);
    if (!appendJsonLine(path, head))
        return false;
    for (const auto &[label, sample] : marks) {
        JsonLine m = stamp;
        m.str("kind", "marker")
            .str("label", label)
            .num("sample", static_cast<uint64_t>(sample));
        if (!appendJsonLine(path, m))
            return false;
    }
    return true;
}

} // namespace jaavr
