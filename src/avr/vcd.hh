/**
 * @file
 * Cycle-accurate VCD (Value Change Dump, IEEE 1364) waveform writer
 * for the ISS, attached through the Machine's WaveSink observer.
 *
 * One VCD time unit is one CPU cycle (declared as 1 us, i.e. a core
 * clocked at 1 MHz, so GTKWave's time axis doubles as a microsecond
 * axis at the paper's reference frequency). Dumped signals:
 *
 *   pc[16], sp[16]        program counter (word address), stack pointer
 *   sreg_i .. sreg_c      the eight SREG bits as individual wires
 *   call_depth[8]         CALL/RCALL/ICALL minus RET/RETI nesting
 *   op[8]                 mnemonic ordinal of the retired instruction
 *   mac_acc[72]           the MAC accumulator R8..R0 (Fig. 1)
 *   mac_cnt[3]            the MAC barrel-shifter nibble counter
 *   mac_shadow[2]         outstanding Algorithm-2 shadow cycles
 *   maccr[8]              the MACCR extension register
 *   trap[4]               TrapKind when a run stops, 0 while running
 *
 * The header carries no date or host information and values are
 * emitted change-only in fixed signal order, so two identical runs
 * produce byte-identical files (pinned by tests/test_vcd.cc).
 *
 * Sampling requires current architectural state after every retired
 * instruction, so an *active* writer routes run() through the
 * reference loop; while closed it is invisible — the fast path runs
 * with exactly zero added cycles (also pinned by tests/test_vcd.cc).
 */

#ifndef JAAVR_AVR_VCD_HH
#define JAAVR_AVR_VCD_HH

#include <cstdint>
#include <cstdio>
#include <string>

#include "avr/machine.hh"

namespace jaavr
{

class VcdWriter : public WaveSink
{
  public:
    VcdWriter() = default;
    ~VcdWriter() override;

    VcdWriter(const VcdWriter &) = delete;
    VcdWriter &operator=(const VcdWriter &) = delete;

    /**
     * Open @p path, emit the header and an initial $dumpvars snapshot
     * of @p m at time 0. Recording starts at the machine's next
     * run()/call(). Returns false (with a warning) if the file cannot
     * be created.
     */
    bool open(const std::string &path, const Machine &m);

    /** Flush and close the dump (also done by the destructor). */
    void close();

    // WaveSink interface -------------------------------------------------
    bool active() const override { return file != nullptr; }
    void onStep(const Machine &m, uint32_t pc, const Inst &inst,
                unsigned cycles) override;
    void onTrap(const Machine &m, const Trap &trap) override;

    /** Current dump time = cumulative cycles since open(). */
    uint64_t time() const { return now; }

    /** Retired instructions sampled since open(). */
    uint64_t samples() const { return sampleCount; }

  private:
    /** Fixed signal indices (also the emission order). */
    enum Sig : unsigned
    {
        SigPc = 0,
        SigSregI, SigSregT, SigSregH, SigSregS,
        SigSregV, SigSregN, SigSregZ, SigSregC,
        SigSp,
        SigCallDepth,
        SigOp,
        SigMacAcc,
        SigMacCnt,
        SigMacShadow,
        SigMaccr,
        SigTrap,
        kNumSigs,
    };

    /** VCD identifier for signal @p s (printable ASCII from '!'). */
    static char id(unsigned s) { return static_cast<char>('!' + s); }

    /** Format the current value of every signal into @p vals. */
    void sample(const Machine &m, uint8_t op_ord, uint8_t trap_ord,
                std::string vals[kNumSigs]) const;

    /** Emit changed signals (all of them when @p force) at time now. */
    void emit(const std::string vals[kNumSigs], bool force);

    std::FILE *file = nullptr;
    uint64_t now = 0;
    uint64_t stampedTime = 0; ///< time of the last '#' record written
    uint64_t sampleCount = 0;
    uint8_t callDepth = 0;
    uint8_t lastOpOrd = 0; ///< op wire value (held across onTrap)
    std::string last[kNumSigs];
};

} // namespace jaavr

#endif // JAAVR_AVR_VCD_HH
