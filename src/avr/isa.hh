/**
 * @file
 * AVR instruction-set definitions: the operation list, the decoded
 * instruction record, the decoder, and the disassembler.
 *
 * The set covers the full ATmega128 ISA as used by compiled and
 * hand-written code (the JAAVR soft core the paper builds on is
 * "fully instruction-set compatible with the original ATmega128").
 */

#ifndef JAAVR_AVR_ISA_HH
#define JAAVR_AVR_ISA_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace jaavr
{

/** AVR operations (addressing variants are distinct entries). */
enum class Op : uint8_t
{
    // Register-register arithmetic and logic.
    ADD, ADC, SUB, SBC, AND, OR, EOR, MOV, CP, CPC, CPSE, MUL,
    MULS, MULSU, FMUL, FMULS, FMULSU, MOVW,
    // Register-immediate.
    SUBI, SBCI, ANDI, ORI, CPI, LDI,
    // 16-bit immediate pairs.
    ADIW, SBIW,
    // Single-register.
    COM, NEG, SWAP, INC, DEC, ASR, LSR, ROR,
    // Flag and bit manipulation.
    BSET, BCLR, BLD, BST, SBI, CBI, SBIC, SBIS,
    // I/O.
    IN, OUT,
    // Data transfer.
    LD_X, LD_X_INC, LD_X_DEC,
    LDD_Y, LD_Y_INC, LD_Y_DEC,
    LDD_Z, LD_Z_INC, LD_Z_DEC,
    LDS,
    ST_X, ST_X_INC, ST_X_DEC,
    STD_Y, ST_Y_INC, ST_Y_DEC,
    STD_Z, ST_Z_INC, ST_Z_DEC,
    STS,
    PUSH, POP,
    LPM_R0, LPM, LPM_INC,
    // Control flow.
    RJMP, RCALL, JMP, CALL, RET, RETI, IJMP, ICALL,
    BRBS, BRBC, SBRC, SBRS,
    // Misc.
    NOP, SLEEP, WDR, BREAK,

    INVALID,
};

/** Number of Op values (INVALID included); sizes per-op tables. */
constexpr std::size_t kNumOps = static_cast<std::size_t>(Op::INVALID) + 1;

/** Decoded instruction. */
struct Inst
{
    Op op = Op::INVALID;
    uint8_t rd = 0;    ///< destination register index
    uint8_t rr = 0;    ///< source register index
    uint8_t imm = 0;   ///< 8-bit immediate / I/O address / bit index
    uint8_t bit = 0;   ///< bit number (BLD/BST/SBRC/BRBS/...)
    int16_t disp = 0;  ///< signed branch displacement (words) / LDD q
    uint32_t k = 0;    ///< 16/22-bit absolute address (LDS/STS/JMP/CALL)
    uint8_t words = 1; ///< encoding length in 16-bit words
};

/**
 * Decode an instruction from its first word @p w0 and (for two-word
 * encodings) the following word @p w1. Returns Op::INVALID for
 * reserved encodings.
 */
Inst decode(uint16_t w0, uint16_t w1);

/**
 * Canonicalized synonym encodings. On the AVR four common mnemonics
 * are not distinct opcodes at all but register-register instructions
 * with rd == rr (LSL Rd = ADD Rd,Rd; ROL Rd = ADC Rd,Rd; TST Rd =
 * AND Rd,Rd; CLR Rd = EOR Rd,Rd), so decode() folds them into their
 * canonical Op implicitly. synonymOf() recovers the classification:
 * the superblock translator uses it to emit specialized single-operand
 * handler shapes, and disassemble() prints the idiomatic mnemonic.
 * The exhaustive 65536-word suite (tests/test_superblock.cc) proves
 * the canonical execution is bit-identical for every such word.
 */
enum class Synonym : uint8_t
{
    None = 0,
    LSL, ///< ADD Rd,Rd — logical shift left
    ROL, ///< ADC Rd,Rd — rotate left through carry
    TST, ///< AND Rd,Rd — test for zero or minus
    CLR, ///< EOR Rd,Rd — clear register
};

/** Synonym classification of a decoded instruction (None if plain). */
Synonym synonymOf(const Inst &inst);

/** Mnemonic of an operation. */
const char *opName(Op op);

/** Human-readable disassembly ("ldd r24, Z+3"). */
std::string disassemble(const Inst &inst);

/** True for 2-word encodings (needed by skip instructions). */
bool isTwoWord(uint16_t w0);

/** True for the data-space load family (LD/LDD/LDS). */
bool isLoadOp(Op op);

/** True for the data-space store family (ST/STD/STS). */
bool isStoreOp(Op op);

} // namespace jaavr

#endif // JAAVR_AVR_ISA_HH
