#include "avr/vcd.hh"

#include "support/logging.hh"

namespace jaavr
{

VcdWriter::~VcdWriter()
{
    close();
}

bool
VcdWriter::open(const std::string &path, const Machine &m)
{
    close();
    file = std::fopen(path.c_str(), "w");
    if (!file) {
        warn("vcd: cannot create %s", path.c_str());
        return false;
    }
    now = 0;
    stampedTime = 0;
    sampleCount = 0;
    callDepth = 0;
    lastOpOrd = 0;

    // Deliberately no $date/$version host info: identical runs must
    // produce byte-identical dumps (tests/test_vcd.cc).
    std::fprintf(file,
                 "$comment jaavr ISS cycle-accurate dump; "
                 "1 time unit = 1 cycle (1 MHz core) $end\n");
    std::fprintf(file, "$timescale 1 us $end\n");
    std::fprintf(file, "$scope module jaavr $end\n");
    static const struct { unsigned width; const char *name; }
    defs[kNumSigs] = {
        {16, "pc"},
        {1, "sreg_i"}, {1, "sreg_t"}, {1, "sreg_h"}, {1, "sreg_s"},
        {1, "sreg_v"}, {1, "sreg_n"}, {1, "sreg_z"}, {1, "sreg_c"},
        {16, "sp"},
        {8, "call_depth"},
        {8, "op"},
        {72, "mac_acc"},
        {3, "mac_cnt"},
        {2, "mac_shadow"},
        {8, "maccr"},
        {4, "trap"},
    };
    for (unsigned s = 0; s < kNumSigs; s++)
        std::fprintf(file, "$var wire %u %c %s $end\n", defs[s].width,
                     id(s), defs[s].name);
    std::fprintf(file, "$upscope $end\n");
    std::fprintf(file, "$enddefinitions $end\n");

    std::string vals[kNumSigs];
    sample(m, 0, 0, vals);
    std::fprintf(file, "#0\n$dumpvars\n");
    for (unsigned s = 0; s < kNumSigs; s++) {
        std::fprintf(file, "%s\n", vals[s].c_str());
        last[s] = vals[s];
    }
    std::fprintf(file, "$end\n");
    return true;
}

void
VcdWriter::close()
{
    if (!file)
        return;
    std::fclose(file);
    file = nullptr;
    for (auto &v : last)
        v.clear();
}

void
VcdWriter::sample(const Machine &m, uint8_t op_ord, uint8_t trap_ord,
                  std::string vals[kNumSigs]) const
{
    auto vec = [](unsigned s, uint64_t v, unsigned width) {
        std::string out = "b";
        for (int b = static_cast<int>(width) - 1; b >= 0; b--)
            out += static_cast<char>('0' + ((v >> b) & 1));
        out += ' ';
        out += id(s);
        return out;
    };
    auto bit = [](unsigned s, bool v) {
        std::string out;
        out += static_cast<char>('0' + v);
        out += id(s);
        return out;
    };

    vals[SigPc] = vec(SigPc, m.pc(), 16);
    uint8_t sreg = m.sreg();
    // Machine SREG bit order (LSB first): C Z N V S H T I.
    vals[SigSregI] = bit(SigSregI, (sreg >> 7) & 1);
    vals[SigSregT] = bit(SigSregT, (sreg >> 6) & 1);
    vals[SigSregH] = bit(SigSregH, (sreg >> 5) & 1);
    vals[SigSregS] = bit(SigSregS, (sreg >> 4) & 1);
    vals[SigSregV] = bit(SigSregV, (sreg >> 3) & 1);
    vals[SigSregN] = bit(SigSregN, (sreg >> 2) & 1);
    vals[SigSregZ] = bit(SigSregZ, (sreg >> 1) & 1);
    vals[SigSregC] = bit(SigSregC, (sreg >> 0) & 1);
    vals[SigSp] = vec(SigSp, m.sp(), 16);
    vals[SigCallDepth] = vec(SigCallDepth, callDepth, 8);
    vals[SigOp] = vec(SigOp, op_ord, 8);

    // The 72-bit MAC accumulator R8..R0 (R8 = most significant byte).
    std::string acc = "b";
    for (int i = 8; i >= 0; i--) {
        uint8_t byte = m.reg(static_cast<unsigned>(i));
        for (int b = 7; b >= 0; b--)
            acc += static_cast<char>('0' + ((byte >> b) & 1));
    }
    acc += ' ';
    acc += id(SigMacAcc);
    vals[SigMacAcc] = acc;

    vals[SigMacCnt] = vec(SigMacCnt, m.mac().shiftCounter(), 3);
    vals[SigMacShadow] = vec(SigMacShadow, m.mac().pendingShadow(), 2);
    vals[SigMaccr] = vec(SigMaccr, m.maccr(), 8);
    vals[SigTrap] = vec(SigTrap, trap_ord, 4);
}

void
VcdWriter::emit(const std::string vals[kNumSigs], bool force)
{
    for (unsigned s = 0; s < kNumSigs; s++) {
        if (!force && vals[s] == last[s])
            continue;
        if (stampedTime != now) {
            std::fprintf(file, "#%llu\n",
                         static_cast<unsigned long long>(now));
            stampedTime = now;
        }
        std::fprintf(file, "%s\n", vals[s].c_str());
        last[s] = vals[s];
    }
}

void
VcdWriter::onStep(const Machine &m, uint32_t pc, const Inst &inst,
                  unsigned cycles)
{
    (void)pc; // the machine's PC (next fetch address) is what's dumped
    if (!file)
        return;
    if (inst.op == Op::CALL || inst.op == Op::RCALL ||
        inst.op == Op::ICALL)
        callDepth++;
    else if ((inst.op == Op::RET || inst.op == Op::RETI) && callDepth)
        callDepth--;
    now += cycles;
    lastOpOrd = static_cast<uint8_t>(inst.op);
    std::string vals[kNumSigs];
    sample(m, lastOpOrd, 0, vals);
    emit(vals, false);
    sampleCount++;
}

void
VcdWriter::onTrap(const Machine &m, const Trap &trap)
{
    if (!file)
        return;
    std::string vals[kNumSigs];
    sample(m, lastOpOrd, static_cast<uint8_t>(trap.kind), vals);
    emit(vals, false);
}

} // namespace jaavr
