/**
 * @file
 * Branchless SREG flag evaluation shared by the predecoded fast path
 * (machine.cc, runFast) and the superblock backend (superblock.cc):
 * one read-modify-write of SREG per instruction instead of one per
 * flag. The reference path (Machine::step) keeps the original
 * setFlag-based helpers; tests/test_decode_cache.cc and
 * tests/test_superblock.cc pin all paths to bit-identical SREG
 * values.
 */

#ifndef JAAVR_AVR_FLAGS_HH
#define JAAVR_AVR_FLAGS_HH

#include <cstdint>

namespace jaavr
{

// SREG bit masks (bit order as in Machine: C Z N V S H T I).
inline constexpr uint8_t sregC = 0x01, sregZ = 0x02, sregN = 0x04,
                         sregV = 0x08, sregS = 0x10, sregH = 0x20,
                         sregT = 0x40, sregI = 0x80;

/** addFlags(): writes H, S, V, N, Z, C. */
inline void
addFlagsB(uint8_t &sreg, uint8_t d, uint8_t s, uint8_t r)
{
    uint8_t carries = (d & s) | (s & ~r) | (~r & d);
    uint8_t ovf = (d & s & ~r) | (~d & ~s & r);
    uint8_t n = (r >> 7) & 1;
    uint8_t v = (ovf >> 7) & 1;
    uint8_t f = static_cast<uint8_t>((carries >> 7) & 1);      // C
    f |= static_cast<uint8_t>(r == 0) << 1;                    // Z
    f |= n << 2;                                               // N
    f |= v << 3;                                               // V
    f |= (n ^ v) << 4;                                         // S
    f |= ((carries >> 3) & 1) << 5;                            // H
    sreg = (sreg & 0xc0) | f;
}

/** subFlags(): writes H, S, V, N, Z, C; Z sticky when @p keep_z. */
inline void
subFlagsB(uint8_t &sreg, uint8_t d, uint8_t s, uint8_t r, bool keep_z)
{
    uint8_t borrows = (~d & s) | (s & r) | (r & ~d);
    uint8_t ovf = (d & ~s & ~r) | (~d & s & r);
    uint8_t n = (r >> 7) & 1;
    uint8_t v = (ovf >> 7) & 1;
    uint8_t z = static_cast<uint8_t>(r == 0);
    if (keep_z)  // constant at every call site
        z &= (sreg >> 1) & 1;
    uint8_t f = static_cast<uint8_t>((borrows >> 7) & 1);
    f |= z << 1;
    f |= n << 2;
    f |= v << 3;
    f |= (n ^ v) << 4;
    f |= ((borrows >> 3) & 1) << 5;
    sreg = (sreg & 0xc0) | f;
}

/** AND/OR/EOR flags: V=0, S=N, plus N and Z; C and H untouched. */
inline void
logicFlagsB(uint8_t &sreg, uint8_t r)
{
    uint8_t n = (r >> 7) & 1;
    uint8_t f = static_cast<uint8_t>(static_cast<uint8_t>(r == 0) << 1 |
                                     n << 2 | n << 4);
    sreg = (sreg & ~(sregZ | sregN | sregV | sregS)) | f;
}

/** INC/DEC flags: S, V (given), N, Z; C and H untouched. */
inline void
incDecFlagsB(uint8_t &sreg, uint8_t r, bool v)
{
    uint8_t n = (r >> 7) & 1;
    uint8_t vb = v ? 1 : 0;
    uint8_t f = static_cast<uint8_t>(static_cast<uint8_t>(r == 0) << 1 |
                                     n << 2 | vb << 3 | (n ^ vb) << 4);
    sreg = (sreg & ~(sregZ | sregN | sregV | sregS)) | f;
}

/** ASR/LSR/ROR flags: S, V=N^C, N, Z, C; H untouched. */
inline void
shiftFlagsB(uint8_t &sreg, uint8_t r, uint8_t carry_bit)
{
    uint8_t n = (r >> 7) & 1;
    uint8_t c = carry_bit & 1;
    uint8_t v = n ^ c;
    uint8_t f = static_cast<uint8_t>(c | static_cast<uint8_t>(r == 0) << 1 |
                                     n << 2 | v << 3 | (n ^ v) << 4);
    sreg = (sreg & ~(sregC | sregZ | sregN | sregV | sregS)) | f;
}

/** ADIW/SBIW flags on the 16-bit result: S, V, N, Z, C; H untouched. */
inline void
wideFlagsB(uint8_t &sreg, uint16_t r, bool v, bool c)
{
    uint8_t n = (r >> 15) & 1;
    uint8_t vb = v ? 1 : 0;
    uint8_t f = static_cast<uint8_t>((c ? 1 : 0) |
                                     static_cast<uint8_t>(r == 0) << 1 |
                                     n << 2 | vb << 3 | (n ^ vb) << 4);
    sreg = (sreg & ~(sregC | sregZ | sregN | sregV | sregS)) | f;
}

/** MUL/MULS/MULSU/FMUL* flags: Z and C only. */
inline void
mulFlagsB(uint8_t &sreg, uint16_t product, bool carry)
{
    uint8_t f = static_cast<uint8_t>((carry ? 1 : 0) |
                                     static_cast<uint8_t>(product == 0)
                                         << 1);
    sreg = (sreg & ~(sregC | sregZ)) | f;
}

} // namespace jaavr

#endif // JAAVR_AVR_FLAGS_HH
