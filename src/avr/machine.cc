#include "avr/machine.hh"

#include <cstdlib>
#include <cstring>

#include "avr/fault.hh"
#include "avr/flags.hh"
#include "avr/profiler.hh"
#include "avr/superblock.hh"
#include "support/logging.hh"
#include "support/metrics.hh"

namespace jaavr
{

namespace
{

bool
envForceReference()
{
    const char *v = std::getenv("JAAVR_ISS_REFERENCE");
    return v && *v && *v != '0';
}

/**
 * JAAVR_ISS_BACKEND=reference|fast|superblock. Unset or unknown
 * values keep the default (Superblock); the separate
 * JAAVR_ISS_REFERENCE=1 switch still wins in run().
 */
IssBackend
envBackend()
{
    const char *v = std::getenv("JAAVR_ISS_BACKEND");
    if (!v || !*v)
        return IssBackend::Superblock;
    if (!std::strcmp(v, "reference"))
        return IssBackend::Reference;
    if (!std::strcmp(v, "fast"))
        return IssBackend::Fast;
    if (!std::strcmp(v, "superblock"))
        return IssBackend::Superblock;
    warn("ignoring unknown JAAVR_ISS_BACKEND=%s "
         "(reference|fast|superblock)", v);
    return IssBackend::Superblock;
}

// Short local aliases for the shared SREG masks (avr/flags.hh); the
// branchless *FlagsB helpers themselves now live there so the
// superblock backend can share them.
constexpr uint8_t mC = sregC, mZ = sregZ, mN = sregN, mV = sregV,
                  mS = sregS;

} // anonymous namespace

const char *
issBackendName(IssBackend backend)
{
    switch (backend) {
      case IssBackend::Reference: return "reference";
      case IssBackend::Fast: return "fast";
      case IssBackend::Superblock: return "superblock";
    }
    return "?";
}

const char *
trapKindName(TrapKind kind)
{
    switch (kind) {
      case TrapKind::None: return "none";
      case TrapKind::IllegalOpcode: return "illegal_opcode";
      case TrapKind::FlashOutOfBounds: return "flash_oob";
      case TrapKind::SramOutOfBounds: return "sram_oob";
      case TrapKind::StackOverflow: return "stack_overflow";
      case TrapKind::CycleBudget: return "cycle_budget";
      case TrapKind::MacHazard: return "mac_hazard";
      case TrapKind::DebugBreak: return "debug_break";
    }
    return "?";
}

std::string
Trap::describe() const
{
    switch (kind) {
      case TrapKind::None:
        return "no trap";
      case TrapKind::IllegalOpcode:
        return csprintf("illegal opcode 0x%04x at pc=0x%x", addr, pc);
      case TrapKind::FlashOutOfBounds:
        return csprintf("erased flash executed at pc=0x%x", pc);
      case TrapKind::SramOutOfBounds:
        return csprintf("data access beyond SRAM at 0x%04x (pc=0x%x)",
                        addr, pc);
      case TrapKind::StackOverflow:
        return csprintf("stack overflow into data segment at 0x%04x "
                        "(pc=0x%x)", addr, pc);
      case TrapKind::CycleBudget:
        return csprintf("cycle budget exceeded (pc=0x%x)", pc);
      case TrapKind::MacHazard:
        return addr ? csprintf("MAC hazard: back-to-back Algorithm-2 "
                               "triggers (pc=0x%x)", pc)
                    : csprintf("MAC hazard: shadow register touched "
                               "(pc=0x%x)", pc);
      case TrapKind::DebugBreak:
        return csprintf("debug stop at pc=0x%x", pc);
    }
    return "?";
}

Machine::Machine(CpuMode mode)
    : forceReference(envForceReference()),
      cpuMode(mode),
      sram(dataSpace - sramBase, 0),
      flash(flashWords, 0xffff),
      backendV(envBackend())
{
    // Erased flash is uniform, so one decode fills the whole cache.
    decodeCache.assign(flashWords, makeDecoded(0xffff, 0xffff));
    reset();
}

Machine::~Machine() = default;

void
Machine::setProfiler(ProfileSink *sink)
{
    profSink = sink;
    profWantsInst = sink && sink->wantsInstructions();
}

void
Machine::loadProgram(const std::vector<uint16_t> &words, uint32_t word_addr)
{
    if (word_addr + words.size() > flashWords)
        fatal("Machine::loadProgram: program does not fit in flash");
    for (size_t i = 0; i < words.size(); i++)
        flash[word_addr + i] = words[i];
    // Refresh the predecode cache over [word_addr - 1, word_addr + n):
    // the preceding word is included because the store may have
    // changed its two-word operand.
    for (size_t i = 0; i <= words.size(); i++) {
        uint32_t a = (word_addr + static_cast<uint32_t>(i) - 1) &
                     (flashWords - 1);
        decodeCache[a] = makeDecoded(flash[a], fetch(a + 1));
    }
    // Translated traces may span the rewritten region (or chain into
    // it); invalidate conservatively. Covers the GDB flash-patch path
    // (DebugTarget::writeMemory routes flash writes through here).
    if (sbCache)
        sbCache->invalidateAll();
}

void
Machine::corruptFlashWord(uint32_t word_addr, uint16_t mask)
{
    uint32_t a = word_addr & (flashWords - 1);
    flash[a] ^= mask;
    decodeCache[a] = makeDecoded(flash[a], fetch(a + 1));
    // The predecessor's two-word operand may have been this word.
    uint32_t prev = (a - 1) & (flashWords - 1);
    decodeCache[prev] = makeDecoded(flash[prev], flash[a]);
    // Self-modifying flash (fault injection, GDB patches): any
    // translated trace may embed the old word, so drop them all.
    if (sbCache)
        sbCache->invalidateAll();
}

DecodedInst
Machine::makeDecoded(uint16_t w0, uint16_t w1) const
{
    DecodedInst d;
    d.inst = decode(w0, w1);
    d.cycles = baseCycleTable(cpuMode)[static_cast<size_t>(d.inst.op)];
    d.touchesMac = touchesMacRegs(d.inst);
    d.macLoadForm =
        d.inst.rd == 24 &&
        (d.inst.op == Op::LDD_Y || d.inst.op == Op::LDD_Z ||
         d.inst.op == Op::LD_X || d.inst.op == Op::LD_X_INC ||
         d.inst.op == Op::LD_Y_INC || d.inst.op == Op::LD_Z_INC ||
         d.inst.op == Op::LDS);
    // Canonicalization: classify synonym encodings (LSL=ADD Rd,Rd,
    // ROL=ADC, TST=AND, CLR=EOR) once at predecode so the superblock
    // translator can emit specialized single-operand handlers.
    d.synonym = synonymOf(d.inst);
    return d;
}

void
Machine::reset()
{
    regs.fill(0);
    io.fill(0);
    std::fill(sram.begin(), sram.end(), 0);
    sregBits = 0;
    pcWord = 0;
    pendingTrap = Trap();
    macUnit.reset();
    execStats.reset();
    setSp(0x10ff);  // top of the ATmega128's internal SRAM
}

uint16_t
Machine::regPair(unsigned i) const
{
    return static_cast<uint16_t>(regs[i]) |
           (static_cast<uint16_t>(regs[i + 1]) << 8);
}

void
Machine::setRegPair(unsigned i, uint16_t v)
{
    regs[i] = static_cast<uint8_t>(v);
    regs[i + 1] = static_cast<uint8_t>(v >> 8);
}

uint8_t
Machine::readData(uint16_t addr) const
{
    if (addr < 0x20)
        return regs[addr];
    if (addr < 0x60) {
        uint8_t ioaddr = addr - ioBase;
        if (ioaddr == 0x3f)
            return sregBits;
        return io[ioaddr];
    }
    if (addr < sramBase)
        return 0;  // extended I/O, unused on this ASIP
    return sram[addr - sramBase];
}

void
Machine::writeData(uint16_t addr, uint8_t v)
{
    if (addr < 0x20) {
        regs[addr] = v;
        return;
    }
    if (addr < 0x60) {
        uint8_t ioaddr = addr - ioBase;
        if (ioaddr == 0x3f) {
            sregBits = v;
            return;
        }
        if (ioaddr == ioMaccr)
            macUnit.reset();
        io[ioaddr] = v;
        return;
    }
    if (addr < sramBase)
        return;
    sram[addr - sramBase] = v;
}

void
Machine::writeBytes(uint16_t addr, const std::vector<uint8_t> &bytes)
{
    for (size_t i = 0; i < bytes.size(); i++)
        writeData(addr + i, bytes[i]);
}

std::vector<uint8_t>
Machine::readBytes(uint16_t addr, size_t len) const
{
    std::vector<uint8_t> out(len);
    for (size_t i = 0; i < len; i++)
        out[i] = readData(addr + i);
    return out;
}

uint16_t
Machine::sp() const
{
    return static_cast<uint16_t>(io[0x3d]) |
           (static_cast<uint16_t>(io[0x3e]) << 8);
}

void
Machine::setSp(uint16_t v)
{
    io[0x3d] = static_cast<uint8_t>(v);
    io[0x3e] = static_cast<uint8_t>(v >> 8);
}

void
Machine::setMaccr(uint8_t v)
{
    macUnit.reset();
    io[ioMaccr] = v;
}

void
Machine::setFlag(unsigned f, bool v)
{
    if (v)
        sregBits |= 1u << f;
    else
        sregBits &= ~(1u << f);
}

void
Machine::setZns(uint8_t r)
{
    setFlag(fZ, r == 0);
    setFlag(fN, r & 0x80);
    setFlag(fS, flag(fN) != flag(fV));
}

void
Machine::addFlags(uint8_t d, uint8_t s, uint8_t r)
{
    setFlag(fH, ((d & s) | (s & ~r) | (~r & d)) & 0x08);
    setFlag(fC, ((d & s) | (s & ~r) | (~r & d)) & 0x80);
    setFlag(fV, ((d & s & ~r) | (~d & ~s & r)) & 0x80);
    setZns(r);
}

void
Machine::subFlags(uint8_t d, uint8_t s, uint8_t r, bool keep_z)
{
    setFlag(fH, ((~d & s) | (s & r) | (r & ~d)) & 0x08);
    setFlag(fC, ((~d & s) | (s & r) | (r & ~d)) & 0x80);
    setFlag(fV, ((d & ~s & ~r) | (~d & s & r)) & 0x80);
    setFlag(fN, r & 0x80);
    setFlag(fS, flag(fN) != flag(fV));
    if (keep_z)
        setFlag(fZ, (r == 0) && flag(fZ));
    else
        setFlag(fZ, r == 0);
}

void
Machine::push8(uint8_t v)
{
    writeData(sp(), v);
    setSp(sp() - 1);
}

uint8_t
Machine::pop8()
{
    setSp(sp() + 1);
    return readData(sp());
}

void
Machine::pushPc(uint32_t pc)
{
    // Low byte pushed first, high byte second (popped in reverse).
    push8(static_cast<uint8_t>(pc));
    push8(static_cast<uint8_t>(pc >> 8));
}

uint32_t
Machine::popPc()
{
    uint32_t hi = pop8();
    uint32_t lo = pop8();
    return (hi << 8) | lo;
}

uint16_t
Machine::fetch(uint32_t word_addr) const
{
    return flash[word_addr & (flashWords - 1)];
}

bool
Machine::touchesMacRegs(const Inst &inst) const
{
    auto in_set = [](unsigned r) { return r <= 8 || (r >= 16 && r <= 19); };

    switch (inst.op) {
      // MUL family writes R1:R0 and reads rd/rr.
      case Op::MUL: case Op::MULS: case Op::MULSU:
      case Op::FMUL: case Op::FMULS: case Op::FMULSU:
        return true;
      case Op::MOVW:
        return in_set(inst.rd) || in_set(inst.rd + 1) ||
               in_set(inst.rr) || in_set(inst.rr + 1);
      case Op::ADIW: case Op::SBIW:
        return in_set(inst.rd) || in_set(inst.rd + 1);
      // Two-register ops.
      case Op::ADD: case Op::ADC: case Op::SUB: case Op::SBC:
      case Op::AND: case Op::OR: case Op::EOR: case Op::MOV:
      case Op::CP: case Op::CPC: case Op::CPSE:
        return in_set(inst.rd) || in_set(inst.rr);
      // Single-register ops (loads/stores/immediates included).
      case Op::SUBI: case Op::SBCI: case Op::ANDI: case Op::ORI:
      case Op::CPI: case Op::LDI: case Op::COM: case Op::NEG:
      case Op::SWAP: case Op::INC: case Op::DEC: case Op::ASR:
      case Op::LSR: case Op::ROR: case Op::BLD: case Op::BST:
      case Op::SBRC: case Op::SBRS: case Op::IN: case Op::OUT:
      case Op::PUSH: case Op::POP: case Op::LDS: case Op::STS:
      case Op::LD_X: case Op::LD_X_INC: case Op::LD_X_DEC:
      case Op::LDD_Y: case Op::LD_Y_INC: case Op::LD_Y_DEC:
      case Op::LDD_Z: case Op::LD_Z_INC: case Op::LD_Z_DEC:
      case Op::ST_X: case Op::ST_X_INC: case Op::ST_X_DEC:
      case Op::STD_Y: case Op::ST_Y_INC: case Op::ST_Y_DEC:
      case Op::STD_Z: case Op::ST_Z_INC: case Op::ST_Z_DEC:
      case Op::LPM: case Op::LPM_INC:
        return in_set(inst.rd);
      case Op::LPM_R0:
        return true;  // writes R0
      default:
        return false;
    }
}

void
Machine::triggerLoadMac(uint8_t value)
{
    // The two micro-MACs are applied immediately; the shadow counter
    // plus the hazard checks in step() make that indistinguishable
    // from the real one-per-following-cycle retirement.
    macUnit.macLoad(regs, value);
}

unsigned
Machine::step()
{
    pendingTrap = Trap();
    uint32_t pc0 = pcWord;
    uint16_t w0 = fetch(pc0);
    uint16_t w1 = fetch(pc0 + 1);
    Inst inst = decode(w0, w1);

    if (inst.op == Op::INVALID) {
        pendingTrap = Trap{w0 == 0xffff ? TrapKind::FlashOutOfBounds
                                        : TrapKind::IllegalOpcode,
                           pc0, w0};
        return 0;
    }

    if (trace) {
        // The legacy stderr dump, now routed through a TraceSink
        // (pre-execution, so a panicking instruction still prints).
        if (!ownedTrace)
            ownedTrace = std::make_unique<TraceSink>(stderr, "info: ");
        ownedTrace->onInst(pc0, inst, 0, execStats.cycles);
    }

    // MAC shadow hazard check (Algorithm 2's 13-register rule): the
    // instructions executing while MAC micro-ops are pending must not
    // touch {R0..R8, R16..R19}. A new R24 load is allowed (pipelined
    // retriggering) unless both micro-ops of the previous trigger are
    // still outstanding.
    bool ise = cpuMode == CpuMode::ISE;
    bool load_mac = ise && (io[ioMaccr] & MacUnit::ctrlLoadMode);
    bool swap_mac = ise && (io[ioMaccr] & MacUnit::ctrlSwapMode);
    const uint8_t shadow = macUnit.pendingShadow();
    bool is_r24_load =
        load_mac && inst.rd == 24 &&
        (inst.op == Op::LDD_Y || inst.op == Op::LDD_Z ||
         inst.op == Op::LD_X || inst.op == Op::LD_X_INC ||
         inst.op == Op::LD_Y_INC || inst.op == Op::LD_Z_INC ||
         inst.op == Op::LDS);
    if (shadow > 0 && touchesMacRegs(inst) && !is_r24_load) {
        pendingTrap = Trap{TrapKind::MacHazard, pc0, 0};
        return 0;
    }
    if (shadow >= 2 && is_r24_load) {
        pendingTrap = Trap{TrapKind::MacHazard, pc0, 1};
        return 0;
    }

    uint32_t next_pc = pc0 + inst.words;
    unsigned cycles = baseCycles(inst.op, cpuMode);
    bool mac_triggered = false;

    auto ld_trigger = [&](uint8_t v, uint8_t rd) {
        if (load_mac && rd == 24) {
            triggerLoadMac(v);
            mac_triggered = true;
        }
    };

    // Guarded data-space access: the fast path mirrors these checks
    // byte for byte in its loadMem/storeMem/pushB lambdas so a
    // trapping instruction leaves identical partial state (e.g. a
    // pre-decremented X pointer) on both paths. I/O-space accesses
    // (IN/OUT/SBI/CBI, addresses < sramBase) stay unguarded.
    TrapKind trap_kind = TrapKind::None;
    uint16_t trap_addr = 0;
    auto ldG = [&](uint16_t a) -> uint8_t {
        if (dbgHook)
            dbgHook->onLoad(a);
        if (a >= sramBase && a > dataLimitV) {
            trap_kind = TrapKind::SramOutOfBounds;
            trap_addr = a;
            return 0xff;
        }
        return readData(a);
    };
    auto stG = [&](uint16_t a, uint8_t v) {
        if (dbgHook)
            dbgHook->onStore(a);
        if (a >= sramBase && a > dataLimitV) {
            trap_kind = TrapKind::SramOutOfBounds;
            trap_addr = a;
            return;
        }
        writeData(a, v);
    };
    auto pushG = [&](uint8_t v) {
        uint16_t a = sp();
        if (a < stackGuardV) {
            trap_kind = TrapKind::StackOverflow;
            trap_addr = a;
            return;
        }
        stG(a, v);
        if (trap_kind == TrapKind::None)
            setSp(a - 1);
    };
    auto popG = [&]() -> uint8_t {
        setSp(sp() + 1);
        return ldG(sp());
    };
    auto pushPcG = [&](uint32_t ret) {
        // Low byte pushed first, high byte second (popped in reverse).
        pushG(static_cast<uint8_t>(ret));
        pushG(static_cast<uint8_t>(ret >> 8));
    };
    auto popPcG = [&]() -> uint32_t {
        uint32_t hi = popG();
        uint32_t lo = popG();
        return (hi << 8) | lo;
    };

    switch (inst.op) {
      case Op::ADD: {
        uint8_t d = regs[inst.rd], s = regs[inst.rr];
        uint8_t r = d + s;
        regs[inst.rd] = r;
        addFlags(d, s, r);
        break;
      }
      case Op::ADC: {
        uint8_t d = regs[inst.rd], s = regs[inst.rr];
        uint8_t r = d + s + (flag(fC) ? 1 : 0);
        regs[inst.rd] = r;
        addFlags(d, s, r);
        break;
      }
      case Op::SUB: {
        uint8_t d = regs[inst.rd], s = regs[inst.rr];
        uint8_t r = d - s;
        regs[inst.rd] = r;
        subFlags(d, s, r, false);
        break;
      }
      case Op::SBC: {
        uint8_t d = regs[inst.rd], s = regs[inst.rr];
        uint8_t r = d - s - (flag(fC) ? 1 : 0);
        regs[inst.rd] = r;
        subFlags(d, s, r, true);
        break;
      }
      case Op::SUBI: {
        uint8_t d = regs[inst.rd];
        uint8_t r = d - inst.imm;
        regs[inst.rd] = r;
        subFlags(d, inst.imm, r, false);
        break;
      }
      case Op::SBCI: {
        uint8_t d = regs[inst.rd];
        uint8_t r = d - inst.imm - (flag(fC) ? 1 : 0);
        regs[inst.rd] = r;
        subFlags(d, inst.imm, r, true);
        break;
      }
      case Op::CP: {
        uint8_t d = regs[inst.rd], s = regs[inst.rr];
        subFlags(d, s, d - s, false);
        break;
      }
      case Op::CPC: {
        uint8_t d = regs[inst.rd], s = regs[inst.rr];
        uint8_t r = d - s - (flag(fC) ? 1 : 0);
        subFlags(d, s, r, true);
        break;
      }
      case Op::CPI: {
        uint8_t d = regs[inst.rd];
        subFlags(d, inst.imm, d - inst.imm, false);
        break;
      }
      case Op::AND: case Op::ANDI: {
        uint8_t s = inst.op == Op::AND ? regs[inst.rr] : inst.imm;
        uint8_t r = regs[inst.rd] & s;
        regs[inst.rd] = r;
        setFlag(fV, false);
        setZns(r);
        break;
      }
      case Op::OR: case Op::ORI: {
        uint8_t s = inst.op == Op::OR ? regs[inst.rr] : inst.imm;
        uint8_t r = regs[inst.rd] | s;
        regs[inst.rd] = r;
        setFlag(fV, false);
        setZns(r);
        break;
      }
      case Op::EOR: {
        uint8_t r = regs[inst.rd] ^ regs[inst.rr];
        regs[inst.rd] = r;
        setFlag(fV, false);
        setZns(r);
        break;
      }
      case Op::MOV:
        regs[inst.rd] = regs[inst.rr];
        break;
      case Op::MOVW:
        regs[inst.rd] = regs[inst.rr];
        regs[inst.rd + 1] = regs[inst.rr + 1];
        break;
      case Op::LDI:
        regs[inst.rd] = inst.imm;
        break;
      case Op::ADIW: {
        uint16_t d = regPair(inst.rd);
        uint16_t r = d + inst.imm;
        setRegPair(inst.rd, r);
        setFlag(fV, !(d & 0x8000) && (r & 0x8000));
        setFlag(fC, !(r & 0x8000) && (d & 0x8000));
        setFlag(fN, r & 0x8000);
        setFlag(fZ, r == 0);
        setFlag(fS, flag(fN) != flag(fV));
        break;
      }
      case Op::SBIW: {
        uint16_t d = regPair(inst.rd);
        uint16_t r = d - inst.imm;
        setRegPair(inst.rd, r);
        setFlag(fV, (d & 0x8000) && !(r & 0x8000));
        setFlag(fC, (r & 0x8000) && !(d & 0x8000));
        setFlag(fN, r & 0x8000);
        setFlag(fZ, r == 0);
        setFlag(fS, flag(fN) != flag(fV));
        break;
      }
      case Op::MUL: {
        uint16_t p = static_cast<uint16_t>(regs[inst.rd]) * regs[inst.rr];
        regs[0] = static_cast<uint8_t>(p);
        regs[1] = static_cast<uint8_t>(p >> 8);
        setFlag(fC, p & 0x8000);
        setFlag(fZ, p == 0);
        break;
      }
      case Op::MULS: {
        int16_t p = static_cast<int16_t>(static_cast<int8_t>(regs[inst.rd])) *
                    static_cast<int8_t>(regs[inst.rr]);
        uint16_t u = static_cast<uint16_t>(p);
        regs[0] = static_cast<uint8_t>(u);
        regs[1] = static_cast<uint8_t>(u >> 8);
        setFlag(fC, u & 0x8000);
        setFlag(fZ, u == 0);
        break;
      }
      case Op::MULSU: {
        int16_t p = static_cast<int16_t>(static_cast<int8_t>(regs[inst.rd])) *
                    static_cast<uint8_t>(regs[inst.rr]);
        uint16_t u = static_cast<uint16_t>(p);
        regs[0] = static_cast<uint8_t>(u);
        regs[1] = static_cast<uint8_t>(u >> 8);
        setFlag(fC, u & 0x8000);
        setFlag(fZ, u == 0);
        break;
      }
      case Op::FMUL: case Op::FMULS: case Op::FMULSU: {
        int32_t p;
        if (inst.op == Op::FMUL)
            p = static_cast<uint16_t>(regs[inst.rd]) * regs[inst.rr];
        else if (inst.op == Op::FMULS)
            p = static_cast<int8_t>(regs[inst.rd]) *
                static_cast<int8_t>(regs[inst.rr]);
        else
            p = static_cast<int8_t>(regs[inst.rd]) * regs[inst.rr];
        uint16_t u = static_cast<uint16_t>(p);
        setFlag(fC, u & 0x8000);
        u <<= 1;
        regs[0] = static_cast<uint8_t>(u);
        regs[1] = static_cast<uint8_t>(u >> 8);
        setFlag(fZ, u == 0);
        break;
      }
      case Op::COM: {
        uint8_t r = ~regs[inst.rd];
        regs[inst.rd] = r;
        setFlag(fC, true);
        setFlag(fV, false);
        setZns(r);
        break;
      }
      case Op::NEG: {
        uint8_t d = regs[inst.rd];
        uint8_t r = -d;
        regs[inst.rd] = r;
        subFlags(0, d, r, false);
        break;
      }
      case Op::SWAP: {
        uint8_t d = regs[inst.rd];
        if (swap_mac)
            macUnit.macSwap(regs, d & 0x0f);
        regs[inst.rd] = static_cast<uint8_t>((d << 4) | (d >> 4));
        break;
      }
      case Op::INC: {
        uint8_t r = regs[inst.rd] + 1;
        regs[inst.rd] = r;
        setFlag(fV, r == 0x80);
        setZns(r);
        break;
      }
      case Op::DEC: {
        uint8_t r = regs[inst.rd] - 1;
        regs[inst.rd] = r;
        setFlag(fV, r == 0x7f);
        setZns(r);
        break;
      }
      case Op::ASR: {
        uint8_t d = regs[inst.rd];
        uint8_t r = static_cast<uint8_t>((d >> 1) | (d & 0x80));
        regs[inst.rd] = r;
        setFlag(fC, d & 1);
        setFlag(fN, r & 0x80);
        setFlag(fV, flag(fN) != flag(fC));
        setFlag(fZ, r == 0);
        setFlag(fS, flag(fN) != flag(fV));
        break;
      }
      case Op::LSR: {
        uint8_t d = regs[inst.rd];
        uint8_t r = d >> 1;
        regs[inst.rd] = r;
        setFlag(fC, d & 1);
        setFlag(fN, false);
        setFlag(fV, flag(fN) != flag(fC));
        setFlag(fZ, r == 0);
        setFlag(fS, flag(fN) != flag(fV));
        break;
      }
      case Op::ROR: {
        uint8_t d = regs[inst.rd];
        uint8_t r = static_cast<uint8_t>((d >> 1) | (flag(fC) ? 0x80 : 0));
        regs[inst.rd] = r;
        setFlag(fC, d & 1);
        setFlag(fN, r & 0x80);
        setFlag(fV, flag(fN) != flag(fC));
        setFlag(fZ, r == 0);
        setFlag(fS, flag(fN) != flag(fV));
        break;
      }
      case Op::BSET:
        setFlag(inst.bit, true);
        break;
      case Op::BCLR:
        setFlag(inst.bit, false);
        break;
      case Op::BLD:
        if (flag(fT))
            regs[inst.rd] |= 1u << inst.bit;
        else
            regs[inst.rd] &= ~(1u << inst.bit);
        break;
      case Op::BST:
        setFlag(fT, regs[inst.rd] & (1u << inst.bit));
        break;
      case Op::SBI:
        writeData(ioBase + inst.imm,
                  readData(ioBase + inst.imm) | (1u << inst.bit));
        break;
      case Op::CBI:
        writeData(ioBase + inst.imm,
                  readData(ioBase + inst.imm) & ~(1u << inst.bit));
        break;
      case Op::SBIC: case Op::SBIS: {
        bool bit = readData(ioBase + inst.imm) & (1u << inst.bit);
        bool skip = inst.op == Op::SBIS ? bit : !bit;
        if (skip) {
            bool two = isTwoWord(fetch(next_pc));
            cycles += skipExtra(two);
            next_pc += two ? 2 : 1;
        }
        break;
      }
      case Op::IN:
        regs[inst.rd] = readData(ioBase + inst.imm);
        break;
      case Op::OUT:
        writeData(ioBase + inst.imm, regs[inst.rd]);
        break;

      case Op::LD_X: case Op::LD_X_INC: case Op::LD_X_DEC: {
        uint16_t a = x();
        if (inst.op == Op::LD_X_DEC)
            setX(--a);
        uint8_t v = ldG(a);
        regs[inst.rd] = v;
        if (inst.op == Op::LD_X_INC)
            setX(a + 1);
        ld_trigger(v, inst.rd);
        break;
      }
      case Op::LD_Y_INC: case Op::LD_Y_DEC: case Op::LDD_Y: {
        uint16_t a = y();
        if (inst.op == Op::LD_Y_DEC)
            setY(--a);
        else if (inst.op == Op::LDD_Y)
            a += inst.disp;
        uint8_t v = ldG(a);
        regs[inst.rd] = v;
        if (inst.op == Op::LD_Y_INC)
            setY(a + 1);
        ld_trigger(v, inst.rd);
        break;
      }
      case Op::LD_Z_INC: case Op::LD_Z_DEC: case Op::LDD_Z: {
        uint16_t a = z();
        if (inst.op == Op::LD_Z_DEC)
            setZ(--a);
        else if (inst.op == Op::LDD_Z)
            a += inst.disp;
        uint8_t v = ldG(a);
        regs[inst.rd] = v;
        if (inst.op == Op::LD_Z_INC)
            setZ(a + 1);
        ld_trigger(v, inst.rd);
        break;
      }
      case Op::LDS: {
        uint8_t v = ldG(static_cast<uint16_t>(inst.k));
        regs[inst.rd] = v;
        ld_trigger(v, inst.rd);
        break;
      }
      case Op::ST_X: case Op::ST_X_INC: case Op::ST_X_DEC: {
        uint16_t a = x();
        if (inst.op == Op::ST_X_DEC)
            setX(--a);
        stG(a, regs[inst.rd]);
        if (inst.op == Op::ST_X_INC)
            setX(a + 1);
        break;
      }
      case Op::ST_Y_INC: case Op::ST_Y_DEC: case Op::STD_Y: {
        uint16_t a = y();
        if (inst.op == Op::ST_Y_DEC)
            setY(--a);
        else if (inst.op == Op::STD_Y)
            a += inst.disp;
        stG(a, regs[inst.rd]);
        if (inst.op == Op::ST_Y_INC)
            setY(a + 1);
        break;
      }
      case Op::ST_Z_INC: case Op::ST_Z_DEC: case Op::STD_Z: {
        uint16_t a = z();
        if (inst.op == Op::ST_Z_DEC)
            setZ(--a);
        else if (inst.op == Op::STD_Z)
            a += inst.disp;
        stG(a, regs[inst.rd]);
        if (inst.op == Op::ST_Z_INC)
            setZ(a + 1);
        break;
      }
      case Op::STS:
        stG(static_cast<uint16_t>(inst.k), regs[inst.rd]);
        break;
      case Op::PUSH:
        pushG(regs[inst.rd]);
        break;
      case Op::POP:
        regs[inst.rd] = popG();
        break;
      case Op::LPM_R0: case Op::LPM: case Op::LPM_INC: {
        uint16_t a = z();
        uint16_t w = flash[(a >> 1) & (flashWords - 1)];
        uint8_t v = (a & 1) ? static_cast<uint8_t>(w >> 8)
                            : static_cast<uint8_t>(w);
        uint8_t rd = inst.op == Op::LPM_R0 ? 0 : inst.rd;
        regs[rd] = v;
        if (inst.op == Op::LPM_INC)
            setZ(a + 1);
        break;
      }

      case Op::RJMP:
        next_pc = pc0 + 1 + inst.disp;
        break;
      case Op::RCALL:
        pushPcG(pc0 + 1);
        next_pc = pc0 + 1 + inst.disp;
        break;
      case Op::JMP:
        next_pc = inst.k;
        break;
      case Op::CALL:
        pushPcG(pc0 + 2);
        next_pc = inst.k;
        break;
      case Op::IJMP:
        next_pc = z();
        break;
      case Op::ICALL:
        pushPcG(pc0 + 1);
        next_pc = z();
        break;
      case Op::RET: case Op::RETI:
        next_pc = popPcG();
        if (inst.op == Op::RETI)
            setFlag(fI, true);
        break;
      case Op::BRBS:
        if (flag(inst.bit)) {
            next_pc = pc0 + 1 + inst.disp;
            cycles += branchTakenExtra;
        }
        break;
      case Op::BRBC:
        if (!flag(inst.bit)) {
            next_pc = pc0 + 1 + inst.disp;
            cycles += branchTakenExtra;
        }
        break;
      case Op::CPSE: case Op::SBRC: case Op::SBRS: {
        bool skip;
        if (inst.op == Op::CPSE)
            skip = regs[inst.rd] == regs[inst.rr];
        else if (inst.op == Op::SBRC)
            skip = !(regs[inst.rd] & (1u << inst.bit));
        else
            skip = regs[inst.rd] & (1u << inst.bit);
        if (skip) {
            bool two = isTwoWord(fetch(next_pc));
            cycles += skipExtra(two);
            next_pc += two ? 2 : 1;
        }
        break;
      }

      case Op::NOP: case Op::SLEEP: case Op::WDR: case Op::BREAK:
        break;

      case Op::INVALID:
        break;
    }

    // A trapping instruction does not retire: PC, shadow and
    // statistics stay as of just before it (partial side effects
    // like a pre-decremented pointer remain, identically on the
    // fast path).
    if (trap_kind != TrapKind::None) {
        pendingTrap = Trap{trap_kind, pc0, trap_addr};
        return 0;
    }

    // Retire pending MAC shadow cycles; a fresh trigger's two
    // micro-ops occupy the two cycles after this instruction.
    if (mac_triggered)
        macUnit.setPendingShadow(2);
    else
        macUnit.setPendingShadow(
            shadow > cycles ? shadow - static_cast<uint8_t>(cycles) : 0);

    pcWord = next_pc & 0xffff;
    execStats.opCount[static_cast<size_t>(inst.op)]++;
    execStats.opCycles[static_cast<size_t>(inst.op)] += cycles;
    execStats.instructions++;
    execStats.cycles += cycles;
    if (inst.op == Op::NOP && shadow > 0)
        execStats.macStallNops++;

    if (profSink) {
        if (profWantsInst)
            profSink->onInst(pc0, inst, cycles,
                             execStats.cycles - cycles);
        if (inst.op == Op::CALL || inst.op == Op::RCALL ||
            inst.op == Op::ICALL)
            profSink->onCall(pc0, pcWord, execStats.cycles);
        else if (inst.op == Op::RET || inst.op == Op::RETI)
            profSink->onRet(pc0, pcWord, execStats.cycles);
    }
    return cycles;
}

bool
Machine::applyBoundaryFault()
{
    const FaultPlan &fp = faultInj->plan();
    switch (fp.target) {
      case FaultTarget::Gpr:
      case FaultTarget::MacAcc:
        regs[fp.reg & 31] ^= static_cast<uint8_t>(fp.mask);
        return false;
      case FaultTarget::Sreg:
        sregBits ^= static_cast<uint8_t>(fp.mask);
        return false;
      case FaultTarget::Sram:
        if (fp.sramAddr >= sramBase)
            sram[fp.sramAddr - sramBase] ^= static_cast<uint8_t>(fp.mask);
        return false;
      case FaultTarget::InstSkip:
        pcWord = (pcWord + decodeCache[pcWord & (flashWords - 1)].inst.words) &
                 0xffff;
        return true;
      case FaultTarget::OpcodeCorrupt:
        corruptFlashWord(fp.flashAddr == FaultPlan::kCurrentPc ? pcWord
                                                               : fp.flashAddr,
                         fp.mask);
        return false;
    }
    return false;
}

void
Machine::runReference(uint64_t max_cycles)
{
    uint64_t start = execStats.cycles;
    // Sampled once at entry, mirroring DebugHook::wantsStops() in
    // run(): a sink that activates mid-run records from the next run.
    // Both observer slots (waveform and leakage) fire identically.
    WaveSink *const wave =
        (waveSnk && waveSnk->active()) ? waveSnk : nullptr;
    WaveSink *const leak =
        (leakSnk && leakSnk->active()) ? leakSnk : nullptr;
    auto fire_trap = [&]() {
        if (wave)
            wave->onTrap(*this, pendingTrap);
        if (leak)
            leak->onTrap(*this, pendingTrap);
    };
    while (pcWord != exitAddress) {
        if (dbgHook && dbgHook->onBoundary(pcWord, execStats.cycles)) {
            pendingTrap = Trap{TrapKind::DebugBreak, pcWord, 0};
            fire_trap();
            return;
        }
        if (faultInj && faultInj->checkFire(pcWord, execStats.cycles)) {
            if (applyBoundaryFault())
                continue;  // instruction skip consumed the boundary
        }
        uint32_t pc0 = pcWord;
        unsigned cycles = step();
        if (pendingTrap) {
            fire_trap();
            return;
        }
        if (wave)
            wave->onStep(*this, pc0,
                         decodeCache[pc0 & (flashWords - 1)].inst, cycles);
        if (leak)
            leak->onStep(*this, pc0,
                         decodeCache[pc0 & (flashWords - 1)].inst, cycles);
        if (execStats.cycles - start >= max_cycles) {
            pendingTrap = Trap{TrapKind::CycleBudget, pcWord, 0};
            fire_trap();
            return;
        }
    }
}

/**
 * The predecoded fast path: executes from the decode cache with the
 * trace branch removed, the MAC shadow logic compiled out unless
 * @p Ise, and the instruction/cycle counters batched in locals that
 * are flushed on every exit (including the trap exits, so observed
 * state is always consistent with the reference path).
 *
 * The instruction semantics below mirror step() case for case;
 * tests/test_decode_cache.cc pins the two paths to identical
 * architectural state and cycle counts, and
 * tests/test_machine_traps.cc pins identical trap raising.
 */
template <bool Ise, bool Profiled, bool Faulted, bool Debugged>
void
Machine::runFast(uint64_t max_cycles)
{
    uint64_t consumed = 0;
    uint64_t insts = 0;
    uint32_t pc = pcWord;
    // Sink state, hoisted out of the loop (dead when !Profiled); the
    // cycle base makes cycles0 + consumed the absolute cycle count
    // regardless of the periodic mid-loop flushes.
    [[maybe_unused]] ProfileSink *const sink = profSink;
    [[maybe_unused]] const bool wants_inst = profWantsInst;
    [[maybe_unused]] const uint64_t cycles0 = execStats.cycles;
    [[maybe_unused]] FaultInjector *const inj = faultInj;
    [[maybe_unused]] DebugHook *const hook = dbgHook;
    const uint16_t data_limit = dataLimitV;
    const uint16_t stack_guard = stackGuardV;
    // Set by the guarded access lambdas; checked once per retired
    // instruction. Never reset: the loop exits on the first trap.
    TrapKind trap_kind = TrapKind::None;
    uint16_t trap_addr = 0;

    /*
     * Hot state lives in locals: byte stores into the simulated SRAM
     * may alias any member through the uint8_t* (char aliasing), so
     * member accesses cannot be cached across them by the compiler.
     * SREG in particular is read and written by nearly every ALU
     * instruction; the local copy keeps it in a host register.
     */
    uint8_t sreg = sregBits;
    std::array<uint8_t, 32> r8 = regs;
    std::array<uint32_t, kNumOps> op_count{};
    // The predecoded base cost is a pure function of (op, mode), so
    // per-op cycle totals are reconstructed at flush time as
    // op_count * base; only the dynamic extras (taken branches,
    // skips) accrue here, keeping the common case out of the loop.
    std::array<uint32_t, kNumOps> op_extra{};
    uint64_t mac_stall = 0;
    // ISE-only hot state; dead (and optimized out) when !Ise.
    [[maybe_unused]] uint8_t maccr = io[ioMaccr];
    [[maybe_unused]] uint8_t shadow = macUnit.pendingShadow();
    const DecodedInst *const cache = decodeCache.data();
    uint8_t *const sram_data = sram.data();

    auto pair = [&](unsigned i) -> uint16_t {
        return static_cast<uint16_t>(r8[i]) |
               (static_cast<uint16_t>(r8[i + 1]) << 8);
    };
    auto setPair = [&](unsigned i, uint16_t v) {
        r8[i] = static_cast<uint8_t>(v);
        r8[i + 1] = static_cast<uint8_t>(v >> 8);
    };

    // Delta-based so the periodic mid-loop flush cannot double-count.
    uint64_t flushed_insts = 0;
    uint64_t flushed_cycles = 0;
    auto flush = [&] {
        execStats.instructions += insts - flushed_insts;
        execStats.cycles += consumed - flushed_cycles;
        flushed_insts = insts;
        flushed_cycles = consumed;
        pcWord = pc & 0xffff;
        sregBits = sreg;
        regs = r8;
        const std::array<uint8_t, kNumOps> &base_tab =
            baseCycleTable(cpuMode);
        for (size_t i = 0; i < kNumOps; i++) {
            execStats.opCount[i] += op_count[i];
            execStats.opCycles[i] +=
                uint64_t(op_count[i]) * base_tab[i] + op_extra[i];
        }
        op_count.fill(0);
        op_extra.fill(0);
        execStats.macStallNops += mac_stall;
        mac_stall = 0;
        if constexpr (Ise)
            macUnit.setPendingShadow(shadow);
    };

    // Data-space access with the SRAM case inlined; the register/IO
    // fallback syncs the local SREG around readData/writeData, which
    // can read or write SREG at data address 0x5f.
    auto loadMem = [&](uint16_t a) -> uint8_t {
        if constexpr (Debugged)
            hook->onLoad(a);
        if (a >= sramBase) [[likely]] {
            if (a > data_limit) [[unlikely]] {
                trap_kind = TrapKind::SramOutOfBounds;
                trap_addr = a;
                return 0xff;
            }
            return sram_data[a - sramBase];
        }
        sregBits = sreg;
        regs = r8;
        uint8_t v = readData(a);
        sreg = sregBits;
        r8 = regs;
        return v;
    };
    auto storeMem = [&](uint16_t a, uint8_t v) {
        if constexpr (Debugged)
            hook->onStore(a);
        if (a >= sramBase) [[likely]] {
            if (a > data_limit) [[unlikely]] {
                trap_kind = TrapKind::SramOutOfBounds;
                trap_addr = a;
                return;
            }
            sram_data[a - sramBase] = v;
            return;
        }
        sregBits = sreg;
        regs = r8;
        if constexpr (Ise)
            macUnit.setPendingShadow(shadow);
        writeData(a, v);
        sreg = sregBits;
        r8 = regs;
        if constexpr (Ise) {
            maccr = io[ioMaccr];
            shadow = macUnit.pendingShadow();
        }
    };
    auto ioRead = [&](uint8_t ioaddr) -> uint8_t {
        sregBits = sreg;
        regs = r8;
        uint8_t v = readData(ioBase + ioaddr);
        sreg = sregBits;
        r8 = regs;
        return v;
    };
    auto ioWrite = [&](uint8_t ioaddr, uint8_t v) {
        sregBits = sreg;
        regs = r8;
        if constexpr (Ise)
            macUnit.setPendingShadow(shadow);
        writeData(ioBase + ioaddr, v);
        sreg = sregBits;
        r8 = regs;
        if constexpr (Ise) {
            maccr = io[ioMaccr];
            shadow = macUnit.pendingShadow();
        }
    };
    auto pushB = [&](uint8_t v) {
        uint16_t a = sp();
        if (a < stack_guard) [[unlikely]] {
            trap_kind = TrapKind::StackOverflow;
            trap_addr = a;
            return;
        }
        storeMem(a, v);
        if (trap_kind == TrapKind::None) [[likely]]
            setSp(a - 1);
    };
    auto popB = [&]() -> uint8_t {
        setSp(sp() + 1);
        return loadMem(sp());
    };
    auto pushRet = [&](uint32_t ret) {
        pushB(static_cast<uint8_t>(ret));
        pushB(static_cast<uint8_t>(ret >> 8));
    };
    auto popRet = [&]() -> uint32_t {
        uint32_t hi = popB();
        uint32_t lo = popB();
        return (hi << 8) | lo;
    };

    while (pc != exitAddress) {
        if constexpr (Debugged) {
            if (hook->onBoundary(pc, cycles0 + consumed)) [[unlikely]] {
                pendingTrap = Trap{TrapKind::DebugBreak, pc, 0};
                flush();
                return;
            }
        }
        if constexpr (Faulted) {
            if (inj->checkFire(pc, cycles0 + consumed)) [[unlikely]] {
                // Mirror of applyBoundaryFault() on the local hot
                // state (the reference path uses the member copy).
                const FaultPlan &fp = inj->plan();
                switch (fp.target) {
                  case FaultTarget::Gpr:
                  case FaultTarget::MacAcc:
                    r8[fp.reg & 31] ^= static_cast<uint8_t>(fp.mask);
                    break;
                  case FaultTarget::Sreg:
                    sreg ^= static_cast<uint8_t>(fp.mask);
                    break;
                  case FaultTarget::Sram:
                    if (fp.sramAddr >= sramBase)
                        sram_data[fp.sramAddr - sramBase] ^=
                            static_cast<uint8_t>(fp.mask);
                    break;
                  case FaultTarget::InstSkip:
                    pc = (pc + cache[pc & (flashWords - 1)].inst.words) &
                         0xffff;
                    continue;  // the skip consumed this boundary
                  case FaultTarget::OpcodeCorrupt:
                    // Touches flash + decode cache only, no hot state.
                    corruptFlashWord(fp.flashAddr == FaultPlan::kCurrentPc
                                         ? pc
                                         : fp.flashAddr,
                                     fp.mask);
                    break;
                }
            }
        }

        const DecodedInst &dc = cache[pc & (flashWords - 1)];
        const Inst &inst = dc.inst;
        [[maybe_unused]] const uint32_t ipc = pc;

        if (inst.op == Op::INVALID) {
            uint16_t w = flash[pc & (flashWords - 1)];
            pendingTrap = Trap{w == 0xffff ? TrapKind::FlashOutOfBounds
                                           : TrapKind::IllegalOpcode,
                               pc, w};
            flush();
            return;
        }

        [[maybe_unused]] bool load_mac = false;
        [[maybe_unused]] bool swap_mac = false;
        if constexpr (Ise) {
            load_mac = maccr & MacUnit::ctrlLoadMode;
            swap_mac = maccr & MacUnit::ctrlSwapMode;
            bool is_r24_load = load_mac && dc.macLoadForm;
            if (shadow > 0 && dc.touchesMac && !is_r24_load) {
                pendingTrap = Trap{TrapKind::MacHazard, pc, 0};
                flush();
                return;
            }
            if (shadow >= 2 && is_r24_load) {
                pendingTrap = Trap{TrapKind::MacHazard, pc, 1};
                flush();
                return;
            }
        }

        uint32_t next_pc = pc + inst.words;
        // Local copy: byte stores through the SRAM pointer may alias
        // the decode cache, so dc.cycles cannot be re-read cheaply
        // after the execute switch.
        const unsigned base_cycles = dc.cycles;
        unsigned cycles = base_cycles;
        [[maybe_unused]] bool mac_triggered = false;
        [[maybe_unused]] const uint8_t shadow_pre = shadow;

        auto ld_trigger = [&]([[maybe_unused]] uint8_t v,
                              [[maybe_unused]] uint8_t rd) {
            if constexpr (Ise) {
                if (load_mac && rd == 24) {
                    // triggerLoadMac() on the local register file
                    macUnit.macLoad(r8, v);
                    mac_triggered = true;
                }
            }
        };

        switch (inst.op) {
          case Op::ADD: {
            uint8_t d = r8[inst.rd], s = r8[inst.rr];
            uint8_t r = d + s;
            r8[inst.rd] = r;
            addFlagsB(sreg, d, s, r);
            break;
          }
          case Op::ADC: {
            uint8_t d = r8[inst.rd], s = r8[inst.rr];
            uint8_t r = d + s + (sreg & mC);
            r8[inst.rd] = r;
            addFlagsB(sreg, d, s, r);
            break;
          }
          case Op::SUB: {
            uint8_t d = r8[inst.rd], s = r8[inst.rr];
            uint8_t r = d - s;
            r8[inst.rd] = r;
            subFlagsB(sreg, d, s, r, false);
            break;
          }
          case Op::SBC: {
            uint8_t d = r8[inst.rd], s = r8[inst.rr];
            uint8_t r = d - s - (sreg & mC);
            r8[inst.rd] = r;
            subFlagsB(sreg, d, s, r, true);
            break;
          }
          case Op::SUBI: {
            uint8_t d = r8[inst.rd];
            uint8_t r = d - inst.imm;
            r8[inst.rd] = r;
            subFlagsB(sreg, d, inst.imm, r, false);
            break;
          }
          case Op::SBCI: {
            uint8_t d = r8[inst.rd];
            uint8_t r = d - inst.imm - (sreg & mC);
            r8[inst.rd] = r;
            subFlagsB(sreg, d, inst.imm, r, true);
            break;
          }
          case Op::CP: {
            uint8_t d = r8[inst.rd], s = r8[inst.rr];
            subFlagsB(sreg, d, s, d - s, false);
            break;
          }
          case Op::CPC: {
            uint8_t d = r8[inst.rd], s = r8[inst.rr];
            uint8_t r = d - s - (sreg & mC);
            subFlagsB(sreg, d, s, r, true);
            break;
          }
          case Op::CPI: {
            uint8_t d = r8[inst.rd];
            subFlagsB(sreg, d, inst.imm, d - inst.imm, false);
            break;
          }
          case Op::AND: case Op::ANDI: {
            uint8_t s = inst.op == Op::AND ? r8[inst.rr] : inst.imm;
            uint8_t r = r8[inst.rd] & s;
            r8[inst.rd] = r;
            logicFlagsB(sreg, r);
            break;
          }
          case Op::OR: case Op::ORI: {
            uint8_t s = inst.op == Op::OR ? r8[inst.rr] : inst.imm;
            uint8_t r = r8[inst.rd] | s;
            r8[inst.rd] = r;
            logicFlagsB(sreg, r);
            break;
          }
          case Op::EOR: {
            uint8_t r = r8[inst.rd] ^ r8[inst.rr];
            r8[inst.rd] = r;
            logicFlagsB(sreg, r);
            break;
          }
          case Op::MOV:
            r8[inst.rd] = r8[inst.rr];
            break;
          case Op::MOVW:
            r8[inst.rd] = r8[inst.rr];
            r8[inst.rd + 1] = r8[inst.rr + 1];
            break;
          case Op::LDI:
            r8[inst.rd] = inst.imm;
            break;
          case Op::ADIW: {
            uint16_t d = pair(inst.rd);
            uint16_t r = d + inst.imm;
            setPair(inst.rd, r);
            wideFlagsB(sreg, r, !(d & 0x8000) && (r & 0x8000),
                       !(r & 0x8000) && (d & 0x8000));
            break;
          }
          case Op::SBIW: {
            uint16_t d = pair(inst.rd);
            uint16_t r = d - inst.imm;
            setPair(inst.rd, r);
            wideFlagsB(sreg, r, (d & 0x8000) && !(r & 0x8000),
                       (r & 0x8000) && !(d & 0x8000));
            break;
          }
          case Op::MUL: {
            uint16_t p =
                static_cast<uint16_t>(r8[inst.rd]) * r8[inst.rr];
            r8[0] = static_cast<uint8_t>(p);
            r8[1] = static_cast<uint8_t>(p >> 8);
            mulFlagsB(sreg, p, p & 0x8000);
            break;
          }
          case Op::MULS: {
            int16_t p =
                static_cast<int16_t>(static_cast<int8_t>(r8[inst.rd])) *
                static_cast<int8_t>(r8[inst.rr]);
            uint16_t u = static_cast<uint16_t>(p);
            r8[0] = static_cast<uint8_t>(u);
            r8[1] = static_cast<uint8_t>(u >> 8);
            mulFlagsB(sreg, u, u & 0x8000);
            break;
          }
          case Op::MULSU: {
            int16_t p =
                static_cast<int16_t>(static_cast<int8_t>(r8[inst.rd])) *
                static_cast<uint8_t>(r8[inst.rr]);
            uint16_t u = static_cast<uint16_t>(p);
            r8[0] = static_cast<uint8_t>(u);
            r8[1] = static_cast<uint8_t>(u >> 8);
            mulFlagsB(sreg, u, u & 0x8000);
            break;
          }
          case Op::FMUL: case Op::FMULS: case Op::FMULSU: {
            int32_t p;
            if (inst.op == Op::FMUL)
                p = static_cast<uint16_t>(r8[inst.rd]) * r8[inst.rr];
            else if (inst.op == Op::FMULS)
                p = static_cast<int8_t>(r8[inst.rd]) *
                    static_cast<int8_t>(r8[inst.rr]);
            else
                p = static_cast<int8_t>(r8[inst.rd]) * r8[inst.rr];
            uint16_t u = static_cast<uint16_t>(p);
            bool c = u & 0x8000;
            u <<= 1;
            r8[0] = static_cast<uint8_t>(u);
            r8[1] = static_cast<uint8_t>(u >> 8);
            mulFlagsB(sreg, u, c);
            break;
          }
          case Op::COM: {
            uint8_t r = ~r8[inst.rd];
            r8[inst.rd] = r;
            uint8_t n = (r >> 7) & 1;
            sreg = (sreg & ~(mC | mZ | mN | mV | mS)) | mC |
                   static_cast<uint8_t>(r == 0) << 1 | n << 2 | n << 4;
            break;
          }
          case Op::NEG: {
            uint8_t d = r8[inst.rd];
            uint8_t r = -d;
            r8[inst.rd] = r;
            subFlagsB(sreg, 0, d, r, false);
            break;
          }
          case Op::SWAP: {
            uint8_t d = r8[inst.rd];
            if constexpr (Ise) {
                if (swap_mac)
                    macUnit.macSwap(r8, d & 0x0f);
            }
            r8[inst.rd] = static_cast<uint8_t>((d << 4) | (d >> 4));
            break;
          }
          case Op::INC: {
            uint8_t r = r8[inst.rd] + 1;
            r8[inst.rd] = r;
            incDecFlagsB(sreg, r, r == 0x80);
            break;
          }
          case Op::DEC: {
            uint8_t r = r8[inst.rd] - 1;
            r8[inst.rd] = r;
            incDecFlagsB(sreg, r, r == 0x7f);
            break;
          }
          case Op::ASR: {
            uint8_t d = r8[inst.rd];
            uint8_t r = static_cast<uint8_t>((d >> 1) | (d & 0x80));
            r8[inst.rd] = r;
            shiftFlagsB(sreg, r, d & 1);
            break;
          }
          case Op::LSR: {
            uint8_t d = r8[inst.rd];
            uint8_t r = d >> 1;
            r8[inst.rd] = r;
            shiftFlagsB(sreg, r, d & 1);
            break;
          }
          case Op::ROR: {
            uint8_t d = r8[inst.rd];
            uint8_t r = static_cast<uint8_t>(
                (d >> 1) | (static_cast<unsigned>(sreg & mC) << 7));
            r8[inst.rd] = r;
            shiftFlagsB(sreg, r, d & 1);
            break;
          }
          case Op::BSET:
            sreg |= static_cast<uint8_t>(1u << inst.bit);
            break;
          case Op::BCLR:
            sreg &= static_cast<uint8_t>(~(1u << inst.bit));
            break;
          case Op::BLD:
            if (sreg & (1u << fT))
                r8[inst.rd] |= 1u << inst.bit;
            else
                r8[inst.rd] &= ~(1u << inst.bit);
            break;
          case Op::BST:
            sreg = static_cast<uint8_t>(
                (sreg & ~(1u << fT)) |
                (((r8[inst.rd] >> inst.bit) & 1u) << fT));
            break;
          case Op::SBI:
            ioWrite(inst.imm, ioRead(inst.imm) | (1u << inst.bit));
            break;
          case Op::CBI:
            ioWrite(inst.imm, ioRead(inst.imm) & ~(1u << inst.bit));
            break;
          case Op::SBIC: case Op::SBIS: {
            bool bit = ioRead(inst.imm) & (1u << inst.bit);
            bool skip = inst.op == Op::SBIS ? bit : !bit;
            if (skip) {
                bool two =
                    cache[next_pc & (flashWords - 1)].inst.words == 2;
                cycles += skipExtra(two);
                next_pc += two ? 2 : 1;
            }
            break;
          }
          case Op::IN:
            r8[inst.rd] = ioRead(inst.imm);
            break;
          case Op::OUT:
            ioWrite(inst.imm, r8[inst.rd]);
            break;

          case Op::LD_X: case Op::LD_X_INC: case Op::LD_X_DEC: {
            uint16_t a = pair(26);
            if (inst.op == Op::LD_X_DEC)
                setPair(26, --a);
            uint8_t v = loadMem(a);
            r8[inst.rd] = v;
            if (inst.op == Op::LD_X_INC)
                setPair(26, a + 1);
            ld_trigger(v, inst.rd);
            break;
          }
          case Op::LD_Y_INC: case Op::LD_Y_DEC: case Op::LDD_Y: {
            uint16_t a = pair(28);
            if (inst.op == Op::LD_Y_DEC)
                setPair(28, --a);
            else if (inst.op == Op::LDD_Y)
                a += inst.disp;
            uint8_t v = loadMem(a);
            r8[inst.rd] = v;
            if (inst.op == Op::LD_Y_INC)
                setPair(28, a + 1);
            ld_trigger(v, inst.rd);
            break;
          }
          case Op::LD_Z_INC: case Op::LD_Z_DEC: case Op::LDD_Z: {
            uint16_t a = pair(30);
            if (inst.op == Op::LD_Z_DEC)
                setPair(30, --a);
            else if (inst.op == Op::LDD_Z)
                a += inst.disp;
            uint8_t v = loadMem(a);
            r8[inst.rd] = v;
            if (inst.op == Op::LD_Z_INC)
                setPair(30, a + 1);
            ld_trigger(v, inst.rd);
            break;
          }
          case Op::LDS: {
            uint8_t v = loadMem(static_cast<uint16_t>(inst.k));
            r8[inst.rd] = v;
            ld_trigger(v, inst.rd);
            break;
          }
          case Op::ST_X: case Op::ST_X_INC: case Op::ST_X_DEC: {
            uint16_t a = pair(26);
            if (inst.op == Op::ST_X_DEC)
                setPair(26, --a);
            storeMem(a, r8[inst.rd]);
            if (inst.op == Op::ST_X_INC)
                setPair(26, a + 1);
            break;
          }
          case Op::ST_Y_INC: case Op::ST_Y_DEC: case Op::STD_Y: {
            uint16_t a = pair(28);
            if (inst.op == Op::ST_Y_DEC)
                setPair(28, --a);
            else if (inst.op == Op::STD_Y)
                a += inst.disp;
            storeMem(a, r8[inst.rd]);
            if (inst.op == Op::ST_Y_INC)
                setPair(28, a + 1);
            break;
          }
          case Op::ST_Z_INC: case Op::ST_Z_DEC: case Op::STD_Z: {
            uint16_t a = pair(30);
            if (inst.op == Op::ST_Z_DEC)
                setPair(30, --a);
            else if (inst.op == Op::STD_Z)
                a += inst.disp;
            storeMem(a, r8[inst.rd]);
            if (inst.op == Op::ST_Z_INC)
                setPair(30, a + 1);
            break;
          }
          case Op::STS:
            storeMem(static_cast<uint16_t>(inst.k), r8[inst.rd]);
            break;
          case Op::PUSH:
            pushB(r8[inst.rd]);
            break;
          case Op::POP:
            r8[inst.rd] = popB();
            break;
          case Op::LPM_R0: case Op::LPM: case Op::LPM_INC: {
            uint16_t a = pair(30);
            uint16_t w = flash[(a >> 1) & (flashWords - 1)];
            uint8_t v = (a & 1) ? static_cast<uint8_t>(w >> 8)
                                : static_cast<uint8_t>(w);
            uint8_t rd = inst.op == Op::LPM_R0 ? 0 : inst.rd;
            r8[rd] = v;
            if (inst.op == Op::LPM_INC)
                setPair(30, a + 1);
            break;
          }

          case Op::RJMP:
            next_pc = pc + 1 + inst.disp;
            break;
          case Op::RCALL:
            pushRet(pc + 1);
            next_pc = pc + 1 + inst.disp;
            break;
          case Op::JMP:
            next_pc = inst.k;
            break;
          case Op::CALL:
            pushRet(pc + 2);
            next_pc = inst.k;
            break;
          case Op::IJMP:
            next_pc = pair(30);
            break;
          case Op::ICALL:
            pushRet(pc + 1);
            next_pc = pair(30);
            break;
          case Op::RET: case Op::RETI:
            next_pc = popRet();
            if (inst.op == Op::RETI)
                sreg |= static_cast<uint8_t>(1u << fI);
            break;
          case Op::BRBS:
            if ((sreg >> inst.bit) & 1) {
                next_pc = pc + 1 + inst.disp;
                cycles += branchTakenExtra;
            }
            break;
          case Op::BRBC:
            if (!((sreg >> inst.bit) & 1)) {
                next_pc = pc + 1 + inst.disp;
                cycles += branchTakenExtra;
            }
            break;
          case Op::CPSE: case Op::SBRC: case Op::SBRS: {
            bool skip;
            if (inst.op == Op::CPSE)
                skip = r8[inst.rd] == r8[inst.rr];
            else if (inst.op == Op::SBRC)
                skip = !(r8[inst.rd] & (1u << inst.bit));
            else
                skip = r8[inst.rd] & (1u << inst.bit);
            if (skip) {
                bool two =
                    cache[next_pc & (flashWords - 1)].inst.words == 2;
                cycles += skipExtra(two);
                next_pc += two ? 2 : 1;
            }
            break;
          }

          case Op::NOP: case Op::SLEEP: case Op::WDR: case Op::BREAK:
            break;

          case Op::INVALID:
            break;
        }

        // Trapping instructions do not retire (see step()): PC,
        // shadow and the batched counters stay as of just before the
        // instruction; flush() publishes the partial side effects.
        if (trap_kind != TrapKind::None) [[unlikely]] {
            pendingTrap = Trap{trap_kind, pc, trap_addr};
            flush();
            return;
        }

        if constexpr (Ise) {
            if (mac_triggered)
                shadow = 2;
            else
                shadow = shadow > cycles
                             ? shadow - static_cast<uint8_t>(cycles)
                             : 0;
        }

        pc = next_pc & 0xffff;
        op_count[static_cast<size_t>(inst.op)]++;
        if (cycles != base_cycles)
            op_extra[static_cast<size_t>(inst.op)] +=
                cycles - base_cycles;
        if constexpr (Ise) {
            if (shadow_pre > 0 && inst.op == Op::NOP)
                mac_stall++;
        }
        insts++;
        consumed += cycles;

        if constexpr (Profiled) {
            // Sinks observe registers/SREG/stats through the event
            // arguments only (hot state lives in locals here); SP is
            // a member and therefore current.
            if (wants_inst)
                sink->onInst(ipc, inst, cycles,
                             cycles0 + consumed - cycles);
            if (inst.op == Op::CALL || inst.op == Op::RCALL ||
                inst.op == Op::ICALL)
                sink->onCall(ipc, pc, cycles0 + consumed);
            else if (inst.op == Op::RET || inst.op == Op::RETI)
                sink->onRet(ipc, pc, cycles0 + consumed);
        }

        if ((insts & 0xffffffu) == 0)
            flush();  // keep the 32-bit op_count entries from saturating
        if (consumed >= max_cycles) {
            pendingTrap = Trap{TrapKind::CycleBudget, pc, 0};
            flush();
            return;
        }
    }
    flush();
}

void
Machine::runFastPlain(uint64_t max_cycles)
{
    if (cpuMode == CpuMode::ISE)
        runFast<true, false, false, false>(max_cycles);
    else
        runFast<false, false, false, false>(max_cycles);
}

RunResult
Machine::run(uint64_t max_cycles)
{
    pendingTrap = Trap();
    uint64_t start = execStats.cycles;
    // An active wave or leakage sink needs the machine's
    // architectural state current after every retirement, which only
    // the reference loop provides; idle sinks leave the fast path
    // untouched (WaveSink).
    if (trace || forceReference || (waveSnk && waveSnk->active()) ||
        (leakSnk && leakSnk->active())) {
        runReference(max_cycles);
    } else {
        const bool prof = profSink != nullptr;
        if (dbgHook && dbgHook->wantsStops()) {
            if (cpuMode == CpuMode::ISE)
                prof ? runFast<true, true, false, true>(max_cycles)
                     : runFast<true, false, false, true>(max_cycles);
            else
                prof ? runFast<false, true, false, true>(max_cycles)
                     : runFast<false, false, false, true>(max_cycles);
        } else if (faultInj && faultInj->pending()) {
            if (cpuMode == CpuMode::ISE)
                prof ? runFast<true, true, true, false>(max_cycles)
                     : runFast<true, false, true, false>(max_cycles);
            else
                prof ? runFast<false, true, true, false>(max_cycles)
                     : runFast<false, false, true, false>(max_cycles);
        } else if (prof) {
            if (cpuMode == CpuMode::ISE)
                runFast<true, true, false, false>(max_cycles);
            else
                runFast<false, true, false, false>(max_cycles);
        } else if (backendV == IssBackend::Superblock) {
            // The fully unobserved case: no sink, hook or pending
            // fault — the only shape the superblock backend handles.
            runSuperblock(max_cycles);
        } else if (backendV == IssBackend::Reference) {
            runReference(max_cycles);
        } else {
            runFastPlain(max_cycles);
        }
    }
    // Single count point for trap telemetry: every path (fast or
    // reference) funnels through here, so kinds are never counted
    // twice. The flight-recorder trap sink shares the funnel — it
    // observes the already-accounted machine, so it can never skew
    // cycles or state.
    if (pendingTrap) {
        execStats.trapCount[static_cast<size_t>(pendingTrap.kind)]++;
        if (trapSnk)
            trapSnk->onTrap(*this, pendingTrap);
    }
    return {execStats.cycles - start, pendingTrap};
}

RunResult
Machine::call(uint32_t word_addr, uint64_t max_cycles)
{
    pushPc(exitAddress);
    pcWord = word_addr & 0xffff;
    // Synthetic call event so profilers see the routine entered from
    // the harness; the final RET to exitAddress closes it.
    if (profSink)
        profSink->onCall(exitAddress, pcWord, execStats.cycles);
    return run(max_cycles);
}

void
Machine::publishMetrics(MetricsRegistry &reg) const
{
    reg.counter("iss_instructions").inc(execStats.instructions);
    reg.counter("iss_cycles").inc(execStats.cycles);
    reg.counter("iss_mac_stall_nops").inc(execStats.macStallNops);
    for (size_t k = 0; k < execStats.trapCount.size(); k++) {
        if (!execStats.trapCount[k])
            continue;
        reg.counter("iss_traps",
                    {{"kind", trapKindName(static_cast<TrapKind>(k))}})
            .inc(execStats.trapCount[k]);
    }
    // MAC trigger counts split by the paper's two algorithms (Fig. 1:
    // SWAP-triggered Algorithm 1 vs load-triggered Algorithm 2).
    reg.counter("mac_triggers", {{"alg", "1"}}).inc(macUnit.alg1Macs());
    reg.counter("mac_triggers", {{"alg", "2"}}).inc(macUnit.alg2Macs());
    reg.counter("mac_ops_total").inc(macUnit.totalMacs());
    // Per-op cycle distribution: each mnemonic contributes its mean
    // cycles-per-retirement at its retirement weight (the retired
    // statistics are aggregates, so the per-op mean is the available
    // resolution). The p50/p99 gauges answer "what does a typical /
    // tail retirement cost" without re-running under a profiler.
    Histogram &cyc = reg.histogram("iss_cycles_per_inst",
                                   {1, 2, 3, 4, 5, 8, 16, 32, 64});
    for (size_t i = 0; i < kNumOps; i++) {
        if (!execStats.opCount[i])
            continue;
        MetricLabels op_label{{"op", opName(static_cast<Op>(i))}};
        reg.counter("iss_op_retired", op_label).inc(execStats.opCount[i]);
        reg.counter("iss_op_cycles", op_label).inc(execStats.opCycles[i]);
        cyc.observe(double(execStats.opCycles[i]) /
                        double(execStats.opCount[i]),
                    execStats.opCount[i]);
    }
    reg.gauge("iss_cycles_per_inst_p50").set(cyc.percentile(50));
    reg.gauge("iss_cycles_per_inst_p99").set(cyc.percentile(99));
    reg.gauge("iss_pc").set(pcWord);
    reg.gauge("iss_sp").set(sp());
}

} // namespace jaavr
