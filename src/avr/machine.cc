#include "avr/machine.hh"

#include "support/logging.hh"

namespace jaavr
{

Machine::Machine(CpuMode mode)
    : cpuMode(mode),
      sram(dataSpace - sramBase, 0),
      flash(flashWords, 0xffff)
{
    reset();
}

void
Machine::loadProgram(const std::vector<uint16_t> &words, uint32_t word_addr)
{
    if (word_addr + words.size() > flashWords)
        fatal("Machine::loadProgram: program does not fit in flash");
    for (size_t i = 0; i < words.size(); i++)
        flash[word_addr + i] = words[i];
}

void
Machine::reset()
{
    regs.fill(0);
    io.fill(0);
    std::fill(sram.begin(), sram.end(), 0);
    sregBits = 0;
    pcWord = 0;
    macUnit.reset();
    execStats.reset();
    setSp(0x10ff);  // top of the ATmega128's internal SRAM
}

uint16_t
Machine::regPair(unsigned i) const
{
    return static_cast<uint16_t>(regs[i]) |
           (static_cast<uint16_t>(regs[i + 1]) << 8);
}

void
Machine::setRegPair(unsigned i, uint16_t v)
{
    regs[i] = static_cast<uint8_t>(v);
    regs[i + 1] = static_cast<uint8_t>(v >> 8);
}

uint8_t
Machine::readData(uint16_t addr) const
{
    if (addr < 0x20)
        return regs[addr];
    if (addr < 0x60) {
        uint8_t ioaddr = addr - ioBase;
        if (ioaddr == 0x3f)
            return sregBits;
        return io[ioaddr];
    }
    if (addr < sramBase)
        return 0;  // extended I/O, unused on this ASIP
    return sram[addr - sramBase];
}

void
Machine::writeData(uint16_t addr, uint8_t v)
{
    if (addr < 0x20) {
        regs[addr] = v;
        return;
    }
    if (addr < 0x60) {
        uint8_t ioaddr = addr - ioBase;
        if (ioaddr == 0x3f) {
            sregBits = v;
            return;
        }
        if (ioaddr == ioMaccr)
            macUnit.reset();
        io[ioaddr] = v;
        return;
    }
    if (addr < sramBase)
        return;
    sram[addr - sramBase] = v;
}

void
Machine::writeBytes(uint16_t addr, const std::vector<uint8_t> &bytes)
{
    for (size_t i = 0; i < bytes.size(); i++)
        writeData(addr + i, bytes[i]);
}

std::vector<uint8_t>
Machine::readBytes(uint16_t addr, size_t len) const
{
    std::vector<uint8_t> out(len);
    for (size_t i = 0; i < len; i++)
        out[i] = readData(addr + i);
    return out;
}

uint16_t
Machine::sp() const
{
    return static_cast<uint16_t>(io[0x3d]) |
           (static_cast<uint16_t>(io[0x3e]) << 8);
}

void
Machine::setSp(uint16_t v)
{
    io[0x3d] = static_cast<uint8_t>(v);
    io[0x3e] = static_cast<uint8_t>(v >> 8);
}

void
Machine::setMaccr(uint8_t v)
{
    macUnit.reset();
    io[ioMaccr] = v;
}

void
Machine::setFlag(unsigned f, bool v)
{
    if (v)
        sregBits |= 1u << f;
    else
        sregBits &= ~(1u << f);
}

void
Machine::setZns(uint8_t r)
{
    setFlag(fZ, r == 0);
    setFlag(fN, r & 0x80);
    setFlag(fS, flag(fN) != flag(fV));
}

void
Machine::addFlags(uint8_t d, uint8_t s, uint8_t r)
{
    setFlag(fH, ((d & s) | (s & ~r) | (~r & d)) & 0x08);
    setFlag(fC, ((d & s) | (s & ~r) | (~r & d)) & 0x80);
    setFlag(fV, ((d & s & ~r) | (~d & ~s & r)) & 0x80);
    setZns(r);
}

void
Machine::subFlags(uint8_t d, uint8_t s, uint8_t r, bool keep_z)
{
    setFlag(fH, ((~d & s) | (s & r) | (r & ~d)) & 0x08);
    setFlag(fC, ((~d & s) | (s & r) | (r & ~d)) & 0x80);
    setFlag(fV, ((d & ~s & ~r) | (~d & s & r)) & 0x80);
    setFlag(fN, r & 0x80);
    setFlag(fS, flag(fN) != flag(fV));
    if (keep_z)
        setFlag(fZ, (r == 0) && flag(fZ));
    else
        setFlag(fZ, r == 0);
}

void
Machine::push8(uint8_t v)
{
    writeData(sp(), v);
    setSp(sp() - 1);
}

uint8_t
Machine::pop8()
{
    setSp(sp() + 1);
    return readData(sp());
}

void
Machine::pushPc(uint32_t pc)
{
    // Low byte pushed first, high byte second (popped in reverse).
    push8(static_cast<uint8_t>(pc));
    push8(static_cast<uint8_t>(pc >> 8));
}

uint32_t
Machine::popPc()
{
    uint32_t hi = pop8();
    uint32_t lo = pop8();
    return (hi << 8) | lo;
}

uint16_t
Machine::fetch(uint32_t word_addr) const
{
    return flash[word_addr & (flashWords - 1)];
}

bool
Machine::touchesMacRegs(const Inst &inst) const
{
    auto in_set = [](unsigned r) { return r <= 8 || (r >= 16 && r <= 19); };

    switch (inst.op) {
      // MUL family writes R1:R0 and reads rd/rr.
      case Op::MUL: case Op::MULS: case Op::MULSU:
      case Op::FMUL: case Op::FMULS: case Op::FMULSU:
        return true;
      case Op::MOVW:
        return in_set(inst.rd) || in_set(inst.rd + 1) ||
               in_set(inst.rr) || in_set(inst.rr + 1);
      case Op::ADIW: case Op::SBIW:
        return in_set(inst.rd) || in_set(inst.rd + 1);
      // Two-register ops.
      case Op::ADD: case Op::ADC: case Op::SUB: case Op::SBC:
      case Op::AND: case Op::OR: case Op::EOR: case Op::MOV:
      case Op::CP: case Op::CPC: case Op::CPSE:
        return in_set(inst.rd) || in_set(inst.rr);
      // Single-register ops (loads/stores/immediates included).
      case Op::SUBI: case Op::SBCI: case Op::ANDI: case Op::ORI:
      case Op::CPI: case Op::LDI: case Op::COM: case Op::NEG:
      case Op::SWAP: case Op::INC: case Op::DEC: case Op::ASR:
      case Op::LSR: case Op::ROR: case Op::BLD: case Op::BST:
      case Op::SBRC: case Op::SBRS: case Op::IN: case Op::OUT:
      case Op::PUSH: case Op::POP: case Op::LDS: case Op::STS:
      case Op::LD_X: case Op::LD_X_INC: case Op::LD_X_DEC:
      case Op::LDD_Y: case Op::LD_Y_INC: case Op::LD_Y_DEC:
      case Op::LDD_Z: case Op::LD_Z_INC: case Op::LD_Z_DEC:
      case Op::ST_X: case Op::ST_X_INC: case Op::ST_X_DEC:
      case Op::STD_Y: case Op::ST_Y_INC: case Op::ST_Y_DEC:
      case Op::STD_Z: case Op::ST_Z_INC: case Op::ST_Z_DEC:
      case Op::LPM: case Op::LPM_INC:
        return in_set(inst.rd);
      case Op::LPM_R0:
        return true;  // writes R0
      default:
        return false;
    }
}

void
Machine::triggerLoadMac(uint8_t value)
{
    // The two micro-MACs are applied immediately; the shadow counter
    // plus the hazard checks in step() make that indistinguishable
    // from the real one-per-following-cycle retirement.
    macUnit.mac(regs, value & 0x0f);
    macUnit.mac(regs, value >> 4);
}

unsigned
Machine::step()
{
    uint32_t pc0 = pcWord;
    uint16_t w0 = fetch(pc0);
    uint16_t w1 = fetch(pc0 + 1);
    Inst inst = decode(w0, w1);

    if (inst.op == Op::INVALID)
        panic("invalid opcode 0x%04x at pc=0x%x", w0, pc0);

    if (trace)
        inform("%6llu  %04x: %s",
               static_cast<unsigned long long>(execStats.cycles), pc0,
               disassemble(inst).c_str());

    // MAC shadow hazard check (Algorithm 2's 13-register rule): the
    // instructions executing while MAC micro-ops are pending must not
    // touch {R0..R8, R16..R19}. A new R24 load is allowed (pipelined
    // retriggering) unless both micro-ops of the previous trigger are
    // still outstanding.
    bool ise = cpuMode == CpuMode::ISE;
    bool load_mac = ise && (io[ioMaccr] & MacUnit::ctrlLoadMode);
    bool swap_mac = ise && (io[ioMaccr] & MacUnit::ctrlSwapMode);
    const uint8_t shadow = macUnit.pendingShadow();
    bool is_r24_load =
        load_mac && inst.rd == 24 &&
        (inst.op == Op::LDD_Y || inst.op == Op::LDD_Z ||
         inst.op == Op::LD_X || inst.op == Op::LD_X_INC ||
         inst.op == Op::LD_Y_INC || inst.op == Op::LD_Z_INC ||
         inst.op == Op::LDS);
    if (shadow > 0 && touchesMacRegs(inst) && !is_r24_load)
        panic("MAC hazard: '%s' touches R0-R8/R16-R19 in the MAC "
              "shadow (pc=0x%x)", disassemble(inst).c_str(), pc0);
    if (shadow >= 2 && is_r24_load)
        panic("MAC hazard: back-to-back Algorithm-2 triggers "
              "(pc=0x%x)", pc0);

    uint32_t next_pc = pc0 + inst.words;
    unsigned cycles = baseCycles(inst.op, cpuMode);
    bool mac_triggered = false;

    auto ld_trigger = [&](uint8_t v, uint8_t rd) {
        if (load_mac && rd == 24) {
            triggerLoadMac(v);
            mac_triggered = true;
        }
    };

    switch (inst.op) {
      case Op::ADD: {
        uint8_t d = regs[inst.rd], s = regs[inst.rr];
        uint8_t r = d + s;
        regs[inst.rd] = r;
        addFlags(d, s, r);
        break;
      }
      case Op::ADC: {
        uint8_t d = regs[inst.rd], s = regs[inst.rr];
        uint8_t r = d + s + (flag(fC) ? 1 : 0);
        regs[inst.rd] = r;
        addFlags(d, s, r);
        break;
      }
      case Op::SUB: {
        uint8_t d = regs[inst.rd], s = regs[inst.rr];
        uint8_t r = d - s;
        regs[inst.rd] = r;
        subFlags(d, s, r, false);
        break;
      }
      case Op::SBC: {
        uint8_t d = regs[inst.rd], s = regs[inst.rr];
        uint8_t r = d - s - (flag(fC) ? 1 : 0);
        regs[inst.rd] = r;
        subFlags(d, s, r, true);
        break;
      }
      case Op::SUBI: {
        uint8_t d = regs[inst.rd];
        uint8_t r = d - inst.imm;
        regs[inst.rd] = r;
        subFlags(d, inst.imm, r, false);
        break;
      }
      case Op::SBCI: {
        uint8_t d = regs[inst.rd];
        uint8_t r = d - inst.imm - (flag(fC) ? 1 : 0);
        regs[inst.rd] = r;
        subFlags(d, inst.imm, r, true);
        break;
      }
      case Op::CP: {
        uint8_t d = regs[inst.rd], s = regs[inst.rr];
        subFlags(d, s, d - s, false);
        break;
      }
      case Op::CPC: {
        uint8_t d = regs[inst.rd], s = regs[inst.rr];
        uint8_t r = d - s - (flag(fC) ? 1 : 0);
        subFlags(d, s, r, true);
        break;
      }
      case Op::CPI: {
        uint8_t d = regs[inst.rd];
        subFlags(d, inst.imm, d - inst.imm, false);
        break;
      }
      case Op::AND: case Op::ANDI: {
        uint8_t s = inst.op == Op::AND ? regs[inst.rr] : inst.imm;
        uint8_t r = regs[inst.rd] & s;
        regs[inst.rd] = r;
        setFlag(fV, false);
        setZns(r);
        break;
      }
      case Op::OR: case Op::ORI: {
        uint8_t s = inst.op == Op::OR ? regs[inst.rr] : inst.imm;
        uint8_t r = regs[inst.rd] | s;
        regs[inst.rd] = r;
        setFlag(fV, false);
        setZns(r);
        break;
      }
      case Op::EOR: {
        uint8_t r = regs[inst.rd] ^ regs[inst.rr];
        regs[inst.rd] = r;
        setFlag(fV, false);
        setZns(r);
        break;
      }
      case Op::MOV:
        regs[inst.rd] = regs[inst.rr];
        break;
      case Op::MOVW:
        regs[inst.rd] = regs[inst.rr];
        regs[inst.rd + 1] = regs[inst.rr + 1];
        break;
      case Op::LDI:
        regs[inst.rd] = inst.imm;
        break;
      case Op::ADIW: {
        uint16_t d = regPair(inst.rd);
        uint16_t r = d + inst.imm;
        setRegPair(inst.rd, r);
        setFlag(fV, !(d & 0x8000) && (r & 0x8000));
        setFlag(fC, !(r & 0x8000) && (d & 0x8000));
        setFlag(fN, r & 0x8000);
        setFlag(fZ, r == 0);
        setFlag(fS, flag(fN) != flag(fV));
        break;
      }
      case Op::SBIW: {
        uint16_t d = regPair(inst.rd);
        uint16_t r = d - inst.imm;
        setRegPair(inst.rd, r);
        setFlag(fV, (d & 0x8000) && !(r & 0x8000));
        setFlag(fC, (r & 0x8000) && !(d & 0x8000));
        setFlag(fN, r & 0x8000);
        setFlag(fZ, r == 0);
        setFlag(fS, flag(fN) != flag(fV));
        break;
      }
      case Op::MUL: {
        uint16_t p = static_cast<uint16_t>(regs[inst.rd]) * regs[inst.rr];
        regs[0] = static_cast<uint8_t>(p);
        regs[1] = static_cast<uint8_t>(p >> 8);
        setFlag(fC, p & 0x8000);
        setFlag(fZ, p == 0);
        break;
      }
      case Op::MULS: {
        int16_t p = static_cast<int16_t>(static_cast<int8_t>(regs[inst.rd])) *
                    static_cast<int8_t>(regs[inst.rr]);
        uint16_t u = static_cast<uint16_t>(p);
        regs[0] = static_cast<uint8_t>(u);
        regs[1] = static_cast<uint8_t>(u >> 8);
        setFlag(fC, u & 0x8000);
        setFlag(fZ, u == 0);
        break;
      }
      case Op::MULSU: {
        int16_t p = static_cast<int16_t>(static_cast<int8_t>(regs[inst.rd])) *
                    static_cast<uint8_t>(regs[inst.rr]);
        uint16_t u = static_cast<uint16_t>(p);
        regs[0] = static_cast<uint8_t>(u);
        regs[1] = static_cast<uint8_t>(u >> 8);
        setFlag(fC, u & 0x8000);
        setFlag(fZ, u == 0);
        break;
      }
      case Op::FMUL: case Op::FMULS: case Op::FMULSU: {
        int32_t p;
        if (inst.op == Op::FMUL)
            p = static_cast<uint16_t>(regs[inst.rd]) * regs[inst.rr];
        else if (inst.op == Op::FMULS)
            p = static_cast<int8_t>(regs[inst.rd]) *
                static_cast<int8_t>(regs[inst.rr]);
        else
            p = static_cast<int8_t>(regs[inst.rd]) * regs[inst.rr];
        uint16_t u = static_cast<uint16_t>(p);
        setFlag(fC, u & 0x8000);
        u <<= 1;
        regs[0] = static_cast<uint8_t>(u);
        regs[1] = static_cast<uint8_t>(u >> 8);
        setFlag(fZ, u == 0);
        break;
      }
      case Op::COM: {
        uint8_t r = ~regs[inst.rd];
        regs[inst.rd] = r;
        setFlag(fC, true);
        setFlag(fV, false);
        setZns(r);
        break;
      }
      case Op::NEG: {
        uint8_t d = regs[inst.rd];
        uint8_t r = -d;
        regs[inst.rd] = r;
        subFlags(0, d, r, false);
        break;
      }
      case Op::SWAP: {
        uint8_t d = regs[inst.rd];
        if (swap_mac)
            macUnit.mac(regs, d & 0x0f);
        regs[inst.rd] = static_cast<uint8_t>((d << 4) | (d >> 4));
        break;
      }
      case Op::INC: {
        uint8_t r = regs[inst.rd] + 1;
        regs[inst.rd] = r;
        setFlag(fV, r == 0x80);
        setZns(r);
        break;
      }
      case Op::DEC: {
        uint8_t r = regs[inst.rd] - 1;
        regs[inst.rd] = r;
        setFlag(fV, r == 0x7f);
        setZns(r);
        break;
      }
      case Op::ASR: {
        uint8_t d = regs[inst.rd];
        uint8_t r = static_cast<uint8_t>((d >> 1) | (d & 0x80));
        regs[inst.rd] = r;
        setFlag(fC, d & 1);
        setFlag(fN, r & 0x80);
        setFlag(fV, flag(fN) != flag(fC));
        setFlag(fZ, r == 0);
        setFlag(fS, flag(fN) != flag(fV));
        break;
      }
      case Op::LSR: {
        uint8_t d = regs[inst.rd];
        uint8_t r = d >> 1;
        regs[inst.rd] = r;
        setFlag(fC, d & 1);
        setFlag(fN, false);
        setFlag(fV, flag(fN) != flag(fC));
        setFlag(fZ, r == 0);
        setFlag(fS, flag(fN) != flag(fV));
        break;
      }
      case Op::ROR: {
        uint8_t d = regs[inst.rd];
        uint8_t r = static_cast<uint8_t>((d >> 1) | (flag(fC) ? 0x80 : 0));
        regs[inst.rd] = r;
        setFlag(fC, d & 1);
        setFlag(fN, r & 0x80);
        setFlag(fV, flag(fN) != flag(fC));
        setFlag(fZ, r == 0);
        setFlag(fS, flag(fN) != flag(fV));
        break;
      }
      case Op::BSET:
        setFlag(inst.bit, true);
        break;
      case Op::BCLR:
        setFlag(inst.bit, false);
        break;
      case Op::BLD:
        if (flag(fT))
            regs[inst.rd] |= 1u << inst.bit;
        else
            regs[inst.rd] &= ~(1u << inst.bit);
        break;
      case Op::BST:
        setFlag(fT, regs[inst.rd] & (1u << inst.bit));
        break;
      case Op::SBI:
        writeData(ioBase + inst.imm,
                  readData(ioBase + inst.imm) | (1u << inst.bit));
        break;
      case Op::CBI:
        writeData(ioBase + inst.imm,
                  readData(ioBase + inst.imm) & ~(1u << inst.bit));
        break;
      case Op::SBIC: case Op::SBIS: {
        bool bit = readData(ioBase + inst.imm) & (1u << inst.bit);
        bool skip = inst.op == Op::SBIS ? bit : !bit;
        if (skip) {
            bool two = isTwoWord(fetch(next_pc));
            cycles += skipExtra(two);
            next_pc += two ? 2 : 1;
        }
        break;
      }
      case Op::IN:
        regs[inst.rd] = readData(ioBase + inst.imm);
        break;
      case Op::OUT:
        writeData(ioBase + inst.imm, regs[inst.rd]);
        break;

      case Op::LD_X: case Op::LD_X_INC: case Op::LD_X_DEC: {
        uint16_t a = x();
        if (inst.op == Op::LD_X_DEC)
            setX(--a);
        uint8_t v = readData(a);
        regs[inst.rd] = v;
        if (inst.op == Op::LD_X_INC)
            setX(a + 1);
        ld_trigger(v, inst.rd);
        break;
      }
      case Op::LD_Y_INC: case Op::LD_Y_DEC: case Op::LDD_Y: {
        uint16_t a = y();
        if (inst.op == Op::LD_Y_DEC)
            setY(--a);
        else if (inst.op == Op::LDD_Y)
            a += inst.disp;
        uint8_t v = readData(a);
        regs[inst.rd] = v;
        if (inst.op == Op::LD_Y_INC)
            setY(a + 1);
        ld_trigger(v, inst.rd);
        break;
      }
      case Op::LD_Z_INC: case Op::LD_Z_DEC: case Op::LDD_Z: {
        uint16_t a = z();
        if (inst.op == Op::LD_Z_DEC)
            setZ(--a);
        else if (inst.op == Op::LDD_Z)
            a += inst.disp;
        uint8_t v = readData(a);
        regs[inst.rd] = v;
        if (inst.op == Op::LD_Z_INC)
            setZ(a + 1);
        ld_trigger(v, inst.rd);
        break;
      }
      case Op::LDS: {
        uint8_t v = readData(static_cast<uint16_t>(inst.k));
        regs[inst.rd] = v;
        ld_trigger(v, inst.rd);
        break;
      }
      case Op::ST_X: case Op::ST_X_INC: case Op::ST_X_DEC: {
        uint16_t a = x();
        if (inst.op == Op::ST_X_DEC)
            setX(--a);
        writeData(a, regs[inst.rd]);
        if (inst.op == Op::ST_X_INC)
            setX(a + 1);
        break;
      }
      case Op::ST_Y_INC: case Op::ST_Y_DEC: case Op::STD_Y: {
        uint16_t a = y();
        if (inst.op == Op::ST_Y_DEC)
            setY(--a);
        else if (inst.op == Op::STD_Y)
            a += inst.disp;
        writeData(a, regs[inst.rd]);
        if (inst.op == Op::ST_Y_INC)
            setY(a + 1);
        break;
      }
      case Op::ST_Z_INC: case Op::ST_Z_DEC: case Op::STD_Z: {
        uint16_t a = z();
        if (inst.op == Op::ST_Z_DEC)
            setZ(--a);
        else if (inst.op == Op::STD_Z)
            a += inst.disp;
        writeData(a, regs[inst.rd]);
        if (inst.op == Op::ST_Z_INC)
            setZ(a + 1);
        break;
      }
      case Op::STS:
        writeData(static_cast<uint16_t>(inst.k), regs[inst.rd]);
        break;
      case Op::PUSH:
        push8(regs[inst.rd]);
        break;
      case Op::POP:
        regs[inst.rd] = pop8();
        break;
      case Op::LPM_R0: case Op::LPM: case Op::LPM_INC: {
        uint16_t a = z();
        uint16_t w = flash[(a >> 1) & (flashWords - 1)];
        uint8_t v = (a & 1) ? static_cast<uint8_t>(w >> 8)
                            : static_cast<uint8_t>(w);
        uint8_t rd = inst.op == Op::LPM_R0 ? 0 : inst.rd;
        regs[rd] = v;
        if (inst.op == Op::LPM_INC)
            setZ(a + 1);
        break;
      }

      case Op::RJMP:
        next_pc = pc0 + 1 + inst.disp;
        break;
      case Op::RCALL:
        pushPc(pc0 + 1);
        next_pc = pc0 + 1 + inst.disp;
        break;
      case Op::JMP:
        next_pc = inst.k;
        break;
      case Op::CALL:
        pushPc(pc0 + 2);
        next_pc = inst.k;
        break;
      case Op::IJMP:
        next_pc = z();
        break;
      case Op::ICALL:
        pushPc(pc0 + 1);
        next_pc = z();
        break;
      case Op::RET: case Op::RETI:
        next_pc = popPc();
        if (inst.op == Op::RETI)
            setFlag(fI, true);
        break;
      case Op::BRBS:
        if (flag(inst.bit)) {
            next_pc = pc0 + 1 + inst.disp;
            cycles += branchTakenExtra;
        }
        break;
      case Op::BRBC:
        if (!flag(inst.bit)) {
            next_pc = pc0 + 1 + inst.disp;
            cycles += branchTakenExtra;
        }
        break;
      case Op::CPSE: case Op::SBRC: case Op::SBRS: {
        bool skip;
        if (inst.op == Op::CPSE)
            skip = regs[inst.rd] == regs[inst.rr];
        else if (inst.op == Op::SBRC)
            skip = !(regs[inst.rd] & (1u << inst.bit));
        else
            skip = regs[inst.rd] & (1u << inst.bit);
        if (skip) {
            bool two = isTwoWord(fetch(next_pc));
            cycles += skipExtra(two);
            next_pc += two ? 2 : 1;
        }
        break;
      }

      case Op::NOP: case Op::SLEEP: case Op::WDR: case Op::BREAK:
        break;

      case Op::INVALID:
        break;
    }

    // Retire pending MAC shadow cycles; a fresh trigger's two
    // micro-ops occupy the two cycles after this instruction.
    if (mac_triggered)
        macUnit.setPendingShadow(2);
    else
        macUnit.setPendingShadow(
            shadow > cycles ? shadow - static_cast<uint8_t>(cycles) : 0);

    pcWord = next_pc & 0xffff;
    execStats.opCount[static_cast<size_t>(inst.op)]++;
    execStats.instructions++;
    execStats.cycles += cycles;
    return cycles;
}

uint64_t
Machine::call(uint32_t word_addr, uint64_t max_cycles)
{
    pushPc(exitAddress);
    pcWord = word_addr & 0xffff;
    uint64_t start = execStats.cycles;
    while (pcWord != exitAddress) {
        step();
        if (execStats.cycles - start > max_cycles)
            panic("Machine::call: cycle budget exceeded "
                  "(pc=0x%x, %llu cycles)", pcWord,
                  static_cast<unsigned long long>(execStats.cycles - start));
    }
    return execStats.cycles - start;
}

} // namespace jaavr
