/**
 * @file
 * Superblock translation cache for the trace-threaded ISS backend
 * (DESIGN.md §11).
 *
 * A superblock is a straight-line trace of predecoded instructions
 * keyed by its entry PC. Translation walks the decode cache from the
 * entry, stitching across direct control transfers (RJMP/JMP become
 * zero-work "ghost" retirements, RCALL/CALL continue into the
 * callee), turning conditional branches and skips into side exits,
 * and terminating on indirect control flow (RET/RETI/IJMP/ICALL),
 * undecodable words, the exit sentinel, a revisited PC (loop
 * back-edge) or the length cap.
 *
 * Execution (Machine::runSuperblock in superblock.cc) dispatches the
 * trace through computed-goto threading; each SbInst carries its
 * handler label plus pre-extracted operands, and cycle/instruction
 * statistics accumulate block-at-a-time from the per-exit prefix
 * sums instead of per instruction.
 *
 * Invalidation is conservative: any flash mutation
 * (Machine::loadProgram, Machine::corruptFlashWord — which is what
 * the GDB `M`/`X` flash-patch path and the fault injector's
 * OpcodeCorrupt use) drops every translated block. Flash cannot
 * change while the superblock loop itself is running (the backend
 * only runs with no hooks, sinks or pending faults attached), so
 * invalidation never races a trace in flight.
 */

#ifndef JAAVR_AVR_SUPERBLOCK_HH
#define JAAVR_AVR_SUPERBLOCK_HH

#include <cstdint>
#include <memory>
#include <vector>

namespace jaavr
{

class Machine;

/**
 * Superblock handler kinds. The synonym encodings (LSL/ROL/TST/CLR,
 * see Synonym in avr/isa.hh) get their own specialized single-operand
 * handlers; SKIP_* and BRBS/BRBC carry precomputed taken-exit
 * metadata; GHOST is a stitched RJMP/JMP (retires, costs only its
 * predecoded cycles, no runtime control transfer); CALL_THROUGH is a
 * stitched RCALL/CALL; EXIT_* terminate the trace. EXIT_STATIC and
 * EXIT_TRAP are pseudo-instructions that do not retire.
 */
#define JAAVR_SB_OPS(X)                                                  \
    X(ADD) X(ADC) X(SUB) X(SBC) X(AND) X(OR) X(EOR) X(MOV)               \
    X(CP) X(CPC)                                                         \
    X(LSL) X(ROL) X(TST) X(CLR)                                          \
    X(MUL) X(MULS) X(MULSU) X(FMUL) X(FMULS) X(FMULSU) X(MOVW)           \
    X(SUBI) X(SBCI) X(ANDI) X(ORI) X(CPI) X(LDI)                         \
    X(ADIW) X(SBIW)                                                      \
    X(COM) X(NEG) X(SWAP) X(INC) X(DEC) X(ASR) X(LSR) X(ROR)             \
    X(BSET) X(BCLR) X(BLD) X(BST)                                        \
    X(SBI) X(CBI) X(IN) X(OUT)                                           \
    X(SKIP_SBIC) X(SKIP_SBIS) X(SKIP_CPSE) X(SKIP_SBRC) X(SKIP_SBRS)     \
    X(LD_X) X(LD_X_INC) X(LD_X_DEC)                                      \
    X(LDD_Y) X(LD_Y_INC) X(LD_Y_DEC)                                     \
    X(LDD_Z) X(LD_Z_INC) X(LD_Z_DEC)                                     \
    X(LDS)                                                               \
    X(ST_X) X(ST_X_INC) X(ST_X_DEC)                                      \
    X(STD_Y) X(ST_Y_INC) X(ST_Y_DEC)                                     \
    X(STD_Z) X(ST_Z_INC) X(ST_Z_DEC)                                     \
    X(STS)                                                               \
    X(PUSH) X(POP) X(LPM_R0) X(LPM) X(LPM_INC)                           \
    X(NOPLIKE)                                                           \
    X(GHOST) X(CALL_THROUGH)                                             \
    X(BRBS) X(BRBC)                                                      \
    X(EXIT_RET) X(EXIT_RETI) X(EXIT_IJMP) X(EXIT_ICALL)                  \
    X(EXIT_STATIC) X(EXIT_TRAP)

enum class SbOp : uint8_t
{
#define X(n) n,
    JAAVR_SB_OPS(X)
#undef X
};

/** Number of SbOp values; sizes the dispatch label table. */
constexpr std::size_t kNumSbOps =
    static_cast<std::size_t>(SbOp::EXIT_TRAP) + 1;

/**
 * One translated trace element (32 bytes): the dispatch label,
 * pre-extracted operands, and the accounting prefix. prefixCycles is
 * the sum of the base cycle costs of every preceding element of the
 * trace (all of which retire), so a trap or side exit at this
 * element charges exactly the retired prefix in O(1); retiring exits
 * add their own `cycles` (plus `extra` when a branch or skip is
 * taken) on top.
 *
 * `pc` is the program counter of the instruction; for the EXIT_STATIC
 * and EXIT_TRAP pseudo-instructions it is the continuation / faulting
 * PC. Translation guarantees that for every retiring non-terminal
 * element, the next element's `pc` equals this instruction's static
 * fall-through successor — which is what the MACCR side exit uses to
 * resume in the fast path after a store enables the MAC unit.
 */
struct SbInst
{
    void *lbl = nullptr;      ///< computed-goto handler (threaded mode)
    uint32_t pc = 0;          ///< program PC (pseudos: continuation PC)
    uint32_t target = 0;      ///< taken-branch / skip target PC
    uint32_t prefixCycles = 0;///< base cycles retired before this element
    uint16_t imm = 0;         ///< immediate / I/O address / LDD disp
    uint16_t addr = 0;        ///< LDS/STS data address; call return PC
    uint8_t op = 0;           ///< architectural Op (for op_count[])
    uint8_t a = 0;            ///< rd / SREG bit
    uint8_t b = 0;            ///< rr / bit number
    uint8_t cycles = 0;       ///< predecoded base cycle cost
    uint8_t extra = 0;        ///< taken-skip extra cycles (skipExtra)
    uint8_t h = 0;            ///< SbOp (switch-dispatch fallback)
};

/** A translated superblock: the trace plus its budget envelope. */
struct SbBlock
{
    uint32_t entry = 0;
    /**
     * Upper bound on the cycles one pass through the trace can
     * consume (total base cost + the largest single exit extra).
     * runSuperblock() pre-checks `consumed + maxCycles` against the
     * budget and delegates budget-critical passes to the fast path,
     * which places the CycleBudget trap with per-instruction
     * precision.
     */
    uint32_t maxCycles = 0;
    std::vector<SbInst> code;
};

/**
 * Entry-PC-keyed cache of translated superblocks. Lookup is a flat
 * table indexed by PC word (one pointer per flash word) so the hot
 * path is a single dependent load; ownership lives in a side vector.
 */
class SuperblockCache
{
  public:
    /** Trace length cap (elements, stitched ghosts/calls included). */
    static constexpr size_t kMaxInsts = 1024;
    /** Block-count cap; translation past it drops the whole cache. */
    static constexpr size_t kMaxBlocks = 4096;

    SuperblockCache();

    /** Translated block entered at @p pc, or nullptr. */
    SbBlock *lookup(uint32_t pc) const { return table[pc & 0xffff]; }

    /**
     * Translate (and cache) the superblock entered at @p pc from
     * @p m's decode cache. @p labels maps SbOp to the computed-goto
     * handler addresses of the executing run loop (null in
     * switch-dispatch builds).
     */
    SbBlock *translate(const Machine &m, uint32_t pc,
                       void *const *labels);

    /** Drop every translated block (flash changed). */
    void invalidateAll();

    /** Number of live translated blocks (telemetry/tests). */
    size_t size() const { return blocks.size(); }

  private:
    std::vector<SbBlock *> table;
    std::vector<std::unique_ptr<SbBlock>> blocks;
};

} // namespace jaavr

#endif // JAAVR_AVR_SUPERBLOCK_HH
