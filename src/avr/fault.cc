#include "avr/fault.hh"

#include "avr/machine.hh"
#include "support/logging.hh"
#include "support/random.hh"

namespace jaavr
{

const char *
faultTargetName(FaultTarget target)
{
    switch (target) {
      case FaultTarget::Gpr: return "gpr";
      case FaultTarget::Sreg: return "sreg";
      case FaultTarget::Sram: return "sram";
      case FaultTarget::MacAcc: return "mac_acc";
      case FaultTarget::InstSkip: return "inst_skip";
      case FaultTarget::OpcodeCorrupt: return "opcode_corrupt";
    }
    return "?";
}

std::string
FaultPlan::describe() const
{
    std::string where;
    switch (target) {
      case FaultTarget::Gpr:
        where = csprintf("r%u ^= 0x%02x", reg, mask & 0xff);
        break;
      case FaultTarget::Sreg:
        where = csprintf("sreg ^= 0x%02x", mask & 0xff);
        break;
      case FaultTarget::Sram:
        where = csprintf("sram[0x%04x] ^= 0x%02x", sramAddr, mask & 0xff);
        break;
      case FaultTarget::MacAcc:
        where = csprintf("mac acc r%u ^= 0x%02x", reg, mask & 0xff);
        break;
      case FaultTarget::InstSkip:
        where = "skip instruction";
        break;
      case FaultTarget::OpcodeCorrupt:
        if (flashAddr == kCurrentPc)
            where = csprintf("flash[pc] ^= 0x%04x", mask);
        else
            where = csprintf("flash[0x%04x] ^= 0x%04x", flashAddr, mask);
        break;
    }
    if (atEntry)
        return csprintf("%s at entry 0x%04x + %llu cycles", where.c_str(),
                        entryPc,
                        static_cast<unsigned long long>(triggerCycle));
    return csprintf("%s at +%llu cycles", where.c_str(),
                    static_cast<unsigned long long>(triggerCycle));
}

void
FaultInjector::arm(const FaultPlan &plan, uint64_t now_cycles)
{
    firedCycle = 0;
    firedPc = 0;
    firedN = 0;
    queue.clear();
    nextIdx = 0;
    corruptions.clear();
    armPlan(plan, now_cycles);
}

void
FaultInjector::armSchedule(const std::vector<FaultPlan> &plans,
                           uint64_t now_cycles)
{
    if (plans.empty()) {
        disarm();
        return;
    }
    arm(plans.front(), now_cycles);
    queue = plans;
    nextIdx = 1;
}

void
FaultInjector::revertFlash(Machine &m) const
{
    for (const auto &[addr, mask] : corruptions)
        m.corruptFlashWord(addr, mask);
}

std::vector<FaultPlan>
burstPlans(const FaultPlan &base, size_t count, uint64_t gap_cycles,
           uint64_t jitter, Rng &rng)
{
    std::vector<FaultPlan> plans;
    plans.reserve(count);
    for (size_t i = 0; i < count; i++) {
        FaultPlan p = base;
        if (i > 0) {
            p.atEntry = false;
            p.triggerCycle =
                gap_cycles + (jitter ? rng.below(jitter + 1) : 0);
        }
        plans.push_back(p);
    }
    return plans;
}

} // namespace jaavr
