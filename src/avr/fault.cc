#include "avr/fault.hh"

#include "avr/machine.hh"
#include "support/logging.hh"

namespace jaavr
{

const char *
faultTargetName(FaultTarget target)
{
    switch (target) {
      case FaultTarget::Gpr: return "gpr";
      case FaultTarget::Sreg: return "sreg";
      case FaultTarget::Sram: return "sram";
      case FaultTarget::MacAcc: return "mac_acc";
      case FaultTarget::InstSkip: return "inst_skip";
      case FaultTarget::OpcodeCorrupt: return "opcode_corrupt";
    }
    return "?";
}

std::string
FaultPlan::describe() const
{
    std::string where;
    switch (target) {
      case FaultTarget::Gpr:
        where = csprintf("r%u ^= 0x%02x", reg, mask & 0xff);
        break;
      case FaultTarget::Sreg:
        where = csprintf("sreg ^= 0x%02x", mask & 0xff);
        break;
      case FaultTarget::Sram:
        where = csprintf("sram[0x%04x] ^= 0x%02x", sramAddr, mask & 0xff);
        break;
      case FaultTarget::MacAcc:
        where = csprintf("mac acc r%u ^= 0x%02x", reg, mask & 0xff);
        break;
      case FaultTarget::InstSkip:
        where = "skip instruction";
        break;
      case FaultTarget::OpcodeCorrupt:
        if (flashAddr == kCurrentPc)
            where = csprintf("flash[pc] ^= 0x%04x", mask);
        else
            where = csprintf("flash[0x%04x] ^= 0x%04x", flashAddr, mask);
        break;
    }
    if (atEntry)
        return csprintf("%s at entry 0x%04x + %llu cycles", where.c_str(),
                        entryPc,
                        static_cast<unsigned long long>(triggerCycle));
    return csprintf("%s at +%llu cycles", where.c_str(),
                    static_cast<unsigned long long>(triggerCycle));
}

void
FaultInjector::arm(const FaultPlan &plan, uint64_t now_cycles)
{
    planV = plan;
    firedCycle = 0;
    firedPc = 0;
    if (plan.atEntry) {
        state = State::WaitEntry;
        fireAt = 0;
    } else {
        state = State::Armed;
        fireAt = now_cycles + plan.triggerCycle;
    }
}

void
FaultInjector::revertFlash(Machine &m) const
{
    if (state != State::Fired || planV.target != FaultTarget::OpcodeCorrupt)
        return;
    uint32_t addr =
        planV.flashAddr == FaultPlan::kCurrentPc ? firedPc : planV.flashAddr;
    m.corruptFlashWord(addr, planV.mask);
}

} // namespace jaavr
