#include "avr/profiler.hh"

#include <algorithm>

#include "avr/machine.hh"
#include "support/json.hh"
#include "support/logging.hh"

namespace jaavr
{

void
ProfileSink::onCall(uint32_t, uint32_t, uint64_t)
{
}

void
ProfileSink::onRet(uint32_t, uint32_t, uint64_t)
{
}

void
ProfileSink::onInst(uint32_t, const Inst &, unsigned, uint64_t)
{
}

TraceSink::TraceSink(std::FILE *out, std::string line_prefix)
    : out(out), prefix(std::move(line_prefix))
{
}

void
TraceSink::onInst(uint32_t pc, const Inst &inst, unsigned,
                  uint64_t cycles_before)
{
    std::fprintf(out, "%s%6llu  %04x: %s\n", prefix.c_str(),
                 static_cast<unsigned long long>(cycles_before), pc,
                 disassemble(inst).c_str());
}

CallGraphProfiler::CallGraphProfiler(Machine &m, SymbolTable symbols,
                                     bool histograms, bool record_trace)
    : machine(&m),
      symbols(std::move(symbols)),
      histograms(histograms),
      recordTrace(record_trace),
      topNode(&nodeMap[kTopAddr])
{
    machine->setProfiler(this);
}

CallGraphProfiler::~CallGraphProfiler()
{
    if (machine && machine->profiler() == this)
        machine->setProfiler(nullptr);
}

void
CallGraphProfiler::reset()
{
    nodeMap.clear();
    frames.clear();
    events.clear();
    topNode = &nodeMap[kTopAddr];
    spurious = 0;
    spSeen = false;
    spMin = spMax = 0;
}

void
CallGraphProfiler::sampleSp()
{
    uint16_t sp = machine->sp();
    if (!spSeen) {
        spMin = spMax = sp;
        spSeen = true;
        return;
    }
    spMin = std::min(spMin, sp);
    spMax = std::max(spMax, sp);
}

void
CallGraphProfiler::onCall(uint32_t, uint32_t target,
                          uint64_t cycles_after)
{
    sampleSp();
    frames.push_back({target, cycles_after, 0, &nodeMap[target]});
    if (recordTrace)
        events.push_back({true, target, cycles_after});
}

void
CallGraphProfiler::onRet(uint32_t, uint32_t, uint64_t cycles_after)
{
    sampleSp();
    if (frames.empty()) {
        spurious++;
        return;
    }
    Frame f = frames.back();
    frames.pop_back();
    uint64_t dur = cycles_after - f.entryCycles;
    f.node->calls++;
    f.node->inclusiveCycles += dur;
    f.node->exclusiveCycles += dur - f.childCycles;
    if (!frames.empty())
        frames.back().childCycles += dur;
    if (recordTrace)
        events.push_back({false, f.addr, cycles_after});
}

void
CallGraphProfiler::onInst(uint32_t, const Inst &inst,
                          unsigned inst_cycles, uint64_t)
{
    Node *n = frames.empty() ? topNode : frames.back().node;
    n->instructions++;
    n->opCount[static_cast<size_t>(inst.op)]++;
    n->opCycles[static_cast<size_t>(inst.op)] += inst_cycles;
    if (isLoadOp(inst.op))
        n->loads++;
    else if (isStoreOp(inst.op))
        n->stores++;
    sampleSp();
}

const CallGraphProfiler::Node *
CallGraphProfiler::node(uint32_t addr) const
{
    auto it = nodeMap.find(addr);
    return it == nodeMap.end() ? nullptr : &it->second;
}

const CallGraphProfiler::Node *
CallGraphProfiler::nodeByName(const std::string &name) const
{
    for (const auto &[addr, sym] : symbols.entries())
        if (sym == name)
            return node(addr);
    return nullptr;
}

std::string
CallGraphProfiler::name(uint32_t addr) const
{
    if (addr == kTopAddr)
        return "<top>";
    return symbols.resolve(addr);
}

std::string
CallGraphProfiler::textReport(size_t max_rows) const
{
    std::vector<std::pair<uint32_t, const Node *>> rows;
    for (const auto &[addr, n] : nodeMap)
        if (n.calls || n.instructions)
            rows.push_back({addr, &n});
    std::sort(rows.begin(), rows.end(), [](const auto &a, const auto &b) {
        return a.second->inclusiveCycles > b.second->inclusiveCycles;
    });

    std::string out = csprintf(
        "  %-28s %8s %14s %14s %12s %8s %8s %6s\n", "routine", "calls",
        "incl cyc", "excl cyc", "instr", "loads", "stores", "nops");
    size_t shown = 0;
    uint64_t rest_incl = 0, rest_rows = 0;
    for (const auto &[addr, n] : rows) {
        if (shown < max_rows) {
            out += csprintf(
                "  %-28s %8llu %14llu %14llu %12llu %8llu %8llu %6llu\n",
                name(addr).c_str(),
                static_cast<unsigned long long>(n->calls),
                static_cast<unsigned long long>(n->inclusiveCycles),
                static_cast<unsigned long long>(n->exclusiveCycles),
                static_cast<unsigned long long>(n->instructions),
                static_cast<unsigned long long>(n->loads),
                static_cast<unsigned long long>(n->stores),
                static_cast<unsigned long long>(n->count(Op::NOP)));
            shown++;
        } else {
            rest_incl += n->inclusiveCycles;
            rest_rows++;
        }
    }
    if (rest_rows)
        out += csprintf("  ... %llu more routines, %llu inclusive "
                        "cycles\n",
                        static_cast<unsigned long long>(rest_rows),
                        static_cast<unsigned long long>(rest_incl));
    return out;
}

bool
CallGraphProfiler::writeJsonLines(const std::string &path,
                                  const std::string &bench,
                                  const std::string &workload) const
{
    bool ok = true;
    for (const auto &[addr, n] : nodeMap) {
        if (!n.calls && !n.instructions)
            continue;
        JsonLine line;
        line.str("bench", bench)
            .str("workload", workload)
            .str("symbol", name(addr))
            .num("calls", n.calls)
            .num("inclusive_cycles", n.inclusiveCycles)
            .num("exclusive_cycles", n.exclusiveCycles)
            .num("instructions", n.instructions)
            .num("loads", n.loads)
            .num("stores", n.stores)
            .num("movw", n.count(Op::MOVW))
            .num("swap", n.count(Op::SWAP))
            .num("nop", n.count(Op::NOP))
            .num("push", n.count(Op::PUSH))
            .num("pop", n.count(Op::POP));
        ok = appendJsonLine(path, line) && ok;
    }
    return ok;
}

bool
CallGraphProfiler::writeChromeTrace(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot write Chrome trace to %s", path.c_str());
        return false;
    }
    std::fprintf(f, "{\"traceEvents\":[");
    bool first = true;
    size_t open_depth = 0;
    uint64_t last_ts = 0;
    auto emit = [&](const TraceEvent &e) {
        std::fprintf(
            f, "%s\n{\"name\":\"%s\",\"cat\":\"call\",\"ph\":\"%c\","
               "\"ts\":%llu,\"pid\":0,\"tid\":0}",
            first ? "" : ",", jsonEscape(name(e.addr)).c_str(),
            e.begin ? 'B' : 'E',
            static_cast<unsigned long long>(e.ts));
        first = false;
        last_ts = e.ts;
    };
    for (const TraceEvent &e : events) {
        emit(e);
        open_depth += e.begin ? 1 : -1;
    }
    // Close frames the program never returned from, so B/E pairing
    // (and the viewer's nesting) stays valid.
    std::vector<TraceEvent> closers;
    for (size_t i = frames.size(); i-- > 0 && open_depth > 0;
         open_depth--)
        closers.push_back({false, frames[i].addr, last_ts});
    for (const TraceEvent &e : closers)
        emit(e);
    std::fprintf(f, "\n],\"displayTimeUnit\":\"ns\"}\n");
    std::fclose(f);
    return true;
}

} // namespace jaavr
