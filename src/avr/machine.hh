/**
 * @file
 * The JAAVR machine model: an ATmega128-compatible AVR core with the
 * three operating modes of the paper (CA / FAST / ISE) and the
 * (32 x 4)-bit MAC instruction-set extension.
 *
 * Memory map (ATmega128 data space):
 *   0x0000-0x001f  general-purpose registers R0..R31
 *   0x0020-0x005f  I/O space (SPL/SPH/SREG at 0x5d/0x5e/0x5f;
 *                  the MACCR extension register at 0x005c, I/O 0x3c)
 *   0x0100-0xffff  SRAM
 */

#ifndef JAAVR_AVR_MACHINE_HH
#define JAAVR_AVR_MACHINE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "avr/isa.hh"
#include "avr/mac_unit.hh"
#include "avr/timing.hh"

namespace jaavr
{

class ProfileSink;
class FaultInjector;
class Machine;
class MetricsRegistry;
class SuperblockCache;
struct Trap;

/**
 * Execution backend selected for run()/call() (see DESIGN.md §11):
 * Reference is the per-step decode loop, Fast the predecoded
 * mode-specialized loop of PR 1, Superblock the trace-translating
 * threaded-dispatch backend built on top of the decode cache.
 * Superblock is the default where legal; runs with attached sinks,
 * hooks, pending faults or tracing fall back exactly as before
 * (sinks → reference, hooks/faults → specialized fast loops).
 * Overridable via JAAVR_ISS_BACKEND=reference|fast|superblock;
 * JAAVR_ISS_REFERENCE=1 still forces the reference loop and wins.
 */
enum class IssBackend : uint8_t
{
    Reference,
    Fast,
    Superblock,
};

/** Short stable name for @p backend ("reference", ...). */
const char *issBackendName(IssBackend backend);

/**
 * Cycle-accurate waveform observer (src/avr/vcd.hh implements it as
 * a VCD writer). Unlike ProfileSink/DebugHook — whose events carry
 * their own arguments so the fast path can keep hot state in loop
 * locals — a wave sink samples the *machine itself* after every
 * retirement, which only the reference path keeps current per
 * instruction. run() therefore routes through the reference loop
 * while active() is true and through the normal zero-overhead fast
 * path while it is false: an attached-but-idle sink costs exactly
 * zero cycles, pinned by tests/test_vcd.cc the same way
 * DebugHookAddsZeroCyclesWhenNotStopping pins the debug hook.
 * active() is sampled once at run() entry; the sink must outlive the
 * machine or detach before destruction.
 */
class WaveSink
{
  public:
    virtual ~WaveSink() = default;

    /** True while the sink wants per-instruction samples. */
    virtual bool active() const = 0;

    /**
     * The instruction @p inst (fetched from @p pc) just retired for
     * @p cycles cycles; the machine's architectural state is current.
     */
    virtual void onStep(const Machine &m, uint32_t pc, const Inst &inst,
                        unsigned cycles) = 0;

    /** Execution stopped on @p trap (machine state as of the trap). */
    virtual void onTrap(const Machine &m, const Trap &trap) = 0;
};

/**
 * Cold-path trap observer (src/obs/ flight recorder): every
 * run()/call() that stops on a trap — on any backend, fast or
 * reference — reports it here exactly once, from the same funnel
 * that bumps ExecStats::trapCount. The hook fires strictly *after*
 * the executed region has been accounted, so attaching a sink can
 * never perturb simulated cycles or architectural state (pinned by
 * tests/test_obs.cc on all three backends); with no trap raised it
 * is never consulted at all. The sink must outlive the machine or
 * detach before destruction.
 */
class TrapSink
{
  public:
    virtual ~TrapSink() = default;

    /** run()/call() stopped on @p trap (already counted in stats). */
    virtual void onTrap(const Machine &m, const Trap &trap) = 0;
};

/**
 * Execution-boundary observer for the debug subsystem (src/debug/):
 * the Machine consults an attached hook for stop requests at every
 * instruction boundary and reports every data-space access, which is
 * what software breakpoints and data watchpoints are built from.
 *
 * The hook follows the ProfileSink pinning discipline: the predecoded
 * fast path compiles a separate hooked loop instantiation, selected
 * only when wantsStops() is true at run() entry, so with no debugger
 * attached (or a debugger with nothing to watch) the plain loop runs
 * with zero overhead (pinned by tests/test_decode_cache.cc). During
 * the fast path the machine's register file, SREG, PC and ExecStats
 * members are batched in loop locals, so hook implementations must
 * rely on the event arguments only and must not mutate the machine.
 */
class DebugHook
{
  public:
    virtual ~DebugHook() = default;

    /**
     * Sampled once at run() entry to select the hooked loop
     * instantiation; return false while there is nothing to stop for
     * and the plain (zero-overhead) loop may run.
     */
    virtual bool wantsStops() const = 0;

    /**
     * Instruction boundary: the instruction at @p pc is about to
     * execute, @p cycles is the cumulative cycle count. Return true
     * to stop execution before it (the run raises a DebugBreak trap
     * with nothing retired, so PC still points at @p pc).
     */
    virtual bool onBoundary(uint32_t pc, uint64_t cycles) = 0;

    /** A data-space load from / store to @p addr is executing. */
    virtual void onLoad(uint16_t addr) = 0;
    virtual void onStore(uint16_t addr) = 0;
};

/**
 * Reason a run stopped before reaching the exit sentinel. Every
 * anomaly the ISS previously panic()-aborted on is now a recoverable
 * trap so a fault-injection campaign can run tens of thousands of
 * perturbed executions in one process (see DESIGN.md, "Fault model
 * & hardening").
 */
enum class TrapKind : uint8_t
{
    None = 0,
    IllegalOpcode,    ///< undecodable (reserved) opcode word
    FlashOutOfBounds, ///< PC reached erased flash (left the program)
    SramOutOfBounds,  ///< data access beyond Machine::dataLimit()
    StackOverflow,    ///< push below Machine::stackGuard()
    CycleBudget,      ///< run()/call() cycle budget exhausted
    MacHazard,        ///< Algorithm-2 MAC shadow-register violation
    DebugBreak,       ///< an attached DebugHook requested a stop
};

/** Short stable name for @p kind ("illegal_opcode", ...). */
const char *trapKindName(TrapKind kind);

/**
 * A raised trap: the reason, the word address of the faulting
 * instruction (for CycleBudget: the next instruction), and a
 * kind-specific detail — the offending data address for
 * SramOutOfBounds/StackOverflow, the opcode word for
 * IllegalOpcode/FlashOutOfBounds, 1 for a back-to-back MacHazard.
 * The trapping instruction does not retire: PC, registers and
 * statistics are left as of just before it, identically on the
 * reference and fast paths.
 */
struct Trap
{
    TrapKind kind = TrapKind::None;
    uint32_t pc = 0;
    uint16_t addr = 0;

    explicit operator bool() const { return kind != TrapKind::None; }
    bool operator==(const Trap &) const = default;

    /** One-line human-readable description. */
    std::string describe() const;
};

/**
 * Result of Machine::run()/call(): consumed cycles plus the trap
 * that stopped execution (kind None on a clean exit). Converts
 * implicitly to the cycle count so existing `uint64_t cycles =
 * m.call(...)` call sites keep working unchanged.
 */
struct RunResult
{
    uint64_t cycles = 0;
    Trap trap;

    bool ok() const { return trap.kind == TrapKind::None; }
    operator uint64_t() const { return cycles; }
};

/** Per-mnemonic execution statistics. */
struct ExecStats
{
    std::array<uint64_t, kNumOps> opCount{};
    std::array<uint64_t, kNumOps> opCycles{};
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    /** NOPs retired while MAC micro-ops were pending (hazard stalls). */
    uint64_t macStallNops = 0;
    /** Traps raised by run()/call(), indexed by TrapKind. */
    std::array<uint64_t, 8> trapCount{};

    uint64_t count(Op op) const
    {
        return opCount[static_cast<size_t>(op)];
    }

    /** Cycles consumed by all retirements of @p op. */
    uint64_t cyclesOf(Op op) const
    {
        return opCycles[static_cast<size_t>(op)];
    }

    /** Number of traps of @p kind raised by run()/call(). */
    uint64_t traps(TrapKind kind) const
    {
        return trapCount[static_cast<size_t>(kind)];
    }

    void reset() { *this = ExecStats(); }
};

/**
 * One predecoded flash word: the decoded instruction plus everything
 * the run loop would otherwise recompute per dynamic instruction
 * (base cycle cost for the machine's mode, MAC hazard metadata).
 * The Machine keeps one of these per flash word, refreshed
 * incrementally by loadProgram(); see DESIGN.md, "ISS execution
 * pipeline".
 */
struct DecodedInst
{
    Inst inst;
    uint8_t cycles = 1;       ///< baseCycles(inst.op, mode)
    bool touchesMac = false;  ///< reads/writes {R0..R8, R16..R19}
    bool macLoadForm = false; ///< Algorithm-2 trigger shape (load to R24)
    Synonym synonym = Synonym::None; ///< canonicalized alias encoding
};

class Machine
{
  public:
    static constexpr uint32_t flashWords = 0x10000;
    static constexpr uint16_t ioBase = 0x20;
    static constexpr uint16_t sramBase = 0x0100;
    static constexpr uint32_t dataSpace = 0x10000;
    /** I/O address of the MAC control register (ASIP extension). */
    static constexpr uint8_t ioMaccr = 0x3c;
    /** Word address used as the top-level return sentinel. */
    static constexpr uint32_t exitAddress = 0xffff;

    explicit Machine(CpuMode mode);
    ~Machine();

    CpuMode mode() const { return cpuMode; }

    /** Copy @p words into flash at @p word_addr. */
    void loadProgram(const std::vector<uint16_t> &words,
                     uint32_t word_addr = 0);

    /** Clear registers, SREG, data memory and statistics (not flash). */
    void reset();

    // --- Register and memory access (for harnesses and tests) -------

    uint8_t reg(unsigned i) const { return regs[i]; }
    void setReg(unsigned i, uint8_t v) { regs[i] = v; }

    /** Little-endian register pair (i, i+1). */
    uint16_t regPair(unsigned i) const;
    void setRegPair(unsigned i, uint16_t v);

    void setX(uint16_t v) { setRegPair(26, v); }
    void setY(uint16_t v) { setRegPair(28, v); }
    void setZ(uint16_t v) { setRegPair(30, v); }
    uint16_t x() const { return regPair(26); }
    uint16_t y() const { return regPair(28); }
    uint16_t z() const { return regPair(30); }

    uint8_t readData(uint16_t addr) const;
    void writeData(uint16_t addr, uint8_t v);
    void writeBytes(uint16_t addr, const std::vector<uint8_t> &bytes);
    std::vector<uint8_t> readBytes(uint16_t addr, size_t len) const;

    uint16_t sp() const;
    void setSp(uint16_t v);
    uint8_t sreg() const { return sregBits; }
    void setSreg(uint8_t v) { sregBits = v; }
    uint32_t pc() const { return pcWord; }
    void setPc(uint32_t word_addr) { pcWord = word_addr & 0xffff; }

    /** Write MACCR (resets the MAC unit state, like an OUT would). */
    void setMaccr(uint8_t v);
    uint8_t maccr() const { return io[ioMaccr]; }

    // --- Execution ---------------------------------------------------

    /** Default runaway-program cycle budget for run()/call(). */
    static constexpr uint64_t defaultCycleBudget = 100000000ULL;

    /**
     * Execute one instruction; returns its cycle cost, or 0 with
     * trap() set if the instruction trapped (in which case nothing
     * retired: PC and statistics are unchanged). Clears any trap left
     * by a previous step()/run() first, so trap() always describes
     * this step.
     *
     * This is the *reference* path: it re-fetches and re-decodes the
     * flash words on every call and evaluates the mode/trace/MAC
     * branches at run time. run() normally executes through the
     * predecoded fast path instead and is validated against this
     * implementation (tests/test_decode_cache.cc).
     */
    unsigned step();

    /**
     * Run from the current PC until it reaches exitAddress. Returns
     * the consumed cycles plus the trap that stopped execution, if
     * any; a CycleBudget trap is raised once @p max_cycles cycles
     * have been consumed (>= semantics: consuming exactly the budget
     * traps, identically on the fast and reference paths).
     *
     * Dispatches to a mode-specialized predecoded loop unless trace
     * or forceReference is set, which select the step()-based
     * reference loop.
     */
    RunResult run(uint64_t max_cycles = defaultCycleBudget);

    /**
     * Call the routine at @p word_addr: pushes the exit sentinel,
     * runs until the matching RET, returns the consumed cycles.
     * Trap/budget semantics as in run().
     */
    RunResult call(uint32_t word_addr,
                   uint64_t max_cycles = defaultCycleBudget);

    /** Trap raised by the last step()/run()/call(), kind None if
     *  execution completed cleanly. Cleared by run()/call()/reset(). */
    const Trap &trap() const { return pendingTrap; }

    // --- Memory protection bounds ------------------------------------

    /**
     * Highest valid data-space address for loads, stores, pushes and
     * pops; anything above raises SramOutOfBounds. Defaults to
     * 0x10ff, the top of the ATmega128's internal SRAM — addresses
     * beyond it have no physical memory and previously aliased the
     * simulator's oversized backing array silently.
     */
    uint16_t dataLimit() const { return dataLimitV; }
    void setDataLimit(uint16_t v) { dataLimitV = v; }

    /**
     * Lowest address the stack may push to; a push targeting an
     * address below it raises StackOverflow before the write (the
     * data segment stays intact). Defaults to sramBase.
     */
    uint16_t stackGuard() const { return stackGuardV; }
    void setStackGuard(uint16_t v) { stackGuardV = v; }

    /** Predecoded view of flash word @p word_addr (fast-path source). */
    const DecodedInst &decoded(uint32_t word_addr) const
    {
        return decodeCache[word_addr & (flashWords - 1)];
    }

    const ExecStats &stats() const { return execStats; }
    void resetStats() { execStats.reset(); }

    const MacUnit &mac() const { return macUnit; }

    /**
     * Attach an execution observer (nullptr detaches). Both paths
     * fire its events; with no sink attached the fast path carries
     * zero profiling overhead (a separate loop instantiation). The
     * sink must outlive the machine or detach before destruction.
     */
    void setProfiler(ProfileSink *sink);
    ProfileSink *profiler() const { return profSink; }

    /**
     * Attach a fault injector (nullptr detaches). With no armed plan
     * the fast path carries zero injection overhead (a separate loop
     * instantiation, as for ProfileSink). The injector must outlive
     * the machine or detach before destruction.
     */
    void setFaultInjector(FaultInjector *inj) { faultInj = inj; }
    FaultInjector *faultInjector() const { return faultInj; }

    /**
     * Attach a debug hook (nullptr detaches). wantsStops() is
     * re-sampled at every run() entry, so a hook may flip between
     * active and passive without re-attaching; while it answers
     * false the plain (zero-overhead) fast-path instantiation runs
     * and only step()/runReference consult the hook. The hook must
     * outlive the machine or detach before destruction. When both a
     * debug hook and a pending FaultInjector are attached, the fast
     * path honours the debug hook (the reference path honours both).
     */
    void setDebugHook(DebugHook *hook) { dbgHook = hook; }
    DebugHook *debugHook() const { return dbgHook; }

    /**
     * Attach a waveform sink (nullptr detaches). active() is sampled
     * at run() entry: true routes execution through the reference
     * loop (per-instruction architectural sampling), false leaves the
     * zero-overhead fast path untouched — see WaveSink.
     */
    void setWaveSink(WaveSink *sink) { waveSnk = sink; }
    WaveSink *waveSink() const { return waveSnk; }

    /**
     * Attach a leakage sink (nullptr detaches): a second,
     * independent WaveSink slot used by the side-channel subsystem
     * (src/avr/leakage.hh), so a power tracer and a VCD writer can
     * observe the same run. Identical contract to setWaveSink():
     * active() is sampled at run() entry, an active sink routes
     * through the reference loop, an idle one costs exactly zero
     * cycles on every fast-path/superblock instantiation (pinned by
     * tests/test_leakage.cc).
     */
    void setLeakSink(WaveSink *sink) { leakSnk = sink; }
    WaveSink *leakSink() const { return leakSnk; }

    /**
     * Attach a trap sink (nullptr detaches): notified once per
     * trapped run()/call() from the common trap-count funnel, after
     * accounting, on every backend — see TrapSink. Costs nothing
     * unless a trap is actually raised.
     */
    void setTrapSink(TrapSink *sink) { trapSnk = sink; }
    TrapSink *trapSink() const { return trapSnk; }

    /**
     * Publish execution telemetry into @p reg: instruction/cycle/
     * stall counters, per-TrapKind trap counters, MAC trigger counts
     * by algorithm, per-mnemonic retirement counters (nonzero only)
     * and PC/SP gauges. Purely additive — call between workloads to
     * accumulate, or after clear() for a fresh snapshot.
     */
    void publishMetrics(MetricsRegistry &reg) const;

    /** Raw flash word at @p word_addr (debugger/export accessor). */
    uint16_t flashWord(uint32_t word_addr) const
    {
        return flash[word_addr & (flashWords - 1)];
    }

    /**
     * XOR @p mask into the flash word at @p word_addr and refresh the
     * decode cache (this word and its predecessor, whose two-word
     * operand may have changed). Used by FaultInjector for opcode
     * corruption; XOR is involutive, so applying the same mask again
     * reverts the corruption.
     */
    void corruptFlashWord(uint32_t word_addr, uint16_t mask);

    /**
     * Enable per-instruction tracing to stderr (routed through an
     * internal TraceSink in the legacy `info:`-prefixed format).
     * Tracing forces run() onto the reference path.
     */
    bool trace = false;

    /**
     * Force run()/call() onto the per-step decode reference path
     * (benchmark baseline; also settable via JAAVR_ISS_REFERENCE=1
     * in the environment).
     */
    bool forceReference;

    /**
     * Execution backend for run()/call() (default Superblock unless
     * overridden by JAAVR_ISS_BACKEND or JAAVR_ISS_REFERENCE in the
     * environment). The backend only selects among *legal* loops:
     * tracing, wave sinks, profilers, debug hooks and pending faults
     * force the reference/specialized paths regardless, so attaching
     * an observer never changes observed architectural state.
     */
    IssBackend backend() const { return backendV; }
    void setBackend(IssBackend b) { backendV = b; }

  private:
    // SREG bit indices.
    static constexpr unsigned fC = 0, fZ = 1, fN = 2, fV = 3, fS = 4,
                              fH = 5, fT = 6, fI = 7;

    bool flag(unsigned f) const { return (sregBits >> f) & 1; }
    void setFlag(unsigned f, bool v);

    void setZns(uint8_t r);
    void addFlags(uint8_t d, uint8_t s, uint8_t r);
    void subFlags(uint8_t d, uint8_t s, uint8_t r, bool keep_z);

    void push8(uint8_t v);
    uint8_t pop8();
    void pushPc(uint32_t pc);
    uint32_t popPc();

    /** True if @p inst reads or writes the MAC hazard register set. */
    bool touchesMacRegs(const Inst &inst) const;

    /** Algorithm-2 trigger: apply the two shadow MACs for @p value. */
    void triggerLoadMac(uint8_t value);

    uint16_t fetch(uint32_t word_addr) const;

    /** Predecode the flash word pair at @p w0/@p w1 (cache fill). */
    DecodedInst makeDecoded(uint16_t w0, uint16_t w1) const;

    /** Reference run loop: step() per instruction. */
    void runReference(uint64_t max_cycles);

    /**
     * Apply the armed fault plan to architectural state at an
     * instruction boundary (reference path). Returns true when the
     * fault consumed the boundary itself (instruction skip advanced
     * the PC), false when execution should continue into the
     * (possibly perturbed) instruction.
     */
    bool applyBoundaryFault();

    /**
     * Predecoded, mode-specialized run loop (the fast path). The
     * @p Profiled instantiation fires ProfileSink events, the
     * @p Faulted one polls the armed FaultInjector per instruction,
     * the @p Debugged one consults the DebugHook at every boundary
     * and data access; the plain instantiation compiles all hooks
     * out. Faulted and Debugged are never instantiated together.
     */
    template <bool Ise, bool Profiled, bool Faulted, bool Debugged>
    void runFast(uint64_t max_cycles);

    /**
     * Plain (no-hook) fast-path dispatch by mode; the side-exit
     * target of the superblock backend (superblock.cc cannot see the
     * runFast template definition).
     */
    void runFastPlain(uint64_t max_cycles);

    /**
     * Superblock-threaded run loop (superblock.cc): translated
     * traces over the decode cache, executed via computed-goto
     * threaded dispatch with block-level statistics accumulation.
     * Falls back to runFastPlain() on side exits (traps, MAC-shadow
     * activity, budget-critical blocks); see DESIGN.md §11.
     */
    void runSuperblock(uint64_t max_cycles);

    friend class SuperblockCache;

    CpuMode cpuMode;
    std::array<uint8_t, 32> regs{};
    std::array<uint8_t, 0x40> io{};
    std::vector<uint8_t> sram;   ///< data space from sramBase up
    std::vector<uint16_t> flash;
    std::vector<DecodedInst> decodeCache; ///< one entry per flash word
    uint8_t sregBits = 0;
    uint32_t pcWord = 0;
    MacUnit macUnit;
    ExecStats execStats;
    ProfileSink *profSink = nullptr;
    bool profWantsInst = false;          ///< cached sink capability
    std::unique_ptr<ProfileSink> ownedTrace; ///< lazy `trace` sink
    FaultInjector *faultInj = nullptr;
    DebugHook *dbgHook = nullptr;
    WaveSink *waveSnk = nullptr;
    WaveSink *leakSnk = nullptr;
    TrapSink *trapSnk = nullptr;
    Trap pendingTrap;
    uint16_t dataLimitV = 0x10ff; ///< top of ATmega128 internal SRAM
    uint16_t stackGuardV = sramBase;
    IssBackend backendV = IssBackend::Superblock;
    std::unique_ptr<SuperblockCache> sbCache; ///< lazily built traces
};

} // namespace jaavr

#endif // JAAVR_AVR_MACHINE_HH
