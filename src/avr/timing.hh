/**
 * @file
 * Cycle timing of the two JAAVR operating modes (paper, Section IV):
 *
 *  - CA ("cycle accuracy" on): identical CPI to a stock ATmega128,
 *    taken from the datasheet instruction-set summary;
 *  - FAST (cycle accuracy off): loads, stores, push/pop and the
 *    multiplier complete in a single cycle.
 *
 * The ISE mode uses FAST timing; the MAC unit itself adds no cycles
 * (it retires in the shadow of the triggering instruction).
 */

#ifndef JAAVR_AVR_TIMING_HH
#define JAAVR_AVR_TIMING_HH

#include <array>

#include "avr/isa.hh"

namespace jaavr
{

/** Processor timing/feature mode (Tables I and III). */
enum class CpuMode
{
    CA,   ///< ATmega128-compatible cycle timing
    FAST, ///< JAAVR improved CPI
    ISE,  ///< FAST + the (32x4)-bit MAC unit enabled
};

const char *cpuModeName(CpuMode mode);

/**
 * Base cycle count of @p op in @p mode, excluding control-flow
 * penalties (branch taken / skip taken are added by the core).
 */
unsigned baseCycles(Op op, CpuMode mode);

/**
 * Flat per-op lookup table of baseCycles() for @p mode, indexed by
 * static_cast<size_t>(op). Built once per mode; this is what the
 * Machine's predecoder consults so the hot path never re-enters the
 * baseCycles() switch.
 */
const std::array<uint8_t, kNumOps> &baseCycleTable(CpuMode mode);

/** Extra cycles when a branch is taken (BRBS/BRBC). */
constexpr unsigned branchTakenExtra = 1;

/**
 * Extra cycles when a skip instruction (CPSE/SBRC/SBRS/SBIC/SBIS)
 * skips: 1 for a one-word target, 2 for a two-word target.
 */
unsigned skipExtra(bool two_word_target);

} // namespace jaavr

#endif // JAAVR_AVR_TIMING_HH
