/**
 * @file
 * Superblock translation and the trace-threaded run loop
 * (DESIGN.md §11).
 *
 * Machine::runSuperblock() mirrors the plain runFast<> instantiation
 * instruction for instruction — the semantics of every handler below
 * are copied from the corresponding runFast case, and
 * tests/test_superblock.cc pins the two (and step()) to bit- and
 * cycle-identical state over all 65536 opcode words and the OPF
 * workloads. What changes is the execution structure:
 *
 *  - dispatch is computed-goto threaded over pre-translated traces
 *    (SbInst carries the handler label and pre-extracted operands),
 *    falling back to a switch on non-GNU compilers;
 *  - statistics accumulate block-at-a-time: per-exit cycle prefixes
 *    replace the per-instruction `consumed/insts` updates, and the
 *    cycle budget is pre-checked against the block's worst case so
 *    the hot path carries no per-instruction budget test;
 *  - the PC is not materialized between instructions at all — only
 *    exits compute it, from translate-time constants.
 *
 * Side-exit contract (everything here funnels back to the fast
 * path / reference loop, never the other way around):
 *  - traps: the trapping instruction does not retire; the exit
 *    charges the retired prefix and publishes the trap exactly as
 *    runFast does;
 *  - MAC activity: the backend only executes while MACCR == 0 and no
 *    shadow micro-ops are pending (checked at every block entry); a
 *    store that turns the MAC unit on side-exits after retiring and
 *    the rest of the run executes in runFastPlain();
 *  - budget-critical blocks delegate to runFastPlain(), which places
 *    the CycleBudget trap with per-instruction precision;
 *  - attached observers (profiler, debug hook, wave sink, fault
 *    injector, tracing) are handled one level up: Machine::run()
 *    never selects this backend while any of them is live.
 */

#include "avr/superblock.hh"

#include <unordered_set>

#include "avr/flags.hh"
#include "avr/mac_unit.hh"
#include "avr/machine.hh"
#include "avr/timing.hh"
#include "support/logging.hh"

// Computed-goto threading needs the GNU labels-as-values extension;
// define JAAVR_SB_NO_THREADED to force the portable switch dispatch
// (exercised by tests to keep both paths honest).
#if !defined(JAAVR_SB_NO_THREADED) && \
    (defined(__GNUC__) || defined(__clang__))
#define JAAVR_SB_THREADED 1
#endif

namespace jaavr
{

SuperblockCache::SuperblockCache()
    : table(Machine::flashWords, nullptr)
{
}

void
SuperblockCache::invalidateAll()
{
    std::fill(table.begin(), table.end(), nullptr);
    blocks.clear();
}

SbBlock *
SuperblockCache::translate(const Machine &m, uint32_t entry,
                           void *const *labels)
{
    // A runaway working set (e.g. a fault campaign re-corrupting
    // flash between runs already invalidates; this is the backstop
    // for programs with thousands of distinct entries).
    if (blocks.size() >= kMaxBlocks)
        invalidateAll();

    auto owned = std::make_unique<SbBlock>();
    SbBlock *blk = owned.get();
    blk->entry = entry & 0xffff;

    std::unordered_set<uint32_t> visited;
    uint32_t pc = blk->entry;
    uint32_t total = 0; // base cycles of the retiring prefix
    bool open = true;

    auto emit = [&](SbOp h, SbInst &si) {
        si.h = static_cast<uint8_t>(h);
        si.lbl = labels ? labels[static_cast<size_t>(h)] : nullptr;
        blk->code.push_back(si);
    };

    while (open) {
        if (pc == Machine::exitAddress || blk->code.size() >= kMaxInsts ||
            !visited.insert(pc).second) {
            // Exit sentinel, length cap, or a loop back-edge: close
            // the trace with a non-retiring continuation.
            SbInst si;
            si.pc = pc;
            si.prefixCycles = total;
            emit(SbOp::EXIT_STATIC, si);
            break;
        }
        const DecodedInst &dc = m.decoded(pc);
        const Inst &inst = dc.inst;
        SbInst si;
        si.pc = pc;
        si.op = static_cast<uint8_t>(inst.op);
        si.a = inst.rd;
        si.b = inst.rr;
        si.imm = inst.imm;
        si.cycles = dc.cycles;
        si.prefixCycles = total;
        const uint32_t next = (pc + inst.words) & 0xffff;

        // Fall-through emission: the element retires and the trace
        // continues at the static successor.
        auto simple = [&](SbOp h) {
            emit(h, si);
            total += dc.cycles;
            pc = next;
        };
        // Skip instructions: the taken leg's target and extra cycles
        // depend only on the skipped word's length, which the decode
        // cache knows; flash writes invalidate the whole cache, so
        // baking it in is safe.
        auto skip = [&](SbOp h) {
            bool two = m.decoded(next).inst.words == 2;
            si.extra = static_cast<uint8_t>(skipExtra(two));
            si.target = (next + (two ? 2u : 1u)) & 0xffff;
            simple(h);
        };
        // Terminal: the element retires, then the exit handler
        // computes the continuation.
        auto terminal = [&](SbOp h) {
            emit(h, si);
            total += dc.cycles;
            open = false;
        };

        switch (inst.op) {
          // Canonicalized synonym encodings get specialized
          // single-operand handlers (satellite: decode
          // canonicalization; see Synonym in avr/isa.hh).
          case Op::ADD:
            simple(dc.synonym == Synonym::LSL ? SbOp::LSL : SbOp::ADD);
            break;
          case Op::ADC:
            simple(dc.synonym == Synonym::ROL ? SbOp::ROL : SbOp::ADC);
            break;
          case Op::AND:
            simple(dc.synonym == Synonym::TST ? SbOp::TST : SbOp::AND);
            break;
          case Op::EOR:
            simple(dc.synonym == Synonym::CLR ? SbOp::CLR : SbOp::EOR);
            break;
          case Op::SUB: simple(SbOp::SUB); break;
          case Op::SBC: simple(SbOp::SBC); break;
          case Op::OR: simple(SbOp::OR); break;
          case Op::MOV: simple(SbOp::MOV); break;
          case Op::CP: simple(SbOp::CP); break;
          case Op::CPC: simple(SbOp::CPC); break;
          case Op::MUL: simple(SbOp::MUL); break;
          case Op::MULS: simple(SbOp::MULS); break;
          case Op::MULSU: simple(SbOp::MULSU); break;
          case Op::FMUL: simple(SbOp::FMUL); break;
          case Op::FMULS: simple(SbOp::FMULS); break;
          case Op::FMULSU: simple(SbOp::FMULSU); break;
          case Op::MOVW: simple(SbOp::MOVW); break;
          case Op::SUBI: simple(SbOp::SUBI); break;
          case Op::SBCI: simple(SbOp::SBCI); break;
          case Op::ANDI: simple(SbOp::ANDI); break;
          case Op::ORI: simple(SbOp::ORI); break;
          case Op::CPI: simple(SbOp::CPI); break;
          case Op::LDI: simple(SbOp::LDI); break;
          case Op::ADIW: simple(SbOp::ADIW); break;
          case Op::SBIW: simple(SbOp::SBIW); break;
          case Op::COM: simple(SbOp::COM); break;
          case Op::NEG: simple(SbOp::NEG); break;
          case Op::SWAP: simple(SbOp::SWAP); break;
          case Op::INC: simple(SbOp::INC); break;
          case Op::DEC: simple(SbOp::DEC); break;
          case Op::ASR: simple(SbOp::ASR); break;
          case Op::LSR: simple(SbOp::LSR); break;
          case Op::ROR: simple(SbOp::ROR); break;
          case Op::BSET:
            si.a = inst.bit;
            simple(SbOp::BSET);
            break;
          case Op::BCLR:
            si.a = inst.bit;
            simple(SbOp::BCLR);
            break;
          case Op::BLD:
            si.b = inst.bit;
            simple(SbOp::BLD);
            break;
          case Op::BST:
            si.b = inst.bit;
            simple(SbOp::BST);
            break;
          case Op::SBI:
            si.b = inst.bit;
            simple(SbOp::SBI);
            break;
          case Op::CBI:
            si.b = inst.bit;
            simple(SbOp::CBI);
            break;
          case Op::SBIC:
            si.b = inst.bit;
            skip(SbOp::SKIP_SBIC);
            break;
          case Op::SBIS:
            si.b = inst.bit;
            skip(SbOp::SKIP_SBIS);
            break;
          case Op::IN: simple(SbOp::IN); break;
          case Op::OUT: simple(SbOp::OUT); break;
          case Op::LD_X: simple(SbOp::LD_X); break;
          case Op::LD_X_INC: simple(SbOp::LD_X_INC); break;
          case Op::LD_X_DEC: simple(SbOp::LD_X_DEC); break;
          case Op::LDD_Y:
            si.imm = static_cast<uint16_t>(inst.disp);
            simple(SbOp::LDD_Y);
            break;
          case Op::LD_Y_INC: simple(SbOp::LD_Y_INC); break;
          case Op::LD_Y_DEC: simple(SbOp::LD_Y_DEC); break;
          case Op::LDD_Z:
            si.imm = static_cast<uint16_t>(inst.disp);
            simple(SbOp::LDD_Z);
            break;
          case Op::LD_Z_INC: simple(SbOp::LD_Z_INC); break;
          case Op::LD_Z_DEC: simple(SbOp::LD_Z_DEC); break;
          case Op::LDS:
            si.addr = static_cast<uint16_t>(inst.k);
            simple(SbOp::LDS);
            break;
          case Op::ST_X: simple(SbOp::ST_X); break;
          case Op::ST_X_INC: simple(SbOp::ST_X_INC); break;
          case Op::ST_X_DEC: simple(SbOp::ST_X_DEC); break;
          case Op::STD_Y:
            si.imm = static_cast<uint16_t>(inst.disp);
            simple(SbOp::STD_Y);
            break;
          case Op::ST_Y_INC: simple(SbOp::ST_Y_INC); break;
          case Op::ST_Y_DEC: simple(SbOp::ST_Y_DEC); break;
          case Op::STD_Z:
            si.imm = static_cast<uint16_t>(inst.disp);
            simple(SbOp::STD_Z);
            break;
          case Op::ST_Z_INC: simple(SbOp::ST_Z_INC); break;
          case Op::ST_Z_DEC: simple(SbOp::ST_Z_DEC); break;
          case Op::STS:
            si.addr = static_cast<uint16_t>(inst.k);
            simple(SbOp::STS);
            break;
          case Op::PUSH: simple(SbOp::PUSH); break;
          case Op::POP: simple(SbOp::POP); break;
          case Op::LPM_R0: simple(SbOp::LPM_R0); break;
          case Op::LPM: simple(SbOp::LPM); break;
          case Op::LPM_INC: simple(SbOp::LPM_INC); break;
          case Op::NOP: case Op::SLEEP: case Op::WDR: case Op::BREAK:
            simple(SbOp::NOPLIKE);
            break;

          // Direct jumps stitch: the transfer retires as a "ghost"
          // (cycles via the prefix sums, no runtime control flow)
          // and translation continues at the target. Revisits and
          // the length cap close the trace at the loop top.
          case Op::RJMP:
            emit(SbOp::GHOST, si);
            total += dc.cycles;
            pc = (pc + 1 + inst.disp) & 0xffff;
            break;
          case Op::JMP:
            emit(SbOp::GHOST, si);
            total += dc.cycles;
            pc = inst.k & 0xffff;
            break;
          // Direct calls stitch through into the callee; only the
          // return-address push happens at run time.
          case Op::RCALL:
            si.addr = static_cast<uint16_t>((pc + 1) & 0xffff);
            emit(SbOp::CALL_THROUGH, si);
            total += dc.cycles;
            pc = (pc + 1 + inst.disp) & 0xffff;
            break;
          case Op::CALL:
            si.addr = static_cast<uint16_t>((pc + 2) & 0xffff);
            emit(SbOp::CALL_THROUGH, si);
            total += dc.cycles;
            pc = inst.k & 0xffff;
            break;

          case Op::BRBS:
            si.a = inst.bit;
            si.target = (pc + 1 + inst.disp) & 0xffff;
            simple(SbOp::BRBS);
            break;
          case Op::BRBC:
            si.a = inst.bit;
            si.target = (pc + 1 + inst.disp) & 0xffff;
            simple(SbOp::BRBC);
            break;
          case Op::CPSE: skip(SbOp::SKIP_CPSE); break;
          case Op::SBRC:
            si.b = inst.bit;
            skip(SbOp::SKIP_SBRC);
            break;
          case Op::SBRS:
            si.b = inst.bit;
            skip(SbOp::SKIP_SBRS);
            break;

          // Indirect control flow terminates the trace.
          case Op::RET: terminal(SbOp::EXIT_RET); break;
          case Op::RETI: terminal(SbOp::EXIT_RETI); break;
          case Op::IJMP: terminal(SbOp::EXIT_IJMP); break;
          case Op::ICALL:
            si.addr = static_cast<uint16_t>((pc + 1) & 0xffff);
            terminal(SbOp::EXIT_ICALL);
            break;

          case Op::INVALID:
            // Non-retiring: the handler re-reads the flash word to
            // discriminate FlashOutOfBounds from IllegalOpcode at
            // run time, exactly like the fast path.
            emit(SbOp::EXIT_TRAP, si);
            open = false;
            break;
        }
    }

    // Worst-case cycles of one pass: every element's base cost plus
    // the largest single taken-branch/skip extra (an exit leaves the
    // trace, so at most one extra applies per pass).
    blk->maxCycles = total + 2;
    table[blk->entry] = blk;
    blocks.push_back(std::move(owned));
    return blk;
}

/**
 * The superblock-threaded run loop. Hot state (SREG, the register
 * file, the statistics accumulators) lives in locals exactly as in
 * runFast — byte stores into the simulated SRAM may alias any member
 * through the uint8_t*, so member accesses cannot be cached across
 * them by the compiler — and is flushed on every exit.
 */
void
Machine::runSuperblock(uint64_t max_cycles)
{
    if (!sbCache)
        sbCache = std::make_unique<SuperblockCache>();

#ifdef JAAVR_SB_THREADED
    // Labels-as-values dispatch table, indexed by SbOp in declaration
    // order (the same X-macro builds both, so they cannot skew).
    static void *const label_tab[kNumSbOps] = {
#define X(n) &&lbl_##n,
        JAAVR_SB_OPS(X)
#undef X
    };
    void *const *const labels = label_tab;
#define SB_NEXT() goto *ip->lbl
#else
    void *const *const labels = nullptr;
#define SB_NEXT() goto sb_dispatch
#endif

    uint64_t consumed = 0;
    uint64_t insts = 0;
    uint32_t pc = pcWord;
    const uint16_t data_limit = dataLimitV;
    const uint16_t stack_guard = stackGuardV;
    const bool ise = cpuMode == CpuMode::ISE;
    // Set by the guarded access lambdas; checked once per retired
    // instruction. Never reset: the loop exits on the first trap.
    TrapKind trap_kind = TrapKind::None;
    uint16_t trap_addr = 0;
    // Set by a slow-path (I/O space) store; rechecked at retirement
    // so a store that enables the MAC unit side-exits the trace.
    bool io_dirty = false;

    uint8_t sreg = sregBits;
    std::array<uint8_t, 32> r8 = regs;
    std::array<uint32_t, kNumOps> op_count{};
    std::array<uint32_t, kNumOps> op_extra{};
    const uint16_t *const flash_data = flash.data();
    uint8_t *const sram_data = sram.data();
    SuperblockCache *const cache = sbCache.get();

    auto pair = [&](unsigned i) -> uint16_t {
        return static_cast<uint16_t>(r8[i]) |
               (static_cast<uint16_t>(r8[i + 1]) << 8);
    };
    auto setPair = [&](unsigned i, uint16_t v) {
        r8[i] = static_cast<uint8_t>(v);
        r8[i + 1] = static_cast<uint8_t>(v >> 8);
    };

    // Delta-based so the periodic flush cannot double-count; per-op
    // cycle totals are reconstructed as op_count * base + op_extra
    // (the same invariant runFast maintains).
    uint64_t flushed_insts = 0;
    uint64_t flushed_cycles = 0;
    auto flush = [&] {
        execStats.instructions += insts - flushed_insts;
        execStats.cycles += consumed - flushed_cycles;
        flushed_insts = insts;
        flushed_cycles = consumed;
        pcWord = pc & 0xffff;
        sregBits = sreg;
        regs = r8;
        const std::array<uint8_t, kNumOps> &base_tab =
            baseCycleTable(cpuMode);
        for (size_t i = 0; i < kNumOps; i++) {
            execStats.opCount[i] += op_count[i];
            execStats.opCycles[i] +=
                uint64_t(op_count[i]) * base_tab[i] + op_extra[i];
        }
        op_count.fill(0);
        op_extra.fill(0);
    };

    // Guarded data-space access, copied from runFast (no debug hooks
    // here, and no MAC shadow tracking: the backend never runs while
    // the MAC unit is live). The register/IO fallback syncs the local
    // SREG around readData/writeData, which can touch SREG at 0x5f.
    auto loadMem = [&](uint16_t a) -> uint8_t {
        if (a >= sramBase) [[likely]] {
            if (a > data_limit) [[unlikely]] {
                trap_kind = TrapKind::SramOutOfBounds;
                trap_addr = a;
                return 0xff;
            }
            return sram_data[a - sramBase];
        }
        sregBits = sreg;
        regs = r8;
        uint8_t v = readData(a);
        sreg = sregBits;
        r8 = regs;
        return v;
    };
    auto storeMem = [&](uint16_t a, uint8_t v) {
        if (a >= sramBase) [[likely]] {
            if (a > data_limit) [[unlikely]] {
                trap_kind = TrapKind::SramOutOfBounds;
                trap_addr = a;
                return;
            }
            sram_data[a - sramBase] = v;
            return;
        }
        sregBits = sreg;
        regs = r8;
        writeData(a, v);
        sreg = sregBits;
        r8 = regs;
        io_dirty = true;
    };
    auto ioRead = [&](uint8_t ioaddr) -> uint8_t {
        sregBits = sreg;
        regs = r8;
        uint8_t v = readData(ioBase + ioaddr);
        sreg = sregBits;
        r8 = regs;
        return v;
    };
    auto ioWrite = [&](uint8_t ioaddr, uint8_t v) {
        sregBits = sreg;
        regs = r8;
        writeData(ioBase + ioaddr, v);
        sreg = sregBits;
        r8 = regs;
        io_dirty = true;
    };
    auto pushB = [&](uint8_t v) {
        uint16_t a = sp();
        if (a < stack_guard) [[unlikely]] {
            trap_kind = TrapKind::StackOverflow;
            trap_addr = a;
            return;
        }
        storeMem(a, v);
        if (trap_kind == TrapKind::None) [[likely]]
            setSp(a - 1);
    };
    auto popB = [&]() -> uint8_t {
        setSp(sp() + 1);
        return loadMem(sp());
    };
    auto pushRet = [&](uint32_t ret) {
        pushB(static_cast<uint8_t>(ret));
        pushB(static_cast<uint8_t>(ret >> 8));
    };
    auto popRet = [&]() -> uint32_t {
        uint32_t hi = popB();
        uint32_t lo = popB();
        return (hi << 8) | lo;
    };

    const SbInst *ip = nullptr;
    const SbInst *code0 = nullptr;

// Retirement tails. Plain ALU work cannot trap; memory handlers
// check the trap flag (the trapping instruction must not retire);
// store handlers additionally side-exit when a slow-path store may
// have enabled the MAC unit mid-trace.
#define SB_RETIRE()                                                     \
    do {                                                                \
        op_count[ip->op]++;                                             \
        ip++;                                                           \
        SB_NEXT();                                                      \
    } while (0)
#define SB_RETIRE_MEM()                                                 \
    do {                                                                \
        if (trap_kind != TrapKind::None) [[unlikely]]                   \
            goto trap_exit;                                             \
        op_count[ip->op]++;                                             \
        ip++;                                                           \
        SB_NEXT();                                                      \
    } while (0)
#define SB_RETIRE_STORE()                                               \
    do {                                                                \
        if (trap_kind != TrapKind::None) [[unlikely]]                   \
            goto trap_exit;                                             \
        op_count[ip->op]++;                                             \
        if (io_dirty) [[unlikely]] {                                    \
            io_dirty = false;                                           \
            if (ise && io[ioMaccr] != 0)                                \
                goto maccr_side_exit;                                   \
        }                                                               \
        ip++;                                                           \
        SB_NEXT();                                                      \
    } while (0)

  next_block:
    if (pc == exitAddress) {
        flush();
        return;
    }
    // Keep the 32-bit op_count entries from saturating (runFast
    // flushes on the same period).
    if (insts - flushed_insts >= 0x1000000) [[unlikely]]
        flush();
    // ISE legality: traces assume no MAC activity. Pending shadow
    // micro-ops or an enabled MACCR delegate the rest of the run to
    // the fast path, which carries the full hazard machinery.
    if (ise && (io[ioMaccr] != 0 || macUnit.pendingShadow() != 0)) {
        flush();
        runFastPlain(max_cycles - consumed);
        return;
    }
    io_dirty = false;
    {
        SbBlock *b = cache->lookup(pc);
        if (!b) [[unlikely]]
            b = cache->translate(*this, pc, labels);
        // Budget pre-check: if this pass could cross the budget,
        // delegate to the fast path for per-instruction precision.
        // Passing it guarantees consumed stays below max_cycles for
        // the whole pass, so handlers carry no budget test.
        if (consumed + b->maxCycles >= max_cycles) [[unlikely]] {
            flush();
            runFastPlain(max_cycles - consumed);
            return;
        }
        code0 = b->code.data();
        ip = code0;
    }
    SB_NEXT();

#ifndef JAAVR_SB_THREADED
  sb_dispatch:
    switch (static_cast<SbOp>(ip->h)) {
#define X(n) case SbOp::n: goto lbl_##n;
        JAAVR_SB_OPS(X)
#undef X
    }
    fatal("superblock: corrupt dispatch code %u", ip->h);
#endif

  lbl_ADD: {
    uint8_t d = r8[ip->a], s = r8[ip->b];
    uint8_t r = d + s;
    r8[ip->a] = r;
    addFlagsB(sreg, d, s, r);
    SB_RETIRE();
  }
  lbl_LSL: {
    // Canonicalized LSL Rd == ADD Rd,Rd: single read, doubled.
    uint8_t d = r8[ip->a];
    uint8_t r = static_cast<uint8_t>(d + d);
    r8[ip->a] = r;
    addFlagsB(sreg, d, d, r);
    SB_RETIRE();
  }
  lbl_ADC: {
    uint8_t d = r8[ip->a], s = r8[ip->b];
    uint8_t r = d + s + (sreg & sregC);
    r8[ip->a] = r;
    addFlagsB(sreg, d, s, r);
    SB_RETIRE();
  }
  lbl_ROL: {
    // Canonicalized ROL Rd == ADC Rd,Rd.
    uint8_t d = r8[ip->a];
    uint8_t r = static_cast<uint8_t>(d + d + (sreg & sregC));
    r8[ip->a] = r;
    addFlagsB(sreg, d, d, r);
    SB_RETIRE();
  }
  lbl_SUB: {
    uint8_t d = r8[ip->a], s = r8[ip->b];
    uint8_t r = d - s;
    r8[ip->a] = r;
    subFlagsB(sreg, d, s, r, false);
    SB_RETIRE();
  }
  lbl_SBC: {
    uint8_t d = r8[ip->a], s = r8[ip->b];
    uint8_t r = d - s - (sreg & sregC);
    r8[ip->a] = r;
    subFlagsB(sreg, d, s, r, true);
    SB_RETIRE();
  }
  lbl_AND: {
    uint8_t r = r8[ip->a] & r8[ip->b];
    r8[ip->a] = r;
    logicFlagsB(sreg, r);
    SB_RETIRE();
  }
  lbl_TST: {
    // Canonicalized TST Rd == AND Rd,Rd: flags only, no write.
    logicFlagsB(sreg, r8[ip->a]);
    SB_RETIRE();
  }
  lbl_OR: {
    uint8_t r = r8[ip->a] | r8[ip->b];
    r8[ip->a] = r;
    logicFlagsB(sreg, r);
    SB_RETIRE();
  }
  lbl_EOR: {
    uint8_t r = r8[ip->a] ^ r8[ip->b];
    r8[ip->a] = r;
    logicFlagsB(sreg, r);
    SB_RETIRE();
  }
  lbl_CLR: {
    // Canonicalized CLR Rd == EOR Rd,Rd: constant result and flags.
    r8[ip->a] = 0;
    sreg = (sreg & ~(sregZ | sregN | sregV | sregS)) | sregZ;
    SB_RETIRE();
  }
  lbl_MOV: {
    r8[ip->a] = r8[ip->b];
    SB_RETIRE();
  }
  lbl_CP: {
    uint8_t d = r8[ip->a], s = r8[ip->b];
    subFlagsB(sreg, d, s, d - s, false);
    SB_RETIRE();
  }
  lbl_CPC: {
    uint8_t d = r8[ip->a], s = r8[ip->b];
    uint8_t r = d - s - (sreg & sregC);
    subFlagsB(sreg, d, s, r, true);
    SB_RETIRE();
  }
  lbl_MUL: {
    uint16_t p = static_cast<uint16_t>(r8[ip->a]) * r8[ip->b];
    r8[0] = static_cast<uint8_t>(p);
    r8[1] = static_cast<uint8_t>(p >> 8);
    mulFlagsB(sreg, p, p & 0x8000);
    SB_RETIRE();
  }
  lbl_MULS: {
    int16_t p = static_cast<int16_t>(static_cast<int8_t>(r8[ip->a])) *
                static_cast<int8_t>(r8[ip->b]);
    uint16_t u = static_cast<uint16_t>(p);
    r8[0] = static_cast<uint8_t>(u);
    r8[1] = static_cast<uint8_t>(u >> 8);
    mulFlagsB(sreg, u, u & 0x8000);
    SB_RETIRE();
  }
  lbl_MULSU: {
    int16_t p = static_cast<int16_t>(static_cast<int8_t>(r8[ip->a])) *
                static_cast<uint8_t>(r8[ip->b]);
    uint16_t u = static_cast<uint16_t>(p);
    r8[0] = static_cast<uint8_t>(u);
    r8[1] = static_cast<uint8_t>(u >> 8);
    mulFlagsB(sreg, u, u & 0x8000);
    SB_RETIRE();
  }
  lbl_FMUL: {
    int32_t p = static_cast<uint16_t>(r8[ip->a]) * r8[ip->b];
    uint16_t u = static_cast<uint16_t>(p);
    bool c = u & 0x8000;
    u <<= 1;
    r8[0] = static_cast<uint8_t>(u);
    r8[1] = static_cast<uint8_t>(u >> 8);
    mulFlagsB(sreg, u, c);
    SB_RETIRE();
  }
  lbl_FMULS: {
    int32_t p = static_cast<int8_t>(r8[ip->a]) *
                static_cast<int8_t>(r8[ip->b]);
    uint16_t u = static_cast<uint16_t>(p);
    bool c = u & 0x8000;
    u <<= 1;
    r8[0] = static_cast<uint8_t>(u);
    r8[1] = static_cast<uint8_t>(u >> 8);
    mulFlagsB(sreg, u, c);
    SB_RETIRE();
  }
  lbl_FMULSU: {
    int32_t p = static_cast<int8_t>(r8[ip->a]) * r8[ip->b];
    uint16_t u = static_cast<uint16_t>(p);
    bool c = u & 0x8000;
    u <<= 1;
    r8[0] = static_cast<uint8_t>(u);
    r8[1] = static_cast<uint8_t>(u >> 8);
    mulFlagsB(sreg, u, c);
    SB_RETIRE();
  }
  lbl_MOVW: {
    r8[ip->a] = r8[ip->b];
    r8[ip->a + 1] = r8[ip->b + 1];
    SB_RETIRE();
  }
  lbl_SUBI: {
    uint8_t d = r8[ip->a];
    uint8_t r = d - static_cast<uint8_t>(ip->imm);
    r8[ip->a] = r;
    subFlagsB(sreg, d, static_cast<uint8_t>(ip->imm), r, false);
    SB_RETIRE();
  }
  lbl_SBCI: {
    uint8_t d = r8[ip->a];
    uint8_t r = d - static_cast<uint8_t>(ip->imm) - (sreg & sregC);
    r8[ip->a] = r;
    subFlagsB(sreg, d, static_cast<uint8_t>(ip->imm), r, true);
    SB_RETIRE();
  }
  lbl_ANDI: {
    uint8_t r = r8[ip->a] & static_cast<uint8_t>(ip->imm);
    r8[ip->a] = r;
    logicFlagsB(sreg, r);
    SB_RETIRE();
  }
  lbl_ORI: {
    uint8_t r = r8[ip->a] | static_cast<uint8_t>(ip->imm);
    r8[ip->a] = r;
    logicFlagsB(sreg, r);
    SB_RETIRE();
  }
  lbl_CPI: {
    uint8_t d = r8[ip->a];
    subFlagsB(sreg, d, static_cast<uint8_t>(ip->imm),
              d - static_cast<uint8_t>(ip->imm), false);
    SB_RETIRE();
  }
  lbl_LDI: {
    r8[ip->a] = static_cast<uint8_t>(ip->imm);
    SB_RETIRE();
  }
  lbl_ADIW: {
    uint16_t d = pair(ip->a);
    uint16_t r = d + ip->imm;
    setPair(ip->a, r);
    wideFlagsB(sreg, r, !(d & 0x8000) && (r & 0x8000),
               !(r & 0x8000) && (d & 0x8000));
    SB_RETIRE();
  }
  lbl_SBIW: {
    uint16_t d = pair(ip->a);
    uint16_t r = d - ip->imm;
    setPair(ip->a, r);
    wideFlagsB(sreg, r, (d & 0x8000) && !(r & 0x8000),
               (r & 0x8000) && !(d & 0x8000));
    SB_RETIRE();
  }
  lbl_COM: {
    uint8_t r = ~r8[ip->a];
    r8[ip->a] = r;
    uint8_t n = (r >> 7) & 1;
    sreg = (sreg & ~(sregC | sregZ | sregN | sregV | sregS)) | sregC |
           static_cast<uint8_t>(r == 0) << 1 | n << 2 | n << 4;
    SB_RETIRE();
  }
  lbl_NEG: {
    uint8_t d = r8[ip->a];
    uint8_t r = -d;
    r8[ip->a] = r;
    subFlagsB(sreg, 0, d, r, false);
    SB_RETIRE();
  }
  lbl_SWAP: {
    // No MAC swap trigger here: the backend never runs with MACCR
    // enabled (checked at every block entry).
    uint8_t d = r8[ip->a];
    r8[ip->a] = static_cast<uint8_t>((d << 4) | (d >> 4));
    SB_RETIRE();
  }
  lbl_INC: {
    uint8_t r = r8[ip->a] + 1;
    r8[ip->a] = r;
    incDecFlagsB(sreg, r, r == 0x80);
    SB_RETIRE();
  }
  lbl_DEC: {
    uint8_t r = r8[ip->a] - 1;
    r8[ip->a] = r;
    incDecFlagsB(sreg, r, r == 0x7f);
    SB_RETIRE();
  }
  lbl_ASR: {
    uint8_t d = r8[ip->a];
    uint8_t r = static_cast<uint8_t>((d >> 1) | (d & 0x80));
    r8[ip->a] = r;
    shiftFlagsB(sreg, r, d & 1);
    SB_RETIRE();
  }
  lbl_LSR: {
    uint8_t d = r8[ip->a];
    uint8_t r = d >> 1;
    r8[ip->a] = r;
    shiftFlagsB(sreg, r, d & 1);
    SB_RETIRE();
  }
  lbl_ROR: {
    uint8_t d = r8[ip->a];
    uint8_t r = static_cast<uint8_t>(
        (d >> 1) | (static_cast<unsigned>(sreg & sregC) << 7));
    r8[ip->a] = r;
    shiftFlagsB(sreg, r, d & 1);
    SB_RETIRE();
  }
  lbl_BSET: {
    sreg |= static_cast<uint8_t>(1u << ip->a);
    SB_RETIRE();
  }
  lbl_BCLR: {
    sreg &= static_cast<uint8_t>(~(1u << ip->a));
    SB_RETIRE();
  }
  lbl_BLD: {
    if (sreg & sregT)
        r8[ip->a] |= 1u << ip->b;
    else
        r8[ip->a] &= ~(1u << ip->b);
    SB_RETIRE();
  }
  lbl_BST: {
    sreg = static_cast<uint8_t>((sreg & ~sregT) |
                                (((r8[ip->a] >> ip->b) & 1u) << 6));
    SB_RETIRE();
  }
  lbl_SBI: {
    ioWrite(static_cast<uint8_t>(ip->imm),
            ioRead(static_cast<uint8_t>(ip->imm)) | (1u << ip->b));
    SB_RETIRE_STORE();
  }
  lbl_CBI: {
    ioWrite(static_cast<uint8_t>(ip->imm),
            ioRead(static_cast<uint8_t>(ip->imm)) & ~(1u << ip->b));
    SB_RETIRE_STORE();
  }
  lbl_IN: {
    r8[ip->a] = ioRead(static_cast<uint8_t>(ip->imm));
    SB_RETIRE();
  }
  lbl_OUT: {
    ioWrite(static_cast<uint8_t>(ip->imm), r8[ip->a]);
    SB_RETIRE_STORE();
  }
  lbl_SKIP_SBIC: {
    if (!(ioRead(static_cast<uint8_t>(ip->imm)) & (1u << ip->b)))
        goto take_skip;
    SB_RETIRE();
  }
  lbl_SKIP_SBIS: {
    if (ioRead(static_cast<uint8_t>(ip->imm)) & (1u << ip->b))
        goto take_skip;
    SB_RETIRE();
  }
  lbl_SKIP_CPSE: {
    if (r8[ip->a] == r8[ip->b])
        goto take_skip;
    SB_RETIRE();
  }
  lbl_SKIP_SBRC: {
    if (!(r8[ip->a] & (1u << ip->b)))
        goto take_skip;
    SB_RETIRE();
  }
  lbl_SKIP_SBRS: {
    if (r8[ip->a] & (1u << ip->b))
        goto take_skip;
    SB_RETIRE();
  }
  lbl_LD_X: {
    uint8_t v = loadMem(pair(26));
    r8[ip->a] = v;
    SB_RETIRE_MEM();
  }
  lbl_LD_X_INC: {
    uint16_t ea = pair(26);
    uint8_t v = loadMem(ea);
    r8[ip->a] = v;
    setPair(26, ea + 1);
    SB_RETIRE_MEM();
  }
  lbl_LD_X_DEC: {
    uint16_t ea = pair(26);
    setPair(26, --ea);
    uint8_t v = loadMem(ea);
    r8[ip->a] = v;
    SB_RETIRE_MEM();
  }
  lbl_LDD_Y: {
    uint8_t v = loadMem(static_cast<uint16_t>(pair(28) + ip->imm));
    r8[ip->a] = v;
    SB_RETIRE_MEM();
  }
  lbl_LD_Y_INC: {
    uint16_t ea = pair(28);
    uint8_t v = loadMem(ea);
    r8[ip->a] = v;
    setPair(28, ea + 1);
    SB_RETIRE_MEM();
  }
  lbl_LD_Y_DEC: {
    uint16_t ea = pair(28);
    setPair(28, --ea);
    uint8_t v = loadMem(ea);
    r8[ip->a] = v;
    SB_RETIRE_MEM();
  }
  lbl_LDD_Z: {
    uint8_t v = loadMem(static_cast<uint16_t>(pair(30) + ip->imm));
    r8[ip->a] = v;
    SB_RETIRE_MEM();
  }
  lbl_LD_Z_INC: {
    uint16_t ea = pair(30);
    uint8_t v = loadMem(ea);
    r8[ip->a] = v;
    setPair(30, ea + 1);
    SB_RETIRE_MEM();
  }
  lbl_LD_Z_DEC: {
    uint16_t ea = pair(30);
    setPair(30, --ea);
    uint8_t v = loadMem(ea);
    r8[ip->a] = v;
    SB_RETIRE_MEM();
  }
  lbl_LDS: {
    uint8_t v = loadMem(ip->addr);
    r8[ip->a] = v;
    SB_RETIRE_MEM();
  }
  lbl_ST_X: {
    storeMem(pair(26), r8[ip->a]);
    SB_RETIRE_STORE();
  }
  lbl_ST_X_INC: {
    uint16_t ea = pair(26);
    storeMem(ea, r8[ip->a]);
    setPair(26, ea + 1);
    SB_RETIRE_STORE();
  }
  lbl_ST_X_DEC: {
    uint16_t ea = pair(26);
    setPair(26, --ea);
    storeMem(ea, r8[ip->a]);
    SB_RETIRE_STORE();
  }
  lbl_STD_Y: {
    storeMem(static_cast<uint16_t>(pair(28) + ip->imm), r8[ip->a]);
    SB_RETIRE_STORE();
  }
  lbl_ST_Y_INC: {
    uint16_t ea = pair(28);
    storeMem(ea, r8[ip->a]);
    setPair(28, ea + 1);
    SB_RETIRE_STORE();
  }
  lbl_ST_Y_DEC: {
    uint16_t ea = pair(28);
    setPair(28, --ea);
    storeMem(ea, r8[ip->a]);
    SB_RETIRE_STORE();
  }
  lbl_STD_Z: {
    storeMem(static_cast<uint16_t>(pair(30) + ip->imm), r8[ip->a]);
    SB_RETIRE_STORE();
  }
  lbl_ST_Z_INC: {
    uint16_t ea = pair(30);
    storeMem(ea, r8[ip->a]);
    setPair(30, ea + 1);
    SB_RETIRE_STORE();
  }
  lbl_ST_Z_DEC: {
    uint16_t ea = pair(30);
    setPair(30, --ea);
    storeMem(ea, r8[ip->a]);
    SB_RETIRE_STORE();
  }
  lbl_STS: {
    storeMem(ip->addr, r8[ip->a]);
    SB_RETIRE_STORE();
  }
  lbl_PUSH: {
    pushB(r8[ip->a]);
    SB_RETIRE_STORE();
  }
  lbl_POP: {
    r8[ip->a] = popB();
    SB_RETIRE_MEM();
  }
  lbl_LPM_R0: {
    uint16_t zv = pair(30);
    uint16_t w = flash_data[(zv >> 1) & (flashWords - 1)];
    r8[0] = (zv & 1) ? static_cast<uint8_t>(w >> 8)
                     : static_cast<uint8_t>(w);
    SB_RETIRE();
  }
  lbl_LPM: {
    uint16_t zv = pair(30);
    uint16_t w = flash_data[(zv >> 1) & (flashWords - 1)];
    r8[ip->a] = (zv & 1) ? static_cast<uint8_t>(w >> 8)
                         : static_cast<uint8_t>(w);
    SB_RETIRE();
  }
  lbl_LPM_INC: {
    uint16_t zv = pair(30);
    uint16_t w = flash_data[(zv >> 1) & (flashWords - 1)];
    r8[ip->a] = (zv & 1) ? static_cast<uint8_t>(w >> 8)
                         : static_cast<uint8_t>(w);
    setPair(30, zv + 1);
    SB_RETIRE();
  }
  lbl_NOPLIKE: {
    // NOP/SLEEP/WDR/BREAK. No MAC-stall accounting: the backend
    // never executes with shadow micro-ops pending.
    SB_RETIRE();
  }
  lbl_GHOST: {
    // Stitched RJMP/JMP: retires (count + cycles via the prefix
    // sums); the control transfer was resolved at translate time.
    SB_RETIRE();
  }
  lbl_CALL_THROUGH: {
    // Stitched RCALL/CALL: push the return address, keep executing
    // the trace straight into the callee.
    pushRet(ip->addr);
    SB_RETIRE_STORE();
  }
  lbl_BRBS: {
    if ((sreg >> ip->a) & 1)
        goto take_branch;
    SB_RETIRE();
  }
  lbl_BRBC: {
    if (!((sreg >> ip->a) & 1))
        goto take_branch;
    SB_RETIRE();
  }
  lbl_EXIT_RET: {
    uint32_t ret = popRet();
    if (trap_kind != TrapKind::None) [[unlikely]]
        goto trap_exit;
    op_count[ip->op]++;
    consumed += ip->prefixCycles + ip->cycles;
    insts += static_cast<uint64_t>(ip - code0) + 1;
    pc = ret & 0xffff;
    goto next_block;
  }
  lbl_EXIT_RETI: {
    uint32_t ret = popRet();
    sreg |= sregI;
    if (trap_kind != TrapKind::None) [[unlikely]]
        goto trap_exit;
    op_count[ip->op]++;
    consumed += ip->prefixCycles + ip->cycles;
    insts += static_cast<uint64_t>(ip - code0) + 1;
    pc = ret & 0xffff;
    goto next_block;
  }
  lbl_EXIT_IJMP: {
    op_count[ip->op]++;
    consumed += ip->prefixCycles + ip->cycles;
    insts += static_cast<uint64_t>(ip - code0) + 1;
    pc = pair(30);
    goto next_block;
  }
  lbl_EXIT_ICALL: {
    // Push first, then read Z: a push that lands in the register
    // file (SP below 0x20) must be visible to the target read,
    // exactly as on the reference path.
    pushRet(ip->addr);
    if (trap_kind != TrapKind::None) [[unlikely]]
        goto trap_exit;
    op_count[ip->op]++;
    consumed += ip->prefixCycles + ip->cycles;
    insts += static_cast<uint64_t>(ip - code0) + 1;
    pc = pair(30);
    // A push into I/O space could have enabled the MAC unit; the
    // block-entry check at next_block re-validates, so only the
    // flag needs clearing (done at next_block).
    goto next_block;
  }
  lbl_EXIT_STATIC: {
    // Non-retiring continuation (loop back-edge / cap / sentinel).
    consumed += ip->prefixCycles;
    insts += static_cast<uint64_t>(ip - code0);
    pc = ip->pc;
    goto next_block;
  }
  lbl_EXIT_TRAP: {
    // Undecodable word: re-read flash to discriminate erased flash
    // from a reserved encoding, as the fast path does.
    uint16_t w = flash_data[ip->pc & (flashWords - 1)];
    consumed += ip->prefixCycles;
    insts += static_cast<uint64_t>(ip - code0);
    pc = ip->pc;
    pendingTrap = Trap{w == 0xffff ? TrapKind::FlashOutOfBounds
                                   : TrapKind::IllegalOpcode,
                       ip->pc, w};
    flush();
    return;
  }

  take_branch: {
    op_count[ip->op]++;
    op_extra[ip->op] += branchTakenExtra;
    consumed += ip->prefixCycles + ip->cycles + branchTakenExtra;
    insts += static_cast<uint64_t>(ip - code0) + 1;
    pc = ip->target;
    goto next_block;
  }
  take_skip: {
    op_count[ip->op]++;
    op_extra[ip->op] += ip->extra;
    consumed += ip->prefixCycles + ip->cycles + ip->extra;
    insts += static_cast<uint64_t>(ip - code0) + 1;
    pc = ip->target;
    goto next_block;
  }
  maccr_side_exit: {
    // A store just enabled the MAC unit mid-trace: the instruction
    // retired, the rest of the trace must run with hazard checks.
    // Translation guarantees ip[1].pc is this instruction's static
    // fall-through successor.
    consumed += ip->prefixCycles + ip->cycles;
    insts += static_cast<uint64_t>(ip - code0) + 1;
    pc = ip[1].pc;
    flush();
    runFastPlain(max_cycles - consumed);
    return;
  }
  trap_exit: {
    // The trapping instruction does not retire: charge the retired
    // prefix only and leave PC at the instruction, exactly as
    // runFast/step() do. Partial side effects (pre-decremented
    // pointers, SP moves) persist identically.
    consumed += ip->prefixCycles;
    insts += static_cast<uint64_t>(ip - code0);
    pc = ip->pc;
    pendingTrap = Trap{trap_kind, ip->pc, trap_addr};
    flush();
    return;
  }

#undef SB_RETIRE
#undef SB_RETIRE_MEM
#undef SB_RETIRE_STORE
#undef SB_NEXT
}

} // namespace jaavr
