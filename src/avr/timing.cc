#include "avr/timing.hh"

namespace jaavr
{

const char *
cpuModeName(CpuMode mode)
{
    switch (mode) {
      case CpuMode::CA: return "CA";
      case CpuMode::FAST: return "FAST";
      case CpuMode::ISE: return "ISE";
    }
    return "?";
}

unsigned
baseCycles(Op op, CpuMode mode)
{
    bool fast = mode != CpuMode::CA;
    switch (op) {
      // Single-cycle ALU and register-move operations (all modes).
      case Op::ADD: case Op::ADC: case Op::SUB: case Op::SBC:
      case Op::AND: case Op::OR: case Op::EOR: case Op::MOV:
      case Op::CP: case Op::CPC: case Op::SUBI: case Op::SBCI:
      case Op::ANDI: case Op::ORI: case Op::CPI: case Op::LDI:
      case Op::COM: case Op::NEG: case Op::SWAP: case Op::INC:
      case Op::DEC: case Op::ASR: case Op::LSR: case Op::ROR:
      case Op::BSET: case Op::BCLR: case Op::BLD: case Op::BST:
      case Op::IN: case Op::OUT: case Op::MOVW: case Op::NOP:
      case Op::SLEEP: case Op::WDR: case Op::BREAK:
        return 1;

      // The 8-bit multiplier: 2 cycles on the ATmega128, 1 in FAST.
      case Op::MUL: case Op::MULS: case Op::MULSU:
      case Op::FMUL: case Op::FMULS: case Op::FMULSU:
        return fast ? 1 : 2;

      // 16-bit immediate adds.
      case Op::ADIW: case Op::SBIW:
        return 2;

      // Data memory: 2 cycles on the ATmega128, 1 in FAST (the
      // optimization the paper quantifies with the 1.65x faster
      // modular addition, Section V-A).
      case Op::LD_X: case Op::LD_X_INC: case Op::LD_X_DEC:
      case Op::LDD_Y: case Op::LD_Y_INC: case Op::LD_Y_DEC:
      case Op::LDD_Z: case Op::LD_Z_INC: case Op::LD_Z_DEC:
      case Op::LDS:
      case Op::ST_X: case Op::ST_X_INC: case Op::ST_X_DEC:
      case Op::STD_Y: case Op::ST_Y_INC: case Op::ST_Y_DEC:
      case Op::STD_Z: case Op::ST_Z_INC: case Op::ST_Z_DEC:
      case Op::STS:
      case Op::PUSH: case Op::POP:
        return fast ? 1 : 2;

      // Program memory loads.
      case Op::LPM_R0: case Op::LPM: case Op::LPM_INC:
        return 3;

      // Bit set/clear in I/O space.
      case Op::SBI: case Op::CBI:
        return 2;

      // Control flow.
      case Op::RJMP: case Op::IJMP:
        return 2;
      case Op::JMP:
        return 3;
      case Op::RCALL: case Op::ICALL:
        return 3;
      case Op::CALL:
        return 4;
      case Op::RET: case Op::RETI:
        return 4;

      // Conditional branches / skips: base cost when not taken.
      case Op::BRBS: case Op::BRBC:
      case Op::CPSE: case Op::SBRC: case Op::SBRS:
      case Op::SBIC: case Op::SBIS:
        return 1;

      case Op::INVALID:
        return 1;
    }
    return 1;
}

namespace
{

std::array<uint8_t, kNumOps>
makeCycleTable(CpuMode mode)
{
    std::array<uint8_t, kNumOps> table{};
    for (size_t i = 0; i < kNumOps; i++)
        table[i] = static_cast<uint8_t>(
            baseCycles(static_cast<Op>(i), mode));
    return table;
}

} // anonymous namespace

const std::array<uint8_t, kNumOps> &
baseCycleTable(CpuMode mode)
{
    static const std::array<uint8_t, kNumOps> ca = makeCycleTable(CpuMode::CA);
    static const std::array<uint8_t, kNumOps> fast =
        makeCycleTable(CpuMode::FAST);
    static const std::array<uint8_t, kNumOps> ise =
        makeCycleTable(CpuMode::ISE);
    switch (mode) {
      case CpuMode::CA: return ca;
      case CpuMode::FAST: return fast;
      case CpuMode::ISE: return ise;
    }
    return ca;
}

unsigned
skipExtra(bool two_word_target)
{
    return two_word_target ? 2 : 1;
}

} // namespace jaavr
