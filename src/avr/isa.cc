#include "avr/isa.hh"

#include "support/logging.hh"

namespace jaavr
{

namespace
{

/** Extract bits [hi:lo] of @p w. */
constexpr uint16_t
bits(uint16_t w, unsigned hi, unsigned lo)
{
    return (w >> lo) & ((1u << (hi - lo + 1)) - 1);
}

/** Sign-extend @p v of @p width bits. */
constexpr int16_t
sext(uint16_t v, unsigned width)
{
    uint16_t sign = 1u << (width - 1);
    return static_cast<int16_t>((v ^ sign)) - static_cast<int16_t>(sign);
}

} // anonymous namespace

bool
isTwoWord(uint16_t w0)
{
    // LDS/STS: 1001 00_d dddd 0000.
    if ((w0 & 0xfc0f) == 0x9000)
        return true;
    // JMP: 1001 010k kkkk 110k; CALL: 1001 010k kkkk 111k.
    if ((w0 & 0xfe0c) == 0x940c)
        return true;
    return false;
}

Inst
decode(uint16_t w0, uint16_t w1)
{
    Inst i;

    // 0xffff is the erased-flash fill word. Its bit pattern falls
    // into a reserved SBRS encoding (bit 3 set), which real parts
    // treat as undefined; decoding it as INVALID lets the machine
    // distinguish a run into never-programmed flash (trap
    // FlashOutOfBounds) from an in-program illegal word.
    if (w0 == 0xffff)
        return i;

    auto rr5 = [&] { return bits(w0, 9, 9) << 4 | bits(w0, 3, 0); };
    auto rd5 = [&] { return bits(w0, 8, 4); };

    switch (bits(w0, 15, 12)) {
      case 0x0:
        if (w0 == 0x0000) {
            i.op = Op::NOP;
        } else if (bits(w0, 11, 8) == 0x1) {
            i.op = Op::MOVW;
            i.rd = bits(w0, 7, 4) * 2;
            i.rr = bits(w0, 3, 0) * 2;
        } else if (bits(w0, 11, 8) == 0x2) {
            i.op = Op::MULS;
            i.rd = 16 + bits(w0, 7, 4);
            i.rr = 16 + bits(w0, 3, 0);
        } else if (bits(w0, 11, 8) == 0x3) {
            uint8_t d = 16 + bits(w0, 6, 4);
            uint8_t r = 16 + bits(w0, 2, 0);
            switch (bits(w0, 7, 7) << 1 | bits(w0, 3, 3)) {
              case 0: i.op = Op::MULSU; break;
              case 1: i.op = Op::FMUL; break;
              case 2: i.op = Op::FMULS; break;
              case 3: i.op = Op::FMULSU; break;
            }
            i.rd = d;
            i.rr = r;
        } else {
            switch (bits(w0, 11, 10)) {
              case 1: i.op = Op::CPC; break;
              case 2: i.op = Op::SBC; break;
              case 3: i.op = Op::ADD; break;
              default: i.op = Op::INVALID; break;
            }
            i.rd = rd5();
            i.rr = rr5();
        }
        break;

      case 0x1:
        switch (bits(w0, 11, 10)) {
          case 0: i.op = Op::CPSE; break;
          case 1: i.op = Op::CP; break;
          case 2: i.op = Op::SUB; break;
          case 3: i.op = Op::ADC; break;
        }
        i.rd = rd5();
        i.rr = rr5();
        break;

      case 0x2:
        switch (bits(w0, 11, 10)) {
          case 0: i.op = Op::AND; break;
          case 1: i.op = Op::EOR; break;
          case 2: i.op = Op::OR; break;
          case 3: i.op = Op::MOV; break;
        }
        i.rd = rd5();
        i.rr = rr5();
        break;

      case 0x3: case 0x4: case 0x5: case 0x6: case 0x7: case 0xe: {
        switch (bits(w0, 15, 12)) {
          case 0x3: i.op = Op::CPI; break;
          case 0x4: i.op = Op::SBCI; break;
          case 0x5: i.op = Op::SUBI; break;
          case 0x6: i.op = Op::ORI; break;
          case 0x7: i.op = Op::ANDI; break;
          case 0xe: i.op = Op::LDI; break;
        }
        i.rd = 16 + bits(w0, 7, 4);
        i.imm = bits(w0, 11, 8) << 4 | bits(w0, 3, 0);
        break;
      }

      case 0x8: case 0xa: {
        // LDD/STD with displacement: 10q0 qqsd dddd yqqq.
        uint8_t q = (bits(w0, 13, 13) << 5) | (bits(w0, 11, 10) << 3) |
                    bits(w0, 2, 0);
        bool store = bits(w0, 9, 9);
        bool y_reg = bits(w0, 3, 3);
        i.rd = rd5();
        i.disp = q;
        if (store)
            i.op = y_reg ? Op::STD_Y : Op::STD_Z;
        else
            i.op = y_reg ? Op::LDD_Y : Op::LDD_Z;
        break;
      }

      case 0x9:
        switch (bits(w0, 11, 8)) {
          case 0x0: case 0x1: {  // loads
            i.rd = rd5();
            switch (bits(w0, 3, 0)) {
              case 0x0: i.op = Op::LDS; i.k = w1; i.words = 2; break;
              case 0x1: i.op = Op::LD_Z_INC; break;
              case 0x2: i.op = Op::LD_Z_DEC; break;
              case 0x4: i.op = Op::LPM; break;
              case 0x5: i.op = Op::LPM_INC; break;
              case 0x9: i.op = Op::LD_Y_INC; break;
              case 0xa: i.op = Op::LD_Y_DEC; break;
              case 0xc: i.op = Op::LD_X; break;
              case 0xd: i.op = Op::LD_X_INC; break;
              case 0xe: i.op = Op::LD_X_DEC; break;
              case 0xf: i.op = Op::POP; break;
              default: i.op = Op::INVALID; break;
            }
            break;
          }
          case 0x2: case 0x3: {  // stores
            i.rd = rd5();
            switch (bits(w0, 3, 0)) {
              case 0x0: i.op = Op::STS; i.k = w1; i.words = 2; break;
              case 0x1: i.op = Op::ST_Z_INC; break;
              case 0x2: i.op = Op::ST_Z_DEC; break;
              case 0x9: i.op = Op::ST_Y_INC; break;
              case 0xa: i.op = Op::ST_Y_DEC; break;
              case 0xc: i.op = Op::ST_X; break;
              case 0xd: i.op = Op::ST_X_INC; break;
              case 0xe: i.op = Op::ST_X_DEC; break;
              case 0xf: i.op = Op::PUSH; break;
              default: i.op = Op::INVALID; break;
            }
            break;
          }
          case 0x4: case 0x5: {  // one-operand + misc
            uint8_t low = bits(w0, 3, 0);
            i.rd = rd5();
            if (low <= 0x7 || low == 0xa) {
                switch (low) {
                  case 0x0: i.op = Op::COM; break;
                  case 0x1: i.op = Op::NEG; break;
                  case 0x2: i.op = Op::SWAP; break;
                  case 0x3: i.op = Op::INC; break;
                  case 0x5: i.op = Op::ASR; break;
                  case 0x6: i.op = Op::LSR; break;
                  case 0x7: i.op = Op::ROR; break;
                  case 0xa: i.op = Op::DEC; break;
                  default: i.op = Op::INVALID; break;
                }
            } else if (low == 0x8 && bits(w0, 11, 8) == 0x4) {
                // BSET/BCLR: 1001 0100 Bsss 1000.
                i.bit = bits(w0, 6, 4);
                i.op = bits(w0, 7, 7) ? Op::BCLR : Op::BSET;
            } else if (low == 0x8 && bits(w0, 11, 8) == 0x5) {
                switch (bits(w0, 7, 4)) {
                  case 0x00: i.op = Op::RET; break;
                  case 0x01: i.op = Op::RETI; break;
                  case 0x08: i.op = Op::SLEEP; break;
                  case 0x09: i.op = Op::BREAK; break;
                  case 0x0a: i.op = Op::WDR; break;
                  case 0x0c: i.op = Op::LPM_R0; break;
                  default: i.op = Op::INVALID; break;
                }
            } else if (low == 0x9) {
                if (w0 == 0x9409)
                    i.op = Op::IJMP;
                else if (w0 == 0x9509)
                    i.op = Op::ICALL;
                else
                    i.op = Op::INVALID;
            } else if (low == 0xc || low == 0xd) {
                i.op = Op::JMP;
                i.k = (uint32_t(bits(w0, 8, 4)) << 17) |
                      (uint32_t(bits(w0, 0, 0)) << 16) | w1;
                i.words = 2;
            } else if (low == 0xe || low == 0xf) {
                i.op = Op::CALL;
                i.k = (uint32_t(bits(w0, 8, 4)) << 17) |
                      (uint32_t(bits(w0, 0, 0)) << 16) | w1;
                i.words = 2;
            } else {
                i.op = Op::INVALID;
            }
            break;
          }
          case 0x6: case 0x7:
            i.op = bits(w0, 8, 8) ? Op::SBIW : Op::ADIW;
            i.rd = 24 + 2 * bits(w0, 5, 4);
            i.imm = (bits(w0, 7, 6) << 4) | bits(w0, 3, 0);
            break;
          case 0x8: case 0x9: case 0xa: case 0xb:
            switch (bits(w0, 9, 8)) {
              case 0: i.op = Op::CBI; break;
              case 1: i.op = Op::SBIC; break;
              case 2: i.op = Op::SBI; break;
              case 3: i.op = Op::SBIS; break;
            }
            i.imm = bits(w0, 7, 3);
            i.bit = bits(w0, 2, 0);
            break;
          default:  // 0xc-0xf: MUL
            i.op = Op::MUL;
            i.rd = rd5();
            i.rr = rr5();
            break;
        }
        break;

      case 0xb:
        i.op = bits(w0, 11, 11) ? Op::OUT : Op::IN;
        i.rd = rd5();
        i.imm = (bits(w0, 10, 9) << 4) | bits(w0, 3, 0);
        break;

      case 0xc:
        i.op = Op::RJMP;
        i.disp = sext(bits(w0, 11, 0), 12);
        break;

      case 0xd:
        i.op = Op::RCALL;
        i.disp = sext(bits(w0, 11, 0), 12);
        break;

      case 0xf:
        switch (bits(w0, 11, 10)) {
          case 0: case 1:
            i.op = bits(w0, 10, 10) ? Op::BRBC : Op::BRBS;
            i.bit = bits(w0, 2, 0);
            i.disp = sext(bits(w0, 9, 3), 7);
            break;
          case 2:
            i.op = bits(w0, 9, 9) ? Op::BST : Op::BLD;
            i.rd = rd5();
            i.bit = bits(w0, 2, 0);
            break;
          case 3:
            i.op = bits(w0, 9, 9) ? Op::SBRS : Op::SBRC;
            i.rd = rd5();
            i.bit = bits(w0, 2, 0);
            break;
        }
        break;
    }
    return i;
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::ADD: return "add";
      case Op::ADC: return "adc";
      case Op::SUB: return "sub";
      case Op::SBC: return "sbc";
      case Op::AND: return "and";
      case Op::OR: return "or";
      case Op::EOR: return "eor";
      case Op::MOV: return "mov";
      case Op::CP: return "cp";
      case Op::CPC: return "cpc";
      case Op::CPSE: return "cpse";
      case Op::MUL: return "mul";
      case Op::MULS: return "muls";
      case Op::MULSU: return "mulsu";
      case Op::FMUL: return "fmul";
      case Op::FMULS: return "fmuls";
      case Op::FMULSU: return "fmulsu";
      case Op::MOVW: return "movw";
      case Op::SUBI: return "subi";
      case Op::SBCI: return "sbci";
      case Op::ANDI: return "andi";
      case Op::ORI: return "ori";
      case Op::CPI: return "cpi";
      case Op::LDI: return "ldi";
      case Op::ADIW: return "adiw";
      case Op::SBIW: return "sbiw";
      case Op::COM: return "com";
      case Op::NEG: return "neg";
      case Op::SWAP: return "swap";
      case Op::INC: return "inc";
      case Op::DEC: return "dec";
      case Op::ASR: return "asr";
      case Op::LSR: return "lsr";
      case Op::ROR: return "ror";
      case Op::BSET: return "bset";
      case Op::BCLR: return "bclr";
      case Op::BLD: return "bld";
      case Op::BST: return "bst";
      case Op::SBI: return "sbi";
      case Op::CBI: return "cbi";
      case Op::SBIC: return "sbic";
      case Op::SBIS: return "sbis";
      case Op::IN: return "in";
      case Op::OUT: return "out";
      case Op::LD_X: return "ld";
      case Op::LD_X_INC: return "ld";
      case Op::LD_X_DEC: return "ld";
      case Op::LDD_Y: return "ldd";
      case Op::LD_Y_INC: return "ld";
      case Op::LD_Y_DEC: return "ld";
      case Op::LDD_Z: return "ldd";
      case Op::LD_Z_INC: return "ld";
      case Op::LD_Z_DEC: return "ld";
      case Op::LDS: return "lds";
      case Op::ST_X: return "st";
      case Op::ST_X_INC: return "st";
      case Op::ST_X_DEC: return "st";
      case Op::STD_Y: return "std";
      case Op::ST_Y_INC: return "st";
      case Op::ST_Y_DEC: return "st";
      case Op::STD_Z: return "std";
      case Op::ST_Z_INC: return "st";
      case Op::ST_Z_DEC: return "st";
      case Op::STS: return "sts";
      case Op::PUSH: return "push";
      case Op::POP: return "pop";
      case Op::LPM_R0: return "lpm";
      case Op::LPM: return "lpm";
      case Op::LPM_INC: return "lpm";
      case Op::RJMP: return "rjmp";
      case Op::RCALL: return "rcall";
      case Op::JMP: return "jmp";
      case Op::CALL: return "call";
      case Op::RET: return "ret";
      case Op::RETI: return "reti";
      case Op::IJMP: return "ijmp";
      case Op::ICALL: return "icall";
      case Op::BRBS: return "brbs";
      case Op::BRBC: return "brbc";
      case Op::SBRC: return "sbrc";
      case Op::SBRS: return "sbrs";
      case Op::NOP: return "nop";
      case Op::SLEEP: return "sleep";
      case Op::WDR: return "wdr";
      case Op::BREAK: return "break";
      case Op::INVALID: return "<invalid>";
    }
    return "<?>";
}

Synonym
synonymOf(const Inst &inst)
{
    if (inst.rd != inst.rr)
        return Synonym::None;
    switch (inst.op) {
      case Op::ADD: return Synonym::LSL;
      case Op::ADC: return Synonym::ROL;
      case Op::AND: return Synonym::TST;
      case Op::EOR: return Synonym::CLR;
      default: return Synonym::None;
    }
}

std::string
disassemble(const Inst &i)
{
    const char *n = opName(i.op);
    // Synonym encodings print as their idiomatic mnemonic; the
    // assembler folds these back to the canonical form, so the
    // disassemble/assemble round trip stays closed.
    switch (synonymOf(i)) {
      case Synonym::LSL: return csprintf("lsl r%d", i.rd);
      case Synonym::ROL: return csprintf("rol r%d", i.rd);
      case Synonym::TST: return csprintf("tst r%d", i.rd);
      case Synonym::CLR: return csprintf("clr r%d", i.rd);
      case Synonym::None: break;
    }
    switch (i.op) {
      case Op::ADD: case Op::ADC: case Op::SUB: case Op::SBC:
      case Op::AND: case Op::OR: case Op::EOR: case Op::MOV:
      case Op::CP: case Op::CPC: case Op::CPSE: case Op::MUL:
      case Op::MULS: case Op::MULSU: case Op::FMUL: case Op::FMULS:
      case Op::FMULSU: case Op::MOVW:
        return csprintf("%s r%d, r%d", n, i.rd, i.rr);
      case Op::SUBI: case Op::SBCI: case Op::ANDI: case Op::ORI:
      case Op::CPI: case Op::LDI:
        return csprintf("%s r%d, 0x%02x", n, i.rd, i.imm);
      case Op::ADIW: case Op::SBIW:
        return csprintf("%s r%d, %d", n, i.rd, i.imm);
      case Op::COM: case Op::NEG: case Op::SWAP: case Op::INC:
      case Op::DEC: case Op::ASR: case Op::LSR: case Op::ROR:
      case Op::PUSH: case Op::POP:
        return csprintf("%s r%d", n, i.rd);
      case Op::BSET: case Op::BCLR:
        return csprintf("%s %d", n, i.bit);
      case Op::BLD: case Op::BST: case Op::SBRC: case Op::SBRS:
        return csprintf("%s r%d, %d", n, i.rd, i.bit);
      case Op::SBI: case Op::CBI: case Op::SBIC: case Op::SBIS:
        return csprintf("%s 0x%02x, %d", n, i.imm, i.bit);
      case Op::IN:
        return csprintf("in r%d, 0x%02x", i.rd, i.imm);
      case Op::OUT:
        return csprintf("out 0x%02x, r%d", i.imm, i.rd);
      case Op::LD_X: return csprintf("ld r%d, X", i.rd);
      case Op::LD_X_INC: return csprintf("ld r%d, X+", i.rd);
      case Op::LD_X_DEC: return csprintf("ld r%d, -X", i.rd);
      case Op::LD_Y_INC: return csprintf("ld r%d, Y+", i.rd);
      case Op::LD_Y_DEC: return csprintf("ld r%d, -Y", i.rd);
      case Op::LD_Z_INC: return csprintf("ld r%d, Z+", i.rd);
      case Op::LD_Z_DEC: return csprintf("ld r%d, -Z", i.rd);
      case Op::LDD_Y: return csprintf("ldd r%d, Y+%d", i.rd, i.disp);
      case Op::LDD_Z: return csprintf("ldd r%d, Z+%d", i.rd, i.disp);
      case Op::ST_X: return csprintf("st X, r%d", i.rd);
      case Op::ST_X_INC: return csprintf("st X+, r%d", i.rd);
      case Op::ST_X_DEC: return csprintf("st -X, r%d", i.rd);
      case Op::ST_Y_INC: return csprintf("st Y+, r%d", i.rd);
      case Op::ST_Y_DEC: return csprintf("st -Y, r%d", i.rd);
      case Op::ST_Z_INC: return csprintf("st Z+, r%d", i.rd);
      case Op::ST_Z_DEC: return csprintf("st -Z, r%d", i.rd);
      case Op::STD_Y: return csprintf("std Y+%d, r%d", i.disp, i.rd);
      case Op::STD_Z: return csprintf("std Z+%d, r%d", i.disp, i.rd);
      case Op::LDS: return csprintf("lds r%d, 0x%04x", i.rd, i.k);
      case Op::STS: return csprintf("sts 0x%04x, r%d", i.k, i.rd);
      case Op::LPM_R0: return "lpm";
      case Op::LPM: return csprintf("lpm r%d, Z", i.rd);
      case Op::LPM_INC: return csprintf("lpm r%d, Z+", i.rd);
      case Op::RJMP: case Op::RCALL:
        return csprintf("%s .%+d", n, i.disp * 2);
      case Op::JMP: case Op::CALL:
        return csprintf("%s 0x%x", n, i.k);
      case Op::BRBS: case Op::BRBC:
        return csprintf("%s %d, .%+d", n, i.bit, i.disp * 2);
      default:
        return n;
    }
}

bool
isLoadOp(Op op)
{
    switch (op) {
      case Op::LD_X: case Op::LD_X_INC: case Op::LD_X_DEC:
      case Op::LDD_Y: case Op::LD_Y_INC: case Op::LD_Y_DEC:
      case Op::LDD_Z: case Op::LD_Z_INC: case Op::LD_Z_DEC:
      case Op::LDS:
        return true;
      default:
        return false;
    }
}

bool
isStoreOp(Op op)
{
    switch (op) {
      case Op::ST_X: case Op::ST_X_INC: case Op::ST_X_DEC:
      case Op::STD_Y: case Op::ST_Y_INC: case Op::ST_Y_DEC:
      case Op::STD_Z: case Op::ST_Z_INC: case Op::ST_Z_DEC:
      case Op::STS:
        return true;
      default:
        return false;
    }
}

} // namespace jaavr
