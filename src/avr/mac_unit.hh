/**
 * @file
 * The (32 x 4)-bit Multiply-Accumulate unit of the paper (Fig. 1).
 *
 * Structure, mirrored from the figure and Section IV-A:
 *  - first operand: the 32-bit word in registers R16..R19;
 *  - second operand: a 4-bit nibble (from the SWAP-ed register in
 *    Algorithm 1 mode, or from the byte loaded into R24 in
 *    Algorithm 2 mode);
 *  - a (32 x 4)-bit multiplier producing a 36-bit product;
 *  - a barrel shifter shifting the product left by 4 * counter bits
 *    (counter auto-increments and wraps after eight MACs);
 *  - a 72-bit adder accumulating into the fixed registers R0..R8.
 *
 * All of this retires in a single clock cycle and does not stall the
 * integer pipeline; the hazard rule is that the two instructions in
 * the shadow of an Algorithm-2 trigger must not touch the 13
 * registers {R0..R8, R16..R19} (enforced by the Machine).
 */

#ifndef JAAVR_AVR_MAC_UNIT_HH
#define JAAVR_AVR_MAC_UNIT_HH

#include <array>
#include <cstdint>

namespace jaavr
{

class MacUnit
{
  public:
    /** MACCR control-register bits (I/O-mapped, see Machine). */
    static constexpr uint8_t ctrlSwapMode = 0x01; ///< Algorithm 1
    static constexpr uint8_t ctrlLoadMode = 0x02; ///< Algorithm 2

    /**
     * Reset counter and pending state (on MACCR writes). The MAC
     * statistics counter deliberately survives: it is observability
     * state, not architectural state.
     */
    void
    reset()
    {
        counter = 0;
        pending = 0;
    }

    /**
     * One (32 x 4)-bit MAC: regs[0..8] (the 72-bit accumulator)
     * += (regs[16..19] as a little-endian u32) * nibble << 4*counter;
     * the counter then advances (mod 8).
     *
     * @param regs the machine's general-purpose register file
     * @param nibble 4-bit multiplier digit
     */
    void
    mac(std::array<uint8_t, 32> &regs, uint8_t nibble)
    {
        uint32_t word = static_cast<uint32_t>(regs[16]) |
                        static_cast<uint32_t>(regs[17]) << 8 |
                        static_cast<uint32_t>(regs[18]) << 16 |
                        static_cast<uint32_t>(regs[19]) << 24;
        // 36-bit product through the barrel shifter (<= 64 bits).
        uint64_t shifted = (static_cast<uint64_t>(word) * (nibble & 0xf))
                           << (4 * counter);
        // 72-bit accumulate into R0..R8.
        unsigned __int128 acc = 0;
        for (int i = 8; i >= 0; i--)
            acc = (acc << 8) | regs[i];
        acc += shifted;
        for (int i = 0; i <= 8; i++) {
            regs[i] = static_cast<uint8_t>(acc);
            acc >>= 8;
        }
        counter = (counter + 1) & 7;
        macsPerformed++;
    }

    /**
     * Algorithm-1 MAC: one nibble exposed by the SWAP trigger. Same
     * datapath as mac(), but classified for the telemetry counters
     * (Fig. 1 distinguishes the two trigger algorithms).
     */
    void
    macSwap(std::array<uint8_t, 32> &regs, uint8_t nibble)
    {
        alg1Count++;
        mac(regs, nibble);
    }

    /**
     * Algorithm-2 trigger: the byte loaded into R24 feeds both of its
     * nibbles (low first) through the MAC datapath in one cycle.
     */
    void
    macLoad(std::array<uint8_t, 32> &regs, uint8_t value)
    {
        alg2Count += 2;
        mac(regs, value & 0x0f);
        mac(regs, value >> 4);
    }

    /** Barrel-shifter counter (0..7). */
    uint8_t shiftCounter() const { return counter; }

    /** Outstanding Algorithm-2 shadow cycles (0..2). */
    uint8_t pendingShadow() const { return pending; }
    void setPendingShadow(uint8_t p) { pending = p; }

    /** Total MAC operations performed (statistics). */
    uint64_t totalMacs() const { return macsPerformed; }

    /** MACs triggered through the Algorithm-1 (SWAP) path. */
    uint64_t alg1Macs() const { return alg1Count; }

    /** MACs triggered through the Algorithm-2 (load) path. */
    uint64_t alg2Macs() const { return alg2Count; }

  private:
    uint8_t counter = 0;
    uint8_t pending = 0;
    uint64_t macsPerformed = 0;
    uint64_t alg1Count = 0;
    uint64_t alg2Count = 0;
};

} // namespace jaavr

#endif // JAAVR_AVR_MAC_UNIT_HH
