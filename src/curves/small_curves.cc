#include "curves/small_curves.hh"

#include "nt/primality.hh"
#include "support/logging.hh"
#include "support/random.hh"

namespace jaavr
{

namespace
{

/**
 * Full order of B y^2 = x^3 + A x^2 + x over F_p by the quadratic
 * character: each x contributes 1 + chi(rhs/B) points (one when
 * rhs = 0), plus the point at infinity.
 */
uint64_t
countMontgomeryPoints(const PrimeField &f, const BigUInt &ca,
                      const BigUInt &cb)
{
    uint64_t p = f.modulus().toUint64();
    BigUInt inv_b = f.inv(cb);
    uint64_t count = 1; // infinity
    for (uint64_t xi = 0; xi < p; xi++) {
        BigUInt x(xi);
        BigUInt rhs =
            f.mul(x, f.add(f.add(f.sqr(x), f.mul(ca, x)), BigUInt(1)));
        if (rhs.isZero()) {
            count += 1;
            continue;
        }
        int chi = jacobi(f.mul(rhs, inv_b), f.modulus());
        count += static_cast<uint64_t>(1 + chi);
    }
    return count;
}

struct Selection
{
    uint64_t p;
    uint32_t a;
    uint64_t order;
};

/**
 * Smallest prime p = 1 (mod 4) above 10000 admitting an A = 2
 * (mod 4) with a non-square Edwards d and a group order that is a
 * power-of-two cofactor <= 8 times an odd prime.
 */
Selection
selectSmallPair()
{
    Rng rng(0xc0ffee);
    for (uint64_t p = 10001;; p += 4) {
        if (!isProbablePrime(BigUInt(p), rng))
            continue;
        PrimeField f{BigUInt(p)};
        // The Edwards twin needs a = -1 to be a square for a
        // complete addition law.
        if (!f.isSquare(f.neg(BigUInt(1))))
            continue;
        for (uint32_t a = 6; a < 128; a += 4) {
            BigUInt d = f.mul(f.sub(BigUInt(2), f.fromUint(a)),
                              f.inv(f.fromUint(a + 2)));
            if (f.isSquare(d))
                continue;
            BigUInt cb = f.neg(f.fromUint(a + 2));
            uint64_t order = countMontgomeryPoints(f, f.fromUint(a), cb);
            uint64_t odd = order;
            uint64_t cof = 1;
            while (odd % 2 == 0) {
                odd /= 2;
                cof *= 2;
            }
            if (cof > 8 || !isProbablePrime(BigUInt(odd), rng))
                continue;
            return Selection{p, a, order};
        }
    }
}

} // anonymous namespace

SmallCurvePair::SmallCurvePair(const BigUInt &p, uint32_t ca,
                               const BigUInt &order)
    : field(p),
      montgomery(field, field.fromUint(ca),
                 field.neg(field.fromUint(ca + 2)), "montgomery-small"),
      edwards(field, field.neg(BigUInt(1)),
              field.mul(field.sub(BigUInt(2), field.fromUint(ca)),
                        field.inv(field.fromUint(ca + 2))),
              "edwards-small"),
      groupOrder(order)
{
    n = groupOrder;
    cofactor = BigUInt(1);
    while (!n.isOdd()) {
        n >>= 1;
        cofactor = cofactor + cofactor;
    }

    // An order-n base point: clear the cofactor off a random point
    // via the Weierstrass image (the only full-point multiplication
    // available for Montgomery curves).
    WeierstrassCurve w = montgomery.toWeierstrass();
    Rng rng(0xba5e);
    for (;;) {
        AffinePoint r = montgomery.randomPoint(rng);
        AffinePoint rw = montgomery.mapToWeierstrass(r);
        AffinePoint qw = w.mulBinary(cofactor, rw);
        if (qw.inf)
            continue;
        montBase = montgomery.mapFromWeierstrass(qw);
        break;
    }
    if (!montgomery.onCurve(montBase))
        panic("SmallCurvePair: base point off curve");
    if (montgomery.ladder(n, montBase.x).has_value())
        panic("SmallCurvePair: base point order mismatch");

    edBase = montgomeryToEdwards(*this, montBase);
    if (!edwards.onCurve(edBase))
        panic("SmallCurvePair: Edwards base off curve");
    if (!edwards.isIdentity(edwards.mulBinary(n, edBase)))
        panic("SmallCurvePair: Edwards base order mismatch");
    if (!edwards.isComplete())
        panic("SmallCurvePair: Edwards twin not complete");
}

const SmallCurvePair &
smallCurvePair()
{
    static const Selection sel = selectSmallPair();
    static const SmallCurvePair pair(BigUInt(sel.p), sel.a,
                                     BigUInt(sel.order));
    return pair;
}

AffinePoint
montgomeryToEdwards(const SmallCurvePair &pair, const AffinePoint &p)
{
    const PrimeField &f = pair.field;
    BigUInt one(1);
    if (p.inf || p.y.isZero() || f.add(p.x, one).isZero())
        panic("montgomeryToEdwards: exceptional point");
    BigUInt xe = f.mul(p.x, f.inv(p.y));
    BigUInt ye = f.mul(f.sub(p.x, one), f.inv(f.add(p.x, one)));
    return AffinePoint(xe, ye);
}

} // namespace jaavr
