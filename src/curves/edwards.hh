/**
 * @file
 * Twisted Edwards curves a*x^2 + y^2 = 1 + d*x^2*y^2 in the extended
 * coordinates of Hisil et al. (the system the paper cites for its
 * Edwards implementation).
 *
 * With a = -1 (a square, since the OPF primes are 1 mod 4) and d a
 * non-square, the addition law is complete: it is correct for every
 * pair of inputs including the identity, which is what makes the
 * double-and-add-always method straightforward on this family
 * (paper, Section V-B). Costs: mixed addition 7M (with the addend's
 * 2d*t precomputed), doubling 3M + 4S (plus 1M when the following
 * operation needs the extended T coordinate).
 */

#ifndef JAAVR_CURVES_EDWARDS_HH
#define JAAVR_CURVES_EDWARDS_HH

#include <optional>
#include <string>
#include <vector>

#include "curves/point.hh"
#include "field/prime_field.hh"

namespace jaavr
{

class EdwardsCurve
{
  public:
    /**
     * @param field underlying prime field (not owned)
     * @param ca    coefficient a; must be -1 mod p (the fast-formula
     *              case implemented here)
     * @param cd    coefficient d; must be a non-square for a complete
     *              addition law, and distinct from a
     */
    EdwardsCurve(const PrimeField &field, const BigUInt &ca,
                 const BigUInt &cd, std::string name = "edwards");

    const PrimeField &field() const { return *f; }
    const BigUInt &coeffA() const { return a; }
    const BigUInt &coeffD() const { return d; }
    const std::string &name() const { return ident; }

    /** True iff the addition law is complete (a square, d non-square). */
    bool isComplete() const { return complete; }

    /** Identity element (0, 1). */
    AffinePoint identity() const;
    bool isIdentity(const AffinePoint &p) const;

    /** True iff a x^2 + y^2 = 1 + d x^2 y^2. */
    bool onCurve(const AffinePoint &p) const;

    /** Lift a y-coordinate to a point when possible. */
    std::optional<AffinePoint> liftY(const BigUInt &y, Rng &rng) const;

    /** Random curve point. */
    AffinePoint randomPoint(Rng &rng) const;

    AffinePoint negate(const AffinePoint &p) const;

    // --- Extended-coordinate arithmetic -----------------------------

    ExtendedPoint toExtended(const AffinePoint &p) const;
    AffinePoint toAffine(const ExtendedPoint &p) const;

    /**
     * Unified extended addition (works for doubling too, and for any
     * inputs when the law is complete): 8M + 1 mulSmall.
     */
    ExtendedPoint add(const ExtendedPoint &p, const ExtendedPoint &q) const;

    /**
     * Mixed addition with an affine addend whose product 2d*t is
     * precomputed: 7M (madd-2008-hwcd-3).
     */
    ExtendedPoint addMixed(const ExtendedPoint &p, const AffinePoint &q,
                           const BigUInt &q_td2) const;

    /**
     * Doubling (dbl-2008-hwcd): 3M + 4S without the T output,
     * 4M + 4S when @p need_t is set.
     */
    ExtendedPoint dbl(const ExtendedPoint &p, bool need_t) const;

    /** 2d * x * y of an affine point (the addMixed precomputation). */
    BigUInt precomputeTd2(const AffinePoint &p) const;

    /**
     * Convert many extended points to affine with one field inversion
     * (invBatch over the Z coordinates; same amortization as the
     * Weierstrass toAffineBatch).
     */
    std::vector<AffinePoint>
    toAffineBatch(const std::vector<ExtendedPoint> &points) const;

    // --- Point multiplication ---------------------------------------

    /** NAF double-and-add (high-speed method of Table II). */
    AffinePoint mulNaf(const BigUInt &k, const AffinePoint &p) const;

    /**
     * mulNaf without the final affine division: returns the extended
     * result so batch consumers can share one toAffineBatch inversion.
     */
    ExtendedPoint mulNafExtended(const BigUInt &k,
                                 const AffinePoint &p) const;

    /** Plain MSB-first double-and-add. */
    AffinePoint mulBinary(const BigUInt &k, const AffinePoint &p) const;

    /**
     * Double-and-add-always; relies on the complete addition law, so
     * no special cases are reachable (paper: the DAAA entry for the
     * Edwards row of Table II).
     */
    AffinePoint mulDaaa(const BigUInt &k, const AffinePoint &p) const;

  private:
    const PrimeField *f;
    BigUInt a;
    BigUInt d;
    BigUInt d2;  ///< 2d
    bool complete;
    std::string ident;
};

} // namespace jaavr

#endif // JAAVR_CURVES_EDWARDS_HH
