/**
 * @file
 * Precomputed fixed-base comb tables (Lim-Lee) for the curve
 * families' generators.
 *
 * The paper rejects windowed/comb methods on the 8-bit target for
 * their memory cost (Section V-B); on the host service side the
 * trade-off flips: a table built once per curve at startup turns
 * every fixed-base multiplication (ECDSA nonce point, key
 * generation, the verifier's u1*G term) from ~bits doublings +
 * ~bits/3 additions into bits/w doublings + bits/w additions. The
 * service layer (DESIGN.md §14) builds one table per curve and
 * shares it read-only across all worker threads.
 *
 * A comb of width w over a scalar of `bits` bits splits the scalar
 * into w rows of d = ceil(bits/w) columns; table entry j (for each
 * nonzero w-bit row pattern j) holds sum_{i in bits(j)} 2^(i*d) * G
 * as an affine point. Evaluation scans the d columns MSB-first with
 * one doubling and at most one mixed addition per column.
 *
 * The tables are immutable after construction and carry no reference
 * to the curve they were built from: every method takes the curve as
 * a parameter, so worker contexts that own private curve instances
 * (identical parameters, no shared mutable state — see the
 * thread-safety notes in prime_field.hh) can evaluate one shared
 * table concurrently.
 */

#ifndef JAAVR_CURVES_FIXED_BASE_HH
#define JAAVR_CURVES_FIXED_BASE_HH

#include <vector>

#include "curves/edwards.hh"
#include "curves/weierstrass.hh"

namespace jaavr
{

/** Fixed-base comb over a short Weierstrass (or GLV) curve. */
class FixedBaseComb
{
  public:
    /**
     * Build the table for @p g on @p c, covering scalars of up to
     * @p scalar_bits bits (use the subgroup order's bit length).
     * @p w is the comb width; 2 <= w <= 8 (2^w - 1 stored points).
     * Construction performs one batched affine conversion of the
     * whole table (invBatch), so startup costs a single inversion.
     */
    FixedBaseComb(const WeierstrassCurve &c, const AffinePoint &g,
                  unsigned scalar_bits, unsigned w = 5);

    /**
     * k * G in Jacobian coordinates (no final inversion — callers
     * batch the affine conversions across requests). @p c must be
     * parameter-identical to the construction curve. Requires
     * k < 2^(w*d); anything in [0, 2^scalar_bits) qualifies.
     */
    JacobianPoint mulJacobian(const WeierstrassCurve &c,
                              const BigUInt &k) const;

    /** k * G as an affine point (one inversion; convenience). */
    AffinePoint mul(const WeierstrassCurve &c, const BigUInt &k) const;

    const AffinePoint &generator() const { return base; }
    unsigned window() const { return width; }
    unsigned columns() const { return cols; }
    /** Stored points (2^w - 1; entry j at index j - 1). */
    size_t tableSize() const { return table.size(); }

  private:
    AffinePoint base;
    unsigned width;  ///< comb width w
    unsigned cols;   ///< d = ceil(scalar_bits / w)
    std::vector<AffinePoint> table; ///< 2^w - 1 entries, all affine
};

/** Fixed-base comb over a twisted Edwards curve (a = -1). */
class EdwardsFixedBaseComb
{
  public:
    EdwardsFixedBaseComb(const EdwardsCurve &c, const AffinePoint &g,
                         unsigned scalar_bits, unsigned w = 5);

    /** k * G in extended coordinates (batch the final divisions). */
    ExtendedPoint mulExtended(const EdwardsCurve &c,
                              const BigUInt &k) const;

    AffinePoint mul(const EdwardsCurve &c, const BigUInt &k) const;

    const AffinePoint &generator() const { return base; }
    unsigned window() const { return width; }
    unsigned columns() const { return cols; }
    size_t tableSize() const { return table.size(); }

  private:
    AffinePoint base;
    unsigned width;
    unsigned cols;
    std::vector<AffinePoint> table;
    std::vector<BigUInt> tableTd2; ///< precomputed 2d*x*y per entry
};

} // namespace jaavr

#endif // JAAVR_CURVES_FIXED_BASE_HH
