/**
 * @file
 * A small-field Montgomery/Edwards curve pair with a brute-force
 * point count.
 *
 * The paper's OPF Montgomery and twisted Edwards curves are
 * constructed without their group orders (point counting over the
 * 160-bit fields is out of scope — see DESIGN.md), yet the hardened
 * scalar multiplications and the fault campaign need a known prime
 * subgroup order to run the full validation (subgroup membership)
 * path. This module constructs a structurally identical pair —
 * B = -(A+2), Edwards twin with a = -1 and non-square d — over a
 * small prime where the order is countable with the quadratic
 * character, and derives a base point of the odd prime subgroup
 * order. Apparatus for tests and the fault campaign, not part of the
 * paper's design space.
 */

#ifndef JAAVR_CURVES_SMALL_CURVES_HH
#define JAAVR_CURVES_SMALL_CURVES_HH

#include "curves/edwards.hh"
#include "curves/montgomery.hh"

namespace jaavr
{

/** Montgomery curve, its Edwards twin, and their counted order. */
struct SmallCurvePair
{
    PrimeField field;
    MontgomeryCurve montgomery;
    EdwardsCurve edwards;
    BigUInt groupOrder; ///< full group order (shared: birational)
    BigUInt n;          ///< odd prime subgroup order
    BigUInt cofactor;   ///< groupOrder / n, a power of two <= 8
    AffinePoint montBase; ///< order-n point on the Montgomery curve
    AffinePoint edBase;   ///< the same point on the Edwards twin

    SmallCurvePair(const SmallCurvePair &) = delete;
    SmallCurvePair &operator=(const SmallCurvePair &) = delete;

  private:
    SmallCurvePair(const BigUInt &p, uint32_t ca, const BigUInt &order);
    friend const SmallCurvePair &smallCurvePair();
};

/**
 * The lazily constructed singleton pair (deterministic: the smallest
 * qualifying prime p = 1 (mod 4) and coefficient A). Construction
 * self-checks and panics on inconsistency.
 */
const SmallCurvePair &smallCurvePair();

/** Map a point from the Montgomery member of @p pair to its Edwards
 *  twin: x_e = u/v, y_e = (u-1)/(u+1). Panics on exceptional points
 *  (v = 0 or u = -1, i.e. order <= 2). */
AffinePoint montgomeryToEdwards(const SmallCurvePair &pair,
                                const AffinePoint &p);

} // namespace jaavr

#endif // JAAVR_CURVES_SMALL_CURVES_HH
