#include "curves/ecdsa.hh"

#include "curves/validate.hh"
#include "support/logging.hh"
#include "support/sha256.hh"

namespace jaavr
{

Ecdsa::Ecdsa(const WeierstrassCurve &curve, const AffinePoint &gen,
             const BigUInt &order)
    : c(curve), glv(nullptr), g(gen), n(order)
{
    if (!validatePoint(c, g, &n))
        fatal("Ecdsa: invalid generator (off curve or order mismatch)");
}

Ecdsa::Ecdsa(const GlvCurve &curve)
    : c(curve), glv(&curve), g(curve.generator()), n(curve.order())
{
    if (!validatePoint(c, g, &n))
        fatal("Ecdsa: invalid GLV generator");
}

BigUInt
Ecdsa::hashToScalar(const std::string &message) const
{
    auto digest = Sha256::digest(message);
    // Leftmost bits(n) bits of the hash (SEC1 4.1.3 step 5).
    BigUInt e = BigUInt::fromBytes(
        std::vector<uint8_t>(digest.begin(), digest.end()));
    unsigned hash_bits = 256;
    unsigned n_bits = n.bitLength();
    if (hash_bits > n_bits)
        e = e >> (hash_bits - n_bits);
    return e % n;
}

AffinePoint
Ecdsa::mul(const BigUInt &k, const AffinePoint &p) const
{
    if (glv)
        return glv->mulGlvJsf(k, p);
    return c.mulNaf(k, p);
}

void
Ecdsa::attachFixedBase(const FixedBaseComb *table)
{
    if (table && !(table->generator().x == g.x &&
                   table->generator().y == g.y && !table->generator().inf))
        fatal("Ecdsa: fixed-base table built for a different generator");
    comb = table;
}

AffinePoint
Ecdsa::mulG(const BigUInt &k) const
{
    if (comb)
        return comb->mul(c, k);
    return mul(k, g);
}

EcdsaKeyPair
Ecdsa::generateKey(Rng &rng) const
{
    EcdsaKeyPair kp;
    kp.d = BigUInt(1) + BigUInt::random(rng, n - BigUInt(1));
    kp.q = mulG(kp.d);
    if (!validatePoint(c, kp.q, &n))
        fatal("Ecdsa: generated public key failed validation");
    return kp;
}

std::optional<EcdsaSignature>
Ecdsa::signWithNonce(const std::string &message, const BigUInt &d,
                     const BigUInt &k) const
{
    if (!validScalar(d, n))
        fatal("Ecdsa::signWithNonce: private scalar out of range");
    if (!validScalar(k, n))
        fatal("Ecdsa::signWithNonce: nonce out of range");
    BigUInt e = hashToScalar(message);
    AffinePoint rp = mulG(k);
    if (rp.inf)
        return std::nullopt;
    BigUInt r = rp.x % n;
    if (r.isZero())
        return std::nullopt;
    BigUInt s = k.invMod(n).mulMod(e.addMod(r.mulMod(d, n), n), n);
    if (s.isZero())
        return std::nullopt;
    return EcdsaSignature{r, s};
}

EcdsaSignature
Ecdsa::sign(const std::string &message, const BigUInt &d, Rng &rng) const
{
    for (;;) {
        BigUInt k = BigUInt(1) + BigUInt::random(rng, n - BigUInt(1));
        auto sig = signWithNonce(message, d, k);
        if (sig)
            return *sig;
    }
}

bool
Ecdsa::verify(const std::string &message, const EcdsaSignature &sig,
              const AffinePoint &q) const
{
    if (!validScalar(sig.r, n) || !validScalar(sig.s, n))
        return false;
    if (!validatePoint(c, q, &n))
        return false;

    BigUInt e = hashToScalar(message);
    BigUInt w = sig.s.invMod(n);
    BigUInt u1 = e.mulMod(w, n);
    BigUInt u2 = sig.r.mulMod(w, n);

    // R = u1 * G + u2 * Q.
    JacobianPoint acc = c.toJacobian(mulG(u1));
    acc = c.addMixed(acc, mul(u2, q));
    AffinePoint rp = c.toAffine(acc);
    if (rp.inf)
        return false;
    return rp.x % n == sig.r;
}

} // namespace jaavr
