#include "curves/ecdsa.hh"

#include "curves/validate.hh"
#include "support/logging.hh"
#include "support/sha256.hh"

namespace jaavr
{

Ecdsa::Ecdsa(const WeierstrassCurve &curve, const AffinePoint &gen,
             const BigUInt &order)
    : c(curve), glv(nullptr), g(gen), n(order)
{
    if (!validatePoint(c, g, &n))
        fatal("Ecdsa: invalid generator (off curve or order mismatch)");
}

Ecdsa::Ecdsa(const GlvCurve &curve)
    : c(curve), glv(&curve), g(curve.generator()), n(curve.order())
{
    if (!validatePoint(c, g, &n))
        fatal("Ecdsa: invalid GLV generator");
}

BigUInt
Ecdsa::hashToScalar(const std::string &message) const
{
    auto digest = Sha256::digest(message);
    // Leftmost bits(n) bits of the hash (SEC1 4.1.3 step 5).
    BigUInt e = BigUInt::fromBytes(
        std::vector<uint8_t>(digest.begin(), digest.end()));
    unsigned hash_bits = 256;
    unsigned n_bits = n.bitLength();
    if (hash_bits > n_bits)
        e = e >> (hash_bits - n_bits);
    return e % n;
}

AffinePoint
Ecdsa::mul(const BigUInt &k, const AffinePoint &p) const
{
    if (glv)
        return glv->mulGlvJsf(k, p);
    return c.mulNaf(k, p);
}

EcdsaKeyPair
Ecdsa::generateKey(Rng &rng) const
{
    EcdsaKeyPair kp;
    kp.d = BigUInt(1) + BigUInt::random(rng, n - BigUInt(1));
    kp.q = mul(kp.d, g);
    if (!validatePoint(c, kp.q, &n))
        fatal("Ecdsa: generated public key failed validation");
    return kp;
}

EcdsaSignature
Ecdsa::sign(const std::string &message, const BigUInt &d, Rng &rng) const
{
    if (!validScalar(d, n))
        fatal("Ecdsa::sign: private scalar out of range");
    BigUInt e = hashToScalar(message);
    for (;;) {
        BigUInt k = BigUInt(1) + BigUInt::random(rng, n - BigUInt(1));
        AffinePoint rp = mul(k, g);
        if (rp.inf)
            continue;
        BigUInt r = rp.x % n;
        if (r.isZero())
            continue;
        BigUInt s = k.invMod(n).mulMod(e.addMod(r.mulMod(d, n), n), n);
        if (s.isZero())
            continue;
        return EcdsaSignature{r, s};
    }
}

bool
Ecdsa::verify(const std::string &message, const EcdsaSignature &sig,
              const AffinePoint &q) const
{
    if (!validScalar(sig.r, n) || !validScalar(sig.s, n))
        return false;
    if (!validatePoint(c, q, &n))
        return false;

    BigUInt e = hashToScalar(message);
    BigUInt w = sig.s.invMod(n);
    BigUInt u1 = e.mulMod(w, n);
    BigUInt u2 = sig.r.mulMod(w, n);

    // R = u1 * G + u2 * Q.
    JacobianPoint acc = c.toJacobian(mul(u1, g));
    acc = c.addMixed(acc, mul(u2, q));
    AffinePoint rp = c.toAffine(acc);
    if (rp.inf)
        return false;
    return rp.x % n == sig.r;
}

} // namespace jaavr
