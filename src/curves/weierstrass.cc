#include "curves/weierstrass.hh"

#include "field/batch_inverse.hh"
#include "scalar/recode.hh"
#include "support/logging.hh"

namespace jaavr
{

WeierstrassCurve::WeierstrassCurve(const PrimeField &field, const BigUInt &ca,
                                   const BigUInt &cb, std::string name)
    : f(&field), a(ca), b(cb), ident(std::move(name))
{
    aIsZero = a.isZero();
    aIsMinus3 = (a == field.modulus() - BigUInt(3));
    // Non-singularity: 4a^3 + 27b^2 != 0.
    BigUInt disc = f->add(
        f->mulSmall(f->mul(f->sqr(a), a), 4),
        f->mulSmall(f->sqr(b), 27));
    if (disc.isZero())
        fatal("WeierstrassCurve %s: singular curve", ident.c_str());
}

bool
WeierstrassCurve::onCurve(const AffinePoint &p) const
{
    if (p.inf)
        return true;
    BigUInt lhs = f->sqr(p.y);
    BigUInt rhs = f->add(f->add(f->mul(f->sqr(p.x), p.x),
                                f->mul(a, p.x)), b);
    return lhs == rhs;
}

std::optional<AffinePoint>
WeierstrassCurve::liftX(const BigUInt &x, Rng &rng) const
{
    BigUInt rhs = f->add(f->add(f->mul(f->sqr(x), x), f->mul(a, x)), b);
    auto y = f->sqrt(rhs, rng);
    if (!y)
        return std::nullopt;
    return AffinePoint(x, *y);
}

AffinePoint
WeierstrassCurve::randomPoint(Rng &rng) const
{
    for (;;) {
        BigUInt x = f->random(rng);
        auto p = liftX(x, rng);
        if (!p)
            continue;
        if (p->y.isZero())
            continue;  // avoid 2-torsion points
        if (rng.flip())
            return negate(*p);
        return *p;
    }
}

JacobianPoint
WeierstrassCurve::toJacobian(const AffinePoint &p) const
{
    if (p.inf)
        return JacobianPoint::infinity();
    JacobianPoint j;
    j.x = p.x;
    j.y = p.y;
    j.z = BigUInt(1);
    return j;
}

AffinePoint
WeierstrassCurve::toAffine(const JacobianPoint &p) const
{
    if (p.isInfinity())
        return AffinePoint::infinity();
    BigUInt zi = f->inv(p.z);
    BigUInt zi2 = f->sqr(zi);
    AffinePoint out(f->mul(p.x, zi2), f->mul(p.y, f->mul(zi2, zi)));
    return out;
}

AffinePoint
WeierstrassCurve::negate(const AffinePoint &p) const
{
    if (p.inf)
        return p;
    return AffinePoint(p.x, f->neg(p.y));
}

JacobianPoint
WeierstrassCurve::dbl(const JacobianPoint &p) const
{
    if (p.isInfinity() || p.y.isZero())
        return JacobianPoint::infinity();

    if (aIsMinus3) {
        // dbl-2001-b for a = -3: 3M + 5S (the cost class the paper's
        // Jacobian doubling belongs to).
        BigUInt delta = f->sqr(p.z);
        BigUInt gamma = f->sqr(p.y);
        BigUInt beta = f->mul(p.x, gamma);
        BigUInt alpha = f->mul(f->sub(p.x, delta), f->add(p.x, delta));
        alpha = f->add(f->add(alpha, alpha), alpha);
        JacobianPoint r;
        BigUInt beta4 = f->add(beta, beta);
        beta4 = f->add(beta4, beta4);
        r.x = f->sub(f->sqr(alpha), f->add(beta4, beta4));
        r.z = f->sub(f->sub(f->sqr(f->add(p.y, p.z)), gamma), delta);
        BigUInt g2 = f->sqr(gamma);
        BigUInt g8 = f->add(g2, g2);
        g8 = f->add(g8, g8);
        g8 = f->add(g8, g8);
        r.y = f->sub(f->mul(alpha, f->sub(beta4, r.x)), g8);
        return r;
    }

    BigUInt xx = f->sqr(p.x);                       // A = X^2
    BigUInt yy = f->sqr(p.y);                       // B = Y^2
    BigUInt yyyy = f->sqr(yy);                      // C = B^2
    // D = 2 * ((X + B)^2 - A - C) = 4 X Y^2
    BigUInt d = f->sub(f->sub(f->sqr(f->add(p.x, yy)), xx), yyyy);
    d = f->add(d, d);

    BigUInt e;
    if (aIsZero) {
        e = f->add(f->add(xx, xx), xx);             // 3A
    } else {
        BigUInt zz = f->sqr(p.z);
        e = f->add(f->add(f->add(xx, xx), xx), f->mul(a, f->sqr(zz)));
    }

    BigUInt ee = f->sqr(e);                         // F = E^2
    JacobianPoint r;
    r.x = f->sub(ee, f->add(d, d));                 // X3 = F - 2D
    BigUInt c8 = f->add(yyyy, yyyy);
    c8 = f->add(c8, c8);
    c8 = f->add(c8, c8);                            // 8C
    r.y = f->sub(f->mul(e, f->sub(d, r.x)), c8);
    BigUInt yz = f->mul(p.y, p.z);
    r.z = f->add(yz, yz);                           // Z3 = 2YZ
    return r;
}

JacobianPoint
WeierstrassCurve::addMixed(const JacobianPoint &p, const AffinePoint &q) const
{
    if (q.inf)
        return p;
    if (p.isInfinity())
        return toJacobian(q);

    // madd-2007-bl: 7M + 4S.
    BigUInt z1z1 = f->sqr(p.z);
    BigUInt u2 = f->mul(q.x, z1z1);
    BigUInt s2 = f->mul(f->mul(q.y, p.z), z1z1);
    BigUInt h = f->sub(u2, p.x);
    BigUInt rr = f->sub(s2, p.y);
    rr = f->add(rr, rr);

    if (h.isZero()) {
        if (rr.isZero())
            return dbl(p);
        return JacobianPoint::infinity();
    }

    BigUInt hh = f->sqr(h);
    BigUInt i = f->add(hh, hh);
    i = f->add(i, i);                               // I = 4 HH
    BigUInt j = f->mul(h, i);
    BigUInt v = f->mul(p.x, i);

    JacobianPoint r;
    r.x = f->sub(f->sub(f->sqr(rr), j), f->add(v, v));
    BigUInt yj = f->mul(p.y, j);
    r.y = f->sub(f->mul(rr, f->sub(v, r.x)), f->add(yj, yj));
    r.z = f->sub(f->sub(f->sqr(f->add(p.z, h)), z1z1), hh);
    return r;
}

JacobianPoint
WeierstrassCurve::add(const JacobianPoint &p, const JacobianPoint &q) const
{
    if (p.isInfinity())
        return q;
    if (q.isInfinity())
        return p;

    // add-2007-bl: 11M + 5S.
    BigUInt z1z1 = f->sqr(p.z);
    BigUInt z2z2 = f->sqr(q.z);
    BigUInt u1 = f->mul(p.x, z2z2);
    BigUInt u2 = f->mul(q.x, z1z1);
    BigUInt s1 = f->mul(f->mul(p.y, q.z), z2z2);
    BigUInt s2 = f->mul(f->mul(q.y, p.z), z1z1);
    BigUInt h = f->sub(u2, u1);
    BigUInt rr = f->sub(s2, s1);
    rr = f->add(rr, rr);

    if (h.isZero()) {
        if (rr.isZero())
            return dbl(p);
        return JacobianPoint::infinity();
    }

    BigUInt i = f->sqr(f->add(h, h));               // (2H)^2
    BigUInt j = f->mul(h, i);
    BigUInt v = f->mul(u1, i);

    JacobianPoint r;
    r.x = f->sub(f->sub(f->sqr(rr), j), f->add(v, v));
    BigUInt sj = f->mul(s1, j);
    r.y = f->sub(f->mul(rr, f->sub(v, r.x)), f->add(sj, sj));
    BigUInt zs = f->sub(f->sub(f->sqr(f->add(p.z, q.z)), z1z1), z2z2);
    r.z = f->mul(zs, h);
    return r;
}

AffinePoint
WeierstrassCurve::mulBinary(const BigUInt &k, const AffinePoint &p) const
{
    JacobianPoint r = JacobianPoint::infinity();
    for (size_t i = k.bitLength(); i-- > 0;) {
        r = dbl(r);
        if (k.bit(i))
            r = addMixed(r, p);
    }
    return toAffine(r);
}

AffinePoint
WeierstrassCurve::mulNaf(const BigUInt &k, const AffinePoint &p) const
{
    return toAffine(mulNafJacobian(k, p));
}

JacobianPoint
WeierstrassCurve::mulNafJacobian(const BigUInt &k, const AffinePoint &p) const
{
    auto digits = nafDigits(k);
    AffinePoint neg_p = negate(p);
    JacobianPoint r = JacobianPoint::infinity();
    for (size_t i = digits.size(); i-- > 0;) {
        r = dbl(r);
        if (digits[i] == 1)
            r = addMixed(r, p);
        else if (digits[i] == -1)
            r = addMixed(r, neg_p);
    }
    return r;
}

AffinePoint
WeierstrassCurve::mulDaaa(const BigUInt &k, const AffinePoint &p) const
{
    if (k.isZero() || p.inf)
        return AffinePoint::infinity();
    // Start at the top bit with R = P; every further bit performs
    // exactly one doubling and one addition (result kept or dropped).
    JacobianPoint r = toJacobian(p);
    for (size_t i = k.bitLength() - 1; i-- > 0;) {
        r = dbl(r);
        JacobianPoint q = addMixed(r, p);
        if (k.bit(i))
            r = q;
    }
    return toAffine(r);
}

std::vector<AffinePoint>
WeierstrassCurve::toAffineBatch(const std::vector<JacobianPoint> &points) const
{
    // Montgomery's trick via the shared invBatch driver: infinity's
    // Z = 0 encoding is exactly invBatch's skip value.
    std::vector<BigUInt> zs;
    zs.reserve(points.size());
    for (const JacobianPoint &p : points)
        zs.push_back(p.z);
    invBatch(*f, zs);

    std::vector<AffinePoint> out(points.size());
    for (size_t i = 0; i < points.size(); i++) {
        const JacobianPoint &p = points[i];
        if (p.isInfinity()) {
            out[i] = AffinePoint::infinity();
            continue;
        }
        BigUInt zi2 = f->sqr(zs[i]);
        out[i] = AffinePoint(f->mul(p.x, zi2),
                             f->mul(p.y, f->mul(zi2, zs[i])));
    }
    return out;
}

AffinePoint
WeierstrassCurve::mulWNaf(const BigUInt &k, const AffinePoint &p,
                          unsigned w) const
{
    if (k.isZero() || p.inf)
        return AffinePoint::infinity();

    // Table of odd multiples P, 3P, ..., (2^(w-1) - 1) P.
    size_t table_size = size_t(1) << (w - 2);
    std::vector<JacobianPoint> table_j;
    table_j.reserve(table_size);
    table_j.push_back(toJacobian(p));
    JacobianPoint p2 = dbl(table_j[0]);
    for (size_t i = 1; i < table_size; i++)
        table_j.push_back(add(table_j[i - 1], p2));
    std::vector<AffinePoint> table = toAffineBatch(table_j);

    auto digits = wNafDigits(k, w);
    JacobianPoint r = JacobianPoint::infinity();
    for (size_t i = digits.size(); i-- > 0;) {
        r = dbl(r);
        int d = digits[i];
        if (d > 0)
            r = addMixed(r, table[(d - 1) / 2]);
        else if (d < 0)
            r = addMixed(r, negate(table[(-d - 1) / 2]));
    }
    return toAffine(r);
}

void
WeierstrassCurve::dblu(const AffinePoint &p, JacobianPoint &p_out,
                       JacobianPoint &dbl_out) const
{
    // Initial doubling of an affine point, leaving P and 2P with the
    // common Z = 2y ("DBLU" of Goundar-Joye-Miyaji).
    BigUInt bb = f->sqr(p.x);
    BigUInt e = f->sqr(p.y);
    BigUInt l = f->sqr(e);
    BigUInt s4 = f->mul(p.x, e);
    s4 = f->add(s4, s4);
    s4 = f->add(s4, s4);                            // 4 x y^2
    BigUInt m = f->add(f->add(f->add(bb, bb), bb), a);  // 3x^2 + a (Z=1)

    dbl_out.x = f->sub(f->sqr(m), f->add(s4, s4));
    BigUInt l8 = f->add(l, l);
    l8 = f->add(l8, l8);
    l8 = f->add(l8, l8);                            // 8 y^4
    dbl_out.y = f->sub(f->mul(m, f->sub(s4, dbl_out.x)), l8);
    dbl_out.z = f->add(p.y, p.y);

    p_out.x = s4;
    p_out.y = l8;
    p_out.z = dbl_out.z;
}

void
WeierstrassCurve::zaddu(JacobianPoint &p, const JacobianPoint &q,
                        JacobianPoint &r) const
{
    // ZADDU: 4M + 2S. Requires p.z == q.z and p != +-q.
    BigUInt dx = f->sub(p.x, q.x);
    BigUInt c = f->sqr(dx);
    BigUInt w1 = f->mul(p.x, c);
    BigUInt w2 = f->mul(q.x, c);
    BigUInt dy = f->sub(p.y, q.y);
    BigUInt d = f->sqr(dy);
    BigUInt a1 = f->mul(p.y, f->sub(w1, w2));

    r.x = f->sub(f->sub(d, w1), w2);
    r.y = f->sub(f->mul(dy, f->sub(w1, r.x)), a1);
    r.z = f->mul(p.z, dx);

    p.x = w1;
    p.y = a1;
    p.z = r.z;
}

void
WeierstrassCurve::zaddc(const JacobianPoint &p, const JacobianPoint &q,
                        JacobianPoint &s, JacobianPoint &d) const
{
    // ZADDC (conjugate co-Z addition): 6M + 3S. s = p + q, d = p - q.
    BigUInt dx = f->sub(p.x, q.x);
    BigUInt c = f->sqr(dx);
    BigUInt w1 = f->mul(p.x, c);
    BigUInt w2 = f->mul(q.x, c);
    BigUInt dy = f->sub(p.y, q.y);
    BigUInt sy = f->add(p.y, q.y);
    BigUInt a1 = f->mul(p.y, f->sub(w1, w2));
    BigUInt z3 = f->mul(p.z, dx);

    s.x = f->sub(f->sub(f->sqr(dy), w1), w2);
    s.y = f->sub(f->mul(dy, f->sub(w1, s.x)), a1);
    s.z = z3;

    d.x = f->sub(f->sub(f->sqr(sy), w1), w2);
    d.y = f->sub(f->mul(sy, f->sub(w1, d.x)), a1);
    d.z = z3;
}

AffinePoint
WeierstrassCurve::mulLadder(const BigUInt &k, const AffinePoint &p) const
{
    if (k.isZero() || p.inf)
        return AffinePoint::infinity();
    if (k.isOne())
        return p;

    JacobianPoint r0, r1;
    dblu(p, r0, r1);  // r0 = P, r1 = 2P, common Z; invariant r1-r0 = P

    for (size_t i = k.bitLength() - 1; i-- > 0;) {
        JacobianPoint sum, diff, twice;
        if (k.bit(i)) {
            // r0 <- r0 + r1, r1 <- 2 r1 = (r0+r1) + (r1-r0).
            zaddc(r1, r0, sum, diff);
            zaddu(sum, diff, twice);
            r1 = twice;
            r0 = sum;
        } else {
            // r1 <- r0 + r1, r0 <- 2 r0 = (r0+r1) + (r0-r1).
            zaddc(r0, r1, sum, diff);
            zaddu(sum, diff, twice);
            r0 = twice;
            r1 = sum;
        }
    }
    return toAffine(r0);
}

} // namespace jaavr
