/**
 * @file
 * Montgomery curves B*y^2 = x^3 + A*x^2 + x and the x-coordinate-only
 * Montgomery ladder (paper, Section II-B).
 *
 * The differential addition/doubling formulas cost 4M + 2S (3M + 2S
 * with the base point's Z = 1) and 2M + 2S + one multiplication by
 * the small constant (A + 2)/4, giving the paper's 5.3M + 4S per
 * scalar bit. The ladder executes one doubling and one differential
 * addition for every bit, which is why the paper's high-speed and
 * constant-time Montgomery rows coincide (Table II).
 */

#ifndef JAAVR_CURVES_MONTGOMERY_HH
#define JAAVR_CURVES_MONTGOMERY_HH

#include <optional>
#include <string>

#include "curves/point.hh"
#include "curves/weierstrass.hh"
#include "field/prime_field.hh"

namespace jaavr
{

class MontgomeryCurve
{
  public:
    /**
     * @param field underlying prime field (not owned)
     * @param ca    coefficient A; A + 2 must be divisible by 4 so the
     *              doubling constant (A+2)/4 is a small integer
     * @param cb    coefficient B (irrelevant for the x-only ladder;
     *              used by the curve equation and the Weierstrass map)
     */
    MontgomeryCurve(const PrimeField &field, const BigUInt &ca,
                    const BigUInt &cb, std::string name = "montgomery");

    const PrimeField &field() const { return *f; }
    const BigUInt &coeffA() const { return a; }
    const BigUInt &coeffB() const { return b; }
    uint32_t a24() const { return a24v; }
    const std::string &name() const { return ident; }

    /** True iff (x, y) satisfies B y^2 = x^3 + A x^2 + x. */
    bool onCurve(const AffinePoint &p) const;

    /** Lift x to a full point if the RHS/B is a square. */
    std::optional<AffinePoint> liftX(const BigUInt &x, Rng &rng) const;

    /** Random full point (never infinity, never 2-torsion). */
    AffinePoint randomPoint(Rng &rng) const;

    /**
     * x-only Montgomery ladder: returns the x-coordinate of k*P given
     * the x-coordinate of P. Returns nullopt when k*P is the point at
     * infinity (Z ends at 0).
     *
     * When @p blind is given (nonzero), the working point starts in
     * randomized projective coordinates (X, Z) = (x * blind, blind)
     * instead of (x, 1) — Coron's third countermeasure. The ladder
     * step is projectively invariant, so the final X/Z division
     * cancels the factor and the result is unchanged, but every
     * intermediate value is multiplied by a fresh random mask, which
     * is what defeats first-order CPA on the intermediates
     * (bench_sidechannel measures exactly this).
     */
    std::optional<BigUInt> ladder(const BigUInt &k, const BigUInt &x,
                                  const BigUInt *blind = nullptr) const;

    /**
     * The ladder without the final X/Z division: returns the
     * projective (X : Z) result (Z = 0 encodes infinity, including
     * the k = 0 case). Batch consumers divide many results with one
     * invBatch over the Z values; ladder() is this plus one inv.
     */
    XzPoint ladderXz(const BigUInt &k, const BigUInt &x,
                     const BigUInt *blind = nullptr) const;

    /** XZ doubling: 2M + 2S + 1 mulSmall. */
    XzPoint xzDbl(const XzPoint &p) const;

    /**
     * Differential addition: computes P+Q from P, Q and the affine
     * x-coordinate of P-Q (Z of the difference = 1): 3M + 2S.
     */
    XzPoint xzDiffAdd(const XzPoint &p, const XzPoint &q,
                      const BigUInt &x_diff) const;

    /**
     * The birationally equivalent short Weierstrass curve
     * (a_w = (3 - A^2)/(3 B^2), b_w = (2A^3 - 9A)/(27 B^3)); used by
     * the cross-family consistency tests.
     */
    WeierstrassCurve toWeierstrass() const;

    /** Map a point to the equivalent Weierstrass curve. */
    AffinePoint mapToWeierstrass(const AffinePoint &p) const;

    /** Map a Weierstrass point back (must be in the image). */
    AffinePoint mapFromWeierstrass(const AffinePoint &p) const;

  private:
    const PrimeField *f;
    BigUInt a;
    BigUInt b;
    uint32_t a24v;  ///< (A + 2) / 4, a small constant by construction
    std::string ident;
};

} // namespace jaavr

#endif // JAAVR_CURVES_MONTGOMERY_HH
