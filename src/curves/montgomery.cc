#include "curves/montgomery.hh"

#include "support/logging.hh"

namespace jaavr
{

MontgomeryCurve::MontgomeryCurve(const PrimeField &field, const BigUInt &ca,
                                 const BigUInt &cb, std::string name)
    : f(&field), a(ca), b(cb), ident(std::move(name))
{
    // (A^2 - 4) B != 0.
    if (b.isZero() || f->sub(f->sqr(a), f->fromUint(4)).isZero())
        fatal("MontgomeryCurve %s: singular parameters", ident.c_str());
    // The paper's doubling cost relies on (A+2)/4 being a small
    // (<= 16-bit) integer constant.
    BigUInt a2 = a + BigUInt(2);
    if ((a2.low32() & 3) != 0 || a2.bitLength() > 18)
        fatal("MontgomeryCurve %s: (A+2)/4 must be a small integer",
              ident.c_str());
    a24v = (a2 >> 2).low32();
}

bool
MontgomeryCurve::onCurve(const AffinePoint &p) const
{
    if (p.inf)
        return true;
    BigUInt lhs = f->mul(b, f->sqr(p.y));
    BigUInt x2 = f->sqr(p.x);
    BigUInt rhs = f->add(f->add(f->mul(x2, p.x), f->mul(a, x2)), p.x);
    return lhs == rhs;
}

std::optional<AffinePoint>
MontgomeryCurve::liftX(const BigUInt &x, Rng &rng) const
{
    BigUInt x2 = f->sqr(x);
    BigUInt rhs = f->add(f->add(f->mul(x2, x), f->mul(a, x2)), x);
    BigUInt y2 = f->mul(rhs, f->inv(b));
    auto y = f->sqrt(y2, rng);
    if (!y)
        return std::nullopt;
    return AffinePoint(x, *y);
}

AffinePoint
MontgomeryCurve::randomPoint(Rng &rng) const
{
    for (;;) {
        auto p = liftX(f->random(rng), rng);
        if (!p || p->y.isZero())
            continue;
        if (rng.flip())
            return AffinePoint(p->x, f->neg(p->y));
        return *p;
    }
}

XzPoint
MontgomeryCurve::xzDbl(const XzPoint &p) const
{
    // 2M + 2S + 1 mulSmall (paper: "3M + 2S" with one small operand).
    BigUInt sum = f->add(p.x, p.z);
    BigUInt dif = f->sub(p.x, p.z);
    BigUInt sum2 = f->sqr(sum);
    BigUInt dif2 = f->sqr(dif);
    BigUInt e = f->sub(sum2, dif2);  // 4 X Z
    XzPoint r;
    r.x = f->mul(sum2, dif2);
    r.z = f->mul(e, f->add(dif2, f->mulSmall(e, a24v)));
    return r;
}

XzPoint
MontgomeryCurve::xzDiffAdd(const XzPoint &p, const XzPoint &q,
                           const BigUInt &x_diff) const
{
    // 3M + 2S with the difference point in affine form (Z = 1), the
    // Montgomery-ladder optimization the paper cites from
    // [3, Remark 13.36 (ii)].
    BigUInt t1 = f->mul(f->sub(p.x, p.z), f->add(q.x, q.z));
    BigUInt t2 = f->mul(f->add(p.x, p.z), f->sub(q.x, q.z));
    BigUInt s = f->sqr(f->add(t1, t2));
    BigUInt d = f->sqr(f->sub(t1, t2));
    XzPoint r;
    r.x = s;                      // Z_diff = 1
    r.z = f->mul(x_diff, d);
    return r;
}

XzPoint
MontgomeryCurve::ladderXz(const BigUInt &k, const BigUInt &x,
                          const BigUInt *blind) const
{
    if (k.isZero())
        return XzPoint{BigUInt(1), BigUInt(0)};  // infinity

    // R0 = P (affine), R1 = 2P; invariant R1 - R0 = P. With a blind,
    // R0 starts as the equivalent randomized projective point
    // (x * lambda : lambda); xzDbl/xzDiffAdd preserve the class.
    XzPoint r0{x, BigUInt(1)};
    if (blind && !blind->isZero()) {
        r0.x = f->mul(x, *blind);
        r0.z = *blind;
    }
    XzPoint r1 = xzDbl(r0);

    for (size_t i = k.bitLength() - 1; i-- > 0;) {
        // One differential addition and one doubling per bit,
        // regardless of the bit's value.
        if (k.bit(i)) {
            r0 = xzDiffAdd(r0, r1, x);
            r1 = xzDbl(r1);
        } else {
            r1 = xzDiffAdd(r0, r1, x);
            r0 = xzDbl(r0);
        }
    }
    return r0;
}

std::optional<BigUInt>
MontgomeryCurve::ladder(const BigUInt &k, const BigUInt &x,
                        const BigUInt *blind) const
{
    XzPoint r0 = ladderXz(k, x, blind);
    if (r0.z.isZero())
        return std::nullopt;
    return f->mul(r0.x, f->inv(r0.z));
}

WeierstrassCurve
MontgomeryCurve::toWeierstrass() const
{
    // a_w = (3 - A^2) / (3 B^2), b_w = (2A^3 - 9A) / (27 B^3).
    BigUInt three = f->fromUint(3);
    BigUInt a2 = f->sqr(a);
    BigUInt b2 = f->sqr(b);
    BigUInt aw = f->mul(f->sub(three, a2),
                        f->inv(f->mul(three, b2)));
    BigUInt a3 = f->mul(a2, a);
    BigUInt num = f->sub(f->add(a3, a3), f->mulSmall(a, 9));
    BigUInt bw = f->mul(num, f->inv(f->mul(f->fromUint(27),
                                           f->mul(b2, b))));
    return WeierstrassCurve(*f, aw, bw, ident + "-as-weierstrass");
}

AffinePoint
MontgomeryCurve::mapToWeierstrass(const AffinePoint &p) const
{
    if (p.inf)
        return p;
    // x_w = (x + A/3) / B, y_w = y / B.
    BigUInt binv = f->inv(b);
    BigUInt a_third = f->mul(a, f->inv(f->fromUint(3)));
    return AffinePoint(f->mul(f->add(p.x, a_third), binv),
                       f->mul(p.y, binv));
}

AffinePoint
MontgomeryCurve::mapFromWeierstrass(const AffinePoint &p) const
{
    if (p.inf)
        return p;
    BigUInt a_third = f->mul(a, f->inv(f->fromUint(3)));
    return AffinePoint(f->sub(f->mul(p.x, b), a_third),
                       f->mul(p.y, b));
}

} // namespace jaavr
