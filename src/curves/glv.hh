/**
 * @file
 * GLV curves y^2 = x^3 + b over p = 1 (mod 3) with the efficiently
 * computable endomorphism phi(x, y) = (beta*x, y), beta a primitive
 * cube root of unity (paper, Section II-D).
 *
 * The paper does not publish its curve constants, so this module can
 * *construct* a suitable curve: because j = 0 curves have complex
 * multiplication by sqrt(-3), the six twist orders are determined by
 * the decomposition 4p = L^2 + 27M^2 (computed via Cornacchia); the
 * actual order of a given b is identified by testing the candidate
 * orders against random points. b is searched until the order is
 * (cofactor <= 8 times) a prime, which the GLV decomposition needs.
 */

#ifndef JAAVR_CURVES_GLV_HH
#define JAAVR_CURVES_GLV_HH

#include <vector>

#include "curves/weierstrass.hh"
#include "scalar/glv_decompose.hh"

namespace jaavr
{

/** Constructed/loaded parameters of a GLV curve. */
struct GlvParams
{
    BigUInt b;        ///< curve coefficient (a = 0)
    BigUInt beta;     ///< cube root of unity mod p (phi eigen-map)
    BigUInt lambda;   ///< matching cube root of unity mod n
    BigUInt order;    ///< prime subgroup order n
    BigUInt cofactor; ///< full order = cofactor * n
    BigUInt gx, gy;   ///< generator of the prime-order subgroup
};

class GlvCurve : public WeierstrassCurve
{
  public:
    /**
     * Wrap validated parameters. Checks beta/lambda/order consistency
     * (phi(G) == lambda * G, n * G == infinity) and panics on
     * mismatch.
     */
    GlvCurve(const PrimeField &field, const GlvParams &params,
             std::string name = "glv");

    /**
     * Try to construct a GLV curve over @p field. Because the order
     * of y^2 = x^3 + b depends only on the sextic-residue class of b,
     * a given prime admits exactly six orders; this first checks
     * whether any of the six CM candidates is (cofactor <= 8) times a
     * prime and returns nullopt otherwise — the caller then moves on
     * to the next OPF prime. On success, the smallest matching b and
     * the validated (beta, lambda, G) are returned.
     */
    static std::optional<GlvParams>
    tryConstruct(const PrimeField &field, Rng &rng);

    /** tryConstruct that panics on failure (for known-good fields). */
    static GlvParams construct(const PrimeField &field, Rng &rng);

    /**
     * The six candidate group orders of y^2 = x^3 + b over F_p given
     * 4p = L^2 + 27M^2 (exposed for tests).
     */
    static std::vector<BigUInt>
    candidateOrders(const BigUInt &p, const BigUInt &l, const BigUInt &m);

    const GlvParams &params() const { return prm; }
    const BigUInt &order() const { return prm.order; }
    AffinePoint generator() const;

    /** The endomorphism phi(x, y) = (beta x, y); one field mul. */
    AffinePoint phi(const AffinePoint &p) const;

    /**
     * GLV point multiplication: k*P = k1*P + k2*phi(P) with the JSF
     * Shamir trick (the paper's fastest method, "End, JSF" in
     * Table II). P must lie in the prime-order subgroup.
     */
    AffinePoint mulGlvJsf(const BigUInt &k, const AffinePoint &p) const;

    const GlvDecomposer &decomposer() const { return decomp; }

  private:
    GlvParams prm;
    GlvDecomposer decomp;
};

} // namespace jaavr

#endif // JAAVR_CURVES_GLV_HH
