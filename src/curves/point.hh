/**
 * @file
 * Shared point representations for the curve families.
 */

#ifndef JAAVR_CURVES_POINT_HH
#define JAAVR_CURVES_POINT_HH

#include "bigint/big_uint.hh"

namespace jaavr
{

/** Affine point (x, y) with an explicit point-at-infinity flag. */
struct AffinePoint
{
    BigUInt x;
    BigUInt y;
    bool inf = true;

    AffinePoint() = default;
    AffinePoint(const BigUInt &px, const BigUInt &py)
        : x(px), y(py), inf(false)
    {}

    static AffinePoint infinity() { return AffinePoint(); }
};

/** Jacobian projective point: (X : Y : Z), x = X/Z^2, y = Y/Z^3. */
struct JacobianPoint
{
    BigUInt x;
    BigUInt y;
    BigUInt z;  ///< Z = 0 encodes the point at infinity

    bool isInfinity() const { return z.isZero(); }

    static JacobianPoint
    infinity()
    {
        JacobianPoint p;
        p.x = BigUInt(1);
        p.y = BigUInt(1);
        p.z = BigUInt(0);
        return p;
    }
};

/** X/Z-only point for the Montgomery-curve ladder. */
struct XzPoint
{
    BigUInt x;
    BigUInt z;
};

/** Extended twisted-Edwards point (X : Y : T : Z) with T = XY/Z. */
struct ExtendedPoint
{
    BigUInt x;
    BigUInt y;
    BigUInt t;
    BigUInt z;
};

} // namespace jaavr

#endif // JAAVR_CURVES_POINT_HH
