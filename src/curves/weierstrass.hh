/**
 * @file
 * Short Weierstrass curves y^2 = x^3 + a*x + b over a prime field.
 *
 * Implements the arithmetic the paper uses for secp160r1, its
 * non-standardized OPF Weierstrass curve, and (via a = 0) the GLV
 * family: Jacobian doubling (with dedicated a = -3 and a = 0 paths),
 * mixed Jacobian-affine addition, full Jacobian addition, and three
 * point-multiplication methods:
 *
 *  - NAF double-and-add (the paper's high-speed method),
 *  - double-and-add-always (DAAA, constant execution pattern),
 *  - the Montgomery ladder built on co-Z conjugate additions
 *    (ZADDC + ZADDU, 10M + 5S per bit), the register-lean ladder of
 *    Hutter-Joye-Sierra cited by the paper for its constant-time
 *    secp160r1/Weierstrass/GLV rows.
 */

#ifndef JAAVR_CURVES_WEIERSTRASS_HH
#define JAAVR_CURVES_WEIERSTRASS_HH

#include <string>
#include <vector>

#include "curves/point.hh"
#include "field/prime_field.hh"

namespace jaavr
{

class WeierstrassCurve
{
  public:
    /**
     * @param field underlying prime field (not owned; must outlive
     *              the curve)
     * @param a     curve coefficient a
     * @param b     curve coefficient b
     * @param name  human-readable identifier for diagnostics
     */
    WeierstrassCurve(const PrimeField &field, const BigUInt &a,
                     const BigUInt &b, std::string name = "weierstrass");

    const PrimeField &field() const { return *f; }
    const BigUInt &coeffA() const { return a; }
    const BigUInt &coeffB() const { return b; }
    const std::string &name() const { return ident; }

    /** True iff the affine point satisfies the curve equation. */
    bool onCurve(const AffinePoint &p) const;

    /** Lift an x-coordinate to a point if x^3 + ax + b is a square. */
    std::optional<AffinePoint> liftX(const BigUInt &x, Rng &rng) const;

    /** A uniformly random curve point (never infinity). */
    AffinePoint randomPoint(Rng &rng) const;

    // --- Jacobian arithmetic ---------------------------------------

    JacobianPoint toJacobian(const AffinePoint &p) const;
    AffinePoint toAffine(const JacobianPoint &p) const;

    /** Point doubling; dispatches on a = 0 / a = -3 / generic. */
    JacobianPoint dbl(const JacobianPoint &p) const;

    /** Full Jacobian + Jacobian addition (handles all cases). */
    JacobianPoint add(const JacobianPoint &p, const JacobianPoint &q) const;

    /** Mixed Jacobian + affine addition (q must satisfy onCurve). */
    JacobianPoint addMixed(const JacobianPoint &p,
                           const AffinePoint &q) const;

    AffinePoint negate(const AffinePoint &p) const;

    // --- Point multiplication ---------------------------------------

    /** NAF double-and-add (high-speed method of Table II). */
    AffinePoint mulNaf(const BigUInt &k, const AffinePoint &p) const;

    /**
     * mulNaf without the final affine conversion: returns the
     * Jacobian result so callers processing many multiplications
     * (the service layer's micro-batches) can convert them all with
     * one toAffineBatch inversion.
     */
    JacobianPoint mulNafJacobian(const BigUInt &k,
                                 const AffinePoint &p) const;

    /** Plain MSB-first double-and-add (baseline). */
    AffinePoint mulBinary(const BigUInt &k, const AffinePoint &p) const;

    /** Double-and-add-always: one add per bit regardless of its value. */
    AffinePoint mulDaaa(const BigUInt &k, const AffinePoint &p) const;

    /**
     * Montgomery ladder using co-Z conjugate additions. Requires
     * k >= 1. Performs exactly one ZADDC and one ZADDU per scalar bit
     * after the highest, independent of bit values.
     */
    AffinePoint mulLadder(const BigUInt &k, const AffinePoint &p) const;

    /**
     * Width-w NAF double-and-add with a table of 2^(w-2) precomputed
     * odd multiples (converted to affine in one batch inversion).
     * The paper rejects windowed/comb methods for their memory cost
     * (Section V-B); mulWNaf exists to quantify that trade-off in the
     * ablation benchmark. 2 <= w <= 7.
     */
    AffinePoint mulWNaf(const BigUInt &k, const AffinePoint &p,
                        unsigned w) const;

    /**
     * Convert many Jacobian points to affine with a single field
     * inversion (Montgomery's simultaneous-inversion trick:
     * 1 inv + 3(n-1) + 2n muls). Infinity entries pass through.
     */
    std::vector<AffinePoint>
    toAffineBatch(const std::vector<JacobianPoint> &points) const;

  protected:
    // Co-Z primitives (exposed to the GLV subclass and tests via the
    // public multiplication methods).

    /** Initial doubling with Z = 1, leaving P and 2P with a common Z. */
    void dblu(const AffinePoint &p, JacobianPoint &p_out,
              JacobianPoint &dbl_out) const;

    /**
     * Co-Z addition with update: r = p + q (p, q share z); p is
     * rewritten to the same new Z as r.
     */
    void zaddu(JacobianPoint &p, const JacobianPoint &q,
               JacobianPoint &r) const;

    /**
     * Conjugate co-Z addition: computes s = p + q and d = p - q with
     * a common new Z (p, q must share z).
     */
    void zaddc(const JacobianPoint &p, const JacobianPoint &q,
               JacobianPoint &s, JacobianPoint &d) const;

    const PrimeField *f;
    BigUInt a;
    BigUInt b;
    bool aIsZero;
    bool aIsMinus3;
    std::string ident;
};

} // namespace jaavr

#endif // JAAVR_CURVES_WEIERSTRASS_HH
