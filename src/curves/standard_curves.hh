/**
 * @file
 * The named curve instances of the paper's evaluation:
 *
 *  - secp160r1 (standardized; published SEC2 constants),
 *  - secp160k1 (standardized GLV-family curve; used to cross-check
 *    the GLV machinery against published parameters),
 *  - the four non-standardized OPF curves: Weierstrass (a = -3),
 *    Montgomery (small (A+2)/4), twisted Edwards (a = -1, complete),
 *    and a GLV curve constructed over an OPF prime = 1 (mod 3) via
 *    the CM order computation (DESIGN.md substitution #4: the paper
 *    does not publish its curve constants).
 *
 * All accessors return lazily-initialized singletons; construction
 * self-checks (generators on curve, orders annihilate generators,
 * endomorphism eigenvalues match) and panics on any inconsistency.
 */

#ifndef JAAVR_CURVES_STANDARD_CURVES_HH
#define JAAVR_CURVES_STANDARD_CURVES_HH

#include "curves/edwards.hh"
#include "curves/glv.hh"
#include "curves/montgomery.hh"
#include "curves/weierstrass.hh"
#include "field/secp160.hh"
#include "nt/opf_prime.hh"

namespace jaavr
{

/** Generator and order of a standardized curve. */
struct CurveGenerator
{
    AffinePoint g;
    BigUInt order;     ///< prime order of g
    BigUInt cofactor;
};

// --- Fields ----------------------------------------------------------

/** Field of the paper's reference OPF prime 65356 * 2^144 + 1. */
const PrimeField &paperOpfField();

/** Field of the GLV-compatible OPF prime (p = 1 mod 3). */
const PrimeField &glvOpfField();

/** The OPF prime underlying glvOpfField()/glvOpfCurve(). */
const OpfPrime &glvOpfPrimeUsed();

/** secp160r1's field with fast pseudo-Mersenne reduction. */
const Secp160r1Field &secp160r1Field();

/** secp160k1's field. */
const Secp160k1Field &secp160k1Field();

// --- Standardized curves ---------------------------------------------

/** secp160r1: y^2 = x^3 - 3x + b (SEC2 constants). */
const WeierstrassCurve &secp160r1Curve();
const CurveGenerator &secp160r1Generator();

/** secp160k1 wrapped as a GlvCurve (a = 0, b = 7, published G, n). */
const GlvCurve &secp160k1Curve();

// --- OPF curves (paper Section V, non-standardized rows) -------------

/** Weierstrass a = -3 curve over the paper OPF prime. */
const WeierstrassCurve &weierstrassOpfCurve();

/**
 * Montgomery curve over the paper OPF prime with the smallest
 * A = 2 (mod 4) making the twisted Edwards twin below complete;
 * B = -(A+2) so that the two curves are birationally equivalent.
 */
const MontgomeryCurve &montgomeryOpfCurve();

/** Twisted Edwards twin: a = -1, d = (2-A)/(A+2) non-square. */
const EdwardsCurve &edwardsOpfCurve();

/** Constructed GLV curve over the GLV OPF prime (exact CM order). */
const GlvCurve &glvOpfCurve();

/** Deterministic non-identity base point on the OPF Weierstrass curve. */
AffinePoint weierstrassOpfBasePoint();

/** Deterministic base point on the OPF Montgomery curve. */
AffinePoint montgomeryOpfBasePoint();

/** Deterministic base point on the OPF Edwards curve. */
AffinePoint edwardsOpfBasePoint();

/**
 * Map a point from the Edwards OPF curve to its Montgomery twin:
 * u = (1+y)/(1-y), v = u/x. Panics on the exceptional points.
 */
AffinePoint edwardsToMontgomery(const AffinePoint &p);

} // namespace jaavr

#endif // JAAVR_CURVES_STANDARD_CURVES_HH
