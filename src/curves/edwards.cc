#include "curves/edwards.hh"

#include "field/batch_inverse.hh"
#include "scalar/recode.hh"
#include "support/logging.hh"

namespace jaavr
{

EdwardsCurve::EdwardsCurve(const PrimeField &field, const BigUInt &ca,
                           const BigUInt &cd, std::string name)
    : f(&field), a(ca), d(cd), ident(std::move(name))
{
    if (a != f->neg(BigUInt(1)))
        fatal("EdwardsCurve %s: only a = -1 is implemented "
              "(the fast-formula case)", ident.c_str());
    if (d.isZero() || d == a)
        fatal("EdwardsCurve %s: d must be non-zero and distinct from a",
              ident.c_str());
    d2 = f->add(d, d);
    complete = f->isSquare(a) && !f->isSquare(d);
    if (!complete)
        warn("EdwardsCurve %s: addition law is not complete "
             "(a square: %d, d non-square: %d)", ident.c_str(),
             f->isSquare(a) ? 1 : 0, f->isSquare(d) ? 0 : 1);
}

AffinePoint
EdwardsCurve::identity() const
{
    return AffinePoint(BigUInt(0), BigUInt(1));
}

bool
EdwardsCurve::isIdentity(const AffinePoint &p) const
{
    return !p.inf && p.x.isZero() && p.y.isOne();
}

bool
EdwardsCurve::onCurve(const AffinePoint &p) const
{
    if (p.inf)
        return false;  // Edwards curves have no point at infinity
    BigUInt x2 = f->sqr(p.x);
    BigUInt y2 = f->sqr(p.y);
    BigUInt lhs = f->add(f->mul(a, x2), y2);
    BigUInt rhs = f->add(BigUInt(1), f->mul(d, f->mul(x2, y2)));
    return lhs == rhs;
}

std::optional<AffinePoint>
EdwardsCurve::liftY(const BigUInt &y, Rng &rng) const
{
    // x^2 = (1 - y^2) / (a - d y^2).
    BigUInt y2 = f->sqr(y);
    BigUInt den = f->sub(a, f->mul(d, y2));
    if (den.isZero())
        return std::nullopt;
    BigUInt x2 = f->mul(f->sub(BigUInt(1), y2), f->inv(den));
    auto x = f->sqrt(x2, rng);
    if (!x)
        return std::nullopt;
    return AffinePoint(*x, y);
}

AffinePoint
EdwardsCurve::randomPoint(Rng &rng) const
{
    for (;;) {
        auto p = liftY(f->random(rng), rng);
        if (!p || isIdentity(*p))
            continue;
        if (rng.flip())
            return negate(*p);
        return *p;
    }
}

AffinePoint
EdwardsCurve::negate(const AffinePoint &p) const
{
    return AffinePoint(f->neg(p.x), p.y);
}

ExtendedPoint
EdwardsCurve::toExtended(const AffinePoint &p) const
{
    if (p.inf)
        panic("EdwardsCurve: no projective image for 'infinity'");
    ExtendedPoint e;
    e.x = p.x;
    e.y = p.y;
    e.t = f->mul(p.x, p.y);
    e.z = BigUInt(1);
    return e;
}

AffinePoint
EdwardsCurve::toAffine(const ExtendedPoint &p) const
{
    BigUInt zi = f->inv(p.z);
    return AffinePoint(f->mul(p.x, zi), f->mul(p.y, zi));
}

BigUInt
EdwardsCurve::precomputeTd2(const AffinePoint &p) const
{
    return f->mul(d2, f->mul(p.x, p.y));
}

std::vector<AffinePoint>
EdwardsCurve::toAffineBatch(const std::vector<ExtendedPoint> &points) const
{
    // Z is never 0 on a complete curve, but invBatch's zero
    // passthrough keeps a malformed input from perturbing neighbours.
    std::vector<BigUInt> zs;
    zs.reserve(points.size());
    for (const ExtendedPoint &p : points)
        zs.push_back(p.z);
    invBatch(*f, zs);

    std::vector<AffinePoint> out(points.size());
    for (size_t i = 0; i < points.size(); i++)
        out[i] = AffinePoint(f->mul(points[i].x, zs[i]),
                             f->mul(points[i].y, zs[i]));
    return out;
}

ExtendedPoint
EdwardsCurve::add(const ExtendedPoint &p, const ExtendedPoint &q) const
{
    // add-2008-hwcd-3 (a = -1): 8M + 1 multiplication by 2d.
    BigUInt A = f->mul(f->sub(p.y, p.x), f->sub(q.y, q.x));
    BigUInt B = f->mul(f->add(p.y, p.x), f->add(q.y, q.x));
    BigUInt C = f->mul(f->mul(p.t, d2), q.t);
    BigUInt D = f->mul(p.z, q.z);
    D = f->add(D, D);
    BigUInt E = f->sub(B, A);
    BigUInt F = f->sub(D, C);
    BigUInt G = f->add(D, C);
    BigUInt H = f->add(B, A);
    ExtendedPoint r;
    r.x = f->mul(E, F);
    r.y = f->mul(G, H);
    r.t = f->mul(E, H);
    r.z = f->mul(F, G);
    return r;
}

ExtendedPoint
EdwardsCurve::addMixed(const ExtendedPoint &p, const AffinePoint &q,
                       const BigUInt &q_td2) const
{
    // madd-2008-hwcd-3 with the addend's 2d*x*y precomputed: 7M.
    BigUInt A = f->mul(f->sub(p.y, p.x), f->sub(q.y, q.x));
    BigUInt B = f->mul(f->add(p.y, p.x), f->add(q.y, q.x));
    BigUInt C = f->mul(p.t, q_td2);
    BigUInt D = f->add(p.z, p.z);
    BigUInt E = f->sub(B, A);
    BigUInt F = f->sub(D, C);
    BigUInt G = f->add(D, C);
    BigUInt H = f->add(B, A);
    ExtendedPoint r;
    r.x = f->mul(E, F);
    r.y = f->mul(G, H);
    r.t = f->mul(E, H);
    r.z = f->mul(F, G);
    return r;
}

ExtendedPoint
EdwardsCurve::dbl(const ExtendedPoint &p, bool need_t) const
{
    // dbl-2008-hwcd with a = -1: 3M + 4S (+1M for T).
    BigUInt A = f->sqr(p.x);
    BigUInt B = f->sqr(p.y);
    BigUInt C = f->sqr(p.z);
    C = f->add(C, C);
    BigUInt D = f->neg(A);  // a * A with a = -1
    BigUInt E = f->sub(f->sub(f->sqr(f->add(p.x, p.y)), A), B);
    BigUInt G = f->add(D, B);
    BigUInt F = f->sub(G, C);
    BigUInt H = f->sub(D, B);
    ExtendedPoint r;
    r.x = f->mul(E, F);
    r.y = f->mul(G, H);
    r.t = need_t ? f->mul(E, H) : BigUInt(0);
    r.z = f->mul(F, G);
    return r;
}

AffinePoint
EdwardsCurve::mulBinary(const BigUInt &k, const AffinePoint &p) const
{
    ExtendedPoint r = toExtended(identity());
    ExtendedPoint pe = toExtended(p);
    for (size_t i = k.bitLength(); i-- > 0;) {
        r = dbl(r, k.bit(i));
        if (k.bit(i))
            r = add(r, pe);
    }
    return toAffine(r);
}

AffinePoint
EdwardsCurve::mulNaf(const BigUInt &k, const AffinePoint &p) const
{
    return toAffine(mulNafExtended(k, p));
}

ExtendedPoint
EdwardsCurve::mulNafExtended(const BigUInt &k, const AffinePoint &p) const
{
    auto digits = nafDigits(k);
    AffinePoint np = negate(p);
    BigUInt td2_p = precomputeTd2(p);
    BigUInt td2_n = f->neg(td2_p);
    ExtendedPoint r = toExtended(identity());
    for (size_t i = digits.size(); i-- > 0;) {
        r = dbl(r, digits[i] != 0);
        if (digits[i] == 1)
            r = addMixed(r, p, td2_p);
        else if (digits[i] == -1)
            r = addMixed(r, np, td2_n);
    }
    return r;
}

AffinePoint
EdwardsCurve::mulDaaa(const BigUInt &k, const AffinePoint &p) const
{
    // Completeness makes the always-add loop trivially correct: the
    // dummy additions go through the very same code path.
    BigUInt td2_p = precomputeTd2(p);
    ExtendedPoint r = toExtended(identity());
    for (size_t i = k.bitLength(); i-- > 0;) {
        r = dbl(r, true);
        ExtendedPoint q = addMixed(r, p, td2_p);
        if (k.bit(i))
            r = q;
    }
    return toAffine(r);
}

} // namespace jaavr
