#include "curves/standard_curves.hh"

#include <memory>

#include "nt/opf_prime.hh"
#include "nt/primality.hh"
#include "nt/sqrt_mod.hh"
#include "support/logging.hh"

namespace jaavr
{

namespace
{

// SEC2 v1 constants for secp160r1.
const char *kR1B = "1c97befc54bd7a8b65acf89f81d4d4adc565fa45";
const char *kR1Gx = "4a96b5688ef573284664698968c38bb913cbfc82";
const char *kR1Gy = "23a628553168947d59dcc912042351377ac5fb32";
const char *kR1N = "0100000000000000000001f4c8f927aed3ca752257";

// SEC2 v1 constants for secp160k1 (a = 0, b = 7).
const char *kK1Gx = "3b4c382ce37aa192a4019e763036f4f5dd4d7ebb";
const char *kK1Gy = "938cf935318fdced6bc28286531733c3f03c4fee";
const char *kK1N = "0100000000000000000001b8fa16dfab9aca16b6b3";

/** Cube root of unity mod m (m = 1 mod 3): (-1 + sqrt(-3)) / 2. */
BigUInt
cubeRoot(const BigUInt &m)
{
    Rng rng(0xc0be);
    BigUInt neg3 = m - BigUInt(3);
    auto s = sqrtMod(neg3, m, rng);
    if (!s)
        panic("standard_curves: -3 not a residue mod m");
    return (m - BigUInt(1) + *s).mulMod(BigUInt(2).invMod(m), m);
}

/**
 * Smallest A = 2 (mod 4), A >= 6, whose Edwards twin coefficient
 * d = (2-A)/(A+2) is a non-square over the paper OPF field (required
 * for a complete Edwards addition law).
 */
uint32_t
selectMontgomeryA()
{
    const PrimeField &f = paperOpfField();
    for (uint32_t a = 6; a < 4096; a += 4) {
        BigUInt d = f.mul(f.sub(f.fromUint(2), f.fromUint(a)),
                          f.inv(f.fromUint(a + 2)));
        if (!f.isSquare(d))
            return a;
    }
    panic("selectMontgomeryA: no suitable A found");
}

} // anonymous namespace

const PrimeField &
paperOpfField()
{
    static const PrimeField f(paperOpfPrime().p);
    return f;
}

namespace
{

/**
 * The GLV OPF instance: searches 160-bit OPF primes p = u * 2^144 + 1
 * with u = 0 (mod 3) (so p = 1 mod 3) until one of the six CM twist
 * orders is (cofactor <= 8) times a prime, then fixes the smallest
 * matching b. Deterministic, so every binary lands on the same curve.
 */
struct GlvOpfInstance
{
    GlvOpfInstance()
    {
        Rng rng(0x61f61);
        for (uint32_t u = 0xffff;; u--) {
            if (u % 3 != 0)
                continue;
            if (u < 0x8000)
                panic("GlvOpfInstance: prime search exhausted");
            OpfPrime cand = makeOpf(u, 144);
            if (!isProbablePrime(cand.p, rng))
                continue;
            auto f = std::make_unique<PrimeField>(cand.p);
            auto prm = GlvCurve::tryConstruct(*f, rng);
            if (!prm)
                continue;
            prime = cand;
            field = std::move(f);
            curve = std::make_unique<GlvCurve>(*field, *prm, "glv-opf160");
            return;
        }
    }

    OpfPrime prime;
    std::unique_ptr<PrimeField> field;
    std::unique_ptr<GlvCurve> curve;
};

const GlvOpfInstance &
glvOpfInstance()
{
    static const GlvOpfInstance inst;
    return inst;
}

} // anonymous namespace

const PrimeField &
glvOpfField()
{
    return *glvOpfInstance().field;
}

const OpfPrime &
glvOpfPrimeUsed()
{
    return glvOpfInstance().prime;
}

const Secp160r1Field &
secp160r1Field()
{
    static const Secp160r1Field f;
    return f;
}

const Secp160k1Field &
secp160k1Field()
{
    static const Secp160k1Field f;
    return f;
}

const WeierstrassCurve &
secp160r1Curve()
{
    static const WeierstrassCurve curve(
        secp160r1Field(),
        secp160r1Field().modulus() - BigUInt(3),
        BigUInt::fromHex(kR1B),
        "secp160r1");
    return curve;
}

const CurveGenerator &
secp160r1Generator()
{
    static const CurveGenerator gen = [] {
        CurveGenerator g;
        g.g = AffinePoint(BigUInt::fromHex(kR1Gx), BigUInt::fromHex(kR1Gy));
        g.order = BigUInt::fromHex(kR1N);
        g.cofactor = BigUInt(1);
        if (!secp160r1Curve().onCurve(g.g))
            panic("secp160r1 generator not on curve");
        if (!secp160r1Curve().mulBinary(g.order, g.g).inf)
            panic("secp160r1 generator order mismatch");
        return g;
    }();
    return gen;
}

const GlvCurve &
secp160k1Curve()
{
    static const GlvCurve curve = [] {
        const Secp160k1Field &f = secp160k1Field();
        GlvParams prm;
        prm.b = BigUInt(7);
        prm.gx = BigUInt::fromHex(kK1Gx);
        prm.gy = BigUInt::fromHex(kK1Gy);
        prm.order = BigUInt::fromHex(kK1N);
        prm.cofactor = BigUInt(1);
        prm.beta = cubeRoot(f.modulus());
        BigUInt lam = cubeRoot(prm.order);
        // Match the eigenvalue to beta on the published generator.
        WeierstrassCurve w(f, BigUInt(0), prm.b, "secp160k1-probe");
        AffinePoint g(prm.gx, prm.gy);
        AffinePoint phi_g(f.mul(prm.beta, g.x), g.y);
        AffinePoint lg = w.mulBinary(lam, g);
        if (!(lg.x == phi_g.x && lg.y == phi_g.y))
            lam = lam.mulMod(lam, prm.order);
        prm.lambda = lam;
        return GlvCurve(f, prm, "secp160k1");
    }();
    return curve;
}

const WeierstrassCurve &
weierstrassOpfCurve()
{
    static const WeierstrassCurve curve(
        paperOpfField(),
        paperOpfField().modulus() - BigUInt(3),
        BigUInt(7),
        "weierstrass-opf160");
    return curve;
}

const MontgomeryCurve &
montgomeryOpfCurve()
{
    static const MontgomeryCurve curve = [] {
        const PrimeField &f = paperOpfField();
        uint32_t a = selectMontgomeryA();
        // B = -(A+2) makes the Edwards twin have a = -1 exactly.
        BigUInt b = f.neg(f.fromUint(a + 2));
        return MontgomeryCurve(f, f.fromUint(a), b, "montgomery-opf160");
    }();
    return curve;
}

const EdwardsCurve &
edwardsOpfCurve()
{
    static const EdwardsCurve curve = [] {
        const PrimeField &f = paperOpfField();
        const MontgomeryCurve &m = montgomeryOpfCurve();
        // a = (A+2)/B = -1, d = (A-2)/B = (2-A)/(A+2).
        BigUInt a = f.neg(BigUInt(1));
        BigUInt d = f.mul(f.sub(m.coeffA(), f.fromUint(2)),
                          f.inv(m.coeffB()));
        return EdwardsCurve(f, a, d, "edwards-opf160");
    }();
    return curve;
}

const GlvCurve &
glvOpfCurve()
{
    return *glvOpfInstance().curve;
}

AffinePoint
weierstrassOpfBasePoint()
{
    static const AffinePoint base = [] {
        Rng rng(0xbeef);
        const WeierstrassCurve &c = weierstrassOpfCurve();
        for (uint64_t x = 2;; x++) {
            auto p = c.liftX(BigUInt(x), rng);
            if (p && !p->y.isZero())
                return *p;
        }
    }();
    return base;
}

AffinePoint
montgomeryOpfBasePoint()
{
    static const AffinePoint base = [] {
        Rng rng(0xbef0);
        const MontgomeryCurve &c = montgomeryOpfCurve();
        for (uint64_t x = 2;; x++) {
            auto p = c.liftX(BigUInt(x), rng);
            if (p && !p->y.isZero())
                return *p;
        }
    }();
    return base;
}

AffinePoint
edwardsOpfBasePoint()
{
    static const AffinePoint base = [] {
        Rng rng(0xbef1);
        const EdwardsCurve &c = edwardsOpfCurve();
        for (uint64_t y = 2;; y++) {
            auto p = c.liftY(BigUInt(y), rng);
            if (p && !p->x.isZero())
                return *p;
        }
    }();
    return base;
}

AffinePoint
edwardsToMontgomery(const AffinePoint &p)
{
    const PrimeField &f = paperOpfField();
    if (p.inf || p.y.isOne() || p.x.isZero())
        panic("edwardsToMontgomery: exceptional point");
    // u = (1+y)/(1-y), v = u/x.
    BigUInt one(1);
    BigUInt u = f.mul(f.add(one, p.y), f.inv(f.sub(one, p.y)));
    BigUInt v = f.mul(u, f.inv(p.x));
    return AffinePoint(u, v);
}

} // namespace jaavr
