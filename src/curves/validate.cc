#include "curves/validate.hh"

namespace jaavr
{

bool
validScalar(const BigUInt &k, const BigUInt &n)
{
    return !k.isZero() && k < n;
}

bool
validatePoint(const WeierstrassCurve &c, const AffinePoint &p,
              const BigUInt *order)
{
    if (p.inf)
        return false;
    const BigUInt &m = c.field().modulus();
    if (!(p.x < m) || !(p.y < m))
        return false;
    if (!c.onCurve(p))
        return false;
    if (order && !c.mulBinary(*order, p).inf)
        return false;
    return true;
}

bool
validatePoint(const EdwardsCurve &c, const AffinePoint &p,
              const BigUInt *order)
{
    if (p.inf || c.isIdentity(p))
        return false;
    const BigUInt &m = c.field().modulus();
    if (!(p.x < m) || !(p.y < m))
        return false;
    if (!c.onCurve(p))
        return false;
    if (order && !c.isIdentity(c.mulBinary(*order, p)))
        return false;
    return true;
}

bool
validateX(const MontgomeryCurve &c, const BigUInt &x)
{
    const PrimeField &f = c.field();
    if (!(x < f.modulus()))
        return false;
    // rhs = x^3 + A x^2 + x = x (x^2 + A x + 1)
    BigUInt x2 = f.sqr(x);
    BigUInt rhs = f.mul(x, f.add(f.add(x2, f.mul(c.coeffA(), x)),
                                 BigUInt(1)));
    if (rhs.isZero())
        return false; // order <= 2
    return f.isSquare(f.mul(rhs, f.inv(c.coeffB())));
}

namespace
{

HardenedMul
fail(const char *reason)
{
    HardenedMul r;
    r.reason = reason;
    return r;
}

} // anonymous namespace

HardenedMul
hardenedMulWeierstrass(const WeierstrassCurve &c, const BigUInt &k,
                       const AffinePoint &p, const BigUInt &n)
{
    if (!validScalar(k, n))
        return fail("invalid scalar");
    if (!validatePoint(c, p, &n))
        return fail("invalid input point");
    AffinePoint primary = c.mulLadder(k, p);
    AffinePoint redo = c.mulNaf(k, p);
    if (primary.inf != redo.inf ||
        (!primary.inf && (primary.x != redo.x || primary.y != redo.y)))
        return fail("recomputation mismatch");
    // k in [1, n) times a point of prime order n is never infinity.
    if (!validatePoint(c, primary))
        return fail("invalid output point");
    HardenedMul r;
    r.point = primary;
    r.ok = true;
    return r;
}

HardenedMul
hardenedMulGlv(const GlvCurve &c, const BigUInt &k, const AffinePoint &p)
{
    const BigUInt &n = c.order();
    if (!validScalar(k, n))
        return fail("invalid scalar");
    if (!validatePoint(c, p, &n))
        return fail("invalid input point");
    AffinePoint primary = c.mulGlvJsf(k, p);
    AffinePoint redo = c.mulLadder(k, p);
    if (primary.inf != redo.inf ||
        (!primary.inf && (primary.x != redo.x || primary.y != redo.y)))
        return fail("recomputation mismatch");
    if (!validatePoint(c, primary))
        return fail("invalid output point");
    HardenedMul r;
    r.point = primary;
    r.ok = true;
    return r;
}

HardenedMul
hardenedMulEdwards(const EdwardsCurve &c, const BigUInt &k,
                   const AffinePoint &p, const BigUInt &n)
{
    if (!validScalar(k, n))
        return fail("invalid scalar");
    if (!validatePoint(c, p, &n))
        return fail("invalid input point");
    AffinePoint primary = c.mulDaaa(k, p);
    AffinePoint redo = c.mulNaf(k, p);
    if (primary.x != redo.x || primary.y != redo.y)
        return fail("recomputation mismatch");
    if (!validatePoint(c, primary))
        return fail("invalid output point");
    HardenedMul r;
    r.point = primary;
    r.ok = true;
    return r;
}

HardenedMul
hardenedMulMontgomery(const MontgomeryCurve &c, const BigUInt &k,
                      const BigUInt &x, const BigUInt &n, Rng *rng)
{
    if (!validScalar(k, n))
        return fail("invalid scalar");
    if (!validateX(c, x))
        return fail("invalid input point");
    // Duplicate-image redundancy: the second pass starts from its own
    // copies of k and x, so a fault in one image diverges the passes.
    // With an rng, each pass also gets an independent projective
    // blind, so even the shared intermediates differ between passes.
    BigUInt k2 = k;
    BigUInt x2 = x;
    const PrimeField &f = c.field();
    BigUInt b1, b2;
    if (rng) {
        do
            b1 = f.random(*rng);
        while (b1.isZero());
        do
            b2 = f.random(*rng);
        while (b2.isZero());
    }
    std::optional<BigUInt> primary = c.ladder(k, x, rng ? &b1 : nullptr);
    std::optional<BigUInt> redo = c.ladder(k2, x2, rng ? &b2 : nullptr);
    if (primary.has_value() != redo.has_value() ||
        (primary && *primary != *redo))
        return fail("recomputation mismatch");
    if (!primary)
        return fail("result at infinity");
    if (!validateX(c, *primary))
        return fail("invalid output point");
    HardenedMul r;
    r.x = primary;
    r.ok = true;
    return r;
}

} // namespace jaavr
